// Arrhythmia monitoring scenario (the SmartCardia deployment of Section
// V): delineate, classify every beat, run windowed AF detection, and raise
// alarm events — the full on-node diagnostic chain — then ship the record
// through the host's sharded reconstruction fabric, with the windows
// covering the suspected-AF episode tagged urgent so they jump the
// reconstruction backlog (node -> fabric -> shard -> engine -> kern).
//
//   $ ./examples/arrhythmia_monitor
#include <cmath>
#include <cstdio>
#include <utility>

#include "cls/af_detect.hpp"
#include "cls/beat_classifier.hpp"
#include "core/apps.hpp"
#include "delin/pipeline.hpp"
#include "host/reconstruction_fabric.hpp"
#include "sig/adc.hpp"
#include "sig/dataset.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  // --- Train the classifier and the AF detector on synthetic cohorts. ---
  cls::BeatClassifier classifier;
  {
    sig::DatasetSpec spec;
    spec.num_records = 5;
    spec.beats_per_record = 150;
    spec.noise = sig::NoiseLevel::kLow;
    const auto cohort = sig::make_arrhythmia_dataset(spec);
    std::vector<std::vector<std::int32_t>> signals;
    for (const auto& r : cohort) signals.push_back(sig::quantize(r.leads[0], sig::AdcConfig{}));
    std::vector<cls::BeatClassifier::TrainingRecord> training;
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      training.push_back({signals[i], cohort[i].beats});
    }
    classifier.train(training);
  }
  cls::AfDetector af_detector;
  {
    sig::DatasetSpec spec;
    spec.num_records = 5;
    spec.beats_per_record = 160;
    const auto cohort = sig::make_af_dataset(spec);
    std::vector<std::vector<sig::BeatAnnotation>> training;
    for (const auto& r : cohort) training.push_back(r.beats);
    af_detector.train(training, 250.0);
  }

  // --- The patient: sinus rhythm with PVC runs and an AF episode. ---
  sig::SynthConfig synth;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, 80},
                    {sig::RhythmEpisode::Kind::kAfib, 60},
                    {sig::RhythmEpisode::Kind::kSinus, 80}};
  synth.pvc_probability = 0.06;
  synth.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(7);
  const auto record = synthesize_ecg(synth, rng);

  // --- On-node processing chain. ---
  const auto leads = sig::quantize_leads(record.leads, sig::AdcConfig{});
  delin::PipelineConfig pcfg;
  pcfg.fs = record.fs;
  const auto delineated = delin::run_delineation_pipeline(leads, pcfg);
  std::printf("detected %zu beats in %.1f s of ECG\n", delineated.beats.size(),
              record.duration_s());

  std::vector<cls::BeatLabel> labels;
  double rr_mean = 0.8;
  for (std::size_t b = 0; b < delineated.beats.size(); ++b) {
    const auto& beat = delineated.beats[b];
    const double rr_prev =
        b > 0 ? static_cast<double>(beat.r_peak - delineated.beats[b - 1].r_peak) / record.fs
              : rr_mean;
    const double rr_next =
        b + 1 < delineated.beats.size()
            ? static_cast<double>(delineated.beats[b + 1].r_peak - beat.r_peak) / record.fs
            : rr_mean;
    rr_mean += 0.125 * (rr_prev - rr_mean);
    labels.push_back(
        classifier.classify_linearized(leads[0], beat.r_peak, rr_prev, rr_next, rr_mean));
  }
  int pvc = 0;
  for (auto label : labels) pvc += label == cls::BeatLabel::kVentricular;
  std::printf("classified beats: %d ventricular of %zu total\n", pvc, labels.size());

  const auto windows = af_detector.detect(delineated.beats, record.fs);
  const auto events = core::detect_events(delineated.beats, labels, windows, record.fs);

  std::printf("\n-- alarm log --\n");
  for (const auto& event : events) {
    std::printf("[%7.1f s] %s\n", event.time_s, event.description.c_str());
  }
  if (events.empty()) std::printf("(no events)\n");

  // --- Host-side leg: compress and reconstruct through the fabric. ---
  // The AF pathway's decision windows become urgent sample spans; every
  // compressed window overlapping one is tagged kUrgent and rides the
  // priority lane of its patient's shard.
  host::RecordCompressionConfig compression;
  compression.urgent_spans = cls::af_urgent_spans(windows, delineated.beats);
  const auto compressed = host::compress_record(record, /*patient_id=*/1, compression);
  std::size_t urgent_windows = 0;
  for (const auto& w : compressed) {
    urgent_windows += w.priority == cs::WindowPriority::kUrgent;
  }

  host::FabricConfig fabric_cfg;
  fabric_cfg.shards = 2;
  fabric_cfg.engine.threads = 2;
  fabric_cfg.engine.slo.deadline_ms =
      cs::window_period_ms(compression.window_samples, record.fs);
  fabric_cfg.engine.deadline_shedding = true;
  host::ReconstructionFabric fabric(fabric_cfg);
  // Stream the first half, then grow the fabric live — a monitoring host
  // scaling out mid-shift.  The consistent-hash ring moves only the
  // patients the new shard captures; everything in flight completes where
  // it started, and reconstruction values are unaffected by the resize.
  const std::size_t half = compressed.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    host::CompressedWindow copy = compressed[i];
    fabric.submit(std::move(copy));
  }
  const auto reshard = fabric.resize(3);
  for (std::size_t i = half; i < compressed.size(); ++i) {
    host::CompressedWindow copy = compressed[i];
    fabric.submit(std::move(copy));
  }
  const auto results = fabric.drain();

  double snr_sum = 0.0;
  std::size_t scored = 0;
  for (const auto& r : results) {
    if (!std::isnan(r.snr_db)) {
      snr_sum += r.snr_db;
      ++scored;
    }
  }
  std::printf("\n-- host reconstruction (%zu-shard fabric) --\n", fabric.shard_count());
  std::printf("%zu windows reconstructed (%zu urgent via AF pathway), mean SNR %.1f dB\n",
              results.size(), urgent_windows,
              scored > 0 ? snr_sum / static_cast<double>(scored) : 0.0);
  std::printf("live reshard mid-stream: epoch %u, %zu -> %zu shards, %zu/%zu patients moved\n",
              reshard.epoch, reshard.shards_before, reshard.shards_after,
              reshard.moved_patients, reshard.known_patients);
  for (const auto priority : {cs::WindowPriority::kUrgent, cs::WindowPriority::kRoutine}) {
    const auto lane = fabric.lane_slo_snapshot(priority);
    if (lane.completed == 0) continue;
    std::printf("%s lane: %zu windows, p95 %.2f ms, %zu deadline violations\n",
                cs::to_string(priority), static_cast<std::size_t>(lane.completed),
                lane.p95_ms, static_cast<std::size_t>(lane.deadline_violations));
  }
  return 0;
}
