// Compression / quality / battery tradeoff explorer: sweeps the CS
// compression ratio and prints reconstruction quality next to the battery
// life the corresponding node configuration would achieve — the design
// dial a WBSN integrator actually turns.
//
//   $ ./examples/compression_tradeoff
#include <cstdio>

#include "core/node.hpp"
#include "cs/pipeline.hpp"
#include "energy/node.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  sig::SynthConfig synth;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, 80}};
  synth.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(21);
  const auto rec = synthesize_ecg(synth, rng);

  cs::CsPipelineConfig cs_cfg;
  cs_cfg.fista.lambda_rel = 0.003;
  const energy::BatteryModel battery;

  std::printf("== CS compression-ratio tradeoff (3-lead, joint decoding) ==\n");
  std::printf("%-8s %10s %14s %14s %12s\n", "CR [%]", "SNR [dB]", "bytes/s",
              "power [uW]", "battery [d]");
  for (double cr : {0.0, 40.0, 55.0, 66.0, 75.0, 85.0}) {
    double snr = 99.0;
    core::NodeConfig cfg;
    if (cr == 0.0) {
      cfg.mode = core::OperatingMode::kRawStreaming;
    } else {
      cfg.mode = core::OperatingMode::kCompressedMulti;
      cfg.cs_cr_percent = cr;
      snr = run_multi_lead_cs(rec, cr, cs_cfg).mean_snr_db;
    }
    core::WbsnNode node(cfg);
    const std::size_t window = cfg.window_samples;
    const std::size_t count = rec.num_samples() / window;
    std::uint64_t bytes = 0;
    double energy_j = 0.0;
    for (std::size_t w = 0; w < count; ++w) {
      std::vector<std::vector<double>> leads;
      for (const auto& lead : rec.leads) {
        leads.emplace_back(lead.begin() + static_cast<long>(w * window),
                           lead.begin() + static_cast<long>((w + 1) * window));
      }
      const auto out = node.process_window(leads);
      bytes += out.tx_payload_bytes;
      energy_j += out.energy.total_j();
    }
    const double seconds = static_cast<double>(count * window) / rec.fs;
    const double power = energy_j / seconds;
    std::printf("%-8.0f %10.1f %14.1f %14.1f %12.1f\n", cr, snr,
                static_cast<double>(bytes) / seconds, 1e6 * power,
                battery.lifetime_hours(power) / 24.0);
  }
  std::printf("\nPick the highest CR whose SNR is still clinically acceptable\n"
              "(the paper uses 20 dB); everything beyond that is battery life.\n");
  return 0;
}
