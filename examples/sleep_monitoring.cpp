// Sleep monitoring scenario (Section II: behavioural information from
// beat-to-beat intervals; the abstract's "sleep state of airline pilots").
// Simulates a night fragment with changing autonomic state and prints the
// per-epoch HRV summary and staging.
//
//   $ ./examples/sleep_monitoring
#include <cstdio>

#include "core/apps.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  // Simulate ~24 minutes: wake -> light -> deep -> light (rate and
  // autonomic balance change per phase).
  struct Phase {
    double hr;
    double rsa;    // HF (vagal) modulation depth.
    double mayer;  // LF (sympathetic) modulation depth.
    int beats;
  };
  const Phase phases[] = {
      {76.0, 0.015, 0.035, 420},  // Wake: fast, LF-dominant.
      {64.0, 0.030, 0.030, 380},  // Light sleep.
      {56.0, 0.060, 0.006, 340},  // Deep sleep: slow, HF-dominant.
      {63.0, 0.030, 0.028, 380},  // Back to light.
  };

  std::vector<sig::BeatAnnotation> beats;
  double t = 1.0;
  sig::Rng rng(11);
  for (const auto& phase : phases) {
    sig::SinusRhythmParams p;
    p.mean_hr_bpm = phase.hr;
    p.rsa_depth = phase.rsa;
    p.mayer_depth = phase.mayer;
    const auto rr = generate_sinus_rr(p, phase.beats, rng);
    for (double interval : rr) {
      t += interval;
      sig::BeatAnnotation b;
      b.r_peak = static_cast<std::int64_t>(t * sig::kDefaultFs);
      b.qrs = {b.r_peak - 10, b.r_peak, b.r_peak + 10};
      beats.push_back(b);
    }
  }

  const auto epochs = core::analyze_sleep(beats, sig::kDefaultFs);
  std::printf("== Sleep monitor: %zu epochs over %.1f minutes ==\n", epochs.size(),
              t / 60.0);
  std::printf("%-8s %8s %8s %8s %8s %8s\n", "t [min]", "HR", "SDNN", "RMSSD", "LF/HF",
              "stage");
  for (const auto& epoch : epochs) {
    std::printf("%-8.1f %8.1f %8.1f %8.1f %8.2f %8s\n", epoch.start_s / 60.0,
                epoch.time_domain.mean_hr_bpm, epoch.time_domain.sdnn_ms,
                epoch.time_domain.rmssd_ms, epoch.frequency_domain.lf_hf_ratio,
                to_string(epoch.stage).c_str());
  }
  std::printf("\nOnly beat-to-beat intervals leave the node in this mode — a few\n"
              "bytes per epoch instead of a continuous sample stream (Figure 1).\n");
  return 0;
}
