// Quickstart: synthesize a 3-lead ECG, run the on-node processing chain at
// the "delineation" abstraction level and print what would go on air.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/node.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  // 1. A minute of synthetic 3-lead ECG at 250 Hz with ambulatory noise.
  sig::SynthConfig synth;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, 70}};
  synth.noise = sig::NoiseParams::preset(sig::NoiseLevel::kModerate);
  sig::Rng rng(42);
  const sig::Record record = synthesize_ecg(synth, rng);
  std::printf("synthesized %.1f s of %zu-lead ECG (%zu annotated beats)\n",
              record.duration_s(), record.num_leads(), record.beats.size());

  // 2. A node configured to transmit delineated beats instead of samples.
  core::NodeConfig cfg;
  cfg.mode = core::OperatingMode::kDelineation;
  core::WbsnNode node(cfg);

  // 3. Stream the record through the node window by window.
  const std::size_t window = cfg.window_samples;
  std::uint64_t bytes = 0;
  double energy_j = 0.0;
  std::size_t beats = 0;
  for (std::size_t w = 0; (w + 1) * window <= record.num_samples(); ++w) {
    std::vector<std::vector<double>> leads;
    for (const auto& lead : record.leads) {
      leads.emplace_back(lead.begin() + static_cast<long>(w * window),
                         lead.begin() + static_cast<long>((w + 1) * window));
    }
    const core::WindowOutput out = node.process_window(leads);
    bytes += out.tx_payload_bytes;
    energy_j += out.energy.total_j();
    beats += out.beats.size();
  }

  const std::uint64_t raw_bytes =
      core::raw_payload_bytes(window, record.num_leads()) *
      (record.num_samples() / window);
  std::printf("delineated %zu beats on-node\n", beats);
  std::printf("transmitted %llu bytes (raw streaming would send %llu: %.1fx less)\n",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(raw_bytes),
              static_cast<double>(raw_bytes) / static_cast<double>(bytes));
  std::printf("node energy: %.2f mJ for the whole record\n", 1e3 * energy_j);
  return 0;
}
