// Cuffless blood-pressure trending (Section IV-C): ECG + PPG -> per-beat
// pulse arrival time -> calibrated MAP estimate, tracking an exercise
// pressure excursion.
//
//   $ ./examples/bp_estimation
#include <cmath>
#include <cstdio>

#include "core/pat.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/ppg.hpp"

int main() {
  using namespace wbsn;

  // Subject: resting at MAP 90 mmHg with a +25 mmHg excursion (e.g. stair
  // climb) from t = 60 s to t = 120 s.
  sig::BpTrajectory bp;
  bp.baseline_mmhg = 90.0;
  bp.excursion_mmhg = 25.0;
  bp.excursion_t0_s = 60.0;
  bp.excursion_len_s = 60.0;

  sig::SynthConfig synth;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, 220}};
  synth.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(3);
  const auto ecg = synthesize_ecg(synth, rng);
  sig::PpgConfig ppg_cfg;
  ppg_cfg.noise_rms = 0.01;
  const auto ppg = synthesize_ppg(ecg, ppg_cfg, bp, rng);

  // Per-beat pulse arrival times.
  const auto series = core::compute_pat(ppg.samples, ecg.r_peaks());
  std::printf("measured PAT on %zu of %zu beats\n", series.pat_s.size(),
              ecg.beats.size());

  // Calibration: the first 30 beats against "cuff" readings (ground truth).
  std::vector<double> cal_pat;
  std::vector<double> cal_map;
  for (std::size_t k = 0; k < 30 && k < series.pat_s.size(); ++k) {
    cal_pat.push_back(series.pat_s[k]);
    cal_map.push_back(ppg.truth.map_mmhg[series.beat_index[k]]);
  }
  core::BpEstimator estimator;
  estimator.calibrate(cal_pat, cal_map);
  std::printf("calibrated: MAP = %.1f + %.3f / PAT\n", estimator.coeff_a(),
              estimator.coeff_b());

  // Trend: 10-second bins of estimated vs true MAP.
  std::printf("\n%-10s %12s %12s %10s\n", "t [s]", "est. MAP", "true MAP", "error");
  double max_err = 0.0;
  for (double t0 = 0.0; t0 + 10.0 < ecg.duration_s(); t0 += 20.0) {
    double est_acc = 0.0;
    double true_acc = 0.0;
    int n = 0;
    for (std::size_t k = 0; k < series.pat_s.size(); ++k) {
      const double tb =
          static_cast<double>(ecg.beats[series.beat_index[k]].r_peak) / ecg.fs;
      if (tb < t0 || tb >= t0 + 10.0) continue;
      est_acc += estimator.estimate_map(series.pat_s[k]);
      true_acc += ppg.truth.map_mmhg[series.beat_index[k]];
      ++n;
    }
    if (n == 0) continue;
    const double est = est_acc / n;
    const double truth = true_acc / n;
    max_err = std::max(max_err, std::abs(est - truth));
    std::printf("%-10.0f %9.1f mmHg %9.1f mmHg %7.1f mmHg\n", t0, est, truth,
                est - truth);
  }
  std::printf("\nworst 10 s-bin error: %.1f mmHg — the excursion is clearly tracked\n"
              "without any cuff after the initial calibration (Gesche 2012 style).\n",
              max_err);
  return 0;
}
