# google-benchmark via FetchContent, preferring a system install when one
# is available (FIND_PACKAGE_ARGS, CMake >= 3.24) so offline/CI builds with
# a cached or distro-packaged benchmark never touch the network — the same
# scheme as WbsnGoogleTest.cmake.  This makes bench/micro_kernels a
# first-class target instead of a silently skipped soft dependency.

include(FetchContent)

set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
set(BENCHMARK_INSTALL_DOCS OFF CACHE BOOL "" FORCE)

FetchContent_Declare(
  benchmark
  URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
  URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce
  DOWNLOAD_EXTRACT_TIMESTAMP TRUE
  FIND_PACKAGE_ARGS NAMES benchmark
)
FetchContent_MakeAvailable(benchmark)
