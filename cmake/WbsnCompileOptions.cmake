# Shared compile options: an interface target every wbsn library and
# executable links against, plus the opt-in sanitizer configuration.

add_library(wbsn_compile_options INTERFACE)
add_library(wbsn::options ALIAS wbsn_compile_options)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(wbsn_compile_options INTERFACE -Wall -Wextra)
  if(WBSN_WERROR)
    target_compile_options(wbsn_compile_options INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(wbsn_compile_options INTERFACE /W4)
  if(WBSN_WERROR)
    target_compile_options(wbsn_compile_options INTERFACE /WX)
  endif()
endif()

if(WBSN_SANITIZE AND WBSN_TSAN)
  message(FATAL_ERROR "WBSN_SANITIZE and WBSN_TSAN are mutually exclusive")
endif()

if(WBSN_SANITIZE OR WBSN_TSAN)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "Sanitizer builds require GCC or Clang")
  endif()
  if(WBSN_SANITIZE)
    set(_wbsn_sanitizers address,undefined)
  else()
    set(_wbsn_sanitizers thread)
  endif()
  # Applied globally (not via the interface target) so the flags reach
  # both the compile and the final link of every target, including
  # fetched third-party test dependencies.
  add_compile_options(-fsanitize=${_wbsn_sanitizers} -fno-omit-frame-pointer)
  add_link_options(-fsanitize=${_wbsn_sanitizers})
endif()

# Convenience function: create a wbsn static library for one src/ layer.
#   wbsn_add_layer(<name> SOURCES ... DEPS ...)
# exposes the target as both wbsn_<name> and wbsn::<name>, with the
# repository-wide "src/ is the include root" convention.
function(wbsn_add_layer name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_library(wbsn_${name} STATIC ${ARG_SOURCES})
  add_library(wbsn::${name} ALIAS wbsn_${name})
  target_include_directories(wbsn_${name} PUBLIC "${PROJECT_SOURCE_DIR}/src")
  target_link_libraries(wbsn_${name} PRIVATE wbsn::options)
  if(ARG_DEPS)
    target_link_libraries(wbsn_${name} PUBLIC ${ARG_DEPS})
  endif()
endfunction()
