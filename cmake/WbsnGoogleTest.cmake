# GoogleTest via FetchContent, preferring a system install when one is
# available (FIND_PACKAGE_ARGS, CMake >= 3.24) so offline/CI builds with a
# cached or distro-packaged GTest never touch the network.

include(FetchContent)

set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
# For Windows: prevent overriding the parent project's runtime settings.
set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)

FetchContent_Declare(
  googletest
  URL https://github.com/google/googletest/releases/download/v1.14.0/googletest-1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
  DOWNLOAD_EXTRACT_TIMESTAMP TRUE
  FIND_PACKAGE_ARGS NAMES GTest
)
FetchContent_MakeAvailable(googletest)

include(GoogleTest)
