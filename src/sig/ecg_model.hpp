// Morphological model of single heartbeats.
//
// Each beat is a sum of Gaussian waves (P, Q, R, S, T) placed on a time axis
// relative to the R peak, following the classic dynamical ECG model of
// McSharry et al. reduced to its per-beat template form.  Because every wave
// is an analytic Gaussian, exact ground-truth fiducial points (onset, peak,
// offset as in Figure 2 of the paper) fall out of the model for free: the
// peak is the Gaussian center and on/offsets sit at +/- kSupportSigmas
// standard deviations, where the wave amplitude has decayed below the
// visibility threshold used by clinical delineators.
#pragma once

#include <array>
#include <vector>

#include "sig/rng.hpp"
#include "sig/types.hpp"

namespace wbsn::sig {

/// Number of standard deviations considered the visible support of a wave.
inline constexpr double kSupportSigmas = 2.5;

/// One Gaussian component of a beat.
struct GaussWave {
  double amplitude_mv = 0.0;  ///< Signed peak amplitude in lead I.
  double center_s = 0.0;      ///< Center relative to the R peak (seconds).
  double sigma_s = 0.01;      ///< Gaussian standard deviation (seconds).

  /// Value of the wave at time `t` (seconds, relative to R peak).
  double value(double t) const;
};

/// Index of each named wave inside BeatTemplate::waves.
enum class WaveIdx : std::size_t { kP = 0, kQ = 1, kR = 2, kS = 3, kT = 4 };

/// Complete morphological template of a beat.
struct BeatTemplate {
  std::array<GaussWave, 5> waves{};  ///< P, Q, R, S, T.
  BeatClass label = BeatClass::kNormal;
  bool has_p_wave = true;

  const GaussWave& wave(WaveIdx i) const { return waves[static_cast<std::size_t>(i)]; }
  GaussWave& wave(WaveIdx i) { return waves[static_cast<std::size_t>(i)]; }

  /// Sum of all waves at time `t` relative to the R peak.
  double value(double t) const;

  /// Earliest / latest time (relative to R) at which the template is nonzero.
  double support_begin_s() const;
  double support_end_s() const;

  /// Ground-truth fiducials for a beat whose R peak sits at sample
  /// `r_sample` of a record sampled at `fs`.
  BeatAnnotation annotate(std::int64_t r_sample, double fs) const;
};

/// Canonical templates.  `rr_s` is the preceding RR interval; the T wave
/// position adapts to rate following Bazett-style QT shortening.
BeatTemplate make_normal_beat(double rr_s);
BeatTemplate make_pvc_beat(double rr_s);
BeatTemplate make_apc_beat(double rr_s);
BeatTemplate make_af_beat(double rr_s);

/// Applies bounded multiplicative jitter to amplitudes and widths so no two
/// beats are identical (as in real recordings).
void jitter_template(BeatTemplate& beat, double relative_spread, Rng& rng);

/// Per-lead projection gains modelling the electrical axis seen by each
/// electrode pair.  Leads share the cardiac source but observe each wave
/// with a different gain, which is what makes multi-lead ECG jointly sparse
/// yet not redundant (Section III-A of the paper).
struct LeadProjection {
  // One gain per wave (P, Q, R, S, T) for each lead.
  std::vector<std::array<double, 5>> wave_gains;

  std::size_t num_leads() const { return wave_gains.size(); }

  /// Standard 3-lead projection used across the repository.
  static LeadProjection standard3();

  /// Value of `beat` at time `t` as seen by `lead`.
  double project(const BeatTemplate& beat, std::size_t lead, double t) const;
};

}  // namespace wbsn::sig
