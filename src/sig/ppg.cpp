#include "sig/ppg.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace wbsn::sig {

double BpTrajectory::map_at(double t_s) const {
  if (excursion_mmhg == 0.0 || t_s < excursion_t0_s) return baseline_mmhg;
  const double rel = (t_s - excursion_t0_s) / excursion_len_s;
  if (rel >= 1.0) return baseline_mmhg;
  // Smooth raised-cosine bump.
  return baseline_mmhg + excursion_mmhg * 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * rel));
}

double BpTrajectory::pwv_for_map(double map_mmhg) const {
  // Linearized Moens-Korteweg in the physiological range: ~4 m/s at
  // 70 mmHg rising ~0.05 m/s per mmHg (consistent with Gesche et al. 2012).
  return 4.0 + 0.05 * (map_mmhg - 70.0);
}

PpgRecord synthesize_ppg(const Record& ecg, const PpgConfig& cfg, const BpTrajectory& bp,
                         Rng& rng) {
  PpgRecord ppg;
  ppg.fs = ecg.fs;
  ppg.samples.assign(ecg.num_samples(), 0.0);

  for (const auto& beat : ecg.beats) {
    const double t_r = static_cast<double>(beat.r_peak) / ecg.fs;
    const double map = bp.map_at(t_r);
    const double pwv = bp.pwv_for_map(map);
    const double ptt = cfg.artery_length_m / pwv;
    const double pat = cfg.pre_ejection_s + ptt;
    const double t_foot = t_r + pat;
    const auto foot_sample = static_cast<std::int64_t>(std::llround(t_foot * ppg.fs));
    if (foot_sample < 0 || static_cast<std::size_t>(foot_sample) >= ppg.samples.size()) {
      continue;
    }

    ppg.truth.ptt_s.push_back(ptt);
    ppg.truth.pwv_m_per_s.push_back(pwv);
    ppg.truth.map_mmhg.push_back(map);
    ppg.truth.foot_samples.push_back(foot_sample);

    // Pulse shape: systolic upstroke (half-Gaussian rise from the foot,
    // peaking at foot + ~40% of pulse width) plus a dicrotic wave.
    const double sys_peak_t = t_foot + 0.4 * cfg.pulse_width_s;
    const double sys_sigma = 0.22 * cfg.pulse_width_s;
    const double dicrotic_t = t_foot + 0.95 * cfg.pulse_width_s;
    const double dicrotic_sigma = 0.35 * cfg.pulse_width_s;
    const double amp = 1.0 + rng.normal(0.0, 0.03);

    const auto begin = static_cast<std::int64_t>(std::llround(t_foot * ppg.fs));
    const auto end = std::min<std::int64_t>(
        static_cast<std::int64_t>(ppg.samples.size()) - 1,
        static_cast<std::int64_t>(std::llround((t_foot + 2.2 * cfg.pulse_width_s) * ppg.fs)));
    for (std::int64_t s = begin; s <= end; ++s) {
      const double t = static_cast<double>(s) / ppg.fs;
      const double zs = (t - sys_peak_t) / sys_sigma;
      const double zd = (t - dicrotic_t) / dicrotic_sigma;
      ppg.samples[static_cast<std::size_t>(s)] +=
          amp * (std::exp(-0.5 * zs * zs) + cfg.dicrotic_gain * std::exp(-0.5 * zd * zd));
    }
  }

  if (cfg.noise_rms > 0.0) {
    for (auto& v : ppg.samples) v += rng.normal(0.0, cfg.noise_rms);
  }
  return ppg;
}

}  // namespace wbsn::sig
