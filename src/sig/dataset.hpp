// Standard synthetic datasets used by the benchmarks and tests.
//
// These stand in for the MIT-BIH style recordings the original work
// evaluates on (see DESIGN.md, substitution table).  Each builder returns a
// reproducible set of annotated records spanning patients (different mean
// rates, morphologies via jitter seeds), rhythms and noise conditions.
#pragma once

#include <vector>

#include "sig/ecg_synth.hpp"
#include "sig/types.hpp"

namespace wbsn::sig {

struct DatasetSpec {
  int num_records = 12;
  int beats_per_record = 120;
  std::size_t num_leads = 3;
  NoiseLevel noise = NoiseLevel::kLow;
  double pvc_probability = 0.0;
  double apc_probability = 0.0;
  double min_hr_bpm = 55.0;   ///< Records span this heart-rate range.
  double max_hr_bpm = 95.0;
  std::uint64_t seed = 42;
};

/// Normal-sinus-rhythm records across a range of heart rates (55-95 bpm).
std::vector<Record> make_sinus_dataset(const DatasetSpec& spec);

/// Arrhythmia dataset: sinus rhythm with PVC/APC ectopics sprinkled in.
std::vector<Record> make_arrhythmia_dataset(const DatasetSpec& spec);

/// AF dataset: each record alternates sinus and AF episodes so both detector
/// sensitivity (AF windows) and specificity (sinus windows) are exercised.
std::vector<Record> make_af_dataset(const DatasetSpec& spec);

}  // namespace wbsn::sig
