#include "sig/ecg_model.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::sig {

double GaussWave::value(double t) const {
  const double z = (t - center_s) / sigma_s;
  return amplitude_mv * std::exp(-0.5 * z * z);
}

double BeatTemplate::value(double t) const {
  double v = 0.0;
  for (const auto& w : waves) v += w.value(t);
  return v;
}

double BeatTemplate::support_begin_s() const {
  double begin = 0.0;
  for (const auto& w : waves) {
    if (w.amplitude_mv != 0.0) begin = std::min(begin, w.center_s - kSupportSigmas * w.sigma_s);
  }
  return begin;
}

double BeatTemplate::support_end_s() const {
  double end = 0.0;
  for (const auto& w : waves) {
    if (w.amplitude_mv != 0.0) end = std::max(end, w.center_s + kSupportSigmas * w.sigma_s);
  }
  return end;
}

namespace {

WaveFiducials fiducials_of(const GaussWave& w, std::int64_t r_sample, double fs) {
  WaveFiducials f;
  if (w.amplitude_mv == 0.0) return f;  // Absent wave -> invalid fiducials.
  const auto to_sample = [&](double t_rel) {
    return r_sample + static_cast<std::int64_t>(std::llround(t_rel * fs));
  };
  f.onset = to_sample(w.center_s - kSupportSigmas * w.sigma_s);
  f.peak = to_sample(w.center_s);
  f.offset = to_sample(w.center_s + kSupportSigmas * w.sigma_s);
  return f;
}

}  // namespace

BeatAnnotation BeatTemplate::annotate(std::int64_t r_sample, double fs) const {
  BeatAnnotation ann;
  ann.r_peak = r_sample;
  ann.label = label;
  if (has_p_wave) ann.p = fiducials_of(wave(WaveIdx::kP), r_sample, fs);
  // The QRS complex spans from the Q-wave onset to the S-wave offset, with
  // the peak on R.
  const WaveFiducials q = fiducials_of(wave(WaveIdx::kQ), r_sample, fs);
  const WaveFiducials r = fiducials_of(wave(WaveIdx::kR), r_sample, fs);
  const WaveFiducials s = fiducials_of(wave(WaveIdx::kS), r_sample, fs);
  ann.qrs.onset = q.valid() ? q.onset : r.onset;
  ann.qrs.peak = r.peak;
  ann.qrs.offset = s.valid() ? s.offset : r.offset;
  ann.t = fiducials_of(wave(WaveIdx::kT), r_sample, fs);
  return ann;
}

namespace {

/// Rate-adaptive T-wave center: QT interval shortens roughly with sqrt(RR)
/// (Bazett).  At RR = 0.857 s (70 bpm) the T peak sits ~300 ms after R.
double t_center_for_rr(double rr_s) {
  const double rr = std::clamp(rr_s, 0.4, 1.5);
  return 0.30 * std::sqrt(rr / 0.857);
}

}  // namespace

BeatTemplate make_normal_beat(double rr_s) {
  BeatTemplate beat;
  beat.label = BeatClass::kNormal;
  beat.has_p_wave = true;
  beat.wave(WaveIdx::kP) = {0.15, -0.20, 0.022};
  beat.wave(WaveIdx::kQ) = {-0.12, -0.035, 0.008};
  beat.wave(WaveIdx::kR) = {1.10, 0.0, 0.010};
  beat.wave(WaveIdx::kS) = {-0.25, 0.035, 0.009};
  beat.wave(WaveIdx::kT) = {0.30, t_center_for_rr(rr_s), 0.055};
  return beat;
}

BeatTemplate make_pvc_beat(double rr_s) {
  // Premature ventricular contraction: no preceding P wave, wide and
  // high-amplitude QRS, discordant (inverted) T wave.
  BeatTemplate beat;
  beat.label = BeatClass::kPvc;
  beat.has_p_wave = false;
  beat.wave(WaveIdx::kP) = {0.0, -0.20, 0.022};
  beat.wave(WaveIdx::kQ) = {-0.30, -0.060, 0.018};
  beat.wave(WaveIdx::kR) = {1.45, 0.0, 0.026};
  beat.wave(WaveIdx::kS) = {-0.55, 0.065, 0.020};
  beat.wave(WaveIdx::kT) = {-0.38, t_center_for_rr(rr_s) + 0.05, 0.070};
  return beat;
}

BeatTemplate make_apc_beat(double rr_s) {
  // Atrial premature contraction: early beat with a low, wide, displaced
  // P wave; QRS morphology close to normal.
  BeatTemplate beat = make_normal_beat(rr_s);
  beat.label = BeatClass::kApc;
  beat.wave(WaveIdx::kP) = {0.08, -0.17, 0.030};
  beat.wave(WaveIdx::kR).amplitude_mv = 1.00;
  return beat;
}

BeatTemplate make_af_beat(double rr_s) {
  // AF beat: normal ventricular conduction but no organized atrial
  // activity, hence no P wave.  Fibrillatory baseline activity is added by
  // the synthesizer as a continuous (not beat-locked) component.
  BeatTemplate beat = make_normal_beat(rr_s);
  beat.label = BeatClass::kAfib;
  beat.has_p_wave = false;
  beat.wave(WaveIdx::kP).amplitude_mv = 0.0;
  return beat;
}

void jitter_template(BeatTemplate& beat, double relative_spread, Rng& rng) {
  for (auto& w : beat.waves) {
    if (w.amplitude_mv == 0.0) continue;
    w.amplitude_mv *= 1.0 + rng.normal(0.0, relative_spread);
    w.sigma_s *= std::max(0.5, 1.0 + rng.normal(0.0, relative_spread * 0.6));
  }
}

LeadProjection LeadProjection::standard3() {
  LeadProjection p;
  // Gains per wave (P, Q, R, S, T) for each of the three leads.  Lead I is
  // the reference; leads II and III see the same dipole along rotated axes,
  // so waves scale differently (the T/R ratio changes per lead, S deepens in
  // lead III, ...).  Values chosen to mimic typical limb-lead ratios.
  p.wave_gains = {
      {{1.00, 1.00, 1.00, 1.00, 1.00}},
      {{1.25, 0.80, 0.85, 1.30, 1.15}},
      {{0.60, 1.40, 0.55, 1.70, 0.75}},
  };
  return p;
}

double LeadProjection::project(const BeatTemplate& beat, std::size_t lead, double t) const {
  const auto& gains = wave_gains.at(lead);
  double v = 0.0;
  for (std::size_t i = 0; i < beat.waves.size(); ++i) {
    v += gains[i] * beat.waves[i].value(t);
  }
  return v;
}

}  // namespace wbsn::sig
