// Additive noise models for synthetic ECG, covering the disturbance classes
// Section II/III-B of the paper discusses: baseline wander (respiration and
// electrode drift), powerline interference, broadband muscular (EMG)
// activity, and transient motion artifacts.  Each generator is deterministic
// given its Rng and produces a vector that is summed onto a clean lead.
#pragma once

#include <cstddef>
#include <vector>

#include "sig/rng.hpp"

namespace wbsn::sig {

/// Intensity preset used by the dataset builders.
enum class NoiseLevel { kNone, kLow, kModerate, kSevere };

struct NoiseParams {
  double baseline_wander_mv = 0.20;  ///< Peak amplitude of slow drift.
  double baseline_freq_hz = 0.25;    ///< Dominant wander frequency (breathing).
  double powerline_mv = 0.05;        ///< 50 Hz interference amplitude.
  double powerline_freq_hz = 50.0;
  double emg_rms_mv = 0.03;          ///< Broadband muscular noise RMS.
  double motion_rate_hz = 0.05;      ///< Expected motion artifacts per second.
  double motion_peak_mv = 0.6;       ///< Typical artifact excursion.
  double white_rms_mv = 0.01;        ///< Sensor/quantization floor.

  static NoiseParams preset(NoiseLevel level);
};

/// Sum-of-random-phase-sinusoids baseline wander around `baseline_freq_hz`
/// plus a bounded random walk modelling electrode half-cell drift.
std::vector<double> gen_baseline_wander(const NoiseParams& p, std::size_t n, double fs,
                                        Rng& rng);

/// Mains interference: fundamental plus a weak third harmonic with slow
/// amplitude modulation.
std::vector<double> gen_powerline(const NoiseParams& p, std::size_t n, double fs, Rng& rng);

/// EMG: white noise shaped by a first-order high-pass (muscle noise is
/// broadband but predominantly above the ECG's spectral mass).
std::vector<double> gen_emg(const NoiseParams& p, std::size_t n, double fs, Rng& rng);

/// Sparse motion artifacts: exponentially-decaying baseline jumps at Poisson
/// arrival times (electrode pulls / cable snags).
std::vector<double> gen_motion_artifacts(const NoiseParams& p, std::size_t n, double fs,
                                         Rng& rng);

/// Gaussian sensor-noise floor.
std::vector<double> gen_white(const NoiseParams& p, std::size_t n, Rng& rng);

/// Convenience: the sum of all components enabled by `p`.
std::vector<double> gen_composite(const NoiseParams& p, std::size_t n, double fs, Rng& rng);

/// Continuous fibrillatory "f waves" (4-9 Hz sawtooth-like atrial activity)
/// injected during AF episodes in place of P waves.
std::vector<double> gen_fibrillatory_waves(double amplitude_mv, std::size_t n, double fs,
                                           Rng& rng);

}  // namespace wbsn::sig
