#include "sig/rng.hpp"

#include <cmath>
#include <numbers>

namespace wbsn::sig {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // A state of all zeros is invalid for xoshiro; splitmix64 cannot produce
  // four zero outputs in a row, so no further check is needed.
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is bounded away from zero to keep log() finite.
  const double u1 = std::max(uniform(), 0x1.0p-60);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace wbsn::sig
