#include "sig/dataset.hpp"

namespace wbsn::sig {
namespace {

SynthConfig base_config(const DatasetSpec& spec, int record_idx) {
  SynthConfig cfg;
  cfg.num_leads = spec.num_leads;
  cfg.noise = NoiseParams::preset(spec.noise);
  cfg.pvc_probability = spec.pvc_probability;
  cfg.apc_probability = spec.apc_probability;
  // Spread mean heart rate across records over the configured range.
  const double frac = spec.num_records > 1
                          ? static_cast<double>(record_idx) / (spec.num_records - 1)
                          : 0.5;
  cfg.sinus.mean_hr_bpm = spec.min_hr_bpm + (spec.max_hr_bpm - spec.min_hr_bpm) * frac;
  cfg.record_name = "rec" + std::to_string(record_idx);
  return cfg;
}

}  // namespace

std::vector<Record> make_sinus_dataset(const DatasetSpec& spec) {
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(spec.num_records));
  Rng master(spec.seed);
  for (int i = 0; i < spec.num_records; ++i) {
    SynthConfig cfg = base_config(spec, i);
    cfg.episodes = {{RhythmEpisode::Kind::kSinus, spec.beats_per_record}};
    Rng rng = master.split();
    records.push_back(synthesize_ecg(cfg, rng));
  }
  return records;
}

std::vector<Record> make_arrhythmia_dataset(const DatasetSpec& spec) {
  DatasetSpec with_ectopics = spec;
  if (with_ectopics.pvc_probability == 0.0) with_ectopics.pvc_probability = 0.08;
  if (with_ectopics.apc_probability == 0.0) with_ectopics.apc_probability = 0.05;
  return make_sinus_dataset(with_ectopics);
}

std::vector<Record> make_af_dataset(const DatasetSpec& spec) {
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(spec.num_records));
  Rng master(spec.seed ^ 0xAF00AF00ULL);
  for (int i = 0; i < spec.num_records; ++i) {
    SynthConfig cfg = base_config(spec, i);
    const int quarter = spec.beats_per_record / 4;
    cfg.episodes = {
        {RhythmEpisode::Kind::kSinus, quarter},
        {RhythmEpisode::Kind::kAfib, quarter},
        {RhythmEpisode::Kind::kSinus, quarter},
        {RhythmEpisode::Kind::kAfib, spec.beats_per_record - 3 * quarter},
    };
    Rng rng = master.split();
    records.push_back(synthesize_ecg(cfg, rng));
  }
  return records;
}

}  // namespace wbsn::sig
