// Photoplethysmogram (PPG) synthesis time-locked to an ECG record.
//
// Section IV-C of the paper estimates blood pressure from the pulse arrival
// time (PAT): the delay between the ECG R peak and the arrival of the
// corresponding pressure pulse at a peripheral PPG probe.  This generator
// produces a PPG whose per-beat pulse foot trails each R peak by the
// pre-ejection period plus the pulse transit time (PTT), with PTT driven by
// a configurable arterial-stiffness/blood-pressure trajectory — giving the
// estimation pipeline a ground truth to recover.
#pragma once

#include <vector>

#include "sig/rng.hpp"
#include "sig/types.hpp"

namespace wbsn::sig {

struct PpgConfig {
  double pre_ejection_s = 0.06;   ///< Electromechanical delay before ejection.
  double artery_length_m = 0.65;  ///< Heart-to-finger path length.
  double pulse_width_s = 0.22;    ///< Systolic upstroke width.
  double dicrotic_gain = 0.35;    ///< Relative amplitude of the dicrotic wave.
  double noise_rms = 0.01;        ///< Additive sensor noise.
};

/// Ground truth attached to a synthetic PPG.
struct PpgTruth {
  std::vector<double> ptt_s;        ///< Per-beat pulse transit time.
  std::vector<double> pwv_m_per_s;  ///< Per-beat pulse wave velocity.
  std::vector<double> map_mmhg;     ///< Per-beat mean arterial pressure.
  std::vector<std::int64_t> foot_samples;  ///< Pulse-foot sample indices.
};

struct PpgRecord {
  std::vector<double> samples;
  double fs = kDefaultFs;
  PpgTruth truth;
};

/// Blood-pressure trajectory: MAP in mmHg as a function of time (seconds).
/// PWV follows the Moens-Korteweg-style monotone map used by cuffless BP
/// estimators: pwv = a + b * map.
struct BpTrajectory {
  double baseline_mmhg = 90.0;
  double excursion_mmhg = 0.0;   ///< Peak deviation (e.g. exercise bout).
  double excursion_t0_s = 0.0;   ///< Excursion onset.
  double excursion_len_s = 60.0;

  double map_at(double t_s) const;
  double pwv_for_map(double map_mmhg) const;  ///< m/s.
};

/// Synthesizes a PPG aligned with `ecg`, one pulse per annotated beat.
PpgRecord synthesize_ppg(const Record& ecg, const PpgConfig& cfg, const BpTrajectory& bp,
                         Rng& rng);

}  // namespace wbsn::sig
