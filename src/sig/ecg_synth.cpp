#include "sig/ecg_synth.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::sig {
namespace {

struct ScheduledBeat {
  double time_s = 0.0;      ///< R-peak time from record start.
  double rr_prev_s = 0.8;   ///< RR interval preceding this beat.
  BeatClass label = BeatClass::kNormal;
  bool in_af_episode = false;
};

/// Expands the episode schedule into a concrete beat list with ectopics.
std::vector<ScheduledBeat> schedule_beats(const SynthConfig& cfg, Rng& rng) {
  std::vector<ScheduledBeat> beats;
  double t = 0.6;  // Leave room for the first beat's P wave.
  for (const auto& episode : cfg.episodes) {
    if (episode.kind == RhythmEpisode::Kind::kAfib) {
      const auto rr = generate_af_rr(cfg.af, episode.num_beats, rng);
      for (double interval : rr) {
        beats.push_back({t, interval, BeatClass::kAfib, true});
        t += interval;
      }
      continue;
    }
    const auto rr = generate_sinus_rr(cfg.sinus, episode.num_beats, rng);
    std::size_t i = 0;
    while (i < rr.size()) {
      const double interval = rr[i];
      const bool make_pvc = rng.bernoulli(cfg.pvc_probability);
      const bool make_apc = !make_pvc && rng.bernoulli(cfg.apc_probability);
      if (make_pvc && i + 1 < rr.size()) {
        // PVC: short coupling interval, followed by a fully compensatory
        // pause (the sinus node keeps its phase, so coupling + pause spans
        // two normal RR intervals).
        const double coupling = 0.55 * interval;
        beats.push_back({t + coupling, coupling, BeatClass::kPvc, false});
        const double pause = 2.0 * interval - coupling;
        t += coupling + pause;
        beats.push_back({t, pause, BeatClass::kNormal, false});
        i += 2;
        continue;
      }
      if (make_apc) {
        // APC: premature atrial beat with a non-compensatory pause (the
        // sinus node resets, so the following interval is near-normal).
        const double coupling = 0.75 * interval;
        beats.push_back({t + coupling, coupling, BeatClass::kApc, false});
        t += coupling + interval;
        if (i + 1 < rr.size()) {
          beats.push_back({t, interval, BeatClass::kNormal, false});
        }
        i += 2;
        continue;
      }
      t += interval;
      beats.push_back({t, interval, BeatClass::kNormal, false});
      ++i;
    }
  }
  return beats;
}

BeatTemplate template_for(const ScheduledBeat& beat, double rr_s) {
  switch (beat.label) {
    case BeatClass::kPvc: return make_pvc_beat(rr_s);
    case BeatClass::kApc: return make_apc_beat(rr_s);
    case BeatClass::kAfib: return make_af_beat(rr_s);
    case BeatClass::kNormal: break;
  }
  return make_normal_beat(rr_s);
}

}  // namespace

Record synthesize_ecg(const SynthConfig& cfg, Rng& rng) {
  const auto scheduled = schedule_beats(cfg, rng);
  const double last_t = scheduled.empty() ? 1.0 : scheduled.back().time_s;
  const auto n = static_cast<std::size_t>(std::ceil((last_t + 0.8) * cfg.fs));

  Record record;
  record.name = cfg.record_name;
  record.fs = cfg.fs;
  record.leads.assign(cfg.num_leads, std::vector<double>(n, 0.0));

  // The standard projection defines three leads; additional leads reuse the
  // last axis with attenuation (a realistic redundant electrode placement).
  const LeadProjection projection = LeadProjection::standard3();

  // Track AF episode extents so fibrillatory activity can be confined there.
  std::vector<std::pair<std::size_t, std::size_t>> af_ranges;

  for (const auto& sched : scheduled) {
    BeatTemplate beat = template_for(sched, sched.rr_prev_s);
    jitter_template(beat, cfg.morphology_jitter, rng);
    const auto r_sample = static_cast<std::int64_t>(std::llround(sched.time_s * cfg.fs));
    if (r_sample < 0 || static_cast<std::size_t>(r_sample) >= n) continue;

    const auto begin =
        std::max<std::int64_t>(0, r_sample + static_cast<std::int64_t>(
                                      std::floor(beat.support_begin_s() * cfg.fs)));
    const auto end = std::min<std::int64_t>(
        static_cast<std::int64_t>(n) - 1,
        r_sample + static_cast<std::int64_t>(std::ceil(beat.support_end_s() * cfg.fs)));
    for (std::size_t lead = 0; lead < cfg.num_leads; ++lead) {
      const std::size_t proj_lead = std::min(lead, projection.num_leads() - 1);
      const double extra_gain = lead < projection.num_leads() ? 1.0 : 0.8;
      auto& samples = record.leads[lead];
      for (std::int64_t s = begin; s <= end; ++s) {
        const double t_rel = (static_cast<double>(s) - static_cast<double>(r_sample)) / cfg.fs;
        samples[static_cast<std::size_t>(s)] +=
            extra_gain * projection.project(beat, proj_lead, t_rel);
      }
    }

    record.beats.push_back(beat.annotate(r_sample, cfg.fs));
    if (sched.in_af_episode) {
      record.af_episode_present = true;
      const auto lo = static_cast<std::size_t>(std::max<std::int64_t>(
          0, r_sample - static_cast<std::int64_t>(sched.rr_prev_s * cfg.fs)));
      const auto hi = static_cast<std::size_t>(std::min<std::int64_t>(
          static_cast<std::int64_t>(n) - 1, r_sample + static_cast<std::int64_t>(0.4 * cfg.fs)));
      if (!af_ranges.empty() && lo <= af_ranges.back().second + 1) {
        af_ranges.back().second = std::max(af_ranges.back().second, hi);
      } else {
        af_ranges.emplace_back(lo, hi);
      }
    }
  }

  // Fibrillatory atrial activity during AF episodes (continuous, not
  // beat-locked), projected onto each lead with the P-wave gain since both
  // originate from atrial depolarization.
  if (!af_ranges.empty() && cfg.fibrillatory_mv > 0.0) {
    Rng f_rng = rng.split();
    const auto f_waves = gen_fibrillatory_waves(cfg.fibrillatory_mv, n, cfg.fs, f_rng);
    for (std::size_t lead = 0; lead < cfg.num_leads; ++lead) {
      const std::size_t proj_lead = std::min(lead, projection.num_leads() - 1);
      const double gain = projection.wave_gains[proj_lead][0];  // P-wave axis.
      for (const auto& [lo, hi] : af_ranges) {
        for (std::size_t s = lo; s <= hi; ++s) record.leads[lead][s] += gain * f_waves[s];
      }
    }
  }

  // Additive noise: baseline wander and mains pickup are common-mode-ish
  // (shared source, per-lead gain); EMG, motion and sensor noise are
  // electrode-local and therefore independent per lead.
  Rng shared_rng = rng.split();
  const auto wander = gen_baseline_wander(cfg.noise, n, cfg.fs, shared_rng);
  const auto mains = gen_powerline(cfg.noise, n, cfg.fs, shared_rng);
  for (std::size_t lead = 0; lead < cfg.num_leads; ++lead) {
    Rng lead_rng = rng.split();
    const double shared_gain = 0.8 + 0.4 * lead_rng.uniform();
    auto& samples = record.leads[lead];
    const auto emg = gen_emg(cfg.noise, n, cfg.fs, lead_rng);
    const auto motion = gen_motion_artifacts(cfg.noise, n, cfg.fs, lead_rng);
    const auto white = gen_white(cfg.noise, n, lead_rng);
    for (std::size_t s = 0; s < n; ++s) {
      samples[s] += shared_gain * (wander[s] + mains[s]) + emg[s] + motion[s] + white[s];
    }
  }

  return record;
}

}  // namespace wbsn::sig
