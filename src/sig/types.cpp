#include "sig/types.hpp"

namespace wbsn::sig {

char to_code(BeatClass c) {
  switch (c) {
    case BeatClass::kNormal: return 'N';
    case BeatClass::kPvc: return 'V';
    case BeatClass::kApc: return 'S';
    case BeatClass::kAfib: return 'A';
  }
  return '?';
}

std::vector<std::int64_t> Record::r_peaks() const {
  std::vector<std::int64_t> peaks;
  peaks.reserve(beats.size());
  for (const auto& b : beats) peaks.push_back(b.r_peak);
  return peaks;
}

std::vector<double> Record::rr_intervals_s() const {
  std::vector<double> rr;
  if (beats.size() < 2) return rr;
  rr.reserve(beats.size() - 1);
  for (std::size_t i = 1; i < beats.size(); ++i) {
    rr.push_back(static_cast<double>(beats[i].r_peak - beats[i - 1].r_peak) / fs);
  }
  return rr;
}

}  // namespace wbsn::sig
