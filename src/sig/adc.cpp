#include "sig/adc.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::sig {

std::vector<std::int32_t> quantize(std::span<const double> mv, const AdcConfig& cfg) {
  std::vector<std::int32_t> out;
  out.reserve(mv.size());
  const double scale = cfg.gain / cfg.lsb_mv();
  for (double v : mv) {
    const auto q = static_cast<std::int32_t>(std::llround(v * scale));
    out.push_back(std::clamp(q, cfg.min_count(), cfg.max_count()));
  }
  return out;
}

std::vector<double> dequantize(std::span<const std::int32_t> counts, const AdcConfig& cfg) {
  std::vector<double> out;
  out.reserve(counts.size());
  const double scale = cfg.lsb_mv() / cfg.gain;
  for (std::int32_t c : counts) out.push_back(static_cast<double>(c) * scale);
  return out;
}

std::vector<std::vector<std::int32_t>> quantize_leads(
    const std::vector<std::vector<double>>& leads, const AdcConfig& cfg) {
  std::vector<std::vector<std::int32_t>> out;
  out.reserve(leads.size());
  for (const auto& lead : leads) out.push_back(quantize(lead, cfg));
  return out;
}

}  // namespace wbsn::sig
