#include "sig/hrv.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace wbsn::sig {

std::vector<double> generate_sinus_rr(const SinusRhythmParams& params, int n, Rng& rng) {
  std::vector<double> rr;
  rr.reserve(static_cast<std::size_t>(n));
  const double base_rr = 60.0 / params.mean_hr_bpm;
  double vlf = 0.0;
  double t = 0.0;  // Cumulative time drives the oscillatory modulations.
  const double rsa_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double mayer_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (int i = 0; i < n; ++i) {
    vlf = params.vlf_rho * vlf + rng.normal(0.0, params.vlf_sigma);
    const double rsa =
        params.rsa_depth * base_rr *
        std::sin(2.0 * std::numbers::pi * params.rsa_freq_hz * t + rsa_phase);
    const double mayer =
        params.mayer_depth * base_rr *
        std::sin(2.0 * std::numbers::pi * params.mayer_freq_hz * t + mayer_phase);
    double interval = base_rr + rsa + mayer + vlf + rng.normal(0.0, params.white_sigma);
    interval = std::clamp(interval, 0.35, 2.0);
    rr.push_back(interval);
    t += interval;
  }
  return rr;
}

std::vector<double> generate_af_rr(const AfRhythmParams& params, int n, Rng& rng) {
  std::vector<double> rr;
  rr.reserve(static_cast<std::size_t>(n));
  const double base_rr = 60.0 / params.mean_hr_bpm;
  for (int i = 0; i < n; ++i) {
    // Log-normal-ish draw: broad, right-skewed, serially uncorrelated.
    const double draw = base_rr * std::exp(rng.normal(0.0, params.spread));
    rr.push_back(std::max(params.min_rr_s, std::min(draw, 1.8)));
  }
  return rr;
}

}  // namespace wbsn::sig
