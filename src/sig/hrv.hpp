// Generation of realistic RR-interval (beat-to-beat) series.
//
// Normal sinus rhythm is modelled as a mean rate modulated by respiratory
// sinus arrhythmia (high-frequency band, ~0.25 Hz), Mayer-wave baroreflex
// oscillation (low-frequency band, ~0.1 Hz) and a slowly-varying AR(1)
// component standing in for very-low-frequency drift.  Atrial fibrillation
// produces an "irregularly irregular" series: RR intervals drawn from a
// broad distribution with negligible serial correlation, which is exactly
// the statistical signature the AF detector of the paper keys on.
#pragma once

#include <vector>

#include "sig/rng.hpp"

namespace wbsn::sig {

/// Parameters of the normal-sinus-rhythm RR process.
struct SinusRhythmParams {
  double mean_hr_bpm = 70.0;    ///< Mean heart rate.
  double rsa_freq_hz = 0.25;    ///< Respiratory sinus arrhythmia frequency.
  double rsa_depth = 0.04;      ///< RSA modulation depth (fraction of RR).
  double mayer_freq_hz = 0.1;   ///< Mayer wave frequency.
  double mayer_depth = 0.02;    ///< Mayer modulation depth.
  double vlf_sigma = 0.015;     ///< AR(1) very-low-frequency jitter (s).
  double vlf_rho = 0.95;        ///< AR(1) pole.
  double white_sigma = 0.005;   ///< Unstructured beat-to-beat jitter (s).
};

/// Parameters of the atrial-fibrillation RR process.
struct AfRhythmParams {
  double mean_hr_bpm = 95.0;    ///< AF episodes usually run fast.
  double spread = 0.18;         ///< Relative spread of the RR distribution.
  double min_rr_s = 0.30;       ///< Physiological floor (ventricular refractory).
};

/// Generates `n` RR intervals (seconds) of normal sinus rhythm.
std::vector<double> generate_sinus_rr(const SinusRhythmParams& params, int n, Rng& rng);

/// Generates `n` RR intervals (seconds) of atrial fibrillation.
std::vector<double> generate_af_rr(const AfRhythmParams& params, int n, Rng& rng);

}  // namespace wbsn::sig
