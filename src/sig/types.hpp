// Common signal-domain types: beat labels, fiducial annotations and the
// multi-lead Record container shared by the whole library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wbsn::sig {

/// Default sampling rate of the acquisition front-end, in Hz.  The
/// SmartCardia-class node samples 3 ECG leads at 250 Hz with a 12-bit ADC.
inline constexpr double kDefaultFs = 250.0;

/// Physiological class of one heartbeat (AAMI-style reduced set).
enum class BeatClass : std::uint8_t {
  kNormal,       ///< Normal sinus beat.
  kPvc,          ///< Premature ventricular contraction (wide, bizarre QRS).
  kApc,          ///< Atrial premature contraction (early, altered P wave).
  kAfib,         ///< Beat inside an atrial-fibrillation episode (no P wave).
};

/// Human-readable one-letter code, matching common annotation conventions.
char to_code(BeatClass c);

/// Characteristic waves of a heartbeat (Figure 2 of the paper).
enum class Wave : std::uint8_t { kP, kQrs, kT };

/// Fiducial points of one wave: onset, peak and offset (sample indices).
struct WaveFiducials {
  std::int64_t onset = -1;
  std::int64_t peak = -1;
  std::int64_t offset = -1;

  bool valid() const { return peak >= 0; }
};

/// Half-open range of sample indices [begin, end) within one lead.  Used
/// by classifier stages to mark clinically urgent stretches of a record
/// (e.g. AF episodes) so downstream transport can prioritize them.
struct SampleSpan {
  std::int64_t begin = 0;
  std::int64_t end = 0;  ///< One past the last sample.

  bool empty() const { return end <= begin; }
  /// True when [begin, end) intersects [lo, hi).
  bool overlaps(std::int64_t lo, std::int64_t hi) const {
    return begin < hi && lo < end;
  }
};

/// Full per-beat ground-truth / detected annotation.
struct BeatAnnotation {
  std::int64_t r_peak = 0;    ///< Sample index of the R peak.
  BeatClass label = BeatClass::kNormal;
  WaveFiducials p;            ///< Absent (invalid) for AF beats.
  WaveFiducials qrs;
  WaveFiducials t;
};

/// A multi-lead recording plus its ground-truth annotations.
///
/// Samples are stored per lead in physical units (millivolt).  The ADC
/// front-end (adc.hpp) converts to integer counts for node-side processing.
struct Record {
  std::string name;
  double fs = kDefaultFs;
  std::vector<std::vector<double>> leads;   ///< [lead][sample], mV.
  std::vector<BeatAnnotation> beats;        ///< Sorted by r_peak.
  bool af_episode_present = false;          ///< Any kAfib beats present.

  std::size_t num_leads() const { return leads.size(); }
  std::size_t num_samples() const { return leads.empty() ? 0 : leads[0].size(); }
  double duration_s() const { return static_cast<double>(num_samples()) / fs; }

  /// View of one lead.
  std::span<const double> lead(std::size_t i) const { return leads.at(i); }

  /// R-peak sample indices of all annotated beats.
  std::vector<std::int64_t> r_peaks() const;

  /// RR interval series in seconds (size = beats-1).
  std::vector<double> rr_intervals_s() const;
};

}  // namespace wbsn::sig
