#include "sig/noise.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

namespace wbsn::sig {

NoiseParams NoiseParams::preset(NoiseLevel level) {
  NoiseParams p;
  switch (level) {
    case NoiseLevel::kNone:
      p.baseline_wander_mv = 0.0;
      p.powerline_mv = 0.0;
      p.emg_rms_mv = 0.0;
      p.motion_rate_hz = 0.0;
      p.white_rms_mv = 0.0;
      break;
    case NoiseLevel::kLow:
      p.baseline_wander_mv = 0.08;
      p.powerline_mv = 0.02;
      p.emg_rms_mv = 0.01;
      p.motion_rate_hz = 0.0;
      p.white_rms_mv = 0.005;
      break;
    case NoiseLevel::kModerate:
      // Defaults in the struct correspond to the moderate ambulatory case.
      break;
    case NoiseLevel::kSevere:
      p.baseline_wander_mv = 0.45;
      p.powerline_mv = 0.12;
      p.emg_rms_mv = 0.08;
      p.motion_rate_hz = 0.12;
      p.motion_peak_mv = 1.0;
      p.white_rms_mv = 0.02;
      break;
  }
  return p;
}

std::vector<double> gen_baseline_wander(const NoiseParams& p, std::size_t n, double fs,
                                        Rng& rng) {
  std::vector<double> out(n, 0.0);
  if (p.baseline_wander_mv <= 0.0) return out;
  // Three sinusoids clustered around the breathing frequency.
  struct Component { double amp, freq, phase; };
  std::array<Component, 3> comps{};
  const double base_amp = p.baseline_wander_mv;
  comps[0] = {base_amp * 0.6, p.baseline_freq_hz, rng.uniform(0.0, 2.0 * std::numbers::pi)};
  comps[1] = {base_amp * 0.3, p.baseline_freq_hz * rng.uniform(0.35, 0.6),
              rng.uniform(0.0, 2.0 * std::numbers::pi)};
  comps[2] = {base_amp * 0.15, p.baseline_freq_hz * rng.uniform(1.4, 2.0),
              rng.uniform(0.0, 2.0 * std::numbers::pi)};
  // Bounded random walk for electrode drift; leaky integration keeps it
  // zero-mean over long records.
  double walk = 0.0;
  const double walk_sigma = base_amp * 0.02;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    double v = 0.0;
    for (const auto& c : comps) {
      v += c.amp * std::sin(2.0 * std::numbers::pi * c.freq * t + c.phase);
    }
    walk = 0.999 * walk + rng.normal(0.0, walk_sigma);
    out[i] = v + walk;
  }
  return out;
}

std::vector<double> gen_powerline(const NoiseParams& p, std::size_t n, double fs, Rng& rng) {
  std::vector<double> out(n, 0.0);
  if (p.powerline_mv <= 0.0) return out;
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double mod_freq = rng.uniform(0.05, 0.2);  // Slow amplitude breathing.
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double mod = 1.0 + 0.2 * std::sin(2.0 * std::numbers::pi * mod_freq * t);
    const double w = 2.0 * std::numbers::pi * p.powerline_freq_hz * t + phase;
    out[i] = p.powerline_mv * mod * (std::sin(w) + 0.15 * std::sin(3.0 * w));
  }
  return out;
}

std::vector<double> gen_emg(const NoiseParams& p, std::size_t n, double fs, Rng& rng) {
  std::vector<double> out(n, 0.0);
  if (p.emg_rms_mv <= 0.0) return out;
  // First-order high-pass on white noise, cutoff ~20 Hz.
  const double rc = 1.0 / (2.0 * std::numbers::pi * 20.0);
  const double alpha = rc / (rc + 1.0 / fs);
  double prev_in = 0.0;
  double prev_out = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.normal();
    prev_out = alpha * (prev_out + x - prev_in);
    prev_in = x;
    out[i] = prev_out;
  }
  // Normalize to requested RMS.
  double sum_sq = 0.0;
  for (double v : out) sum_sq += v * v;
  const double rms = std::sqrt(sum_sq / static_cast<double>(n));
  if (rms > 0.0) {
    const double scale = p.emg_rms_mv / rms;
    for (double& v : out) v *= scale;
  }
  return out;
}

std::vector<double> gen_motion_artifacts(const NoiseParams& p, std::size_t n, double fs,
                                         Rng& rng) {
  std::vector<double> out(n, 0.0);
  if (p.motion_rate_hz <= 0.0) return out;
  // Poisson arrivals: per-sample probability = rate / fs.
  const double prob = p.motion_rate_hz / fs;
  for (std::size_t i = 0; i < n; ++i) {
    if (!rng.bernoulli(prob)) continue;
    const double peak = rng.normal(0.0, p.motion_peak_mv);
    const double tau_samples = rng.uniform(0.1, 0.5) * fs;  // 100-500 ms decay.
    for (std::size_t j = i; j < n; ++j) {
      const double decay = std::exp(-static_cast<double>(j - i) / tau_samples);
      if (decay < 1e-3) break;
      out[j] += peak * decay;
    }
  }
  return out;
}

std::vector<double> gen_white(const NoiseParams& p, std::size_t n, Rng& rng) {
  std::vector<double> out(n, 0.0);
  if (p.white_rms_mv <= 0.0) return out;
  for (double& v : out) v = rng.normal(0.0, p.white_rms_mv);
  return out;
}

std::vector<double> gen_composite(const NoiseParams& p, std::size_t n, double fs, Rng& rng) {
  std::vector<double> out = gen_baseline_wander(p, n, fs, rng);
  const auto add = [&out](const std::vector<double>& other) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += other[i];
  };
  add(gen_powerline(p, n, fs, rng));
  add(gen_emg(p, n, fs, rng));
  add(gen_motion_artifacts(p, n, fs, rng));
  add(gen_white(p, n, rng));
  return out;
}

std::vector<double> gen_fibrillatory_waves(double amplitude_mv, std::size_t n, double fs,
                                           Rng& rng) {
  std::vector<double> out(n, 0.0);
  if (amplitude_mv <= 0.0) return out;
  // Frequency-wandering oscillation in the 4-9 Hz atrial band with a second
  // harmonic giving the characteristic sawtooth-ish shape.
  double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  double freq = rng.uniform(5.0, 7.0);
  for (std::size_t i = 0; i < n; ++i) {
    freq += rng.normal(0.0, 0.01);
    freq = std::clamp(freq, 4.0, 9.0);
    phase += 2.0 * std::numbers::pi * freq / fs;
    out[i] = amplitude_mv * (std::sin(phase) + 0.3 * std::sin(2.0 * phase));
  }
  return out;
}

}  // namespace wbsn::sig
