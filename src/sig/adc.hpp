// Acquisition front-end model: amplification, sampling and quantization.
//
// The node-side processing chain (filters, delineators, classifiers, CS
// encoder) runs on integer samples, exactly as it would on the 16-bit MCU of
// the SmartCardia platform.  This model converts physical-unit (mV) signals
// into ADC counts with configurable resolution, full-scale range and
// saturation, and back (for host-side quality metrics).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wbsn::sig {

struct AdcConfig {
  int bits = 12;                  ///< Resolution.
  double full_scale_mv = 5.0;     ///< Input range is [-fs/2, +fs/2] after gain.
  double gain = 1.0;              ///< Analog front-end gain.

  std::int32_t max_count() const { return (1 << (bits - 1)) - 1; }
  std::int32_t min_count() const { return -(1 << (bits - 1)); }
  double lsb_mv() const { return full_scale_mv / static_cast<double>(1 << bits); }
};

/// Quantizes a physical-unit signal to signed ADC counts (mid-tread,
/// saturating).
std::vector<std::int32_t> quantize(std::span<const double> mv, const AdcConfig& cfg);

/// Reconstructs physical units from counts (inverse of the ideal quantizer).
std::vector<double> dequantize(std::span<const std::int32_t> counts, const AdcConfig& cfg);

/// Quantizes every lead of a multi-lead record.
std::vector<std::vector<std::int32_t>> quantize_leads(
    const std::vector<std::vector<double>>& leads, const AdcConfig& cfg);

}  // namespace wbsn::sig
