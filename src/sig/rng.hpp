// Deterministic pseudo-random number generation for all synthetic workloads.
//
// Every experiment in the repository derives its randomness from an explicit
// 64-bit seed through this generator, so results are bit-reproducible across
// runs and platforms.  The engine is xoshiro256** (Blackman & Vigna), seeded
// via splitmix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>

namespace wbsn::sig {

/// Counter-seeded xoshiro256** engine with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Derive an independent child generator (for parallel sub-streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace wbsn::sig
