// Multi-lead ECG synthesizer with exact ground truth.
//
// The synthesizer composes: a rhythm schedule (episodes of normal sinus
// rhythm and atrial fibrillation), ectopic beat injection (PVC/APC with
// physiological coupling intervals and compensatory pauses), per-beat
// morphological jitter, per-lead projection of the cardiac source, AF
// fibrillatory baseline activity, and the additive noise models of
// noise.hpp.  Every generated Record carries complete per-beat annotations
// (R peak, class label, P/QRS/T fiducials), making sensitivity/specificity
// evaluation of downstream delineators and classifiers exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sig/ecg_model.hpp"
#include "sig/hrv.hpp"
#include "sig/noise.hpp"
#include "sig/rng.hpp"
#include "sig/types.hpp"

namespace wbsn::sig {

/// One contiguous stretch of a single rhythm.
struct RhythmEpisode {
  enum class Kind { kSinus, kAfib } kind = Kind::kSinus;
  int num_beats = 60;
};

/// Full generator configuration.
struct SynthConfig {
  double fs = kDefaultFs;
  std::size_t num_leads = 3;
  std::vector<RhythmEpisode> episodes = {{RhythmEpisode::Kind::kSinus, 120}};
  SinusRhythmParams sinus{};
  AfRhythmParams af{};
  double pvc_probability = 0.0;   ///< Per-beat chance of a PVC (sinus episodes).
  double apc_probability = 0.0;   ///< Per-beat chance of an APC (sinus episodes).
  double morphology_jitter = 0.05;
  double fibrillatory_mv = 0.05;  ///< f-wave amplitude during AF episodes.
  NoiseParams noise = NoiseParams::preset(NoiseLevel::kNone);
  std::string record_name = "synth";
};

/// Generates one annotated multi-lead record.
Record synthesize_ecg(const SynthConfig& config, Rng& rng);

}  // namespace wbsn::sig
