// Host-side CS reconstruction: FISTA with wavelet-domain sparsity, plus
// the jointly-sparse multi-lead variant (group LASSO across leads).
//
// The node only encodes (sensing_matrix.hpp); reconstruction runs on the
// receiver (smartphone / server — reference [5] demonstrated a real-time
// phone decoder).  The single-lead solver minimizes
//     0.5 || y - Phi Psi' a ||^2 + lambda ||a||_1
// over wavelet coefficients a (Psi = orthonormal Daubechies-4), via FISTA
// (Beck & Teboulle, 2009).  The multi-lead solver replaces the l1 penalty
// by the l2,1 mixed norm over coefficient *rows* (one row = the same
// coefficient index across all leads), exploiting the inter-lead common
// support the paper's reference [6] identifies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cs/sensing_matrix.hpp"

namespace wbsn::cs {

struct FistaConfig {
  int max_iterations = 200;
  double lambda_rel = 0.001;   ///< lambda = lambda_rel * max|A' y|.
  double tolerance = 1e-6;     ///< Relative iterate-change stop criterion.
  int dwt_levels = 5;
  /// Re-fit the non-zero coefficients by least squares after FISTA
  /// (conjugate gradient on the support).  Removes the soft-threshold
  /// shrinkage bias; typically worth several dB.
  bool debias = true;
  int debias_iterations = 30;
};

struct FistaResult {
  std::vector<double> signal;        ///< Reconstructed time-domain window.
  std::vector<double> coefficients;  ///< Final wavelet coefficients.
  int iterations_run = 0;
};

/// Grow-only solve arena for fista_solve_batch_into: owns every iterate,
/// momentum point, gradient, interleaved measurement copy, DWT scratch,
/// and debias buffer a batched solve needs, keyed by (m, n, batch).
/// ensure() reallocates a buffer only when a required size first exceeds
/// its high-water capacity, so steady-state solves of a stable shape —
/// or any smaller one — perform zero heap allocations.  Not thread-safe:
/// one workspace per worker thread.
class FistaWorkspace {
 public:
  /// Sizes every buffer for an m x n problem solved `batch` windows at a
  /// time.  Grow-only: shrinking shapes reuse the existing storage.
  void ensure(std::size_t m, std::size_t n, std::size_t batch);

  /// Sizes only the debias buffers (the standalone debias path).
  void ensure_debias(std::size_t m, std::size_t n);

  /// Number of ensure() calls that had to grow at least one buffer (test
  /// hook: goes flat once the shape high-water mark is reached).
  std::size_t grow_count() const { return grow_count_; }

  // Buffers, public for the solver core and the pointer-stability tests.
  // Interleaved, capacity >= m * batch:
  std::vector<double> y, y2, buf_m;
  // Interleaved, capacity >= n * batch:
  std::vector<double> buf_n, aty, grad, xz, dwt_scr, a, z, a_prev, a2, z2;
  /// Extracted coefficients, window-major: window b's row occupies
  /// [b * n, b * n + n) after a fista_solve_batch_into call (post-debias).
  std::vector<double> final_a;
  // Per-lane, capacity >= batch:
  std::vector<double> tau, tau2, delta, scale;
  std::vector<std::size_t> owner, owner2, kept;
  // Debias scratch (operates one window at a time):
  std::vector<std::uint8_t> db_mask;
  std::vector<double> db_full, db_time, db_scr, db_g, db_dir, db_gnext;  // n
  std::vector<double> db_resid, db_ad;                                   // m

 private:
  template <class Vec>
  static bool grow(Vec& v, std::size_t need) {
    if (v.size() >= need) return false;
    v.resize(need);
    return true;
  }
  std::size_t grow_count_ = 0;
};

/// One window's output slot for fista_solve_batch_into: `signal` is a
/// caller-owned buffer of n samples filled in place (e.g. a pooled
/// WindowResult buffer); coefficients stay in the workspace's final_a.
struct FistaWindowOut {
  std::span<double> signal;
  int iterations_run = 0;
};

/// Single-lead reconstruction of a window of `n` samples from `y`.
/// Equivalent to fista_solve_batch with one window.
FistaResult fista_reconstruct(const SensingMatrix& phi, std::span<const double> y,
                              const FistaConfig& cfg = {});

/// Solves several independent windows that share one sensing matrix in a
/// single batched FISTA pass: the windows are interleaved element-major
/// so the packed matrix plan and the DWT filters stream once per
/// iteration across the whole batch.  Each window keeps its own lambda
/// and its own stopping iteration (converged windows are extracted and
/// compacted out while the rest continue, so stragglers don't pay for
/// finished lanes), and every per-window result is bit-identical to a
/// solo fista_reconstruct of that window — batching is purely an
/// execution-layout optimization (the kern layer's batch-width
/// contract), which is what lets host::ReconstructionEngine batch
/// opportunistically without breaking its determinism guarantee.
std::vector<FistaResult> fista_solve_batch(const SensingMatrix& phi,
                                           std::span<const std::vector<double>> ys,
                                           const FistaConfig& cfg = {});

/// Allocation-free core of fista_solve_batch: measurements arrive as
/// borrowed views, signals land in the caller's buffers (outs[b].signal,
/// n samples each), and every intermediate lives in `ws` — after the
/// first solve of a given shape the steady state performs zero heap
/// allocations.  Bit-identical to fista_solve_batch window for window
/// (the allocating API is a thin wrapper over this one).
void fista_solve_batch_into(const SensingMatrix& phi,
                            std::span<const std::span<const double>> ys,
                            const FistaConfig& cfg, FistaWorkspace& ws,
                            std::span<FistaWindowOut> outs);

struct GroupFistaResult {
  std::vector<std::vector<double>> signals;  ///< [lead][sample].
  int iterations_run = 0;
};

/// Joint multi-lead reconstruction; `ys[l]` holds lead l's measurements
/// (all leads sensed with the same Phi, as on the node).
GroupFistaResult group_fista_reconstruct(const SensingMatrix& phi,
                                         std::span<const std::vector<double>> ys,
                                         const FistaConfig& cfg = {});

/// Joint multi-lead reconstruction with one sensing matrix per lead.
/// Sensing each lead with an *independent* matrix costs the node nothing
/// (each matrix is a stored seed) but de-correlates the measurement
/// operators, which is where most of the joint-recovery gain over
/// independent decoding comes from.
GroupFistaResult group_fista_reconstruct_multi(std::span<const SensingMatrix> phis,
                                               std::span<const std::vector<double>> ys,
                                               const FistaConfig& cfg = {});

/// Orthogonal matching pursuit baseline (greedy; for ablations).
struct OmpConfig {
  std::size_t max_atoms = 64;
  double residual_tolerance = 1e-3;  ///< Stop when ||r||/||y|| drops below.
  int dwt_levels = 5;
};

std::vector<double> omp_reconstruct(const SensingMatrix& phi, std::span<const double> y,
                                    const OmpConfig& cfg = {});

/// Reconstruction quality: SNR in dB = 10 log10(||x||^2 / ||x - xhat||^2),
/// the metric of Figure 5.
double reconstruction_snr_db(std::span<const double> reference,
                             std::span<const double> reconstructed);

/// Percentage root-mean-square difference (PRD), the companion metric.
double prd_percent(std::span<const double> reference,
                   std::span<const double> reconstructed);

}  // namespace wbsn::cs
