#include "cs/pipeline.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::cs {
namespace {

/// Splits a lead into full windows of cfg.window_samples.
std::size_t window_count(std::size_t total, std::size_t window) { return total / window; }

}  // namespace

EncodedWindow encode_window(const SensingMatrix& phi, std::span<const double> window_mv,
                            const sig::AdcConfig& adc, bool keep_reference,
                            dsp::OpCount* ops) {
  const auto counts = sig::quantize(window_mv, adc);
  const auto y_int = phi.encode(counts, ops);
  EncodedWindow out;
  out.measurements.assign(y_int.begin(), y_int.end());
  const double lsb = measurement_scale_mv(adc);
  for (double& v : out.measurements) v *= lsb;
  if (keep_reference) out.reference = sig::dequantize(counts, adc);
  return out;
}

const SensingMatrix& AdaptiveEncoder::matrix_for_cr(double cr_percent) {
  const std::size_t m = rows_for_cr(cr_percent, cfg_.window_samples);
  const auto found = matrices_.find(m);
  if (found != matrices_.end()) return found->second;
  sig::Rng rng(cfg_.matrix_seed);
  return matrices_
      .emplace(m, SensingMatrix::make_sparse_binary(m, cfg_.window_samples,
                                                    cfg_.ones_per_column, rng))
      .first->second;
}

EncodedWindow AdaptiveEncoder::encode_at(double cr_percent, std::span<const double> window_mv,
                                         bool keep_reference) {
  return encode_window(matrix_for_cr(cr_percent), window_mv, cfg_.adc, keep_reference);
}

CsRunResult run_single_lead_cs(std::span<const double> lead, double cr_percent,
                               const CsPipelineConfig& cfg) {
  CsRunResult result;
  result.cr_percent = cr_percent;
  const std::size_t n = cfg.window_samples;
  const std::size_t m = rows_for_cr(cr_percent, n);
  sig::Rng rng(cfg.matrix_seed);
  const auto phi = SensingMatrix::make_sparse_binary(m, n, cfg.ones_per_column, rng);

  dsp::OpCount encode_ops;
  double snr_acc = 0.0;
  const std::size_t windows = window_count(lead.size(), n);
  for (std::size_t w = 0; w < windows; ++w) {
    const auto window_mv = lead.subspan(w * n, n);
    // Node side: quantize and encode in integers; host side: reconstruct
    // and score against the quantized-then-dequantized reference — the
    // best any lossless link could deliver.
    const auto encoded = encode_window(phi, window_mv, cfg.adc,
                                       /*keep_reference=*/true, &encode_ops);
    result.measurement_count += encoded.measurements.size();
    const auto recon = fista_reconstruct(phi, encoded.measurements, cfg.fista);
    snr_acc += reconstruction_snr_db(encoded.reference, recon.signal);
  }
  result.windows = windows;
  result.mean_snr_db = windows > 0 ? snr_acc / static_cast<double>(windows) : 0.0;
  result.encode_ops = encode_ops.total();
  return result;
}

namespace {

CsRunResult run_multi_lead_impl(const sig::Record& record, double cr_percent,
                                const CsPipelineConfig& cfg, bool joint) {
  CsRunResult result;
  result.cr_percent = cr_percent;
  const std::size_t n = cfg.window_samples;
  const std::size_t m = rows_for_cr(cr_percent, n);
  // One independent matrix per lead: free on the node (a per-lead seed),
  // and it de-correlates the measurement operators, which is what lets
  // joint decoding pull ahead of lead-by-lead decoding.
  std::vector<SensingMatrix> phis;
  for (std::size_t l = 0; l < record.num_leads(); ++l) {
    sig::Rng rng(lead_matrix_seed(cfg.matrix_seed, l));
    phis.push_back(SensingMatrix::make_sparse_binary(m, n, cfg.ones_per_column, rng));
  }

  dsp::OpCount encode_ops;
  double snr_acc = 0.0;
  std::size_t scored = 0;
  const std::size_t windows = window_count(record.num_samples(), n);
  for (std::size_t w = 0; w < windows; ++w) {
    std::vector<std::vector<double>> ys;
    std::vector<std::vector<double>> references;
    for (std::size_t l = 0; l < record.leads.size(); ++l) {
      const auto& lead = record.leads[l];
      const auto window_mv =
          std::span<const double>(lead).subspan(w * n, n);
      auto encoded = encode_window(phis[l], window_mv, cfg.adc,
                                   /*keep_reference=*/true, &encode_ops);
      result.measurement_count += encoded.measurements.size();
      ys.push_back(std::move(encoded.measurements));
      references.push_back(std::move(encoded.reference));
    }

    if (joint) {
      const auto recon = group_fista_reconstruct_multi(phis, ys, cfg.fista);
      for (std::size_t l = 0; l < ys.size(); ++l) {
        snr_acc += reconstruction_snr_db(references[l], recon.signals[l]);
        ++scored;
      }
    } else {
      for (std::size_t l = 0; l < ys.size(); ++l) {
        const auto recon = fista_reconstruct(phis[l], ys[l], cfg.fista);
        snr_acc += reconstruction_snr_db(references[l], recon.signal);
        ++scored;
      }
    }
  }
  result.windows = windows;
  result.mean_snr_db = scored > 0 ? snr_acc / static_cast<double>(scored) : 0.0;
  result.encode_ops = encode_ops.total();
  return result;
}

}  // namespace

CsRunResult run_multi_lead_cs(const sig::Record& record, double cr_percent,
                              const CsPipelineConfig& cfg) {
  return run_multi_lead_impl(record, cr_percent, cfg, /*joint=*/true);
}

CsRunResult run_independent_leads_cs(const sig::Record& record, double cr_percent,
                                     const CsPipelineConfig& cfg) {
  return run_multi_lead_impl(record, cr_percent, cfg, /*joint=*/false);
}

double cr_at_snr(std::span<const double> crs, std::span<const double> snrs,
                 double target_snr_db) {
  // SNR decreases with CR; walk from the highest CR down to find the
  // crossing and interpolate.
  double best = 0.0;
  for (std::size_t i = 0; i + 1 < crs.size(); ++i) {
    const double snr_a = snrs[i];
    const double snr_b = snrs[i + 1];
    if ((snr_a >= target_snr_db && snr_b <= target_snr_db) ||
        (snr_a <= target_snr_db && snr_b >= target_snr_db)) {
      const double frac = (target_snr_db - snr_a) / (snr_b - snr_a + 1e-12);
      best = std::max(best, crs[i] + frac * (crs[i + 1] - crs[i]));
    } else if (snr_a >= target_snr_db) {
      best = std::max(best, crs[i]);
    }
  }
  if (!crs.empty() && snrs.back() >= target_snr_db) best = std::max(best, crs.back());
  return best;
}

}  // namespace wbsn::cs
