// Window-level CS compression pipeline and the CR-sweep driver behind
// Figure 5: quantize -> encode on the "node" -> reconstruct on the "host"
// -> score SNR against the pre-compression signal.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "cs/fista.hpp"
#include "cs/sensing_matrix.hpp"
#include "sig/adc.hpp"
#include "sig/types.hpp"

namespace wbsn::cs {

struct CsPipelineConfig {
  std::size_t window_samples = 512;   ///< ~2 s at 250 Hz.
  std::size_t ones_per_column = 4;    ///< Sparse-binary density (d).
  std::uint64_t matrix_seed = 0xC0FFEE;
  FistaConfig fista{};
  sig::AdcConfig adc{};
};

/// Result of compressing one record at one compression ratio.
struct CsRunResult {
  double cr_percent = 0.0;
  double mean_snr_db = 0.0;       ///< Averaged over windows (and leads).
  std::size_t windows = 0;
  std::uint64_t encode_ops = 0;   ///< Node-side ops for the whole record.
  std::size_t measurement_count = 0;  ///< Total measurements produced.
};

/// Node-side encoding conventions shared by the Figure 5 pipeline and the
/// host reconstruction engine (host/reconstruction_engine.hpp).  Keeping
/// them in one place is what makes engine output comparable to the
/// pipeline and keeps the node/host matrix-seed contract honest.

/// Per-lead sensing-matrix seed: the node derives lead l's operator from
/// the shared base seed.
inline std::uint64_t lead_matrix_seed(std::uint64_t base_seed, std::size_t lead) {
  return base_seed + lead;
}

/// Scale factor from integer measurements back to physical units (mV).
inline double measurement_scale_mv(const sig::AdcConfig& adc) {
  return adc.lsb_mv() / adc.gain;
}

/// Transport priority of one compressed window.  Part of the node->host
/// window metadata: the node's classifier chain (cls::af_urgent_spans)
/// tags windows that overlap a suspected-AF stretch as urgent, and the
/// host fabric lets urgent windows jump the reconstruction backlog.
/// Priority never changes reconstruction *values* (the determinism
/// contract is priority-blind) — only queueing order and shed policy.
enum class WindowPriority : std::uint8_t {
  kRoutine = 0,  ///< Normal telemetry; may be shed first under overload.
  kUrgent = 1,   ///< Alarm-path window (e.g. AF): jumps the backlog.
};

/// Number of priority lanes (array sizing for per-lane accounting).
inline constexpr std::size_t kPriorityLanes = 2;

inline const char* to_string(WindowPriority p) {
  return p == WindowPriority::kUrgent ? "urgent" : "routine";
}

/// The solve fidelity tier of one window on the host.  Tier 0 (the
/// default-constructed value) is full fidelity: every measurement, the
/// solver's configured iteration budget — the PR-8 behavior, bit for bit.
/// Higher tiers are cheaper operating points on the Figure-5 SNR-vs-CR
/// curve, reached by truncating the measurement vector (effective_m — a
/// higher effective CR without the node re-encoding) and/or capping FISTA
/// iterations.  Unlike WindowPriority, the tier DOES change reconstruction
/// values — the determinism contract becomes per (payload, tier): the same
/// window solved at the same tier is bit-identical everywhere.
struct SolveTier {
  std::uint8_t tier = 0;           ///< 0 = full fidelity; 1.. = degrade_tiers[tier-1].
  std::uint32_t effective_m = 0;   ///< Solve only the first m measurements; 0 = all.
  std::uint32_t iteration_cap = 0; ///< Cap on FistaConfig::max_iterations; 0 = none.

  bool operator==(const SolveTier&) const = default;
};

/// Real-time arrival period of one window: a node sampling at `fs_hz`
/// emits a compressed window every `window_samples / fs_hz` seconds, so
/// this is both the mean inter-arrival time of live traffic and the
/// natural per-window latency deadline — the decoder keeps up with a
/// patient iff it reconstructs each window before the next one lands.
inline double window_period_ms(std::size_t window_samples, double fs_hz = sig::kDefaultFs) {
  return 1000.0 * static_cast<double>(window_samples) / fs_hz;
}

/// One window quantized and encoded node-side: measurements already scaled
/// to mV, plus (optionally) the quantized-then-dequantized window — the
/// reference the best lossless link could deliver, used for SNR scoring.
struct EncodedWindow {
  std::vector<double> measurements;
  std::vector<double> reference;
};

EncodedWindow encode_window(const SensingMatrix& phi, std::span<const double> window_mv,
                            const sig::AdcConfig& adc, bool keep_reference = true,
                            dsp::OpCount* ops = nullptr);

/// Node-side half of the closed compression loop: encodes windows at a CR
/// that can change window to window (following host CR hints), caching one
/// sensing matrix per distinct measurement count so chasing a hint never
/// rebuilds an operator per window.  The matrix for a CR is the seeded
/// operator the host rebuilds from the same metadata (matrix_seed,
/// rows_for_cr(cr, n), ones_per_column), so a hinted window reconstructs
/// exactly like a natively-encoded one — the hint changes m, nothing else.
class AdaptiveEncoder {
 public:
  explicit AdaptiveEncoder(CsPipelineConfig cfg = {}) : cfg_(cfg) {}

  /// The cached operator for `cr_percent` (built on first use).
  const SensingMatrix& matrix_for_cr(double cr_percent);

  /// Quantizes and encodes one window at `cr_percent`.
  EncodedWindow encode_at(double cr_percent, std::span<const double> window_mv,
                          bool keep_reference = true);

  const CsPipelineConfig& config() const { return cfg_; }
  std::size_t cached_matrices() const { return matrices_.size(); }

 private:
  CsPipelineConfig cfg_;
  /// Keyed by m = rows_for_cr(cr, window_samples): two CRs that round to
  /// the same measurement count share one operator, matching the host's
  /// matrix cache key.
  std::map<std::size_t, SensingMatrix> matrices_;
};

/// Single-lead CS over `lead` (mV) at the given CR.
CsRunResult run_single_lead_cs(std::span<const double> lead, double cr_percent,
                               const CsPipelineConfig& cfg = {});

/// Joint multi-lead CS over all leads of `record` at the given CR.
CsRunResult run_multi_lead_cs(const sig::Record& record, double cr_percent,
                              const CsPipelineConfig& cfg = {});

/// Independent per-lead CS (the non-joint multi-lead baseline: same data,
/// but each lead reconstructed alone — the ablation for joint recovery).
CsRunResult run_independent_leads_cs(const sig::Record& record, double cr_percent,
                                     const CsPipelineConfig& cfg = {});

/// Finds (by linear interpolation over a sweep) the largest CR at which
/// the mean SNR still reaches `target_snr_db` — the paper quotes these
/// operating points as CR = 65.9 % (single) / 72.7 % (multi).
double cr_at_snr(std::span<const double> crs, std::span<const double> snrs,
                 double target_snr_db);

}  // namespace wbsn::cs
