#include "cs/fista.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/wavelet.hpp"
#include "kern/backend.hpp"

namespace wbsn::cs {
namespace {

double norm2(std::span<const double> v) {
  return std::sqrt(kern::ops().nrm2_sq(v.data(), v.size()));
}

/// Largest singular value squared of Phi via power iteration (the sparsity
/// basis is orthonormal, so it equals the Lipschitz constant of the
/// composed operator's gradient).
double lipschitz_of(const SensingMatrix& phi) {
  std::vector<double> v(phi.cols(), 1.0);
  double lambda = 1.0;
  for (int it = 0; it < 40; ++it) {
    const auto w = phi.apply_adjoint(phi.apply(v));
    lambda = norm2(w);
    if (lambda <= 0.0) return 1.0;
    v = w;
    for (double& x : v) x /= lambda;
  }
  return std::max(lambda, 1e-9);
}

/// Least-squares refit of `a` restricted to its non-zero support:
/// conjugate gradient on the normal equations of the composed operator
/// A = Phi Psi' (masked to the support).
void debias_on_support(const SensingMatrix& phi, int levels, std::span<const double> y,
                       std::vector<double>& a, int iterations) {
  const auto& k = kern::ops();
  const std::size_t n = a.size();
  std::vector<std::uint8_t> mask(n, 0);
  std::size_t support = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = a[i] != 0.0;
    support += mask[i];
  }
  if (support == 0 || support > phi.rows()) return;  // Under-determined: skip.

  const auto apply_masked = [&](const std::vector<double>& c) {
    std::vector<double> full(c);
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask[i]) full[i] = 0.0;
    }
    return phi.apply(dsp::dwt_inverse(full, levels));
  };
  const auto adjoint_masked = [&](std::span<const double> r) {
    auto g = dsp::dwt_forward(phi.apply_adjoint(r), levels);
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask[i]) g[i] = 0.0;
    }
    return g;
  };

  // CG on A'A c = A'y, warm-started at the FISTA solution.
  auto residual = apply_masked(a);
  for (std::size_t i = 0; i < residual.size(); ++i) residual[i] = y[i] - residual[i];
  auto g = adjoint_masked(residual);  // Gradient residual in coef space.
  auto direction = g;
  double g_norm_sq = k.nrm2_sq(g.data(), g.size());

  for (int it = 0; it < iterations && g_norm_sq > 1e-18; ++it) {
    const auto ad = apply_masked(direction);
    const double ad_norm_sq = k.nrm2_sq(ad.data(), ad.size());
    if (ad_norm_sq <= 1e-18) break;
    const double alpha = g_norm_sq / ad_norm_sq;
    k.axpy(alpha, direction.data(), a.data(), n);
    k.axpy(-alpha, ad.data(), residual.data(), residual.size());
    const auto g_next = adjoint_masked(residual);
    const double g_next_norm_sq = k.nrm2_sq(g_next.data(), g_next.size());
    const double beta = g_next_norm_sq / g_norm_sq;
    k.xpby(g_next.data(), beta, direction.data(), n);
    g = g_next;
    g_norm_sq = g_next_norm_sq;
  }
}

}  // namespace

std::vector<FistaResult> fista_solve_batch(const SensingMatrix& phi,
                                           std::span<const std::vector<double>> ys,
                                           const FistaConfig& cfg) {
  const std::size_t batch = ys.size();
  std::vector<FistaResult> results(batch);
  if (batch == 0) return results;

  const auto& k = kern::ops();
  const std::size_t n = phi.cols();
  const std::size_t m = phi.rows();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));

  const double lip = lipschitz_of(phi);

  // Windows interleave element-major: Y[r * batch + b] is measurement r of
  // window b.  Every kernel's per-window math is bit-identical across
  // batch widths (kern contract), so packing windows is purely an
  // execution-layout optimization — the matrix plan and the DWT filters
  // stream once per iteration for the whole batch.
  std::vector<double> y_interleaved(m * batch);
  for (std::size_t b = 0; b < batch; ++b) {
    assert(ys[b].size() == m);
    for (std::size_t r = 0; r < m; ++r) y_interleaved[r * batch + b] = ys[b][r];
  }

  // Per-window lambda from the worst-case correlation |A' y| (max is
  // order-free, so a plain strided scan matches the single-window path).
  std::vector<double> buf_n(n * batch);
  phi.apply_adjoint_batch(y_interleaved, batch, buf_n);
  const auto aty = dsp::dwt_forward_batch(buf_n, batch, levels);
  std::vector<double> tau(batch, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < batch; ++b) {
      tau[b] = std::max(tau[b], std::abs(aty[i * batch + b]));
    }
  }
  for (std::size_t b = 0; b < batch; ++b) tau[b] = cfg.lambda_rel * tau[b] / lip;

  // Active-lane state.  When a window converges, its iterate is extracted
  // and the lane is compacted away, so later iterations only pay for the
  // windows still running.  Every kernel's per-window math is independent
  // of the batch composition (the kern batch-width contract), so shrinking
  // the batch mid-solve cannot change any surviving window's bits.
  std::vector<std::size_t> owner(batch);  // Lane -> original window index.
  for (std::size_t b = 0; b < batch; ++b) owner[b] = b;
  std::vector<double> y_cur = std::move(y_interleaved);  // Not read again.
  std::vector<double> tau_cur = tau;
  std::vector<double> a(n * batch, 0.0);  // Current iterates, lane-interleaved.
  std::vector<double> z(n * batch, 0.0);  // Momentum points.
  std::vector<double> a_prev;
  std::vector<double> buf_m(m * batch);
  std::vector<double> delta(batch, 0.0);
  std::vector<double> scale(batch, 0.0);
  std::vector<std::vector<double>> final_a(batch);  // Extracted iterates.
  std::vector<std::size_t> kept;  // Reused per iteration: no per-iter alloc.
  kept.reserve(batch);
  std::size_t cur = batch;
  double t = 1.0;

  const auto extract_lane = [&](std::size_t lane) {
    std::vector<double> ab(n);
    for (std::size_t i = 0; i < n; ++i) ab[i] = a[i * cur + lane];
    final_a[owner[lane]] = std::move(ab);
  };

  for (int it = 0; it < cfg.max_iterations && cur > 0; ++it) {
    // Gradient step at z: grad = A'(A z - y), a = soft(z - grad / L).
    auto xz = dsp::dwt_inverse_batch(std::span<const double>(z.data(), n * cur), cur, levels);
    phi.apply_batch(xz, cur, std::span<double>(buf_m.data(), m * cur));
    k.axpy(-1.0, y_cur.data(), buf_m.data(), m * cur);
    phi.apply_adjoint_batch(std::span<const double>(buf_m.data(), m * cur), cur,
                            std::span<double>(buf_n.data(), n * cur));
    const auto grad =
        dsp::dwt_forward_batch(std::span<const double>(buf_n.data(), n * cur), cur, levels);
    a_prev = a;
    k.grad_step(z.data(), grad.data(), lip, a.data(), n * cur);
    k.soft_threshold_batch(a.data(), n, cur, tau_cur.data());

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double beta = (t - 1.0) / t_next;
    k.momentum_batch(a.data(), a_prev.data(), z.data(), beta, n, cur, delta.data(),
                     scale.data());
    t = t_next;

    kept.clear();
    for (std::size_t lane = 0; lane < cur; ++lane) {
      results[owner[lane]].iterations_run = it + 1;
      if (std::sqrt(delta[lane] / (1e-12 + scale[lane])) < cfg.tolerance) {
        extract_lane(lane);  // Converged: this window's solve ends here.
      } else {
        kept.push_back(lane);
      }
    }
    if (kept.size() < cur) {
      // Compact the surviving lanes (exact copies, no arithmetic).
      const std::size_t next = kept.size();
      std::vector<double> a2(n * next);
      std::vector<double> z2(n * next);
      std::vector<double> y2(m * next);
      std::vector<double> tau2(next);
      std::vector<std::size_t> owner2(next);
      for (std::size_t j = 0; j < next; ++j) {
        const std::size_t lane = kept[j];
        for (std::size_t i = 0; i < n; ++i) {
          a2[i * next + j] = a[i * cur + lane];
          z2[i * next + j] = z[i * cur + lane];
        }
        for (std::size_t r = 0; r < m; ++r) y2[r * next + j] = y_cur[r * cur + lane];
        tau2[j] = tau_cur[lane];
        owner2[j] = owner[lane];
      }
      a = std::move(a2);
      z = std::move(z2);
      y_cur = std::move(y2);
      tau_cur = std::move(tau2);
      owner = std::move(owner2);
      cur = next;
    }
  }
  // Windows that hit max_iterations without converging.
  for (std::size_t lane = 0; lane < cur; ++lane) extract_lane(lane);

  for (std::size_t b = 0; b < batch; ++b) {
    // Every lane was extracted above — at convergence, or by the post-loop
    // sweep (which covers max_iterations == 0 with the zero iterate too).
    auto ab = std::move(final_a[b]);
    if (cfg.debias) debias_on_support(phi, levels, ys[b], ab, cfg.debias_iterations);
    results[b].signal = dsp::dwt_inverse(ab, levels);
    results[b].coefficients = std::move(ab);
  }
  return results;
}

FistaResult fista_reconstruct(const SensingMatrix& phi, std::span<const double> y,
                              const FistaConfig& cfg) {
  const std::vector<std::vector<double>> ys(1, std::vector<double>(y.begin(), y.end()));
  auto results = fista_solve_batch(phi, ys, cfg);
  return std::move(results[0]);
}

GroupFistaResult group_fista_reconstruct(const SensingMatrix& phi,
                                         std::span<const std::vector<double>> ys,
                                         const FistaConfig& cfg) {
  std::vector<SensingMatrix> phis(ys.size(), phi);
  return group_fista_reconstruct_multi(phis, ys, cfg);
}

GroupFistaResult group_fista_reconstruct_multi(std::span<const SensingMatrix> phis,
                                               std::span<const std::vector<double>> ys,
                                               const FistaConfig& cfg) {
  assert(phis.size() == ys.size());
  const auto& kn = kern::ops();
  const std::size_t n = phis[0].cols();
  const std::size_t num_leads = ys.size();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));
  GroupFistaResult result;
  assert(num_leads > 0);

  double lip = 1.0;
  for (const auto& phi : phis) lip = std::max(lip, lipschitz_of(phi));

  // lambda from the worst lead's correlation (keeps all leads active).
  double max_abs = 0.0;
  for (std::size_t l = 0; l < num_leads; ++l) {
    const auto aty = dsp::dwt_forward(phis[l].apply_adjoint(ys[l]), levels);
    for (double v : aty) max_abs = std::max(max_abs, std::abs(v));
  }
  const double lambda = cfg.lambda_rel * max_abs;

  std::vector<std::vector<double>> a(num_leads, std::vector<double>(n, 0.0));
  auto z = a;
  auto a_prev = a;
  double t = 1.0;

  for (int it = 0; it < cfg.max_iterations; ++it) {
    a_prev = a;
    for (std::size_t l = 0; l < num_leads; ++l) {
      auto az = phis[l].apply(dsp::dwt_inverse(z[l], levels));
      kn.axpy(-1.0, ys[l].data(), az.data(), az.size());
      const auto grad = dsp::dwt_forward(phis[l].apply_adjoint(az), levels);
      kn.grad_step(z[l].data(), grad.data(), lip, a[l].data(), n);
    }
    // Group (row-wise) soft threshold: shrink the cross-lead coefficient
    // vector at each index jointly — coefficients survive only where the
    // *ensemble* of leads has energy, which is the joint-sparsity prior.
    const double tau = lambda / lip;
    for (std::size_t i = 0; i < n; ++i) {
      double row_norm_sq = 0.0;
      for (std::size_t l = 0; l < num_leads; ++l) row_norm_sq += a[l][i] * a[l][i];
      const double row_norm = std::sqrt(row_norm_sq);
      const double scale = row_norm > tau ? (row_norm - tau) / row_norm : 0.0;
      for (std::size_t l = 0; l < num_leads; ++l) a[l][i] *= scale;
    }

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double beta = (t - 1.0) / t_next;
    double delta = 0.0;
    double scale_acc = 1e-12;
    for (std::size_t l = 0; l < num_leads; ++l) {
      double lead_delta = 0.0;
      double lead_scale = 0.0;
      kn.momentum(a[l].data(), a_prev[l].data(), z[l].data(), beta, n, &lead_delta,
                  &lead_scale);
      delta += lead_delta;
      scale_acc += lead_scale;
    }
    t = t_next;
    result.iterations_run = it + 1;
    if (std::sqrt(delta / scale_acc) < cfg.tolerance) break;
  }

  result.signals.reserve(num_leads);
  for (std::size_t l = 0; l < num_leads; ++l) {
    if (cfg.debias) debias_on_support(phis[l], levels, ys[l], a[l], cfg.debias_iterations);
    result.signals.push_back(dsp::dwt_inverse(a[l], levels));
  }
  return result;
}

std::vector<double> omp_reconstruct(const SensingMatrix& phi, std::span<const double> y,
                                    const OmpConfig& cfg) {
  const std::size_t n = phi.cols();
  const std::size_t m = phi.rows();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));
  const auto& kn = kern::ops();

  // Column of A = Phi * (inverse DWT of the i-th unit coefficient).
  const auto column_of = [&](std::size_t i) {
    std::vector<double> e(n, 0.0);
    e[i] = 1.0;
    return phi.apply(dsp::dwt_inverse(e, levels));
  };

  std::vector<double> residual(y.begin(), y.end());
  const double y_norm = std::max(norm2(y), 1e-12);
  std::vector<std::size_t> support;
  std::vector<std::vector<double>> atoms;  // Selected columns.
  std::vector<double> coef;

  while (support.size() < cfg.max_atoms && norm2(residual) / y_norm > cfg.residual_tolerance) {
    // Correlation of the residual with every atom: A' r via the adjoint.
    const auto corr = dsp::dwt_forward(phi.apply_adjoint(residual), levels);
    std::size_t best = 0;
    double best_mag = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mag = std::abs(corr[i]);
      if (mag > best_mag &&
          std::find(support.begin(), support.end(), i) == support.end()) {
        best_mag = mag;
        best = i;
      }
    }
    support.push_back(best);
    atoms.push_back(column_of(best));

    // Least squares on the support: solve (G) c = b with G the Gram
    // matrix of the selected atoms (small and SPD -> plain Cholesky).
    const std::size_t k = atoms.size();
    std::vector<double> gram(k * k, 0.0);
    std::vector<double> b(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double acc = kn.dot(atoms[i].data(), atoms[j].data(), m);
        gram[i * k + j] = acc;
        gram[j * k + i] = acc;
      }
      b[i] = kn.dot(atoms[i].data(), y.data(), m);
    }
    // Cholesky G = L L'.
    std::vector<double> chol(k * k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double acc = gram[i * k + j];
        for (std::size_t p = 0; p < j; ++p) acc -= chol[i * k + p] * chol[j * k + p];
        if (i == j) {
          chol[i * k + i] = std::sqrt(std::max(acc, 1e-12));
        } else {
          chol[i * k + j] = acc / chol[j * k + j];
        }
      }
    }
    coef.assign(k, 0.0);
    // Forward substitution L w = b, then backward L' c = w.
    std::vector<double> w(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      double acc = b[i];
      for (std::size_t p = 0; p < i; ++p) acc -= chol[i * k + p] * w[p];
      w[i] = acc / chol[i * k + i];
    }
    for (std::size_t i = k; i-- > 0;) {
      double acc = w[i];
      for (std::size_t p = i + 1; p < k; ++p) acc -= chol[p * k + i] * coef[p];
      coef[i] = acc / chol[i * k + i];
    }

    // Residual update.
    residual.assign(y.begin(), y.end());
    for (std::size_t i = 0; i < k; ++i) {
      kn.axpy(-coef[i], atoms[i].data(), residual.data(), m);
    }
  }

  std::vector<double> a(n, 0.0);
  for (std::size_t i = 0; i < support.size(); ++i) a[support[i]] = coef[i];
  return dsp::dwt_inverse(a, levels);
}

double reconstruction_snr_db(std::span<const double> reference,
                             std::span<const double> reconstructed) {
  assert(reference.size() == reconstructed.size());
  double signal = 0.0;
  double error = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    signal += reference[i] * reference[i];
    const double e = reference[i] - reconstructed[i];
    error += e * e;
  }
  if (error <= 1e-30) return 150.0;  // Effectively exact.
  return 10.0 * std::log10(signal / error);
}

double prd_percent(std::span<const double> reference,
                   std::span<const double> reconstructed) {
  return 100.0 * std::pow(10.0, -reconstruction_snr_db(reference, reconstructed) / 20.0);
}

}  // namespace wbsn::cs
