#include "cs/fista.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/wavelet.hpp"
#include "kern/backend.hpp"

namespace wbsn::cs {
namespace {

double norm2(std::span<const double> v) {
  return std::sqrt(kern::ops().nrm2_sq(v.data(), v.size()));
}

/// Least-squares refit of `a` restricted to its non-zero support:
/// conjugate gradient on the normal equations of the composed operator
/// A = Phi Psi' (masked to the support).  All scratch comes from `ws`
/// (ensure_debias'd for this shape) — no allocation.
void debias_on_support_ws(const SensingMatrix& phi, int levels, std::span<const double> y,
                          std::span<double> a, int iterations, FistaWorkspace& ws) {
  const auto& k = kern::ops();
  const std::size_t n = a.size();
  const std::size_t m = phi.rows();
  std::size_t support = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ws.db_mask[i] = a[i] != 0.0;
    support += ws.db_mask[i];
  }
  if (support == 0 || support > m) return;  // Under-determined: skip.

  const auto apply_masked = [&](std::span<const double> c, std::span<double> out_m) {
    for (std::size_t i = 0; i < n; ++i) ws.db_full[i] = ws.db_mask[i] ? c[i] : 0.0;
    dsp::dwt_inverse_into(std::span<const double>(ws.db_full.data(), n), levels,
                          std::span<double>(ws.db_time.data(), n),
                          std::span<double>(ws.db_scr.data(), n));
    phi.apply_into(std::span<const double>(ws.db_time.data(), n), out_m);
  };
  const auto adjoint_masked = [&](std::span<const double> r, std::span<double> out_n) {
    phi.apply_adjoint_into(r, std::span<double>(ws.db_full.data(), n));
    dsp::dwt_forward_into(std::span<const double>(ws.db_full.data(), n), levels, out_n,
                          std::span<double>(ws.db_scr.data(), n));
    for (std::size_t i = 0; i < n; ++i) {
      if (!ws.db_mask[i]) out_n[i] = 0.0;
    }
  };

  // CG on A'A c = A'y, warm-started at the FISTA solution.
  const std::span<double> residual(ws.db_resid.data(), m);
  apply_masked(a, residual);
  for (std::size_t i = 0; i < m; ++i) residual[i] = y[i] - residual[i];
  const std::span<double> g(ws.db_g.data(), n);  // Gradient residual, coef space.
  adjoint_masked(residual, g);
  std::copy(g.begin(), g.end(), ws.db_dir.begin());
  double g_norm_sq = k.nrm2_sq(g.data(), n);

  for (int it = 0; it < iterations && g_norm_sq > 1e-18; ++it) {
    const std::span<double> ad(ws.db_ad.data(), m);
    apply_masked(std::span<const double>(ws.db_dir.data(), n), ad);
    const double ad_norm_sq = k.nrm2_sq(ad.data(), m);
    if (ad_norm_sq <= 1e-18) break;
    const double alpha = g_norm_sq / ad_norm_sq;
    k.axpy(alpha, ws.db_dir.data(), a.data(), n);
    k.axpy(-alpha, ad.data(), residual.data(), m);
    const std::span<double> g_next(ws.db_gnext.data(), n);
    adjoint_masked(residual, g_next);
    const double g_next_norm_sq = k.nrm2_sq(g_next.data(), n);
    const double beta = g_next_norm_sq / g_norm_sq;
    k.xpby(g_next.data(), beta, ws.db_dir.data(), n);
    g_norm_sq = g_next_norm_sq;
  }
}

/// Allocating wrapper for the non-hot paths (group solver, ablations).
void debias_on_support(const SensingMatrix& phi, int levels, std::span<const double> y,
                       std::vector<double>& a, int iterations) {
  FistaWorkspace ws;
  ws.ensure_debias(phi.rows(), phi.cols());
  debias_on_support_ws(phi, levels, y, std::span<double>(a.data(), a.size()), iterations,
                       ws);
}

}  // namespace

void FistaWorkspace::ensure(std::size_t m, std::size_t n, std::size_t batch) {
  bool grew = false;
  const std::size_t mb = m * batch;
  const std::size_t nb = n * batch;
  grew |= grow(y, mb);
  grew |= grow(y2, mb);
  grew |= grow(buf_m, mb);
  grew |= grow(buf_n, nb);
  grew |= grow(aty, nb);
  grew |= grow(grad, nb);
  grew |= grow(xz, nb);
  grew |= grow(dwt_scr, nb);
  grew |= grow(a, nb);
  grew |= grow(z, nb);
  grew |= grow(a_prev, nb);
  grew |= grow(a2, nb);
  grew |= grow(z2, nb);
  grew |= grow(final_a, nb);
  grew |= grow(tau, batch);
  grew |= grow(tau2, batch);
  grew |= grow(delta, batch);
  grew |= grow(scale, batch);
  grew |= grow(owner, batch);
  grew |= grow(owner2, batch);
  grew |= grow(kept, batch);
  grew |= grow(db_mask, n);
  grew |= grow(db_full, n);
  grew |= grow(db_time, n);
  grew |= grow(db_scr, n);
  grew |= grow(db_g, n);
  grew |= grow(db_dir, n);
  grew |= grow(db_gnext, n);
  grew |= grow(db_resid, m);
  grew |= grow(db_ad, m);
  if (grew) ++grow_count_;
}

void FistaWorkspace::ensure_debias(std::size_t m, std::size_t n) {
  bool grew = false;
  grew |= grow(db_mask, n);
  grew |= grow(db_full, n);
  grew |= grow(db_time, n);
  grew |= grow(db_scr, n);
  grew |= grow(db_g, n);
  grew |= grow(db_dir, n);
  grew |= grow(db_gnext, n);
  grew |= grow(db_resid, m);
  grew |= grow(db_ad, m);
  if (grew) ++grow_count_;
}

void fista_solve_batch_into(const SensingMatrix& phi,
                            std::span<const std::span<const double>> ys,
                            const FistaConfig& cfg, FistaWorkspace& ws,
                            std::span<FistaWindowOut> outs) {
  const std::size_t batch = ys.size();
  assert(outs.size() == batch);
  if (batch == 0) return;

  const auto& k = kern::ops();
  const std::size_t n = phi.cols();
  const std::size_t m = phi.rows();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));
  const double lip = phi.lipschitz();

  ws.ensure(m, n, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    assert(ys[b].size() == m);
    assert(outs[b].signal.size() == n);
    outs[b].iterations_run = 0;
  }

  // Windows interleave element-major: Y[r * batch + b] is measurement r of
  // window b.  Every kernel's per-window math is bit-identical across
  // batch widths (kern contract), so packing windows is purely an
  // execution-layout optimization — the matrix plan and the DWT filters
  // stream once per iteration for the whole batch.
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t r = 0; r < m; ++r) ws.y[r * batch + b] = ys[b][r];
  }

  // Per-window lambda from the worst-case correlation |A' y| (max is
  // order-free, so a plain strided scan matches the single-window path).
  phi.apply_adjoint_batch(std::span<const double>(ws.y.data(), m * batch), batch,
                          std::span<double>(ws.buf_n.data(), n * batch));
  dsp::dwt_forward_batch_into(std::span<const double>(ws.buf_n.data(), n * batch), batch,
                              levels, std::span<double>(ws.aty.data(), n * batch),
                              std::span<double>(ws.dwt_scr.data(), n * batch));
  std::fill(ws.tau.begin(), ws.tau.begin() + static_cast<long>(batch), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < batch; ++b) {
      ws.tau[b] = std::max(ws.tau[b], std::abs(ws.aty[i * batch + b]));
    }
  }
  for (std::size_t b = 0; b < batch; ++b) ws.tau[b] = cfg.lambda_rel * ws.tau[b] / lip;

  // Active-lane state.  When a window converges, its iterate is extracted
  // and the lane is compacted away, so later iterations only pay for the
  // windows still running.  Every kernel's per-window math is independent
  // of the batch composition (the kern batch-width contract), so shrinking
  // the batch mid-solve cannot change any surviving window's bits.
  for (std::size_t b = 0; b < batch; ++b) ws.owner[b] = b;  // Lane -> window.
  std::fill(ws.a.begin(), ws.a.begin() + static_cast<long>(n * batch), 0.0);
  std::fill(ws.z.begin(), ws.z.begin() + static_cast<long>(n * batch), 0.0);
  ws.kept.clear();  // Capacity >= batch: per-iteration push_back never allocates.
  std::size_t cur = batch;
  double t = 1.0;

  const auto extract_lane = [&](std::size_t lane) {
    double* ab = ws.final_a.data() + ws.owner[lane] * n;
    for (std::size_t i = 0; i < n; ++i) ab[i] = ws.a[i * cur + lane];
  };

  for (int it = 0; it < cfg.max_iterations && cur > 0; ++it) {
    // Gradient step at z: grad = A'(A z - y), a = soft(z - grad / L).
    dsp::dwt_inverse_batch_into(std::span<const double>(ws.z.data(), n * cur), cur, levels,
                                std::span<double>(ws.xz.data(), n * cur),
                                std::span<double>(ws.dwt_scr.data(), n * cur));
    phi.apply_batch(std::span<const double>(ws.xz.data(), n * cur), cur,
                    std::span<double>(ws.buf_m.data(), m * cur));
    k.axpy(-1.0, ws.y.data(), ws.buf_m.data(), m * cur);
    phi.apply_adjoint_batch(std::span<const double>(ws.buf_m.data(), m * cur), cur,
                            std::span<double>(ws.buf_n.data(), n * cur));
    dsp::dwt_forward_batch_into(std::span<const double>(ws.buf_n.data(), n * cur), cur,
                                levels, std::span<double>(ws.grad.data(), n * cur),
                                std::span<double>(ws.dwt_scr.data(), n * cur));
    std::copy(ws.a.begin(), ws.a.begin() + static_cast<long>(n * cur), ws.a_prev.begin());
    k.grad_step(ws.z.data(), ws.grad.data(), lip, ws.a.data(), n * cur);
    k.soft_threshold_batch(ws.a.data(), n, cur, ws.tau.data());

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double beta = (t - 1.0) / t_next;
    k.momentum_batch(ws.a.data(), ws.a_prev.data(), ws.z.data(), beta, n, cur,
                     ws.delta.data(), ws.scale.data());
    t = t_next;

    ws.kept.clear();
    for (std::size_t lane = 0; lane < cur; ++lane) {
      outs[ws.owner[lane]].iterations_run = it + 1;
      if (std::sqrt(ws.delta[lane] / (1e-12 + ws.scale[lane])) < cfg.tolerance) {
        extract_lane(lane);  // Converged: this window's solve ends here.
      } else {
        ws.kept.push_back(lane);
      }
    }
    if (ws.kept.size() < cur) {
      // Compact the surviving lanes (exact copies, no arithmetic); the
      // shadow buffers swap in, so no allocation either.
      const std::size_t next = ws.kept.size();
      for (std::size_t j = 0; j < next; ++j) {
        const std::size_t lane = ws.kept[j];
        for (std::size_t i = 0; i < n; ++i) {
          ws.a2[i * next + j] = ws.a[i * cur + lane];
          ws.z2[i * next + j] = ws.z[i * cur + lane];
        }
        for (std::size_t r = 0; r < m; ++r) ws.y2[r * next + j] = ws.y[r * cur + lane];
        ws.tau2[j] = ws.tau[lane];
        ws.owner2[j] = ws.owner[lane];
      }
      std::swap(ws.a, ws.a2);
      std::swap(ws.z, ws.z2);
      std::swap(ws.y, ws.y2);
      std::swap(ws.tau, ws.tau2);
      std::swap(ws.owner, ws.owner2);
      cur = next;
    }
  }
  // Windows that hit max_iterations without converging.
  for (std::size_t lane = 0; lane < cur; ++lane) extract_lane(lane);

  for (std::size_t b = 0; b < batch; ++b) {
    // Every lane was extracted above — at convergence, or by the post-loop
    // sweep (which covers max_iterations == 0 with the zero iterate too).
    const std::span<double> ab(ws.final_a.data() + b * n, n);
    if (cfg.debias) debias_on_support_ws(phi, levels, ys[b], ab, cfg.debias_iterations, ws);
    dsp::dwt_inverse_into(ab, levels, outs[b].signal,
                          std::span<double>(ws.dwt_scr.data(), n));
  }
}

std::vector<FistaResult> fista_solve_batch(const SensingMatrix& phi,
                                           std::span<const std::vector<double>> ys,
                                           const FistaConfig& cfg) {
  const std::size_t batch = ys.size();
  std::vector<FistaResult> results(batch);
  if (batch == 0) return results;
  const std::size_t n = phi.cols();

  FistaWorkspace ws;
  std::vector<std::span<const double>> views(batch);
  std::vector<FistaWindowOut> outs(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    views[b] = std::span<const double>(ys[b].data(), ys[b].size());
    results[b].signal.resize(n);
    outs[b].signal = std::span<double>(results[b].signal.data(), n);
  }
  fista_solve_batch_into(phi, views, cfg, ws, outs);
  for (std::size_t b = 0; b < batch; ++b) {
    results[b].iterations_run = outs[b].iterations_run;
    results[b].coefficients.assign(ws.final_a.begin() + static_cast<long>(b * n),
                                   ws.final_a.begin() + static_cast<long>((b + 1) * n));
  }
  return results;
}

FistaResult fista_reconstruct(const SensingMatrix& phi, std::span<const double> y,
                              const FistaConfig& cfg) {
  const std::vector<std::vector<double>> ys(1, std::vector<double>(y.begin(), y.end()));
  auto results = fista_solve_batch(phi, ys, cfg);
  return std::move(results[0]);
}

GroupFistaResult group_fista_reconstruct(const SensingMatrix& phi,
                                         std::span<const std::vector<double>> ys,
                                         const FistaConfig& cfg) {
  std::vector<SensingMatrix> phis(ys.size(), phi);
  return group_fista_reconstruct_multi(phis, ys, cfg);
}

GroupFistaResult group_fista_reconstruct_multi(std::span<const SensingMatrix> phis,
                                               std::span<const std::vector<double>> ys,
                                               const FistaConfig& cfg) {
  assert(phis.size() == ys.size());
  const auto& kn = kern::ops();
  const std::size_t n = phis[0].cols();
  const std::size_t num_leads = ys.size();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));
  GroupFistaResult result;
  assert(num_leads > 0);

  double lip = 1.0;
  for (const auto& phi : phis) lip = std::max(lip, phi.lipschitz());

  // lambda from the worst lead's correlation (keeps all leads active).
  double max_abs = 0.0;
  for (std::size_t l = 0; l < num_leads; ++l) {
    const auto aty = dsp::dwt_forward(phis[l].apply_adjoint(ys[l]), levels);
    for (double v : aty) max_abs = std::max(max_abs, std::abs(v));
  }
  const double lambda = cfg.lambda_rel * max_abs;

  std::vector<std::vector<double>> a(num_leads, std::vector<double>(n, 0.0));
  auto z = a;
  auto a_prev = a;
  double t = 1.0;

  for (int it = 0; it < cfg.max_iterations; ++it) {
    a_prev = a;
    for (std::size_t l = 0; l < num_leads; ++l) {
      auto az = phis[l].apply(dsp::dwt_inverse(z[l], levels));
      kn.axpy(-1.0, ys[l].data(), az.data(), az.size());
      const auto grad = dsp::dwt_forward(phis[l].apply_adjoint(az), levels);
      kn.grad_step(z[l].data(), grad.data(), lip, a[l].data(), n);
    }
    // Group (row-wise) soft threshold: shrink the cross-lead coefficient
    // vector at each index jointly — coefficients survive only where the
    // *ensemble* of leads has energy, which is the joint-sparsity prior.
    const double tau = lambda / lip;
    for (std::size_t i = 0; i < n; ++i) {
      double row_norm_sq = 0.0;
      for (std::size_t l = 0; l < num_leads; ++l) row_norm_sq += a[l][i] * a[l][i];
      const double row_norm = std::sqrt(row_norm_sq);
      const double scale = row_norm > tau ? (row_norm - tau) / row_norm : 0.0;
      for (std::size_t l = 0; l < num_leads; ++l) a[l][i] *= scale;
    }

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double beta = (t - 1.0) / t_next;
    double delta = 0.0;
    double scale_acc = 1e-12;
    for (std::size_t l = 0; l < num_leads; ++l) {
      double lead_delta = 0.0;
      double lead_scale = 0.0;
      kn.momentum(a[l].data(), a_prev[l].data(), z[l].data(), beta, n, &lead_delta,
                  &lead_scale);
      delta += lead_delta;
      scale_acc += lead_scale;
    }
    t = t_next;
    result.iterations_run = it + 1;
    if (std::sqrt(delta / scale_acc) < cfg.tolerance) break;
  }

  result.signals.reserve(num_leads);
  for (std::size_t l = 0; l < num_leads; ++l) {
    if (cfg.debias) debias_on_support(phis[l], levels, ys[l], a[l], cfg.debias_iterations);
    result.signals.push_back(dsp::dwt_inverse(a[l], levels));
  }
  return result;
}

std::vector<double> omp_reconstruct(const SensingMatrix& phi, std::span<const double> y,
                                    const OmpConfig& cfg) {
  const std::size_t n = phi.cols();
  const std::size_t m = phi.rows();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));
  const auto& kn = kern::ops();

  // Column of A = Phi * (inverse DWT of the i-th unit coefficient).
  const auto column_of = [&](std::size_t i) {
    std::vector<double> e(n, 0.0);
    e[i] = 1.0;
    return phi.apply(dsp::dwt_inverse(e, levels));
  };

  std::vector<double> residual(y.begin(), y.end());
  const double y_norm = std::max(norm2(y), 1e-12);
  std::vector<std::size_t> support;
  std::vector<std::vector<double>> atoms;  // Selected columns.
  std::vector<double> coef;

  while (support.size() < cfg.max_atoms && norm2(residual) / y_norm > cfg.residual_tolerance) {
    // Correlation of the residual with every atom: A' r via the adjoint.
    const auto corr = dsp::dwt_forward(phi.apply_adjoint(residual), levels);
    std::size_t best = 0;
    double best_mag = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mag = std::abs(corr[i]);
      if (mag > best_mag &&
          std::find(support.begin(), support.end(), i) == support.end()) {
        best_mag = mag;
        best = i;
      }
    }
    support.push_back(best);
    atoms.push_back(column_of(best));

    // Least squares on the support: solve (G) c = b with G the Gram
    // matrix of the selected atoms (small and SPD -> plain Cholesky).
    const std::size_t k = atoms.size();
    std::vector<double> gram(k * k, 0.0);
    std::vector<double> b(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double acc = kn.dot(atoms[i].data(), atoms[j].data(), m);
        gram[i * k + j] = acc;
        gram[j * k + i] = acc;
      }
      b[i] = kn.dot(atoms[i].data(), y.data(), m);
    }
    // Cholesky G = L L'.
    std::vector<double> chol(k * k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double acc = gram[i * k + j];
        for (std::size_t p = 0; p < j; ++p) acc -= chol[i * k + p] * chol[j * k + p];
        if (i == j) {
          chol[i * k + i] = std::sqrt(std::max(acc, 1e-12));
        } else {
          chol[i * k + j] = acc / chol[j * k + j];
        }
      }
    }
    coef.assign(k, 0.0);
    // Forward substitution L w = b, then backward L' c = w.
    std::vector<double> w(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      double acc = b[i];
      for (std::size_t p = 0; p < i; ++p) acc -= chol[i * k + p] * w[p];
      w[i] = acc / chol[i * k + i];
    }
    for (std::size_t i = k; i-- > 0;) {
      double acc = w[i];
      for (std::size_t p = i + 1; p < k; ++p) acc -= chol[p * k + i] * coef[p];
      coef[i] = acc / chol[i * k + i];
    }

    // Residual update.
    residual.assign(y.begin(), y.end());
    for (std::size_t i = 0; i < k; ++i) {
      kn.axpy(-coef[i], atoms[i].data(), residual.data(), m);
    }
  }

  std::vector<double> a(n, 0.0);
  for (std::size_t i = 0; i < support.size(); ++i) a[support[i]] = coef[i];
  return dsp::dwt_inverse(a, levels);
}

double reconstruction_snr_db(std::span<const double> reference,
                             std::span<const double> reconstructed) {
  assert(reference.size() == reconstructed.size());
  double signal = 0.0;
  double error = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    signal += reference[i] * reference[i];
    const double e = reference[i] - reconstructed[i];
    error += e * e;
  }
  if (error <= 1e-30) return 150.0;  // Effectively exact.
  return 10.0 * std::log10(signal / error);
}

double prd_percent(std::span<const double> reference,
                   std::span<const double> reconstructed) {
  return 100.0 * std::pow(10.0, -reconstruction_snr_db(reference, reconstructed) / 20.0);
}

}  // namespace wbsn::cs
