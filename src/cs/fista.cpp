#include "cs/fista.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/wavelet.hpp"

namespace wbsn::cs {
namespace {

double norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

/// Largest singular value squared of Phi via power iteration (the sparsity
/// basis is orthonormal, so it equals the Lipschitz constant of the
/// composed operator's gradient).
double lipschitz_of(const SensingMatrix& phi) {
  std::vector<double> v(phi.cols(), 1.0);
  double lambda = 1.0;
  for (int it = 0; it < 40; ++it) {
    const auto w = phi.apply_adjoint(phi.apply(v));
    lambda = norm2(w);
    if (lambda <= 0.0) return 1.0;
    v = w;
    for (double& x : v) x /= lambda;
  }
  return std::max(lambda, 1e-9);
}

void soft_threshold(std::span<double> a, double tau) {
  for (double& x : a) {
    if (x > tau) {
      x -= tau;
    } else if (x < -tau) {
      x += tau;
    } else {
      x = 0.0;
    }
  }
}

/// Least-squares refit of `a` restricted to its non-zero support:
/// conjugate gradient on the normal equations of the composed operator
/// A = Phi Psi' (masked to the support).
void debias_on_support(const SensingMatrix& phi, int levels, std::span<const double> y,
                       std::vector<double>& a, int iterations) {
  const std::size_t n = a.size();
  std::vector<std::uint8_t> mask(n, 0);
  std::size_t support = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = a[i] != 0.0;
    support += mask[i];
  }
  if (support == 0 || support > phi.rows()) return;  // Under-determined: skip.

  const auto apply_masked = [&](const std::vector<double>& c) {
    std::vector<double> full(c);
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask[i]) full[i] = 0.0;
    }
    return phi.apply(dsp::dwt_inverse(full, levels));
  };
  const auto adjoint_masked = [&](std::span<const double> r) {
    auto g = dsp::dwt_forward(phi.apply_adjoint(r), levels);
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask[i]) g[i] = 0.0;
    }
    return g;
  };

  // CG on A'A c = A'y, warm-started at the FISTA solution.
  auto residual = apply_masked(a);
  for (std::size_t i = 0; i < residual.size(); ++i) residual[i] = y[i] - residual[i];
  auto g = adjoint_masked(residual);  // Gradient residual in coef space.
  auto direction = g;
  double g_norm_sq = 0.0;
  for (double v : g) g_norm_sq += v * v;

  for (int it = 0; it < iterations && g_norm_sq > 1e-18; ++it) {
    const auto ad = apply_masked(direction);
    double ad_norm_sq = 0.0;
    for (double v : ad) ad_norm_sq += v * v;
    if (ad_norm_sq <= 1e-18) break;
    const double alpha = g_norm_sq / ad_norm_sq;
    for (std::size_t i = 0; i < n; ++i) a[i] += alpha * direction[i];
    for (std::size_t i = 0; i < residual.size(); ++i) residual[i] -= alpha * ad[i];
    const auto g_next = adjoint_masked(residual);
    double g_next_norm_sq = 0.0;
    for (double v : g_next) g_next_norm_sq += v * v;
    const double beta = g_next_norm_sq / g_norm_sq;
    for (std::size_t i = 0; i < n; ++i) direction[i] = g_next[i] + beta * direction[i];
    g = g_next;
    g_norm_sq = g_next_norm_sq;
  }
}

}  // namespace

FistaResult fista_reconstruct(const SensingMatrix& phi, std::span<const double> y,
                              const FistaConfig& cfg) {
  const std::size_t n = phi.cols();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));
  FistaResult result;

  const auto forward = [&](std::span<const double> a) {
    return phi.apply(dsp::dwt_inverse(a, levels));
  };
  const auto adjoint = [&](std::span<const double> r) {
    return dsp::dwt_forward(phi.apply_adjoint(r), levels);
  };

  const double lip = lipschitz_of(phi);
  const auto aty = adjoint(y);
  double max_abs = 0.0;
  for (double v : aty) max_abs = std::max(max_abs, std::abs(v));
  const double lambda = cfg.lambda_rel * max_abs;

  std::vector<double> a(n, 0.0);       // Current iterate.
  std::vector<double> z(n, 0.0);       // Momentum point.
  std::vector<double> a_prev(n, 0.0);
  double t = 1.0;

  for (int it = 0; it < cfg.max_iterations; ++it) {
    // Gradient step at z: g = A'(A z - y).
    auto az = forward(z);
    for (std::size_t i = 0; i < az.size(); ++i) az[i] -= y[i];
    const auto grad = adjoint(az);
    a_prev = a;
    for (std::size_t i = 0; i < n; ++i) a[i] = z[i] - grad[i] / lip;
    soft_threshold(a, lambda / lip);

    // Momentum update.
    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double beta = (t - 1.0) / t_next;
    double delta = 0.0;
    double scale = 1e-12;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a[i] - a_prev[i];
      delta += d * d;
      scale += a[i] * a[i];
      z[i] = a[i] + beta * d;
    }
    t = t_next;
    result.iterations_run = it + 1;
    if (std::sqrt(delta / scale) < cfg.tolerance) break;
  }

  if (cfg.debias) debias_on_support(phi, levels, y, a, cfg.debias_iterations);
  result.coefficients = a;
  result.signal = dsp::dwt_inverse(a, levels);
  return result;
}

GroupFistaResult group_fista_reconstruct(const SensingMatrix& phi,
                                         std::span<const std::vector<double>> ys,
                                         const FistaConfig& cfg) {
  std::vector<SensingMatrix> phis(ys.size(), phi);
  return group_fista_reconstruct_multi(phis, ys, cfg);
}

GroupFistaResult group_fista_reconstruct_multi(std::span<const SensingMatrix> phis,
                                               std::span<const std::vector<double>> ys,
                                               const FistaConfig& cfg) {
  assert(phis.size() == ys.size());
  const std::size_t n = phis[0].cols();
  const std::size_t num_leads = ys.size();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));
  GroupFistaResult result;
  assert(num_leads > 0);

  double lip = 1.0;
  for (const auto& phi : phis) lip = std::max(lip, lipschitz_of(phi));

  // lambda from the worst lead's correlation (keeps all leads active).
  double max_abs = 0.0;
  for (std::size_t l = 0; l < num_leads; ++l) {
    const auto aty = dsp::dwt_forward(phis[l].apply_adjoint(ys[l]), levels);
    for (double v : aty) max_abs = std::max(max_abs, std::abs(v));
  }
  const double lambda = cfg.lambda_rel * max_abs;

  std::vector<std::vector<double>> a(num_leads, std::vector<double>(n, 0.0));
  auto z = a;
  auto a_prev = a;
  double t = 1.0;

  for (int it = 0; it < cfg.max_iterations; ++it) {
    a_prev = a;
    for (std::size_t l = 0; l < num_leads; ++l) {
      auto az = phis[l].apply(dsp::dwt_inverse(z[l], levels));
      for (std::size_t i = 0; i < az.size(); ++i) az[i] -= ys[l][i];
      const auto grad = dsp::dwt_forward(phis[l].apply_adjoint(az), levels);
      for (std::size_t i = 0; i < n; ++i) a[l][i] = z[l][i] - grad[i] / lip;
    }
    // Group (row-wise) soft threshold: shrink the cross-lead coefficient
    // vector at each index jointly — coefficients survive only where the
    // *ensemble* of leads has energy, which is the joint-sparsity prior.
    const double tau = lambda / lip;
    for (std::size_t i = 0; i < n; ++i) {
      double row_norm_sq = 0.0;
      for (std::size_t l = 0; l < num_leads; ++l) row_norm_sq += a[l][i] * a[l][i];
      const double row_norm = std::sqrt(row_norm_sq);
      const double scale = row_norm > tau ? (row_norm - tau) / row_norm : 0.0;
      for (std::size_t l = 0; l < num_leads; ++l) a[l][i] *= scale;
    }

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double beta = (t - 1.0) / t_next;
    double delta = 0.0;
    double scale_acc = 1e-12;
    for (std::size_t l = 0; l < num_leads; ++l) {
      for (std::size_t i = 0; i < n; ++i) {
        const double d = a[l][i] - a_prev[l][i];
        delta += d * d;
        scale_acc += a[l][i] * a[l][i];
        z[l][i] = a[l][i] + beta * d;
      }
    }
    t = t_next;
    result.iterations_run = it + 1;
    if (std::sqrt(delta / scale_acc) < cfg.tolerance) break;
  }

  result.signals.reserve(num_leads);
  for (std::size_t l = 0; l < num_leads; ++l) {
    if (cfg.debias) debias_on_support(phis[l], levels, ys[l], a[l], cfg.debias_iterations);
    result.signals.push_back(dsp::dwt_inverse(a[l], levels));
  }
  return result;
}

std::vector<double> omp_reconstruct(const SensingMatrix& phi, std::span<const double> y,
                                    const OmpConfig& cfg) {
  const std::size_t n = phi.cols();
  const std::size_t m = phi.rows();
  const int levels = std::min(cfg.dwt_levels, dsp::dwt_max_levels(n));

  // Column of A = Phi * (inverse DWT of the i-th unit coefficient).
  const auto column_of = [&](std::size_t i) {
    std::vector<double> e(n, 0.0);
    e[i] = 1.0;
    return phi.apply(dsp::dwt_inverse(e, levels));
  };

  std::vector<double> residual(y.begin(), y.end());
  const double y_norm = std::max(norm2(y), 1e-12);
  std::vector<std::size_t> support;
  std::vector<std::vector<double>> atoms;  // Selected columns.
  std::vector<double> coef;

  while (support.size() < cfg.max_atoms && norm2(residual) / y_norm > cfg.residual_tolerance) {
    // Correlation of the residual with every atom: A' r via the adjoint.
    const auto corr = dsp::dwt_forward(phi.apply_adjoint(residual), levels);
    std::size_t best = 0;
    double best_mag = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mag = std::abs(corr[i]);
      if (mag > best_mag &&
          std::find(support.begin(), support.end(), i) == support.end()) {
        best_mag = mag;
        best = i;
      }
    }
    support.push_back(best);
    atoms.push_back(column_of(best));

    // Least squares on the support: solve (G) c = b with G the Gram
    // matrix of the selected atoms (small and SPD -> plain Cholesky).
    const std::size_t k = atoms.size();
    std::vector<double> gram(k * k, 0.0);
    std::vector<double> b(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double acc = 0.0;
        for (std::size_t r = 0; r < m; ++r) acc += atoms[i][r] * atoms[j][r];
        gram[i * k + j] = acc;
        gram[j * k + i] = acc;
      }
      double acc = 0.0;
      for (std::size_t r = 0; r < m; ++r) acc += atoms[i][r] * y[r];
      b[i] = acc;
    }
    // Cholesky G = L L'.
    std::vector<double> chol(k * k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double acc = gram[i * k + j];
        for (std::size_t p = 0; p < j; ++p) acc -= chol[i * k + p] * chol[j * k + p];
        if (i == j) {
          chol[i * k + i] = std::sqrt(std::max(acc, 1e-12));
        } else {
          chol[i * k + j] = acc / chol[j * k + j];
        }
      }
    }
    coef.assign(k, 0.0);
    // Forward substitution L w = b, then backward L' c = w.
    std::vector<double> w(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      double acc = b[i];
      for (std::size_t p = 0; p < i; ++p) acc -= chol[i * k + p] * w[p];
      w[i] = acc / chol[i * k + i];
    }
    for (std::size_t i = k; i-- > 0;) {
      double acc = w[i];
      for (std::size_t p = i + 1; p < k; ++p) acc -= chol[p * k + i] * coef[p];
      coef[i] = acc / chol[i * k + i];
    }

    // Residual update.
    residual.assign(y.begin(), y.end());
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t r = 0; r < m; ++r) residual[r] -= coef[i] * atoms[i][r];
    }
  }

  std::vector<double> a(n, 0.0);
  for (std::size_t i = 0; i < support.size(); ++i) a[support[i]] = coef[i];
  return dsp::dwt_inverse(a, levels);
}

double reconstruction_snr_db(std::span<const double> reference,
                             std::span<const double> reconstructed) {
  assert(reference.size() == reconstructed.size());
  double signal = 0.0;
  double error = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    signal += reference[i] * reference[i];
    const double e = reference[i] - reconstructed[i];
    error += e * e;
  }
  if (error <= 1e-30) return 150.0;  // Effectively exact.
  return 10.0 * std::log10(signal / error);
}

double prd_percent(std::span<const double> reference,
                   std::span<const double> reconstructed) {
  return 100.0 * std::pow(10.0, -reconstruction_snr_db(reference, reconstructed) / 20.0);
}

}  // namespace wbsn::cs
