#include "cs/sensing_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kern/backend.hpp"

namespace wbsn::cs {

SensingMatrix SensingMatrix::make_sparse_binary(std::size_t m, std::size_t n,
                                                std::size_t ones_per_column, sig::Rng& rng) {
  assert(ones_per_column >= 1 && ones_per_column <= m);
  SensingMatrix mat(m, n);
  mat.col_start_.reserve(n + 1);
  mat.entries_.reserve(n * ones_per_column);
  std::vector<std::uint16_t> rows(ones_per_column);
  for (std::size_t c = 0; c < n; ++c) {
    mat.col_start_.push_back(static_cast<std::uint32_t>(mat.entries_.size()));
    // Sample `ones_per_column` distinct rows (Floyd's algorithm would be
    // overkill at these sizes; rejection is fine for d << m).
    std::size_t placed = 0;
    while (placed < ones_per_column) {
      const auto r =
          static_cast<std::uint16_t>(rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
      if (std::find(rows.begin(), rows.begin() + static_cast<long>(placed), r) !=
          rows.begin() + static_cast<long>(placed)) {
        continue;
      }
      rows[placed++] = r;
    }
    for (std::size_t i = 0; i < ones_per_column; ++i) {
      mat.entries_.push_back({rows[i], +1});
    }
  }
  mat.col_start_.push_back(static_cast<std::uint32_t>(mat.entries_.size()));
  mat.build_plans();
  return mat;
}

SensingMatrix SensingMatrix::make_bernoulli(std::size_t m, std::size_t n, sig::Rng& rng) {
  SensingMatrix mat(m, n);
  mat.has_negative_ = true;
  mat.col_start_.reserve(n + 1);
  mat.entries_.reserve(n * m);
  for (std::size_t c = 0; c < n; ++c) {
    mat.col_start_.push_back(static_cast<std::uint32_t>(mat.entries_.size()));
    for (std::size_t r = 0; r < m; ++r) {
      mat.entries_.push_back(
          {static_cast<std::uint16_t>(r), rng.bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1}});
    }
  }
  mat.col_start_.push_back(static_cast<std::uint32_t>(mat.entries_.size()));
  mat.build_plans();
  return mat;
}

SensingMatrix SensingMatrix::truncated(std::size_t m_eff) const {
  assert(m_eff >= 1 && m_eff <= m_);
  SensingMatrix mat(m_eff, n_);
  mat.has_negative_ = has_negative_;
  mat.col_start_.reserve(n_ + 1);
  mat.entries_.reserve(entries_.size());
  for (std::size_t c = 0; c < n_; ++c) {
    mat.col_start_.push_back(static_cast<std::uint32_t>(mat.entries_.size()));
    for (std::uint32_t e = col_start_[c]; e < col_start_[c + 1]; ++e) {
      if (entries_[e].row < m_eff) mat.entries_.push_back(entries_[e]);
    }
  }
  mat.col_start_.push_back(static_cast<std::uint32_t>(mat.entries_.size()));
  // Rebuilds the packed plans AND the Lipschitz constant: dropping rows
  // shrinks the operator's largest singular value, and a solve stepping
  // with the full-operator constant would converge needlessly slowly.
  mat.build_plans();
  return mat;
}

void SensingMatrix::build_plans() {
  // Adjoint outputs are the columns — the entry lists are already
  // column-major, so each output's canonical term order is the stored
  // entry order.
  std::vector<kern::SpmvTerms> cols(n_);
  for (std::size_t c = 0; c < n_; ++c) {
    cols[c].reserve(col_start_[c + 1] - col_start_[c]);
    for (std::uint32_t e = col_start_[c]; e < col_start_[c + 1]; ++e) {
      cols[c].emplace_back(static_cast<std::int32_t>(entries_[e].row),
                           static_cast<double>(entries_[e].sign));
    }
  }
  adjoint_plan_ = kern::build_spmv_plan(m_, cols);

  // Apply outputs are the rows; scanning columns in ascending order gives
  // each row its terms in ascending-column order, the same order the
  // original scatter loop accumulated in.
  std::vector<kern::SpmvTerms> rows(m_);
  for (std::size_t c = 0; c < n_; ++c) {
    for (std::uint32_t e = col_start_[c]; e < col_start_[c + 1]; ++e) {
      rows[entries_[e].row].emplace_back(static_cast<std::int32_t>(c),
                                         static_cast<double>(entries_[e].sign));
    }
  }
  apply_plan_ = kern::build_spmv_plan(n_, rows);

  // Power iteration for the Lipschitz constant, cached so solves never
  // recompute it.  Arithmetic (and thus bits) matches the historical
  // per-solve loop exactly: w = Phi'(Phi v), lambda = ||w||, v = w / lambda,
  // 40 rounds from the all-ones start.  Backend-independent by the kern
  // parity contract.
  const auto& k = kern::ops();
  std::vector<double> v(n_, 1.0);
  std::vector<double> wm(m_);
  std::vector<double> wn(n_);
  double lambda = 1.0;
  lipschitz_ = 1.0;
  for (int it = 0; it < 40; ++it) {
    k.spmv(apply_plan_, v.data(), wm.data());
    k.spmv(adjoint_plan_, wm.data(), wn.data());
    lambda = std::sqrt(k.nrm2_sq(wn.data(), n_));
    if (lambda <= 0.0) return;  // Degenerate: keep lipschitz_ = 1.0.
    for (std::size_t i = 0; i < n_; ++i) v[i] = wn[i] / lambda;
  }
  lipschitz_ = std::max(lambda, 1e-9);
}

std::vector<std::int64_t> SensingMatrix::encode(std::span<const std::int32_t> x,
                                                dsp::OpCount* ops) const {
  assert(x.size() == n_);
  dsp::OpCount local;
  std::vector<std::int64_t> y(m_, 0);
  for (std::size_t c = 0; c < n_; ++c) {
    const auto v = static_cast<std::int64_t>(x[c]);
    local.load += 1;
    for (std::uint32_t e = col_start_[c]; e < col_start_[c + 1]; ++e) {
      const auto& entry = entries_[e];
      if (entry.sign > 0) {
        y[entry.row] += v;
      } else {
        y[entry.row] -= v;
      }
      local.add += 1;
      local.load += 2;
      local.store += 1;
    }
  }
  if (ops != nullptr) *ops += local;
  return y;
}

std::vector<double> SensingMatrix::apply(std::span<const double> x) const {
  assert(x.size() == n_);
  std::vector<double> y(m_);
  kern::ops().spmv(apply_plan_, x.data(), y.data());
  return y;
}

std::vector<double> SensingMatrix::apply_adjoint(std::span<const double> y) const {
  assert(y.size() == m_);
  std::vector<double> x(n_);
  kern::ops().spmv(adjoint_plan_, y.data(), x.data());
  return x;
}

void SensingMatrix::apply_into(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == n_ && y.size() == m_);
  kern::ops().spmv(apply_plan_, x.data(), y.data());
}

void SensingMatrix::apply_adjoint_into(std::span<const double> y, std::span<double> x) const {
  assert(y.size() == m_ && x.size() == n_);
  kern::ops().spmv(adjoint_plan_, y.data(), x.data());
}

void SensingMatrix::apply_batch(std::span<const double> x, std::size_t batch,
                                std::span<double> y) const {
  assert(x.size() == n_ * batch && y.size() == m_ * batch);
  kern::ops().spmv_batch(apply_plan_, x.data(), batch, y.data());
}

void SensingMatrix::apply_adjoint_batch(std::span<const double> y, std::size_t batch,
                                        std::span<double> x) const {
  assert(y.size() == m_ * batch && x.size() == n_ * batch);
  kern::ops().spmv_batch(adjoint_plan_, y.data(), batch, x.data());
}

std::size_t SensingMatrix::storage_bytes() const {
  // 16-bit row index per non-zero; +1 bit per entry for signs if any.
  std::size_t bytes = entries_.size() * 2;
  if (has_negative_) bytes += (entries_.size() + 7) / 8;
  return bytes;
}

double compression_ratio_percent(std::size_t m, std::size_t n) {
  return 100.0 * (1.0 - static_cast<double>(m) / static_cast<double>(n));
}

std::size_t rows_for_cr(double cr_percent, std::size_t n) {
  const double m = (1.0 - cr_percent / 100.0) * static_cast<double>(n);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(m)));
}

}  // namespace wbsn::cs
