// Sensing matrices for compressed sensing of ECG.
//
// Mamaghanian et al. (IEEE TBME 2011) — reference [4]/[16] of the paper —
// show that *sparse binary* sensing matrices (a handful of ones per
// column) achieve near-optimal reconstruction quality while reducing the
// node-side encoding cost to d additions per input sample and shrinking
// the matrix storage to d row-indices per column.  This module provides
// that family plus the dense Bernoulli +/-1 baseline used in ablations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"
#include "kern/spmv_plan.hpp"
#include "sig/rng.hpp"

namespace wbsn::cs {

/// m x n sensing operator, stored column-wise as row-index lists with
/// +/-1 signs (sparse binary matrices use sign = +1 everywhere).
class SensingMatrix {
 public:
  /// Sparse binary: exactly `ones_per_column` ones in random rows of each
  /// column (distinct rows), scaled implicitly by 1 (integer encoder).
  static SensingMatrix make_sparse_binary(std::size_t m, std::size_t n,
                                          std::size_t ones_per_column, sig::Rng& rng);

  /// Dense Bernoulli +/-1.
  static SensingMatrix make_bernoulli(std::size_t m, std::size_t n, sig::Rng& rng);

  /// The operator restricted to its first `m_eff` rows: column entries
  /// with row >= m_eff are dropped (so columns may carry fewer than d
  /// ones) and the plans — including the Lipschitz constant — are rebuilt
  /// for the truncated shape.  This is how the host degrades a window to a
  /// higher compression ratio without the node re-encoding: solving the
  /// first m_eff measurements against the truncated operator is exactly
  /// the problem a shorter measurement vector would have posed.  Pure
  /// function of (this, m_eff), so a cache rebuild is bit-identical.
  /// `m_eff` must be in [1, rows()].
  SensingMatrix truncated(std::size_t m_eff) const;

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }
  std::size_t nonzeros() const { return entries_.size(); }

  /// Node-side encode: y = Phi x over integers (adds/subs only).
  std::vector<std::int64_t> encode(std::span<const std::int32_t> x,
                                   dsp::OpCount* ops = nullptr) const;

  /// Host-side apply / adjoint in double precision (for the solver).
  /// Routed through the kern layer's packed spmv plans — bit-identical
  /// across the scalar and AVX2 backends and across batch widths.
  std::vector<double> apply(std::span<const double> x) const;
  std::vector<double> apply_adjoint(std::span<const double> y) const;

  /// Allocation-free variants writing into caller-owned buffers
  /// (y.size() == rows(), x.size() == cols()).
  void apply_into(std::span<const double> x, std::span<double> y) const;
  void apply_adjoint_into(std::span<const double> y, std::span<double> x) const;

  /// Lipschitz constant of the composed operator's gradient (largest
  /// squared singular value, 40 power iterations) — computed once at
  /// construction so solves never pay for it.  Bit-identical to the
  /// historical per-solve power iteration: same kernels, same order.
  double lipschitz() const { return lipschitz_; }

  /// Batched apply over `batch` windows interleaved element-major
  /// (x[i * batch + b] is element i of window b; y laid out the same
  /// way).  Matrix data streams once across the whole batch.
  void apply_batch(std::span<const double> x, std::size_t batch,
                   std::span<double> y) const;
  void apply_adjoint_batch(std::span<const double> y, std::size_t batch,
                           std::span<double> x) const;

  /// Bytes of node ROM needed to store the matrix (row indices, 16-bit,
  /// plus a sign bit-plane when any entry is negative).
  std::size_t storage_bytes() const;

 private:
  SensingMatrix(std::size_t m, std::size_t n) : m_(m), n_(n) {}

  /// Builds the packed apply/adjoint plans from entries_; called once by
  /// each factory so the matrix is immutable — and safely shared across
  /// solver threads — from then on.
  void build_plans();

  struct Entry {
    std::uint16_t row;
    std::int8_t sign;
  };
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  std::vector<std::uint32_t> col_start_;  ///< n_+1 offsets into entries_.
  std::vector<Entry> entries_;
  bool has_negative_ = false;
  double lipschitz_ = 1.0;       ///< Cached by build_plans().
  kern::SpmvPlan apply_plan_;    ///< Row-major packing (outputs = rows).
  kern::SpmvPlan adjoint_plan_;  ///< Column-major packing (outputs = cols).
};

/// Compression ratio (%) for a window of n samples measured with m rows:
/// CR = (1 - m/n) * 100, the definition used by Figure 5.
double compression_ratio_percent(std::size_t m, std::size_t n);

/// Inverse: measurement count for a target CR (%).
std::size_t rows_for_cr(double cr_percent, std::size_t n);

}  // namespace wbsn::cs
