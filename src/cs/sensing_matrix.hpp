// Sensing matrices for compressed sensing of ECG.
//
// Mamaghanian et al. (IEEE TBME 2011) — reference [4]/[16] of the paper —
// show that *sparse binary* sensing matrices (a handful of ones per
// column) achieve near-optimal reconstruction quality while reducing the
// node-side encoding cost to d additions per input sample and shrinking
// the matrix storage to d row-indices per column.  This module provides
// that family plus the dense Bernoulli +/-1 baseline used in ablations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"
#include "sig/rng.hpp"

namespace wbsn::cs {

/// m x n sensing operator, stored column-wise as row-index lists with
/// +/-1 signs (sparse binary matrices use sign = +1 everywhere).
class SensingMatrix {
 public:
  /// Sparse binary: exactly `ones_per_column` ones in random rows of each
  /// column (distinct rows), scaled implicitly by 1 (integer encoder).
  static SensingMatrix make_sparse_binary(std::size_t m, std::size_t n,
                                          std::size_t ones_per_column, sig::Rng& rng);

  /// Dense Bernoulli +/-1.
  static SensingMatrix make_bernoulli(std::size_t m, std::size_t n, sig::Rng& rng);

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }
  std::size_t nonzeros() const { return entries_.size(); }

  /// Node-side encode: y = Phi x over integers (adds/subs only).
  std::vector<std::int64_t> encode(std::span<const std::int32_t> x,
                                   dsp::OpCount* ops = nullptr) const;

  /// Host-side apply / adjoint in double precision (for the solver).
  std::vector<double> apply(std::span<const double> x) const;
  std::vector<double> apply_adjoint(std::span<const double> y) const;

  /// Bytes of node ROM needed to store the matrix (row indices, 16-bit,
  /// plus a sign bit-plane when any entry is negative).
  std::size_t storage_bytes() const;

 private:
  SensingMatrix(std::size_t m, std::size_t n) : m_(m), n_(n) {}

  struct Entry {
    std::uint16_t row;
    std::int8_t sign;
  };
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  std::vector<std::uint32_t> col_start_;  ///< n_+1 offsets into entries_.
  std::vector<Entry> entries_;
  bool has_negative_ = false;
};

/// Compression ratio (%) for a window of n samples measured with m rows:
/// CR = (1 - m/n) * 100, the definition used by Figure 5.
double compression_ratio_percent(std::size_t m, std::size_t n);

/// Inverse: measurement count for a target CR (%).
std::size_t rows_for_cr(double cr_percent, std::size_t n);

}  // namespace wbsn::cs
