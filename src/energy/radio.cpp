#include "energy/radio.hpp"

namespace wbsn::energy {

std::uint32_t RadioModel::frames_for(std::uint32_t payload_bytes) const {
  if (payload_bytes == 0) return 0;
  return (payload_bytes + max_mac_payload - 1) / max_mac_payload;
}

double RadioModel::energy_tx_burst_j(std::uint32_t payload_bytes) const {
  const std::uint32_t frames = frames_for(payload_bytes);
  if (frames == 0) return 0.0;
  const double per_byte = seconds_per_byte();

  const double tx_bytes_s =
      (static_cast<double>(payload_bytes) +
       static_cast<double>(frames) * (phy_overhead + mac_overhead)) *
      per_byte;
  const double tx_energy = tx_power_w * tx_bytes_s;

  // Per frame: CCA listen, turnaround to RX, ACK reception.
  const double rx_s = static_cast<double>(frames) *
                      (cca_s + turnaround_s + ack_frame_bytes * per_byte);
  const double rx_energy = rx_power_w * rx_s;

  // One start-up per burst.
  const double startup_energy = rx_power_w * startup_s;
  return tx_energy + rx_energy + startup_energy;
}

double RadioModel::airtime_s(std::uint32_t payload_bytes) const {
  const std::uint32_t frames = frames_for(payload_bytes);
  const double per_byte = seconds_per_byte();
  return (static_cast<double>(payload_bytes) +
          static_cast<double>(frames) * (phy_overhead + mac_overhead + ack_frame_bytes)) *
             per_byte +
         frames * (cca_s + 2.0 * turnaround_s);
}

}  // namespace wbsn::energy
