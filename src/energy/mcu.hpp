// Energy model of the node's microcontroller (MSP430-class, 16-bit).
//
// The paper's platform runs "at a clock frequency of few MHz and only
// supports integer arithmetic" (Section IV-A).  This model prices the
// abstract OpCount that every node-side kernel in this library reports:
// each operation class costs a fixed number of cycles (from the MSP430x1xx
// family user's guide orders of magnitude), each cycle costs
// k * Vdd^2 joules of switching energy, and a discrete DVFS table couples
// the attainable clock to the supply voltage — the lever the multi-core
// architecture of Figure 7 exploits.
#pragma once

#include <cstdint>

#include "dsp/opcount.hpp"

namespace wbsn::energy {

/// One DVFS operating point.
struct DvfsPoint {
  double f_hz;
  double vdd;
};

/// Lowest-voltage operating point able to sustain `f_hz` (clamps to the
/// highest point if the request exceeds the table).
DvfsPoint dvfs_point_for(double f_hz);

struct McuModel {
  double vdd = 2.2;
  double f_hz = 8e6;
  /// Switching energy coefficient: e_cycle = k * Vdd^2.  0.15 nJ/V^2
  /// reproduces the ~0.73 nJ/cycle of an MSP430F1xx at 2.2 V.
  double k_j_per_v2 = 0.15e-9;
  double leakage_w = 4e-6;         ///< Always-on leakage + LPM current.
  double idle_cycle_fraction = 0.1;  ///< Clock-tree cost of an idle cycle.

  // Cycles per operation class (16-bit ISA with HW multiplier).
  std::uint32_t cycles_add = 1;
  std::uint32_t cycles_mul = 5;
  std::uint32_t cycles_div = 22;
  std::uint32_t cycles_cmp = 1;
  std::uint32_t cycles_shift = 1;
  std::uint32_t cycles_load = 3;
  std::uint32_t cycles_store = 3;
  std::uint32_t cycles_branch = 2;

  double energy_per_cycle_j() const { return k_j_per_v2 * vdd * vdd; }

  /// Total cycles to execute an operation mix.
  std::uint64_t cycles(const dsp::OpCount& ops) const;

  /// Active-switching energy of an operation mix (no leakage).
  double energy_j(const dsp::OpCount& ops) const;

  /// Fraction of the real-time budget `window_s` spent computing `ops` —
  /// the "7 % duty cycle" figure of Section V is this quantity.
  double duty_cycle(const dsp::OpCount& ops, double window_s) const;

  /// Leakage energy over a window.
  double leakage_j(double window_s) const { return leakage_w * window_s; }

  /// Returns a copy re-pointed at the DVFS entry for `f_hz`.
  McuModel at_frequency(double f_hz) const;
};

}  // namespace wbsn::energy
