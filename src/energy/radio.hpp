// IEEE 802.15.4 radio energy model (CC2420-class transceiver).
//
// "The straightforward wireless streaming of raw data to external analysis
// servers" is the energy sink the whole paper attacks; this model prices
// it.  It accounts for the full protocol reality of a beacon-less
// 802.15.4 link: PHY preamble/SFD framing, MAC header and FCS,
// fragmentation into 127-byte frames, CSMA clear-channel assessment,
// RX/TX turnaround, acknowledgment reception and oscillator start-up —
// all the fixed costs that make small payloads disproportionately
// expensive.
#pragma once

#include <cstdint>

namespace wbsn::energy {

struct RadioModel {
  // CC2420 at 3.0 V: 17.4 mA TX @ 0 dBm, 18.8 mA RX, 250 kb/s.
  double tx_power_w = 52.2e-3;
  double rx_power_w = 56.4e-3;
  double bitrate_bps = 250e3;
  double startup_s = 0.9e-3;        ///< Oscillator + PLL start per burst.
  double turnaround_s = 192e-6;     ///< TX<->RX switch (a_TurnaroundTime).
  double cca_s = 128e-6;            ///< CSMA clear-channel assessment.

  // Frame geometry (bytes).
  std::uint32_t phy_overhead = 6;   ///< Preamble 4 + SFD 1 + length 1.
  std::uint32_t mac_overhead = 11;  ///< FCF 2, seq 1, addressing 6, FCS 2.
  std::uint32_t max_mac_payload = 116;
  std::uint32_t ack_frame_bytes = 11;

  double seconds_per_byte() const { return 8.0 / bitrate_bps; }
  double energy_per_tx_byte_j() const { return tx_power_w * seconds_per_byte(); }

  /// Frames needed for `payload_bytes` of application data.
  std::uint32_t frames_for(std::uint32_t payload_bytes) const;

  /// Energy to deliver `payload_bytes` in one burst, including
  /// fragmentation, CSMA, turnaround, ACKs and start-up.
  double energy_tx_burst_j(std::uint32_t payload_bytes) const;

  /// Airtime of the same burst (for bandwidth/duty-cycle accounting).
  double airtime_s(std::uint32_t payload_bytes) const;
};

}  // namespace wbsn::energy
