#include "energy/mcu.hpp"

#include <array>

namespace wbsn::energy {

namespace {

// MSP430-style discrete table: higher clocks demand higher supply.
constexpr std::array<DvfsPoint, 5> kDvfsTable = {{
    {1e6, 1.8},
    {4e6, 2.0},
    {8e6, 2.2},
    {16e6, 2.8},
    {25e6, 3.3},
}};

}  // namespace

DvfsPoint dvfs_point_for(double f_hz) {
  for (const auto& point : kDvfsTable) {
    if (f_hz <= point.f_hz) return {f_hz, point.vdd};
  }
  return {kDvfsTable.back().f_hz, kDvfsTable.back().vdd};
}

std::uint64_t McuModel::cycles(const dsp::OpCount& ops) const {
  return ops.add * cycles_add + ops.mul * cycles_mul + ops.div * cycles_div +
         ops.cmp * cycles_cmp + ops.shift * cycles_shift + ops.load * cycles_load +
         ops.store * cycles_store + ops.branch * cycles_branch;
}

double McuModel::energy_j(const dsp::OpCount& ops) const {
  return static_cast<double>(cycles(ops)) * energy_per_cycle_j();
}

double McuModel::duty_cycle(const dsp::OpCount& ops, double window_s) const {
  const double busy_s = static_cast<double>(cycles(ops)) / f_hz;
  return busy_s / window_s;
}

McuModel McuModel::at_frequency(double f_hz_request) const {
  McuModel scaled = *this;
  const DvfsPoint point = dvfs_point_for(f_hz_request);
  scaled.f_hz = point.f_hz;
  scaled.vdd = point.vdd;
  return scaled;
}

}  // namespace wbsn::energy
