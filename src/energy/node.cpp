#include "energy/node.hpp"

namespace wbsn::energy {

EnergyBreakdown NodeEnergyModel::window_energy(std::uint32_t tx_payload_bytes,
                                               const dsp::OpCount& computation,
                                               std::uint64_t samples_acquired,
                                               double window_s) const {
  EnergyBreakdown breakdown;
  breakdown.radio_j = radio.energy_tx_burst_j(tx_payload_bytes);
  breakdown.sampling_j = adc.energy_j(samples_acquired);
  breakdown.os_j = os.energy_j(mcu, window_s);
  breakdown.computation_j = mcu.energy_j(computation);
  return breakdown;
}

}  // namespace wbsn::energy
