// Node-level energy aggregation: acquisition + OS + computation + radio,
// and battery-lifetime estimation.
//
// This is the model behind Figure 6's breakdown and the "mean time between
// charges is typically one week" observation of Section V: given the bytes
// a configuration puts on air and the OpCount its processing consumes, the
// aggregator produces the per-window energy split and the projected
// battery life.
#pragma once

#include <cstdint>

#include "dsp/opcount.hpp"
#include "energy/mcu.hpp"
#include "energy/radio.hpp"

namespace wbsn::energy {

/// Acquisition front-end: instrumentation amplifier + SAR ADC per sample.
struct AdcModel {
  double energy_per_sample_j = 6e-9;

  double energy_j(std::uint64_t samples) const {
    return energy_per_sample_j * static_cast<double>(samples);
  }
};

/// Operating-system / platform baseline: FreeRTOS tick, drivers, sensor
/// ISRs — CPU time burned regardless of the application kernels.
struct OsModel {
  double active_fraction = 0.05;  ///< Fraction of wall-clock the CPU is up.

  double energy_j(const McuModel& mcu, double window_s) const {
    return active_fraction * window_s * mcu.f_hz * mcu.energy_per_cycle_j() +
           mcu.leakage_j(window_s);
  }
};

/// Per-window energy split (the Figure 6 categories; OS is folded into
/// a category of its own so the share of each is visible).
struct EnergyBreakdown {
  double radio_j = 0.0;
  double sampling_j = 0.0;
  double os_j = 0.0;
  double computation_j = 0.0;

  double total_j() const { return radio_j + sampling_j + os_j + computation_j; }
  double average_power_w(double window_s) const { return total_j() / window_s; }
};

struct NodeEnergyModel {
  McuModel mcu{};
  RadioModel radio{};
  AdcModel adc{};
  OsModel os{};

  /// Energy of one processing window.
  EnergyBreakdown window_energy(std::uint32_t tx_payload_bytes,
                                const dsp::OpCount& computation,
                                std::uint64_t samples_acquired, double window_s) const;
};

/// Battery lifetime (hours) at a given average power draw.
struct BatteryModel {
  double capacity_mah = 150.0;  ///< Small wearable cell.
  double voltage = 3.7;
  double usable_fraction = 0.85;

  double lifetime_hours(double average_power_w) const {
    const double energy_j = capacity_mah * 1e-3 * 3600.0 * voltage * usable_fraction;
    return energy_j / average_power_w / 3600.0;
  }
};

}  // namespace wbsn::energy
