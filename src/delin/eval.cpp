#include "delin/eval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wbsn::delin {

std::string to_string(FiducialKind kind) {
  switch (kind) {
    case FiducialKind::kPOn: return "P-onset";
    case FiducialKind::kPPeak: return "P-peak";
    case FiducialKind::kPOff: return "P-offset";
    case FiducialKind::kQrsOn: return "QRS-onset";
    case FiducialKind::kRPeak: return "R-peak";
    case FiducialKind::kQrsOff: return "QRS-offset";
    case FiducialKind::kTOn: return "T-onset";
    case FiducialKind::kTPeak: return "T-peak";
    case FiducialKind::kTOff: return "T-offset";
  }
  return "?";
}

double PointStats::sensitivity() const {
  const int denom = tp + fn;
  return denom > 0 ? static_cast<double>(tp) / denom : 1.0;
}

double PointStats::positive_predictivity() const {
  const int denom = tp + fp;
  return denom > 0 ? static_cast<double>(tp) / denom : 1.0;
}

double PointStats::mean_error_ms() const {
  return tp > 0 ? sum_err_ms / tp : 0.0;
}

double PointStats::rms_error_ms() const {
  return tp > 0 ? std::sqrt(sum_sq_err_ms / tp) : 0.0;
}

double DelineationScore::worst_sensitivity() const {
  double worst = 1.0;
  for (const auto& p : points) worst = std::min(worst, p.sensitivity());
  return worst;
}

double DelineationScore::worst_positive_predictivity() const {
  double worst = 1.0;
  for (const auto& p : points) worst = std::min(worst, p.positive_predictivity());
  return worst;
}

DelineationScore& DelineationScore::operator+=(const DelineationScore& other) {
  for (std::size_t k = 0; k < kNumFiducialKinds; ++k) {
    points[k].tp += other.points[k].tp;
    points[k].fn += other.points[k].fn;
    points[k].fp += other.points[k].fp;
    points[k].sum_err_ms += other.points[k].sum_err_ms;
    points[k].sum_sq_err_ms += other.points[k].sum_sq_err_ms;
  }
  return *this;
}

namespace {

/// Extracts the sample index of one fiducial kind (-1 if absent).
std::int64_t fiducial_of(const sig::BeatAnnotation& beat, FiducialKind kind) {
  switch (kind) {
    case FiducialKind::kPOn: return beat.p.valid() ? beat.p.onset : -1;
    case FiducialKind::kPPeak: return beat.p.valid() ? beat.p.peak : -1;
    case FiducialKind::kPOff: return beat.p.valid() ? beat.p.offset : -1;
    case FiducialKind::kQrsOn: return beat.qrs.valid() ? beat.qrs.onset : -1;
    case FiducialKind::kRPeak: return beat.qrs.valid() ? beat.qrs.peak : -1;
    case FiducialKind::kQrsOff: return beat.qrs.valid() ? beat.qrs.offset : -1;
    case FiducialKind::kTOn: return beat.t.valid() ? beat.t.onset : -1;
    case FiducialKind::kTPeak: return beat.t.valid() ? beat.t.peak : -1;
    case FiducialKind::kTOff: return beat.t.valid() ? beat.t.offset : -1;
  }
  return -1;
}

bool is_peak_kind(FiducialKind kind) {
  return kind == FiducialKind::kPPeak || kind == FiducialKind::kRPeak ||
         kind == FiducialKind::kTPeak;
}

}  // namespace

DelineationScore evaluate_delineation(std::span<const sig::BeatAnnotation> truth,
                                      std::span<const sig::BeatAnnotation> detected,
                                      const EvalConfig& cfg) {
  DelineationScore score;
  const double beat_tol = cfg.beat_match_tolerance_ms * cfg.fs / 1000.0;

  // Greedy beat pairing by R peak (both lists sorted): classic two-pointer.
  std::vector<std::pair<const sig::BeatAnnotation*, const sig::BeatAnnotation*>> pairs;
  std::vector<bool> det_used(detected.size(), false);
  std::size_t j = 0;
  for (const auto& t : truth) {
    // Advance to the nearest detection.
    while (j + 1 < detected.size() &&
           std::abs(detected[j + 1].r_peak - t.r_peak) <=
               std::abs(detected[j].r_peak - t.r_peak)) {
      ++j;
    }
    if (j < detected.size() && !det_used[j] &&
        std::abs(static_cast<double>(detected[j].r_peak - t.r_peak)) <= beat_tol) {
      pairs.emplace_back(&t, &detected[j]);
      det_used[j] = true;
    } else {
      pairs.emplace_back(&t, nullptr);
    }
  }

  for (std::size_t k = 0; k < kNumFiducialKinds; ++k) {
    const auto kind = static_cast<FiducialKind>(k);
    const double tol_ms = is_peak_kind(kind) ? cfg.peak_tolerance_ms : cfg.bound_tolerance_ms;
    auto& stats = score.points[k];
    for (const auto& [t, d] : pairs) {
      const std::int64_t truth_pos = fiducial_of(*t, kind);
      const std::int64_t det_pos = d != nullptr ? fiducial_of(*d, kind) : -1;
      if (truth_pos < 0 && det_pos < 0) continue;  // True negative (no wave).
      if (truth_pos < 0) {
        ++stats.fp;  // Hallucinated wave.
        continue;
      }
      if (det_pos < 0) {
        ++stats.fn;  // Missed wave.
        continue;
      }
      const double err_ms =
          static_cast<double>(det_pos - truth_pos) * 1000.0 / cfg.fs;
      if (std::abs(err_ms) <= tol_ms) {
        ++stats.tp;
        stats.sum_err_ms += err_ms;
        stats.sum_sq_err_ms += err_ms * err_ms;
      } else {
        // Outside tolerance counts against both ratios, as in the CSE
        // protocol: the truth point is missed and the detection is spurious.
        ++stats.fn;
        ++stats.fp;
      }
    }
    // Detections in beats with no matching truth beat are false positives.
    for (std::size_t di = 0; di < detected.size(); ++di) {
      if (!det_used[di] && fiducial_of(detected[di], kind) >= 0) ++stats.fp;
    }
  }
  return score;
}

PointStats evaluate_r_detection(std::span<const std::int64_t> truth,
                                std::span<const std::int64_t> detected, double fs,
                                double tolerance_ms) {
  PointStats stats;
  const double tol = tolerance_ms * fs / 1000.0;
  std::vector<bool> used(detected.size(), false);
  for (std::int64_t t : truth) {
    double best = std::numeric_limits<double>::max();
    std::size_t best_j = detected.size();
    for (std::size_t j = 0; j < detected.size(); ++j) {
      if (used[j]) continue;
      const double d = std::abs(static_cast<double>(detected[j] - t));
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    if (best_j < detected.size() && best <= tol) {
      used[best_j] = true;
      ++stats.tp;
      const double err_ms = best * 1000.0 / fs;
      stats.sum_err_ms += err_ms;
      stats.sum_sq_err_ms += err_ms * err_ms;
    } else {
      ++stats.fn;
    }
  }
  for (std::size_t j = 0; j < detected.size(); ++j) {
    if (!used[j]) ++stats.fp;
  }
  return stats;
}

}  // namespace wbsn::delin
