// Delineation scoring against ground truth.
//
// Mirrors the evaluation protocol of the embedded-delineation literature
// the paper builds on (Martínez et al., Braojos et al. BIBE 2012): each
// detected fiducial point is matched to the ground-truth point of the same
// kind in the same beat; a match within the tolerance window is a true
// positive, an unmatched truth point a false negative, an unmatched
// detection a false positive.  Sensitivity = TP/(TP+FN) and positive
// predictivity = TP/(TP+FP); the paper's ">90 % sensitivity and
// specificity" headline maps onto these two ratios.  Timing statistics
// (mean and RMS error) are reported alongside.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sig/types.hpp"

namespace wbsn::delin {

/// The nine scored fiducial kinds.
enum class FiducialKind : std::size_t {
  kPOn = 0, kPPeak, kPOff, kQrsOn, kRPeak, kQrsOff, kTOn, kTPeak, kTOff,
};
inline constexpr std::size_t kNumFiducialKinds = 9;

std::string to_string(FiducialKind kind);

/// Per-kind match statistics.
struct PointStats {
  int tp = 0;
  int fn = 0;
  int fp = 0;
  double sum_err_ms = 0.0;
  double sum_sq_err_ms = 0.0;

  double sensitivity() const;
  double positive_predictivity() const;
  double mean_error_ms() const;
  double rms_error_ms() const;
};

struct DelineationScore {
  std::array<PointStats, kNumFiducialKinds> points{};

  PointStats& at(FiducialKind kind) { return points[static_cast<std::size_t>(kind)]; }
  const PointStats& at(FiducialKind kind) const {
    return points[static_cast<std::size_t>(kind)];
  }

  /// Worst sensitivity / PPV across all kinds (the paper's "all above 90 %"
  /// claim is about these minima).
  double worst_sensitivity() const;
  double worst_positive_predictivity() const;

  DelineationScore& operator+=(const DelineationScore& other);
};

struct EvalConfig {
  double fs = 250.0;
  double peak_tolerance_ms = 40.0;    ///< For P/R/T peaks.
  double bound_tolerance_ms = 60.0;   ///< For on/offsets (CSE-style looser).
  double beat_match_tolerance_ms = 150.0;  ///< R-peak pairing window.
};

/// Scores `detected` against `truth` (both sorted by r_peak).
DelineationScore evaluate_delineation(std::span<const sig::BeatAnnotation> truth,
                                      std::span<const sig::BeatAnnotation> detected,
                                      const EvalConfig& cfg = {});

/// QRS-detector-only scoring: R-peak sensitivity / PPV.
PointStats evaluate_r_detection(std::span<const std::int64_t> truth,
                                std::span<const std::int64_t> detected, double fs,
                                double tolerance_ms = 60.0);

}  // namespace wbsn::delin
