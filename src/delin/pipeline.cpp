#include "delin/pipeline.hpp"

#include "dsp/lead_combine.hpp"

namespace wbsn::delin {

PipelineResult run_delineation_pipeline(std::span<const std::vector<std::int32_t>> leads,
                                        const PipelineConfig& cfg) {
  PipelineResult result;
  if (leads.empty()) return result;

  // Stage 1: morphological conditioning, independently per lead (the "3L"
  // in 3L-MF: the same kernel over three data streams).
  std::vector<std::vector<std::int32_t>> filtered;
  filtered.reserve(leads.size());
  for (const auto& lead : leads) {
    auto stage = dsp::morphological_filter(lead, cfg.filter);
    result.filter_ops += stage.ops;
    filtered.push_back(std::move(stage.filtered));
  }

  // Stage 2: lead combination (RMS) or first-lead passthrough.
  std::vector<std::int32_t> combined;
  if (cfg.combine_leads && filtered.size() > 1) {
    combined = dsp::rms_combine(filtered, &result.combine_ops);
  } else {
    combined = filtered[0];
  }

  // Stage 3: beat detection.
  QrsDetectorConfig qrs_cfg = cfg.qrs;
  qrs_cfg.fs = cfg.fs;
  auto qrs = detect_qrs(combined, qrs_cfg);
  result.qrs_ops = qrs.ops;
  result.r_peaks = std::move(qrs.r_peaks);

  // Stage 4: wave delineation on the combined signal.
  if (cfg.delineator == Delineator::kMorphological) {
    MmdConfig mmd_cfg = cfg.mmd;
    mmd_cfg.fs = cfg.fs;
    auto delineated = delineate_mmd(combined, result.r_peaks, mmd_cfg);
    result.delineation_ops = delineated.ops;
    result.beats = std::move(delineated.beats);
  } else {
    WaveletDelinConfig w_cfg = cfg.wavelet;
    w_cfg.fs = cfg.fs;
    auto delineated = delineate_wavelet(combined, result.r_peaks, w_cfg);
    result.delineation_ops = delineated.ops;
    result.beats = std::move(delineated.beats);
  }
  return result;
}

}  // namespace wbsn::delin
