// Integer QRS (R peak) detector in the Pan-Tompkins style.
//
// The front stage of both delineators: a derivative filter emphasizes the
// steep QRS slopes, squaring rectifies and sharpens, a 150 ms moving-window
// integral produces one hump per beat, and an adaptive two-level threshold
// with a refractory period and search-back picks beat locations.  Every
// arithmetic step is integer (shifts instead of divisions), matching the
// MCU implementation constraints of Section IV-A.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::delin {

struct QrsDetectorConfig {
  double fs = 250.0;
  double refractory_s = 0.20;         ///< Minimum beat spacing.
  double integration_window_s = 0.15; ///< Moving-window integral length.
  double search_back_factor = 1.66;   ///< Missed-beat search-back horizon.
  double r_locate_halfwidth_s = 0.06; ///< Window to refine R around a hump.
};

struct QrsDetectionResult {
  std::vector<std::int64_t> r_peaks;
  dsp::OpCount ops;
};

/// Detects R peaks on a single (filtered) integer lead.
QrsDetectionResult detect_qrs(std::span<const std::int32_t> x,
                              const QrsDetectorConfig& cfg = {});

}  // namespace wbsn::delin
