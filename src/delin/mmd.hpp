// Multiscale morphological delineation (MMD) of P, QRS and T waves.
//
// Implements the morphological-transform delineator of Sun, Chan & Krishnan
// (BMC Cardiovascular Disorders, 2005), the "3L-MMD" kernel of the paper's
// Figure 7 and one of the two embedded delineators compared in Braojos et
// al. (BIBE 2012).  The peak-enhancing transform x - (open(x)+close(x))/2
// maps wave peaks to extrema and flattens baseline, so fiducial points
// reduce to window searches and threshold crossings — all integer
// arithmetic with flat structuring elements.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"
#include "sig/types.hpp"

namespace wbsn::delin {

struct MmdConfig {
  double fs = 250.0;
  /// Structuring-element widths (seconds) for the per-wave transforms.
  double qrs_se_s = 0.14;
  double pt_se_s = 0.44;       ///< Wider SE: must exceed the widest T wave.
  /// Wave search windows relative to the R peak / QRS bounds (seconds).
  double q_search_s = 0.07;    ///< Q within [R - q_search, R).
  double s_search_s = 0.09;    ///< S within (R, R + s_search].
  double p_search_lo_s = 0.28; ///< P window begins at R - p_search_lo.
  double p_search_hi_s = 0.07; ///< ... and ends at R - p_search_hi.
  double t_search_lo_s = 0.12; ///< T window begins at QRS offset + ...
  double t_search_hi_s = 0.42; ///< ... and ends at R + t_search_hi.
  /// QRS on/offset threshold as a fraction of the wave's transform peak,
  /// over 256 (13 ~ 5 %).
  int boundary_threshold_num = 13;
  /// P/T boundary threshold (over 256).  Higher than the QRS one because
  /// the low-amplitude P wave's 5 %-level sits below the ambulatory noise
  /// floor; 33/256 ~ 13 % keeps the scan above the noise at a ~10 ms
  /// systematic bias (well inside the CSE tolerance).
  int pt_boundary_threshold_num = 33;
  /// P-wave boundary threshold (over 256): the P is the smallest wave, so
  /// its scan needs the largest noise margin; 51/256 ~ 20 % trades a
  /// ~15 ms inward bias for robustness to residual wander.
  int p_boundary_threshold_num = 51;
  /// Minimum P transform amplitude relative to the R transform amplitude
  /// (fraction of 256) below which the beat is declared P-less.
  int p_presence_num = 20;     ///< 20/256 = 7.8 % of the R response.
};

struct MmdResult {
  std::vector<sig::BeatAnnotation> beats;
  dsp::OpCount ops;
};

/// Delineates each beat of `x` given externally detected R peaks.
MmdResult delineate_mmd(std::span<const std::int32_t> x,
                        std::span<const std::int64_t> r_peaks, const MmdConfig& cfg = {});

}  // namespace wbsn::delin
