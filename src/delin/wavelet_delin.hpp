// Wavelet (modulus-maxima) ECG delineation.
//
// The second embedded delineator of the paper (Rincón et al., BSN 2009,
// following Martínez et al., IEEE TBME 2004): the undecimated
// quadratic-spline transform of dsp/wavelet.hpp approximates the smoothed
// derivative of the ECG at dyadic scales, so each monophasic wave appears
// as a pair of opposite-sign modulus maxima with a zero crossing at the
// wave peak.  QRS delineation reads scale 2^2, the slower P and T waves
// read scale 2^4.  Wave on/offsets are located where the modulus decays
// below a fraction of its flanking maximum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"
#include "sig/types.hpp"

namespace wbsn::delin {

struct WaveletDelinConfig {
  double fs = 250.0;
  int levels = 4;              ///< SWT depth (scales 2^1 .. 2^levels).
  int qrs_scale = 2;           ///< 1-based scale index for QRS work.
  int pt_scale = 4;            ///< 1-based scale index for P/T work.
  double q_search_s = 0.08;
  double s_search_s = 0.10;
  double p_search_lo_s = 0.28;
  double p_search_hi_s = 0.06;
  double t_search_lo_s = 0.10;
  double t_search_hi_s = 0.45;
  /// Boundary threshold as a fraction of the flanking modulus maximum
  /// (numerator over 256); Martinez-style gamma factors.
  int boundary_threshold_num = 32;   ///< 12.5 %.
  /// P presence: modulus maximum must exceed this fraction (over 256) of
  /// the QRS modulus at the P/T scale.
  int p_presence_num = 10;
};

struct WaveletDelinResult {
  std::vector<sig::BeatAnnotation> beats;
  dsp::OpCount ops;
};

/// Delineates each beat of `x` given externally detected R peaks.
WaveletDelinResult delineate_wavelet(std::span<const std::int32_t> x,
                                     std::span<const std::int64_t> r_peaks,
                                     const WaveletDelinConfig& cfg = {});

}  // namespace wbsn::delin
