// End-to-end multi-lead delineation pipeline (filter -> combine -> detect
// -> delineate), matching the processing chain of Figure 1 up to the
// "delineation" abstraction level.  This is the composition benchmarked as
// 3L-MF + 3L-MMD in Figure 7 and evaluated in the delineation-accuracy
// table; core/ builds the full application node on top of it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "delin/eval.hpp"
#include "delin/mmd.hpp"
#include "delin/qrs_detect.hpp"
#include "delin/wavelet_delin.hpp"
#include "dsp/morphology.hpp"
#include "sig/types.hpp"

namespace wbsn::delin {

enum class Delineator { kMorphological, kWavelet };

struct PipelineConfig {
  double fs = 250.0;
  dsp::MorphFilterConfig filter{};
  QrsDetectorConfig qrs{};
  Delineator delineator = Delineator::kMorphological;
  MmdConfig mmd{};
  WaveletDelinConfig wavelet{};
  bool combine_leads = true;  ///< RMS combination before delineation.
};

struct PipelineResult {
  std::vector<sig::BeatAnnotation> beats;
  std::vector<std::int64_t> r_peaks;
  /// Per-stage node-side work, for the energy model.
  dsp::OpCount filter_ops;
  dsp::OpCount combine_ops;
  dsp::OpCount qrs_ops;
  dsp::OpCount delineation_ops;

  dsp::OpCount total_ops() const {
    return filter_ops + combine_ops + qrs_ops + delineation_ops;
  }
};

/// Runs the full chain on integer multi-lead input.
PipelineResult run_delineation_pipeline(std::span<const std::vector<std::int32_t>> leads,
                                        const PipelineConfig& cfg = {});

}  // namespace wbsn::delin
