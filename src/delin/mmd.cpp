#include "delin/mmd.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/morphology.hpp"

namespace wbsn::delin {
namespace {

/// Top-hat (x - opening) and bottom-hat (closing - x) residuals.  Unlike
/// the symmetric transform x - (open+close)/2, the hats never "bridge"
/// silent gaps between waves: opening is anti-extensive and closing is
/// extensive, so each residual is zero wherever the signal carries no
/// structure of the matching polarity narrower than the SE.  Positive
/// waves light up the top-hat, negative waves the bottom-hat, and the
/// isoelectric segments stay at zero — exactly what boundary scanning
/// needs.
struct HatPair {
  std::vector<std::int32_t> top;
  std::vector<std::int32_t> bottom;
};

HatPair hats(std::span<const std::int32_t> x, std::size_t width, dsp::OpCount& ops) {
  HatPair h;
  const auto opened = dsp::morph_open(x, width, &ops);
  const auto closed = dsp::morph_close(x, width, &ops);
  h.top.resize(x.size());
  h.bottom.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    h.top[i] = x[i] - opened[i];
    h.bottom[i] = closed[i] - x[i];
  }
  ops.add += 2 * x.size();
  ops.load += 3 * x.size();
  ops.store += 2 * x.size();
  return h;
}

/// Wave response at sample i: the dominant hat and its polarity.
struct Response {
  std::int64_t magnitude = 0;
  int polarity = +1;  ///< +1: top-hat (positive wave), -1: bottom-hat.
};

/// The bottom-hat also fires inside silent gaps *between* two positive
/// waves (closing bridges any gap narrower than its SE), so hat choice is
/// gated on the sign of the baseline-corrected signal itself: a genuine
/// negative wave deflects the signal below baseline, a bridged gap does
/// not.
Response response_at(std::span<const std::int32_t> x, const HatPair& h, std::int64_t i) {
  const auto idx = static_cast<std::size_t>(i);
  if (x[idx] >= 0) return {static_cast<std::int64_t>(h.top[idx]), +1};
  return {static_cast<std::int64_t>(h.bottom[idx]), -1};
}

/// Largest wave response in [lo, hi] (clamped); -1 for empty windows.
std::int64_t argmax_response(std::span<const std::int32_t> x, const HatPair& h,
                             std::int64_t lo, std::int64_t hi, dsp::OpCount& ops) {
  lo = std::max<std::int64_t>(lo, 0);
  hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(h.top.size()) - 1);
  if (lo > hi) return -1;
  std::int64_t best = lo;
  std::int64_t best_mag = -1;
  for (std::int64_t i = lo; i <= hi; ++i) {
    const auto r = response_at(x, h, i);
    if (r.magnitude > best_mag) {
      best_mag = r.magnitude;
      best = i;
    }
  }
  ops.cmp += 2 * static_cast<std::uint64_t>(hi - lo + 1);
  ops.load += 2 * static_cast<std::uint64_t>(hi - lo + 1);
  return best;
}

/// Walks outward from `from` along the polarity's hat until it decays
/// below `threshold`; `min_steps` skips intra-complex dips.
std::int64_t scan_boundary(const HatPair& h, std::int64_t from, int dir, int polarity,
                           std::int64_t threshold, std::int64_t min_steps,
                           std::int64_t max_steps, dsp::OpCount& ops) {
  const auto& hat = polarity > 0 ? h.top : h.bottom;
  const auto n = static_cast<std::int64_t>(hat.size());
  std::int64_t i = from;
  for (std::int64_t step = 0; step < max_steps; ++step) {
    const std::int64_t next = i + dir;
    if (next < 0 || next >= n) break;
    i = next;
    ops.cmp += 1;
    ops.load += 1;
    if (step + 1 < min_steps) continue;
    if (static_cast<std::int64_t>(hat[static_cast<std::size_t>(i)]) < threshold) return i;
  }
  return i;
}

/// PQ quiet-zone veto.  A genuine P wave is followed by an isoelectric
/// segment before the QRS; continuous fibrillatory activity (AF) is not.
/// Accepts the candidate only if the mean |x| between its offset and the
/// QRS onset stays below a fraction of the candidate's own amplitude.
bool pq_zone_is_quiet(std::span<const std::int32_t> x, std::int64_t p_on,
                      std::int64_t p_off, std::int64_t qrs_onset, std::int64_t p_peak,
                      dsp::OpCount& ops) {
  // Two evidence segments: the stretch before the P onset (after the
  // preceding T wave) and the PQ segment proper.  A true P is isoelectric
  // on both flanks; fibrillatory waves and T-wave tails are not.
  std::int64_t acc = 0;
  std::int64_t count = 0;
  const auto n = static_cast<std::int64_t>(x.size());
  const auto add_segment = [&](std::int64_t lo, std::int64_t hi) {
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi, n - 1);
    for (std::int64_t i = lo; i <= hi; ++i) {
      acc += std::abs(static_cast<std::int64_t>(x[static_cast<std::size_t>(i)]));
      ++count;
    }
    ops.add += static_cast<std::uint64_t>(std::max<std::int64_t>(0, hi - lo + 1));
    ops.load += static_cast<std::uint64_t>(std::max<std::int64_t>(0, hi - lo + 1));
  };
  add_segment(p_on - 8, p_on - 2);
  add_segment(p_off + 2, qrs_onset - 2);
  if (count < 5) return true;  // Zones too short to judge; accept.
  ops.div += 1;
  const std::int64_t mean = acc / count;
  const std::int64_t amp =
      std::abs(static_cast<std::int64_t>(x[static_cast<std::size_t>(p_peak)]));
  return mean < (amp * 96) >> 8;  // 37.5 % of the candidate amplitude.
}

}  // namespace

MmdResult delineate_mmd(std::span<const std::int32_t> x,
                        std::span<const std::int64_t> r_peaks, const MmdConfig& cfg) {
  MmdResult result;
  if (x.empty() || r_peaks.empty()) return result;

  const auto samples = [&](double seconds) {
    return static_cast<std::int64_t>(std::llround(seconds * cfg.fs));
  };
  const auto odd = [](std::int64_t w) { return static_cast<std::size_t>(w | 1); };

  // Hat pairs at the two scales (computed once per buffer; streamed in
  // fixed windows on the real node with identical per-sample work).
  const HatPair h_qrs = hats(x, odd(samples(cfg.qrs_se_s)), result.ops);
  const HatPair h_pt = hats(x, odd(samples(cfg.pt_se_s)), result.ops);
  const auto n = static_cast<std::int64_t>(x.size());

  for (std::size_t b = 0; b < r_peaks.size(); ++b) {
    const std::int64_t r = r_peaks[b];
    if (r < 0 || r >= n) continue;
    sig::BeatAnnotation beat;
    beat.r_peak = r;

    const Response r_resp = response_at(x, h_qrs, r);
    const std::int64_t qrs_thr =
        std::max<std::int64_t>(1, (r_resp.magnitude * cfg.boundary_threshold_num) >> 8);
    const std::int64_t max_scan = samples(0.12);

    // --- QRS: scan outward from R along its own hat. ---
    beat.qrs.peak = r;
    beat.qrs.onset = scan_boundary(h_qrs, r, -1, r_resp.polarity, qrs_thr, samples(0.02),
                                   max_scan, result.ops);
    beat.qrs.offset = scan_boundary(h_qrs, r, +1, r_resp.polarity, qrs_thr, samples(0.02),
                                    max_scan, result.ops);

    // --- P wave ---
    // The search window is bounded below by the previous beat's T-wave
    // region so its tail cannot be mistaken for a P at high rates.
    std::int64_t p_lo = r - samples(cfg.p_search_lo_s);
    if (b > 0) {
      const std::int64_t rr = r - r_peaks[b - 1];
      // Two lower bounds: a fraction of the current RR, and an absolute
      // floor covering the previous beat's T wave.  The floor matters for
      // premature beats (short coupling interval), where the preceding T —
      // timed by the *previous* cycle — still occupies early diastole.
      p_lo = std::max(p_lo, r_peaks[b - 1] +
                                std::max((rr * 154) >> 8, samples(0.45)));
    }
    // The window also ends before this beat's own QRS onset (a premature
    // wide-QRS beat pushes its Q rise into the nominal P territory).
    const std::int64_t p_hi =
        std::min(r - samples(cfg.p_search_hi_s), beat.qrs.onset - samples(0.02));
    const std::int64_t p_peak = argmax_response(x, h_pt, p_lo, p_hi, result.ops);
    // A genuine P peak is interior to its window; a maximum hugging the
    // window edge is the tail of a neighbouring wave leaking in.
    const bool p_interior = p_peak > std::max<std::int64_t>(p_lo, 0) + 1 && p_peak < p_hi - 1;
    if (p_peak >= 0 && p_interior) {
      const Response p_resp = response_at(x, h_pt, p_peak);
      if (p_resp.magnitude >= (r_resp.magnitude * cfg.p_presence_num) >> 8) {
        const std::int64_t p_thr = std::max<std::int64_t>(
            1, (p_resp.magnitude * cfg.p_boundary_threshold_num) >> 8);
        sig::WaveFiducials p;
        p.peak = p_peak;
        p.onset = scan_boundary(h_pt, p_peak, -1, p_resp.polarity, p_thr, samples(0.015),
                                max_scan, result.ops);
        p.offset = scan_boundary(h_pt, p_peak, +1, p_resp.polarity, p_thr, samples(0.015),
                                 max_scan, result.ops);
        if (pq_zone_is_quiet(x, p.onset, p.offset, beat.qrs.onset, p_peak, result.ops)) {
          beat.p = p;
        }
      }
    }

    // --- T wave ---
    const std::int64_t t_lo = beat.qrs.offset + samples(cfg.t_search_lo_s);
    const std::int64_t t_hi = r + samples(cfg.t_search_hi_s);
    const std::int64_t t_peak = argmax_response(x, h_pt, t_lo, t_hi, result.ops);
    if (t_peak >= 0) {
      const Response t_resp = response_at(x, h_pt, t_peak);
      const std::int64_t t_thr = std::max<std::int64_t>(
          1, (t_resp.magnitude * cfg.pt_boundary_threshold_num) >> 8);
      beat.t.peak = t_peak;
      beat.t.onset = scan_boundary(h_pt, t_peak, -1, t_resp.polarity, t_thr,
                                   samples(0.02), max_scan * 2, result.ops);
      beat.t.offset = scan_boundary(h_pt, t_peak, +1, t_resp.polarity, t_thr,
                                    samples(0.02), max_scan * 2, result.ops);
    }

    result.beats.push_back(beat);
  }
  return result;
}

}  // namespace wbsn::delin
