#include "delin/wavelet_delin.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/wavelet.hpp"

namespace wbsn::delin {
namespace {

std::int64_t clamp_idx(std::int64_t i, std::int64_t n) {
  return std::clamp<std::int64_t>(i, 0, n - 1);
}

std::int64_t argmax_signed(std::span<const std::int32_t> w, std::int64_t lo, std::int64_t hi,
                           int sign, dsp::OpCount& ops) {
  const auto n = static_cast<std::int64_t>(w.size());
  lo = clamp_idx(lo, n);
  hi = clamp_idx(hi, n);
  if (lo > hi) return -1;
  std::int64_t best = -1;
  std::int64_t best_v = 0;
  for (std::int64_t i = lo; i <= hi; ++i) {
    const std::int64_t v = sign * static_cast<std::int64_t>(w[static_cast<std::size_t>(i)]);
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  ops.cmp += static_cast<std::uint64_t>(hi - lo + 1);
  ops.load += static_cast<std::uint64_t>(hi - lo + 1);
  return best;
}

/// First sign change of `w` between a and b (a < b); falls back to the
/// midpoint when the segment never crosses zero.
std::int64_t zero_crossing(std::span<const std::int32_t> w, std::int64_t a, std::int64_t b,
                           dsp::OpCount& ops) {
  for (std::int64_t i = a; i < b; ++i) {
    const auto va = w[static_cast<std::size_t>(i)];
    const auto vb = w[static_cast<std::size_t>(i + 1)];
    ops.cmp += 1;
    ops.load += 2;
    if ((va >= 0 && vb < 0) || (va <= 0 && vb > 0)) {
      // Pick the endpoint closer to zero.
      return std::abs(va) <= std::abs(vb) ? i : i + 1;
    }
  }
  return (a + b) / 2;
}

std::int64_t scan_below(std::span<const std::int32_t> w, std::int64_t from, int dir,
                        std::int64_t threshold, std::int64_t max_steps, dsp::OpCount& ops) {
  const auto n = static_cast<std::int64_t>(w.size());
  std::int64_t i = from;
  for (std::int64_t step = 0; step < max_steps; ++step) {
    const std::int64_t next = i + dir;
    if (next < 0 || next >= n) break;
    i = next;
    ops.cmp += 1;
    ops.load += 1;
    if (std::abs(static_cast<std::int64_t>(w[static_cast<std::size_t>(i)])) < threshold) {
      return i;
    }
  }
  return i;
}

/// Locates one monophasic wave (P or T) in `w` restricted to [lo, hi]:
/// finds the dominant modulus-maxima pair, the zero crossing between them
/// (wave peak) and the outward threshold crossings (on/offset).
sig::WaveFiducials locate_wave(std::span<const std::int32_t> w, std::int64_t lo,
                               std::int64_t hi, std::int64_t presence_threshold,
                               int boundary_num, std::int64_t max_scan,
                               dsp::OpCount& ops) {
  sig::WaveFiducials out;
  const std::int64_t pos = argmax_signed(w, lo, hi, +1, ops);
  const std::int64_t neg = argmax_signed(w, lo, hi, -1, ops);
  if (pos < 0 || neg < 0) return out;
  const auto mag = [&](std::int64_t i) {
    return std::abs(static_cast<std::int64_t>(w[static_cast<std::size_t>(i)]));
  };
  // Both lobes of the derivative pair must clear the presence threshold.
  if (std::min(mag(pos), mag(neg)) < presence_threshold) return out;
  const std::int64_t first = std::min(pos, neg);
  const std::int64_t second = std::max(pos, neg);
  out.peak = zero_crossing(w, first, second, ops);
  const std::int64_t on_thr = std::max<std::int64_t>(1, (mag(first) * boundary_num) >> 8);
  const std::int64_t off_thr = std::max<std::int64_t>(1, (mag(second) * boundary_num) >> 8);
  out.onset = scan_below(w, first, -1, on_thr, max_scan, ops);
  out.offset = scan_below(w, second, +1, off_thr, max_scan, ops);
  return out;
}

/// PQ quiet-zone veto (same rationale as the morphological delineator's):
/// a genuine P wave is followed by an isoelectric stretch before the QRS,
/// while fibrillatory activity keeps the zone busy.
bool pq_zone_is_quiet(std::span<const std::int32_t> x, std::int64_t p_on,
                      std::int64_t p_off, std::int64_t qrs_onset, std::int64_t p_peak,
                      dsp::OpCount& ops) {
  // Two evidence segments: the stretch before the P onset (after the
  // preceding T wave) and the PQ segment proper.  A true P is isoelectric
  // on both flanks; fibrillatory waves and T-wave tails are not.
  std::int64_t acc = 0;
  std::int64_t count = 0;
  const auto n = static_cast<std::int64_t>(x.size());
  const auto add_segment = [&](std::int64_t lo, std::int64_t hi) {
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi, n - 1);
    for (std::int64_t i = lo; i <= hi; ++i) {
      acc += std::abs(static_cast<std::int64_t>(x[static_cast<std::size_t>(i)]));
      ++count;
    }
    ops.add += static_cast<std::uint64_t>(std::max<std::int64_t>(0, hi - lo + 1));
    ops.load += static_cast<std::uint64_t>(std::max<std::int64_t>(0, hi - lo + 1));
  };
  add_segment(p_on - 8, p_on - 2);
  add_segment(p_off + 2, qrs_onset - 2);
  if (count < 5) return true;  // Zones too short to judge; accept.
  ops.div += 1;
  const std::int64_t mean = acc / count;
  const std::int64_t amp =
      std::abs(static_cast<std::int64_t>(x[static_cast<std::size_t>(p_peak)]));
  return mean < (amp * 96) >> 8;  // 37.5 % of the candidate amplitude.
}

}  // namespace

WaveletDelinResult delineate_wavelet(std::span<const std::int32_t> x,
                                     std::span<const std::int64_t> r_peaks,
                                     const WaveletDelinConfig& cfg) {
  WaveletDelinResult result;
  if (x.empty() || r_peaks.empty()) return result;

  const auto swt = dsp::swt_spline(x, cfg.levels);
  result.ops += swt.ops;
  const auto& w_qrs = swt.detail[static_cast<std::size_t>(cfg.qrs_scale - 1)];
  const auto& w_pt = swt.detail[static_cast<std::size_t>(cfg.pt_scale - 1)];
  const auto n = static_cast<std::int64_t>(x.size());

  const auto samples = [&](double seconds) {
    return static_cast<std::int64_t>(std::llround(seconds * cfg.fs));
  };
  const std::int64_t max_scan = samples(0.14);

  for (std::size_t b = 0; b < r_peaks.size(); ++b) {
    const std::int64_t r = r_peaks[b];
    if (r < 0 || r >= n) continue;
    sig::BeatAnnotation beat;
    beat.r_peak = r;
    beat.qrs.peak = r;

    // QRS: dominant modulus-maxima pair across R at the fine scale.
    const std::int64_t mm_pre =
        argmax_signed(w_qrs, r - samples(cfg.q_search_s), r, +1, result.ops);
    const std::int64_t mm_post =
        argmax_signed(w_qrs, r, r + samples(cfg.s_search_s), -1, result.ops);
    const auto mod = [&](const std::vector<std::int32_t>& w, std::int64_t i) {
      return i >= 0 ? std::abs(static_cast<std::int64_t>(w[static_cast<std::size_t>(i)])) : 0;
    };
    const std::int64_t qrs_mod = std::max(mod(w_qrs, mm_pre), mod(w_qrs, mm_post));
    const std::int64_t qrs_thr =
        std::max<std::int64_t>(1, (qrs_mod * cfg.boundary_threshold_num) >> 8);
    beat.qrs.onset =
        scan_below(w_qrs, mm_pre >= 0 ? mm_pre : r, -1, qrs_thr, max_scan, result.ops);
    beat.qrs.offset =
        scan_below(w_qrs, mm_post >= 0 ? mm_post : r, +1, qrs_thr, max_scan, result.ops);

    // Reference modulus for P presence: QRS response at the coarse scale.
    std::int64_t qrs_mod_pt = 0;
    for (std::int64_t i = clamp_idx(r - samples(0.06), n); i <= clamp_idx(r + samples(0.06), n);
         ++i) {
      qrs_mod_pt = std::max(qrs_mod_pt, mod(w_pt, i));
    }
    const std::int64_t presence =
        std::max<std::int64_t>(1, (qrs_mod_pt * cfg.p_presence_num) >> 8);

    // P wave, window bounded away from the previous T wave.
    std::int64_t p_lo = r - samples(cfg.p_search_lo_s);
    if (b > 0) {
      const std::int64_t rr = r - r_peaks[b - 1];
      // Two lower bounds: a fraction of the current RR, and an absolute
      // floor covering the previous beat's T wave.  The floor matters for
      // premature beats (short coupling interval), where the preceding T —
      // timed by the *previous* cycle — still occupies early diastole.
      p_lo = std::max(p_lo, r_peaks[b - 1] +
                                std::max((rr * 154) >> 8, samples(0.45)));
    }
    const std::int64_t p_hi =
        std::min(r - samples(cfg.p_search_hi_s), beat.qrs.onset - samples(0.02));
    const sig::WaveFiducials p = locate_wave(w_pt, p_lo, p_hi, presence,
                                             cfg.boundary_threshold_num, max_scan,
                                             result.ops);
    if (p.valid() &&
        pq_zone_is_quiet(x, p.onset, p.offset, beat.qrs.onset, p.peak, result.ops)) {
      beat.p = p;
    }

    // T wave (no presence gating: T is always sought, like the reference
    // delineators which only report T misses on threshold failure).
    beat.t = locate_wave(w_pt, beat.qrs.offset + samples(cfg.t_search_lo_s),
                         r + samples(cfg.t_search_hi_s), presence / 2,
                         cfg.boundary_threshold_num, max_scan * 2, result.ops);

    result.beats.push_back(beat);
  }
  return result;
}

}  // namespace wbsn::delin
