#include "delin/qrs_detect.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::delin {
namespace {

/// Pan-Tompkins five-point derivative: y[n] = (2x[n] + x[n-1] - x[n-3]
/// - 2x[n-4]) / 8.  Pure shifts and adds.
std::vector<std::int32_t> derivative(std::span<const std::int32_t> x, dsp::OpCount& ops) {
  std::vector<std::int32_t> y(x.size(), 0);
  for (std::size_t i = 4; i < x.size(); ++i) {
    const std::int64_t v = 2 * static_cast<std::int64_t>(x[i]) + x[i - 1] - x[i - 3] -
                           2 * static_cast<std::int64_t>(x[i - 4]);
    y[i] = static_cast<std::int32_t>(v >> 3);
  }
  ops.add += 3 * x.size();
  ops.shift += 3 * x.size();
  ops.load += 4 * x.size();
  ops.store += x.size();
  return y;
}

/// Squaring with a scale-down shift to keep the integrator in 32 bits.
std::vector<std::int32_t> square(std::span<const std::int32_t> x, dsp::OpCount& ops) {
  std::vector<std::int32_t> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::int64_t sq = static_cast<std::int64_t>(x[i]) * x[i];
    y[i] = static_cast<std::int32_t>(std::min<std::int64_t>(sq >> 4, INT32_MAX));
  }
  ops.mul += x.size();
  ops.shift += x.size();
  ops.load += x.size();
  ops.store += x.size();
  return y;
}

/// Moving-window integral (running sum; the constant scale factor is
/// irrelevant to thresholding so no division is needed).
std::vector<std::int64_t> integrate(std::span<const std::int32_t> x, std::size_t window,
                                    dsp::OpCount& ops) {
  std::vector<std::int64_t> y(x.size(), 0);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    if (i >= window) acc -= x[i - window];
    y[i] = acc;
  }
  ops.add += 2 * x.size();
  ops.load += 2 * x.size();
  ops.store += x.size();
  return y;
}

}  // namespace

QrsDetectionResult detect_qrs(std::span<const std::int32_t> x, const QrsDetectorConfig& cfg) {
  QrsDetectionResult result;
  if (x.size() < 16) return result;

  const auto deriv = derivative(x, result.ops);
  const auto squared = square(deriv, result.ops);
  const auto window = static_cast<std::size_t>(cfg.integration_window_s * cfg.fs);
  const auto integ = integrate(squared, window, result.ops);

  const auto refractory = static_cast<std::int64_t>(cfg.refractory_s * cfg.fs);
  const auto locate_halfwidth =
      static_cast<std::int64_t>(cfg.r_locate_halfwidth_s * cfg.fs);
  const auto n = static_cast<std::int64_t>(x.size());

  // Adaptive levels: signal-peak and noise-peak running estimates.  Both
  // update with 1/8 steps (shift), as in embedded Pan-Tompkins ports.
  // Initialization: peak of the first two seconds as SPK, an eighth of it
  // as NPK.
  const std::int64_t init_span = std::min<std::int64_t>(n, static_cast<std::int64_t>(2 * cfg.fs));
  std::int64_t spk = 0;
  for (std::int64_t i = 0; i < init_span; ++i) {
    spk = std::max(spk, integ[static_cast<std::size_t>(i)]);
  }
  std::int64_t npk = spk >> 3;
  result.ops.cmp += static_cast<std::uint64_t>(init_span);

  const auto threshold = [&]() { return npk + ((spk - npk) >> 2); };

  // Refine an integrator hump into an R location: maximum of |x| within
  // +/- locate_halfwidth around (hump - integrator delay).
  const auto locate_r = [&](std::int64_t hump) {
    const std::int64_t center = hump - static_cast<std::int64_t>(window / 2);
    const std::int64_t lo = std::max<std::int64_t>(0, center - locate_halfwidth);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, center + locate_halfwidth);
    std::int64_t best = lo;
    std::int64_t best_mag = 0;
    for (std::int64_t i = lo; i <= hi; ++i) {
      const std::int64_t mag = std::abs(static_cast<std::int64_t>(x[static_cast<std::size_t>(i)]));
      if (mag > best_mag) {
        best_mag = mag;
        best = i;
      }
    }
    result.ops.cmp += static_cast<std::uint64_t>(hi - lo + 1);
    result.ops.load += static_cast<std::uint64_t>(hi - lo + 1);
    return best;
  };

  std::int64_t last_hump = -refractory;
  std::vector<std::int64_t> humps;
  // Local maxima of the integrated signal above threshold, refractory-gated.
  for (std::int64_t i = 1; i + 1 < n; ++i) {
    const std::int64_t v = integ[static_cast<std::size_t>(i)];
    result.ops.cmp += 2;
    result.ops.load += 3;
    if (v < integ[static_cast<std::size_t>(i - 1)] ||
        v < integ[static_cast<std::size_t>(i + 1)]) {
      continue;
    }
    result.ops.cmp += 2;
    if (v > 0 && v >= threshold() && i - last_hump >= refractory) {
      humps.push_back(i);
      last_hump = i;
      spk += (v - spk) >> 3;  // SPK <- 7/8 SPK + 1/8 peak.
      result.ops.add += 2;
      result.ops.shift += 1;
    } else if (v < threshold()) {
      npk += (v - npk) >> 3;
      result.ops.add += 2;
      result.ops.shift += 1;
    }
  }

  // Search-back: if a gap exceeds search_back_factor * running average RR,
  // re-scan the gap with half threshold.
  if (humps.size() >= 2) {
    std::vector<std::int64_t> complete;
    std::int64_t avg_rr = humps[1] - humps[0];
    complete.push_back(humps[0]);
    for (std::size_t k = 1; k < humps.size(); ++k) {
      const std::int64_t gap = humps[k] - complete.back();
      const auto horizon =
          static_cast<std::int64_t>(cfg.search_back_factor * static_cast<double>(avg_rr));
      if (gap > horizon && avg_rr > refractory) {
        // Highest integrator hump in the interior of the gap above half SPK.
        const std::int64_t lo = complete.back() + refractory;
        const std::int64_t hi = humps[k] - refractory;
        std::int64_t best = -1;
        std::int64_t best_v = spk >> 1;
        for (std::int64_t i = lo; i <= hi; ++i) {
          const std::int64_t v = integ[static_cast<std::size_t>(i)];
          if (v > best_v) {
            best_v = v;
            best = i;
          }
        }
        result.ops.cmp += static_cast<std::uint64_t>(std::max<std::int64_t>(0, hi - lo + 1));
        if (best >= 0) complete.push_back(best);
      }
      complete.push_back(humps[k]);
      avg_rr += (complete.back() - complete[complete.size() - 2] - avg_rr) >> 3;
      avg_rr = std::max(avg_rr, refractory);
    }
    humps = std::move(complete);
  }

  result.r_peaks.reserve(humps.size());
  for (std::int64_t hump : humps) {
    const std::int64_t r = locate_r(hump);
    if (!result.r_peaks.empty() && r - result.r_peaks.back() < refractory) continue;
    result.r_peaks.push_back(r);
  }
  return result;
}

}  // namespace wbsn::delin
