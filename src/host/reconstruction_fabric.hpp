// Sharded reconstruction fabric — the layer between the node fleet and
// the per-shard streaming engines.
//
//   node -> fabric -> shard (engine) -> kern
//
// One ReconstructionEngine owns one slice of the fleet; the fabric
// partitions traffic across N such shards by a consistent-hash ring over
// the stable splitmix64 patient hash (hash_ring.hpp), so a patient's
// windows always land on the same shard (its matrix cache stays warm, its
// per-patient SLO tracker lives in one place) and shards share nothing on
// the hot path — no cross-shard lock, no global queue.  Each shard keeps
// its own admission gate, priority lanes, shed policy, worker pool, and
// SLO trackers; the fabric adds:
//
//   * ring routing (shard_of) that is independent of shard *state*, so
//     adding monitoring or draining one shard never re-routes patients —
//     and, through the ring, nearly independent of shard *count*;
//   * live elasticity: resize(new_shards) opens a new routing epoch.
//     Only the patients whose ring ownership actually changed move
//     (expected fraction ~1/N per single-shard step); each mover is
//     drained on its old shard (in-flight windows complete where they
//     started) and its per-patient SLO history is handed off to the new
//     owner, so the move is invisible in the patient's breakdown.  Shards
//     removed by a shrink are retired: they stay pollable until their
//     last result is retrieved, then their counters are folded into the
//     fabric's reaped accumulators and the engine is destroyed.
//   * fabric-wide submit/try_submit/poll/drain mirroring the engine API
//     (poll sweeps shards round-robin so no shard's completions starve);
//   * composite tickets — epoch | shard | shard-local ticket — unique
//     fabric-wide across any sequence of resizes (see compose_ticket);
//   * aggregate SLO snapshots: per-shard histograms are folded into one
//     tracker (SloTracker::merge_from), so fabric-level p50/p95/p99 come
//     from real merged histograms, not an average of quantiles; the same
//     per lane, plus per-shard and per-patient breakdowns.
//
// Reshard protocol (resize):
//   1. the routing table (ring + shard list + epoch) is swapped atomically
//      under a writer lock — submissions never block behind the reshard
//      for longer than the pointer swap, and every submission routes and
//      tags by exactly one epoch;
//   2. windows already in flight complete on the shard that admitted them;
//      their results stay retrievable and carry their original
//      epoch-tagged ticket (the epoch rides through the engine in
//      CompressedWindow::route_tag);
//   3. each moved patient is drained on its old shard
//      (ReconstructionEngine::drain_patient), then its per-patient tracker
//      object is extracted and adopted by the new owner — the same object,
//      so even retrieves of results still parked on the old shard keep
//      recording into the history that moved.
// Under submissions racing a resize, a patient's breakdown may transiently
// split across two shards (a racing submit can create a fresh tracker on
// the new owner before the handoff arrives; adoption then folds the moved
// history into it).  Submitted/completed/shed counters remain conserved;
// the one permanent casualty of that race is retrieve accounting for
// results already parked on the old shard (they retrieve into the
// orphaned moved tracker), so that patient's breakdown may report a
// residual in_flight.  Engine-wide and fabric aggregate views are
// unaffected.
//
// Determinism contract, inherited and preserved: a window's reconstruction
// depends only on its payload and the FistaConfig, so per-window results
// are bit-identical across shard counts, priority mixes, thread counts,
// batch widths — and any sequence of live resizes.  Resharding moves
// *where* and *when* a window solves, never *what* it solves to.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "host/hash_ring.hpp"
#include "host/reconstruction_engine.hpp"

namespace wbsn::host {

struct FabricConfig {
  /// Engine shards; clamped to >= 1.  Patient -> shard routing is a pure
  /// function of patient_id, this count, and vnodes_per_shard.
  int shards = 1;
  /// Virtual nodes per shard on the consistent-hash ring.  More nodes
  /// smooth the load split and the per-resize move fraction toward the
  /// ideal 1/N at the cost of a slightly larger routing table; clamped to
  /// >= 1.  Changing this across fabrics changes routing, so treat it as
  /// a fleet-wide constant.
  int vnodes_per_shard = 64;
  /// Per-shard engine configuration.  `threads` is the worker count of
  /// EACH shard, so the fabric runs shards * threads workers in total.
  /// `engine.payload_pool` (when set) is shared by every shard — including
  /// engines constructed by later resize() epochs, which inherit the same
  /// shared_ptr through this config — so pooled buffers keep recycling
  /// across the fabric's whole elastic lifetime.
  EngineConfig engine{};
};

/// One shard's SLO view (see ReconstructionFabric::shard_slo_snapshots).
struct ShardSlo {
  std::size_t shard = 0;
  SloSnapshot slo;
};

/// What a resize() did (telemetry; every field is also observable through
/// the SLO/routing accessors).
struct ResizeReport {
  std::uint32_t epoch = 0;          ///< Epoch opened by this resize.
  std::size_t shards_before = 0;
  std::size_t shards_after = 0;
  std::size_t known_patients = 0;   ///< Patients the fabric has routed.
  std::size_t moved_patients = 0;   ///< Ring ownership changed.
  std::size_t slo_handoffs = 0;     ///< Per-patient trackers handed off.
  std::size_t retired_shards = 0;   ///< Removed, still holding results.
  std::size_t reaped_shards = 0;    ///< Previously retired, now destroyed.
};

/// What a fail_shard() did.
struct FailoverReport {
  std::uint32_t epoch = 0;           ///< Failover epoch opened.
  std::size_t failed_shard = 0;
  std::size_t live_shards = 0;       ///< Survivors serving after the flip.
  std::size_t moved_patients = 0;    ///< Re-homed onto survivors.
  std::uint64_t lost_windows = 0;    ///< Destroyed with the shard.
};

class ReconstructionFabric {
 public:
  explicit ReconstructionFabric(FabricConfig cfg = {});
  ~ReconstructionFabric();

  ReconstructionFabric(const ReconstructionFabric&) = delete;
  ReconstructionFabric& operator=(const ReconstructionFabric&) = delete;

  /// Active shards under the current epoch (retired shards excluded).
  std::size_t shard_count() const;

  /// Routing epoch: starts at 0, incremented by every resize().
  std::uint32_t epoch() const;

  /// The shard that owns `patient_id` under the current epoch's ring —
  /// a pure function of (patient_id, shard count, vnodes_per_shard), so
  /// tests and benches can assert routing stability against an
  /// independently built HashRing.  Thread-safe.
  std::size_t shard_of(std::uint32_t patient_id) const;

  /// The engine behind an active shard.  Throws std::out_of_range when
  /// `index` is not an active shard.  The reference is guaranteed valid
  /// only until a resize() retires that shard index (a retired engine is
  /// destroyed once its last result is retrieved): do not hold it across
  /// a possible concurrent resize.
  ReconstructionEngine& shard(std::size_t index);
  const ReconstructionEngine& shard(std::size_t index) const;

  // --- Live elasticity -----------------------------------------------------

  /// Reshards the fabric to `new_shards` engine shards (clamped to >= 1)
  /// under a new epoch.  Concurrent submissions and polls continue
  /// throughout: the routing flip itself is a table swap, after which the
  /// call drains and hands off the moved patients (see the reshard
  /// protocol above), so expect a resize to take on the order of the
  /// moved patients' backlog.  Serialized against itself; safe against
  /// concurrent submit/poll/drain.  No-ops (beyond a fresh epoch and a
  /// reap sweep) when the count is unchanged.
  ResizeReport resize(int new_shards);

  /// Simulates (or scripts — the chaos harness's crash lever) the abrupt
  /// death of shard `index`: no drain, no SLO handoff, no retirement.
  /// The routing table flips to a subset ring over the survivors — only
  /// the dead shard's patients re-home, every survivor keeps its index —
  /// and the engine is destroyed, abandoning its backlog and unretrieved
  /// completions exactly as a killed process would.  Its frozen counters
  /// fold into the fabric's failed accumulators with every acknowledged
  /// window accounted once: retrieved -> completed, shed -> shed, the
  /// remainder -> `lost` (SloSnapshot::lost), so
  /// submitted == completed + shed + lost + in_flight stays exact across
  /// the crash.  The dead shard's latency histograms and per-patient
  /// trackers die with it.  A later resize() may re-provision the slot
  /// with a fresh engine.  Throws std::out_of_range when `index` is not a
  /// live shard, std::invalid_argument when it is the last one standing.
  FailoverReport fail_shard(std::size_t index);

  /// Shards still serving (slots minus crash-failed holes).
  std::size_t live_shard_count() const;

  // --- Composite tickets ---------------------------------------------------

  /// Fabric tickets pack epoch | shard | shard-local ticket.  Local
  /// tickets occupy the low 40 bits (34 years at 1k windows/s/shard), the
  /// owning shard index the next 12 (4096 shards), and the submission
  /// epoch the top 12.  Shard-local tickets are monotone over an engine's
  /// lifetime and an engine is only ever created under a fresh epoch, so
  /// the triple — and therefore the ticket — is unique across any
  /// sequence of resizes until the epoch counter wraps at 4096.
  static constexpr unsigned kLocalTicketBits = 40;
  static constexpr unsigned kShardBits = 12;
  static constexpr unsigned kEpochBits = 12;
  static std::uint64_t compose_ticket(std::uint32_t epoch, std::size_t shard,
                                      std::uint64_t local) {
    return (static_cast<std::uint64_t>(epoch & ((1u << kEpochBits) - 1))
            << (kLocalTicketBits + kShardBits)) |
           (static_cast<std::uint64_t>(shard) << kLocalTicketBits) | local;
  }
  static std::uint32_t ticket_epoch(std::uint64_t ticket) {
    return static_cast<std::uint32_t>(ticket >> (kLocalTicketBits + kShardBits)) &
           ((1u << kEpochBits) - 1);
  }
  static std::size_t ticket_shard(std::uint64_t ticket) {
    return static_cast<std::size_t>(ticket >> kLocalTicketBits) & ((1u << kShardBits) - 1);
  }
  static std::uint64_t ticket_local(std::uint64_t ticket) {
    return ticket & ((std::uint64_t{1} << kLocalTicketBits) - 1);
  }

  // --- Streaming interface (mirrors ReconstructionEngine) ------------------

  /// Routes the window to its patient's shard under the current epoch.
  /// Returns the composite ticket, or std::nullopt on that shard's
  /// backpressure (other shards' headroom does not help — routing is
  /// stable by design).  Thread-safe.
  std::optional<std::uint64_t> try_submit(CompressedWindow&& window);

  /// Blocking submit on the owning shard; returns the composite ticket.
  std::uint64_t submit(CompressedWindow window);

  /// One completed window from any shard — including shards retired by a
  /// shrink that still hold results — or std::nullopt when none is ready.
  /// Sweeps shards starting from a rotating index so a busy shard cannot
  /// starve the others' completions.  Thread-safe.
  std::optional<WindowResult> poll();

  /// Drains every shard (active and retired) and returns all unretrieved
  /// results (per-shard completion order, shard-major).  Quiesced retired
  /// shards are reaped afterwards.  Like the engine's drain(), do not
  /// race it against concurrent submissions you care to keep.
  std::vector<WindowResult> drain();

  /// Windows in flight across all shards, active and retired.
  std::size_t in_flight() const;

  // --- Aggregate SLO views -------------------------------------------------

  /// Fabric-wide SLO: every shard's tracker — active, retired, and
  /// already-reaped (their counters outlive them in the fabric's
  /// accumulators) — folded into one histogram.  Approximate while
  /// traffic is in flight (same caveat as SloTracker::snapshot()); exact
  /// once drained.
  SloSnapshot slo_snapshot() const;

  /// Fabric-wide per-lane SLO (routine vs urgent), folded the same way.
  SloSnapshot lane_slo_snapshot(cs::WindowPriority priority) const;

  /// Per-shard engine-wide snapshots for the ACTIVE shards, indexed by
  /// shard.  Retired/reaped history appears only in the aggregate views.
  std::vector<ShardSlo> shard_slo_snapshots() const;

  /// Per-patient breakdown across the fleet, sorted by patient_id.  Each
  /// patient lives on exactly one shard (reshard handoffs move the
  /// tracker with the patient), so this is a concatenation, not a merge —
  /// except transiently under submissions racing a resize (see the
  /// reshard protocol above), when a patient may appear twice.
  std::vector<PatientSlo> patient_slo_snapshots() const;

  // --- Batch wrapper -------------------------------------------------------

  /// Reconstructs the batch across all shards and blocks until done;
  /// results return in input order.  Not reentrant (guarded internally);
  /// do not call concurrently with streaming submissions.
  BatchResult reconstruct(std::span<const CompressedWindow> batch);

 private:
  /// A shard removed by a shrink: out of the ring, still owed the results
  /// parked in its completion list.
  struct RetiredShard {
    std::size_t index = 0;  ///< Shard index it served under (for tickets).
    std::shared_ptr<ReconstructionEngine> engine;
  };

  /// Stable (index, engine) view of every shard currently holding work or
  /// results — active shards first, then retired ones — copied under the
  /// reader lock for callers that block for a long time (drain) or
  /// allocate anyway (snapshots) and so must not hold it.
  std::vector<std::pair<std::size_t, std::shared_ptr<ReconstructionEngine>>> engines_snapshot()
      const;

  /// Records a successfully submitted patient in the registry that
  /// resize() consults to find movers.
  void note_patient(std::uint32_t patient_id);

  /// Destroys retired shards whose work is fully retrieved, folding their
  /// counters into the reaped accumulators first.  Caller must hold
  /// control_mutex_; takes the topology writer lock itself.
  std::size_t reap_quiesced_locked();

  FabricConfig cfg_;

  /// Guards the routing table: ring_, epoch_, active_, retired_.  Readers
  /// (submit/poll/drain/snapshots) take it shared and copy the
  /// shared_ptrs they need; resize() takes it exclusive only for the
  /// table swap, never while draining or solving.
  mutable std::shared_mutex topology_mutex_;
  std::uint32_t epoch_ = 0;
  HashRing ring_;
  std::vector<std::shared_ptr<ReconstructionEngine>> active_;
  std::vector<RetiredShard> retired_;

  /// Serializes resize() calls (and the reap sweeps they run).
  std::mutex control_mutex_;

  /// Counters of reaped shards, folded in just before engine destruction
  /// so aggregate snapshots stay conserved across the whole topology
  /// history: reaped_slo_ holds the engine-wide counters,
  /// reaped_lane_slo_[0]/[1] the routine/urgent lanes.  Written only
  /// under the exclusive topology lock; read under the shared lock.
  SloTracker reaped_slo_;
  SloTracker reaped_lane_slo_[cs::kPriorityLanes];

  /// Counters frozen out of crash-failed shards (fail_shard), folded here
  /// because a dead engine cannot be merged: its histograms are gone, and
  /// its unretrieved windows must surface as `lost`, which no tracker
  /// records.  Engine-wide only — a dead shard's lane split below the
  /// shed/lost line is unknowable, matching the wire client.  Written only
  /// under the exclusive topology lock; read under the shared lock.
  struct FailedCounters {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  ///< Retrieved before the crash.
    std::uint64_t shed_routine = 0;
    std::uint64_t shed_urgent = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deadline_violations = 0;
    std::uint64_t lost = 0;
  };
  FailedCounters failed_;

  /// Every patient_id the fabric has successfully routed; resize() scans
  /// it to find the patients whose ring ownership changed.  A few bytes
  /// per patient for the fabric's lifetime.
  mutable std::mutex patients_mutex_;
  std::unordered_set<std::uint32_t> patients_;

  std::atomic<std::size_t> next_poll_shard_{0};
  std::mutex batch_mutex_;  ///< Serializes reconstruct() calls.
};

}  // namespace wbsn::host
