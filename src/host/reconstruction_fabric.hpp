// Sharded reconstruction fabric — the layer between the node fleet and
// the per-shard streaming engines.
//
//   node -> fabric -> shard (engine) -> kern
//
// One ReconstructionEngine owns one slice of the fleet; the fabric
// partitions traffic across N such shards by a stable hash of patient_id,
// so a patient's windows always land on the same shard (its matrix cache
// stays warm, its per-patient SLO tracker lives in one place) and shards
// share nothing on the hot path — no cross-shard lock, no global queue.
// Each shard keeps its own admission gate, priority lanes, shed policy,
// worker pool, and SLO trackers; the fabric adds:
//
//   * stable routing (shard_of) that is independent of shard *state*, so
//     adding monitoring or draining one shard never re-routes patients;
//   * fabric-wide submit/try_submit/poll/drain mirroring the engine API
//     (poll sweeps shards round-robin so no shard's completions starve);
//   * composite tickets — shard index in the top bits, the shard-local
//     ticket below — unique fabric-wide;
//   * aggregate SLO snapshots: per-shard histograms are folded into one
//     tracker (SloTracker::merge_from), so fabric-level p50/p95/p99 come
//     from real merged histograms, not an average of quantiles; the same
//     per lane, plus per-shard and per-patient breakdowns.
//
// Determinism contract, inherited and preserved: a window's reconstruction
// depends only on its payload and the FistaConfig, so per-window results
// are bit-identical across shard counts, priority mixes, thread counts,
// and batch widths — sharding moves *where* and *when* a window solves,
// never *what* it solves to.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "host/reconstruction_engine.hpp"

namespace wbsn::host {

struct FabricConfig {
  /// Engine shards; clamped to >= 1.  Patient -> shard routing is a pure
  /// function of patient_id and this count.
  int shards = 1;
  /// Per-shard engine configuration.  `threads` is the worker count of
  /// EACH shard, so the fabric runs shards * threads workers in total.
  EngineConfig engine{};
};

/// One shard's SLO view (see ReconstructionFabric::shard_slo_snapshots).
struct ShardSlo {
  std::size_t shard = 0;
  SloSnapshot slo;
};

class ReconstructionFabric {
 public:
  explicit ReconstructionFabric(FabricConfig cfg = {});

  ReconstructionFabric(const ReconstructionFabric&) = delete;
  ReconstructionFabric& operator=(const ReconstructionFabric&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard that owns `patient_id`: stable (splitmix64) hash modulo the
  /// shard count — uniform across ids, independent of shard state.
  std::size_t shard_of(std::uint32_t patient_id) const;

  ReconstructionEngine& shard(std::size_t index) { return *shards_[index]; }
  const ReconstructionEngine& shard(std::size_t index) const { return *shards_[index]; }

  // --- Composite tickets ---------------------------------------------------

  /// Shard-local tickets occupy the low 48 bits of a fabric ticket; the
  /// owning shard index sits above.  2^48 windows per shard outlives any
  /// deployment (5k years at 2k windows/s/shard).
  static constexpr unsigned kLocalTicketBits = 48;
  static std::uint64_t compose_ticket(std::size_t shard, std::uint64_t local) {
    return (static_cast<std::uint64_t>(shard) << kLocalTicketBits) | local;
  }
  static std::size_t ticket_shard(std::uint64_t ticket) {
    return static_cast<std::size_t>(ticket >> kLocalTicketBits);
  }
  static std::uint64_t ticket_local(std::uint64_t ticket) {
    return ticket & ((std::uint64_t{1} << kLocalTicketBits) - 1);
  }

  // --- Streaming interface (mirrors ReconstructionEngine) ------------------

  /// Routes the window to its patient's shard.  Returns the composite
  /// ticket, or std::nullopt on that shard's backpressure (other shards'
  /// headroom does not help — routing is stable by design).  Thread-safe.
  std::optional<std::uint64_t> try_submit(CompressedWindow&& window);

  /// Blocking submit on the owning shard; returns the composite ticket.
  std::uint64_t submit(CompressedWindow window);

  /// One completed window from any shard, or std::nullopt when none is
  /// ready.  Sweeps shards starting from a rotating index so a busy shard
  /// cannot starve the others' completions.  Thread-safe.
  std::optional<WindowResult> poll();

  /// Drains every shard and returns all unretrieved results (per-shard
  /// completion order, shard-major).  Like the engine's drain(), do not
  /// race it against concurrent submissions you care to keep.
  std::vector<WindowResult> drain();

  /// Windows in flight across all shards.
  std::size_t in_flight() const;

  // --- Aggregate SLO views -------------------------------------------------

  /// Fabric-wide SLO: every shard's tracker folded into one histogram.
  /// Approximate while traffic is in flight (same caveat as
  /// SloTracker::snapshot()); exact once drained.
  SloSnapshot slo_snapshot() const;

  /// Fabric-wide per-lane SLO (routine vs urgent), folded the same way.
  SloSnapshot lane_slo_snapshot(cs::WindowPriority priority) const;

  /// Per-shard engine-wide snapshots, indexed by shard.
  std::vector<ShardSlo> shard_slo_snapshots() const;

  /// Per-patient breakdown across the fleet, sorted by patient_id.  Each
  /// patient lives on exactly one shard, so this is a concatenation, not
  /// a merge.
  std::vector<PatientSlo> patient_slo_snapshots() const;

  // --- Batch wrapper -------------------------------------------------------

  /// Reconstructs the batch across all shards and blocks until done;
  /// results return in input order.  Not reentrant (guarded internally);
  /// do not call concurrently with streaming submissions.
  BatchResult reconstruct(std::span<const CompressedWindow> batch);

 private:
  FabricConfig cfg_;
  std::vector<std::unique_ptr<ReconstructionEngine>> shards_;
  std::atomic<std::size_t> next_poll_shard_{0};
  std::mutex batch_mutex_;  ///< Serializes reconstruct() calls.
};

}  // namespace wbsn::host
