// Multi-patient host-side reconstruction engine.
//
// The node fleet only encodes (cs/sensing_matrix.hpp); every measurement
// window lands on the host, which must run one FISTA solve per window.
// At fleet scale the decoder — not the node — is the throughput
// bottleneck, so this engine schedules batches of compressed windows from
// many patients across a fixed pool of worker threads fed by a bounded
// lock-free work queue (work_queue.hpp), and reports per-patient
// SNR/latency statistics.
//
// Determinism contract: for a given batch and FistaConfig, the
// reconstructed signals are bit-identical regardless of thread count or
// queue capacity.  Work items are independent (one window, one read-only
// sensing matrix), results are written to a preallocated slot per item,
// and all aggregation happens serially after the batch barrier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "cs/fista.hpp"
#include "cs/sensing_matrix.hpp"
#include "host/work_queue.hpp"
#include "sig/adc.hpp"
#include "sig/types.hpp"

namespace wbsn::host {

/// One measurement window as it arrives from a node: the measurements plus
/// the metadata needed to rebuild the (seeded) sensing operator host-side.
struct CompressedWindow {
  std::uint32_t patient_id = 0;
  std::uint32_t window_index = 0;       ///< Per-patient sequence number.
  std::uint64_t matrix_seed = 0;        ///< Seed shared with the node.
  std::uint32_t window_samples = 0;     ///< n (columns of Phi).
  std::uint32_t ones_per_column = 4;    ///< Sparse-binary density d.
  std::vector<double> measurements;     ///< y, already scaled to mV.
  /// Optional ground truth (test/bench only; empty in production) for SNR.
  std::vector<double> reference;
};

/// Reconstruction output for one window.
struct WindowResult {
  std::uint32_t patient_id = 0;
  std::uint32_t window_index = 0;
  std::vector<double> signal;     ///< Reconstructed time-domain window.
  double snr_db = 0.0;            ///< NaN when no reference was attached.
  int iterations = 0;
  double latency_ms = 0.0;        ///< Solve wall time (excludes queue wait).
};

/// Per-patient aggregate over one batch.
struct PatientStats {
  std::uint32_t patient_id = 0;
  std::size_t windows = 0;
  double mean_snr_db = 0.0;       ///< Over windows with a reference (NaN if none).
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
};

struct BatchResult {
  std::vector<WindowResult> windows;    ///< Same order as the input batch.
  std::vector<PatientStats> patients;   ///< Sorted by patient_id.
  double wall_seconds = 0.0;            ///< Batch wall time, submit to drain.
  double records_per_second = 0.0;      ///< windows.size() / wall_seconds.
};

struct EngineConfig {
  /// Worker threads.  0 = solve in the calling thread (serial reference
  /// mode); N >= 1 spawns N persistent workers (the caller also helps
  /// drain the queue, so total parallelism is N + 1).
  int threads = 0;
  std::size_t queue_capacity = 1024;
  cs::FistaConfig fista{};
};

class ReconstructionEngine {
 public:
  explicit ReconstructionEngine(EngineConfig cfg = {});
  ~ReconstructionEngine();

  ReconstructionEngine(const ReconstructionEngine&) = delete;
  ReconstructionEngine& operator=(const ReconstructionEngine&) = delete;

  /// Reconstructs every window in the batch and blocks until done.
  /// Not reentrant: one batch at a time (guarded internally).
  BatchResult reconstruct(std::span<const CompressedWindow> batch);

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();
  void process(std::size_t index);
  /// Builds/reuses the sensing matrices the batch needs (serial, so the
  /// per-batch matrix set is deterministic and read-only once workers run).
  void prepare_matrices(std::span<const CompressedWindow> batch);

  EngineConfig cfg_;
  BoundedWorkQueue<std::size_t> queue_;
  std::vector<std::thread> workers_;

  // Cache of seeded sensing operators, shared across batches.  Keyed by
  // (seed, m, n, d); std::map keeps node pointers stable while workers read.
  using MatrixKey = std::tuple<std::uint64_t, std::size_t, std::size_t, std::size_t>;
  std::map<MatrixKey, cs::SensingMatrix> matrices_;

  std::mutex batch_mutex_;              ///< Serializes reconstruct() calls.
  std::span<const CompressedWindow> batch_{};
  std::vector<WindowResult>* results_ = nullptr;

  std::mutex work_mutex_;
  std::condition_variable work_cv_;     ///< Workers sleep here between items.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;     ///< reconstruct() waits for the drain.
  /// Items left in the current batch.  A countdown (not done/total) so the
  /// last worker detects completion from its own fetch_sub return value
  /// alone — it never reads a field the main thread later resets, which
  /// would race once the batch barrier has been passed.
  std::atomic<std::size_t> remaining_{0};
  std::atomic<bool> stop_{false};
};

/// Node-side compression of a whole multi-lead record into engine work
/// items: quantize -> sparse-binary encode -> scale measurements to mV.
/// Mirrors cs/pipeline.cpp so engine output is comparable to the Figure 5
/// pipeline.  Windows are emitted lead-major, window_index increasing.
struct RecordCompressionConfig {
  double cr_percent = 50.0;
  std::size_t window_samples = 512;
  std::size_t ones_per_column = 4;
  std::uint64_t matrix_seed = 0xC0FFEE;
  sig::AdcConfig adc{};
  /// Attach the quantized-then-dequantized window as SNR reference.
  bool keep_reference = true;
};

std::vector<CompressedWindow> compress_record(const sig::Record& record,
                                              std::uint32_t patient_id,
                                              const RecordCompressionConfig& cfg = {});

}  // namespace wbsn::host
