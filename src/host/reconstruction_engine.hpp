// Multi-patient host-side reconstruction engine — streaming core.
//
// The node fleet only encodes (cs/sensing_matrix.hpp); every measurement
// window lands on the host, which must run one FISTA solve per window.
// Fleet traffic is inherently continuous — nodes emit one compressed
// window every couple of seconds, forever — so the engine is built around
// a submit/poll streaming interface rather than offline batches:
//
//   * submit()/try_submit() hand one window to the engine at any time,
//     from any thread.  Admission is bounded: at most queue_capacity
//     windows may be in flight (submitted but not yet solved);
//     try_submit() reports backpressure instead of blocking.  Completed
//     results wait in an unbounded completion list until retrieved, so a
//     producer that submits a long burst before draining never deadlocks
//     against its own unpolled results.
//   * The pending backlog is a two-lane priority queue (work_queue.hpp):
//     windows tagged cs::WindowPriority::kUrgent (the AF-alarm pathway)
//     jump ahead of routine telemetry, FIFO within each lane.  A fixed
//     pool of worker threads drains it persistently — there is no
//     per-batch barrier, a worker starts the next window the moment it
//     finishes the previous one.  With batch_windows > 1 a worker
//     opportunistically pops several queued windows at once and solves
//     same-matrix groups in one batched FISTA pass (cs::fista_solve_batch)
//     whose per-window results are bit-identical to solo solves; with
//     batch_windows == 0 each worker auto-sizes its pop from the current
//     backlog depth (latency when idle, throughput under load).
//   * Under overload, admission is deadline-aware when deadline_shedding
//     is on: instead of bouncing the newest arrival, try_submit sheds the
//     queued window whose predicted completion (backlog position x the
//     measured per-window solve EWMA) overshoots its deadline the most,
//     and admits the arrival into the freed slot.  Routine windows are
//     shed before urgent ones; sheds and rejects land in the SLO trackers
//     per lane.
//   * poll() returns one completed window (completion order); drain()
//     blocks until everything in flight has completed and returns the
//     rest.  With threads == 0 both run the solver inline in the calling
//     thread (the serial reference mode).
//   * Every window's enqueue->complete latency lands in a lock-free SLO
//     histogram (slo_tracker.hpp): p50/p95/p99, throughput, in-flight
//     depth, and violations of a configurable per-window deadline.
//
// reconstruct() remains as a thin batch wrapper over the streaming core
// (submit everything, drain, restore submission order) so offline callers
// and the original tests keep working unchanged.
//
// Determinism contract: a window's reconstruction depends only on the
// window payload and the FistaConfig — never on thread count, submission
// interleaving, or queue capacity — so per-window results are
// bit-identical across any of those.  Sensing matrices are built serially
// under a mutex at submit time and published read-only to workers through
// the queue's release/acquire edge; completion *order* is the only
// nondeterministic output, and the batch wrapper sorts it away.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "cs/fista.hpp"
#include "cs/pipeline.hpp"
#include "cs/sensing_matrix.hpp"
#include "host/payload_pool.hpp"
#include "host/slo_tracker.hpp"
#include "host/solve_cost_model.hpp"
#include "host/work_queue.hpp"
#include "sig/adc.hpp"
#include "sig/types.hpp"

namespace wbsn::host {

/// One measurement window as it arrives from a node: the measurements plus
/// the metadata needed to rebuild the (seeded) sensing operator host-side.
struct CompressedWindow {
  std::uint32_t patient_id = 0;
  std::uint32_t window_index = 0;    ///< Per-patient sequence number.
  std::uint64_t matrix_seed = 0;     ///< Seed shared with the node.
  std::uint32_t window_samples = 0;  ///< n (columns of Phi).
  std::uint32_t ones_per_column = 4; ///< Sparse-binary density d.
  /// Queue lane on the host: urgent windows (tagged by the node's AF
  /// pathway, cls::af_urgent_spans, or directly by the caller) jump the
  /// reconstruction backlog and are shed last.  Never affects values.
  cs::WindowPriority priority = cs::WindowPriority::kRoutine;
  /// Opaque routing tag, echoed verbatim into WindowResult::route_tag and
  /// never read by the engine.  The fabric stores the submission epoch
  /// here so a result polled from a shard can be composed into the same
  /// epoch-tagged composite ticket its submit() returned, even when the
  /// fabric was resized while the window was in flight.
  std::uint32_t route_tag = 0;
  /// Solve fidelity tier.  Tier 0 (the default) is the full-fidelity solve
  /// and the only tier the engine ever uses unless a DegradePolicy demotes
  /// the window after admission — or the submitter presets a tier, which
  /// the engine honors as-is (the re-solve audit path).  A non-zero tier
  /// changes the window's reconstruction (fewer rows and/or fewer FISTA
  /// iterations), so the determinism contract is per (payload, tier).
  cs::SolveTier solve_tier{};
  std::vector<double> measurements;  ///< y, already scaled to mV.
  /// Optional ground truth (test/bench only; empty in production) for SNR.
  std::vector<double> reference;
};

/// Reconstruction output for one window.
struct WindowResult {
  std::uint32_t patient_id = 0;
  std::uint32_t window_index = 0;
  cs::WindowPriority priority = cs::WindowPriority::kRoutine;  ///< Echo of the input lane.
  std::uint32_t route_tag = 0;    ///< Echo of CompressedWindow::route_tag.
  std::uint64_t ticket = 0;       ///< Engine-wide submission sequence number.
  /// Tier the window was actually solved at (submitted tier, or the tier a
  /// DegradePolicy demoted it to while queued).
  cs::SolveTier solve_tier{};
  bool degraded = false;          ///< solve_tier.tier != 0.
  std::vector<double> signal;     ///< Reconstructed time-domain window.
  double snr_db = 0.0;            ///< NaN when no reference was attached.
  int iterations = 0;
  /// Solve wall time, excluding queue wait.  With batch_windows > 1 this
  /// is the wall time of the whole batched solve the window rode in (the
  /// compute was shared, so a per-window split would be fiction): expect
  /// it to exceed a solo solve even when throughput improved.  e2e_ms is
  /// the SLO-relevant number.
  double latency_ms = 0.0;
  double e2e_ms = 0.0;            ///< Enqueue -> complete (the SLO latency).
};

/// Per-patient aggregate over one batch.
struct PatientStats {
  std::uint32_t patient_id = 0;
  std::size_t windows = 0;
  double mean_snr_db = 0.0;  ///< Over windows with a reference (NaN if none).
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
};

struct BatchResult {
  std::vector<WindowResult> windows;   ///< Same order as the input batch.
  std::vector<PatientStats> patients;  ///< Sorted by patient_id.
  double wall_seconds = 0.0;           ///< Batch wall time, submit to drain.
  double records_per_second = 0.0;     ///< windows.size() / wall_seconds.
};

/// Per-patient aggregation over completed windows, sorted by patient_id.
/// Deterministic (serial, input order); shared by the engine's and the
/// fabric's batch wrappers.
std::vector<PatientStats> aggregate_patient_stats(std::span<const WindowResult> windows);

/// How the engine may trade reconstruction fidelity for backlog relief —
/// degrading routine windows along the paper's Figure-5 SNR/CR curve
/// instead of shedding them whole.  Urgent (AF-alarm) windows always keep
/// full fidelity regardless of policy.
enum class DegradePolicy {
  /// Never degrade.  Results are bit-identical to an engine without the
  /// tier machinery (tier stays 0 everywhere).
  kOff,
  /// Demote queued routine windows by capping FISTA iterations only; the
  /// sensing operator keeps every measurement row.
  kIterCap,
  /// Demote by raising the effective compression ratio (row-truncating the
  /// sensing operator to rows_for_cr(cr, n) measurements) AND capping
  /// iterations — the full Figure-5 trade.
  kCrIter,
};

/// One rung of the degrade ladder (EngineConfig::degrade_tiers).  Rung k
/// of the config vector is solve tier k+1; demotion only ever moves a
/// window down the ladder (tier never decreases while queued).
struct DegradeTierSpec {
  /// Effective compression ratio at this rung, percent.  Used only under
  /// DegradePolicy::kCrIter, and only when it truncates (the resulting row
  /// count is clamped to the window's actual measurements).  0 keeps every
  /// row.
  double cr_percent = 0.0;
  /// FISTA iteration cap at this rung; 0 = the full configured budget.
  std::uint32_t iteration_cap = 0;
};

struct EngineConfig {
  /// Worker threads.  0 = solve in the calling thread during poll()/
  /// drain() (serial reference mode); N >= 1 spawns N persistent workers.
  int threads = 0;
  /// Admission bound: maximum windows in flight (submitted but not yet
  /// solved); see in_flight_capacity().
  std::size_t queue_capacity = 1024;
  /// Windows a worker may pack into one batched FISTA solve
  /// (cs::fista_solve_batch).  Workers drain opportunistically: up to
  /// this many queued windows are popped at once, grouped by sensing
  /// matrix, and windows sharing a matrix solve together so the packed
  /// plan streams once across the group.  Batched results are
  /// bit-identical to solo solves, so any value preserves the
  /// determinism contract; 1 (the default) disables packing.
  /// 0 enables backlog-driven auto-sizing: each worker pops
  /// ceil(backlog / threads) windows, clamped to [1, max_auto_batch] —
  /// solo solves for latency when the queue is shallow, wide batches for
  /// throughput when it is deep.
  int batch_windows = 1;
  /// Upper bound on an auto-sized batch (batch_windows == 0).
  int max_auto_batch = 32;
  /// Deadline-aware load shedding.  When admission is at capacity and the
  /// backlog predicts a deadline miss, drop the queued window with the
  /// worst predicted overshoot (routine lane first; the urgent lane is
  /// only eligible when the arrival itself is urgent) and admit the new
  /// arrival into its slot.  Off (the default) keeps binary admission:
  /// try_submit just reports backpressure.  Requires slo.deadline_ms > 0
  /// and a solve-time signal (shed_solve_estimate_ms or at least one
  /// completed solve) to act; until then it falls back to rejection.
  bool deadline_shedding = false;
  /// Per-window solve-time estimate feeding the shed predictor, in ms.
  /// 0 (default) uses the engine's measured EWMA of completed solves.
  double shed_solve_estimate_ms = 0.0;
  /// Starvation guard for the shed predictor's routine lane.  Under a
  /// sustained urgent flood, deadline shedding keeps picking routine
  /// victims; without a guard an unlucky routine window can be re-doomed
  /// forever.  A value > 1 grants each routine window growing shed
  /// protection with age (shed_aging_protection): its shed score fades
  /// linearly once it outlives its deadline and it becomes fully
  /// shed-exempt at `shed_starvation_aging` deadlines of age, forcing the
  /// predictor to pick younger victims (or reject the arrival).  <= 1
  /// (default) disables aging — pure worst-overshoot victim selection.
  double shed_starvation_aging = 0.0;
  /// Fidelity-degrade policy: when the priced backlog overshoots the
  /// deadline budget (see degrade_backlog_deadlines) — and again as the
  /// demote-first step wherever the deadline-shed victim scan would fire —
  /// queued routine windows are demoted one rung down degrade_tiers
  /// ("solve cheaper") before any window is shed whole.  kOff (default)
  /// keeps PR-8 behavior bit for bit.  Requires slo.deadline_ms > 0 and a
  /// non-empty degrade_tiers to act.
  DegradePolicy degrade_policy = DegradePolicy::kOff;
  /// The degrade ladder, cheapest rung last; see DegradeTierSpec.
  std::vector<DegradeTierSpec> degrade_tiers;
  /// Proactive-demotion threshold: after an admission, if
  /// backlog_wait_ms() exceeds this many deadlines, demote queued routine
  /// windows until the priced backlog fits again (or the ladder runs out).
  /// <= 0 disables the proactive trigger; the demote-before-shed step
  /// still runs.
  double degrade_backlog_deadlines = 1.0;
  /// Place each submitted window next to the newest queued window sharing
  /// its sensing matrix (same lane; FIFO otherwise) instead of strictly at
  /// the back.  Workers pop contiguous runs, so backlog auto-batching
  /// (batch_windows == 0) then packs same-matrix groups far more often
  /// under interleaved multi-patient traffic.  Values are unaffected
  /// (determinism contract); only completion order moves.  Observability:
  /// SloSnapshot::grouped_windows counts batched-group members.
  bool group_submits_by_seed = false;
  /// Invoked (from a worker thread) every time the engine makes progress a
  /// blocked producer could be waiting on: a batch of results was
  /// published and its in-flight slots released, or a queued window was
  /// shed.  Fires AFTER the slots are released, so a hook-driven retry of
  /// try_submit_step() that still fails proves the engine was full again,
  /// not that the wakeup raced the release.  Used by the shard server to
  /// re-arm its event loop for deferred completions.  Must be cheap and
  /// must not call back into the engine.  Null (default) disables.
  std::function<void()> progress_hook;
  /// LRU capacity of the sensing-matrix cache, in matrices (one per
  /// distinct (seed, m, n, d)); 0 = unbounded.  Evicted matrices are
  /// rebuilt deterministically on the next miss, and in-flight windows
  /// keep their matrix alive regardless (shared ownership), so eviction
  /// never changes results — it only bounds memory across seed churn.
  std::size_t matrix_cache_capacity = 64;
  /// Maintain one SloTracker per patient_id alongside the engine-wide
  /// one (see patient_slo_snapshots()).
  bool per_patient_slo = true;
  /// Bound on the per-patient tracker map (each tracker is a few KB and
  /// lives for the engine lifetime — recording threads hold raw pointers,
  /// so entries are never evicted).  Ids beyond the cap simply go
  /// untracked in the breakdown; the engine-wide tracker still counts
  /// them.  0 = unbounded.
  std::size_t max_tracked_patients = 4096;
  /// Shared payload pool (payload_pool.hpp).  When set, the engine recycles
  /// every consumed window's measurement/reference buffers back into it
  /// after the solve and draws result-signal buffers from it before the
  /// solve, making the steady-state submit->solve->poll cycle
  /// allocation-free end to end (producers acquire_window() from the same
  /// pool; consumers recycle polled results into it).  Shared_ptr so one
  /// pool spans producers, engines, and every shard the fabric builds
  /// across resize() epochs.  Null (the default) keeps plain allocation.
  std::shared_ptr<PayloadPool> payload_pool;
  cs::FistaConfig fista{};
  SloConfig slo{};
};

/// One patient's latency/throughput breakdown (per_patient_slo).
struct PatientSlo {
  std::uint32_t patient_id = 0;
  SloSnapshot slo;
};

class ReconstructionEngine {
 public:
  explicit ReconstructionEngine(EngineConfig cfg = {});
  ~ReconstructionEngine();

  ReconstructionEngine(const ReconstructionEngine&) = delete;
  ReconstructionEngine& operator=(const ReconstructionEngine&) = delete;

  // --- Streaming interface -------------------------------------------------

  /// Hands one window to the engine.  Returns the window's ticket on
  /// success; std::nullopt when the engine is at capacity and nothing
  /// could be shed (backpressure — retry after poll()ing).  With
  /// deadline_shedding on, an at-capacity arrival is admitted anyway when
  /// a queued window is already predicted to miss its deadline: that
  /// window is dropped instead (see SloSnapshot::shed_*).  Thread-safe;
  /// `window` is untouched on rejection.
  std::optional<std::uint64_t> try_submit(CompressedWindow&& window);

  /// Blocking submit: waits out backpressure (workers draining the
  /// backlog; with threads == 0 it solves pending windows inline to make
  /// room) and returns the ticket.  Never sheds queued work and never
  /// counts as a rejection — a caller willing to wait gets admission
  /// without costing anyone else's window.
  std::uint64_t submit(CompressedWindow window);

  /// One non-blocking step of a blocking submit driven by an external
  /// event loop: identical admission to submit() (never sheds queued work)
  /// but returns std::nullopt instead of waiting when the engine is full.
  /// Unlike try_submit(), a failure is NOT counted as a rejection — the
  /// caller is backpressure-waiting (typically re-armed by progress_hook),
  /// not bouncing the window.  `window` is untouched on failure.
  std::optional<std::uint64_t> try_submit_step(CompressedWindow&& window);

  /// Returns one completed window in completion order, or std::nullopt if
  /// none is ready.  With threads == 0 this runs the solver inline on the
  /// oldest pending window first.  Thread-safe.
  std::optional<WindowResult> poll();

  /// Blocks until nothing is in flight and returns all results not yet
  /// poll()ed, in completion order.  The calling thread helps solve when
  /// the engine has no workers.  Thread-safe (concurrent pollers simply
  /// split the results).
  std::vector<WindowResult> drain();

  /// Windows currently in flight (submitted, not yet solved).
  std::size_t in_flight() const { return in_flight_.load(std::memory_order_acquire); }

  /// Completed results waiting in the completion list for poll()/drain().
  std::size_t ready_results() const;

  /// In-flight (submitted, not yet solved or shed) windows for one
  /// patient.  Thread-safe.
  std::size_t patient_pending(std::uint32_t patient_id) const;

  /// Per-patient drain hook for live resharding: blocks until
  /// patient_pending(patient_id) == 0 — every window of that patient has
  /// either completed (its result may still be waiting for poll()) or been
  /// shed.  With threads == 0 the calling thread solves pending windows
  /// inline.  A concurrent submitter can re-open the patient's backlog
  /// after this returns; callers that need quiescence must stop routing
  /// that patient here first (the fabric flips its epoch before draining).
  void drain_patient(std::uint32_t patient_id);

  /// Admission bound actually in force.
  std::size_t in_flight_capacity() const { return capacity_; }

  /// Pending (unsolved) windows in the given priority lane.
  std::size_t backlog(cs::WindowPriority priority) const {
    return queue_.lane_size(priority == cs::WindowPriority::kUrgent);
  }

  /// Latency/throughput/deadline statistics since construction (or the
  /// last slo().reset() while quiesced).
  const SloTracker& slo() const { return slo_; }
  SloTracker& slo() { return slo_; }  ///< Mutable, e.g. for per-interval reset().

  /// Per-lane breakdown of the same statistics: every window is recorded
  /// both engine-wide and in its priority lane's tracker, so under mixed
  /// traffic this separates alarm-path latency from routine telemetry.
  const SloTracker& lane_slo(cs::WindowPriority priority) const {
    return lane_slo_[lane_index(priority)];
  }

  /// Per-patient SLO breakdown, sorted by patient_id; empty when
  /// per_patient_slo is off.  Same approximation caveats as
  /// SloTracker::snapshot() while traffic is in flight.
  std::vector<PatientSlo> patient_slo_snapshots() const;

  /// Removes the patient's tracker from this engine's breakdown map and
  /// returns it (nullptr when untracked).  The tracker object itself
  /// stays alive through shared ownership, so in-flight windows of that
  /// patient still record into it — which is exactly right during a
  /// handoff: drain_patient() first, then extract, and every count lands
  /// in the object that moves.  Frees the patient's slot under
  /// max_tracked_patients.
  std::shared_ptr<SloTracker> extract_patient_slo(std::uint32_t patient_id);

  /// Adopts a tracker extracted from another engine as this engine's
  /// per-patient tracker for `patient_id`.  If the patient is already
  /// tracked here (it raced back, or a submission beat the handoff), the
  /// incoming tracker is drained into the existing one instead
  /// (SloTracker::drain_into — counts conserved; the existing entry stays
  /// live because windows already in flight here hold pointers to it.
  /// Retrieves of results still parked on the source engine keep
  /// recording into the discarded incoming object, so on this fold path
  /// the patient's breakdown can permanently show those as in_flight —
  /// the documented cost of a submit racing a handoff).  Returns false
  /// when the
  /// breakdown is off, the tracker is null, or the patient map is at
  /// max_tracked_patients capacity (the history is dropped from the
  /// breakdown; engine-wide counters are unaffected, matching how a new
  /// patient beyond the cap goes untracked).
  bool adopt_patient_slo(std::uint32_t patient_id, std::shared_ptr<SloTracker> tracker);

  /// Sensing matrices currently cached (bounded by matrix_cache_capacity).
  std::size_t cached_matrices() const;

  /// The per-window solve-time estimate the shed predictor would use for a
  /// window with `measurements` rows and `samples` columns, in ms: the
  /// configured shed_solve_estimate_ms override when set, else the
  /// measured EWMA for that exact (m, n) shape, else the shape-blind
  /// global EWMA.  0 until any solve has completed — solve cost scales
  /// with problem size, so under mixed window shapes the per-shape value
  /// is what makes the deadline forecast honest.
  double solve_estimate_ms(std::uint32_t measurements, std::uint32_t samples) const;

  /// The priced backlog: the sum of every in-flight window's admission-time
  /// solve-cost estimate divided across the worker pool, in ms — how long
  /// the queue would take to drain if nothing else arrived.  0 until any
  /// solve-cost signal exists.  This is the pressure signal behind both
  /// the proactive degrade trigger and the shard server's CR hints.
  double backlog_wait_ms() const;

  /// Up to `max` patient ids with windows currently in flight (submitted,
  /// not yet solved or shed), ascending.  Feeds per-patient CR hints.
  std::vector<std::uint32_t> pending_patients(std::size_t max) const;

  /// The per-(shape, tier) solve-cost model (diagnostics/tests).
  const SolveCostModel& cost_model() const { return cost_model_; }

  // --- Batch wrapper -------------------------------------------------------

  /// Reconstructs every window in the batch and blocks until done; results
  /// are returned in input order.  A thin wrapper over submit()/drain()
  /// that waits out overload instead of shedding (deadline_shedding does
  /// not apply inside the wrapper — every window comes back).  Not
  /// reentrant: one batch at a time (guarded internally); do not call
  /// concurrently with streaming submissions (the drain would steal them).
  BatchResult reconstruct(std::span<const CompressedWindow> batch);

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  /// One window's node for its whole life inside the engine: queued work
  /// entry first, then (same allocation) completion-list node — `result`
  /// is filled in place by the solve and `next` links it into done_.
  /// Nodes cycle through item_pool_, so steady state news nothing.
  struct WorkItem {
    CompressedWindow window;
    /// Shared ownership: an LRU eviction of the cache entry must not
    /// invalidate a matrix that queued windows still reference.
    std::shared_ptr<const cs::SensingMatrix> phi;
    /// Resolved once at submit, with shared ownership: the completion path
    /// records without touching the tracker map, and a tracker extracted
    /// for a reshard handoff stays alive (and keeps receiving this
    /// window's events) no matter when the map entry moved.
    std::shared_ptr<SloTracker> patient_slo;
    std::uint64_t ticket = 0;
    /// The admission-time solve-cost estimate this window charged into
    /// pending_cost_us_ — remembered so completion/shed releases exactly
    /// what was charged and a demotion adjusts by the exact delta.
    std::uint64_t charged_cost_us = 0;
    std::chrono::steady_clock::time_point enqueue_time{};
    WindowResult result;
    WorkItem* next = nullptr;  ///< Intrusive completion-list link.
  };

  static std::size_t lane_index(cs::WindowPriority priority) {
    return priority == cs::WindowPriority::kUrgent ? 1 : 0;
  }

  void worker_loop();
  /// Pops up to one batch of pending windows and solves them; false when
  /// none was pending.
  bool help_some();
  /// Tops `items` up to this worker's batch width (static batch_windows,
  /// or backlog/threads when auto-sizing) from the lane queue, urgent
  /// first.  At least one already-popped item is passed in by the caller.
  void pop_batch(std::vector<WorkItem*>& items);
  /// Reserves one in-flight slot; false when at capacity.
  bool reserve_slot();
  /// Admission core shared by try_submit (shedding per config, rejects
  /// counted by the caller) and the blocking paths (submit()/
  /// reconstruct(): never shed — a waiter must not drop queued work —
  /// and retries are backpressure, not rejections).
  std::optional<std::uint64_t> try_submit_impl(CompressedWindow&& window, bool allow_shedding);
  /// Deadline-aware shedding: drops the queued window with the worst
  /// predicted deadline overshoot and returns true, transferring its
  /// in-flight reservation to the caller's arrival.  False when no queued
  /// window is predicted to miss (or no solve-time signal exists yet).
  /// Only an urgent arrival may displace an urgent window.
  bool shed_predicted_miss(cs::WindowPriority arrival_priority);
  /// Solves the same-matrix group containing items[0] in one
  /// cs::fista_solve_batch call (bit-identical to solo solves) and
  /// requeues the rest for other workers, so a mixed-matrix pop neither
  /// serializes foreign groups behind one worker nor delays their
  /// publication.  Requeueing cannot fail: every popped item still holds
  /// its in-flight ring reservation.
  void process_batch(std::vector<WorkItem*>& items);
  /// Builds/reuses the sensing matrix a window needs; bounded LRU keyed
  /// by (seed, m, n, d, m_eff).  Construction is a pure function of the
  /// key, so a rebuilt matrix is bit-identical to the evicted one.
  std::shared_ptr<const cs::SensingMatrix> prepare_matrix(const CompressedWindow& window);
  /// The operator the solve should actually apply for `window`: `full`
  /// itself at full fidelity, or its row-truncated form (cached in the
  /// same LRU) when the window's tier sets effective_m below full rows.
  std::shared_ptr<const cs::SensingMatrix> solve_matrix_for(
      const CompressedWindow& window, const std::shared_ptr<const cs::SensingMatrix>& full);
  /// The cs::SolveTier for rung `rung` (1-based into cfg_.degrade_tiers)
  /// of a window with `m_full` measurements over `n` samples.  Rung 0 (or
  /// an empty ladder) is the full-fidelity tier.
  cs::SolveTier tier_for(std::size_t rung, std::uint32_t m_full, std::uint32_t n) const;
  /// Admission-time solve-cost estimate of one window at its current
  /// tier, microseconds (0 when no signal exists yet).
  std::uint64_t charge_estimate_us(const CompressedWindow& window) const;
  /// Demote-first: walks the routine lane demoting queued windows one rung
  /// down the degrade ladder until the priced backlog fits inside
  /// degrade_backlog_deadlines (or every routine window is at the bottom
  /// rung).  Urgent windows are never touched.  No-op unless
  /// degrade_policy is active, the ladder is non-empty, and a deadline is
  /// configured.
  void maybe_degrade_backlog();
  /// The per-patient tracker for `patient_id` (created on first use), or
  /// nullptr when per_patient_slo is off.
  std::shared_ptr<SloTracker> patient_tracker(std::uint32_t patient_id);
  /// Decrements the per-patient pending count for each item's patient and
  /// wakes drain_patient() waiters.
  void retire_pending(std::span<const std::uint32_t> patient_ids);
  /// Returns a window's payload buffers to the payload pool (or frees
  /// them when no pool is configured).  Metadata fields are left alone.
  void release_window_payload(CompressedWindow& window);
  /// Resets a node's state and returns it to item_pool_.  Payload buffers
  /// must already be released (the pool must not collect empty shells).
  void recycle_item(WorkItem* item);

  EngineConfig cfg_;
  std::size_t capacity_ = 1;           ///< max(1, cfg_.queue_capacity).
  TwoLaneWorkQueue<WorkItem*> queue_;  ///< Pending (unsolved) windows, two lanes.
  /// WorkItem freelist.  Sized past the in-flight bound so nodes parked in
  /// the completion list also recycle; a deeper unpolled backlog degrades
  /// to plain allocation instead of growing the pool.
  ObjectPool<WorkItem> item_pool_;
  std::vector<std::thread> workers_;
  SloTracker slo_;
  SloTracker lane_slo_[cs::kPriorityLanes];  ///< [0]=routine, [1]=urgent.
  /// Per-(m, n, tier) solve-cost model (solve_cost_model.hpp): the
  /// engine's old per-(m, n) EWMA table extended with the solve-tier
  /// dimension, so the shed predictor and the degrade policy can price
  /// "solve cheaper" against "shed".  Its override_ms is wired to
  /// cfg_.shed_solve_estimate_ms at construction.
  SolveCostModel cost_model_;
  /// Sum of the admission-time solve-cost estimates (microseconds) of
  /// every window currently queued or solving — the backlog priced in
  /// time rather than windows.  Charged at admission, re-priced on
  /// demotion, released exactly at completion/shed.  Maintained regardless
  /// of DegradePolicy (it feeds backlog_wait_ms() and the CR-hint
  /// pressure signal, and counters never affect values).
  std::atomic<std::uint64_t> pending_cost_us_{0};

  // Bounded LRU cache of seeded sensing operators, keyed by
  // (seed, m, n, d, m_eff) — m_eff == 0 is the full operator, m_eff > 0 a
  // row-truncated form used by degraded solve tiers (derived from the full
  // matrix via SensingMatrix::truncated, itself deterministic, so eviction
  // still never changes results).  lru_ orders keys most-recent-first;
  // each map value carries its lru_ position for O(log n) touch.
  using MatrixKey =
      std::tuple<std::uint64_t, std::size_t, std::size_t, std::size_t, std::size_t>;
  struct CachedMatrix {
    std::shared_ptr<const cs::SensingMatrix> phi;
    std::list<MatrixKey>::iterator lru_pos;
  };
  mutable std::mutex matrices_mutex_;
  std::map<MatrixKey, CachedMatrix> matrices_;
  std::list<MatrixKey> lru_;

  // Per-patient SLO trackers.  shared_ptr (SloTracker is non-movable):
  // recording threads and extracted-for-handoff trackers keep the object
  // alive across map rebalancing, extraction, and adoption by another
  // engine.
  mutable std::mutex patient_slo_mutex_;
  std::map<std::uint32_t, std::shared_ptr<SloTracker>> patient_slo_;

  // Per-patient in-flight (unsolved) window counts, feeding the
  // drain_patient() reshard hook.  Zero entries are retained (erasing and
  // re-inserting would cost a map-node allocation per window for a stable
  // fleet); a sweep evicts them only if patient-id churn grows the map
  // past pending_sweep_threshold_.
  mutable std::mutex pending_mutex_;
  std::condition_variable pending_cv_;  ///< drain_patient() waits here.
  std::unordered_map<std::uint32_t, std::size_t> patient_pending_;
  std::size_t pending_sweep_threshold_ = 0;  ///< Set from capacity_ at construction.

  std::mutex batch_mutex_;  ///< Serializes reconstruct() calls.

  std::mutex work_mutex_;
  std::condition_variable work_cv_;  ///< Workers sleep here between items.

  /// Completed results, in completion order, until poll()/drain() takes
  /// them.  Unbounded by design: completion must never block on a slow
  /// retriever, so the admission gate only covers the unsolved backlog.
  /// An intrusive singly-linked list of the windows' own WorkItem nodes
  /// (WorkItem::next): publication is a pointer splice, retrieval returns
  /// the node to item_pool_ — no container, no per-completion allocation.
  /// Each node still carries its per-patient tracker (resolved at submit,
  /// engine-lifetime stable) so poll()'s retrieve accounting needs no map
  /// lookup and no second lock.
  mutable std::mutex done_mutex_;    ///< mutable: ready_results() is const.
  std::condition_variable done_cv_;  ///< drain()/submit() wait here.
  WorkItem* done_head_ = nullptr;
  WorkItem* done_tail_ = nullptr;
  std::size_t done_count_ = 0;

  /// Submitted but not yet solved.  The admission reservation happens here
  /// (CAS against in_flight_capacity()), which is what guarantees the
  /// bounded work ring can never reject an internal push.
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<bool> stop_{false};
};

/// Node-side compression of a whole multi-lead record into engine work
/// items: quantize -> sparse-binary encode -> scale measurements to mV.
/// Mirrors cs/pipeline.cpp so engine output is comparable to the Figure 5
/// pipeline.  Windows are emitted lead-major, window_index increasing.
struct RecordCompressionConfig {
  double cr_percent = 50.0;
  std::size_t window_samples = 512;
  std::size_t ones_per_column = 4;
  std::uint64_t matrix_seed = 0xC0FFEE;
  sig::AdcConfig adc{};
  /// Attach the quantized-then-dequantized window as SNR reference.
  bool keep_reference = true;
  /// Clinically urgent stretches of the record, as within-lead sample
  /// ranges (typically cls::af_urgent_spans output).  Every window
  /// overlapping a span — in any lead, AF is a rhythm-level property — is
  /// tagged cs::WindowPriority::kUrgent for the host's priority lane.
  std::vector<sig::SampleSpan> urgent_spans;
};

std::vector<CompressedWindow> compress_record(const sig::Record& record,
                                              std::uint32_t patient_id,
                                              const RecordCompressionConfig& cfg = {});

/// Shed-exemption fraction a routine window of age `age_ms` has earned
/// under EngineConfig::shed_starvation_aging == `aging_deadlines` (pure —
/// unit-testable without an engine).  0 while the window is within its
/// deadline, then climbing linearly to 1 (fully shed-exempt) at
/// `aging_deadlines` deadlines of age.  Shed scores are scaled by
/// (1 - protection), so an aged window loses shed-victim auctions to
/// younger doomed windows.  Always 0 when aging <= 1 or deadline <= 0.
double shed_aging_protection(double age_ms, double deadline_ms, double aging_deadlines);

}  // namespace wbsn::host
