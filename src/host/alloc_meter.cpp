// Global operator new/delete interposition (WBSN_ALLOC_COUNTER builds
// only — see alloc_meter.hpp).  Every variant forwards to malloc/free
// after bumping a relaxed atomic; alignment goes through aligned_alloc.
#include "host/alloc_meter.hpp"

#if defined(WBSN_ALLOC_COUNTER)

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  size = (size + align - 1) / align * align;  // aligned_alloc precondition.
  return std::aligned_alloc(align, size);
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_deallocs.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace wbsn::host {

std::uint64_t alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t dealloc_count() noexcept {
  return g_deallocs.load(std::memory_order_relaxed);
}

}  // namespace wbsn::host

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}

#endif  // WBSN_ALLOC_COUNTER
