#include "host/reconstruction_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "cs/pipeline.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

ReconstructionEngine::ReconstructionEngine(EngineConfig cfg)
    : cfg_(cfg),
      capacity_(std::max<std::size_t>(1, cfg.queue_capacity)),
      // 2x the in-flight bound: queued windows plus a same-sized tranche
      // parked in the completion list all recycle without a miss.
      item_pool_(2 * std::max<std::size_t>(1, cfg.queue_capacity)),
      slo_(cfg.slo) {
  pending_sweep_threshold_ = std::max<std::size_t>(1024, 4 * capacity_);
  cost_model_.override_ms = cfg_.shed_solve_estimate_ms;
  for (auto& tracker : lane_slo_) tracker.configure(cfg_.slo);
  const int threads = std::max(0, cfg_.threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ReconstructionEngine::~ReconstructionEngine() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Unsolved items still queued and unretrieved completions are abandoned
  // with the engine (workers are gone; deleting bypasses item_pool_, whose
  // destructor frees only its own freelist).  Their payload buffers die
  // with them rather than returning to a shared pool — by design: the pool
  // replenishes through misses, it never double-frees.
  WorkItem* item = nullptr;
  while (queue_.try_pop(item)) delete item;
  WorkItem* node = done_head_;
  while (node != nullptr) {
    WorkItem* next = node->next;
    delete node;
    node = next;
  }
}

void ReconstructionEngine::release_window_payload(CompressedWindow& window) {
  if (cfg_.payload_pool != nullptr) {
    cfg_.payload_pool->recycle(std::move(window));
  } else {
    window.measurements = std::vector<double>{};
    window.reference = std::vector<double>{};
  }
}

void ReconstructionEngine::recycle_item(WorkItem* item) {
  item->window = CompressedWindow{};
  item->phi.reset();
  item->patient_slo.reset();
  item->charged_cost_us = 0;
  item->result = WindowResult{};
  item->next = nullptr;
  item_pool_.recycle(item);
}

void ReconstructionEngine::worker_loop() {
  std::vector<WorkItem*> items;
  for (;;) {
    WorkItem* item = nullptr;
    if (queue_.try_pop(item)) {
      items.clear();
      items.push_back(item);
      pop_batch(items);
      process_batch(items);
      continue;
    }
    std::unique_lock<std::mutex> lk(work_mutex_);
    work_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) || !queue_.empty();
    });
    if (stop_.load(std::memory_order_acquire) && queue_.empty()) return;
  }
}

void ReconstructionEngine::pop_batch(std::vector<WorkItem*>& items) {
  std::size_t limit;
  if (cfg_.batch_windows > 0) {
    limit = static_cast<std::size_t>(cfg_.batch_windows);
  } else {
    // Backlog-driven auto-sizing: split the backlog this worker can see
    // (queued plus what it already popped) evenly across the pool — solo
    // solves while traffic is light, wide same-matrix batches once a
    // backlog builds.  Any width is bit-identical, so the choice only
    // moves the latency/throughput trade-off.
    const std::size_t backlog = queue_.size() + items.size();
    const auto workers = static_cast<std::size_t>(std::max(1, cfg_.threads));
    const std::size_t share = (backlog + workers - 1) / workers;
    limit = std::clamp<std::size_t>(share, 1,
                                    static_cast<std::size_t>(std::max(1, cfg_.max_auto_batch)));
  }
  if (items.size() < limit) queue_.pop_some(items, limit - items.size());
}

std::shared_ptr<const cs::SensingMatrix> ReconstructionEngine::prepare_matrix(
    const CompressedWindow& window) {
  const MatrixKey key{window.matrix_seed, window.measurements.size(), window.window_samples,
                      window.ones_per_column, 0};
  {
    std::lock_guard<std::mutex> lk(matrices_mutex_);
    const auto found = matrices_.find(key);
    if (found != matrices_.end()) {
      lru_.splice(lru_.begin(), lru_, found->second.lru_pos);  // Touch.
      return found->second.phi;
    }
  }
  // Cache miss: build outside the lock so concurrent submitters (even pure
  // cache hits) never stall behind a construction.  Two racing misses both
  // build; emplace keeps the first and the duplicate — bit-identical, it
  // is a pure function of the key — is discarded.
  sig::Rng rng(window.matrix_seed);
  auto built = std::make_shared<const cs::SensingMatrix>(cs::SensingMatrix::make_sparse_binary(
      window.measurements.size(), window.window_samples, window.ones_per_column, rng));
  std::lock_guard<std::mutex> lk(matrices_mutex_);
  const auto [it, inserted] = matrices_.emplace(key, CachedMatrix{std::move(built), {}});
  if (inserted) {
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    if (cfg_.matrix_cache_capacity > 0) {
      while (matrices_.size() > cfg_.matrix_cache_capacity) {
        // Evict least-recently used.  Windows already holding the
        // shared_ptr keep the matrix alive until they finish.
        matrices_.erase(lru_.back());
        lru_.pop_back();
      }
    }
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  return it->second.phi;
}

std::shared_ptr<const cs::SensingMatrix> ReconstructionEngine::solve_matrix_for(
    const CompressedWindow& window, const std::shared_ptr<const cs::SensingMatrix>& full) {
  const std::size_t m_eff = window.solve_tier.effective_m;
  if (m_eff == 0 || m_eff >= full->rows()) return full;
  const MatrixKey key{window.matrix_seed, window.measurements.size(), window.window_samples,
                      window.ones_per_column, m_eff};
  {
    std::lock_guard<std::mutex> lk(matrices_mutex_);
    const auto found = matrices_.find(key);
    if (found != matrices_.end()) {
      lru_.splice(lru_.begin(), lru_, found->second.lru_pos);  // Touch.
      return found->second.phi;
    }
  }
  // Same miss protocol as prepare_matrix: build outside the lock (the
  // truncation is a pure function of the full operator and m_eff, so a
  // racing duplicate is bit-identical and simply discarded).
  auto built = std::make_shared<const cs::SensingMatrix>(full->truncated(m_eff));
  std::lock_guard<std::mutex> lk(matrices_mutex_);
  const auto [it, inserted] = matrices_.emplace(key, CachedMatrix{std::move(built), {}});
  if (inserted) {
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    if (cfg_.matrix_cache_capacity > 0) {
      while (matrices_.size() > cfg_.matrix_cache_capacity) {
        matrices_.erase(lru_.back());
        lru_.pop_back();
      }
    }
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  return it->second.phi;
}

std::size_t ReconstructionEngine::cached_matrices() const {
  std::lock_guard<std::mutex> lk(matrices_mutex_);
  return matrices_.size();
}

std::shared_ptr<SloTracker> ReconstructionEngine::patient_tracker(std::uint32_t patient_id) {
  if (!cfg_.per_patient_slo) return nullptr;
  std::lock_guard<std::mutex> lk(patient_slo_mutex_);
  const auto found = patient_slo_.find(patient_id);
  if (found != patient_slo_.end()) return found->second;
  // Entries are never evicted by traffic (only extracted by a reshard
  // handoff), so the map is bounded by refusing new ids at the cap: a
  // fleet with churning patient ids can't grow host memory without bound.
  if (cfg_.max_tracked_patients > 0 && patient_slo_.size() >= cfg_.max_tracked_patients) {
    return nullptr;
  }
  return patient_slo_.emplace(patient_id, std::make_shared<SloTracker>(cfg_.slo)).first->second;
}

std::shared_ptr<SloTracker> ReconstructionEngine::extract_patient_slo(std::uint32_t patient_id) {
  std::lock_guard<std::mutex> lk(patient_slo_mutex_);
  const auto found = patient_slo_.find(patient_id);
  if (found == patient_slo_.end()) return nullptr;
  auto out = std::move(found->second);
  patient_slo_.erase(found);
  return out;
}

bool ReconstructionEngine::adopt_patient_slo(std::uint32_t patient_id,
                                             std::shared_ptr<SloTracker> tracker) {
  if (!cfg_.per_patient_slo || tracker == nullptr) return false;
  std::lock_guard<std::mutex> lk(patient_slo_mutex_);
  const auto found = patient_slo_.find(patient_id);
  if (found != patient_slo_.end()) {
    // A submission (or a bounce back) beat the handoff: fold the moved
    // history into the entry already recording here.
    tracker->drain_into(*found->second);
    return true;
  }
  if (cfg_.max_tracked_patients > 0 && patient_slo_.size() >= cfg_.max_tracked_patients) {
    return false;  // Same cap semantics as a brand-new patient.
  }
  patient_slo_.emplace(patient_id, std::move(tracker));
  return true;
}

std::vector<PatientSlo> ReconstructionEngine::patient_slo_snapshots() const {
  std::lock_guard<std::mutex> lk(patient_slo_mutex_);
  std::vector<PatientSlo> out;
  out.reserve(patient_slo_.size());
  for (const auto& [patient_id, tracker] : patient_slo_) {
    out.push_back({patient_id, tracker->snapshot()});
  }
  return out;  // std::map iteration: already sorted by patient_id.
}

void ReconstructionEngine::process_batch(std::vector<WorkItem*>& items) {
  // Per-worker solve scratch, reused across batches: the FISTA arena plus
  // the grouping/view vectors below.  thread_local (not per-call) is what
  // makes the steady-state solve allocation-free — and sharing one arena
  // across engines on the same thread (serial mode, fabric shards) only
  // widens its high-water mark.
  static thread_local std::vector<WorkItem*> group;
  static thread_local std::vector<WorkItem*> foreign;
  static thread_local std::vector<std::span<const double>> views;
  static thread_local std::vector<cs::FistaWindowOut> outs;
  static thread_local cs::FistaWorkspace workspace;

  // Keep the same-(matrix, tier) group containing the oldest popped item;
  // requeue the rest for other workers.  Different shared_ptr instances of
  // the same key are possible across evictions; grouping by object is
  // sufficient — and necessary, since a batched solve streams one plan.
  // The tier joins the key because a degraded window solves under a
  // different operator/iteration budget than a full-fidelity one.
  group.clear();
  foreign.clear();
  for (WorkItem* item : items) {
    if (item->phi == items.front()->phi &&
        item->window.solve_tier == items.front()->window.solve_tier) {
      group.push_back(item);
    } else {
      foreign.push_back(item);
    }
  }
  // Requeue foreign-matrix items at the front of their lanes, in reverse
  // pop order so their relative age is preserved for other workers (and
  // for the shed predictor's positional scan).
  for (auto it = foreign.rbegin(); it != foreign.rend(); ++it) {
    queue_.push_front(*it, (*it)->window.priority == cs::WindowPriority::kUrgent);
  }
  if (!foreign.empty() && !workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
    }
    work_cv_.notify_all();
  }
  if (group.size() >= 2) slo_.on_grouped(group.size());

  // Resolve the group's solve operator and iteration budget from its tier.
  // Tier 0 takes the untouched path: the full operator and the configured
  // FistaConfig, bit-identical to an engine without the tier machinery.
  const cs::SolveTier tier = group.front()->window.solve_tier;
  std::shared_ptr<const cs::SensingMatrix> solve_phi = group.front()->phi;
  cs::FistaConfig fista = cfg_.fista;
  if (tier.tier != 0) {
    if (tier.effective_m > 0 && tier.effective_m < solve_phi->rows()) {
      solve_phi = solve_matrix_for(group.front()->window, group.front()->phi);
    }
    if (tier.iteration_cap > 0) {
      fista.max_iterations =
          std::min(fista.max_iterations, static_cast<int>(tier.iteration_cap));
    }
  }

  // Measurements are *borrowed* from the queued windows (no copies — the
  // buffers travel by move from the producer through the queue to here),
  // and each window's signal lands directly in its result buffer, drawn
  // from the payload pool when one is configured.  A row-truncated
  // operator reads only the first rows() measurements of each window.
  const std::size_t n = group.front()->window.window_samples;
  views.clear();
  outs.clear();
  for (WorkItem* item : group) {
    const std::size_t rows = std::min(item->window.measurements.size(), solve_phi->rows());
    views.emplace_back(item->window.measurements.data(), rows);
    WindowResult& result = item->result;
    if (cfg_.payload_pool != nullptr) result.signal = cfg_.payload_pool->acquire_signal();
    result.signal.resize(n);
    outs.push_back(cs::FistaWindowOut{
        std::span<double>(result.signal.data(), result.signal.size()), 0});
  }

  const auto t0 = Clock::now();
  cs::fista_solve_batch_into(
      *solve_phi, std::span<const std::span<const double>>(views.data(), views.size()),
      fista, workspace, std::span<cs::FistaWindowOut>(outs.data(), outs.size()));
  const auto t1 = Clock::now();
  const double solve_ms = ms_between(t0, t1);

  // Feed the cost model: EWMA (alpha = 1/8) of per-window solve time,
  // keyed by the shape actually solved (rows of the possibly-truncated
  // operator) and tier, plus the shape-blind global fallback.  Racy
  // read-modify-write across workers only blurs the estimate.
  const auto sample_us = static_cast<std::uint64_t>(
      solve_ms * 1000.0 / static_cast<double>(group.size()));
  cost_model_.record(static_cast<std::uint32_t>(solve_phi->rows()),
                     group.front()->window.window_samples, tier.tier, sample_us);

  std::uint64_t released_cost_us = 0;
  for (std::size_t s = 0; s < group.size(); ++s) {
    WorkItem* item = group[s];
    const CompressedWindow& window = item->window;
    WindowResult& result = item->result;
    result.patient_id = window.patient_id;
    result.window_index = window.window_index;
    result.priority = window.priority;
    result.route_tag = window.route_tag;
    result.ticket = item->ticket;
    result.solve_tier = window.solve_tier;
    result.degraded = window.solve_tier.tier != 0;
    result.latency_ms = solve_ms;  // Whole-group solve wall time.
    result.e2e_ms = ms_between(item->enqueue_time, t1);
    result.iterations = outs[s].iterations_run;
    result.snr_db = window.reference.empty()
                        ? std::numeric_limits<double>::quiet_NaN()
                        : cs::reconstruction_snr_db(window.reference, result.signal);
    released_cost_us += item->charged_cost_us;
    slo_.on_complete(result.e2e_ms);
    lane_slo_[lane_index(window.priority)].on_complete(result.e2e_ms);
    if (item->patient_slo != nullptr) item->patient_slo->on_complete(result.e2e_ms);
    if (result.degraded) {
      slo_.on_degraded();
      lane_slo_[lane_index(window.priority)].on_degraded();
      if (item->patient_slo != nullptr) item->patient_slo->on_degraded();
    }
    // The solve is done with the payload: the buffers go back to the pool
    // now (not at poll) so the producer's next acquire hits.  The matrix
    // reference drops with them — the node parks in done_ holding neither.
    release_window_payload(item->window);
    item->phi.reset();
  }
  // Snapshot the patient ids now: the moment an item is published to done_,
  // a concurrent poll() may pop and recycle it (wiping window and result),
  // so nothing on the item may be read after the publish below.
  static thread_local std::vector<std::uint32_t> retired_ids;
  retired_ids.clear();
  for (const WorkItem* item : group) retired_ids.push_back(item->window.patient_id);
  {
    std::lock_guard<std::mutex> lk(done_mutex_);
    for (WorkItem* item : group) {
      item->next = nullptr;
      if (done_tail_ != nullptr) {
        done_tail_->next = item;
      } else {
        done_head_ = item;
      }
      done_tail_ = item;
      ++done_count_;
    }
  }
  // Release the group's priced backlog exactly as charged at admission.
  if (released_cost_us > 0) {
    pending_cost_us_.fetch_sub(released_cost_us, std::memory_order_relaxed);
  }
  // Completions are recorded and published; only now may a drain_patient()
  // waiter observe the patient as quiesced.
  retire_pending(retired_ids);
  // Publish the results strictly before the slot release: any thread that
  // observes in_flight_ == 0 (acquire) is guaranteed to find every result
  // already in done_.
  in_flight_.fetch_sub(group.size(), std::memory_order_acq_rel);
  done_cv_.notify_all();
  // Strictly after the slot release: a hook-driven try_submit_step retry
  // that still fails saw the engine genuinely full again, so the next
  // completion's hook is guaranteed to re-wake it (no lost-wakeup window).
  if (cfg_.progress_hook) cfg_.progress_hook();
}

void ReconstructionEngine::retire_pending(std::span<const std::uint32_t> patient_ids) {
  {
    std::lock_guard<std::mutex> lk(pending_mutex_);
    for (const std::uint32_t patient_id : patient_ids) {
      const auto found = patient_pending_.find(patient_id);
      if (found == patient_pending_.end()) continue;
      // Zero entries stay in the map: erasing here would make the next
      // submit of the same patient pay a map-node allocation, forever.
      --found->second;
    }
    // Id churn bound: only when the retained zeros have grown the map well
    // past the in-flight capacity, sweep them (erase-only — no allocation).
    if (patient_pending_.size() > pending_sweep_threshold_) {
      for (auto it = patient_pending_.begin(); it != patient_pending_.end();) {
        it = it->second == 0 ? patient_pending_.erase(it) : std::next(it);
      }
    }
  }
  pending_cv_.notify_all();
}

std::size_t ReconstructionEngine::ready_results() const {
  std::lock_guard<std::mutex> lk(done_mutex_);
  return done_count_;
}

std::size_t ReconstructionEngine::patient_pending(std::uint32_t patient_id) const {
  std::lock_guard<std::mutex> lk(pending_mutex_);
  const auto found = patient_pending_.find(patient_id);
  return found != patient_pending_.end() ? found->second : 0;
}

void ReconstructionEngine::drain_patient(std::uint32_t patient_id) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(pending_mutex_);
      const auto quiesced = [this, patient_id] {
        const auto found = patient_pending_.find(patient_id);
        return found == patient_pending_.end() || found->second == 0;
      };
      if (quiesced()) return;
      if (!workers_.empty()) {
        pending_cv_.wait(lk, quiesced);
        return;
      }
    }
    // Serial reference mode: the calling thread is the solver.  help_some
    // may solve other patients' windows first (FIFO order is preserved),
    // which only brings the target's turn closer.
    if (!help_some()) std::this_thread::yield();
  }
}

bool ReconstructionEngine::reserve_slot() {
  std::size_t current = in_flight_.load(std::memory_order_acquire);
  do {
    if (current >= in_flight_capacity()) return false;
  } while (!in_flight_.compare_exchange_weak(current, current + 1, std::memory_order_acq_rel,
                                             std::memory_order_acquire));
  return true;
}

double ReconstructionEngine::solve_estimate_ms(std::uint32_t measurements,
                                               std::uint32_t samples) const {
  return cost_model_.estimate_ms(measurements, samples, 0, 1.0);
}

cs::SolveTier ReconstructionEngine::tier_for(std::size_t rung, std::uint32_t m_full,
                                             std::uint32_t n) const {
  cs::SolveTier tier;
  if (rung == 0 || cfg_.degrade_tiers.empty()) return tier;
  const std::size_t clamped = std::min(rung, cfg_.degrade_tiers.size());
  const DegradeTierSpec& spec = cfg_.degrade_tiers[clamped - 1];
  tier.tier = static_cast<std::uint8_t>(clamped);
  tier.iteration_cap = spec.iteration_cap;
  if (cfg_.degrade_policy == DegradePolicy::kCrIter && spec.cr_percent > 0.0) {
    const auto rows = static_cast<std::uint32_t>(cs::rows_for_cr(spec.cr_percent, n));
    // Only truncation counts: a rung whose CR keeps at least as many rows
    // as the window actually carries leaves the operator whole.
    if (rows < m_full) tier.effective_m = rows;
  }
  return tier;
}

std::uint64_t ReconstructionEngine::charge_estimate_us(const CompressedWindow& window) const {
  const auto m_full = static_cast<std::uint32_t>(window.measurements.size());
  const cs::SolveTier& tier = window.solve_tier;
  const std::uint32_t m_used =
      tier.effective_m > 0 ? std::min(m_full, tier.effective_m) : m_full;
  const double scale = SolveCostModel::tier_scale(
      tier.iteration_cap, static_cast<std::uint32_t>(std::max(0, cfg_.fista.max_iterations)));
  const double est_ms = cost_model_.estimate_ms(m_used, window.window_samples, tier.tier, scale);
  return est_ms > 0.0 ? static_cast<std::uint64_t>(est_ms * 1000.0) : 0;
}

double ReconstructionEngine::backlog_wait_ms() const {
  const auto workers = static_cast<double>(std::max(1, cfg_.threads));
  return static_cast<double>(pending_cost_us_.load(std::memory_order_relaxed)) / 1000.0 /
         workers;
}

std::vector<std::uint32_t> ReconstructionEngine::pending_patients(std::size_t max) const {
  std::vector<std::uint32_t> out;
  {
    std::lock_guard<std::mutex> lk(pending_mutex_);
    out.reserve(std::min(max, patient_pending_.size()));
    for (const auto& [patient_id, pending] : patient_pending_) {
      if (pending == 0) continue;
      out.push_back(patient_id);
      if (out.size() >= max) break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ReconstructionEngine::maybe_degrade_backlog() {
  if (cfg_.degrade_policy == DegradePolicy::kOff || cfg_.degrade_tiers.empty()) return;
  const double deadline_ms = cfg_.slo.deadline_ms;
  if (deadline_ms <= 0.0) return;
  const double budget_ms = deadline_ms * std::max(cfg_.degrade_backlog_deadlines, 0.0);
  const auto workers = static_cast<double>(std::max(1, cfg_.threads));
  const std::size_t bottom = cfg_.degrade_tiers.size();
  // One rung per pass: each routine window in pop order steps one tier
  // down until the priced backlog fits the budget again.  Sustained
  // pressure walks again on the next admission, stepping further.  The
  // urgent lane is structurally out of reach (for_each_routine), so AF
  // windows always keep full fidelity.
  queue_.for_each_routine([&](WorkItem* item) {
    const double wait_ms =
        static_cast<double>(pending_cost_us_.load(std::memory_order_relaxed)) / 1000.0 /
        workers;
    if (wait_ms <= budget_ms) return;  // Pressure already relieved.
    CompressedWindow& window = item->window;
    if (window.solve_tier.tier >= bottom) return;  // Already at the bottom rung.
    window.solve_tier =
        tier_for(static_cast<std::size_t>(window.solve_tier.tier) + 1,
                 static_cast<std::uint32_t>(window.measurements.size()),
                 window.window_samples);
    // Re-price the demoted window so the backlog (and any later shed scan)
    // sees its demoted cost, not its full-fidelity one.
    const std::uint64_t new_cost = charge_estimate_us(window);
    if (new_cost < item->charged_cost_us) {
      pending_cost_us_.fetch_sub(item->charged_cost_us - new_cost, std::memory_order_relaxed);
    } else if (new_cost > item->charged_cost_us) {
      pending_cost_us_.fetch_add(new_cost - item->charged_cost_us, std::memory_order_relaxed);
    }
    item->charged_cost_us = new_cost;
  });
}

double shed_aging_protection(double age_ms, double deadline_ms, double aging_deadlines) {
  if (aging_deadlines <= 1.0 || deadline_ms <= 0.0) return 0.0;
  // 0 protection up to one deadline of age, full protection at
  // aging_deadlines deadlines, linear in between.
  const double protection = (age_ms - deadline_ms) / ((aging_deadlines - 1.0) * deadline_ms);
  return std::clamp(protection, 0.0, 1.0);
}

bool ReconstructionEngine::shed_predicted_miss(cs::WindowPriority arrival_priority) {
  const double deadline_ms = cfg_.slo.deadline_ms;
  if (deadline_ms <= 0.0) return false;
  const double global_est_ms =
      cfg_.shed_solve_estimate_ms > 0.0
          ? cfg_.shed_solve_estimate_ms
          : static_cast<double>(cost_model_.global_us()) / 1000.0;
  if (global_est_ms <= 0.0) return false;  // No solve-time signal yet.
  const auto workers = static_cast<double>(std::max(1, cfg_.threads));
  const auto now = Clock::now();
  // Predicted completion if left queued: everything ahead of it plus
  // itself must solve, spread across the pool — a coarse M/D/c wait model.
  // Each queued window contributes its own (shape, tier) cost estimate,
  // so a backlog mixing window sizes is costed window by window rather
  // than by one blurred average — and a window the degrade policy already
  // demoted is priced at its demoted cost, not its full-fidelity one;
  // extract_best scans in pop order (urgent lane first), which is exactly
  // the order the cumulative cost accrues in.  Positive overshoot means
  // the deadline is already forecast to be missed.
  double cum_wait_ms = 0.0;
  const auto make_score = [&](bool urgent_eligible) {
    return [&, urgent_eligible](WorkItem* item, std::size_t,
                                bool urgent) -> std::optional<double> {
      const double est_ms =
          static_cast<double>(charge_estimate_us(item->window)) / 1000.0;
      cum_wait_ms += (est_ms > 0.0 ? est_ms : global_est_ms) / workers;
      if (urgent && !urgent_eligible) return std::nullopt;
      const double age_ms = ms_between(item->enqueue_time, now);
      const double overshoot_ms = age_ms + cum_wait_ms - deadline_ms;
      if (overshoot_ms <= 0.0) return std::nullopt;  // Still expected to make it.
      if (!urgent) {
        // Starvation guard: a routine window that has already outlived its
        // deadline under a sustained urgent flood earns shed protection
        // with age, so the predictor victimizes younger doomed windows
        // instead of re-dooming the same survivor forever.
        const double protection =
            shed_aging_protection(age_ms, deadline_ms, cfg_.shed_starvation_aging);
        if (protection >= 1.0) return std::nullopt;  // Fully aged: shed-exempt.
        return overshoot_ms * (1.0 - protection);
      }
      return overshoot_ms;  // Shed the most-doomed window.
    };
  };
  // Routine victims first (urgent windows still contribute queue-wait cost
  // but are never eligible); the urgent lane becomes eligible only when no
  // routine window is predicted to miss AND the arrival itself is urgent.
  auto victim = queue_.extract_best(make_score(false), /*include_urgent=*/true);
  if (!victim.has_value() && arrival_priority == cs::WindowPriority::kUrgent) {
    cum_wait_ms = 0.0;  // Fresh scan, fresh cumulative cost.
    victim = queue_.extract_best(make_score(true), /*include_urgent=*/true);
  }
  if (!victim.has_value()) return false;
  WorkItem* item = *victim;
  const bool urgent = item->window.priority == cs::WindowPriority::kUrgent;
  if (item->charged_cost_us > 0) {
    pending_cost_us_.fetch_sub(item->charged_cost_us, std::memory_order_relaxed);
  }
  slo_.on_shed(urgent);
  lane_slo_[lane_index(item->window.priority)].on_shed(urgent);
  if (item->patient_slo != nullptr) item->patient_slo->on_shed(urgent);
  const std::uint32_t shed_patient = item->window.patient_id;
  retire_pending({&shed_patient, 1});
  // A shed window's payload goes back to the pool like a solved one's —
  // shedding under overload must not bleed the pool dry.
  release_window_payload(item->window);
  recycle_item(item);
  // A shed is progress too: the victim's patient may have quiesced, which
  // a deferred drain_patient waiter behind the hook must observe.
  if (cfg_.progress_hook) cfg_.progress_hook();
  return true;  // The victim's in-flight reservation passes to the arrival.
}

std::optional<std::uint64_t> ReconstructionEngine::try_submit(CompressedWindow&& window) {
  const std::size_t lane = lane_index(window.priority);
  if (auto ticket = try_submit_impl(std::move(window), cfg_.deadline_shedding)) {
    return ticket;
  }
  slo_.on_reject();
  lane_slo_[lane].on_reject();
  return std::nullopt;
}

std::optional<std::uint64_t> ReconstructionEngine::try_submit_step(CompressedWindow&& window) {
  // Blocking-submit semantics, one step at a time: no shedding (a waiter
  // must not drop queued work) and no reject accounting (a failed step is
  // backpressure the caller waits out, not a bounced window).
  return try_submit_impl(std::move(window), /*allow_shedding=*/false);
}

std::optional<std::uint64_t> ReconstructionEngine::try_submit_impl(CompressedWindow&& window,
                                                                   bool allow_shedding) {
  // Reserve an in-flight slot first; this is the only admission gate.  At
  // capacity, deadline-aware shedding may instead free a slot by dropping
  // the queued window predicted to miss its deadline — the arrival then
  // takes over the victim's reservation.  Demote-first: before any queued
  // window is shed whole, an active DegradePolicy first tries to relieve
  // the pressure by degrading queued routine windows to a cheaper tier —
  // which can dissolve the predicted miss entirely (the arrival then
  // bounces, but the backlog drains faster and stops hitting capacity).
  if (!reserve_slot()) {
    if (allow_shedding) maybe_degrade_backlog();
    if (!(allow_shedding && shed_predicted_miss(window.priority))) {
      return std::nullopt;
    }
  }

  // Node from the freelist; the window's buffers MOVE in (the producer's
  // pooled buffers travel untouched through the queue to the solver).
  WorkItem* item = item_pool_.acquire();
  item->phi = prepare_matrix(window);
  item->window = std::move(window);
  item->patient_slo = patient_tracker(item->window.patient_id);
  item->ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  item->enqueue_time = Clock::now();
  // Price the admission into the backlog (at the window's tier — a preset
  // tier is charged at its cheaper cost).  Always on: backlog_wait_ms()
  // feeds the CR-hint pressure signal regardless of DegradePolicy, and
  // counters never affect values.
  item->charged_cost_us = charge_estimate_us(item->window);
  if (item->charged_cost_us > 0) {
    pending_cost_us_.fetch_add(item->charged_cost_us, std::memory_order_relaxed);
  }
  const std::uint64_t ticket = item->ticket;
  const bool urgent = item->window.priority == cs::WindowPriority::kUrgent;

  slo_.on_submit();
  lane_slo_[lane_index(item->window.priority)].on_submit();
  if (item->patient_slo != nullptr) item->patient_slo->on_submit();
  {
    // Counted before the queue push so a worker's retire can never precede
    // its submit from a drain_patient() waiter's point of view.
    std::lock_guard<std::mutex> lk(pending_mutex_);
    ++patient_pending_[item->window.patient_id];
  }
  if (cfg_.group_submits_by_seed) {
    // Insert next to the newest queued window sharing this sensing matrix
    // (object identity — grouping is by the same test process_batch uses),
    // so worker pops see contiguous same-matrix runs.
    const cs::SensingMatrix* phi = item->phi.get();
    queue_.push_grouped(item, urgent,
                        [phi](WorkItem* other) { return other->phi.get() == phi; });
  } else {
    queue_.push(item, urgent);
  }

  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
    }
    work_cv_.notify_one();
  }
  // Proactive degrade trigger: if this admission pushed the priced backlog
  // past the deadline budget, demote queued routine windows now instead of
  // waiting for capacity to fill (degrade_backlog_deadlines <= 0 leaves
  // only the demote-before-shed step).
  if (cfg_.degrade_policy != DegradePolicy::kOff && !cfg_.degrade_tiers.empty() &&
      cfg_.degrade_backlog_deadlines > 0.0 && cfg_.slo.deadline_ms > 0.0 &&
      backlog_wait_ms() > cfg_.slo.deadline_ms * cfg_.degrade_backlog_deadlines) {
    maybe_degrade_backlog();
  }
  return ticket;
}

std::uint64_t ReconstructionEngine::submit(CompressedWindow window) {
  for (;;) {
    // A blocking submitter can afford to wait, so it never sheds queued
    // work to jump in — and its retries are backpressure, not rejections,
    // so they stay out of the reject counters.
    if (auto ticket = try_submit_impl(std::move(window), /*allow_shedding=*/false)) {
      return *ticket;
    }
    // At capacity.  Serial mode: make room by solving pending windows
    // inline.  Threaded mode: wait for a worker to complete one (wait_for
    // rather than wait so a slot freed between the failed try_submit and
    // the sleep cannot strand us).
    if (workers_.empty() && help_some()) continue;
    std::unique_lock<std::mutex> lk(done_mutex_);
    done_cv_.wait_for(lk, std::chrono::milliseconds(1), [this] {
      return in_flight_.load(std::memory_order_acquire) < in_flight_capacity();
    });
  }
}

bool ReconstructionEngine::help_some() {
  WorkItem* item = nullptr;
  if (!queue_.try_pop(item)) return false;
  // thread_local so serial-mode polling stays allocation-free after warmup.
  static thread_local std::vector<WorkItem*> items;
  items.clear();
  items.push_back(item);
  pop_batch(items);
  process_batch(items);
  return true;
}

std::optional<WindowResult> ReconstructionEngine::poll() {
  for (;;) {
    WorkItem* node = nullptr;
    {
      std::lock_guard<std::mutex> lk(done_mutex_);
      if (done_head_ != nullptr) {
        node = done_head_;
        done_head_ = node->next;
        if (done_head_ == nullptr) done_tail_ = nullptr;
        --done_count_;
        slo_.on_retrieve();
        lane_slo_[lane_index(node->result.priority)].on_retrieve();
        // Resolved at submit and engine-lifetime stable: no map, no lock.
        if (node->patient_slo != nullptr) node->patient_slo->on_retrieve();
      }
    }
    if (node != nullptr) {
      // The signal buffer moves out to the caller (who may recycle it into
      // the payload pool after use); the node itself goes back on the
      // freelist.
      WindowResult out = std::move(node->result);
      recycle_item(node);
      return std::optional<WindowResult>{std::move(out)};
    }
    // Serial reference mode: the calling thread is the solver.  Loop (not
    // recurse) because a concurrent poller may steal the result we solved.
    if (workers_.empty() && help_some()) continue;
    return std::nullopt;
  }
}

std::vector<WindowResult> ReconstructionEngine::drain() {
  std::vector<WindowResult> out;
  for (;;) {
    while (auto result = poll()) out.push_back(std::move(*result));
    if (in_flight_.load(std::memory_order_acquire) == 0) {
      // Everything solved, and every result was published to done_ before
      // its slot release — but possibly after our poll() loop saw done_
      // empty, so sweep once more.
      while (auto result = poll()) out.push_back(std::move(*result));
      return out;
    }
    if (workers_.empty()) {
      // poll() keeps solving inline; yield covers the corner where another
      // thread is mid-solve and the queues are momentarily empty.
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lk(done_mutex_);
    done_cv_.wait(lk, [this] {
      return in_flight_.load(std::memory_order_acquire) == 0 || done_count_ != 0;
    });
  }
}

BatchResult ReconstructionEngine::reconstruct(std::span<const CompressedWindow> batch) {
  std::lock_guard<std::mutex> batch_guard(batch_mutex_);

  BatchResult out;
  out.windows.assign(batch.size(), WindowResult{});
  if (batch.empty()) return out;

  // Ticket -> batch position, so completion-order results can be put back
  // in input order.  Tickets are engine-global, not batch-local, so the
  // wrapper records its own mapping as it submits.  A ticket not in the
  // map is a leftover from streaming submissions the caller never polled;
  // the wrapper discards it rather than corrupting the batch output.
  std::unordered_map<std::uint64_t, std::size_t> slot_of;
  slot_of.reserve(batch.size());
  const auto place = [&](WindowResult&& result) {
    const auto found = slot_of.find(result.ticket);
    if (found == slot_of.end()) return;
    out.windows[found->second] = std::move(result);
  };

  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    CompressedWindow copy = batch[i];
    for (;;) {
      // Never shed inside the batch wrapper: its contract is every window
      // reconstructed, so overload is waited out, not dropped — a shed
      // here could even evict another window of this same batch, leaving
      // a default-constructed hole in the output.
      if (auto ticket = try_submit_impl(std::move(copy), /*allow_shedding=*/false)) {
        slot_of.emplace(*ticket, i);
        break;
      }
      // Backpressure: retrieve (and in serial mode, solve) to make room.
      if (auto result = poll()) {
        place(std::move(*result));
      } else {
        std::unique_lock<std::mutex> lk(done_mutex_);
        done_cv_.wait_for(lk, std::chrono::milliseconds(1), [this] {
          return in_flight_.load(std::memory_order_acquire) < in_flight_capacity();
        });
      }
    }
  }
  for (auto&& result : drain()) place(std::move(result));
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.records_per_second =
      out.wall_seconds > 0.0 ? static_cast<double>(batch.size()) / out.wall_seconds : 0.0;
  out.patients = aggregate_patient_stats(out.windows);
  return out;
}

std::vector<PatientStats> aggregate_patient_stats(std::span<const WindowResult> windows) {
  // Serial aggregation in input order keeps the stats deterministic.
  std::map<std::uint32_t, PatientStats> stats;
  std::map<std::uint32_t, std::size_t> scored;
  for (const auto& window : windows) {
    auto& s = stats[window.patient_id];
    s.patient_id = window.patient_id;
    ++s.windows;
    if (!std::isnan(window.snr_db)) {
      s.mean_snr_db += window.snr_db;
      ++scored[window.patient_id];
    }
    s.mean_latency_ms += window.latency_ms;
    s.max_latency_ms = std::max(s.max_latency_ms, window.latency_ms);
  }
  std::vector<PatientStats> out;
  out.reserve(stats.size());
  for (auto& [id, s] : stats) {
    const std::size_t n_scored = scored[id];
    s.mean_snr_db = n_scored > 0 ? s.mean_snr_db / static_cast<double>(n_scored)
                                 : std::numeric_limits<double>::quiet_NaN();
    s.mean_latency_ms /= static_cast<double>(s.windows);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<CompressedWindow> compress_record(const sig::Record& record,
                                              std::uint32_t patient_id,
                                              const RecordCompressionConfig& cfg) {
  std::vector<CompressedWindow> out;
  const std::size_t n = cfg.window_samples;
  const std::size_t m = cs::rows_for_cr(cfg.cr_percent, n);

  std::uint32_t window_index = 0;
  for (std::size_t l = 0; l < record.num_leads(); ++l) {
    const std::uint64_t seed = cs::lead_matrix_seed(cfg.matrix_seed, l);
    sig::Rng rng(seed);
    const auto phi = cs::SensingMatrix::make_sparse_binary(m, n, cfg.ones_per_column, rng);

    const auto& lead = record.leads[l];
    const std::size_t windows = lead.size() / n;
    for (std::size_t w = 0; w < windows; ++w) {
      const auto window_mv = std::span<const double>(lead).subspan(w * n, n);
      auto encoded = cs::encode_window(phi, window_mv, cfg.adc, cfg.keep_reference);

      CompressedWindow cw;
      cw.patient_id = patient_id;
      cw.window_index = window_index++;
      cw.matrix_seed = seed;
      cw.window_samples = static_cast<std::uint32_t>(n);
      cw.ones_per_column = static_cast<std::uint32_t>(cfg.ones_per_column);
      const auto lo = static_cast<std::int64_t>(w * n);
      for (const auto& span : cfg.urgent_spans) {
        if (span.overlaps(lo, lo + static_cast<std::int64_t>(n))) {
          cw.priority = cs::WindowPriority::kUrgent;
          break;
        }
      }
      cw.measurements = std::move(encoded.measurements);
      cw.reference = std::move(encoded.reference);
      out.push_back(std::move(cw));
    }
  }
  return out;
}

}  // namespace wbsn::host
