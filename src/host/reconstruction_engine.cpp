#include "host/reconstruction_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "cs/pipeline.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

ReconstructionEngine::ReconstructionEngine(EngineConfig cfg)
    : cfg_(cfg), queue_(cfg.queue_capacity) {
  const int threads = std::max(0, cfg_.threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ReconstructionEngine::~ReconstructionEngine() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ReconstructionEngine::worker_loop() {
  for (;;) {
    std::size_t index;
    if (queue_.try_pop(index)) {
      process(index);
      continue;
    }
    std::unique_lock<std::mutex> lk(work_mutex_);
    work_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) || !queue_.empty_approx();
    });
    if (stop_.load(std::memory_order_acquire) && queue_.empty_approx()) return;
  }
}

void ReconstructionEngine::prepare_matrices(std::span<const CompressedWindow> batch) {
  for (const auto& window : batch) {
    const MatrixKey key{window.matrix_seed, window.measurements.size(),
                        window.window_samples, window.ones_per_column};
    if (matrices_.contains(key)) continue;
    sig::Rng rng(window.matrix_seed);
    matrices_.emplace(
        key, cs::SensingMatrix::make_sparse_binary(
                 window.measurements.size(), window.window_samples,
                 window.ones_per_column, rng));
  }
}

void ReconstructionEngine::process(std::size_t index) {
  const CompressedWindow& window = batch_[index];
  WindowResult result;
  result.patient_id = window.patient_id;
  result.window_index = window.window_index;

  const MatrixKey key{window.matrix_seed, window.measurements.size(),
                      window.window_samples, window.ones_per_column};
  const cs::SensingMatrix& phi = matrices_.at(key);

  const auto t0 = Clock::now();
  auto solved = cs::fista_reconstruct(phi, window.measurements, cfg_.fista);
  result.latency_ms = ms_between(t0, Clock::now());
  result.iterations = solved.iterations_run;
  result.signal = std::move(solved.signal);
  result.snr_db = window.reference.empty()
                      ? std::numeric_limits<double>::quiet_NaN()
                      : cs::reconstruction_snr_db(window.reference, result.signal);

  (*results_)[index] = std::move(result);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(done_mutex_);
    done_cv_.notify_all();
  }
}

BatchResult ReconstructionEngine::reconstruct(std::span<const CompressedWindow> batch) {
  std::lock_guard<std::mutex> batch_guard(batch_mutex_);

  BatchResult out;
  out.windows.assign(batch.size(), WindowResult{});
  if (batch.empty()) return out;

  prepare_matrices(batch);
  batch_ = batch;
  results_ = &out.windows;
  remaining_.store(batch.size(), std::memory_order_release);

  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    while (!queue_.try_push(i)) {
      // Queue oversubscribed: apply backpressure by helping drain inline.
      std::size_t index;
      if (queue_.try_pop(index)) {
        process(index);
      } else {
        std::this_thread::yield();
      }
    }
    if (!workers_.empty()) {
      {
        std::lock_guard<std::mutex> lk(work_mutex_);
      }
      work_cv_.notify_one();
    }
  }

  // The caller drains alongside the workers; with threads == 0 this is the
  // entire (serial, reference) execution path.
  std::size_t index;
  while (queue_.try_pop(index)) process(index);

  {
    std::unique_lock<std::mutex> lk(done_mutex_);
    done_cv_.wait(lk, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.records_per_second =
      out.wall_seconds > 0.0
          ? static_cast<double>(batch.size()) / out.wall_seconds
          : 0.0;

  // Safe to reset: remaining_ hit zero, so every process() call — each of
  // which touches batch_/results_ strictly before its fetch_sub — is done.
  batch_ = {};
  results_ = nullptr;

  // Serial aggregation in input order keeps the stats deterministic.
  std::map<std::uint32_t, PatientStats> stats;
  std::map<std::uint32_t, std::size_t> scored;
  for (const auto& window : out.windows) {
    auto& s = stats[window.patient_id];
    s.patient_id = window.patient_id;
    ++s.windows;
    if (!std::isnan(window.snr_db)) {
      s.mean_snr_db += window.snr_db;
      ++scored[window.patient_id];
    }
    s.mean_latency_ms += window.latency_ms;
    s.max_latency_ms = std::max(s.max_latency_ms, window.latency_ms);
  }
  out.patients.reserve(stats.size());
  for (auto& [id, s] : stats) {
    const std::size_t n_scored = scored[id];
    s.mean_snr_db = n_scored > 0
                        ? s.mean_snr_db / static_cast<double>(n_scored)
                        : std::numeric_limits<double>::quiet_NaN();
    s.mean_latency_ms /= static_cast<double>(s.windows);
    out.patients.push_back(std::move(s));
  }
  return out;
}

std::vector<CompressedWindow> compress_record(const sig::Record& record,
                                              std::uint32_t patient_id,
                                              const RecordCompressionConfig& cfg) {
  std::vector<CompressedWindow> out;
  const std::size_t n = cfg.window_samples;
  const std::size_t m = cs::rows_for_cr(cfg.cr_percent, n);

  std::uint32_t window_index = 0;
  for (std::size_t l = 0; l < record.num_leads(); ++l) {
    const std::uint64_t seed = cs::lead_matrix_seed(cfg.matrix_seed, l);
    sig::Rng rng(seed);
    const auto phi = cs::SensingMatrix::make_sparse_binary(m, n, cfg.ones_per_column, rng);

    const auto& lead = record.leads[l];
    const std::size_t windows = lead.size() / n;
    for (std::size_t w = 0; w < windows; ++w) {
      const auto window_mv = std::span<const double>(lead).subspan(w * n, n);
      auto encoded = cs::encode_window(phi, window_mv, cfg.adc, cfg.keep_reference);

      CompressedWindow cw;
      cw.patient_id = patient_id;
      cw.window_index = window_index++;
      cw.matrix_seed = seed;
      cw.window_samples = static_cast<std::uint32_t>(n);
      cw.ones_per_column = static_cast<std::uint32_t>(cfg.ones_per_column);
      cw.measurements = std::move(encoded.measurements);
      cw.reference = std::move(encoded.reference);
      out.push_back(std::move(cw));
    }
  }
  return out;
}

}  // namespace wbsn::host
