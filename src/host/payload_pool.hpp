// Pooled window payloads for the reconstruction hot path.
//
// Every CompressedWindow carries two heap-backed vectors (measurements +
// optional SNR reference) and every WindowResult carries a third (the
// reconstructed signal).  In a streaming deployment those buffers churn
// once per window forever — the dominant steady-state allocation source
// once the solver runs on an arena (cs::FistaWorkspace).  This module
// recycles them instead: fixed-capacity freelists of buffers, checked out
// by the producer at submit time and returned by the engine after the
// solve (measurement side) and by the consumer after poll (signal side).
// The same discipline lilliput applies to its framebuffers: allocate
// once, swap per op, never per request.
//
//  * Exhaustion degrades, never blocks: an empty freelist hands out a
//    fresh allocation (counted as a miss), an over-capacity recycle frees
//    the buffer (counted as a drop).  The pool bounds pooled memory, not
//    throughput.
//  * Callers that want to keep a result simply don't recycle it — buffers
//    are plain std::vector<double>s, owned by whoever holds them, so
//    nothing leaks or double-frees when a window dies with its engine, is
//    shed, or crosses a fabric reshard handoff.
//  * Thread-safe (one mutex; critical sections are a pointer swap).
//    Shared between producers, engines, and shards via shared_ptr —
//    EngineConfig::payload_pool survives the fabric's resize() because
//    every rebuilt engine inherits the same pool object.
//
// ObjectPool<T> below is the same freelist discipline for whole nodes
// (the engine recycles its WorkItems through one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace wbsn::host {

struct CompressedWindow;
struct WindowResult;

struct PayloadPoolConfig {
  /// Maximum buffers retained per freelist (measurements / references /
  /// signals each).  Recycles beyond the cap free the buffer instead.
  std::size_t capacity = 1024;
  /// Initial capacity reserved in a freshly allocated measurement buffer
  /// (0 = let the producer's first fill size it).
  std::size_t measurement_reserve = 0;
  /// Likewise for reference and signal buffers (window_samples-sized).
  std::size_t signal_reserve = 0;
};

struct PayloadPoolStats {
  std::uint64_t hits = 0;      ///< Acquires served from a freelist.
  std::uint64_t misses = 0;    ///< Acquires that had to allocate.
  std::uint64_t recycled = 0;  ///< Buffers returned to a freelist.
  std::uint64_t dropped = 0;   ///< Recycles freed because the list was full.
};

class PayloadPool {
 public:
  explicit PayloadPool(PayloadPoolConfig cfg = {});

  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// One buffer, role-keyed so each freelist's capacities stay stable
  /// (measurements are m-sized, references/signals n-sized — mixing them
  /// would re-grow buffers forever).
  std::vector<double> acquire_measurements();
  std::vector<double> acquire_reference();
  std::vector<double> acquire_signal();

  /// A window shell with pooled measurement + reference buffers (cleared,
  /// capacity warm).  Metadata fields are default-initialized.
  CompressedWindow acquire_window();

  void recycle_measurements(std::vector<double>&& buf);
  void recycle_reference(std::vector<double>&& buf);
  void recycle_signal(std::vector<double>&& buf);

  /// Returns a consumed window's payload buffers to the pool (the engine
  /// calls this once the solve no longer needs the measurements).
  void recycle(CompressedWindow&& window);

  /// Returns a polled result's signal buffer to the pool.  Callers that
  /// keep the signal just don't call this — move-out semantics.
  void recycle(WindowResult&& result);

  PayloadPoolStats stats() const;
  const PayloadPoolConfig& config() const { return cfg_; }

 private:
  std::vector<double> acquire_from(std::vector<std::vector<double>>& list,
                                   std::size_t reserve);
  void recycle_to(std::vector<std::vector<double>>& list, std::vector<double>&& buf);

  PayloadPoolConfig cfg_;
  mutable std::mutex mutex_;
  std::vector<std::vector<double>> measurements_;
  std::vector<std::vector<double>> references_;
  std::vector<std::vector<double>> signals_;
  PayloadPoolStats stats_;
};

/// Fixed-capacity freelist of heap nodes: acquire() pops a recycled node
/// (or news one on a miss), recycle() pushes it back (or deletes it past
/// capacity).  The freelist vector is reserved up front, so steady-state
/// acquire/recycle cycles allocate nothing.  Thread-safe.
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(std::size_t capacity) : capacity_(capacity) {
    free_.reserve(capacity_);
  }

  ~ObjectPool() {
    for (T* obj : free_) delete obj;
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  T* acquire() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!free_.empty()) {
        T* obj = free_.back();
        free_.pop_back();
        ++hits_;
        return obj;
      }
      ++misses_;
    }
    return new T();
  }

  /// Takes ownership back.  The node is stored as-is: callers reset any
  /// state they don't want resurrected before recycling.
  void recycle(T* obj) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (free_.size() < capacity_) {
        free_.push_back(obj);
        ++recycled_;
        return;
      }
      ++dropped_;
    }
    delete obj;
  }

  PayloadPoolStats stats() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return {hits_, misses_, recycled_, dropped_};
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<T*> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t recycled_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace wbsn::host
