#include "host/slo_tracker.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::host {
namespace {

std::uint64_t saturating_us(double ms) {
  const double us = ms * 1000.0;
  if (!(us > 0.0)) return 0;  // Also catches NaN.
  if (us >= 9.0e18) return std::uint64_t{9000000000000000000ULL};
  return static_cast<std::uint64_t>(us);
}

}  // namespace

std::size_t SloTracker::bucket_index(std::uint64_t us) {
  if (us < kSub) return static_cast<std::size_t>(us);
  const unsigned msb = static_cast<unsigned>(std::bit_width(us)) - 1;
  const unsigned shift = msb - kSubBits;
  const std::size_t base = static_cast<std::size_t>(msb - kSubBits + 1) << kSubBits;
  const std::size_t offset = static_cast<std::size_t>(us >> shift) & (kSub - 1);
  return std::min(base + offset, kBuckets - 1);
}

double SloTracker::bucket_mid_us(std::size_t index) {
  if (index < kSub) return static_cast<double>(index);
  const std::size_t octave = (index >> kSubBits) - 1;
  const double lower = std::ldexp(1.0, static_cast<int>(octave + kSubBits)) +
                       std::ldexp(static_cast<double>(index & (kSub - 1)), static_cast<int>(octave));
  return lower + std::ldexp(0.5, static_cast<int>(octave));
}

void SloTracker::on_submit() {
  const std::uint64_t submitted = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Approximate under concurrency (the counters are read at slightly
  // different instants) but exact whenever submission is single-threaded.
  const std::uint64_t retired = retrieved_.load(std::memory_order_relaxed) +
                                shed_routine_.load(std::memory_order_relaxed) +
                                shed_urgent_.load(std::memory_order_relaxed);
  const std::uint64_t depth = submitted - std::min(retired, submitted);
  std::uint64_t seen = max_in_flight_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_in_flight_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

void SloTracker::on_complete(double latency_ms) {
  const std::uint64_t us = saturating_us(latency_ms);
  buckets_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen && !max_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
  }
  if (cfg_.deadline_ms > 0.0 && latency_ms > cfg_.deadline_ms) {
    violations_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SloTracker::on_retrieve() { retrieved_.fetch_add(1, std::memory_order_relaxed); }

void SloTracker::on_shed(bool urgent) {
  (urgent ? shed_urgent_ : shed_routine_).fetch_add(1, std::memory_order_relaxed);
}

void SloTracker::on_reject() { rejected_.fetch_add(1, std::memory_order_relaxed); }

void SloTracker::on_grouped(std::uint64_t n) {
  grouped_windows_.fetch_add(n, std::memory_order_relaxed);
}

void SloTracker::on_degraded() {
  degraded_windows_.fetch_add(1, std::memory_order_relaxed);
}

void SloTracker::merge_from(const SloTracker& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t count = other.buckets_[i].load(std::memory_order_relaxed);
    if (count > 0) buckets_[i].fetch_add(count, std::memory_order_relaxed);
  }
  submitted_.fetch_add(other.submitted_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  completed_.fetch_add(other.completed_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  retrieved_.fetch_add(other.retrieved_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  shed_routine_.fetch_add(other.shed_routine_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  shed_urgent_.fetch_add(other.shed_urgent_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  rejected_.fetch_add(other.rejected_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  violations_.fetch_add(other.violations_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  sum_us_.fetch_add(other.sum_us_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  grouped_windows_.fetch_add(other.grouped_windows_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  degraded_windows_.fetch_add(other.degraded_windows_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  const std::uint64_t other_max = other.max_us_.load(std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_us_.compare_exchange_weak(seen, other_max, std::memory_order_relaxed)) {
  }
  const std::uint64_t other_depth = other.max_in_flight_.load(std::memory_order_relaxed);
  seen = max_in_flight_.load(std::memory_order_relaxed);
  while (other_depth > seen &&
         !max_in_flight_.compare_exchange_weak(seen, other_depth, std::memory_order_relaxed)) {
  }
  if (other.start_ < start_) start_ = other.start_;
}

void SloTracker::drain_into(SloTracker& dest) {
  const auto move_counter = [](std::atomic<std::uint64_t>& from, std::atomic<std::uint64_t>& to) {
    const std::uint64_t taken = from.exchange(0, std::memory_order_relaxed);
    if (taken > 0) to.fetch_add(taken, std::memory_order_relaxed);
  };
  for (std::size_t i = 0; i < kBuckets; ++i) move_counter(buckets_[i], dest.buckets_[i]);
  move_counter(submitted_, dest.submitted_);
  move_counter(completed_, dest.completed_);
  move_counter(retrieved_, dest.retrieved_);
  move_counter(shed_routine_, dest.shed_routine_);
  move_counter(shed_urgent_, dest.shed_urgent_);
  move_counter(rejected_, dest.rejected_);
  move_counter(violations_, dest.violations_);
  move_counter(sum_us_, dest.sum_us_);
  move_counter(grouped_windows_, dest.grouped_windows_);
  move_counter(degraded_windows_, dest.degraded_windows_);
  // Maxima are not additive: take the max into dest and zero the source.
  const std::uint64_t taken_max = max_us_.exchange(0, std::memory_order_relaxed);
  std::uint64_t seen = dest.max_us_.load(std::memory_order_relaxed);
  while (taken_max > seen &&
         !dest.max_us_.compare_exchange_weak(seen, taken_max, std::memory_order_relaxed)) {
  }
  const std::uint64_t taken_depth = max_in_flight_.exchange(0, std::memory_order_relaxed);
  seen = dest.max_in_flight_.load(std::memory_order_relaxed);
  while (taken_depth > seen &&
         !dest.max_in_flight_.compare_exchange_weak(seen, taken_depth,
                                                    std::memory_order_relaxed)) {
  }
  if (start_ < dest.start_) dest.start_ = start_;
}

SloTrackerState SloTracker::extract_state() {
  SloTrackerState state;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t count = buckets_[i].exchange(0, std::memory_order_relaxed);
    if (count > 0) state.buckets.emplace_back(static_cast<std::uint32_t>(i), count);
  }
  state.submitted = submitted_.exchange(0, std::memory_order_relaxed);
  state.completed = completed_.exchange(0, std::memory_order_relaxed);
  state.retrieved = retrieved_.exchange(0, std::memory_order_relaxed);
  state.shed_routine = shed_routine_.exchange(0, std::memory_order_relaxed);
  state.shed_urgent = shed_urgent_.exchange(0, std::memory_order_relaxed);
  state.rejected = rejected_.exchange(0, std::memory_order_relaxed);
  state.violations = violations_.exchange(0, std::memory_order_relaxed);
  state.sum_us = sum_us_.exchange(0, std::memory_order_relaxed);
  state.max_us = max_us_.exchange(0, std::memory_order_relaxed);
  state.max_in_flight = max_in_flight_.exchange(0, std::memory_order_relaxed);
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  state.elapsed_us = elapsed.count() > 0
                         ? static_cast<std::uint64_t>(
                               std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                                   .count())
                         : 0;
  return state;
}

void SloTracker::absorb_state(const SloTrackerState& state) {
  for (const auto& [index, count] : state.buckets) {
    if (index < kBuckets && count > 0) {
      buckets_[index].fetch_add(count, std::memory_order_relaxed);
    }
  }
  submitted_.fetch_add(state.submitted, std::memory_order_relaxed);
  completed_.fetch_add(state.completed, std::memory_order_relaxed);
  retrieved_.fetch_add(state.retrieved, std::memory_order_relaxed);
  shed_routine_.fetch_add(state.shed_routine, std::memory_order_relaxed);
  shed_urgent_.fetch_add(state.shed_urgent, std::memory_order_relaxed);
  rejected_.fetch_add(state.rejected, std::memory_order_relaxed);
  violations_.fetch_add(state.violations, std::memory_order_relaxed);
  sum_us_.fetch_add(state.sum_us, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (state.max_us > seen &&
         !max_us_.compare_exchange_weak(seen, state.max_us, std::memory_order_relaxed)) {
  }
  seen = max_in_flight_.load(std::memory_order_relaxed);
  while (state.max_in_flight > seen &&
         !max_in_flight_.compare_exchange_weak(seen, state.max_in_flight,
                                               std::memory_order_relaxed)) {
  }
  // Back-date the throughput clock so elapsed covers the moved history.
  const auto imported_start =
      std::chrono::steady_clock::now() - std::chrono::microseconds(state.elapsed_us);
  if (imported_start < start_) start_ = imported_start;
}

SloSnapshot SloTracker::snapshot() const {
  SloSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.deadline_violations = violations_.load(std::memory_order_relaxed);
  snap.shed_routine = shed_routine_.load(std::memory_order_relaxed);
  snap.shed_urgent = shed_urgent_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.grouped_windows = grouped_windows_.load(std::memory_order_relaxed);
  snap.degraded_windows = degraded_windows_.load(std::memory_order_relaxed);
  const std::uint64_t retired = retrieved_.load(std::memory_order_relaxed) +
                                snap.shed_routine + snap.shed_urgent;
  snap.in_flight = snap.submitted - std::min(retired, snap.submitted);
  snap.max_in_flight = max_in_flight_.load(std::memory_order_relaxed);
  snap.max_ms = static_cast<double>(max_us_.load(std::memory_order_relaxed)) / 1000.0;
  snap.deadline_ms = cfg_.deadline_ms;

  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total > 0) {
    snap.mean_ms = static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
                   static_cast<double>(total) / 1000.0;
    const auto quantile = [&](double q) {
      const auto rank = static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(total)));
      std::uint64_t seen = 0;
      for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts[i];
        if (seen >= std::max<std::uint64_t>(rank, 1)) return bucket_mid_us(i) / 1000.0;
      }
      return snap.max_ms;
    };
    snap.p50_ms = quantile(0.50);
    snap.p95_ms = quantile(0.95);
    snap.p99_ms = quantile(0.99);
  }

  snap.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  snap.throughput_per_s =
      snap.elapsed_s > 0.0 ? static_cast<double>(snap.completed) / snap.elapsed_s : 0.0;
  return snap;
}

void SloTracker::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  submitted_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  retrieved_.store(0, std::memory_order_relaxed);
  shed_routine_.store(0, std::memory_order_relaxed);
  shed_urgent_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  violations_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
  max_in_flight_.store(0, std::memory_order_relaxed);
  grouped_windows_.store(0, std::memory_order_relaxed);
  degraded_windows_.store(0, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
}

}  // namespace wbsn::host
