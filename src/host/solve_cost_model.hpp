// SolveCostModel — per-(window shape, solve tier) FISTA cost estimates.
//
// The deadline-shed predictor and the degrade policy both need to price a
// queued window's solve before it runs: the predictor to forecast backlog
// wait, the policy to decide whether demoting routine windows to a cheaper
// tier (higher effective CR, capped iterations — the Figure-5 trade) can
// relieve pressure that would otherwise shed whole windows.  This model
// extends the engine's historical per-(m, n) solve-EWMA table with the
// tier dimension so "solve cheaper" has a measured price, not a guess.
//
// Estimates fall back along a chain, most- to least-specific:
//
//   1. the configured override (override_ms > 0) — operator-pinned cost;
//   2. the measured EWMA for (m, n, tier) — the exact operating point;
//   3. the measured EWMA for (m, n, tier 0) scaled by `tier_scale` (the
//      tier's iteration budget as a fraction of the full budget) — a
//      tier never yet run is priced off the full-fidelity measurement,
//      because FISTA cost is linear in iterations at fixed shape;
//   4. the shape-blind global EWMA, scaled the same way.
//
// Concurrency matches the table it replaces: a fixed-capacity, insert-only
// open-addressed array of atomic slots.  record() is lock-free and
// allocation-free (the solve hot path must not allocate); racy
// read-modify-writes across workers only blur an estimate.  Shapes beyond
// capacity simply fall back down the chain instead of growing the table.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace wbsn::host {

class SolveCostModel {
 public:
  /// Operator-pinned per-window solve cost, ms; > 0 short-circuits every
  /// measured estimate (EngineConfig::shed_solve_estimate_ms).
  double override_ms = 0.0;

  /// Folds one measured per-window sample (microseconds) into the
  /// (m, n, tier) EWMA and the global fallback.  alpha = 1/8.
  void record(std::uint32_t m, std::uint32_t n, std::uint8_t tier, std::uint64_t sample_us);

  /// Estimate for one solve of shape (m, n) at `tier`, in ms, along the
  /// fallback chain above.  `tier_scale` prices tiers with no
  /// measurements yet (see tier_scale()); pass 1.0 for tier 0.
  /// 0 when no signal exists at all.
  double estimate_ms(std::uint32_t m, std::uint32_t n, std::uint8_t tier,
                     double tier_scale = 1.0) const;

  /// The iteration-budget cost ratio of a tier versus the full solve:
  /// cap / full_iterations, clamped to [0.05, 1].  1.0 when the tier caps
  /// nothing (cap == 0 or cap >= full).  The floor keeps a pathological
  /// cap from predicting near-free solves (warm-up, debias, and memory
  /// traffic don't shrink with the iteration budget).
  static double tier_scale(std::uint32_t iteration_cap, std::uint32_t full_iterations);

  /// The measured (m, n, tier) EWMA in microseconds; 0 when unseen (or
  /// the table overflowed) — test/diagnostic surface.
  std::uint64_t measured_us(std::uint32_t m, std::uint32_t n, std::uint8_t tier) const;

  /// The shape-blind global EWMA in microseconds; 0 until any solve.
  std::uint64_t global_us() const { return global_us_.load(std::memory_order_relaxed); }

 private:
  // Key packing: m in the top 24 bits, n in the middle 32, tier in the low
  // 8 — (m << 40) | (n << 8) | tier.  Real fleet shapes are window sizes
  // (hundreds) and measurement counts well under 2^24; a shape that
  // doesn't fit skips the table and rides the global fallback.
  static std::uint64_t pack_key(std::uint32_t m, std::uint32_t n, std::uint8_t tier) {
    if (m >= (1u << 24)) return 0;
    return (static_cast<std::uint64_t>(m) << 40) |
           (static_cast<std::uint64_t>(n) << 8) | tier;
  }

  struct Slot {
    std::atomic<std::uint64_t> key{0};  ///< pack_key(); 0 = empty.
    std::atomic<std::uint64_t> ewma_us{0};
  };
  static constexpr std::size_t kSlots = 128;

  std::uint64_t lookup_us(std::uint64_t key) const;

  std::array<Slot, kSlots> slots_{};
  std::atomic<std::uint64_t> global_us_{0};
};

}  // namespace wbsn::host
