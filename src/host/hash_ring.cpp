#include "host/hash_ring.hpp"

#include <algorithm>

namespace wbsn::host {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashRing::vnode_point(std::size_t shard, std::size_t replica) {
  // Distinct 64-bit input per (shard, replica); the salt keeps virtual
  // nodes out of the (small-integer) patient input range so a vnode and a
  // patient never share a pre-image.
  constexpr std::uint64_t kVnodeSalt = 0x52494E47'00000000ULL;  // "RING"
  return splitmix64(kVnodeSalt ^ (static_cast<std::uint64_t>(shard) << 24) ^
                    static_cast<std::uint64_t>(replica));
}

HashRing::HashRing(std::size_t shards, std::size_t vnodes_per_shard)
    : shards_(shards), vnodes_per_shard_(std::max<std::size_t>(1, vnodes_per_shard)) {
  ring_.reserve(shards_ * vnodes_per_shard_);
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    for (std::size_t replica = 0; replica < vnodes_per_shard_; ++replica) {
      ring_.push_back({vnode_point(shard, replica), static_cast<std::uint32_t>(shard)});
    }
  }
  // Sort by (point, shard): the shard tie-break makes ownership fully
  // deterministic even in the astronomically unlikely event of two virtual
  // nodes landing on the same point.
  std::sort(ring_.begin(), ring_.end(), [](const Vnode& a, const Vnode& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

HashRing::HashRing(const std::vector<std::size_t>& shard_ids, std::size_t vnodes_per_shard)
    : shards_(shard_ids.size()),
      vnodes_per_shard_(std::max<std::size_t>(1, vnodes_per_shard)) {
  ring_.reserve(shards_ * vnodes_per_shard_);
  for (const std::size_t shard : shard_ids) {
    for (std::size_t replica = 0; replica < vnodes_per_shard_; ++replica) {
      ring_.push_back({vnode_point(shard, replica), static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Vnode& a, const Vnode& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

std::size_t HashRing::owner_of_point(std::uint64_t point) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Vnode& vnode, std::uint64_t p) { return vnode.point < p; });
  return it != ring_.end() ? it->shard : ring_.front().shard;  // Wrap.
}

}  // namespace wbsn::host
