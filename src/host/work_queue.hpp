// Bounded multi-producer/multi-consumer work queue for the host-side
// reconstruction engine (Dmitry Vyukov's bounded MPMC ring).  Push/pop are
// lock-free (a single CAS each on the uncontended path); blocking behavior
// is layered on top by the engine with a condition variable, keeping the
// hot path atomic-only.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace wbsn::host {

template <typename T>
class BoundedWorkQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit BoundedWorkQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  BoundedWorkQueue(const BoundedWorkQueue&) = delete;
  BoundedWorkQueue& operator=(const BoundedWorkQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Non-blocking: false when the ring is full.
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (diff < 0) {
        return false;  // Full.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking: false when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (diff < 0) {
        return false;  // Empty.
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Racy snapshot — only usable as a wakeup predicate, never for sizing.
  bool empty_approx() const {
    return head_.load(std::memory_order_acquire) >=
           tail_.load(std::memory_order_acquire);
  }

  /// Racy occupancy snapshot — for metrics/telemetry only (the counters
  /// are read at different instants, so the value can be transiently off
  /// by the number of concurrently active producers/consumers).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail > head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace wbsn::host
