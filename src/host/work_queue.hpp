// Work queues for the host-side reconstruction engine.
//
//  * BoundedWorkQueue — Dmitry Vyukov's bounded MPMC ring.  Push/pop are
//    lock-free (a single CAS each on the uncontended path).  The original
//    single-lane engine queue; kept for callers that want the atomic-only
//    hot path and FIFO semantics.
//  * RingDeque — grow-only circular buffer with deque semantics.  Unlike
//    std::deque (which allocates a fresh block every ~64 pointer pushes
//    even at steady occupancy), its storage is a single power-of-two array
//    that doubles on overflow and never shrinks, so a queue cycling at a
//    stable depth performs zero heap allocations.  The lanes below are
//    built on it — that is what makes the engine's submit path
//    allocation-free in steady state.
//  * TwoLaneWorkQueue — two FIFO lanes (urgent ahead of routine) under one
//    mutex.  Pop order is strict priority: every urgent window drains
//    before any routine one.  The mutex buys what a ring cannot offer:
//    exact backlog depth (batch auto-sizing), positional scans, and
//    mid-queue extraction (deadline-aware shed victims).  Critical
//    sections are a few pointer moves while the consumer's unit of work is
//    a millisecond-scale FISTA solve, so the lock is invisible in
//    profiles; blocking behavior stays layered on top by the engine.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace wbsn::host {

/// Grow-only circular buffer with deque semantics (push/pop at both the
/// front and the back, random access in pop order).  Capacity is a power
/// of two that doubles when full and never shrinks, so steady-state
/// cycling at any depth below the high-water mark allocates nothing.
/// Not thread-safe — callers lock (TwoLaneWorkQueue wraps it in a mutex).
template <typename T>
class RingDeque {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T value) {
    reserve_one();
    buf_[(head_ + size_) & mask()] = std::move(value);
    ++size_;
  }

  void push_front(T value) {
    reserve_one();
    head_ = (head_ + cap() - 1) & mask();
    buf_[head_] = std::move(value);
    ++size_;
  }

  T& front() { return buf_[head_]; }

  void pop_front() {
    buf_[head_] = T{};  // Drop the slot's payload (pointers: clears refs).
    head_ = (head_ + 1) & mask();
    --size_;
  }

  /// i-th element in pop order (0 = front).
  T& operator[](std::size_t i) { return buf_[(head_ + i) & mask()]; }

  /// Inserts before the i-th element in pop order (i == size() appends),
  /// shifting the back side right.
  void insert(std::size_t i, T value) {
    reserve_one();
    ++size_;
    for (std::size_t j = size_ - 1; j > i; --j) (*this)[j] = std::move((*this)[j - 1]);
    (*this)[i] = std::move(value);
  }

  /// Removes the i-th element in pop order, shifting the shorter side.
  void erase(std::size_t i) {
    if (i < size_ - i - 1) {
      for (std::size_t j = i; j > 0; --j) (*this)[j] = std::move((*this)[j - 1]);
      pop_front();
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j) (*this)[j] = std::move((*this)[j + 1]);
      buf_[(head_ + size_ - 1) & mask()] = T{};
      --size_;
    }
  }

  /// Storage high-water mark (test hook for the grow-only property).
  std::size_t capacity() const { return buf_.size(); }

 private:
  std::size_t cap() const { return buf_.size(); }
  std::size_t mask() const { return buf_.size() - 1; }

  void reserve_one() {
    if (size_ < cap()) return;
    const std::size_t next = cap() == 0 ? kInitialCapacity : cap() * 2;
    std::vector<T> grown(next);
    for (std::size_t i = 0; i < size_; ++i) grown[i] = std::move((*this)[i]);
    buf_ = std::move(grown);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 64;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

template <typename T>
class BoundedWorkQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit BoundedWorkQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  BoundedWorkQueue(const BoundedWorkQueue&) = delete;
  BoundedWorkQueue& operator=(const BoundedWorkQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Non-blocking: false when the ring is full.
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (diff < 0) {
        return false;  // Full.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking: false when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (diff < 0) {
        return false;  // Empty.
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Racy snapshot — only usable as a wakeup predicate, never for sizing.
  bool empty_approx() const {
    return head_.load(std::memory_order_acquire) >=
           tail_.load(std::memory_order_acquire);
  }

  /// Racy occupancy snapshot — for metrics/telemetry only (the counters
  /// are read at different instants, so the value can be transiently off
  /// by the number of concurrently active producers/consumers).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail > head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

/// Two-lane priority work queue: urgent items always pop before routine
/// ones, FIFO within each lane.  Unbounded (admission is the engine's
/// in-flight gate, not the container); thread-safe under one mutex.
/// Lanes are RingDeques, so cycling at a steady depth never allocates.
template <typename T>
class TwoLaneWorkQueue {
 public:
  TwoLaneWorkQueue() = default;
  TwoLaneWorkQueue(const TwoLaneWorkQueue&) = delete;
  TwoLaneWorkQueue& operator=(const TwoLaneWorkQueue&) = delete;

  void push(T value, bool urgent) {
    std::lock_guard<std::mutex> lk(mutex_);
    lane(urgent).push_back(std::move(value));
  }

  /// Re-inserts at the front of its lane — used when a consumer popped an
  /// item it cannot process yet (e.g. a foreign-matrix window in a batched
  /// pop), so the item keeps its queue age rather than going to the back.
  void push_front(T value, bool urgent) {
    std::lock_guard<std::mutex> lk(mutex_);
    lane(urgent).push_front(std::move(value));
  }

  /// Enqueues next to the last queued item of the same group when one
  /// exists (inserted right after it, preserving FIFO order within the
  /// group's run), else at the back of the lane.  `same_group(item)` tests
  /// membership.  Used by submit-time matrix-seed grouping: consumers that
  /// pop a contiguous run get a same-matrix batch without scanning.  The
  /// back-to-front scan is O(lane depth) worst case, but a grouped
  /// workload hits the match within a few slots from the back.
  template <typename SameGroupFn>
  void push_grouped(T value, bool urgent, SameGroupFn&& same_group) {
    std::lock_guard<std::mutex> lk(mutex_);
    RingDeque<T>& q = lane(urgent);
    for (std::size_t i = q.size(); i > 0; --i) {
      if (same_group(q[i - 1])) {
        q.insert(i, std::move(value));
        return;
      }
    }
    q.push_back(std::move(value));
  }

  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto* q : {&urgent_, &routine_}) {
      if (!q->empty()) {
        out = std::move(q->front());
        q->pop_front();
        return true;
      }
    }
    return false;
  }

  /// Pops every remaining item into `out` (appended) — shutdown cleanup.
  void drain_all(std::vector<T>& out) {
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto* q : {&urgent_, &routine_}) {
      while (!q->empty()) {
        out.push_back(std::move(q->front()));
        q->pop_front();
      }
    }
  }

  /// Pops up to `max` items in priority order into `out` (appended).
  /// Returns the number popped.
  std::size_t pop_some(std::vector<T>& out, std::size_t max) {
    std::lock_guard<std::mutex> lk(mutex_);
    std::size_t popped = 0;
    for (auto* q : {&urgent_, &routine_}) {
      while (popped < max && !q->empty()) {
        out.push_back(std::move(q->front()));
        q->pop_front();
        ++popped;
      }
    }
    return popped;
  }

  /// Removes and returns the queued item maximizing `score`, considering
  /// the routine lane and — when `include_urgent` — the urgent lane too.
  /// `score(item, position, urgent)` returns std::nullopt to disqualify;
  /// `position` is the item's place in overall pop order (urgent lane
  /// first), which is what a wait-time predictor needs.  Returns nullopt
  /// when no item qualifies.  Used to extract deadline-shed victims.
  template <typename ScoreFn>
  std::optional<T> extract_best(ScoreFn&& score, bool include_urgent) {
    std::lock_guard<std::mutex> lk(mutex_);
    RingDeque<T>* best_lane = nullptr;
    std::size_t best_index = 0;
    double best_score = 0.0;
    const auto scan = [&](RingDeque<T>& q, bool urgent, std::size_t base) {
      for (std::size_t i = 0; i < q.size(); ++i) {
        const auto s = score(q[i], base + i, urgent);
        if (!s.has_value()) continue;
        if (best_lane == nullptr || *s > best_score) {
          best_lane = &q;
          best_index = i;
          best_score = *s;
        }
      }
    };
    if (include_urgent) scan(urgent_, true, 0);
    scan(routine_, false, urgent_.size());
    if (best_lane == nullptr) return std::nullopt;
    T out = std::move((*best_lane)[best_index]);
    best_lane->erase(best_index);
    return out;
  }

  /// Visits every queued routine-lane item in pop order under the queue
  /// mutex.  `fn(item)` may mutate the item in place but must not enqueue,
  /// dequeue, or block.  Used by the degrade policy to demote queued
  /// routine windows to a cheaper solve tier; the urgent lane is
  /// deliberately unreachable from here (urgent windows keep full
  /// fidelity).
  template <typename Fn>
  void for_each_routine(Fn&& fn) {
    std::lock_guard<std::mutex> lk(mutex_);
    for (std::size_t i = 0; i < routine_.size(); ++i) fn(routine_[i]);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return urgent_.size() + routine_.size();
  }

  std::size_t lane_size(bool urgent) const {
    std::lock_guard<std::mutex> lk(mutex_);
    return urgent ? urgent_.size() : routine_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  RingDeque<T>& lane(bool urgent) { return urgent ? urgent_ : routine_; }

  mutable std::mutex mutex_;
  RingDeque<T> urgent_;
  RingDeque<T> routine_;
};

}  // namespace wbsn::host
