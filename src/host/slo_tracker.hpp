// Latency SLO tracking for the streaming reconstruction engine.
//
// Workers record one enqueue->complete latency per window into a
// lock-free log-bucketed histogram (power-of-two octaves split into 8
// sub-buckets, HdrHistogram-style, <= 12.5% relative quantile error), so
// the hot path is a handful of relaxed atomic increments — no mutex, no
// allocation.  snapshot() folds the histogram into p50/p95/p99/max/mean,
// throughput, in-flight depth, and deadline-violation counts.
//
// Counter reads in snapshot() are individually atomic but not taken at a
// single instant, so a snapshot raced against recording threads is
// approximate; once the engine is drained (quiesced) it is exact.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wbsn::host {

struct SloConfig {
  /// Enqueue->complete deadline per window; 0 disables violation counting.
  /// A natural choice is the real-time arrival period of one window
  /// (cs::window_period_ms): the decoder keeps up with live traffic iff it
  /// finishes each window before the next one lands.
  double deadline_ms = 0.0;
};

/// One coherent view of the tracker, in milliseconds.
struct SloSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_violations = 0;
  /// Windows dropped by deadline-aware shedding after admission, split by
  /// the victim's priority lane (the admission-time decision dropped a
  /// queued window predicted to miss instead of the new arrival).
  std::uint64_t shed_routine = 0;
  std::uint64_t shed_urgent = 0;
  /// Arrivals bounced at admission (binary backpressure: the engine was at
  /// capacity and no shed victim was available/eligible).  Rejected windows
  /// were never submitted, so they appear only here.
  std::uint64_t rejected = 0;
  std::uint64_t in_flight = 0;      ///< Submitted, not yet retrieved or shed.
  std::uint64_t max_in_flight = 0;  ///< High-water mark of in_flight.
  /// Windows destroyed by a shard crash: admitted, never retrieved, and
  /// unrecoverable (ReconstructionFabric::fail_shard).  No tracker records
  /// this — a dead shard can't — so it is filled by the fabric's failed
  /// accumulators in aggregate snapshots and stays 0 in every per-engine
  /// view.  Crash-proof conservation: submitted == completed + shed + lost
  /// + in_flight.
  std::uint64_t lost = 0;
  /// Windows solved inside a same-matrix batched FISTA pass of size >= 2
  /// (each member counts).  The observability hook for submit-time seed
  /// grouping: grouped_windows / completed is the batching hit rate.
  std::uint64_t grouped_windows = 0;
  /// Windows completed at a degraded solve tier (cs::SolveTier::tier != 0)
  /// — demoted by the engine's DegradePolicy, or submitted pre-degraded.
  /// The closed-loop observability hook: degraded_windows / completed is
  /// the fidelity-trade rate, and the urgent lane's count must stay 0
  /// (urgent windows always keep full fidelity).
  std::uint64_t degraded_windows = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;   ///< Exact (tracked outside the histogram).
  double mean_ms = 0.0;  ///< Exact (sum tracked in integer microseconds).
  double elapsed_s = 0.0;
  double throughput_per_s = 0.0;  ///< completed / elapsed since start/reset.
  double deadline_ms = 0.0;       ///< Echo of the configured deadline.
};

/// A tracker's counters and histogram as plain (non-atomic) values — the
/// process-crossing form of the drain_into handoff.  `buckets` holds only
/// the non-zero histogram bins as (index, count) pairs (the histogram is
/// sparse for any real workload), and the wall-clock anchor travels as
/// `elapsed_us` since steady_clock time points are meaningless in another
/// process.  Serialized by net/wire_format as the SLO_STATE payload.
struct SloTrackerState {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t shed_routine = 0;
  std::uint64_t shed_urgent = 0;
  std::uint64_t rejected = 0;
  std::uint64_t violations = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  std::uint64_t max_in_flight = 0;
  std::uint64_t elapsed_us = 0;  ///< Age of the tracker's throughput clock.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;  ///< Non-zero bins.

  bool empty() const {
    return submitted == 0 && completed == 0 && retrieved == 0 && shed_routine == 0 &&
           shed_urgent == 0 && rejected == 0 && violations == 0 && buckets.empty();
  }
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig cfg = {}) : cfg_(cfg) { reset(); }

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Re-targets the deadline.  For trackers that cannot take a config at
  /// construction (array members); must not race recording.
  void configure(SloConfig cfg) { cfg_ = cfg; }

  /// A window entered the engine.  Thread-safe.
  void on_submit();

  /// A window finished solving, `latency_ms` after it was submitted.
  /// Thread-safe and lock-free.
  void on_complete(double latency_ms);

  /// A completed window was handed back to the caller (poll/drain).
  void on_retrieve();

  /// A submitted window was dropped by deadline-aware shedding (it leaves
  /// the in-flight population without completing).  Thread-safe.
  void on_shed(bool urgent);

  /// An arrival was bounced at admission (binary backpressure, no shed
  /// victim).  The window was never on_submit()ed.  Thread-safe.
  void on_reject();

  /// `n` windows (>= 2) solved together in one same-matrix batched FISTA
  /// pass.  Engine-wide observability only: not part of SloTrackerState
  /// (that layout is frozen on the wire as SLO_STATE), so it does not
  /// migrate with a patient.  Thread-safe.
  void on_grouped(std::uint64_t n);

  /// A window completed at a degraded solve tier (tier != 0).  Like
  /// on_grouped, engine-wide observability only: not part of
  /// SloTrackerState (the SLO_STATE wire layout is frozen), so it does not
  /// migrate with a patient.  Thread-safe.
  void on_degraded();

  SloSnapshot snapshot() const;

  /// Adds `other`'s counters and latency histogram into this tracker, and
  /// adopts the earlier of the two start times (so elapsed/throughput span
  /// both).  Used by the fabric to fold per-shard trackers into one
  /// aggregate before snapshotting.  Same caveat as snapshot(): reads race
  /// concurrent recording on `other`, so an aggregate taken under traffic
  /// is approximate (exact once quiesced).  max_in_flight becomes the max
  /// of the per-tracker marks — a lower bound on the true aggregate
  /// high-water mark, since the marks need not be simultaneous.
  void merge_from(const SloTracker& other);

  /// Moves this tracker's counters and histogram into `dest` and zeroes
  /// them here (counter-by-counter exchange(0) + add, so each count lands
  /// in exactly one tracker — never both, never neither).  The handoff
  /// primitive behind live resharding: when a patient's shard ownership
  /// moves, the old shard's per-patient tracker is drained into the new
  /// shard's so the patient's history follows the patient.  Counts
  /// recorded into `this` concurrently with the drain may land on either
  /// side of the move, but are conserved; `dest` must not race a reset.
  void drain_into(SloTracker& dest);

  /// drain_into, but into a plain-value state that can cross a process
  /// boundary: every counter is exchange(0)'d out of this tracker and into
  /// the returned state, so (as with drain_into) each count lands in
  /// exactly one place — the conservation property the cross-machine SLO
  /// handoff inherits.  Counts recorded concurrently with the extraction
  /// may land on either side, but are never lost or doubled.
  SloTrackerState extract_state();

  /// Adds an extracted state into this tracker (fetch_add counters, fold
  /// histogram bins, max the maxima) and back-dates the throughput clock
  /// so it spans at least `state.elapsed_us`.  The receiving half of the
  /// cross-process handoff; absorbing an empty state is a no-op.
  void absorb_state(const SloTrackerState& state);

  /// Clears all counters and restarts the throughput clock.  Must not run
  /// concurrently with recording.
  void reset();

  double deadline_ms() const { return cfg_.deadline_ms; }

 private:
  // 8 sub-buckets per octave.  Indices 0..7 are exact (one bucket per
  // microsecond); every later octave [2^k, 2^(k+1)) is split into 8.
  static constexpr unsigned kSubBits = 3;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  // Octaves up to 2^41 us (~25 days) before the index clamps.
  static constexpr std::size_t kBuckets = kSub * 40;

  static std::size_t bucket_index(std::uint64_t us);
  static double bucket_mid_us(std::size_t index);

  SloConfig cfg_;
  std::chrono::steady_clock::time_point start_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> retrieved_{0};
  std::atomic<std::uint64_t> shed_routine_{0};
  std::atomic<std::uint64_t> shed_urgent_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
  std::atomic<std::uint64_t> max_in_flight_{0};
  std::atomic<std::uint64_t> grouped_windows_{0};
  std::atomic<std::uint64_t> degraded_windows_{0};
};

}  // namespace wbsn::host
