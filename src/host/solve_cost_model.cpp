#include "host/solve_cost_model.hpp"

#include <algorithm>

namespace wbsn::host {

namespace {

void fold(std::atomic<std::uint64_t>& ewma, std::uint64_t sample_us) {
  const std::uint64_t prev_us = ewma.load(std::memory_order_relaxed);
  ewma.store(prev_us == 0 ? sample_us : (prev_us * 7 + sample_us) / 8,
             std::memory_order_relaxed);
}

}  // namespace

double SolveCostModel::tier_scale(std::uint32_t iteration_cap, std::uint32_t full_iterations) {
  if (iteration_cap == 0 || full_iterations == 0 || iteration_cap >= full_iterations) {
    return 1.0;
  }
  const double ratio =
      static_cast<double>(iteration_cap) / static_cast<double>(full_iterations);
  return std::clamp(ratio, 0.05, 1.0);
}

void SolveCostModel::record(std::uint32_t m, std::uint32_t n, std::uint8_t tier,
                            std::uint64_t sample_us) {
  fold(global_us_, sample_us);
  const std::uint64_t key = pack_key(m, n, tier);
  if (key == 0) return;  // Shape doesn't pack: the global EWMA carries it.
  const std::size_t start = static_cast<std::size_t>(key) % kSlots;
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    Slot& slot = slots_[(start + probe) % kSlots];
    std::uint64_t expected = 0;
    if (slot.key.load(std::memory_order_acquire) == key ||
        slot.key.compare_exchange_strong(expected, key, std::memory_order_acq_rel)) {
      if (slot.key.load(std::memory_order_acquire) != key) continue;  // Lost the race.
      fold(slot.ewma_us, sample_us);
      return;
    }
  }
  // Table full of other keys: the global EWMA carries this one.
}

std::uint64_t SolveCostModel::lookup_us(std::uint64_t key) const {
  if (key == 0) return 0;
  const std::size_t start = static_cast<std::size_t>(key) % kSlots;
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    const Slot& slot = slots_[(start + probe) % kSlots];
    const std::uint64_t slot_key = slot.key.load(std::memory_order_acquire);
    if (slot_key == key) return slot.ewma_us.load(std::memory_order_relaxed);
    if (slot_key == 0) return 0;  // Insert-only table: the probe chain ends here.
  }
  return 0;
}

std::uint64_t SolveCostModel::measured_us(std::uint32_t m, std::uint32_t n,
                                          std::uint8_t tier) const {
  return lookup_us(pack_key(m, n, tier));
}

double SolveCostModel::estimate_ms(std::uint32_t m, std::uint32_t n, std::uint8_t tier,
                                   double tier_scale) const {
  if (override_ms > 0.0) return override_ms;
  if (const std::uint64_t us = lookup_us(pack_key(m, n, tier)); us > 0) {
    return static_cast<double>(us) / 1000.0;
  }
  if (tier != 0) {
    if (const std::uint64_t us = lookup_us(pack_key(m, n, 0)); us > 0) {
      return static_cast<double>(us) / 1000.0 * tier_scale;
    }
  }
  const double scale = tier != 0 ? tier_scale : 1.0;
  return static_cast<double>(global_us_.load(std::memory_order_relaxed)) / 1000.0 * scale;
}

}  // namespace wbsn::host
