#include "host/payload_pool.hpp"

#include "host/reconstruction_engine.hpp"

namespace wbsn::host {

PayloadPool::PayloadPool(PayloadPoolConfig cfg) : cfg_(cfg) {
  measurements_.reserve(cfg_.capacity);
  references_.reserve(cfg_.capacity);
  signals_.reserve(cfg_.capacity);
}

std::vector<double> PayloadPool::acquire_from(std::vector<std::vector<double>>& list,
                                              std::size_t reserve) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!list.empty()) {
      std::vector<double> buf = std::move(list.back());
      list.pop_back();
      ++stats_.hits;
      return buf;
    }
    ++stats_.misses;
  }
  std::vector<double> buf;
  if (reserve > 0) buf.reserve(reserve);
  return buf;
}

void PayloadPool::recycle_to(std::vector<std::vector<double>>& list,
                             std::vector<double>&& buf) {
  buf.clear();  // Size 0, capacity kept — the whole point.
  std::lock_guard<std::mutex> lk(mutex_);
  if (list.size() < cfg_.capacity) {
    list.push_back(std::move(buf));
    ++stats_.recycled;
  } else {
    ++stats_.dropped;  // `buf` frees on scope exit.
  }
}

std::vector<double> PayloadPool::acquire_measurements() {
  return acquire_from(measurements_, cfg_.measurement_reserve);
}

std::vector<double> PayloadPool::acquire_reference() {
  return acquire_from(references_, cfg_.signal_reserve);
}

std::vector<double> PayloadPool::acquire_signal() {
  return acquire_from(signals_, cfg_.signal_reserve);
}

CompressedWindow PayloadPool::acquire_window() {
  CompressedWindow window;
  window.measurements = acquire_measurements();
  window.reference = acquire_reference();
  return window;
}

void PayloadPool::recycle_measurements(std::vector<double>&& buf) {
  recycle_to(measurements_, std::move(buf));
}

void PayloadPool::recycle_reference(std::vector<double>&& buf) {
  recycle_to(references_, std::move(buf));
}

void PayloadPool::recycle_signal(std::vector<double>&& buf) {
  recycle_to(signals_, std::move(buf));
}

void PayloadPool::recycle(CompressedWindow&& window) {
  recycle_measurements(std::move(window.measurements));
  // Windows without a reference recycle an empty (capacity-0) buffer —
  // harmless: it comes back as good as a fresh miss, without the miss.
  recycle_reference(std::move(window.reference));
}

void PayloadPool::recycle(WindowResult&& result) {
  recycle_signal(std::move(result.signal));
}

PayloadPoolStats PayloadPool::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

}  // namespace wbsn::host
