#include "host/reconstruction_fabric.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace wbsn::host {
namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ReconstructionFabric::ReconstructionFabric(FabricConfig cfg) : cfg_(cfg) {
  const int shards = std::max(1, cfg_.shards);
  cfg_.vnodes_per_shard = std::max(1, cfg_.vnodes_per_shard);
  ring_ = HashRing(static_cast<std::size_t>(shards),
                   static_cast<std::size_t>(cfg_.vnodes_per_shard));
  active_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    active_.push_back(std::make_shared<ReconstructionEngine>(cfg_.engine));
  }
  reaped_slo_.configure(cfg_.engine.slo);
  for (auto& tracker : reaped_lane_slo_) tracker.configure(cfg_.engine.slo);
}

ReconstructionFabric::~ReconstructionFabric() = default;

std::size_t ReconstructionFabric::shard_count() const {
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  return active_.size();
}

std::uint32_t ReconstructionFabric::epoch() const {
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  return epoch_;
}

std::size_t ReconstructionFabric::shard_of(std::uint32_t patient_id) const {
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  return ring_.owner(patient_id);
}

ReconstructionEngine& ReconstructionFabric::shard(std::size_t index) {
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  if (index >= active_.size() || !active_[index]) {
    throw std::out_of_range("shard index not active");
  }
  return *active_[index];
}

const ReconstructionEngine& ReconstructionFabric::shard(std::size_t index) const {
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  if (index >= active_.size() || !active_[index]) {
    throw std::out_of_range("shard index not active");
  }
  return *active_[index];
}

std::size_t ReconstructionFabric::live_shard_count() const {
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  std::size_t live = 0;
  for (const auto& engine : active_) {
    if (engine) ++live;
  }
  return live;
}

void ReconstructionFabric::note_patient(std::uint32_t patient_id) {
  std::lock_guard<std::mutex> lk(patients_mutex_);
  patients_.insert(patient_id);
}

std::optional<std::uint64_t> ReconstructionFabric::try_submit(CompressedWindow&& window) {
  // The shared lock is held across the engine call: a resize's table swap
  // therefore happens-before or happens-after any submission, never in
  // between routing and admission — an admitted window is always visible
  // to the reshard's drain, and a retired shard can never receive one.
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  const std::size_t shard = ring_.owner(window.patient_id);
  window.route_tag = epoch_;
  const std::uint32_t patient_id = window.patient_id;
  const auto local = active_[shard]->try_submit(std::move(window));
  if (!local.has_value()) return std::nullopt;
  note_patient(patient_id);
  return compose_ticket(epoch_, shard, *local);
}

std::uint64_t ReconstructionFabric::submit(CompressedWindow window) {
  // Like try_submit, the shared lock covers the engine call; a submit
  // waiting out backpressure stalls a concurrent resize's table swap (the
  // shard's workers drain the backlog without any fabric lock, so both
  // always make progress), which keeps the no-straggler guarantee above.
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  const std::size_t shard = ring_.owner(window.patient_id);
  window.route_tag = epoch_;
  const std::uint32_t patient_id = window.patient_id;
  const std::uint64_t local = active_[shard]->submit(std::move(window));
  note_patient(patient_id);
  return compose_ticket(epoch_, shard, local);
}

std::vector<std::pair<std::size_t, std::shared_ptr<ReconstructionEngine>>>
ReconstructionFabric::engines_snapshot() const {
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  std::vector<std::pair<std::size_t, std::shared_ptr<ReconstructionEngine>>> out;
  out.reserve(active_.size() + retired_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]) out.emplace_back(i, active_[i]);  // Skip crash-failed holes.
  }
  for (const auto& retired : retired_) out.emplace_back(retired.index, retired.engine);
  return out;
}

std::optional<WindowResult> ReconstructionFabric::poll() {
  // Swept under the shared lock (like the submit paths) rather than via a
  // snapshot copy: polling is the hot retrieval path and usually finds
  // nothing, so it must not pay an allocation + refcount churn per call.
  // A resize's table swap simply waits out the sweep.
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  const std::size_t total = active_.size() + retired_.size();
  const auto engine_at = [&](std::size_t i) -> std::pair<std::size_t, ReconstructionEngine*> {
    if (i < active_.size()) return {i, active_[i].get()};
    const auto& retired = retired_[i - active_.size()];
    return {retired.index, retired.engine.get()};
  };
  const std::size_t start = next_poll_shard_.fetch_add(1, std::memory_order_relaxed) % total;
  for (std::size_t i = 0; i < total; ++i) {
    const auto [index, engine] = engine_at((start + i) % total);
    if (engine == nullptr) continue;  // Crash-failed hole: nothing to give.
    if (auto result = engine->poll()) {
      result->ticket = compose_ticket(result->route_tag, index, result->ticket);
      return result;
    }
  }
  return std::nullopt;
}

std::vector<WindowResult> ReconstructionFabric::drain() {
  std::vector<WindowResult> out;
  for (const auto& [index, engine] : engines_snapshot()) {
    auto results = engine->drain();
    out.reserve(out.size() + results.size());
    for (auto& result : results) {
      result.ticket = compose_ticket(result.route_tag, index, result.ticket);
      out.push_back(std::move(result));
    }
  }
  // A full drain leaves retired shards with nothing left to give back.
  std::lock_guard<std::mutex> control(control_mutex_);
  reap_quiesced_locked();
  return out;
}

std::size_t ReconstructionFabric::in_flight() const {
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  std::size_t total = 0;
  for (const auto& engine : active_) {
    if (engine) total += engine->in_flight();
  }
  for (const auto& retired : retired_) total += retired.engine->in_flight();
  return total;
}

ResizeReport ReconstructionFabric::resize(int new_shards) {
  std::lock_guard<std::mutex> control(control_mutex_);
  ResizeReport report;
  const auto target = static_cast<std::size_t>(std::max(1, new_shards));

  // Topology only changes under control_mutex_, so these reads are stable
  // for the whole resize even without the reader lock.
  std::vector<std::shared_ptr<ReconstructionEngine>> old_active;
  HashRing old_ring;
  {
    std::shared_lock<std::shared_mutex> lk(topology_mutex_);
    old_active = active_;
    old_ring = ring_;
  }
  const std::size_t before = old_active.size();
  report.shards_before = before;
  report.shards_after = target;

  HashRing new_ring(target, static_cast<std::size_t>(cfg_.vnodes_per_shard));

  // New shard list: surviving engines keep their index (and their warm
  // caches), new indices get fresh engines, removed indices retire.  A
  // crash-failed hole inside the target range is re-provisioned with a
  // fresh engine — resize() is also the recovery path that restores
  // capacity after a failover.
  std::vector<std::shared_ptr<ReconstructionEngine>> new_active;
  new_active.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    new_active.push_back(i < before && old_active[i]
                             ? old_active[i]
                             : std::make_shared<ReconstructionEngine>(cfg_.engine));
  }
  std::vector<RetiredShard> newly_retired;
  for (std::size_t i = target; i < before; ++i) {
    if (old_active[i]) newly_retired.push_back({i, old_active[i]});
  }
  report.retired_shards = newly_retired.size();

  // Flip.  One writer critical section: every submission before it was
  // fully admitted under the old table (the submit paths hold the reader
  // lock across admission), every one after it routes and epoch-tags by
  // the new table.
  {
    std::unique_lock<std::shared_mutex> lk(topology_mutex_);
    ++epoch_;
    ring_ = new_ring;
    active_ = new_active;
    retired_.insert(retired_.end(), std::make_move_iterator(newly_retired.begin()),
                    std::make_move_iterator(newly_retired.end()));
    report.epoch = epoch_;
  }

  // Movers are computed after the flip, so the registry is guaranteed to
  // contain every patient admitted under the old epoch.  Patients first
  // seen after the flip route by the new ring already; scanning them too
  // is a harmless no-op (nothing pending, nothing to extract, on their
  // old-ring shard).
  std::vector<std::uint32_t> moved;
  {
    std::lock_guard<std::mutex> lk(patients_mutex_);
    report.known_patients = patients_.size();
    for (const std::uint32_t patient : patients_) {
      if (old_ring.owner(patient) != new_ring.owner(patient)) moved.push_back(patient);
    }
  }
  std::sort(moved.begin(), moved.end());  // Deterministic handoff order.
  report.moved_patients = moved.size();

  // Drain + handoff, outside every fabric lock: ingest to unmoved
  // patients continues at full rate while the movers' backlogs finish
  // where they started.
  for (const std::uint32_t patient : moved) {
    const auto& source = old_active[old_ring.owner(patient)];
    source->drain_patient(patient);
    if (auto tracker = source->extract_patient_slo(patient)) {
      const std::size_t destination = new_ring.owner(patient);
      if (new_active[destination]->adopt_patient_slo(patient, std::move(tracker))) {
        ++report.slo_handoffs;
      }
    }
  }

  report.reaped_shards = reap_quiesced_locked();
  return report;
}

FailoverReport ReconstructionFabric::fail_shard(std::size_t index) {
  std::lock_guard<std::mutex> control(control_mutex_);
  FailoverReport report;
  report.failed_shard = index;

  std::vector<std::shared_ptr<ReconstructionEngine>> old_active;
  HashRing old_ring;
  {
    std::shared_lock<std::shared_mutex> lk(topology_mutex_);
    old_active = active_;
    old_ring = ring_;
  }
  if (index >= old_active.size() || !old_active[index]) {
    throw std::out_of_range("fail_shard: not a live shard");
  }
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < old_active.size(); ++i) {
    if (i != index && old_active[i]) survivors.push_back(i);
  }
  if (survivors.empty()) {
    throw std::invalid_argument("fail_shard: no survivors to re-home onto");
  }
  report.live_shards = survivors.size();

  // Subset ring over the survivors: vnode positions depend only on
  // (shard, replica), so this is the old ring minus the dead shard's
  // points — exactly its patients re-home, everyone else stays put, and
  // every survivor keeps the index its tickets were composed with.
  HashRing new_ring(survivors, static_cast<std::size_t>(cfg_.vnodes_per_shard));

  // Flip, leaving a hole at the dead slot (indices are ticket identity).
  // From here on nothing can reach the dead engine: no route resolves to
  // it, and every sweep skips null slots — so submitted/shed/retrieved
  // are frozen the moment the writer lock releases.
  std::shared_ptr<ReconstructionEngine> dead;
  {
    std::unique_lock<std::shared_mutex> lk(topology_mutex_);
    ++epoch_;
    ring_ = new_ring;
    dead = std::move(active_[index]);
    report.epoch = epoch_;
  }

  {
    std::lock_guard<std::mutex> lk(patients_mutex_);
    for (const std::uint32_t patient : patients_) {
      if (old_ring.owner(patient) == index) ++report.moved_patients;
    }
  }

  // Freeze-and-fold, the crash contract: results never retrieved are
  // unrecoverable, so `retrieved` stands in for completed and the rest of
  // the admitted windows are lost.  Workers may still be solving while
  // this snapshot is read; that can only migrate windows between the shed
  // and lost buckets (both terms of the same identity), never change the
  // total — completed-but-unretrieved work is lost either way.
  const SloSnapshot snap = dead->slo().snapshot();
  const std::uint64_t shed = snap.shed_routine + snap.shed_urgent;
  const std::uint64_t retrieved =
      snap.submitted - std::min(snap.submitted, shed + snap.in_flight);
  report.lost_windows = snap.in_flight;
  {
    std::unique_lock<std::shared_mutex> lk(topology_mutex_);
    failed_.submitted += snap.submitted;
    failed_.completed += retrieved;
    failed_.shed_routine += snap.shed_routine;
    failed_.shed_urgent += snap.shed_urgent;
    failed_.rejected += snap.rejected;
    failed_.deadline_violations += snap.deadline_violations;
    failed_.lost += snap.in_flight;
  }
  // Destroy outside every lock: the destructor joins the workers and
  // abandons the backlog — the in-process equivalent of kill -9.  The
  // per-patient trackers and latency histograms die here.
  dead.reset();
  return report;
}

std::size_t ReconstructionFabric::reap_quiesced_locked() {
  std::unique_lock<std::shared_mutex> lk(topology_mutex_);
  std::size_t reaped = 0;
  for (auto it = retired_.begin(); it != retired_.end();) {
    ReconstructionEngine& engine = *it->engine;
    // Quiesced: nothing unsolved and nothing unretrieved.  No new work can
    // arrive (the shard left the routing table at its retirement flip), so
    // the counters are final; fold them into the reaped accumulators and
    // let the engine go.
    if (engine.in_flight() != 0 || engine.ready_results() != 0) {
      ++it;
      continue;
    }
    reaped_slo_.merge_from(engine.slo());
    reaped_lane_slo_[0].merge_from(engine.lane_slo(cs::WindowPriority::kRoutine));
    reaped_lane_slo_[1].merge_from(engine.lane_slo(cs::WindowPriority::kUrgent));
    it = retired_.erase(it);
    ++reaped;
  }
  return reaped;
}

SloSnapshot ReconstructionFabric::slo_snapshot() const {
  SloTracker merged(cfg_.engine.slo);
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  for (const auto& engine : active_) {
    if (engine) merged.merge_from(engine->slo());
  }
  for (const auto& retired : retired_) merged.merge_from(retired.engine->slo());
  // reaped_slo_ and failed_ are only written under the exclusive topology
  // lock, so the shared lock held here makes these reads safe.
  merged.merge_from(reaped_slo_);
  SloSnapshot snap = merged.snapshot();
  // Crash-failed shards contribute raw counters, not a mergeable tracker:
  // their histograms died with them, their unretrieved windows are `lost`,
  // and their in-flight is zero by definition (nothing is coming back).
  snap.submitted += failed_.submitted;
  snap.completed += failed_.completed;
  snap.shed_routine += failed_.shed_routine;
  snap.shed_urgent += failed_.shed_urgent;
  snap.rejected += failed_.rejected;
  snap.deadline_violations += failed_.deadline_violations;
  snap.lost = failed_.lost;
  return snap;
}

SloSnapshot ReconstructionFabric::lane_slo_snapshot(cs::WindowPriority priority) const {
  SloTracker merged(cfg_.engine.slo);
  const std::size_t lane = priority == cs::WindowPriority::kUrgent ? 1 : 0;
  std::shared_lock<std::shared_mutex> lk(topology_mutex_);
  for (const auto& engine : active_) {
    if (engine) merged.merge_from(engine->lane_slo(priority));
  }
  for (const auto& retired : retired_) merged.merge_from(retired.engine->lane_slo(priority));
  merged.merge_from(reaped_lane_slo_[lane]);
  // No failed_ fold here: a dead shard's lane split below the shed/lost
  // line is unknowable (see FailedCounters) — lane views cover survivors.
  return merged.snapshot();
}

std::vector<ShardSlo> ReconstructionFabric::shard_slo_snapshots() const {
  std::vector<std::shared_ptr<ReconstructionEngine>> engines;
  {
    std::shared_lock<std::shared_mutex> lk(topology_mutex_);
    engines = active_;
  }
  std::vector<ShardSlo> out;
  out.reserve(engines.size());
  for (std::size_t shard = 0; shard < engines.size(); ++shard) {
    if (!engines[shard]) continue;  // Crash-failed hole keeps indices stable.
    out.push_back({shard, engines[shard]->slo().snapshot()});
  }
  return out;
}

std::vector<PatientSlo> ReconstructionFabric::patient_slo_snapshots() const {
  std::vector<PatientSlo> out;
  for (const auto& [index, engine] : engines_snapshot()) {
    auto per_shard = engine->patient_slo_snapshots();
    out.insert(out.end(), std::make_move_iterator(per_shard.begin()),
               std::make_move_iterator(per_shard.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const PatientSlo& a, const PatientSlo& b) { return a.patient_id < b.patient_id; });
  return out;
}

BatchResult ReconstructionFabric::reconstruct(std::span<const CompressedWindow> batch) {
  std::lock_guard<std::mutex> batch_guard(batch_mutex_);

  BatchResult out;
  out.windows.assign(batch.size(), WindowResult{});
  if (batch.empty()) return out;

  // Composite ticket -> input position, so shard-major completion-order
  // results land back in input order.  Stray tickets from streaming
  // submissions the caller never polled are discarded, as in the engine's
  // wrapper.
  std::unordered_map<std::uint64_t, std::size_t> slot_of;
  slot_of.reserve(batch.size());

  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    CompressedWindow copy = batch[i];
    slot_of.emplace(submit(std::move(copy)), i);
  }
  for (auto&& result : drain()) {
    const auto found = slot_of.find(result.ticket);
    if (found == slot_of.end()) continue;
    out.windows[found->second] = std::move(result);
  }
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.records_per_second =
      out.wall_seconds > 0.0 ? static_cast<double>(batch.size()) / out.wall_seconds : 0.0;
  out.patients = aggregate_patient_stats(out.windows);
  return out;
}

}  // namespace wbsn::host
