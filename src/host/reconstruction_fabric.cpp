#include "host/reconstruction_fabric.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

namespace wbsn::host {
namespace {

using Clock = std::chrono::steady_clock;

/// splitmix64 finalizer: a fast, well-mixed stable hash.  patient_id is a
/// dense small integer in most fleets; modulo alone would stripe patients
/// across shards in lockstep with id-assignment order, so mix first.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

ReconstructionFabric::ReconstructionFabric(FabricConfig cfg) : cfg_(cfg) {
  const int shards = std::max(1, cfg_.shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<ReconstructionEngine>(cfg_.engine));
  }
}

std::size_t ReconstructionFabric::shard_of(std::uint32_t patient_id) const {
  return static_cast<std::size_t>(splitmix64(patient_id) % shards_.size());
}

std::optional<std::uint64_t> ReconstructionFabric::try_submit(CompressedWindow&& window) {
  const std::size_t shard = shard_of(window.patient_id);
  const auto local = shards_[shard]->try_submit(std::move(window));
  if (!local.has_value()) return std::nullopt;
  return compose_ticket(shard, *local);
}

std::uint64_t ReconstructionFabric::submit(CompressedWindow window) {
  const std::size_t shard = shard_of(window.patient_id);
  return compose_ticket(shard, shards_[shard]->submit(std::move(window)));
}

std::optional<WindowResult> ReconstructionFabric::poll() {
  const std::size_t start =
      next_poll_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t shard = (start + i) % shards_.size();
    if (auto result = shards_[shard]->poll()) {
      result->ticket = compose_ticket(shard, result->ticket);
      return result;
    }
  }
  return std::nullopt;
}

std::vector<WindowResult> ReconstructionFabric::drain() {
  std::vector<WindowResult> out;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    auto results = shards_[shard]->drain();
    out.reserve(out.size() + results.size());
    for (auto& result : results) {
      result.ticket = compose_ticket(shard, result.ticket);
      out.push_back(std::move(result));
    }
  }
  return out;
}

std::size_t ReconstructionFabric::in_flight() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->in_flight();
  return total;
}

SloSnapshot ReconstructionFabric::slo_snapshot() const {
  SloTracker merged(cfg_.engine.slo);
  for (const auto& shard : shards_) merged.merge_from(shard->slo());
  return merged.snapshot();
}

SloSnapshot ReconstructionFabric::lane_slo_snapshot(cs::WindowPriority priority) const {
  SloTracker merged(cfg_.engine.slo);
  for (const auto& shard : shards_) merged.merge_from(shard->lane_slo(priority));
  return merged.snapshot();
}

std::vector<ShardSlo> ReconstructionFabric::shard_slo_snapshots() const {
  std::vector<ShardSlo> out;
  out.reserve(shards_.size());
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    out.push_back({shard, shards_[shard]->slo().snapshot()});
  }
  return out;
}

std::vector<PatientSlo> ReconstructionFabric::patient_slo_snapshots() const {
  std::vector<PatientSlo> out;
  for (const auto& shard : shards_) {
    auto per_shard = shard->patient_slo_snapshots();
    out.insert(out.end(), std::make_move_iterator(per_shard.begin()),
               std::make_move_iterator(per_shard.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const PatientSlo& a, const PatientSlo& b) { return a.patient_id < b.patient_id; });
  return out;
}

BatchResult ReconstructionFabric::reconstruct(std::span<const CompressedWindow> batch) {
  std::lock_guard<std::mutex> batch_guard(batch_mutex_);

  BatchResult out;
  out.windows.assign(batch.size(), WindowResult{});
  if (batch.empty()) return out;

  // Composite ticket -> input position, so shard-major completion-order
  // results land back in input order.  Stray tickets from streaming
  // submissions the caller never polled are discarded, as in the engine's
  // wrapper.
  std::unordered_map<std::uint64_t, std::size_t> slot_of;
  slot_of.reserve(batch.size());

  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    CompressedWindow copy = batch[i];
    slot_of.emplace(submit(std::move(copy)), i);
  }
  for (auto&& result : drain()) {
    const auto found = slot_of.find(result.ticket);
    if (found == slot_of.end()) continue;
    out.windows[found->second] = std::move(result);
  }
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.records_per_second =
      out.wall_seconds > 0.0 ? static_cast<double>(batch.size()) / out.wall_seconds : 0.0;
  out.patients = aggregate_patient_stats(out.windows);
  return out;
}

}  // namespace wbsn::host
