// Consistent-hash ring for patient -> shard routing.
//
// Mod-N routing (splitmix64(patient_id) % shards) re-routes almost every
// patient when the shard count changes: a fleet-wide cache flush and a
// fleet-wide SLO-history split on every elastic resize.  The ring fixes
// the blast radius: each shard owns `vnodes_per_shard` pseudo-random
// points on a 64-bit circle, a patient is owned by the first virtual node
// at or clockwise of its own hash point, and a virtual node's position is
// a pure function of (shard index, replica index) — independent of the
// shard *count*.  Growing from N to N+1 shards therefore only inserts the
// new shard's points: the only patients that move are the ones those new
// points capture (expected fraction 1/(N+1)); every other patient keeps
// its shard, its warm sensing-matrix cache, and its SLO history.
// Shrinking removes exactly the retired shards' points, scattering only
// their patients across the survivors.
//
// Everything here is deterministic: two rings built with the same
// (shards, vnodes_per_shard) are identical, so routing can be recomputed
// anywhere (tests, benches, a future thin network client) without asking
// the fabric.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wbsn::host {

/// splitmix64 finalizer: a fast, well-mixed stable hash.  patient_id is a
/// dense small integer in most fleets; using it raw would stripe patients
/// in lockstep with id-assignment order, so mix first.
std::uint64_t splitmix64(std::uint64_t x);

class HashRing {
 public:
  /// An empty ring owns nothing; owner() must not be called on it.
  HashRing() = default;

  /// Builds the ring for `shards` shards (indices 0..shards-1), each
  /// contributing `vnodes_per_shard` virtual nodes (clamped to >= 1).
  HashRing(std::size_t shards, std::size_t vnodes_per_shard);

  /// Builds the ring over an explicit (not necessarily contiguous) set of
  /// shard indices.  Because a virtual node's position depends only on
  /// (shard, replica), a ring over {0,1,3} is exactly the {0,1,2,3} ring
  /// with shard 2's points deleted: crash failover re-homes *only* the
  /// dead shard's patients, and every survivor keeps its index — which is
  /// what keeps composite tickets and per-shard SLO history valid across
  /// a failover epoch.
  HashRing(const std::vector<std::size_t>& shard_ids, std::size_t vnodes_per_shard);

  std::size_t shards() const { return shards_; }
  std::size_t vnodes_per_shard() const { return vnodes_per_shard_; }
  bool empty() const { return ring_.empty(); }

  /// The patient's point on the 64-bit circle.
  static std::uint64_t patient_point(std::uint32_t patient_id) {
    return splitmix64(patient_id);
  }

  /// Virtual-node position for (shard, replica): a pure function of its
  /// arguments, which is what makes the ring consistent across resizes.
  static std::uint64_t vnode_point(std::size_t shard, std::size_t replica);

  /// The shard owning `patient_id`: the first virtual node at or after the
  /// patient's point, wrapping at the top of the circle.
  std::size_t owner(std::uint32_t patient_id) const {
    return owner_of_point(patient_point(patient_id));
  }

  std::size_t owner_of_point(std::uint64_t point) const;

 private:
  struct Vnode {
    std::uint64_t point = 0;
    std::uint32_t shard = 0;
  };

  std::vector<Vnode> ring_;  ///< Sorted by (point, shard).
  std::size_t shards_ = 0;
  std::size_t vnodes_per_shard_ = 0;
};

}  // namespace wbsn::host
