// Process-wide heap-allocation counter for the zero-alloc gate.
//
// Built with -DWBSN_ALLOC_COUNTER=ON, alloc_meter.cpp replaces every
// global operator new/delete variant with a forwarding shim that bumps a
// relaxed atomic before malloc/free.  The alloc-gate CI job and the
// alloc_smoke bench read the counter around a steady-state streaming
// window and fail when allocations/window > 0 — turning the hot path's
// zero-allocation property from an anecdote into an enforced invariant.
//
// Off (the default), these accessors are constant-folded stubs: zero
// overhead, zero uncovered lines, and no interference with ASan/TSan
// (which interpose the same symbols; CMake refuses the combination).
#pragma once

#include <cstdint>

namespace wbsn::host {

#if defined(WBSN_ALLOC_COUNTER)
/// Total global operator-new calls (all variants) since process start.
std::uint64_t alloc_count() noexcept;
/// Total global operator-delete calls on non-null pointers.
std::uint64_t dealloc_count() noexcept;
inline constexpr bool alloc_counter_enabled() noexcept { return true; }
#else
inline std::uint64_t alloc_count() noexcept { return 0; }
inline std::uint64_t dealloc_count() noexcept { return 0; }
inline constexpr bool alloc_counter_enabled() noexcept { return false; }
#endif

}  // namespace wbsn::host
