// Pulse-arrival-time measurement and cuffless blood-pressure estimation
// (Section IV-C of the paper).
//
// PAT is the delay between the ECG R peak (electrical systole) and the
// arrival of the pressure pulse at a peripheral PPG probe.  Subtracting
// the pre-ejection period leaves the pulse transit time, whose inverse
// tracks pulse wave velocity and hence arterial pressure (Gesche et al.,
// 2012 — reference [20]).  The estimator here is the standard two-step:
// detect per-beat PPG pulse feet, pair them with R peaks, then map
// PAT -> MAP through a per-subject linear calibration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wbsn::core {

struct PatConfig {
  double fs = 250.0;
  double min_pat_s = 0.10;   ///< Physiological search window after R...
  double max_pat_s = 0.45;   ///< ...for the pulse foot.
};

/// Detects the pulse foot after each R peak: the point of maximum slope
/// acceleration (peak of the second difference) on the rising edge.
/// Returns one foot index per R peak (-1 when no pulse is found).
std::vector<std::int64_t> detect_pulse_feet(std::span<const double> ppg,
                                            std::span<const std::int64_t> r_peaks,
                                            const PatConfig& cfg = {});

/// Per-beat PAT series (seconds); skips beats without a detected foot.
struct PatSeries {
  std::vector<double> pat_s;
  std::vector<std::size_t> beat_index;  ///< Which R peak each PAT belongs to.
};

PatSeries compute_pat(std::span<const double> ppg, std::span<const std::int64_t> r_peaks,
                      const PatConfig& cfg = {});

/// Linear PAT -> MAP calibration (least squares on calibration pairs).
class BpEstimator {
 public:
  /// Fits map = a + b / pat (the hyperbolic PTT model linearized in 1/PAT,
  /// which is proportional to PWV).
  void calibrate(std::span<const double> pat_s, std::span<const double> map_mmhg);

  double estimate_map(double pat_s) const;
  bool calibrated() const { return calibrated_; }

  double coeff_a() const { return a_; }
  double coeff_b() const { return b_; }

 private:
  double a_ = 0.0;
  double b_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace wbsn::core
