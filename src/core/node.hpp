// The integrated wireless body sensor node.
//
// WbsnNode composes the whole stack the paper describes around Figure 1:
// acquisition (ADC model) -> optional on-node processing at a configurable
// abstraction level (raw streaming, compressed sensing, filtering +
// delineation, beat classification, AF alarms) -> packetization ->
// radio/energy accounting.  Raising the abstraction level shrinks the
// bytes on air and shifts energy from the radio into (much cheaper)
// computation — the core thesis of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cls/af_detect.hpp"
#include "cls/beat_classifier.hpp"
#include "cs/pipeline.hpp"
#include "delin/pipeline.hpp"
#include "dsp/opcount.hpp"
#include "energy/node.hpp"
#include "sig/adc.hpp"
#include "sig/types.hpp"

namespace wbsn::core {

/// Abstraction level of the transmitted data (Figure 1).
enum class OperatingMode {
  kRawStreaming,       ///< All samples, 12-bit packed.
  kCompressedSingle,   ///< Per-lead compressed-sensing measurements.
  kCompressedMulti,    ///< CS measurements for joint multi-lead decoding.
  kDelineation,        ///< Per-beat fiducial points.
  kClassification,     ///< Per-beat labels (plus R positions).
  kAfAlarm,            ///< Window-level rhythm flags only.
};

std::string to_string(OperatingMode mode);

struct NodeConfig {
  double fs = 250.0;
  std::size_t window_samples = 512;
  OperatingMode mode = OperatingMode::kRawStreaming;
  sig::AdcConfig adc{};
  double cs_cr_percent = 60.0;
  cs::CsPipelineConfig cs{};
  delin::PipelineConfig delineation{};
  cls::AfDetectorConfig af{};
};

/// What one processed window produced.
struct WindowOutput {
  std::uint32_t tx_payload_bytes = 0;
  dsp::OpCount processing_ops;
  std::vector<sig::BeatAnnotation> beats;     ///< Delineation modes only.
  std::vector<cls::BeatLabel> labels;         ///< Classification mode only.
  std::optional<bool> af_flag;                ///< AF-alarm mode only.
  energy::EnergyBreakdown energy;
};

class WbsnNode {
 public:
  explicit WbsnNode(NodeConfig cfg);

  /// Installs a trained classifier (required for kClassification).
  void set_classifier(std::shared_ptr<const cls::BeatClassifier> clf);
  /// Installs a trained AF detector (required for kAfAlarm).
  void set_af_detector(std::shared_ptr<const cls::AfDetector> det);

  /// Processes one multi-lead window of physical-unit samples (mV); each
  /// lead must have exactly cfg.window_samples entries.
  WindowOutput process_window(std::span<const std::vector<double>> leads_mv);

  const NodeConfig& config() const { return cfg_; }
  const energy::NodeEnergyModel& energy_model() const { return energy_; }
  energy::NodeEnergyModel& energy_model() { return energy_; }

 private:
  NodeConfig cfg_;
  energy::NodeEnergyModel energy_{};
  std::shared_ptr<const cls::BeatClassifier> classifier_;
  std::shared_ptr<const cls::AfDetector> af_detector_;
  // Beats carried across windows so rhythm analysis has history.
  std::vector<sig::BeatAnnotation> beat_history_;
  std::int64_t window_base_sample_ = 0;
};

/// Serialized sizes of the payload elements (documented wire format).
inline constexpr std::uint32_t kBytesPerRawSample12bit = 2;  // Packed pairwise: 1.5 rounded.
inline constexpr double kBitsPerMeasurement = 14.0;  // Sum of 4x 12-bit samples.
inline constexpr std::uint32_t kBytesPerDelineatedBeat = 20;  // 9 fiducials + label + R.
inline constexpr std::uint32_t kBytesPerClassifiedBeat = 3;   // R offset + label.
inline constexpr std::uint32_t kBytesPerAfFlag = 2;

/// Payload size of raw streaming for a window (12-bit samples packed 2
/// per 3 bytes).
std::uint32_t raw_payload_bytes(std::size_t samples, std::size_t leads);

}  // namespace wbsn::core
