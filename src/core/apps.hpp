// Application presets built on the node (Section II's scenarios).
//
// - SleepMonitor: beat-to-beat interval analytics per epoch with a simple
//   autonomic-balance staging heuristic (the "sleep state of airline
//   pilots" use case from the abstract).
// - ArrhythmiaMonitor: beat labels + AF windows turned into alarm events
//   (the SmartCardia deployment scenario of Section V).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cls/af_detect.hpp"
#include "cls/beat_classifier.hpp"
#include "cls/hrv.hpp"
#include "sig/types.hpp"

namespace wbsn::core {

/// Coarse sleep state from autonomic markers.
enum class SleepStage { kWake, kLight, kDeep };

std::string to_string(SleepStage stage);

struct SleepEpoch {
  double start_s = 0.0;
  cls::HrvTimeDomain time_domain;
  cls::HrvFrequencyDomain frequency_domain;
  SleepStage stage = SleepStage::kWake;
};

struct SleepMonitorConfig {
  double epoch_s = 120.0;
  // Staging heuristics: deep sleep shows low HR and HF (vagal) dominance.
  double wake_hr_bpm = 72.0;
  double deep_lf_hf_max = 1.0;
};

/// Splits a beat series into epochs and scores each.
std::vector<SleepEpoch> analyze_sleep(std::span<const sig::BeatAnnotation> beats, double fs,
                                      const SleepMonitorConfig& cfg = {});

/// Alarm-level output of the arrhythmia monitor.
struct ArrhythmiaEvent {
  enum class Kind { kPvcRun, kAfOnset, kAfEnd } kind;
  double time_s = 0.0;
  std::string description;
};

struct ArrhythmiaMonitorConfig {
  int pvc_run_length = 3;  ///< Consecutive PVCs that raise an alarm.
  cls::AfDetectorConfig af{};
};

/// Scans labeled beats plus AF windows for reportable events.
std::vector<ArrhythmiaEvent> detect_events(std::span<const sig::BeatAnnotation> beats,
                                           std::span<const cls::BeatLabel> labels,
                                           std::span<const cls::AfWindow> af_windows,
                                           double fs,
                                           const ArrhythmiaMonitorConfig& cfg = {});

}  // namespace wbsn::core
