#include "core/node.hpp"

#include <cassert>

#include "cs/sensing_matrix.hpp"

namespace wbsn::core {

std::string to_string(OperatingMode mode) {
  switch (mode) {
    case OperatingMode::kRawStreaming: return "raw-streaming";
    case OperatingMode::kCompressedSingle: return "cs-single-lead";
    case OperatingMode::kCompressedMulti: return "cs-multi-lead";
    case OperatingMode::kDelineation: return "delineation";
    case OperatingMode::kClassification: return "classification";
    case OperatingMode::kAfAlarm: return "af-alarm";
  }
  return "?";
}

std::uint32_t raw_payload_bytes(std::size_t samples, std::size_t leads) {
  // 12-bit samples packed two-per-three-bytes.
  const std::size_t total = samples * leads;
  return static_cast<std::uint32_t>((total * 3 + 1) / 2);
}

WbsnNode::WbsnNode(NodeConfig cfg) : cfg_(std::move(cfg)) {}

void WbsnNode::set_classifier(std::shared_ptr<const cls::BeatClassifier> clf) {
  classifier_ = std::move(clf);
}

void WbsnNode::set_af_detector(std::shared_ptr<const cls::AfDetector> det) {
  af_detector_ = std::move(det);
}

WindowOutput WbsnNode::process_window(std::span<const std::vector<double>> leads_mv) {
  assert(!leads_mv.empty());
  for (const auto& lead : leads_mv) {
    assert(lead.size() == cfg_.window_samples);
    (void)lead;
  }
  WindowOutput out;
  const std::size_t num_leads = leads_mv.size();
  const double window_s = static_cast<double>(cfg_.window_samples) / cfg_.fs;

  // Acquisition: every mode starts by digitizing all leads.
  std::vector<std::vector<std::int32_t>> counts;
  counts.reserve(num_leads);
  for (const auto& lead : leads_mv) counts.push_back(sig::quantize(lead, cfg_.adc));

  switch (cfg_.mode) {
    case OperatingMode::kRawStreaming: {
      out.tx_payload_bytes = raw_payload_bytes(cfg_.window_samples, num_leads);
      break;
    }
    case OperatingMode::kCompressedSingle:
    case OperatingMode::kCompressedMulti: {
      // CS encode per lead.  Single- and multi-lead modes differ in the
      // operating CR (the receiver's joint decoder tolerates a higher one)
      // and in the per-lead matrices used for the joint mode.
      const std::size_t m = cs::rows_for_cr(cfg_.cs_cr_percent, cfg_.window_samples);
      for (std::size_t l = 0; l < num_leads; ++l) {
        const std::uint64_t seed =
            cfg_.cs.matrix_seed + (cfg_.mode == OperatingMode::kCompressedMulti ? l : 0);
        sig::Rng rng(seed);
        const auto phi = cs::SensingMatrix::make_sparse_binary(m, cfg_.window_samples,
                                                               cfg_.cs.ones_per_column, rng);
        phi.encode(counts[l], &out.processing_ops);
        // Measurements are sums of ones_per_column 12-bit samples: 14 bits
        // suffice, bit-packed on the wire.
        out.tx_payload_bytes += static_cast<std::uint32_t>((m * 14 + 7) / 8);
      }
      break;
    }
    case OperatingMode::kDelineation:
    case OperatingMode::kClassification:
    case OperatingMode::kAfAlarm: {
      delin::PipelineConfig pcfg = cfg_.delineation;
      pcfg.fs = cfg_.fs;
      auto delineated = delin::run_delineation_pipeline(counts, pcfg);
      out.processing_ops += delineated.total_ops();

      if (cfg_.mode == OperatingMode::kDelineation) {
        out.tx_payload_bytes =
            static_cast<std::uint32_t>(delineated.beats.size()) * kBytesPerDelineatedBeat;
        out.beats = std::move(delineated.beats);
        break;
      }

      if (cfg_.mode == OperatingMode::kClassification) {
        assert(classifier_ != nullptr);
        // Combined signal for the morphology window: use the first lead's
        // filtered stream (the classifier was trained the same way).
        double rr_mean = 0.8;
        for (std::size_t b = 0; b < delineated.beats.size(); ++b) {
          const auto& beat = delineated.beats[b];
          const double rr_prev =
              b > 0 ? static_cast<double>(beat.r_peak - delineated.beats[b - 1].r_peak) /
                          cfg_.fs
                    : rr_mean;
          const double rr_next =
              b + 1 < delineated.beats.size()
                  ? static_cast<double>(delineated.beats[b + 1].r_peak - beat.r_peak) /
                        cfg_.fs
                  : rr_mean;
          rr_mean += 0.125 * (rr_prev - rr_mean);
          out.labels.push_back(classifier_->classify_linearized(
              counts[0], beat.r_peak, rr_prev, rr_next, rr_mean, &out.processing_ops));
        }
        out.tx_payload_bytes =
            static_cast<std::uint32_t>(out.labels.size()) * kBytesPerClassifiedBeat;
        out.beats = std::move(delineated.beats);
        break;
      }

      // AF alarm: accumulate beats across windows and decide when a full
      // detector window of history exists.
      assert(af_detector_ != nullptr);
      for (auto beat : delineated.beats) {
        beat.r_peak += window_base_sample_;
        beat_history_.push_back(beat);
      }
      const auto needed = static_cast<std::size_t>(af_detector_->config().window_beats);
      if (beat_history_.size() >= needed) {
        const auto tail = std::span<const sig::BeatAnnotation>(beat_history_)
                              .subspan(beat_history_.size() - needed, needed);
        const auto features =
            cls::compute_af_features(tail, cfg_.fs, af_detector_->config().entropy_bins,
                                     &out.processing_ops);
        const auto vec = features.as_vector();
        out.af_flag =
            af_detector_->fuzzy().classify_linearized(vec, &out.processing_ops) == 1;
        // Bound the history to what rhythm analysis needs.
        if (beat_history_.size() > 4 * needed) {
          beat_history_.erase(beat_history_.begin(),
                              beat_history_.end() - static_cast<long>(2 * needed));
        }
      }
      out.tx_payload_bytes = kBytesPerAfFlag;
      if (out.af_flag.value_or(false)) {
        // An alarm triggers a notification with context (Section V): the
        // last detector window's beat annotations are attached.
        out.tx_payload_bytes += static_cast<std::uint32_t>(needed) * kBytesPerClassifiedBeat;
      }
      break;
    }
  }

  window_base_sample_ += static_cast<std::int64_t>(cfg_.window_samples);
  out.energy = energy_.window_energy(out.tx_payload_bytes, out.processing_ops,
                                     cfg_.window_samples * num_leads, window_s);
  return out;
}

}  // namespace wbsn::core
