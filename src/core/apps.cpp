#include "core/apps.hpp"

#include <algorithm>

namespace wbsn::core {

std::string to_string(SleepStage stage) {
  switch (stage) {
    case SleepStage::kWake: return "wake";
    case SleepStage::kLight: return "light";
    case SleepStage::kDeep: return "deep";
  }
  return "?";
}

std::vector<SleepEpoch> analyze_sleep(std::span<const sig::BeatAnnotation> beats, double fs,
                                      const SleepMonitorConfig& cfg) {
  std::vector<SleepEpoch> epochs;
  if (beats.size() < 4) return epochs;

  std::size_t begin = 0;
  while (begin < beats.size()) {
    const double epoch_start_s = static_cast<double>(beats[begin].r_peak) / fs;
    std::size_t end = begin;
    while (end < beats.size() &&
           static_cast<double>(beats[end].r_peak) / fs < epoch_start_s + cfg.epoch_s) {
      ++end;
    }
    if (end - begin >= 16) {
      SleepEpoch epoch;
      epoch.start_s = epoch_start_s;
      std::vector<double> rr;
      rr.reserve(end - begin - 1);
      for (std::size_t i = begin + 1; i < end; ++i) {
        rr.push_back(static_cast<double>(beats[i].r_peak - beats[i - 1].r_peak) / fs);
      }
      epoch.time_domain = cls::compute_time_domain(rr);
      epoch.frequency_domain = cls::compute_frequency_domain(rr);
      if (epoch.time_domain.mean_hr_bpm >= cfg.wake_hr_bpm) {
        epoch.stage = SleepStage::kWake;
      } else if (epoch.frequency_domain.lf_hf_ratio <= cfg.deep_lf_hf_max) {
        epoch.stage = SleepStage::kDeep;
      } else {
        epoch.stage = SleepStage::kLight;
      }
      epochs.push_back(std::move(epoch));
    }
    begin = end;
  }
  return epochs;
}

std::vector<ArrhythmiaEvent> detect_events(std::span<const sig::BeatAnnotation> beats,
                                           std::span<const cls::BeatLabel> labels,
                                           std::span<const cls::AfWindow> af_windows,
                                           double fs,
                                           const ArrhythmiaMonitorConfig& cfg) {
  std::vector<ArrhythmiaEvent> events;

  // PVC runs.
  int run = 0;
  for (std::size_t i = 0; i < labels.size() && i < beats.size(); ++i) {
    if (labels[i] == cls::BeatLabel::kVentricular) {
      ++run;
      if (run == cfg.pvc_run_length) {
        events.push_back({ArrhythmiaEvent::Kind::kPvcRun,
                          static_cast<double>(beats[i].r_peak) / fs,
                          "run of " + std::to_string(run) + " PVCs"});
      }
    } else {
      run = 0;
    }
  }

  // AF episode boundaries from window decisions.
  bool in_af = false;
  for (const auto& w : af_windows) {
    const double t = w.first_beat < beats.size()
                         ? static_cast<double>(beats[w.first_beat].r_peak) / fs
                         : 0.0;
    if (w.decided_af && !in_af) {
      events.push_back({ArrhythmiaEvent::Kind::kAfOnset, t, "atrial fibrillation onset"});
      in_af = true;
    } else if (!w.decided_af && in_af) {
      events.push_back({ArrhythmiaEvent::Kind::kAfEnd, t, "atrial fibrillation end"});
      in_af = false;
    }
  }

  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.time_s < b.time_s; });
  return events;
}

}  // namespace wbsn::core
