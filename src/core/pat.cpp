#include "core/pat.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::core {

std::vector<std::int64_t> detect_pulse_feet(std::span<const double> ppg,
                                            std::span<const std::int64_t> r_peaks,
                                            const PatConfig& cfg) {
  std::vector<std::int64_t> feet;
  feet.reserve(r_peaks.size());
  const auto n = static_cast<std::int64_t>(ppg.size());
  for (std::int64_t r : r_peaks) {
    const std::int64_t lo = r + static_cast<std::int64_t>(cfg.min_pat_s * cfg.fs);
    const std::int64_t hi = r + static_cast<std::int64_t>(cfg.max_pat_s * cfg.fs);
    if (lo < 2 || hi + 2 >= n) {
      feet.push_back(-1);
      continue;
    }
    // Foot = maximum of the second difference (onset of the upstroke).
    std::int64_t best = -1;
    double best_val = 0.0;
    for (std::int64_t i = lo; i <= hi; ++i) {
      const double second_diff = ppg[static_cast<std::size_t>(i + 1)] -
                                 2.0 * ppg[static_cast<std::size_t>(i)] +
                                 ppg[static_cast<std::size_t>(i - 1)];
      if (second_diff > best_val) {
        best_val = second_diff;
        best = i;
      }
    }
    feet.push_back(best);
  }
  return feet;
}

PatSeries compute_pat(std::span<const double> ppg, std::span<const std::int64_t> r_peaks,
                      const PatConfig& cfg) {
  PatSeries series;
  const auto feet = detect_pulse_feet(ppg, r_peaks, cfg);
  for (std::size_t i = 0; i < r_peaks.size(); ++i) {
    if (feet[i] < 0) continue;
    series.pat_s.push_back(static_cast<double>(feet[i] - r_peaks[i]) / cfg.fs);
    series.beat_index.push_back(i);
  }
  return series;
}

void BpEstimator::calibrate(std::span<const double> pat_s, std::span<const double> map_mmhg) {
  // Least squares of map against x = 1/pat.
  const std::size_t n = std::min(pat_s.size(), map_mmhg.size());
  if (n < 2) return;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 1.0 / pat_s[i];
    sx += x;
    sy += map_mmhg[i];
    sxx += x * x;
    sxy += x * map_mmhg[i];
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return;
  b_ = (static_cast<double>(n) * sxy - sx * sy) / denom;
  a_ = (sy - b_ * sx) / static_cast<double>(n);
  calibrated_ = true;
}

double BpEstimator::estimate_map(double pat_s) const {
  return a_ + b_ / pat_s;
}

}  // namespace wbsn::core
