#include "mcsim/power.hpp"

namespace wbsn::mcsim {

PowerBreakdown price_execution(const SimStats& stats, int num_cores,
                               const PowerConfig& cfg) {
  PowerBreakdown power;
  const double slot_s = cfg.compute_slot_fraction * cfg.window_s;
  const double f_needed = static_cast<double>(stats.wall_cycles) / slot_s;
  const energy::DvfsPoint point = energy::dvfs_point_for(f_needed);
  power.f_hz = f_needed;
  power.vdd = point.vdd;

  const double scale = (point.vdd * point.vdd) / (cfg.vref * cfg.vref);
  const double e_core = cfg.e_core_cycle_ref * scale;
  const double e_imem = cfg.e_imem_access_ref * scale;
  const double e_dmem = cfg.e_dmem_access_ref * scale;

  const double core_energy =
      static_cast<double>(stats.active_core_cycles) * e_core +
      static_cast<double>(stats.idle_core_cycles) * e_core * cfg.idle_cycle_fraction;
  const double imem_energy = static_cast<double>(stats.imem_accesses) * e_imem;
  const double dmem_energy = static_cast<double>(stats.dmem_accesses) * e_dmem;

  // Average power over the full acquisition window (the system sleeps
  // outside the compute slot; leakage runs all the time).
  power.cores_w = core_energy / cfg.window_s;
  power.imem_w = imem_energy / cfg.window_s;
  power.dmem_w = dmem_energy / cfg.window_s;
  // Cores are power-gated outside the compute slot: one always-on core
  // (system services) pays full leakage, the others leak only while their
  // power domain is up.
  power.leakage_w =
      cfg.leakage_per_core_w *
      (1.0 + (num_cores - 1) * cfg.compute_slot_fraction);
  return power;
}

ScMcComparison compare_sc_mc(const KernelProfile& per_lead_profile, int num_leads,
                             const MachineConfig& mc_machine, const PowerConfig& cfg,
                             std::uint64_t seed) {
  ScMcComparison cmp;

  // Single core: all leads serialized on one core.
  KernelProfile serial = per_lead_profile;
  serial.instructions *= static_cast<std::uint64_t>(num_leads);
  MachineConfig sc_machine = mc_machine;
  sc_machine.num_cores = 1;
  const SimStats sc_stats = simulate_kernel(serial, sc_machine, seed);
  cmp.sc = price_execution(sc_stats, 1, cfg);
  cmp.sc.kernel = per_lead_profile.name;
  cmp.sc.config = "SC";

  // Multi core: one lead per core in lockstep.
  MachineConfig mc = mc_machine;
  mc.num_cores = num_leads;
  const SimStats mc_stats = simulate_kernel(per_lead_profile, mc, seed + 1);
  cmp.mc = price_execution(mc_stats, num_leads, cfg);
  cmp.mc.kernel = per_lead_profile.name;
  cmp.mc.config = "MC";
  return cmp;
}

}  // namespace wbsn::mcsim
