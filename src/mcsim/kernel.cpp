#include "mcsim/kernel.hpp"

#include <algorithm>

namespace wbsn::mcsim {

KernelProfile profile_from_ops(const std::string& name, const dsp::OpCount& ops,
                               double divergence_prob) {
  KernelProfile profile;
  profile.name = name;
  profile.instructions = ops.total();
  const auto total = static_cast<double>(std::max<std::uint64_t>(1, ops.total()));
  profile.load_fraction = static_cast<double>(ops.load) / total;
  profile.store_fraction = static_cast<double>(ops.store) / total;
  profile.branch_fraction = static_cast<double>(ops.branch + ops.cmp) / total;
  profile.divergence_prob = divergence_prob;
  return profile;
}

}  // namespace wbsn::mcsim
