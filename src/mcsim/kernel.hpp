// Kernel workload profiles for the multi-core simulator.
//
// Rather than hand-estimating workloads, profiles are derived from the
// *measured* OpCounts of the real kernels in this library (the same code
// whose accuracy the other benchmarks score): instruction counts and the
// load/store/branch mix come straight from instrumentation, and each
// kernel carries a divergence probability describing how often its
// data-dependent branches break SIMD lockstep (high for the comparison-
// heavy morphological filter, low for the straight-line random-projection
// classifier).
#pragma once

#include <cstdint>
#include <string>

#include "dsp/opcount.hpp"

namespace wbsn::mcsim {

struct KernelProfile {
  std::string name;
  std::uint64_t instructions = 0;   ///< Per core (one lead / one partition).
  double load_fraction = 0.2;
  double store_fraction = 0.1;
  double branch_fraction = 0.05;
  /// Probability that an executed branch diverges across cores.
  double divergence_prob = 0.1;
  /// Cycles of independent execution before the barrier recovers lockstep.
  std::uint32_t divergence_penalty = 10;
  /// Barrier cost (the paper's ISA-extension synchronization, Section IV-B).
  std::uint32_t barrier_cycles = 3;
};

/// Builds a profile from a measured per-lead operation count.
KernelProfile profile_from_ops(const std::string& name, const dsp::OpCount& ops,
                               double divergence_prob);

}  // namespace wbsn::mcsim
