// Cycle-approximate simulation of the synchronized multi-core WBSN
// processor of Figure 3 (Braojos et al., DATE 2014 — reference [18]).
//
// The architecture: N simple cores execute the same program over different
// data streams (one ECG lead each), kept in lockstep by lightweight
// hardware barriers.  While in lockstep, the interconnect *merges* the
// cores' identical instruction fetches into a single multi-bank
// instruction-memory access (the broadcast mechanism) — the dominant
// energy win.  Data-dependent branches occasionally diverge; cores then
// fetch independently until barrier insertion recovers lockstep.  Data
// memory is banked per core (the paper's mapping methodology avoids
// program-memory conflicts), with an optional conflict model for the
// unpartitioned ablation.
#pragma once

#include <cstdint>

#include "mcsim/kernel.hpp"
#include "sig/rng.hpp"

namespace wbsn::mcsim {

struct MachineConfig {
  int num_cores = 3;
  bool broadcast_fetch = true;     ///< Merge identical lockstep fetches.
  bool partitioned_dmem = true;    ///< Per-core banks: no conflicts.
  int dmem_banks = 4;
};

/// Activity counters of one kernel execution.
struct SimStats {
  std::uint64_t wall_cycles = 0;
  std::uint64_t imem_accesses = 0;
  std::uint64_t dmem_accesses = 0;
  std::uint64_t dmem_stall_cycles = 0;
  std::uint64_t active_core_cycles = 0;  ///< Summed over cores.
  std::uint64_t idle_core_cycles = 0;    ///< Waiting at barriers / stalls.
  std::uint64_t divergence_events = 0;
};

/// Runs `profile` on `machine` (each core executes profile.instructions).
SimStats simulate_kernel(const KernelProfile& profile, const MachineConfig& machine,
                         std::uint64_t seed);

}  // namespace wbsn::mcsim
