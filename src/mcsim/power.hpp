// Power accounting and the single-core vs multi-core comparison of
// Figure 7.
//
// Given the activity counters of machine.hpp, this module prices each
// component (cores, instruction memory, data memory) at the DVFS point a
// configuration needs to meet its real-time deadline.  The single-core
// baseline must serialize all leads inside the same compute slot, forcing
// a clock N times higher — and with the discrete DVFS table, a higher
// supply voltage.  The multi-core system runs each core N times slower at
// lower Vdd and merges instruction fetches, which is where the paper's
// "up to 40 % power reduction" comes from.
#pragma once

#include <string>
#include <vector>

#include "energy/mcu.hpp"
#include "mcsim/machine.hpp"

namespace wbsn::mcsim {

struct PowerConfig {
  // Reference per-event energies at vref (90 nm low-power embedded SRAM +
  // simple 16-bit core, order-of-magnitude figures).
  double vref = 2.2;
  double e_core_cycle_ref = 0.30e-9;
  double e_imem_access_ref = 0.38e-9;   ///< Instruction SRAM read.
  double e_dmem_access_ref = 0.30e-9;   ///< Data SRAM access.
  double idle_cycle_fraction = 0.12;    ///< Clock-tree cost of idle cycles.
  double leakage_per_core_w = 2e-6;

  /// Real-time constraint: the kernels must complete within this fraction
  /// of each acquisition window (the CPU also serves sampling ISRs and the
  /// radio, so compute is confined to a bounded slot).
  double compute_slot_fraction = 0.01;
  double window_s = 2.048;
};

/// Component-wise power of one configuration running one kernel.
struct PowerBreakdown {
  std::string kernel;
  std::string config;           ///< "SC" or "MC".
  double f_hz = 0.0;
  double vdd = 0.0;
  double cores_w = 0.0;
  double imem_w = 0.0;
  double dmem_w = 0.0;
  double leakage_w = 0.0;

  double total_w() const { return cores_w + imem_w + dmem_w + leakage_w; }
};

/// Prices a simulated execution: picks the DVFS point that fits the
/// compute slot, scales event energies by (vdd/vref)^2 and averages over
/// the full window.
PowerBreakdown price_execution(const SimStats& stats, int num_cores,
                               const PowerConfig& cfg);

/// Full Figure-7 style comparison for one kernel profile: the single-core
/// system executes all `num_leads` partitions serially; the multi-core one
/// maps one partition per core in lockstep.
struct ScMcComparison {
  PowerBreakdown sc;
  PowerBreakdown mc;
  double reduction_percent() const {
    return 100.0 * (1.0 - mc.total_w() / sc.total_w());
  }
};

ScMcComparison compare_sc_mc(const KernelProfile& per_lead_profile, int num_leads,
                             const MachineConfig& mc_machine, const PowerConfig& cfg,
                             std::uint64_t seed);

}  // namespace wbsn::mcsim
