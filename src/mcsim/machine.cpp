#include "mcsim/machine.hpp"

#include <algorithm>

namespace wbsn::mcsim {

SimStats simulate_kernel(const KernelProfile& profile, const MachineConfig& machine,
                         std::uint64_t seed) {
  SimStats stats;
  sig::Rng rng(seed);
  const auto cores = static_cast<std::uint64_t>(machine.num_cores);

  // The cores execute the same instruction stream; the simulator walks it
  // instruction by instruction.  This stays exact for the quantities that
  // matter to energy (access and cycle counts) while remaining fast enough
  // to run millions of instructions in tests.
  std::uint64_t i = 0;
  while (i < profile.instructions) {
    // --- One lockstep instruction slot. ---
    stats.wall_cycles += 1;
    stats.active_core_cycles += cores;
    stats.imem_accesses += (machine.broadcast_fetch && cores > 1) ? 1 : cores;

    const double op_draw = rng.uniform();
    const bool is_load = op_draw < profile.load_fraction;
    const bool is_store =
        !is_load && op_draw < profile.load_fraction + profile.store_fraction;
    const bool is_branch =
        !is_load && !is_store &&
        op_draw < profile.load_fraction + profile.store_fraction + profile.branch_fraction;

    if (is_load || is_store) {
      stats.dmem_accesses += cores;
      if (!machine.partitioned_dmem && cores > 1) {
        // Unpartitioned ablation: each pair of cores collides with
        // probability 1/banks; every collision serializes one extra cycle
        // during which the non-owners wait.
        std::uint64_t conflicts = 0;
        for (std::uint64_t c = 1; c < cores; ++c) {
          conflicts += rng.bernoulli(1.0 / machine.dmem_banks);
        }
        stats.dmem_stall_cycles += conflicts;
        stats.wall_cycles += conflicts;
        stats.idle_core_cycles += conflicts * (cores - 1);
        stats.active_core_cycles += conflicts;  // The retried access.
      }
    }

    if (is_branch && cores > 1 && rng.bernoulli(profile.divergence_prob)) {
      // Divergence: cores run different paths for `penalty` cycles (no
      // fetch merging, everyone active), then the barrier realigns them.
      ++stats.divergence_events;
      const std::uint64_t penalty = profile.divergence_penalty;
      stats.wall_cycles += penalty;
      stats.active_core_cycles += penalty * cores;
      stats.imem_accesses += penalty * cores;
      // Diverged paths revisit roughly the same mix of memory operations.
      stats.dmem_accesses += static_cast<std::uint64_t>(
          static_cast<double>(penalty * cores) *
          (profile.load_fraction + profile.store_fraction));
      // Barrier: cores arrive staggered; on average half the barrier span
      // is idle waiting, then one cycle of synchronized restart.
      const std::uint64_t barrier = profile.barrier_cycles;
      stats.wall_cycles += barrier;
      stats.idle_core_cycles += barrier * (cores - 1);
      stats.active_core_cycles += barrier;  // The annotation/bookkeeping core.
      // The diverged instructions *are* progress on the stream: skip ahead
      // so divergence does not inflate the total instruction count.
      i += penalty;
    }
    ++i;
  }
  return stats;
}

}  // namespace wbsn::mcsim
