#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace wbsn::net {
namespace {

bool parse_addr(const std::string& host, std::uint16_t port, sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    out.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host == "localhost") {
    return inet_pton(AF_INET, "127.0.0.1", &out.sin_addr) == 1;
  }
  return inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

void set_nodelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpListener::listen(const std::string& host, std::uint16_t port, int backlog) {
  fd_.reset();
  port_ = 0;
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return false;
  int one = 1;
  (void)setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  if (!parse_addr(host, port, addr)) return false;
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) return false;
  if (::listen(fd.get(), backlog) != 0) return false;
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) return false;
  if (!set_nonblocking(fd.get())) return false;
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
  return true;
}

Fd TcpListener::accept() {
  if (!fd_.valid()) return Fd{};
  int conn = ::accept(fd_.get(), nullptr, nullptr);
  if (conn < 0) return Fd{};
  Fd fd(conn);
  set_nodelay(fd.get());
  if (!set_nonblocking(fd.get())) return Fd{};
  return fd;
}

Fd tcp_connect(const std::string& host, std::uint16_t port, int connect_timeout_ms,
               int io_timeout_ms) {
  sockaddr_in addr{};
  if (!parse_addr(host.empty() ? "127.0.0.1" : host, port, addr)) return Fd{};
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd{};
  // Nonblocking connect + poll gives the timeout; the socket goes back to
  // blocking for the simple request/response client.
  if (!set_nonblocking(fd.get())) return Fd{};
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return Fd{};
    pollfd pfd{fd.get(), POLLOUT, 0};
    rc = ::poll(&pfd, 1, connect_timeout_ms);
    if (rc <= 0) return Fd{};
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) return Fd{};
  }
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0) return Fd{};
  set_nodelay(fd.get());
  if (io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = io_timeout_ms / 1000;
    tv.tv_usec = (io_timeout_ms % 1000) * 1000;
    (void)setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return fd;
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_recv_timeout(int fd, int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
  }
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool send_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all_vec(int fd, const ConstBuf* bufs, std::size_t count) {
  // iovec caps at IOV_MAX (>= 16 everywhere); callers pass a handful.
  iovec iov[16];
  std::size_t n_iov = 0;
  for (std::size_t i = 0; i < count && n_iov < 16; ++i) {
    if (bufs[i].size == 0) continue;
    iov[n_iov].iov_base = const_cast<void*>(bufs[i].data);
    iov[n_iov].iov_len = bufs[i].size;
    ++n_iov;
  }
  if (count > 16) return false;
  std::size_t first = 0;
  while (first < n_iov) {
    msghdr msg{};
    msg.msg_iov = iov + first;
    msg.msg_iovlen = n_iov - first;
    const ssize_t sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    // Advance the iov array past what the kernel took (partial sends are
    // legal even on blocking sockets when a timeout interrupts mid-write).
    auto left = static_cast<std::size_t>(sent);
    while (first < n_iov && left >= iov[first].iov_len) {
      left -= iov[first].iov_len;
      ++first;
    }
    if (first < n_iov && left > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + left;
      iov[first].iov_len -= left;
    }
  }
  return true;
}

long recv_some(int fd, void* out, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd, out, cap, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

}  // namespace wbsn::net
