// Thin POSIX TCP wrappers for the fabric's process split.
//
// Deliberately minimal: the repo needs a loopback/LAN transport for
// ShardServer and RoutingClient, not a networking framework.  RAII fds,
// IPv4 only, no TLS (the paper's WBSN backhaul is a trusted hospital
// network; putting the link behind stunnel/wireguard is an ops decision,
// not a protocol one — see docs/WIRE_FORMAT.md §Security).  Everything
// returns bool/-1 style errors with errno left intact; nothing throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace wbsn::net {

/// RAII file descriptor.  Movable, non-copyable; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Listening IPv4 TCP socket.  Binding port 0 asks the kernel for an
/// ephemeral port, readable afterwards via port() — how the multi-process
/// tests avoid fixed-port collisions.
class TcpListener {
 public:
  TcpListener() = default;

  /// Bind + listen on host:port.  Returns false (errno set) on failure.
  bool listen(const std::string& host, std::uint16_t port, int backlog = 64);

  /// The locally bound port (the kernel's pick when listen()ed with 0).
  std::uint16_t port() const { return port_; }

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// Accepts one pending connection; invalid Fd when none is ready (the
  /// listener is nonblocking) or on error.
  Fd accept();

  void close() { fd_.reset(); }

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Blocking connect to host:port with a millisecond timeout.  Returns an
/// invalid Fd on failure.  The returned socket is blocking, TCP_NODELAY,
/// with send/receive timeouts of `io_timeout_ms` (0 = none) — the client
/// side's stall guard.
Fd tcp_connect(const std::string& host, std::uint16_t port, int connect_timeout_ms,
               int io_timeout_ms);

/// Puts an fd in nonblocking mode.  Server-loop side.
bool set_nonblocking(int fd);

/// Adjusts SO_RCVTIMEO on a connected blocking socket (<= 0 clears the
/// timeout).  Lets a caller tighten the deadline for one exchange — the
/// health probe's "dead or deadlined" check — and restore it after.
bool set_recv_timeout(int fd, int timeout_ms);

/// send() the whole buffer on a blocking socket.  False on error/timeout.
bool send_all(int fd, const void* data, std::size_t size);

/// One segment of a scatter-gather send.
struct ConstBuf {
  const void* data = nullptr;
  std::size_t size = 0;
};

/// Scatter-gather send_all: sends the concatenation of `bufs` on a
/// blocking socket without assembling it contiguously (sendmsg under the
/// hood, so a sealed batch frame's prefix, staged bodies, and CRC trailer
/// go out in one syscall).  False on error/timeout.
bool send_all_vec(int fd, const ConstBuf* bufs, std::size_t count);

/// recv() once into `out` (up to `cap` bytes).  Returns bytes read, 0 on
/// orderly peer close, -1 on error (including timeout; EINTR retried).
long recv_some(int fd, void* out, std::size_t cap);

}  // namespace wbsn::net
