// shard_serverd — one reconstruction shard as a standalone process.
//
// Wraps net::ShardServer in a tiny CLI so a fleet can be launched by an
// init system, a test harness, or a shell loop.  The daemon binds
// (default: an ephemeral port on 127.0.0.1), prints one machine-readable
// line `PORT <n>` on stdout once it is accepting connections — the
// handshake the multi-process tests and launch scripts key on — and then
// serves until a client sends BYE or the process receives SIGINT/SIGTERM.
//
// Usage: shard_serverd [--host A.B.C.D] [--port N] [--threads N]
//                      [--queue-capacity N] [--batch-windows N]
//                      [--deadline-ms X] [--shedding] [--fixed-scale X]
//                      [--max-wire-version N] [--hint-cr X]
//                      [--hint-backlog-deadlines X]
// See docs/OPERATIONS.md for how these map onto EngineConfig.

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/shard_server.hpp"

namespace {

// Async-signal-safe shutdown: the handler may only set a sig_atomic_t and
// write() one byte to a pre-created self-pipe (both on the POSIX
// async-signal-safe list).  The server's event loop polls the pipe's read
// end (ShardServerConfig::stop_fd) and performs the actual stop on its
// own thread.  Calling ShardServer::stop() from the handler — as an
// earlier revision did — dereferenced a non-atomic pointer and took the
// self-pipe write path through non-reentrant object state; a signal
// landing mid-run() could deadlock or corrupt the server.
volatile std::sig_atomic_t g_stop_requested = 0;
int g_stop_pipe_wr = -1;

void on_signal(int) {
  g_stop_requested = 1;
  if (g_stop_pipe_wr >= 0) {
    const unsigned char byte = 1;
    (void)!::write(g_stop_pipe_wr, &byte, 1);
  }
}

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port N] [--threads N] [--queue-capacity N]\n"
               "          [--batch-windows N] [--deadline-ms X] [--shedding]\n"
               "          [--fixed-scale X] [--max-wire-version N] [--hint-cr X]\n"
               "          [--hint-backlog-deadlines X]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  wbsn::net::ShardServerConfig cfg;
  cfg.stop_on_bye = true;
  cfg.engine.threads = 2;
  cfg.engine.payload_pool = std::make_shared<wbsn::host::PayloadPool>();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--host") {
      cfg.host = next();
    } else if (arg == "--port") {
      cfg.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--threads") {
      cfg.engine.threads = std::atoi(next());
    } else if (arg == "--queue-capacity") {
      cfg.engine.queue_capacity = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--batch-windows") {
      cfg.engine.batch_windows = std::atoi(next());
    } else if (arg == "--deadline-ms") {
      cfg.engine.slo.deadline_ms = std::atof(next());
    } else if (arg == "--shedding") {
      cfg.engine.deadline_shedding = true;
    } else if (arg == "--fixed-scale") {
      cfg.wire.fixed_scale = std::atof(next());
    } else if (arg == "--max-wire-version") {
      // Pin the negotiation ceiling (e.g. 1 during a staged v2 rollout).
      cfg.max_wire_version = static_cast<std::uint8_t>(std::atoi(next()));
    } else if (arg == "--hint-cr") {
      // CR advisory (percent) answered to CR_HINT sweeps under pressure.
      cfg.hint_cr_percent = std::atof(next());
    } else if (arg == "--hint-backlog-deadlines") {
      cfg.hint_backlog_deadlines = std::atof(next());
    } else {
      usage_and_exit(argv[0]);
    }
  }

  // The stop pipe must exist before any signal can fire.  Nonblocking
  // write end: a full pipe already means a wake is pending, and a handler
  // must never block.
  int stop_pipe[2] = {-1, -1};
  if (::pipe(stop_pipe) != 0) {
    std::perror("shard_serverd: pipe failed");
    return 1;
  }
  ::fcntl(stop_pipe[0], F_SETFL, O_NONBLOCK);
  ::fcntl(stop_pipe[1], F_SETFL, O_NONBLOCK);
  cfg.stop_fd = stop_pipe[0];
  g_stop_pipe_wr = stop_pipe[1];

  wbsn::net::ShardServer server(cfg);
  if (!server.start()) {
    std::perror("shard_serverd: start failed");
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // The readiness handshake: parseable, single line, flushed before any
  // other output so a pipe reader never blocks on buffering.
  std::printf("PORT %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  server.run();
  g_stop_pipe_wr = -1;  // A late signal must not write a closed fd.
  ::close(stop_pipe[0]);
  ::close(stop_pipe[1]);
  return 0;
}
