#include "net/shard_server.hpp"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace wbsn::net {

namespace {
constexpr std::size_t kRecvChunk = 64 * 1024;
}

ShardServer::ShardServer(ShardServerConfig cfg) : cfg_(std::move(cfg)) {}

ShardServer::~ShardServer() { stop(); }

bool ShardServer::start() {
  int pipefd[2] = {-1, -1};
  if (::pipe(pipefd) != 0) return false;
  wake_rd_ = Fd(pipefd[0]);
  wake_wr_ = Fd(pipefd[1]);
  if (!set_nonblocking(wake_rd_.get())) return false;
  if (!listener_.listen(cfg_.host, cfg_.port)) return false;
  engine_ = std::make_unique<host::ReconstructionEngine>(cfg_.engine);
  return true;
}

void ShardServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_wr_.valid()) {
    const char byte = 1;
    (void)!::write(wake_wr_.get(), &byte, 1);
  }
}

void ShardServer::run() {
  std::vector<pollfd> pfds;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wake_rd_.get(), POLLIN, 0});
    pfds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      if (conn->tx_sent < conn->tx.size()) events |= POLLOUT;
      pfds.push_back({conn->fd.get(), events, 0});
    }
    const int rc = ::poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[0].revents & POLLIN) {
      char scratch[64];
      while (::read(wake_rd_.get(), scratch, sizeof(scratch)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) {
      for (;;) {
        Fd conn = listener_.accept();
        if (!conn.valid()) break;
        auto c = std::make_unique<Connection>();
        c->fd = std::move(conn);
        conns_.push_back(std::move(c));
      }
    }
    // Service connections; pfds[i + 2] pairs with conns_[i] (conns_ only
    // mutates below, after this loop).
    for (std::size_t i = 0; i < conns_.size() && i + 2 < pfds.size(); ++i) {
      Connection& conn = *conns_[i];
      const short revents = pfds[i + 2].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (revents & POLLIN)) {
        std::uint8_t chunk[kRecvChunk];
        for (;;) {
          const long n = recv_some(conn.fd.get(), chunk, sizeof(chunk));
          if (n > 0) {
            conn.rx.insert(conn.rx.end(), chunk, chunk + n);
            if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          alive = false;  // Orderly close (0) or hard error.
          break;
        }
        if (alive) alive = process_rx(conn);
      }
      if (alive && (revents & (POLLOUT | POLLIN))) flush(conn);
      if (alive && (revents & POLLHUP) && conn.tx_sent >= conn.tx.size()) alive = false;
      if (alive && conn.close_after_flush && conn.tx_sent >= conn.tx.size()) alive = false;
      if (!alive) conn.fd.reset();
    }
    std::erase_if(conns_, [](const std::unique_ptr<Connection>& c) { return !c->fd.valid(); });
  }
  conns_.clear();
  listener_.close();
}

bool ShardServer::process_rx(Connection& conn) {
  std::size_t consumed = 0;
  while (true) {
    FrameView frame;
    const auto status =
        peek_frame({conn.rx.data() + consumed, conn.rx.size() - consumed}, frame);
    if (status == FrameStatus::kNeedMore) break;
    if (status == FrameStatus::kBadVersion) {
      // Structurally sound frame in a version we don't speak: refuse it
      // in-band and drop the connection — frame semantics may have
      // changed, so continuing to parse the stream would be a guess.
      send_error(conn, ErrorCode::kUnsupportedVersion,
                 "server speaks wbsn-wire v1 only", /*close_after=*/true);
      consumed += frame.frame_bytes;
      break;
    }
    if (status != FrameStatus::kOk) return false;  // Desync/corrupt/oversized.
    handle_frame(conn, frame);
    consumed += frame.frame_bytes;
    if (conn.close_after_flush) break;
  }
  if (consumed > 0) conn.rx.erase(conn.rx.begin(), conn.rx.begin() + consumed);
  return true;
}

void ShardServer::handle_frame(Connection& conn, const FrameView& frame) {
  auto& tx = conn.tx;
  if (!conn.negotiated) {
    if (frame.type != FrameType::kHello) {
      send_error(conn, ErrorCode::kNotNegotiated, "expected HELLO", true);
      return;
    }
    HelloPayload hello;
    if (!decode_hello(frame.payload, hello)) {
      send_error(conn, ErrorCode::kBadPayload, "malformed HELLO", true);
      return;
    }
    if (hello.min_version > kWireVersion || hello.max_version < kWireVersion) {
      send_error(conn, ErrorCode::kUnsupportedVersion, "no mutual wire version", true);
      return;
    }
    // Highest mutually supported version; this build speaks exactly v1.
    encode_hello_ack(tx, kWireVersion);
    conn.negotiated = true;
    return;
  }

  switch (frame.type) {
    case FrameType::kSubmitWindow: {
      host::CompressedWindow window;
      std::uint8_t flags = 0;
      if (!decode_submit_window(frame.payload, window, flags,
                                cfg_.engine.payload_pool.get())) {
        send_error(conn, ErrorCode::kBadPayload, "malformed SUBMIT_WINDOW", true);
        return;
      }
      if (flags & kSubmitFlagBlocking) {
        encode_submit_ack(tx, engine_->submit(std::move(window)));
      } else if (auto ticket = engine_->try_submit(std::move(window))) {
        encode_submit_ack(tx, *ticket);
      } else {
        encode_submit_reject(tx);
      }
      return;
    }
    case FrameType::kPoll: {
      std::uint32_t max_results = 0;
      if (!decode_poll(frame.payload, max_results)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed POLL", true);
        return;
      }
      if (max_results == 0 || max_results > cfg_.max_poll_results) {
        max_results = cfg_.max_poll_results;
      }
      std::uint32_t sent = 0;
      while (sent < max_results) {
        auto result = engine_->poll();
        if (!result) break;
        encode_result(tx, *result, cfg_.wire);
        if (cfg_.engine.payload_pool) {
          cfg_.engine.payload_pool->recycle(std::move(*result));
        }
        ++sent;
      }
      encode_poll_end(tx, sent);
      return;
    }
    case FrameType::kDrainPatient: {
      std::uint32_t patient_id = 0;
      if (!decode_patient_frame(frame.payload, patient_id)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed DRAIN_PATIENT", true);
        return;
      }
      engine_->drain_patient(patient_id);
      encode_patient_frame(tx, FrameType::kDrainDone, patient_id);
      return;
    }
    case FrameType::kExtractSlo: {
      std::uint32_t patient_id = 0;
      if (!decode_patient_frame(frame.payload, patient_id)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed EXTRACT_SLO", true);
        return;
      }
      SloStatePayload slo;
      slo.patient_id = patient_id;
      if (auto tracker = engine_->extract_patient_slo(patient_id)) {
        slo.present = true;
        slo.state = tracker->extract_state();
      }
      encode_slo_state(tx, FrameType::kSloState, slo);
      return;
    }
    case FrameType::kAdoptSlo: {
      SloStatePayload slo;
      if (!decode_slo_state(frame.payload, slo)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed ADOPT_SLO", true);
        return;
      }
      bool adopted = true;
      if (slo.present) {
        auto tracker = std::make_shared<host::SloTracker>(cfg_.engine.slo);
        tracker->absorb_state(slo.state);
        adopted = engine_->adopt_patient_slo(slo.patient_id, std::move(tracker));
      }
      encode_adopt_ack(tx, adopted);
      return;
    }
    case FrameType::kSnapshotRequest: {
      const auto snap = engine_->slo().snapshot();
      SnapshotPayload payload;
      payload.submitted = snap.submitted;
      payload.completed = snap.completed;
      payload.shed_routine = snap.shed_routine;
      payload.shed_urgent = snap.shed_urgent;
      payload.rejected = snap.rejected;
      payload.deadline_violations = snap.deadline_violations;
      payload.unsolved = engine_->in_flight();
      payload.ready = engine_->ready_results();
      // Exact once the shard is quiesced (the only time the coordinator
      // audits it); racing traffic makes it approximate like snapshot().
      payload.retrieved = snap.completed - payload.ready;
      encode_snapshot(tx, payload);
      return;
    }
    case FrameType::kBye: {
      encode_bye_ack(tx);
      conn.close_after_flush = true;
      if (cfg_.stop_on_bye) stopping_.store(true, std::memory_order_release);
      return;
    }
    case FrameType::kHello: {
      send_error(conn, ErrorCode::kBadPayload, "duplicate HELLO", true);
      return;
    }
    default:
      send_error(conn, ErrorCode::kUnknownFrameType, "unknown frame type", true);
      return;
  }
}

void ShardServer::send_error(Connection& conn, ErrorCode code, const std::string& detail,
                             bool close_after) {
  encode_error(conn.tx, ErrorPayload{code, detail});
  if (close_after) conn.close_after_flush = true;
}

void ShardServer::flush(Connection& conn) {
  while (conn.tx_sent < conn.tx.size()) {
    const ssize_t n = ::send(conn.fd.get(), conn.tx.data() + conn.tx_sent,
                             conn.tx.size() - conn.tx_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.tx_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return;
    conn.close_after_flush = true;  // Peer gone; reap on the next pass.
    conn.tx.clear();
    conn.tx_sent = 0;
    return;
  }
  // Fully flushed: reclaim the buffer (keep capacity warm).
  conn.tx.clear();
  conn.tx_sent = 0;
}

}  // namespace wbsn::net
