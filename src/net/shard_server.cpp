#include "net/shard_server.hpp"

#include <algorithm>
#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace wbsn::net {

namespace {
constexpr std::size_t kRecvChunk = 64 * 1024;
}

ShardServer::ShardServer(ShardServerConfig cfg) : cfg_(std::move(cfg)) {}

ShardServer::~ShardServer() { stop(); }

bool ShardServer::start() {
  int pipefd[2] = {-1, -1};
  if (::pipe(pipefd) != 0) return false;
  wake_rd_ = Fd(pipefd[0]);
  wake_wr_ = Fd(pipefd[1]);
  if (!set_nonblocking(wake_rd_.get())) return false;
  // The write end is poked from engine worker threads (progress hook) and
  // must never block them: a full pipe already has a wake pending.
  if (!set_nonblocking(wake_wr_.get())) return false;
  if (!listener_.listen(cfg_.host, cfg_.port)) return false;
  // Every completion or shed re-arms the event loop so parked deferred
  // verbs (blocking submits, patient drains) run their next step.  The
  // raw fd is safe to capture: wake_wr_ outlives engine_ (declaration
  // order), and the engine joins its workers before destruction returns.
  const int wake_fd = wake_wr_.get();
  cfg_.engine.progress_hook = [wake_fd] {
    const char byte = 1;
    (void)!::write(wake_fd, &byte, 1);
  };
  engine_ = std::make_unique<host::ReconstructionEngine>(cfg_.engine);
  return true;
}

void ShardServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_wr_.valid()) {
    const char byte = 1;
    (void)!::write(wake_wr_.get(), &byte, 1);
  }
}

void ShardServer::run() {
  std::vector<pollfd> pfds;
  // pfds layout: [0] wake pipe, [1] listener, [2] optional stop_fd, then
  // one slot per connection starting at `base`.
  const std::size_t base = cfg_.stop_fd >= 0 ? 3 : 2;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wake_rd_.get(), POLLIN, 0});
    pfds.push_back({listener_.fd(), POLLIN, 0});
    if (cfg_.stop_fd >= 0) pfds.push_back({cfg_.stop_fd, POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      if (conn->tx_sent < conn->tx.size()) events |= POLLOUT;
      pfds.push_back({conn->fd.get(), events, 0});
    }
    const int rc = ::poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[0].revents & POLLIN) {
      char scratch[64];
      while (::read(wake_rd_.get(), scratch, sizeof(scratch)) > 0) {
      }
    }
    // The external stop descriptor became readable: a signal handler asked
    // for shutdown.  Stop here, on the loop's own thread, where touching
    // server state is safe.  The fd is not drained — shutdown is one-way.
    if (cfg_.stop_fd >= 0 && (pfds[2].revents & (POLLIN | POLLHUP | POLLERR))) break;
    if (pfds[1].revents & POLLIN) {
      for (;;) {
        Fd conn = listener_.accept();
        if (!conn.valid()) break;
        auto c = std::make_unique<Connection>();
        c->fd = std::move(conn);
        conns_.push_back(std::move(c));
      }
    }
    // Service connections; pfds[i + base] pairs with conns_[i] (conns_
    // only mutates below, after this loop).
    for (std::size_t i = 0; i < conns_.size() && i + base < pfds.size(); ++i) {
      Connection& conn = *conns_[i];
      const short revents = pfds[i + base].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (revents & POLLIN)) {
        std::uint8_t chunk[kRecvChunk];
        for (;;) {
          const long n = recv_some(conn.fd.get(), chunk, sizeof(chunk));
          if (n > 0) {
            conn.rx.insert(conn.rx.end(), chunk, chunk + n);
            if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          alive = false;  // Orderly close (0) or hard error.
          break;
        }
        if (alive) alive = process_rx(conn);
      }
      if (alive && (revents & (POLLOUT | POLLIN))) flush(conn);
      if (alive && (revents & POLLHUP) && conn.tx_sent >= conn.tx.size()) alive = false;
      if (alive && conn.close_after_flush && conn.tx_sent >= conn.tx.size()) alive = false;
      if (!alive) conn.fd.reset();
    }
    // Deferred completions: re-run every parked verb (the engine's
    // progress hook — or any socket event — woke us).  When one finishes,
    // frames queued behind it on the same connection may now proceed.
    for (auto& c : conns_) {
      if (!c->fd.valid() || c->deferred == Connection::Deferred::kNone) continue;
      advance_deferred(*c);
      if (c->deferred != Connection::Deferred::kNone) continue;
      if (!process_rx(*c)) {
        c->fd.reset();
        continue;
      }
      flush(*c);
    }
    std::erase_if(conns_, [](const std::unique_ptr<Connection>& c) { return !c->fd.valid(); });
  }
  conns_.clear();
  listener_.close();
}

bool ShardServer::process_rx(Connection& conn) {
  std::size_t consumed = 0;
  while (true) {
    // A parked blocking verb pins the stream: responses are strictly in
    // request order per connection, so frames behind it wait until
    // advance_deferred completes it.
    if (conn.deferred != Connection::Deferred::kNone) break;
    FrameView frame;
    const auto status =
        peek_frame({conn.rx.data() + consumed, conn.rx.size() - consumed}, frame);
    if (status == FrameStatus::kNeedMore) break;
    if (status == FrameStatus::kBadVersion) {
      // Structurally sound frame in a version we don't speak: refuse it
      // in-band and drop the connection — frame semantics may have
      // changed, so continuing to parse the stream would be a guess.
      send_error(conn, ErrorCode::kUnsupportedVersion,
                 "frame version outside the supported range", /*close_after=*/true);
      consumed += frame.frame_bytes;
      break;
    }
    if (status != FrameStatus::kOk) return false;  // Desync/corrupt/oversized.
    handle_frame(conn, frame);
    consumed += frame.frame_bytes;
    if (conn.close_after_flush) break;
  }
  if (consumed > 0) conn.rx.erase(conn.rx.begin(), conn.rx.begin() + consumed);
  return true;
}

void ShardServer::handle_frame(Connection& conn, const FrameView& frame) {
  auto& tx = conn.tx;
  if (!conn.negotiated) {
    if (frame.type != FrameType::kHello) {
      send_error(conn, ErrorCode::kNotNegotiated, "expected HELLO", true);
      return;
    }
    HelloPayload hello;
    if (!decode_hello(frame.payload, hello)) {
      send_error(conn, ErrorCode::kBadPayload, "malformed HELLO", true);
      return;
    }
    // Highest mutually supported version, capped by config (how a fleet
    // pins v1 during a staged rollout).
    const std::uint8_t chosen = std::min(hello.max_version, cfg_.max_wire_version);
    if (hello.min_version > chosen || chosen < kWireVersionMin) {
      send_error(conn, ErrorCode::kUnsupportedVersion, "no mutual wire version", true);
      return;
    }
    encode_hello_ack(tx, chosen);
    conn.version = chosen;
    conn.negotiated = true;
    return;
  }

  // A frame whose layout version exceeds what this connection negotiated
  // is a protocol violation, not a guessable stream: refuse and close.
  if (frame.version > conn.version) {
    send_error(conn, ErrorCode::kUnsupportedVersion,
               "frame version exceeds the negotiated version", true);
    return;
  }

  switch (frame.type) {
    case FrameType::kSubmitWindow: {
      host::CompressedWindow window;
      std::uint8_t flags = 0;
      if (!decode_submit_window(frame.payload, window, flags,
                                cfg_.engine.payload_pool.get())) {
        send_error(conn, ErrorCode::kBadPayload, "malformed SUBMIT_WINDOW", true);
        return;
      }
      if (flags & kSubmitFlagBlocking) {
        if (engine_->thread_count() == 0) {
          // Serial engine: the calling thread is the solver, so a blocking
          // submit makes its own room — deferring would stall forever.
          encode_submit_ack(tx, engine_->submit(std::move(window)));
        } else {
          std::vector<host::CompressedWindow> one;
          one.push_back(std::move(window));
          submit_blocking(conn, std::move(one), {}, /*batch=*/false);
        }
      } else if (auto ticket = engine_->try_submit(std::move(window))) {
        encode_submit_ack(tx, *ticket);
      } else {
        encode_submit_reject(tx);
      }
      return;
    }
    case FrameType::kSubmitBatch: {
      std::uint8_t flags = 0;
      std::vector<host::CompressedWindow> windows;
      if (!decode_submit_batch(frame.payload, flags, windows,
                               cfg_.engine.payload_pool.get())) {
        send_error(conn, ErrorCode::kBadPayload, "malformed SUBMIT_BATCH", true);
        return;
      }
      std::vector<SubmitBatchAckEntry> acks;
      acks.reserve(windows.size());
      if (flags & kSubmitFlagBlocking) {
        if (engine_->thread_count() == 0) {
          for (auto& window : windows) {
            acks.push_back({true, engine_->submit(std::move(window))});
          }
          encode_submit_batch_ack(tx, acks);
        } else {
          submit_blocking(conn, std::move(windows), std::move(acks), /*batch=*/true);
        }
      } else {
        for (auto& window : windows) {
          if (auto ticket = engine_->try_submit(std::move(window))) {
            acks.push_back({true, *ticket});
          } else {
            acks.push_back({false, 0});
          }
        }
        encode_submit_batch_ack(tx, acks);
      }
      return;
    }
    case FrameType::kPollMany: {
      std::uint32_t max_results = 0;
      if (!decode_poll_many(frame.payload, max_results)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed POLL_MANY", true);
        return;
      }
      if (max_results == 0 || max_results > cfg_.max_poll_results) {
        max_results = cfg_.max_poll_results;
      }
      poll_many(conn, max_results);
      return;
    }
    case FrameType::kPoll: {
      std::uint32_t max_results = 0;
      if (!decode_poll(frame.payload, max_results)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed POLL", true);
        return;
      }
      if (max_results == 0 || max_results > cfg_.max_poll_results) {
        max_results = cfg_.max_poll_results;
      }
      std::uint32_t sent = 0;
      while (sent < max_results) {
        auto result = engine_->poll();
        if (!result) break;
        encode_result(tx, *result, cfg_.wire);
        if (cfg_.engine.payload_pool) {
          cfg_.engine.payload_pool->recycle(std::move(*result));
        }
        ++sent;
      }
      encode_poll_end(tx, sent);
      return;
    }
    case FrameType::kDrainPatient: {
      std::uint32_t patient_id = 0;
      if (!decode_patient_frame(frame.payload, patient_id)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed DRAIN_PATIENT", true);
        return;
      }
      if (engine_->thread_count() == 0) {
        engine_->drain_patient(patient_id);
        encode_patient_frame(tx, FrameType::kDrainDone, patient_id);
      } else {
        // Workers drain the patient; park until patient_pending hits 0
        // (the progress hook fires on every completion and shed).
        conn.deferred_patient = patient_id;
        conn.deferred = Connection::Deferred::kDrain;
        advance_deferred(conn);
      }
      return;
    }
    case FrameType::kExtractSlo: {
      std::uint32_t patient_id = 0;
      if (!decode_patient_frame(frame.payload, patient_id)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed EXTRACT_SLO", true);
        return;
      }
      SloStatePayload slo;
      slo.patient_id = patient_id;
      if (auto tracker = engine_->extract_patient_slo(patient_id)) {
        slo.present = true;
        slo.state = tracker->extract_state();
      }
      encode_slo_state(tx, FrameType::kSloState, slo);
      return;
    }
    case FrameType::kAdoptSlo: {
      SloStatePayload slo;
      if (!decode_slo_state(frame.payload, slo)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed ADOPT_SLO", true);
        return;
      }
      bool adopted = true;
      if (slo.present) {
        auto tracker = std::make_shared<host::SloTracker>(cfg_.engine.slo);
        tracker->absorb_state(slo.state);
        adopted = engine_->adopt_patient_slo(slo.patient_id, std::move(tracker));
      }
      encode_adopt_ack(tx, adopted);
      return;
    }
    case FrameType::kSnapshotRequest: {
      const auto snap = engine_->slo().snapshot();
      SnapshotPayload payload;
      payload.submitted = snap.submitted;
      payload.completed = snap.completed;
      payload.shed_routine = snap.shed_routine;
      payload.shed_urgent = snap.shed_urgent;
      payload.rejected = snap.rejected;
      payload.deadline_violations = snap.deadline_violations;
      payload.unsolved = engine_->in_flight();
      payload.ready = engine_->ready_results();
      // Exact once the shard is quiesced (the only time the coordinator
      // audits it); racing traffic makes it approximate like snapshot().
      payload.retrieved = snap.completed - payload.ready;
      encode_snapshot(tx, payload);
      return;
    }
    case FrameType::kCrHint: {
      std::uint64_t epoch = 0;
      std::uint32_t max_entries = 0;
      if (!decode_cr_hint(frame.payload, epoch, max_entries)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed CR_HINT", true);
        return;
      }
      CrHintAckPayload ack;
      ack.epoch = epoch;
      // The advisory is pressure-gated: active only while the backlog is
      // deep enough that newly queued routine windows would miss their
      // deadline anyway.  A threshold <= 0 makes it unconditional — the
      // deterministic setting tests use.
      const double deadline_ms = cfg_.engine.slo.deadline_ms;
      const bool under_pressure =
          cfg_.hint_backlog_deadlines <= 0.0 ||
          (deadline_ms > 0.0 &&
           engine_->backlog_wait_ms() > cfg_.hint_backlog_deadlines * deadline_ms);
      if (cfg_.hint_cr_percent > 0.0 && under_pressure) {
        ack.advisory_cr_centi =
            static_cast<std::uint32_t>(cfg_.hint_cr_percent * 100.0 + 0.5);
        // Per-patient entries cover the patients actually backed up on this
        // shard, so a client can steer just those nodes; each carries the
        // same shard-wide advisory today.
        const std::size_t cap =
            std::min<std::size_t>(max_entries, cfg_.max_poll_results);
        for (const std::uint32_t patient : engine_->pending_patients(cap)) {
          ack.entries.push_back({patient, ack.advisory_cr_centi});
        }
      }
      encode_cr_hint_ack(tx, ack);
      return;
    }
    case FrameType::kHealth: {
      std::uint64_t nonce = 0;
      if (!decode_health(frame.payload, nonce)) {
        send_error(conn, ErrorCode::kBadPayload, "malformed HEALTH", true);
        return;
      }
      // Answered from two atomic counters — the probe must stay cheap and
      // prompt even when the solve path is saturated, or a loaded shard
      // would look dead exactly when failing it over hurts most.
      HealthAckPayload ack;
      ack.nonce = nonce;
      ack.unsolved = engine_->in_flight();
      ack.ready = engine_->ready_results();
      encode_health_ack(tx, ack);
      return;
    }
    case FrameType::kBye: {
      encode_bye_ack(tx);
      conn.close_after_flush = true;
      if (cfg_.stop_on_bye) stopping_.store(true, std::memory_order_release);
      return;
    }
    case FrameType::kHello: {
      send_error(conn, ErrorCode::kBadPayload, "duplicate HELLO", true);
      return;
    }
    default:
      send_error(conn, ErrorCode::kUnknownFrameType, "unknown frame type", true);
      return;
  }
}

void ShardServer::submit_blocking(Connection& conn,
                                  std::vector<host::CompressedWindow>&& windows,
                                  std::vector<SubmitBatchAckEntry>&& acks, bool batch) {
  conn.deferred_windows = std::move(windows);
  conn.deferred_acks = std::move(acks);
  conn.deferred_next = 0;
  conn.deferred_batch = batch;
  conn.deferred = Connection::Deferred::kSubmit;
  // Usually the engine has room and this completes synchronously; only a
  // genuinely full engine leaves the verb parked.
  advance_deferred(conn);
}

void ShardServer::advance_deferred(Connection& conn) {
  switch (conn.deferred) {
    case Connection::Deferred::kNone:
      return;
    case Connection::Deferred::kSubmit:
      while (conn.deferred_next < conn.deferred_windows.size()) {
        auto ticket =
            engine_->try_submit_step(std::move(conn.deferred_windows[conn.deferred_next]));
        if (!ticket) return;  // Full again; the next progress hook re-arms us.
        conn.deferred_acks.push_back({true, *ticket});
        ++conn.deferred_next;
      }
      finish_submit(conn);
      return;
    case Connection::Deferred::kDrain:
      // Same quiescence condition as ReconstructionEngine::drain_patient:
      // nothing of this patient is submitted-but-unsolved (results may
      // still be parked in the completion list).
      if (engine_->patient_pending(conn.deferred_patient) != 0) return;
      encode_patient_frame(conn.tx, FrameType::kDrainDone, conn.deferred_patient);
      conn.deferred = Connection::Deferred::kNone;
      return;
  }
}

void ShardServer::finish_submit(Connection& conn) {
  if (conn.deferred_batch) {
    encode_submit_batch_ack(conn.tx, conn.deferred_acks);
  } else {
    encode_submit_ack(conn.tx, conn.deferred_acks.front().local_ticket);
  }
  conn.deferred = Connection::Deferred::kNone;
  conn.deferred_windows.clear();
  conn.deferred_acks.clear();
  conn.deferred_next = 0;
}

void ShardServer::poll_many(Connection& conn, std::uint32_t max_results) {
  // One POLL_MANY answers with exactly one RESULT_BATCH, capped by count
  // AND by bytes: a deep completion list of large windows must not
  // assemble a frame past kMaxPayloadBytes.  The client just polls again.
  constexpr std::size_t kBatchByteBudget = 4 * 1024 * 1024;
  batch_staging_.clear();
  std::uint64_t count = 0;
  while (count < max_results && batch_staging_.size() < kBatchByteBudget) {
    auto result = engine_->poll();
    if (!result) break;
    encode_result_entry(batch_staging_, *result, cfg_.wire);
    if (cfg_.engine.payload_pool) {
      cfg_.engine.payload_pool->recycle(std::move(*result));
    }
    ++count;
  }
  encode_result_batch(conn.tx, batch_staging_, count);
}

void ShardServer::send_error(Connection& conn, ErrorCode code, const std::string& detail,
                             bool close_after) {
  encode_error(conn.tx, ErrorPayload{code, detail});
  if (close_after) conn.close_after_flush = true;
}

void ShardServer::flush(Connection& conn) {
  while (conn.tx_sent < conn.tx.size()) {
    const ssize_t n = ::send(conn.fd.get(), conn.tx.data() + conn.tx_sent,
                             conn.tx.size() - conn.tx_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.tx_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return;
    conn.close_after_flush = true;  // Peer gone; reap on the next pass.
    conn.tx.clear();
    conn.tx_sent = 0;
    return;
  }
  // Fully flushed: reclaim the buffer (keep capacity warm).
  conn.tx.clear();
  conn.tx_sent = 0;
}

}  // namespace wbsn::net
