#include "net/wire_format.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "net/crc32c.hpp"

namespace wbsn::net {

// --- Low-level writers -------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_i16le(std::vector<std::uint8_t>& out, std::int16_t v) {
  const auto u = static_cast<std::uint16_t>(v);
  out.push_back(static_cast<std::uint8_t>(u));
  out.push_back(static_cast<std::uint8_t>(u >> 8));
}

void put_i32le(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32le(out, static_cast<std::uint32_t>(v));
}

void put_f64le(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// --- WireReader --------------------------------------------------------------

bool WireReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t WireReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint32_t WireReader::u32le() {
  if (!take(4)) return 0;
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return v;
}

std::int16_t WireReader::i16le() {
  if (!take(2)) return 0;
  const auto v = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[pos_]) |
      (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return static_cast<std::int16_t>(v);
}

std::int32_t WireReader::i32le() { return static_cast<std::int32_t>(u32le()); }

double WireReader::f64le() {
  if (!take(8)) return 0.0;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t WireReader::varint() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (!take(1)) return 0;
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      // The 10th byte may only contribute the final bit of a u64.
      if (shift == 63 && byte > 1) break;
      return v;
    }
  }
  ok_ = false;  // Unterminated or overlong varint.
  return 0;
}

std::span<const std::uint8_t> WireReader::bytes(std::size_t n) {
  if (!take(n)) return {};
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

// --- Framing -----------------------------------------------------------------

std::size_t frame_begin(std::vector<std::uint8_t>& out, FrameType type,
                        std::uint8_t version) {
  put_u8(out, kMagic0);
  put_u8(out, kMagic1);
  put_u8(out, version);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32le(out, 0);  // Payload length, patched by frame_end.
  return out.size();
}

void frame_end(std::vector<std::uint8_t>& out, std::size_t payload_start) {
  const std::size_t header_start = payload_start - kFrameHeaderBytes;
  const auto payload_len = static_cast<std::uint32_t>(out.size() - payload_start);
  out[payload_start - 4] = static_cast<std::uint8_t>(payload_len);
  out[payload_start - 3] = static_cast<std::uint8_t>(payload_len >> 8);
  out[payload_start - 2] = static_cast<std::uint8_t>(payload_len >> 16);
  out[payload_start - 1] = static_cast<std::uint8_t>(payload_len >> 24);
  const std::uint32_t crc = crc32c(out.data() + header_start, out.size() - header_start);
  put_u32le(out, crc);
}

FrameStatus peek_frame(std::span<const std::uint8_t> buf, FrameView& out,
                       std::uint32_t max_payload) {
  if (buf.size() < 2) return FrameStatus::kNeedMore;
  if (buf[0] != kMagic0 || buf[1] != kMagic1) return FrameStatus::kBadMagic;
  if (buf.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  const std::uint32_t payload_len = static_cast<std::uint32_t>(buf[4]) |
                                    (static_cast<std::uint32_t>(buf[5]) << 8) |
                                    (static_cast<std::uint32_t>(buf[6]) << 16) |
                                    (static_cast<std::uint32_t>(buf[7]) << 24);
  if (payload_len > max_payload) return FrameStatus::kOversized;
  const std::size_t total = kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (buf.size() < total) return FrameStatus::kNeedMore;
  const std::size_t crc_at = kFrameHeaderBytes + payload_len;
  const std::uint32_t stored = static_cast<std::uint32_t>(buf[crc_at]) |
                               (static_cast<std::uint32_t>(buf[crc_at + 1]) << 8) |
                               (static_cast<std::uint32_t>(buf[crc_at + 2]) << 16) |
                               (static_cast<std::uint32_t>(buf[crc_at + 3]) << 24);
  if (crc32c(buf.data(), crc_at) != stored) return FrameStatus::kBadCrc;
  out.version = buf[2];
  out.type = static_cast<FrameType>(buf[3]);
  out.payload = buf.subspan(kFrameHeaderBytes, payload_len);
  out.frame_bytes = total;
  // Structurally sound but a version this decoder doesn't speak: report it
  // with the view filled so the caller can skip the frame and answer
  // ERROR(UNSUPPORTED_VERSION) in-band.
  if (out.version < kWireVersionMin || out.version > kWireVersionMax) {
    return FrameStatus::kBadVersion;
  }
  return FrameStatus::kOk;
}

// --- Value-vector coding -----------------------------------------------------

namespace {

/// True when every value is bit-exactly representable as q * scale with q
/// a signed integer in [lo, hi].  Quantization uses nearbyint and the
/// check is a bitwise round-trip compare, so −0.0, NaN, infinities, and
/// anything off-grid all fail into the FLOAT64 fallback.
bool fits_fixed(std::span<const double> values, double scale, double lo, double hi) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
    const double q = std::nearbyint(v / scale);
    if (!(q >= lo && q <= hi)) return false;
    const double back = q * scale;
    if (std::memcmp(&back, &v, sizeof(double)) != 0) return false;
  }
  return true;
}

}  // namespace

void encode_values(std::vector<std::uint8_t>& out, std::span<const double> values,
                   const WireEncodeOptions& opts) {
  const double scale = opts.fixed_scale;
  if (scale > 0.0 && std::isfinite(scale)) {
    if (fits_fixed(values, scale, std::numeric_limits<std::int16_t>::min(),
                   std::numeric_limits<std::int16_t>::max())) {
      put_u8(out, static_cast<std::uint8_t>(ValueCoding::kFixed16));
      put_f64le(out, scale);
      put_varint(out, values.size());
      for (double v : values) {
        put_i16le(out, static_cast<std::int16_t>(std::nearbyint(v / scale)));
      }
      return;
    }
    if (fits_fixed(values, scale, std::numeric_limits<std::int32_t>::min(),
                   std::numeric_limits<std::int32_t>::max())) {
      put_u8(out, static_cast<std::uint8_t>(ValueCoding::kFixed32));
      put_f64le(out, scale);
      put_varint(out, values.size());
      for (double v : values) {
        put_i32le(out, static_cast<std::int32_t>(std::nearbyint(v / scale)));
      }
      return;
    }
  }
  put_u8(out, static_cast<std::uint8_t>(ValueCoding::kFloat64));
  put_varint(out, values.size());
  for (double v : values) put_f64le(out, v);
}

void encode_values_absent(std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(ValueCoding::kAbsent));
}

bool decode_values(WireReader& r, std::vector<double>& out) {
  out.clear();
  const auto coding = static_cast<ValueCoding>(r.u8());
  if (!r.ok()) return false;
  switch (coding) {
    case ValueCoding::kAbsent:
      return true;
    case ValueCoding::kFloat64: {
      const std::uint64_t count = r.varint();
      if (!r.ok() || count > r.remaining() / 8) return false;
      out.resize(static_cast<std::size_t>(count));
      for (auto& v : out) v = r.f64le();
      return r.ok();
    }
    case ValueCoding::kFixed16: {
      const double scale = r.f64le();
      const std::uint64_t count = r.varint();
      if (!r.ok() || count > r.remaining() / 2) return false;
      out.resize(static_cast<std::size_t>(count));
      for (auto& v : out) v = static_cast<double>(r.i16le()) * scale;
      return r.ok();
    }
    case ValueCoding::kFixed32: {
      const double scale = r.f64le();
      const std::uint64_t count = r.varint();
      if (!r.ok() || count > r.remaining() / 4) return false;
      out.resize(static_cast<std::size_t>(count));
      for (auto& v : out) v = static_cast<double>(r.i32le()) * scale;
      return r.ok();
    }
  }
  return false;  // Unknown coding byte.
}

// --- Typed payloads ----------------------------------------------------------

void encode_hello(std::vector<std::uint8_t>& out, const HelloPayload& hello) {
  // HELLO bootstraps negotiation, so its header always says version 1: a
  // server that only speaks a later range must still be able to parse the
  // offer to refuse it intelligibly.
  const std::size_t p = frame_begin(out, FrameType::kHello, 1);
  put_u8(out, hello.min_version);
  put_u8(out, hello.max_version);
  frame_end(out, p);
}

bool decode_hello(std::span<const std::uint8_t> payload, HelloPayload& out) {
  WireReader r(payload);
  out.min_version = r.u8();
  out.max_version = r.u8();
  return r.ok() && r.remaining() == 0 && out.min_version <= out.max_version;
}

void encode_hello_ack(std::vector<std::uint8_t>& out, std::uint8_t version) {
  const std::size_t p = frame_begin(out, FrameType::kHelloAck, 1);
  put_u8(out, version);
  frame_end(out, p);
}

bool decode_hello_ack(std::span<const std::uint8_t> payload, std::uint8_t& version) {
  WireReader r(payload);
  version = r.u8();
  return r.ok() && r.remaining() == 0;
}

void encode_error(std::vector<std::uint8_t>& out, const ErrorPayload& error) {
  const std::size_t p = frame_begin(out, FrameType::kError);
  put_u8(out, static_cast<std::uint8_t>(error.code));
  put_varint(out, error.detail.size());
  out.insert(out.end(), error.detail.begin(), error.detail.end());
  frame_end(out, p);
}

bool decode_error(std::span<const std::uint8_t> payload, ErrorPayload& out) {
  WireReader r(payload);
  out.code = static_cast<ErrorCode>(r.u8());
  const std::uint64_t len = r.varint();
  if (!r.ok() || len > r.remaining()) return false;
  const auto view = r.bytes(static_cast<std::size_t>(len));
  out.detail.assign(view.begin(), view.end());
  return r.ok() && r.remaining() == 0;
}

namespace {

/// The SUBMIT_WINDOW payload minus its leading flags byte — shared
/// verbatim by the v2 SUBMIT_BATCH entries, so v1 bytes never shift.
void encode_window_body(std::vector<std::uint8_t>& out, const host::CompressedWindow& window,
                        const WireEncodeOptions& opts) {
  put_varint(out, window.patient_id);
  put_varint(out, window.window_index);
  put_varint(out, window.matrix_seed);
  put_varint(out, window.window_samples);
  put_varint(out, window.ones_per_column);
  put_u8(out, static_cast<std::uint8_t>(window.priority));
  put_varint(out, window.route_tag);
  encode_values(out, window.measurements, opts);
  if (window.reference.empty()) {
    encode_values_absent(out);
  } else {
    encode_values(out, window.reference, opts);
  }
}

bool decode_window_body(WireReader& r, host::CompressedWindow& out, host::PayloadPool* pool) {
  out.patient_id = static_cast<std::uint32_t>(r.varint());
  out.window_index = static_cast<std::uint32_t>(r.varint());
  out.matrix_seed = r.varint();
  out.window_samples = static_cast<std::uint32_t>(r.varint());
  out.ones_per_column = static_cast<std::uint32_t>(r.varint());
  out.priority = static_cast<cs::WindowPriority>(r.u8());
  out.route_tag = static_cast<std::uint32_t>(r.varint());
  if (pool) {
    if (out.measurements.capacity() == 0) out.measurements = pool->acquire_measurements();
    if (out.reference.capacity() == 0) out.reference = pool->acquire_reference();
  }
  if (!decode_values(r, out.measurements)) return false;
  if (!decode_values(r, out.reference)) return false;
  return r.ok();
}

}  // namespace

void encode_submit_window(std::vector<std::uint8_t>& out, const host::CompressedWindow& window,
                          std::uint8_t flags, const WireEncodeOptions& opts) {
  const std::size_t p = frame_begin(out, FrameType::kSubmitWindow);
  put_u8(out, flags);
  encode_window_body(out, window, opts);
  frame_end(out, p);
}

bool decode_submit_window(std::span<const std::uint8_t> payload, host::CompressedWindow& out,
                          std::uint8_t& flags, host::PayloadPool* pool) {
  WireReader r(payload);
  flags = r.u8();
  if (!decode_window_body(r, out, pool)) return false;
  return r.ok() && r.remaining() == 0;
}

void encode_submit_ack(std::vector<std::uint8_t>& out, std::uint64_t local_ticket) {
  const std::size_t p = frame_begin(out, FrameType::kSubmitAck);
  put_varint(out, local_ticket);
  frame_end(out, p);
}

bool decode_submit_ack(std::span<const std::uint8_t> payload, std::uint64_t& local_ticket) {
  WireReader r(payload);
  local_ticket = r.varint();
  return r.ok() && r.remaining() == 0;
}

void encode_submit_reject(std::vector<std::uint8_t>& out) {
  frame_end(out, frame_begin(out, FrameType::kSubmitReject));
}

void encode_poll(std::vector<std::uint8_t>& out, std::uint32_t max_results) {
  const std::size_t p = frame_begin(out, FrameType::kPoll);
  put_varint(out, max_results);
  frame_end(out, p);
}

bool decode_poll(std::span<const std::uint8_t> payload, std::uint32_t& max_results) {
  WireReader r(payload);
  max_results = static_cast<std::uint32_t>(r.varint());
  return r.ok() && r.remaining() == 0;
}

void encode_result_entry(std::vector<std::uint8_t>& staging, const host::WindowResult& result,
                         const WireEncodeOptions& opts) {
  put_varint(staging, result.patient_id);
  put_varint(staging, result.window_index);
  put_u8(staging, static_cast<std::uint8_t>(result.priority));
  put_varint(staging, result.route_tag);
  put_varint(staging, result.ticket);
  put_f64le(staging, result.snr_db);
  put_varint(staging,
             static_cast<std::uint64_t>(result.iterations < 0 ? 0 : result.iterations));
  put_f64le(staging, result.latency_ms);
  put_f64le(staging, result.e2e_ms);
  // Reconstructed signals are FISTA output, not on the fixed-point grid;
  // they ship FLOAT64 so the bit-identical determinism contract survives
  // the wire.  The coding byte still makes this explicit per frame.
  encode_values(staging, result.signal, WireEncodeOptions{});
  (void)opts;
}

bool decode_result_entry(WireReader& r, host::WindowResult& out, host::PayloadPool* pool) {
  out.patient_id = static_cast<std::uint32_t>(r.varint());
  out.window_index = static_cast<std::uint32_t>(r.varint());
  out.priority = static_cast<cs::WindowPriority>(r.u8());
  out.route_tag = static_cast<std::uint32_t>(r.varint());
  out.ticket = r.varint();
  out.snr_db = r.f64le();
  out.iterations = static_cast<int>(r.varint());
  out.latency_ms = r.f64le();
  out.e2e_ms = r.f64le();
  if (pool && out.signal.capacity() == 0) out.signal = pool->acquire_signal();
  if (!decode_values(r, out.signal)) return false;
  return r.ok();
}

void encode_result(std::vector<std::uint8_t>& out, const host::WindowResult& result,
                   const WireEncodeOptions& opts) {
  const std::size_t p = frame_begin(out, FrameType::kResult);
  encode_result_entry(out, result, opts);
  frame_end(out, p);
}

bool decode_result(std::span<const std::uint8_t> payload, host::WindowResult& out,
                   host::PayloadPool* pool) {
  WireReader r(payload);
  if (!decode_result_entry(r, out, pool)) return false;
  return r.ok() && r.remaining() == 0;
}

void encode_poll_end(std::vector<std::uint8_t>& out, std::uint32_t results_sent) {
  const std::size_t p = frame_begin(out, FrameType::kPollEnd);
  put_varint(out, results_sent);
  frame_end(out, p);
}

bool decode_poll_end(std::span<const std::uint8_t> payload, std::uint32_t& results_sent) {
  WireReader r(payload);
  results_sent = static_cast<std::uint32_t>(r.varint());
  return r.ok() && r.remaining() == 0;
}

void encode_patient_frame(std::vector<std::uint8_t>& out, FrameType type,
                          std::uint32_t patient_id) {
  const std::size_t p = frame_begin(out, type);
  put_varint(out, patient_id);
  frame_end(out, p);
}

bool decode_patient_frame(std::span<const std::uint8_t> payload, std::uint32_t& patient_id) {
  WireReader r(payload);
  patient_id = static_cast<std::uint32_t>(r.varint());
  return r.ok() && r.remaining() == 0;
}

void encode_slo_state(std::vector<std::uint8_t>& out, FrameType type,
                      const SloStatePayload& slo) {
  const std::size_t p = frame_begin(out, type);
  put_varint(out, slo.patient_id);
  put_u8(out, slo.present ? 1 : 0);
  if (slo.present) {
    const auto& s = slo.state;
    put_varint(out, s.submitted);
    put_varint(out, s.completed);
    put_varint(out, s.retrieved);
    put_varint(out, s.shed_routine);
    put_varint(out, s.shed_urgent);
    put_varint(out, s.rejected);
    put_varint(out, s.violations);
    put_varint(out, s.sum_us);
    put_varint(out, s.max_us);
    put_varint(out, s.max_in_flight);
    put_varint(out, s.elapsed_us);
    put_varint(out, s.buckets.size());
    for (const auto& [index, count] : s.buckets) {
      put_varint(out, index);
      put_varint(out, count);
    }
  }
  frame_end(out, p);
}

bool decode_slo_state(std::span<const std::uint8_t> payload, SloStatePayload& out) {
  WireReader r(payload);
  out.patient_id = static_cast<std::uint32_t>(r.varint());
  const std::uint8_t present = r.u8();
  if (!r.ok() || present > 1) return false;
  out.present = present == 1;
  out.state = host::SloTrackerState{};
  if (out.present) {
    auto& s = out.state;
    s.submitted = r.varint();
    s.completed = r.varint();
    s.retrieved = r.varint();
    s.shed_routine = r.varint();
    s.shed_urgent = r.varint();
    s.rejected = r.varint();
    s.violations = r.varint();
    s.sum_us = r.varint();
    s.max_us = r.varint();
    s.max_in_flight = r.varint();
    s.elapsed_us = r.varint();
    const std::uint64_t n = r.varint();
    if (!r.ok() || n > r.remaining() / 2) return false;  // >= 2 bytes per bin.
    s.buckets.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto index = static_cast<std::uint32_t>(r.varint());
      const std::uint64_t count = r.varint();
      s.buckets.emplace_back(index, count);
    }
  }
  return r.ok() && r.remaining() == 0;
}

void encode_adopt_ack(std::vector<std::uint8_t>& out, bool adopted) {
  const std::size_t p = frame_begin(out, FrameType::kAdoptAck);
  put_u8(out, adopted ? 1 : 0);
  frame_end(out, p);
}

bool decode_adopt_ack(std::span<const std::uint8_t> payload, bool& adopted) {
  WireReader r(payload);
  const std::uint8_t v = r.u8();
  adopted = v == 1;
  return r.ok() && v <= 1 && r.remaining() == 0;
}

void encode_snapshot_request(std::vector<std::uint8_t>& out) {
  frame_end(out, frame_begin(out, FrameType::kSnapshotRequest));
}

void encode_snapshot(std::vector<std::uint8_t>& out, const SnapshotPayload& snap) {
  const std::size_t p = frame_begin(out, FrameType::kSnapshot);
  put_varint(out, snap.submitted);
  put_varint(out, snap.completed);
  put_varint(out, snap.retrieved);
  put_varint(out, snap.shed_routine);
  put_varint(out, snap.shed_urgent);
  put_varint(out, snap.rejected);
  put_varint(out, snap.deadline_violations);
  put_varint(out, snap.unsolved);
  put_varint(out, snap.ready);
  frame_end(out, p);
}

bool decode_snapshot(std::span<const std::uint8_t> payload, SnapshotPayload& out) {
  WireReader r(payload);
  out.submitted = r.varint();
  out.completed = r.varint();
  out.retrieved = r.varint();
  out.shed_routine = r.varint();
  out.shed_urgent = r.varint();
  out.rejected = r.varint();
  out.deadline_violations = r.varint();
  out.unsolved = r.varint();
  out.ready = r.varint();
  return r.ok() && r.remaining() == 0;
}

void encode_bye(std::vector<std::uint8_t>& out) {
  frame_end(out, frame_begin(out, FrameType::kBye));
}

void encode_bye_ack(std::vector<std::uint8_t>& out) {
  frame_end(out, frame_begin(out, FrameType::kByeAck));
}

// --- v2 batched frames -------------------------------------------------------

void encode_submit_batch_entry(std::vector<std::uint8_t>& staging,
                               const host::CompressedWindow& window,
                               const WireEncodeOptions& opts) {
  encode_window_body(staging, window, opts);
}

void encode_submit_batch_prefix(std::vector<std::uint8_t>& out, std::uint8_t flags,
                                std::uint64_t count, std::size_t bodies_len) {
  put_u8(out, kMagic0);
  put_u8(out, kMagic1);
  put_u8(out, 2);
  put_u8(out, static_cast<std::uint8_t>(FrameType::kSubmitBatch));
  const std::size_t len_at = out.size();
  put_u32le(out, 0);
  put_u8(out, flags);
  put_varint(out, count);
  const std::size_t payload_len = (out.size() - len_at - 4) + bodies_len;
  out[len_at] = static_cast<std::uint8_t>(payload_len);
  out[len_at + 1] = static_cast<std::uint8_t>(payload_len >> 8);
  out[len_at + 2] = static_cast<std::uint8_t>(payload_len >> 16);
  out[len_at + 3] = static_cast<std::uint8_t>(payload_len >> 24);
}

void encode_submit_batch_trailer(std::vector<std::uint8_t>& out,
                                 std::span<const std::uint8_t> prefix,
                                 std::span<const std::uint8_t> bodies) {
  std::uint32_t state = kCrc32cInit;
  state = crc32c_update(state, prefix.data(), prefix.size());
  state = crc32c_update(state, bodies.data(), bodies.size());
  put_u32le(out, crc32c_finish(state));
}

void encode_submit_batch(std::vector<std::uint8_t>& out,
                         std::span<const host::CompressedWindow> windows,
                         std::uint8_t flags, const WireEncodeOptions& opts) {
  const std::size_t p = frame_begin(out, FrameType::kSubmitBatch, 2);
  put_u8(out, flags);
  put_varint(out, windows.size());
  for (const auto& window : windows) encode_window_body(out, window, opts);
  frame_end(out, p);
}

bool decode_submit_batch_header(WireReader& r, std::uint8_t& flags, std::uint64_t& count) {
  flags = r.u8();
  count = r.varint();
  // Each window body is at least 8 bytes (7 varints/bytes + 2 codings);
  // bounding count up front keeps a hostile count from driving a loop.
  return r.ok() && count <= r.remaining();
}

bool decode_submit_batch_entry(WireReader& r, host::CompressedWindow& out,
                               host::PayloadPool* pool) {
  return decode_window_body(r, out, pool);
}

bool decode_submit_batch(std::span<const std::uint8_t> payload, std::uint8_t& flags,
                         std::vector<host::CompressedWindow>& out, host::PayloadPool* pool) {
  WireReader r(payload);
  std::uint64_t count = 0;
  if (!decode_submit_batch_header(r, flags, count)) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    host::CompressedWindow window;
    if (!decode_submit_batch_entry(r, window, pool)) return false;
    out.push_back(std::move(window));
  }
  return r.ok() && r.remaining() == 0;
}

void encode_submit_batch_ack(std::vector<std::uint8_t>& out,
                             std::span<const SubmitBatchAckEntry> entries) {
  const std::size_t p = frame_begin(out, FrameType::kSubmitBatchAck, 2);
  put_varint(out, entries.size());
  for (const auto& entry : entries) {
    put_u8(out, entry.accepted ? 1 : 0);
    if (entry.accepted) put_varint(out, entry.local_ticket);
  }
  frame_end(out, p);
}

bool decode_submit_batch_ack(std::span<const std::uint8_t> payload,
                             std::vector<SubmitBatchAckEntry>& out) {
  WireReader r(payload);
  const std::uint64_t count = r.varint();
  if (!r.ok() || count > r.remaining()) return false;  // >= 1 byte per entry.
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    SubmitBatchAckEntry entry;
    const std::uint8_t accepted = r.u8();
    if (!r.ok() || accepted > 1) return false;
    entry.accepted = accepted == 1;
    if (entry.accepted) entry.local_ticket = r.varint();
    out.push_back(entry);
  }
  return r.ok() && r.remaining() == 0;
}

void encode_poll_many(std::vector<std::uint8_t>& out, std::uint32_t max_results) {
  const std::size_t p = frame_begin(out, FrameType::kPollMany, 2);
  put_varint(out, max_results);
  frame_end(out, p);
}

bool decode_poll_many(std::span<const std::uint8_t> payload, std::uint32_t& max_results) {
  WireReader r(payload);
  max_results = static_cast<std::uint32_t>(r.varint());
  return r.ok() && r.remaining() == 0;
}

void encode_result_batch(std::vector<std::uint8_t>& out,
                         std::span<const std::uint8_t> bodies, std::uint64_t count) {
  const std::size_t p = frame_begin(out, FrameType::kResultBatch, 2);
  put_varint(out, count);
  out.insert(out.end(), bodies.begin(), bodies.end());
  frame_end(out, p);
}

bool decode_result_batch_header(WireReader& r, std::uint64_t& count) {
  const std::uint64_t n = r.varint();
  // A result body is well over 8 bytes; 1 byte/entry bounds a hostile count.
  if (!r.ok() || n > r.remaining()) return false;
  count = n;
  return true;
}

bool decode_result_batch(std::span<const std::uint8_t> payload,
                         std::vector<host::WindowResult>& out, host::PayloadPool* pool) {
  WireReader r(payload);
  std::uint64_t count = 0;
  if (!decode_result_batch_header(r, count)) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    host::WindowResult result;
    if (!decode_result_entry(r, result, pool)) return false;
    out.push_back(std::move(result));
  }
  return r.ok() && r.remaining() == 0;
}

// --- v2 CR-hint frames -------------------------------------------------------

void encode_cr_hint(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                    std::uint32_t max_entries) {
  const std::size_t p = frame_begin(out, FrameType::kCrHint, 2);
  put_varint(out, epoch);
  put_varint(out, max_entries);
  frame_end(out, p);
}

bool decode_cr_hint(std::span<const std::uint8_t> payload, std::uint64_t& epoch,
                    std::uint32_t& max_entries) {
  WireReader r(payload);
  epoch = r.varint();
  max_entries = static_cast<std::uint32_t>(r.varint());
  return r.ok() && r.remaining() == 0;
}

void encode_cr_hint_ack(std::vector<std::uint8_t>& out, const CrHintAckPayload& ack) {
  const std::size_t p = frame_begin(out, FrameType::kCrHintAck, 2);
  put_varint(out, ack.epoch);
  put_varint(out, ack.advisory_cr_centi);
  put_varint(out, ack.entries.size());
  for (const auto& entry : ack.entries) {
    put_varint(out, entry.patient_id);
    put_varint(out, entry.cr_centi);
  }
  frame_end(out, p);
}

bool decode_cr_hint_ack(std::span<const std::uint8_t> payload, CrHintAckPayload& out) {
  WireReader r(payload);
  out.epoch = r.varint();
  out.advisory_cr_centi = static_cast<std::uint32_t>(r.varint());
  const std::uint64_t count = r.varint();
  if (!r.ok() || count > r.remaining() / 2) return false;  // >= 2 bytes per entry.
  out.entries.clear();
  out.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CrHintEntry entry;
    entry.patient_id = static_cast<std::uint32_t>(r.varint());
    entry.cr_centi = static_cast<std::uint32_t>(r.varint());
    out.entries.push_back(entry);
  }
  return r.ok() && r.remaining() == 0;
}

// --- v2 health probe ---------------------------------------------------------

void encode_health(std::vector<std::uint8_t>& out, std::uint64_t nonce) {
  const std::size_t p = frame_begin(out, FrameType::kHealth, 2);
  put_varint(out, nonce);
  frame_end(out, p);
}

bool decode_health(std::span<const std::uint8_t> payload, std::uint64_t& nonce) {
  WireReader r(payload);
  nonce = r.varint();
  return r.ok() && r.remaining() == 0;
}

void encode_health_ack(std::vector<std::uint8_t>& out, const HealthAckPayload& ack) {
  const std::size_t p = frame_begin(out, FrameType::kHealthAck, 2);
  put_varint(out, ack.nonce);
  put_varint(out, ack.unsolved);
  put_varint(out, ack.ready);
  frame_end(out, p);
}

bool decode_health_ack(std::span<const std::uint8_t> payload, HealthAckPayload& out) {
  WireReader r(payload);
  out.nonce = r.varint();
  out.unsolved = r.varint();
  out.ready = r.varint();
  return r.ok() && r.remaining() == 0;
}

}  // namespace wbsn::net
