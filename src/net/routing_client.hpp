// RoutingClient — the coordinator half of the cross-machine fabric.
//
// Speaks wbsn-wire (v1, and v2 where the shard negotiates it) to a fleet
// of ShardServer processes and presents the same submit/poll/drain
// surface as host::ReconstructionFabric, with the same placement
// guarantees proven for the in-process fabric (PR 5):
//
//   * Patients are routed by the same consistent-hash ring
//     (host::HashRing) the in-process fabric uses — the ring is rebuilt
//     locally from (shard_count, vnodes_per_shard), so client and any
//     audit tool agree on placement without a metadata service.
//   * set_topology() opens a new routing epoch, exactly like
//     ReconstructionFabric::resize(): the ring/endpoint list flips first
//     (no new submission routes to a leaving shard), then every moved
//     patient is drained on its old shard (DRAIN_PATIENT), its SLO
//     history extracted (EXTRACT_SLO) and adopted by the new owner
//     (ADOPT_SLO) — counts conserved end to end because extract_state()
//     is an exchange(0) on every counter.
//   * Tickets are the fabric's composite epoch | shard | local form
//     (ReconstructionFabric::compose_ticket).  The submission epoch rides
//     in CompressedWindow::route_tag and comes back in the result, and the
//     client keeps the ring of every epoch it has opened, so a result
//     polled after any number of reshards still composes the exact ticket
//     its submit() returned.
//   * Shards leaving the topology are retired synchronously: their
//     remaining results are polled out, their final counter snapshot is
//     folded into the client's retired accumulator (so
//     aggregate_snapshot() conserves submitted == completed + shed and
//     attempts == submitted + rejected across the whole topology
//     history), and they are dismissed with BYE — which stops a
//     stop_on_bye daemon.
//   * Shards that *crash* can't be retired — they will never answer the
//     drain/extract handshake.  fail_shard() (manual, or automatic under
//     cfg.auto_failover when I/O or a health probe fails) opens a
//     failover epoch instead: the ring flips to a subset ring over the
//     survivors, the dead shard's patients re-home, and the client's own
//     per-shard submit/poll mirrors replace the unavailable final
//     snapshot — windows acknowledged but never polled back land in the
//     explicit `lost` counter, so the audit identity becomes
//     submitted == completed + shed + rejected + lost and stays conserved
//     across crashes.
//   * Pipelined submits (v2 shards, pipeline_depth > 0): submit_pipelined
//     stages windows into per-shard SUBMIT_BATCH frames (one frame per
//     submit_batch_windows windows, sealed scatter-gather — prefix, the
//     staged bodies, CRC trailer — in one sendmsg), keeps up to
//     pipeline_depth unacknowledged frames on the wire per shard, and
//     defers ticket composition until the SUBMIT_BATCH_ACK arrives.
//     flush_submits() is the sync point: it seals the tail, harvests
//     every outstanding ACK, and returns the composite tickets in
//     submission order.  Any other verb on a shard syncs its pipeline
//     first (responses are per-connection ordered).  On a v1 shard
//     submit_pipelined transparently falls back to a per-window blocking
//     SUBMIT — same tickets, one round trip per window.
//
// Threading: single-coordinator by design, like the reshard protocol
// itself — one thread owns the client; it is not thread-safe.  Sockets
// are blocking with I/O timeouts; a failed connection is retried with
// exponential backoff (reconnect_* knobs).  Verbs that carry no
// server-side state transition are retried across a reconnect; SUBMIT is
// not (a retry could double-submit), it reports failure instead.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "host/hash_ring.hpp"
#include "host/reconstruction_engine.hpp"
#include "net/socket.hpp"
#include "net/wire_format.hpp"

namespace wbsn::net {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  bool operator==(const ShardEndpoint&) const = default;
};

struct RoutingClientConfig {
  /// Must match the in-process fabric's FabricConfig::vnodes_per_shard for
  /// placement parity with audit tooling.
  std::size_t vnodes_per_shard = 64;
  int connect_timeout_ms = 5000;
  /// Per-operation socket send/recv timeout.  Generous by default: a
  /// DRAIN_PATIENT response legitimately waits out a backlog.
  int io_timeout_ms = 60000;
  int reconnect_attempts = 5;
  int reconnect_backoff_ms = 10;  ///< Doubles per attempt up to the cap.
  /// Ceiling on one backoff sleep.  The schedule is base·2^(k-1) clamped
  /// here, plus deterministic jitter up to +25% (see backoff_delay_ms) —
  /// uncapped doubling overflowed int at high reconnect_attempts.
  int reconnect_backoff_max_ms = 2000;
  /// Socket receive deadline for a HEALTH probe response, separate from
  /// io_timeout_ms (which is sized for verbs that legitimately wait, like
  /// DRAIN_PATIENT).  A shard that cannot echo a nonce within this window
  /// is treated as dead by check_health().  <= 0: use io_timeout_ms.
  int health_probe_timeout_ms = 1000;
  /// Crash failover: when a shard stops answering (send/recv error after
  /// reconnect retries, or a health-probe timeout), fail it automatically
  /// — fail_shard() semantics — and re-route the in-hand window to the
  /// survivor that now owns its patient.  Off by default: without it a
  /// dead shard surfaces as submit/poll failures, exactly as before.
  bool auto_failover = false;
  /// Deterministic fault hook for tests: called before every frame send
  /// with (shard index, frames already sent on that connection); returning
  /// true tears the connection down at that exact frame boundary, so a
  /// mid-stream crash can be scripted and replayed bit-for-bit.  Unset in
  /// production.
  std::function<bool(std::size_t, std::uint64_t)> fault_inject;
  /// Results requested per POLL sweep of one shard.
  std::uint32_t poll_batch = 64;
  /// Highest wire version offered in HELLO.  Default: everything this
  /// build speaks.  Set 1 to force v1 framing fleet-wide (staged
  /// rollouts, mixed-version tests); negotiation still lands on the
  /// shard's ceiling when it is lower.
  std::uint8_t max_wire_version = kWireVersionMax;
  /// Pipelined submit window: maximum unacknowledged SUBMIT_BATCH frames
  /// per shard before submit_pipelined harvests an ACK.  0 (default)
  /// disables pipelining — submit_pipelined degrades to a per-window
  /// blocking submit even on v2 shards.
  std::size_t pipeline_depth = 0;
  /// Windows packed into one SUBMIT_BATCH frame in pipelined mode.
  std::size_t submit_batch_windows = 16;
  WireEncodeOptions wire{};
  /// Decode result signals into pooled buffers; recycle submitted windows'
  /// payloads after the shard acknowledges them.  Same zero-copy contract
  /// as EngineConfig::payload_pool.
  std::shared_ptr<host::PayloadPool> payload_pool;
};

class RoutingClient {
 public:
  explicit RoutingClient(RoutingClientConfig cfg = {});
  ~RoutingClient();

  RoutingClient(const RoutingClient&) = delete;
  RoutingClient& operator=(const RoutingClient&) = delete;

  /// Connects and version-negotiates with every endpoint; epoch 0 opens on
  /// success.  False when any endpoint stays unreachable after retries.
  bool connect(std::vector<ShardEndpoint> shards);

  /// Topology slots, failed ones included — index identity is what keeps
  /// composite tickets stable across failovers.
  std::size_t shard_count() const { return conns_.size(); }
  std::size_t live_shard_count() const;
  bool shard_failed(std::size_t shard) const;
  std::uint32_t epoch() const { return epoch_; }

  /// The shard index that owns `patient_id` under the current epoch.
  std::size_t owner(std::uint32_t patient_id) const;

  /// Reshards to a new endpoint set under a fresh epoch (see file
  /// comment).  Endpoints are matched by host:port, so surviving shards
  /// keep their connections (and their engines keep their backlogs) even
  /// when their index shifts.  False when a new endpoint is unreachable
  /// or a migration verb fails; the epoch flip is not rolled back —
  /// resolve connectivity and call again.
  bool set_topology(std::vector<ShardEndpoint> shards);

  /// Routes one window to its owner shard.  Returns the composite ticket,
  /// or nullopt on shard backpressure (SUBMIT_REJECT) or a dead shard.
  /// `window` is untouched on rejection.
  std::optional<std::uint64_t> try_submit(host::CompressedWindow&& window);

  /// Blocking submit: the shard waits out its backpressure server-side
  /// (never sheds, never counts a rejection).  nullopt only on a dead
  /// connection.
  std::optional<std::uint64_t> submit(host::CompressedWindow window);

  /// Pipelined submit (see file comment): stages the window toward its
  /// owner shard and returns immediately — the ticket arrives with the
  /// batch ACK and is surfaced by the next flush_submits().  Blocking
  /// admission semantics on the shard (never sheds, never counts a
  /// rejection), like submit().  False only on a dead connection (the
  /// window is then dropped, consistent with the no-retry SUBMIT rule).
  bool submit_pipelined(host::CompressedWindow&& window);

  /// Seals every staged batch, harvests every outstanding ACK, and
  /// returns one entry per submit_pipelined() since the last flush, in
  /// submission order: the composite ticket, or nullopt when the window
  /// was rejected or its connection died with the ACK outstanding (such
  /// windows are NOT retried — a retry could double-submit).
  std::vector<std::optional<std::uint64_t>> flush_submits();

  /// Wire version negotiated with shard `shard` (1 or 2).
  std::uint8_t shard_wire_version(std::size_t shard) const;

  /// One completed result in arrival order across shards, or nullopt when
  /// none is ready anywhere right now.
  std::optional<host::WindowResult> poll();

  /// Polls until every shard reports quiescence (nothing unsolved, nothing
  /// ready) and returns everything retrieved.
  std::vector<host::WindowResult> drain();

  /// Sum of every live shard's counter snapshot plus the retired
  /// accumulator — the conservation audit surface.  Exact when quiesced.
  SnapshotPayload aggregate_snapshot();

  /// Polls every v2 shard with CR_HINT and caches the answers: the
  /// shard-wide advisory CR and any per-patient entries, all tagged with
  /// the current routing epoch (a reshard invalidates them — stale hints
  /// must never steer a node via the wrong owner).  v1 shards are skipped
  /// silently (the verb does not exist there; absence of a hint just means
  /// full-fidelity encoding).  False when any v2 shard was unreachable or
  /// answered for a different epoch; the hints that did land are kept.
  bool refresh_cr_hints(std::uint32_t max_entries_per_shard = 64);

  /// The advisory CR (percent) the fleet wants `patient_id`'s node to
  /// encode at, from the last refresh_cr_hints(): the per-patient entry if
  /// the shard sent one, else its owner shard's advisory.  nullopt when no
  /// pressure was reported or the hints predate the current epoch — the
  /// node then encodes at its configured fidelity.  Advisory by contract:
  /// ignoring it is always correct, just slower under overload.
  std::optional<double> cr_hint(std::uint32_t patient_id) const;

  /// Declares shard `shard` dead and recovers without its cooperation:
  /// the connection drops, unacked pipelined windows resolve to nullopt,
  /// and a failover epoch flips the ring to a subset ring over the
  /// survivors — no DRAIN_PATIENT/EXTRACT_SLO handshake, the peer is
  /// gone.  Because virtual-node positions depend only on (shard,
  /// replica), only the dead shard's patients move and every survivor
  /// keeps its index, so tickets from any epoch still compose.  The
  /// client's own submit/poll mirrors stand in for the unavailable final
  /// snapshot: every acknowledged window is folded into the retired
  /// accumulator as completed (polled back in time) or `lost` (destroyed
  /// with the shard — including any it shed before dying, which are
  /// indistinguishable from here).  The dead shard's per-patient SLO
  /// history dies with it; survivors adopt its patients with fresh
  /// trackers.  False when the shard is already failed, out of range, or
  /// the last one standing (nowhere to re-home).
  bool fail_shard(std::size_t shard);

  /// One liveness round trip to shard `shard`: HEALTH (nonce echoed) on
  /// v2 connections, SNAPSHOT_REQUEST on v1, answered within
  /// health_probe_timeout_ms.  False means dead-or-deadlined — the
  /// caller's (or check_health's) cue to fail over.
  bool probe_health(std::size_t shard);

  /// Probes every live shard; with cfg.auto_failover, dead ones are
  /// failed over on the spot.  Returns the indices that failed the probe.
  std::vector<std::size_t> check_health();

  /// The capped-and-jittered reconnect schedule: attempt k (1-based)
  /// sleeps base·2^(k-1) ms, clamped to max_ms, plus a deterministic
  /// jitter of up to +25% derived from (seed, attempt).  Pure — exposed
  /// so tests can pin the schedule byte-for-byte.
  static int backoff_delay_ms(int attempt, int base_ms, int max_ms, std::uint64_t seed);

  /// Per-patient SLO state fetched from the patient's current owner
  /// (EXTRACT_SLO + immediate ADOPT_SLO back, so the history stays on the
  /// shard).  nullopt when the shard is unreachable.
  std::optional<host::SloTrackerState> patient_slo_state(std::uint32_t patient_id);

  /// Closes every connection; with `send_bye`, dismisses the shards first
  /// (stops stop_on_bye daemons).  Idempotent; the destructor calls
  /// shutdown(false).
  void shutdown(bool send_bye);

 private:
  /// One submit_pipelined() call awaiting its ticket.
  struct PipelinedSubmit {
    std::uint32_t epoch = 0;
    std::size_t shard = 0;
    bool resolved = false;
    std::optional<std::uint64_t> ticket;  ///< Composite; set when resolved.
  };

  struct Conn {
    ShardEndpoint endpoint;
    Fd fd;
    std::vector<std::uint8_t> rx;
    std::uint8_t version = kWireVersion;  ///< Negotiated on (re)connect.
    std::size_t index = 0;  ///< Shard index (== this conn's slot in conns_).
    /// Declared dead by fail_shard(): never reconnected, skipped by every
    /// sweep; the slot stays so survivor indices don't shift.
    bool failed = false;
    // Client-side mirrors of the shard's counters, maintained from the
    // frames this client exchanged with it.  They are exact for exactly
    // the quantities a crash makes unknowable server-side, which is what
    // lets fail_shard() conserve counts without a final snapshot.
    std::uint64_t acked_submits = 0;  ///< Windows the shard acknowledged.
    std::uint64_t retrieved = 0;      ///< Results polled back from it.
    std::uint64_t rejected_seen = 0;  ///< SUBMIT_REJECTs it answered.
    std::uint64_t frames_sent = 0;    ///< Sends attempted (fault-hook clock).
    std::uint64_t health_nonce = 0;   ///< Last probe nonce issued.
    // Pipelined-submit state (v2 connections).  staged_bodies holds
    // encoded window bodies not yet sealed into a frame; pending_submits
    // indexes pipeline_submits_ in per-shard FIFO order (ACK entries
    // resolve from the front); outstanding_counts tracks the window count
    // of each unacknowledged SUBMIT_BATCH on the wire.
    std::vector<std::uint8_t> staged_bodies;
    std::uint64_t staged_count = 0;
    std::deque<std::size_t> pending_submits;
    std::deque<std::size_t> outstanding_counts;
  };

  bool ensure_connected(Conn& conn);
  bool reconnect(Conn& conn);
  /// Sends `buf`; one reconnect-and-resend on failure when `may_retry`.
  bool send_request(Conn& conn, const std::vector<std::uint8_t>& buf, bool may_retry);
  /// Blocks until one complete frame is buffered; fills `frame` (a copy,
  /// stable against further reads) and parses it into `view`.
  bool read_frame(Conn& conn, std::vector<std::uint8_t>& frame, FrameView& view);
  /// Reads result frames into pending_ until POLL_END; count retrieved.
  bool read_poll_results(Conn& conn, std::size_t* retrieved);
  /// One POLL/POLL_MANY round trip pulling results into pending_.
  bool sweep_shard(Conn& conn, std::size_t* retrieved);
  /// Seals staged_bodies into one SUBMIT_BATCH on the wire (scatter-
  /// gather) and enforces the pipeline depth by harvesting ACKs.
  bool seal_batch(Conn& conn);
  /// Blocks for one SUBMIT_BATCH_ACK and resolves its windows' tickets.
  bool harvest_ack(Conn& conn);
  /// seal + harvest everything outstanding; called before any other verb
  /// uses the connection (responses are per-connection ordered).
  bool sync_pipeline(Conn& conn);
  /// Marks every unresolved pipelined window of this conn as lost
  /// (nullopt ticket) — the connection died with ACKs outstanding.
  void fail_pipeline(Conn& conn);
  std::uint64_t compose_result_ticket(const host::WindowResult& result);
  bool drain_and_move_patient(std::uint32_t patient_id, Conn& from, Conn& to);
  bool retire(Conn& conn);
  bool fetch_snapshot(Conn& conn, SnapshotPayload& out);

  RoutingClientConfig cfg_;
  std::vector<std::unique_ptr<Conn>> conns_;  ///< Index == shard index.
  std::uint32_t epoch_ = 0;
  /// ring_history_[e] is epoch e's ring: result tickets compose with the
  /// shard index of their *submission* epoch, whatever the topology now.
  std::vector<host::HashRing> ring_history_;
  std::unordered_set<std::uint32_t> patients_;  ///< Ever-submitted ids.
  std::deque<host::WindowResult> pending_;      ///< Polled, not yet returned.
  SnapshotPayload retired_;  ///< Folded snapshots of dismissed shards.
  /// submit_pipelined() calls since the last flush_submits(), in global
  /// submission order; conns' pending_submits index into this.
  std::vector<PipelinedSubmit> pipeline_submits_;
  /// CR-hint cache from the last refresh_cr_hints().  Valid only while
  /// hints_epoch_ == epoch_ (set_topology opens a new epoch and thereby
  /// invalidates every cached hint).  0.0 entries mean "no advisory".
  std::unordered_map<std::uint32_t, double> cr_hints_;  ///< patient -> CR %.
  std::vector<double> shard_advisory_;                  ///< shard -> CR %.
  std::uint64_t hints_epoch_ = ~std::uint64_t{0};       ///< Sentinel: none yet.
};

}  // namespace wbsn::net
