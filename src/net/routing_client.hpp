// RoutingClient — the coordinator half of the cross-machine fabric.
//
// Speaks wbsn-wire (v1, and v2 where the shard negotiates it) to a fleet
// of ShardServer processes and presents the same submit/poll/drain
// surface as host::ReconstructionFabric, with the same placement
// guarantees proven for the in-process fabric (PR 5):
//
//   * Patients are routed by the same consistent-hash ring
//     (host::HashRing) the in-process fabric uses — the ring is rebuilt
//     locally from (shard_count, vnodes_per_shard), so client and any
//     audit tool agree on placement without a metadata service.
//   * set_topology() opens a new routing epoch, exactly like
//     ReconstructionFabric::resize(): the ring/endpoint list flips first
//     (no new submission routes to a leaving shard), then every moved
//     patient is drained on its old shard (DRAIN_PATIENT), its SLO
//     history extracted (EXTRACT_SLO) and adopted by the new owner
//     (ADOPT_SLO) — counts conserved end to end because extract_state()
//     is an exchange(0) on every counter.
//   * Tickets are the fabric's composite epoch | shard | local form
//     (ReconstructionFabric::compose_ticket).  The submission epoch rides
//     in CompressedWindow::route_tag and comes back in the result, and the
//     client keeps the ring of every epoch it has opened, so a result
//     polled after any number of reshards still composes the exact ticket
//     its submit() returned.
//   * Shards leaving the topology are retired synchronously: their
//     remaining results are polled out, their final counter snapshot is
//     folded into the client's retired accumulator (so
//     aggregate_snapshot() conserves submitted == completed + shed and
//     attempts == submitted + rejected across the whole topology
//     history), and they are dismissed with BYE — which stops a
//     stop_on_bye daemon.
//   * Pipelined submits (v2 shards, pipeline_depth > 0): submit_pipelined
//     stages windows into per-shard SUBMIT_BATCH frames (one frame per
//     submit_batch_windows windows, sealed scatter-gather — prefix, the
//     staged bodies, CRC trailer — in one sendmsg), keeps up to
//     pipeline_depth unacknowledged frames on the wire per shard, and
//     defers ticket composition until the SUBMIT_BATCH_ACK arrives.
//     flush_submits() is the sync point: it seals the tail, harvests
//     every outstanding ACK, and returns the composite tickets in
//     submission order.  Any other verb on a shard syncs its pipeline
//     first (responses are per-connection ordered).  On a v1 shard
//     submit_pipelined transparently falls back to a per-window blocking
//     SUBMIT — same tickets, one round trip per window.
//
// Threading: single-coordinator by design, like the reshard protocol
// itself — one thread owns the client; it is not thread-safe.  Sockets
// are blocking with I/O timeouts; a failed connection is retried with
// exponential backoff (reconnect_* knobs).  Verbs that carry no
// server-side state transition are retried across a reconnect; SUBMIT is
// not (a retry could double-submit), it reports failure instead.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "host/hash_ring.hpp"
#include "host/reconstruction_engine.hpp"
#include "net/socket.hpp"
#include "net/wire_format.hpp"

namespace wbsn::net {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  bool operator==(const ShardEndpoint&) const = default;
};

struct RoutingClientConfig {
  /// Must match the in-process fabric's FabricConfig::vnodes_per_shard for
  /// placement parity with audit tooling.
  std::size_t vnodes_per_shard = 64;
  int connect_timeout_ms = 5000;
  /// Per-operation socket send/recv timeout.  Generous by default: a
  /// DRAIN_PATIENT response legitimately waits out a backlog.
  int io_timeout_ms = 60000;
  int reconnect_attempts = 5;
  int reconnect_backoff_ms = 10;  ///< Doubles per attempt.
  /// Results requested per POLL sweep of one shard.
  std::uint32_t poll_batch = 64;
  /// Highest wire version offered in HELLO.  Default: everything this
  /// build speaks.  Set 1 to force v1 framing fleet-wide (staged
  /// rollouts, mixed-version tests); negotiation still lands on the
  /// shard's ceiling when it is lower.
  std::uint8_t max_wire_version = kWireVersionMax;
  /// Pipelined submit window: maximum unacknowledged SUBMIT_BATCH frames
  /// per shard before submit_pipelined harvests an ACK.  0 (default)
  /// disables pipelining — submit_pipelined degrades to a per-window
  /// blocking submit even on v2 shards.
  std::size_t pipeline_depth = 0;
  /// Windows packed into one SUBMIT_BATCH frame in pipelined mode.
  std::size_t submit_batch_windows = 16;
  WireEncodeOptions wire{};
  /// Decode result signals into pooled buffers; recycle submitted windows'
  /// payloads after the shard acknowledges them.  Same zero-copy contract
  /// as EngineConfig::payload_pool.
  std::shared_ptr<host::PayloadPool> payload_pool;
};

class RoutingClient {
 public:
  explicit RoutingClient(RoutingClientConfig cfg = {});
  ~RoutingClient();

  RoutingClient(const RoutingClient&) = delete;
  RoutingClient& operator=(const RoutingClient&) = delete;

  /// Connects and version-negotiates with every endpoint; epoch 0 opens on
  /// success.  False when any endpoint stays unreachable after retries.
  bool connect(std::vector<ShardEndpoint> shards);

  std::size_t shard_count() const { return conns_.size(); }
  std::uint32_t epoch() const { return epoch_; }

  /// The shard index that owns `patient_id` under the current epoch.
  std::size_t owner(std::uint32_t patient_id) const;

  /// Reshards to a new endpoint set under a fresh epoch (see file
  /// comment).  Endpoints are matched by host:port, so surviving shards
  /// keep their connections (and their engines keep their backlogs) even
  /// when their index shifts.  False when a new endpoint is unreachable
  /// or a migration verb fails; the epoch flip is not rolled back —
  /// resolve connectivity and call again.
  bool set_topology(std::vector<ShardEndpoint> shards);

  /// Routes one window to its owner shard.  Returns the composite ticket,
  /// or nullopt on shard backpressure (SUBMIT_REJECT) or a dead shard.
  /// `window` is untouched on rejection.
  std::optional<std::uint64_t> try_submit(host::CompressedWindow&& window);

  /// Blocking submit: the shard waits out its backpressure server-side
  /// (never sheds, never counts a rejection).  nullopt only on a dead
  /// connection.
  std::optional<std::uint64_t> submit(host::CompressedWindow window);

  /// Pipelined submit (see file comment): stages the window toward its
  /// owner shard and returns immediately — the ticket arrives with the
  /// batch ACK and is surfaced by the next flush_submits().  Blocking
  /// admission semantics on the shard (never sheds, never counts a
  /// rejection), like submit().  False only on a dead connection (the
  /// window is then dropped, consistent with the no-retry SUBMIT rule).
  bool submit_pipelined(host::CompressedWindow&& window);

  /// Seals every staged batch, harvests every outstanding ACK, and
  /// returns one entry per submit_pipelined() since the last flush, in
  /// submission order: the composite ticket, or nullopt when the window
  /// was rejected or its connection died with the ACK outstanding (such
  /// windows are NOT retried — a retry could double-submit).
  std::vector<std::optional<std::uint64_t>> flush_submits();

  /// Wire version negotiated with shard `shard` (1 or 2).
  std::uint8_t shard_wire_version(std::size_t shard) const;

  /// One completed result in arrival order across shards, or nullopt when
  /// none is ready anywhere right now.
  std::optional<host::WindowResult> poll();

  /// Polls until every shard reports quiescence (nothing unsolved, nothing
  /// ready) and returns everything retrieved.
  std::vector<host::WindowResult> drain();

  /// Sum of every live shard's counter snapshot plus the retired
  /// accumulator — the conservation audit surface.  Exact when quiesced.
  SnapshotPayload aggregate_snapshot();

  /// Polls every v2 shard with CR_HINT and caches the answers: the
  /// shard-wide advisory CR and any per-patient entries, all tagged with
  /// the current routing epoch (a reshard invalidates them — stale hints
  /// must never steer a node via the wrong owner).  v1 shards are skipped
  /// silently (the verb does not exist there; absence of a hint just means
  /// full-fidelity encoding).  False when any v2 shard was unreachable or
  /// answered for a different epoch; the hints that did land are kept.
  bool refresh_cr_hints(std::uint32_t max_entries_per_shard = 64);

  /// The advisory CR (percent) the fleet wants `patient_id`'s node to
  /// encode at, from the last refresh_cr_hints(): the per-patient entry if
  /// the shard sent one, else its owner shard's advisory.  nullopt when no
  /// pressure was reported or the hints predate the current epoch — the
  /// node then encodes at its configured fidelity.  Advisory by contract:
  /// ignoring it is always correct, just slower under overload.
  std::optional<double> cr_hint(std::uint32_t patient_id) const;

  /// Per-patient SLO state fetched from the patient's current owner
  /// (EXTRACT_SLO + immediate ADOPT_SLO back, so the history stays on the
  /// shard).  nullopt when the shard is unreachable.
  std::optional<host::SloTrackerState> patient_slo_state(std::uint32_t patient_id);

  /// Closes every connection; with `send_bye`, dismisses the shards first
  /// (stops stop_on_bye daemons).  Idempotent; the destructor calls
  /// shutdown(false).
  void shutdown(bool send_bye);

 private:
  /// One submit_pipelined() call awaiting its ticket.
  struct PipelinedSubmit {
    std::uint32_t epoch = 0;
    std::size_t shard = 0;
    bool resolved = false;
    std::optional<std::uint64_t> ticket;  ///< Composite; set when resolved.
  };

  struct Conn {
    ShardEndpoint endpoint;
    Fd fd;
    std::vector<std::uint8_t> rx;
    std::uint8_t version = kWireVersion;  ///< Negotiated on (re)connect.
    // Pipelined-submit state (v2 connections).  staged_bodies holds
    // encoded window bodies not yet sealed into a frame; pending_submits
    // indexes pipeline_submits_ in per-shard FIFO order (ACK entries
    // resolve from the front); outstanding_counts tracks the window count
    // of each unacknowledged SUBMIT_BATCH on the wire.
    std::vector<std::uint8_t> staged_bodies;
    std::uint64_t staged_count = 0;
    std::deque<std::size_t> pending_submits;
    std::deque<std::size_t> outstanding_counts;
  };

  bool ensure_connected(Conn& conn);
  bool reconnect(Conn& conn);
  /// Sends `buf`; one reconnect-and-resend on failure when `may_retry`.
  bool send_request(Conn& conn, const std::vector<std::uint8_t>& buf, bool may_retry);
  /// Blocks until one complete frame is buffered; fills `frame` (a copy,
  /// stable against further reads) and parses it into `view`.
  bool read_frame(Conn& conn, std::vector<std::uint8_t>& frame, FrameView& view);
  /// Reads result frames into pending_ until POLL_END; count retrieved.
  bool read_poll_results(Conn& conn, std::size_t* retrieved);
  /// One POLL/POLL_MANY round trip pulling results into pending_.
  bool sweep_shard(Conn& conn, std::size_t* retrieved);
  /// Seals staged_bodies into one SUBMIT_BATCH on the wire (scatter-
  /// gather) and enforces the pipeline depth by harvesting ACKs.
  bool seal_batch(Conn& conn);
  /// Blocks for one SUBMIT_BATCH_ACK and resolves its windows' tickets.
  bool harvest_ack(Conn& conn);
  /// seal + harvest everything outstanding; called before any other verb
  /// uses the connection (responses are per-connection ordered).
  bool sync_pipeline(Conn& conn);
  /// Marks every unresolved pipelined window of this conn as lost
  /// (nullopt ticket) — the connection died with ACKs outstanding.
  void fail_pipeline(Conn& conn);
  std::uint64_t compose_result_ticket(const host::WindowResult& result);
  bool drain_and_move_patient(std::uint32_t patient_id, Conn& from, Conn& to);
  bool retire(Conn& conn);
  bool fetch_snapshot(Conn& conn, SnapshotPayload& out);

  RoutingClientConfig cfg_;
  std::vector<std::unique_ptr<Conn>> conns_;  ///< Index == shard index.
  std::uint32_t epoch_ = 0;
  /// ring_history_[e] is epoch e's ring: result tickets compose with the
  /// shard index of their *submission* epoch, whatever the topology now.
  std::vector<host::HashRing> ring_history_;
  std::unordered_set<std::uint32_t> patients_;  ///< Ever-submitted ids.
  std::deque<host::WindowResult> pending_;      ///< Polled, not yet returned.
  SnapshotPayload retired_;  ///< Folded snapshots of dismissed shards.
  /// submit_pipelined() calls since the last flush_submits(), in global
  /// submission order; conns' pending_submits index into this.
  std::vector<PipelinedSubmit> pipeline_submits_;
  /// CR-hint cache from the last refresh_cr_hints().  Valid only while
  /// hints_epoch_ == epoch_ (set_topology opens a new epoch and thereby
  /// invalidates every cached hint).  0.0 entries mean "no advisory".
  std::unordered_map<std::uint32_t, double> cr_hints_;  ///< patient -> CR %.
  std::vector<double> shard_advisory_;                  ///< shard -> CR %.
  std::uint64_t hints_epoch_ = ~std::uint64_t{0};       ///< Sentinel: none yet.
};

}  // namespace wbsn::net
