// ShardServer — one ReconstructionEngine behind a TCP listener.
//
// The process half of the cross-machine fabric split: where
// host::ReconstructionFabric owned N engines in one address space, a
// deployment now runs N ShardServer processes (see shard_serverd_main.cpp)
// and one RoutingClient that routes patients across them with the same
// consistent-hash ring.  The server itself is deliberately dumb: it speaks
// wbsn-wire v1 (wire_format.hpp), maps each request frame onto the
// corresponding ReconstructionEngine verb, and knows nothing about rings,
// epochs, or topology — all placement intelligence lives client-side, so
// growing the fleet never requires touching a running shard.
//
// Concurrency model: a single-threaded poll(2) event loop owns the
// listener and every connection (nonblocking sockets, per-connection
// receive/transmit buffers); the engine's own worker pool provides the
// compute parallelism.  Request frames are serviced inline in arrival
// order per connection.  Two verbs can block the loop — SUBMIT_WINDOW
// with the blocking flag (waits out admission backpressure exactly like
// ReconstructionEngine::submit, so a patient coordinator's retry doesn't
// inflate reject counters) and DRAIN_PATIENT (waits for quiescence) — and
// with them every other connection's frames wait too.  That head-of-line
// blocking is accepted v1 behaviour: both verbs are coordinator-only, the
// fabric has exactly one coordinator, and the reshard protocol stops
// routing to a shard before draining it.
//
// Shutdown: stop() from any thread (self-pipe wakes the loop), or a BYE
// frame when cfg.stop_on_bye is set — the daemon's orderly-exit path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "net/socket.hpp"
#include "net/wire_format.hpp"

namespace wbsn::net {

struct ShardServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the kernel's pick back via port() after start().
  std::uint16_t port = 0;
  host::EngineConfig engine{};
  WireEncodeOptions wire{};
  /// Exit the run() loop after answering a BYE frame (daemon mode).
  bool stop_on_bye = false;
  /// Upper bound on results returned per POLL, whatever the client asked.
  std::uint32_t max_poll_results = 4096;
};

class ShardServer {
 public:
  explicit ShardServer(ShardServerConfig cfg);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds the listener and builds the engine.  False (errno set) when the
  /// bind fails.  Must be called before run().
  bool start();

  /// The bound port (the kernel's pick when cfg.port was 0).
  std::uint16_t port() const { return listener_.port(); }

  /// Blocking event loop; returns after stop() or (with stop_on_bye) a
  /// BYE.  Call from a dedicated thread when embedding in-process.
  void run();

  /// Requests run() to return.  Thread-safe, idempotent.
  void stop();

  host::ReconstructionEngine& engine() { return *engine_; }

 private:
  struct Connection {
    Fd fd;
    std::vector<std::uint8_t> rx;
    std::vector<std::uint8_t> tx;
    std::size_t tx_sent = 0;  ///< Prefix of tx already on the socket.
    bool negotiated = false;
    bool close_after_flush = false;
  };

  /// Drains complete frames from conn.rx; false when the connection must
  /// be dropped without ceremony (desynchronized or corrupt stream).
  bool process_rx(Connection& conn);
  void handle_frame(Connection& conn, const FrameView& frame);
  void send_error(Connection& conn, ErrorCode code, const std::string& detail,
                  bool close_after);
  /// Pushes conn.tx to the socket as far as the kernel allows.
  void flush(Connection& conn);

  ShardServerConfig cfg_;
  TcpListener listener_;
  std::unique_ptr<host::ReconstructionEngine> engine_;
  std::vector<std::unique_ptr<Connection>> conns_;
  Fd wake_rd_, wake_wr_;  ///< Self-pipe: stop() wakes the poll loop.
  std::atomic<bool> stopping_{false};
};

}  // namespace wbsn::net
