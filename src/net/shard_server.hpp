// ShardServer — one ReconstructionEngine behind a TCP listener.
//
// The process half of the cross-machine fabric split: where
// host::ReconstructionFabric owned N engines in one address space, a
// deployment now runs N ShardServer processes (see shard_serverd_main.cpp)
// and one RoutingClient that routes patients across them with the same
// consistent-hash ring.  The server itself is deliberately dumb: it speaks
// wbsn-wire v1 and v2 (wire_format.hpp), maps each request frame onto the
// corresponding ReconstructionEngine verb, and knows nothing about rings,
// epochs, or topology — all placement intelligence lives client-side, so
// growing the fleet never requires touching a running shard.
//
// Concurrency model: a single-threaded poll(2) event loop owns the
// listener and every connection (nonblocking sockets, per-connection
// receive/transmit buffers); the engine's own worker pool provides the
// compute parallelism.  Request frames are serviced inline in arrival
// order per connection.  Verbs that must wait — SUBMIT_WINDOW /
// SUBMIT_BATCH with the blocking flag (admission backpressure) and
// DRAIN_PATIENT (patient quiescence) — never block the loop when the
// engine has workers: they park as a per-connection *deferred completion*,
// the engine's progress_hook pokes the self-pipe each time slots free or a
// patient retires, and the loop re-runs the parked step until it can send
// the response.  Frames behind a deferred verb wait (responses stay in
// request order per connection); other connections keep flowing.  With a
// serial engine (threads == 0) the calling thread IS the solver, so those
// verbs run inline exactly as before.
//
// Shutdown: stop() from any thread (self-pipe wakes the loop), or a BYE
// frame when cfg.stop_on_bye is set — the daemon's orderly-exit path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "net/socket.hpp"
#include "net/wire_format.hpp"

namespace wbsn::net {

struct ShardServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the kernel's pick back via port() after start().
  std::uint16_t port = 0;
  host::EngineConfig engine{};
  WireEncodeOptions wire{};
  /// Exit the run() loop after answering a BYE frame (daemon mode).
  bool stop_on_bye = false;
  /// Upper bound on results returned per POLL, whatever the client asked.
  std::uint32_t max_poll_results = 4096;
  /// Ceiling on the wire version negotiated per connection (the HELLO_ACK
  /// carries min(peer max, this)).  Default: everything this build speaks.
  /// Set 1 to force v1 framing — how mixed-version tests prove a v2 client
  /// falls back transparently.
  std::uint8_t max_wire_version = kWireVersionMax;
  /// CR advisory this shard answers CR_HINT with while under backlog
  /// pressure, percent (e.g. 70 steers nodes to encode at CR 70 until the
  /// pressure clears).  0 (default) disables the advisory: CR_HINT_ACK
  /// always answers "no pressure".
  double hint_cr_percent = 0.0;
  /// Pressure threshold for the advisory: active while the engine's
  /// backlog_wait_ms() exceeds this many deadlines (engine slo.deadline_ms).
  /// <= 0 makes the advisory unconditional whenever hint_cr_percent > 0 —
  /// the deterministic setting tests use.
  double hint_backlog_deadlines = 1.0;
  /// Optional extra wake descriptor polled by run(): when it becomes
  /// readable the loop stops, exactly as if stop() had been called — but
  /// with no cross-thread call into the server.  This is the daemon's
  /// async-signal-safe shutdown path: a signal handler may only write() a
  /// byte to a pipe, and the loop (the "main thread" of the server) does
  /// the actual stop.  The server polls but never closes or drains this
  /// fd; -1 (default) disables it.
  int stop_fd = -1;
};

class ShardServer {
 public:
  explicit ShardServer(ShardServerConfig cfg);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds the listener and builds the engine.  False (errno set) when the
  /// bind fails.  Must be called before run().
  bool start();

  /// The bound port (the kernel's pick when cfg.port was 0).
  std::uint16_t port() const { return listener_.port(); }

  /// Blocking event loop; returns after stop() or (with stop_on_bye) a
  /// BYE.  Call from a dedicated thread when embedding in-process.
  void run();

  /// Requests run() to return.  Thread-safe, idempotent.
  void stop();

  host::ReconstructionEngine& engine() { return *engine_; }

 private:
  struct Connection {
    Fd fd;
    std::vector<std::uint8_t> rx;
    std::vector<std::uint8_t> tx;
    std::size_t tx_sent = 0;  ///< Prefix of tx already on the socket.
    bool negotiated = false;
    bool close_after_flush = false;
    /// Wire version negotiated on this connection; frames above it are
    /// refused with ERROR(UNSUPPORTED_VERSION).
    std::uint8_t version = kWireVersion;

    /// A blocking verb parked mid-flight so the event loop stays live.
    /// While one is pending, no further frames are consumed from this
    /// connection (responses are strictly in request order per conn).
    enum class Deferred { kNone, kSubmit, kDrain };
    Deferred deferred = Deferred::kNone;
    bool deferred_batch = false;  ///< Answer with SUBMIT_BATCH_ACK, not SUBMIT_ACK.
    std::vector<host::CompressedWindow> deferred_windows;
    std::size_t deferred_next = 0;  ///< First window not yet admitted.
    std::vector<SubmitBatchAckEntry> deferred_acks;
    std::uint32_t deferred_patient = 0;  ///< kDrain target.
  };

  /// Drains complete frames from conn.rx; false when the connection must
  /// be dropped without ceremony (desynchronized or corrupt stream).
  bool process_rx(Connection& conn);
  void handle_frame(Connection& conn, const FrameView& frame);
  /// Runs one step of the connection's parked verb; appends the response
  /// and clears the deferred state once it completes.
  void advance_deferred(Connection& conn);
  /// Parks a blocking submit (single window or batch tail) for deferred
  /// admission, or answers immediately when everything fits right now.
  void submit_blocking(Connection& conn, std::vector<host::CompressedWindow>&& windows,
                       std::vector<SubmitBatchAckEntry>&& acks, bool batch);
  /// Appends the deferred-submit response (SUBMIT_ACK or SUBMIT_BATCH_ACK).
  void finish_submit(Connection& conn);
  /// Polls up to `max_results` completed windows into one RESULT_BATCH.
  void poll_many(Connection& conn, std::uint32_t max_results);
  void send_error(Connection& conn, ErrorCode code, const std::string& detail,
                  bool close_after);
  /// Pushes conn.tx to the socket as far as the kernel allows.
  void flush(Connection& conn);

  ShardServerConfig cfg_;
  TcpListener listener_;
  /// Self-pipe: stop() and the engine's progress_hook wake the poll loop
  /// (both ends nonblocking — a full pipe already means a wake is pending).
  /// Declared before engine_ so the pipe outlives the worker threads that
  /// write to it through the hook.
  Fd wake_rd_, wake_wr_;
  std::unique_ptr<host::ReconstructionEngine> engine_;
  std::vector<std::unique_ptr<Connection>> conns_;
  /// Staging buffer for RESULT_BATCH bodies (single-threaded loop).
  std::vector<std::uint8_t> batch_staging_;
  std::atomic<bool> stopping_{false};
};

}  // namespace wbsn::net
