// wbsn-wire — the compact binary serialization that puts a socket (or a
// radio) under the reconstruction fabric.  This implementation speaks v1
// (per-window frames) and v2 (adds batched submit/poll frames; see the
// "v2 batched frames" section below).
//
// The normative specification lives in docs/WIRE_FORMAT.md and is written
// to be implementable without reading this file; this header is the
// reference implementation.  The format in one breath:
//
//   frame  := magic(2) version(1) type(1) payload_len(u32 LE)
//             payload(payload_len bytes) crc32c(u32 LE, over everything
//             before it)
//
// Payload integers are unsigned LEB128 varints (patient ids, tickets,
// seeds, counts); floating-point scalars are raw IEEE-754 little-endian
// (bit-preserving, NaNs included); sample vectors travel in one of three
// value codings — FLOAT64 (lossless for anything), FIXED16/FIXED32
// (little-endian fixed-point integers plus one f64 scale, the node's
// native radio format).  The encoder only ever picks a fixed coding when
// every value reconstructs *bit-exactly* as integer * scale — v1 transport
// is lossless by construction, never a quantizer — and falls back to
// FLOAT64 otherwise, so decode(encode(w)) == w bitwise for arbitrary
// windows while paper-style fixed-point traffic ships at 2 bytes/sample.
//
// Zero-copy discipline: encoders append into a caller-owned byte buffer
// (reused across frames — no allocation at steady state once the buffer
// reached its high-water mark) straight from the window's payload vectors;
// decoders write sample data straight from the receive buffer into vectors
// drawn from a host::PayloadPool when one is provided, so a decoded window
// is pool-recycled exactly like a locally produced one.
//
// Version negotiation: a connection starts with HELLO(min,max supported) →
// HELLO_ACK(chosen) before anything else.  Each frame's header byte
// declares the version that defined its layout: v1 frames keep carrying 1
// even on a v2 connection (their bytes are frozen), v2 frames carry 2.  A
// receiver MUST reject a frame versioned above what was negotiated with
// ERROR(UNSUPPORTED_VERSION) rather than guessing at the payload — that
// byte is what lets the protocol evolve without bricking v1 peers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "host/slo_tracker.hpp"

namespace wbsn::net {

// --- Protocol constants ------------------------------------------------------

inline constexpr std::uint8_t kMagic0 = 0x57;  ///< 'W'
inline constexpr std::uint8_t kMagic1 = 0x42;  ///< 'B'
/// The baseline protocol version.  Frames whose layout v1 defined keep
/// carrying this in their header byte even on a v2 connection — their
/// bytes are frozen; the negotiated ceiling only governs which frame
/// *types* may appear (see docs/WIRE_FORMAT.md §9).
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint8_t kWireVersionMin = 1;
/// Highest version this implementation speaks.  v2 adds the batched
/// submit/poll frames (SUBMIT_BATCH, SUBMIT_BATCH_ACK, POLL_MANY,
/// RESULT_BATCH); those frames carry 2 in their header byte.
inline constexpr std::uint8_t kWireVersionMax = 2;
inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr std::size_t kFrameTrailerBytes = 4;
/// Frames longer than this are rejected before buffering the payload — a
/// corrupt or hostile length field must not become an allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 8u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,            ///< client → server: version range offer
  kHelloAck = 2,         ///< server → client: chosen version
  kError = 3,            ///< either direction: code + UTF-8 detail
  kSubmitWindow = 4,     ///< client → server: one CompressedWindow
  kSubmitAck = 5,        ///< server → client: shard-local ticket
  kSubmitReject = 6,     ///< server → client: admission backpressure
  kPoll = 7,             ///< client → server: request up to N results
  kResult = 8,           ///< server → client: one WindowResult
  kPollEnd = 9,          ///< server → client: poll response terminator
  kDrainPatient = 10,    ///< client → server: block until patient quiesced
  kDrainDone = 11,       ///< server → client: drain_patient finished
  kExtractSlo = 12,      ///< client → server: take the patient's tracker
  kSloState = 13,        ///< server → client: extracted tracker state
  kAdoptSlo = 14,        ///< client → server: hand tracker state to shard
  kAdoptAck = 15,        ///< server → client: adoption outcome
  kSnapshotRequest = 16, ///< client → server: engine counter snapshot
  kSnapshot = 17,        ///< server → client: the counters
  kBye = 18,             ///< client → server: orderly goodbye
  kByeAck = 19,          ///< server → client: goodbye acknowledged
  // v2 frames — only valid after negotiating version >= 2.
  kSubmitBatch = 20,     ///< client → server: K windows in one frame
  kSubmitBatchAck = 21,  ///< server → client: K per-window outcomes
  kPollMany = 22,        ///< client → server: request up to N results
  kResultBatch = 23,     ///< server → client: up to N results, one frame
  kCrHint = 24,          ///< client → server: request compression advisory
  kCrHintAck = 25,       ///< server → client: advisory CR + per-patient hints
  kHealth = 26,          ///< client → server: liveness probe (nonce)
  kHealthAck = 27,       ///< server → client: nonce echo + queue depths
};

enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kUnsupportedVersion = 1,  ///< Header version outside the peer's range.
  kBadPayload = 2,          ///< Frame parsed but payload didn't.
  kUnknownFrameType = 3,
  kNotNegotiated = 4,  ///< Non-HELLO frame before version negotiation.
  kShuttingDown = 5,
};

/// Sample-vector codings.  FIXED* carry one f64 scale followed by
/// little-endian signed integers; the decoded value is integer * scale.
enum class ValueCoding : std::uint8_t {
  kAbsent = 0,   ///< Field not present (e.g. no SNR reference attached).
  kFloat64 = 1,  ///< Raw IEEE-754 doubles, bit-preserving.
  kFixed16 = 2,  ///< i16 LE * f64 scale — the node's radio format.
  kFixed32 = 3,  ///< i32 LE * f64 scale — fixed-point overflow fallback.
};

struct WireEncodeOptions {
  /// Fixed-point scale the encoder may use for sample vectors (mV per
  /// count — measurement_scale_mv(adc) on the node path).  0 disables the
  /// fixed codings entirely.  A fixed coding is only chosen when every
  /// value round-trips bit-exactly; otherwise the vector ships FLOAT64.
  double fixed_scale = 0.0;
};

// --- Low-level writers / reader ---------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_i16le(std::vector<std::uint8_t>& out, std::int16_t v);
void put_i32le(std::vector<std::uint8_t>& out, std::int32_t v);
void put_f64le(std::vector<std::uint8_t>& out, double v);
/// Unsigned LEB128: 7 value bits per byte, high bit = continuation.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Bounds-checked sequential reader over one frame payload.  Any overrun
/// or malformed varint latches ok() == false and makes every subsequent
/// read return 0 — decoders check ok() once at the end instead of after
/// every field.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8();
  std::uint32_t u32le();
  std::int16_t i16le();
  std::int32_t i32le();
  double f64le();
  std::uint64_t varint();
  /// Raw view of the next `n` bytes (for bulk sample copies).
  std::span<const std::uint8_t> bytes(std::size_t n);

 private:
  bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Framing -----------------------------------------------------------------

/// Starts a frame: appends the 8-byte header (length patched later) and
/// returns the payload start offset to pass to frame_end.  The payload is
/// then serialized directly into `out` — no staging buffer.
std::size_t frame_begin(std::vector<std::uint8_t>& out, FrameType type,
                        std::uint8_t version = kWireVersion);

/// Finishes the frame begun at `payload_start`: patches the length field
/// and appends the CRC32C trailer (computed over header + payload).
void frame_end(std::vector<std::uint8_t>& out, std::size_t payload_start);

enum class FrameStatus : std::uint8_t {
  kOk = 0,
  kNeedMore,    ///< Buffer holds a prefix of a valid frame; read more.
  kBadMagic,    ///< First bytes are not 'W''B' — desynchronized stream.
  kBadVersion,  ///< Header version is not one this decoder supports.
  kOversized,   ///< Length field exceeds the payload cap.
  kBadCrc,      ///< Trailer mismatch — corrupt frame.
};

struct FrameView {
  std::uint8_t version = 0;
  FrameType type{};
  std::span<const std::uint8_t> payload{};
  std::size_t frame_bytes = 0;  ///< Total frame size; consume this many.
};

/// Non-destructively parses the frame at the front of `buf`.  On kOk the
/// view aliases `buf` (valid until the buffer mutates) and frame_bytes
/// says how much to consume.  kBadVersion still fills `frame_bytes` and
/// `version` when the frame is structurally complete (magic, length, and
/// CRC all check out), so a server can skip the frame and answer
/// ERROR(UNSUPPORTED_VERSION) instead of dropping the connection blind.
FrameStatus peek_frame(std::span<const std::uint8_t> buf, FrameView& out,
                       std::uint32_t max_payload = kMaxPayloadBytes);

// --- Value-vector coding -----------------------------------------------------

/// Appends a coded sample vector: coding byte, then per the coding.  Picks
/// FIXED16 → FIXED32 → FLOAT64, taking a fixed coding only when every
/// value is bit-exactly integer * fixed_scale (see WireEncodeOptions).
void encode_values(std::vector<std::uint8_t>& out, std::span<const double> values,
                   const WireEncodeOptions& opts);

/// Appends the ABSENT coding (field carried but empty).
void encode_values_absent(std::vector<std::uint8_t>& out);

/// Decodes a coded sample vector into `out` (resized to fit; cleared for
/// ABSENT).  Returns false on malformed input.  `out` keeps its capacity,
/// so pool-drawn buffers stay warm.
bool decode_values(WireReader& r, std::vector<double>& out);

// --- Typed payloads ----------------------------------------------------------
// Each encode_* appends one complete frame (header..CRC) to `out`; each
// decode_* parses a FrameView payload and returns false on malformation.

struct HelloPayload {
  std::uint8_t min_version = kWireVersion;
  std::uint8_t max_version = kWireVersion;
};

struct ErrorPayload {
  ErrorCode code = ErrorCode::kNone;
  std::string detail;  ///< Human-readable; never parsed.
};

/// Engine counter snapshot — the conservation-audit payload.  Mirrors the
/// counters of host::SloSnapshot plus the two queue depths a remote
/// coordinator needs to decide a shard is quiesced.
struct SnapshotPayload {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t shed_routine = 0;
  std::uint64_t shed_urgent = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_violations = 0;
  std::uint64_t unsolved = 0;  ///< Engine in_flight(): submitted, not solved.
  std::uint64_t ready = 0;     ///< Completed results awaiting poll.
  /// Windows destroyed by a shard crash: acknowledged by the shard but
  /// never polled back before it died.  Coordinator-side bookkeeping only —
  /// a dead shard cannot report its own losses — so this field is NOT part
  /// of the SNAPSHOT wire layout (encode/decode ignore it; the v1 frame
  /// bytes are frozen by golden tests).  With it, conservation survives
  /// crashes: submitted == completed + shed + lost across the fleet.
  std::uint64_t lost = 0;
};

struct SloStatePayload {
  std::uint32_t patient_id = 0;
  bool present = false;  ///< False: the patient had no tracker to move.
  host::SloTrackerState state;
};

void encode_hello(std::vector<std::uint8_t>& out, const HelloPayload& hello);
bool decode_hello(std::span<const std::uint8_t> payload, HelloPayload& out);

void encode_hello_ack(std::vector<std::uint8_t>& out, std::uint8_t version);
bool decode_hello_ack(std::span<const std::uint8_t> payload, std::uint8_t& version);

void encode_error(std::vector<std::uint8_t>& out, const ErrorPayload& error);
bool decode_error(std::span<const std::uint8_t> payload, ErrorPayload& out);

/// flags bit 0: blocking submit (server waits out backpressure like
/// ReconstructionEngine::submit instead of answering SUBMIT_REJECT).
inline constexpr std::uint8_t kSubmitFlagBlocking = 0x01;
void encode_submit_window(std::vector<std::uint8_t>& out, const host::CompressedWindow& window,
                          std::uint8_t flags, const WireEncodeOptions& opts);
bool decode_submit_window(std::span<const std::uint8_t> payload, host::CompressedWindow& out,
                          std::uint8_t& flags, host::PayloadPool* pool);

void encode_submit_ack(std::vector<std::uint8_t>& out, std::uint64_t local_ticket);
bool decode_submit_ack(std::span<const std::uint8_t> payload, std::uint64_t& local_ticket);

void encode_submit_reject(std::vector<std::uint8_t>& out);

void encode_poll(std::vector<std::uint8_t>& out, std::uint32_t max_results);
bool decode_poll(std::span<const std::uint8_t> payload, std::uint32_t& max_results);

void encode_result(std::vector<std::uint8_t>& out, const host::WindowResult& result,
                   const WireEncodeOptions& opts);
bool decode_result(std::span<const std::uint8_t> payload, host::WindowResult& out,
                   host::PayloadPool* pool);

void encode_poll_end(std::vector<std::uint8_t>& out, std::uint32_t results_sent);
bool decode_poll_end(std::span<const std::uint8_t> payload, std::uint32_t& results_sent);

/// kDrainPatient / kDrainDone / kExtractSlo all carry one patient id.
void encode_patient_frame(std::vector<std::uint8_t>& out, FrameType type,
                          std::uint32_t patient_id);
bool decode_patient_frame(std::span<const std::uint8_t> payload, std::uint32_t& patient_id);

/// `type` is kSloState (server → client) or kAdoptSlo (client → server);
/// both directions carry the identical layout.
void encode_slo_state(std::vector<std::uint8_t>& out, FrameType type,
                      const SloStatePayload& slo);
bool decode_slo_state(std::span<const std::uint8_t> payload, SloStatePayload& out);

void encode_adopt_ack(std::vector<std::uint8_t>& out, bool adopted);
bool decode_adopt_ack(std::span<const std::uint8_t> payload, bool& adopted);

void encode_snapshot_request(std::vector<std::uint8_t>& out);
void encode_snapshot(std::vector<std::uint8_t>& out, const SnapshotPayload& snap);
bool decode_snapshot(std::span<const std::uint8_t> payload, SnapshotPayload& out);

void encode_bye(std::vector<std::uint8_t>& out);
void encode_bye_ack(std::vector<std::uint8_t>& out);

// --- v2 batched frames -------------------------------------------------------
// SUBMIT_BATCH payload := flags(u8) count(varint) count × window-body,
// where window-body is the SUBMIT_WINDOW payload minus its leading flags
// byte (the batch flags apply to every window).  SUBMIT_BATCH_ACK carries
// count × (accepted(u8) [local_ticket(varint) when accepted]) in submit
// order.  POLL_MANY(max) is answered by exactly one RESULT_BATCH of
// count(varint) count × result-body (the RESULT payload), count possibly
// zero — no POLL_END terminator.  All four carry header version 2.
//
// The client pipeline stages window bodies incrementally
// (encode_submit_batch_entry into a reused buffer) and seals the frame
// without ever assembling it contiguously: encode_submit_batch_prefix
// builds header+flags+count, encode_submit_batch_trailer streams the CRC
// over prefix ∥ bodies, and the three pieces go out in one
// scatter-gather write (net::send_all_vec).

/// One per-window outcome inside a SUBMIT_BATCH_ACK.
struct SubmitBatchAckEntry {
  bool accepted = false;
  std::uint64_t local_ticket = 0;  ///< Meaningful only when accepted.
};

/// Appends one window body (no framing, no flags byte) to `staging`.
void encode_submit_batch_entry(std::vector<std::uint8_t>& staging,
                               const host::CompressedWindow& window,
                               const WireEncodeOptions& opts);

/// Appends the SUBMIT_BATCH header + `flags count` prefix for a frame
/// whose staged bodies total `bodies_len` bytes.  The header length field
/// is final — no later patching — so the prefix can ship before the
/// bodies in a scatter-gather write.
void encode_submit_batch_prefix(std::vector<std::uint8_t>& out, std::uint8_t flags,
                                std::uint64_t count, std::size_t bodies_len);

/// Appends the 4-byte CRC trailer for prefix ∥ bodies (streamed CRC —
/// the two spans never need to be contiguous).
void encode_submit_batch_trailer(std::vector<std::uint8_t>& out,
                                 std::span<const std::uint8_t> prefix,
                                 std::span<const std::uint8_t> bodies);

/// Whole-frame convenience (tests, golden fixtures): one contiguous
/// SUBMIT_BATCH frame for `windows`.
void encode_submit_batch(std::vector<std::uint8_t>& out,
                         std::span<const host::CompressedWindow> windows,
                         std::uint8_t flags, const WireEncodeOptions& opts);

/// Incremental decode: header first, then `count` entries off the same
/// reader.  The convenience form decodes the whole payload.
bool decode_submit_batch_header(WireReader& r, std::uint8_t& flags, std::uint64_t& count);
bool decode_submit_batch_entry(WireReader& r, host::CompressedWindow& out,
                               host::PayloadPool* pool);
bool decode_submit_batch(std::span<const std::uint8_t> payload, std::uint8_t& flags,
                         std::vector<host::CompressedWindow>& out, host::PayloadPool* pool);

void encode_submit_batch_ack(std::vector<std::uint8_t>& out,
                             std::span<const SubmitBatchAckEntry> entries);
bool decode_submit_batch_ack(std::span<const std::uint8_t> payload,
                             std::vector<SubmitBatchAckEntry>& out);

void encode_poll_many(std::vector<std::uint8_t>& out, std::uint32_t max_results);
bool decode_poll_many(std::span<const std::uint8_t> payload, std::uint32_t& max_results);

/// Appends one result body (no framing) to `staging` — the server sizes a
/// RESULT_BATCH against its byte budget as it encodes.
void encode_result_entry(std::vector<std::uint8_t>& staging, const host::WindowResult& result,
                         const WireEncodeOptions& opts);

/// Frames `count` staged result bodies as one RESULT_BATCH.
void encode_result_batch(std::vector<std::uint8_t>& out,
                         std::span<const std::uint8_t> bodies, std::uint64_t count);

bool decode_result_batch_header(WireReader& r, std::uint64_t& count);
bool decode_result_entry(WireReader& r, host::WindowResult& out, host::PayloadPool* pool);
bool decode_result_batch(std::span<const std::uint8_t> payload,
                         std::vector<host::WindowResult>& out, host::PayloadPool* pool);

// --- v2 CR-hint frames -------------------------------------------------------
// The back-channel of the closed compression loop (docs/WIRE_FORMAT.md
// §10).  CR_HINT := epoch(varint) max_entries(varint) asks the shard how
// much solve pressure it is under; CR_HINT_ACK := epoch(varint, echoed)
// advisory_cr_centi(varint; 0 = no pressure, else advisory CR% × 100)
// count(varint) count × (patient_id(varint) cr_centi(varint)) answers
// with a shard-wide advisory plus up to max_entries per-patient hints.
// The epoch is the requester's topology epoch, echoed verbatim, so a hint
// that raced a reshard can be recognized as stale and discarded instead
// of steering a patient now owned by a different shard.  Advisory only —
// a node that ignores it keeps full fidelity and simply keeps paying the
// host-side degrade/shed rate.  Both frames carry header version 2.

struct CrHintEntry {
  std::uint32_t patient_id = 0;
  std::uint32_t cr_centi = 0;  ///< Advisory CR for this patient, % × 100.
};

struct CrHintAckPayload {
  std::uint64_t epoch = 0;              ///< Echo of the request's epoch tag.
  std::uint32_t advisory_cr_centi = 0;  ///< Shard-wide advisory; 0 = none.
  std::vector<CrHintEntry> entries;     ///< Per-patient overrides.
};

void encode_cr_hint(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                    std::uint32_t max_entries);
bool decode_cr_hint(std::span<const std::uint8_t> payload, std::uint64_t& epoch,
                    std::uint32_t& max_entries);

void encode_cr_hint_ack(std::vector<std::uint8_t>& out, const CrHintAckPayload& ack);
bool decode_cr_hint_ack(std::span<const std::uint8_t> payload, CrHintAckPayload& out);

// --- v2 health probe (WIRE_FORMAT.md §11) ------------------------------------
// HEALTH := nonce(varint); HEALTH_ACK := nonce(varint, echoed)
// unsolved(varint) ready(varint).  A deliberately tiny request/response
// pair so the coordinator can distinguish "shard is dead" from "shard is
// slow" without paying for a full snapshot: the server answers from two
// atomic engine counters, never touching the solve path.  The nonce is
// echoed verbatim so a probe answer cannot be confused with a stale one
// left in the receive buffer by an earlier timed-out probe.  Both frames
// carry header version 2; a v1 shard answers ERROR(UNSUPPORTED_VERSION),
// which the client treats as "probe via SNAPSHOT_REQUEST instead".

struct HealthAckPayload {
  std::uint64_t nonce = 0;     ///< Echo of the probe's nonce.
  std::uint64_t unsolved = 0;  ///< Engine in_flight(): admitted, not solved.
  std::uint64_t ready = 0;     ///< Completed results awaiting poll.
};

void encode_health(std::vector<std::uint8_t>& out, std::uint64_t nonce);
bool decode_health(std::span<const std::uint8_t> payload, std::uint64_t& nonce);

void encode_health_ack(std::vector<std::uint8_t>& out, const HealthAckPayload& ack);
bool decode_health_ack(std::span<const std::uint8_t> payload, HealthAckPayload& out);

}  // namespace wbsn::net
