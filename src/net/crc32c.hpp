// CRC32C (Castagnoli) — the wbsn-wire v1 frame trailer checksum.
//
// Chosen over CRC32 (IEEE) for its better error-detection properties on
// short frames and because hardware assistance exists on both x86 (SSE4.2)
// and ARM (ACLE) if a future backend wants it; this implementation is the
// portable slice-by-4 table form, deterministic everywhere, no ISA
// dependency — matching the repo's bit-identical-by-construction rule.
//
// Parameters (the "CRC-32C" of RFC 3720 / iSCSI): reflected polynomial
// 0x82F63B78, initial value 0xFFFFFFFF, output XOR 0xFFFFFFFF.  Test
// vector: crc32c("123456789") == 0xE3069283.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wbsn::net {

/// CRC32C of `size` bytes starting at `data`.
std::uint32_t crc32c(const void* data, std::size_t size);

/// Streaming form: feed `crc32c_update` the previous return value to
/// extend a checksum across discontiguous spans (the frame writer checksums
/// header and payload without first gathering them).  Start from
/// `kCrc32cInit` and finish with `crc32c_finish`.
inline constexpr std::uint32_t kCrc32cInit = 0xFFFFFFFFu;
std::uint32_t crc32c_update(std::uint32_t state, const void* data, std::size_t size);
inline std::uint32_t crc32c_finish(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace wbsn::net
