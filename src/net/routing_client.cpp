#include "net/routing_client.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "host/reconstruction_fabric.hpp"

namespace wbsn::net {

namespace {
constexpr std::size_t kRecvChunk = 64 * 1024;

void accumulate(SnapshotPayload& into, const SnapshotPayload& s) {
  into.submitted += s.submitted;
  into.completed += s.completed;
  into.retrieved += s.retrieved;
  into.shed_routine += s.shed_routine;
  into.shed_urgent += s.shed_urgent;
  into.rejected += s.rejected;
  into.deadline_violations += s.deadline_violations;
  into.unsolved += s.unsolved;
  into.ready += s.ready;
  into.lost += s.lost;
}
}  // namespace

RoutingClient::RoutingClient(RoutingClientConfig cfg) : cfg_(std::move(cfg)) {}

RoutingClient::~RoutingClient() { shutdown(false); }

bool RoutingClient::connect(std::vector<ShardEndpoint> shards) {
  shutdown(false);
  conns_.clear();
  epoch_ = 0;
  ring_history_.clear();
  patients_.clear();
  pending_.clear();
  retired_ = {};
  pipeline_submits_.clear();
  cr_hints_.clear();
  shard_advisory_.clear();
  hints_epoch_ = ~std::uint64_t{0};
  for (auto& ep : shards) {
    auto conn = std::make_unique<Conn>();
    conn->endpoint = std::move(ep);
    conn->index = conns_.size();
    if (!ensure_connected(*conn)) return false;
    conns_.push_back(std::move(conn));
  }
  ring_history_.emplace_back(conns_.size(), cfg_.vnodes_per_shard);
  return true;
}

std::size_t RoutingClient::live_shard_count() const {
  std::size_t live = 0;
  for (const auto& conn : conns_) {
    if (conn && !conn->failed) ++live;
  }
  return live;
}

bool RoutingClient::shard_failed(std::size_t shard) const {
  return shard < conns_.size() && conns_[shard] && conns_[shard]->failed;
}

bool RoutingClient::fail_shard(std::size_t shard) {
  if (shard >= conns_.size() || !conns_[shard] || conns_[shard]->failed) return false;
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (i != shard && conns_[i] && !conns_[i]->failed) survivors.push_back(i);
  }
  if (survivors.empty()) return false;  // Nowhere to re-home the patients.
  Conn& conn = *conns_[shard];
  conn.fd.reset();
  // Unacked pipelined windows resolve to nullopt at the next
  // flush_submits() and are never retried: the dead shard may have
  // admitted them, and a resubmit elsewhere could double-count.
  fail_pipeline(conn);
  conn.failed = true;
  // The dead shard cannot surrender a final snapshot; the client's own
  // mirrors stand in.  Every acknowledged window is accounted exactly
  // once: polled back in time -> completed, destroyed with the shard ->
  // lost.  (Windows the shard shed before dying are indistinguishable
  // from lost windows out here, and are counted lost.)  Its latency
  // histograms and per-patient SLO history die with it.
  SnapshotPayload final;
  final.submitted = conn.acked_submits;
  final.completed = conn.retrieved;
  final.retrieved = conn.retrieved;
  final.rejected = conn.rejected_seen;
  final.lost =
      conn.acked_submits >= conn.retrieved ? conn.acked_submits - conn.retrieved : 0;
  accumulate(retired_, final);
  // Failover epoch: a subset ring over the survivors, no drain/extract
  // handshake (the peer is gone).  Virtual-node positions depend only on
  // (shard, replica), so deleting the dead shard's points moves exactly
  // its patients; every survivor keeps its index, which keeps composite
  // tickets from every prior epoch composable.
  ring_history_.emplace_back(survivors, cfg_.vnodes_per_shard);
  ++epoch_;
  return true;
}

bool RoutingClient::probe_health(std::size_t shard) {
  if (shard >= conns_.size() || !conns_[shard] || conns_[shard]->failed) return false;
  Conn& conn = *conns_[shard];
  if (!sync_pipeline(conn)) return false;
  std::vector<std::uint8_t> buf;
  const std::uint64_t nonce = ++conn.health_nonce;
  if (conn.version >= 2) {
    encode_health(buf, nonce);
  } else {
    // v1 shard: no HEALTH verb; a snapshot round trip carries the same
    // liveness signal at slightly higher cost.
    encode_snapshot_request(buf);
  }
  if (!send_request(conn, buf, /*may_retry=*/true)) return false;
  // Tighten the receive deadline for the probe itself: io_timeout_ms is
  // sized for verbs that legitimately wait (drains); "dead or deadlined"
  // must be decidable much faster.
  const bool tighten = cfg_.health_probe_timeout_ms > 0;
  if (tighten) (void)set_recv_timeout(conn.fd.get(), cfg_.health_probe_timeout_ms);
  std::vector<std::uint8_t> frame;
  FrameView view;
  const bool got_frame = read_frame(conn, frame, view);
  if (tighten && conn.fd.valid()) (void)set_recv_timeout(conn.fd.get(), cfg_.io_timeout_ms);
  if (!got_frame) return false;
  if (conn.version >= 2) {
    HealthAckPayload ack;
    if (view.type != FrameType::kHealthAck || !decode_health_ack(view.payload, ack) ||
        ack.nonce != nonce) {
      conn.fd.reset();  // Wrong answer or a stale echo: desynchronized.
      return false;
    }
    return true;
  }
  SnapshotPayload snap;
  if (view.type != FrameType::kSnapshot || !decode_snapshot(view.payload, snap)) {
    conn.fd.reset();
    return false;
  }
  return true;
}

std::vector<std::size_t> RoutingClient::check_health() {
  std::vector<std::size_t> dead;
  for (std::size_t shard = 0; shard < conns_.size(); ++shard) {
    if (!conns_[shard] || conns_[shard]->failed) continue;
    if (probe_health(shard)) continue;
    dead.push_back(shard);
    if (cfg_.auto_failover) (void)fail_shard(shard);
  }
  return dead;
}

std::size_t RoutingClient::owner(std::uint32_t patient_id) const {
  return ring_history_[epoch_].owner(patient_id);
}

bool RoutingClient::ensure_connected(Conn& conn) {
  if (conn.fd.valid()) return true;
  return reconnect(conn);
}

int RoutingClient::backoff_delay_ms(int attempt, int base_ms, int max_ms,
                                    std::uint64_t seed) {
  if (attempt <= 0 || base_ms <= 0) return 0;
  if (max_ms < base_ms) max_ms = base_ms;
  // Saturating doubling: base·2^(attempt-1), clamped at the cap *inside*
  // the loop so the product can never overflow int however large
  // reconnect_attempts is (the original bug: unbounded `backoff_ms *= 2`).
  std::int64_t delay = base_ms;
  for (int i = 1; i < attempt && delay < max_ms; ++i) delay *= 2;
  delay = std::min<std::int64_t>(delay, max_ms);
  // Deterministic jitter, up to +25%: a fleet of coordinators retrying one
  // recovering shard de-synchronizes (no thundering herd), yet any given
  // (seed, attempt) schedule replays exactly — what the unit test pins.
  const std::uint64_t h = host::splitmix64(seed ^ static_cast<std::uint64_t>(attempt));
  delay += static_cast<std::int64_t>(h % (static_cast<std::uint64_t>(delay) / 4 + 1));
  return static_cast<int>(delay);
}

bool RoutingClient::reconnect(Conn& conn) {
  if (conn.failed) return false;  // Declared dead: never resurrected.
  conn.fd.reset();
  conn.rx.clear();
  // Pipelined submits whose ACK was outstanding on the dead connection
  // are lost, never retried (a retry could double-submit): their tickets
  // resolve to nullopt at the next flush_submits().
  fail_pipeline(conn);
  // Jitter seed: stable per (shard slot, endpoint), distinct across a
  // fleet of clients pointed at different shards.
  const std::uint64_t seed = host::splitmix64(
      (static_cast<std::uint64_t>(conn.index) << 16) ^ conn.endpoint.port);
  for (int attempt = 0; attempt <= cfg_.reconnect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_delay_ms(
          attempt, cfg_.reconnect_backoff_ms, cfg_.reconnect_backoff_max_ms, seed)));
    }
    Fd fd = tcp_connect(conn.endpoint.host, conn.endpoint.port, cfg_.connect_timeout_ms,
                        cfg_.io_timeout_ms);
    if (!fd.valid()) continue;
    conn.fd = std::move(fd);
    // Version negotiation before anything else on the connection: offer
    // the full window, accept whatever mutual ceiling the shard picks.
    std::vector<std::uint8_t> buf;
    encode_hello(buf, HelloPayload{kWireVersionMin, cfg_.max_wire_version});
    if (!send_all(conn.fd.get(), buf.data(), buf.size())) {
      conn.fd.reset();
      continue;
    }
    std::vector<std::uint8_t> frame;
    FrameView view;
    std::uint8_t version = 0;
    if (!read_frame(conn, frame, view) || view.type != FrameType::kHelloAck ||
        !decode_hello_ack(view.payload, version) || version < kWireVersionMin ||
        version > cfg_.max_wire_version) {
      conn.fd.reset();
      continue;
    }
    conn.version = version;
    return true;
  }
  return false;
}

bool RoutingClient::send_request(Conn& conn, const std::vector<std::uint8_t>& buf,
                                 bool may_retry) {
  if (!ensure_connected(conn)) return false;
  // Scripted teardown at this exact frame boundary (tests only): the
  // connection dies before the frame reaches the wire, driving the same
  // failure paths a real mid-stream crash does — deterministically.
  if (cfg_.fault_inject && cfg_.fault_inject(conn.index, conn.frames_sent)) {
    conn.fd.reset();
  }
  ++conn.frames_sent;
  if (conn.fd.valid() && send_all(conn.fd.get(), buf.data(), buf.size())) return true;
  if (!may_retry) {
    conn.fd.reset();
    return false;
  }
  return reconnect(conn) && send_all(conn.fd.get(), buf.data(), buf.size());
}

bool RoutingClient::read_frame(Conn& conn, std::vector<std::uint8_t>& frame,
                               FrameView& view) {
  if (!conn.fd.valid()) return false;
  for (;;) {
    FrameView peek;
    const auto status = peek_frame(conn.rx, peek);
    if (status == FrameStatus::kOk) {
      frame.assign(conn.rx.begin(), conn.rx.begin() + peek.frame_bytes);
      conn.rx.erase(conn.rx.begin(), conn.rx.begin() + peek.frame_bytes);
      // Re-peek against the stable copy so the view outlives conn.rx.
      return peek_frame(frame, view) == FrameStatus::kOk;
    }
    if (status != FrameStatus::kNeedMore) {
      conn.fd.reset();  // Corrupt or desynchronized stream; resync via reconnect.
      return false;
    }
    std::uint8_t chunk[kRecvChunk];
    const long n = recv_some(conn.fd.get(), chunk, sizeof(chunk));
    if (n <= 0) {
      conn.fd.reset();
      return false;
    }
    conn.rx.insert(conn.rx.end(), chunk, chunk + n);
  }
}

void RoutingClient::fail_pipeline(Conn& conn) {
  while (!conn.pending_submits.empty()) {
    auto& record = pipeline_submits_[conn.pending_submits.front()];
    conn.pending_submits.pop_front();
    record.resolved = true;
    record.ticket = std::nullopt;
  }
  conn.staged_bodies.clear();
  conn.staged_count = 0;
  conn.outstanding_counts.clear();
}

bool RoutingClient::harvest_ack(Conn& conn) {
  if (conn.outstanding_counts.empty()) return true;
  std::vector<std::uint8_t> frame;
  FrameView view;
  std::vector<SubmitBatchAckEntry> entries;
  if (!read_frame(conn, frame, view) || view.type != FrameType::kSubmitBatchAck ||
      !decode_submit_batch_ack(view.payload, entries) ||
      entries.size() != conn.outstanding_counts.front() ||
      entries.size() > conn.pending_submits.size()) {
    conn.fd.reset();
    fail_pipeline(conn);
    return false;
  }
  conn.outstanding_counts.pop_front();
  for (const auto& entry : entries) {
    // FIFO pairing: ACK entries arrive in submit order, exactly the order
    // pending_submits was filled — composition deferred until right here.
    auto& record = pipeline_submits_[conn.pending_submits.front()];
    conn.pending_submits.pop_front();
    record.resolved = true;
    if (entry.accepted) {
      ++conn.acked_submits;
      record.ticket = host::ReconstructionFabric::compose_ticket(record.epoch, record.shard,
                                                                 entry.local_ticket);
    } else {
      ++conn.rejected_seen;
    }
  }
  return true;
}

bool RoutingClient::seal_batch(Conn& conn) {
  if (conn.staged_count == 0) return true;
  if (!conn.fd.valid()) {
    fail_pipeline(conn);
    return false;
  }
  // Scatter-gather seal: the frame header + count prefix (final length —
  // known now), the staged bodies untouched, and the streaming-CRC
  // trailer go out in one sendmsg; the bodies are never re-assembled into
  // a contiguous frame.  thread_local staging keeps the steady state
  // allocation-free (the client is single-coordinator by contract).
  static thread_local std::vector<std::uint8_t> prefix;
  static thread_local std::vector<std::uint8_t> trailer;
  prefix.clear();
  trailer.clear();
  encode_submit_batch_prefix(prefix, kSubmitFlagBlocking, conn.staged_count,
                             conn.staged_bodies.size());
  encode_submit_batch_trailer(trailer, prefix, conn.staged_bodies);
  const ConstBuf bufs[3] = {{prefix.data(), prefix.size()},
                            {conn.staged_bodies.data(), conn.staged_bodies.size()},
                            {trailer.data(), trailer.size()}};
  // The sealed batch is one frame on the wire: one fault-hook boundary.
  if (cfg_.fault_inject && cfg_.fault_inject(conn.index, conn.frames_sent)) {
    conn.fd.reset();
  }
  ++conn.frames_sent;
  const bool sent = conn.fd.valid() && send_all_vec(conn.fd.get(), bufs, 3);
  conn.staged_bodies.clear();
  const auto batch_windows = static_cast<std::size_t>(conn.staged_count);
  conn.staged_count = 0;
  if (!sent) {
    conn.fd.reset();
    fail_pipeline(conn);
    return false;
  }
  conn.outstanding_counts.push_back(batch_windows);
  // Bounded outgoing window: at most pipeline_depth unacknowledged frames
  // ride the wire; beyond that the submitter absorbs the shard's pace.
  while (conn.outstanding_counts.size() > cfg_.pipeline_depth) {
    if (!harvest_ack(conn)) return false;
  }
  return true;
}

bool RoutingClient::sync_pipeline(Conn& conn) {
  if (!seal_batch(conn)) return false;
  while (!conn.outstanding_counts.empty()) {
    if (!harvest_ack(conn)) return false;
  }
  return true;
}

bool RoutingClient::submit_pipelined(host::CompressedWindow&& window) {
  for (std::size_t hop = 0; hop <= conns_.size(); ++hop) {
    const std::size_t shard = owner(window.patient_id);
    Conn& conn = *conns_[shard];
    if (conn.version < 2 || cfg_.pipeline_depth == 0) {
      // v1 shard (or pipelining off): same blocking-admission semantics,
      // one round trip per window — the transparent fallback path.
      auto ticket = submit(std::move(window));
      pipeline_submits_.push_back({epoch_, shard, true, ticket});
      return ticket.has_value();
    }
    if (!ensure_connected(conn)) {
      // Unreachable after retries.  This window is still in hand (never
      // staged), so after a failover it re-routes loss-free; staged or
      // on-the-wire windows stay failed per the no-resubmit rule.
      if (cfg_.auto_failover && fail_shard(shard)) continue;
      pipeline_submits_.push_back({epoch_, shard, true, std::nullopt});
      return false;
    }
    window.route_tag = epoch_;
    patients_.insert(window.patient_id);
    encode_submit_batch_entry(conn.staged_bodies, window, cfg_.wire);
    if (cfg_.payload_pool) cfg_.payload_pool->recycle(std::move(window));
    ++conn.staged_count;
    conn.pending_submits.push_back(pipeline_submits_.size());
    pipeline_submits_.push_back({epoch_, shard, false, std::nullopt});
    if (conn.staged_count >= cfg_.submit_batch_windows) return seal_batch(conn);
    return true;
  }
  return false;
}

std::vector<std::optional<std::uint64_t>> RoutingClient::flush_submits() {
  for (auto& conn : conns_) {
    if (conn) (void)sync_pipeline(*conn);
  }
  std::vector<std::optional<std::uint64_t>> out;
  out.reserve(pipeline_submits_.size());
  for (const auto& record : pipeline_submits_) {
    out.push_back(record.resolved ? record.ticket : std::nullopt);
  }
  pipeline_submits_.clear();
  return out;
}

std::uint8_t RoutingClient::shard_wire_version(std::size_t shard) const {
  return conns_[shard]->version;
}

std::optional<std::uint64_t> RoutingClient::try_submit(host::CompressedWindow&& window) {
  // The loop re-routes after a failover (at most once per shard that can
  // die); without auto_failover it runs exactly one iteration, as before.
  for (std::size_t hop = 0; hop <= conns_.size(); ++hop) {
    const std::size_t shard = owner(window.patient_id);
    Conn& conn = *conns_[shard];
    (void)sync_pipeline(conn);  // Responses are per-connection ordered.
    window.route_tag = epoch_;
    std::vector<std::uint8_t> buf;
    encode_submit_window(buf, window, 0, cfg_.wire);
    std::vector<std::uint8_t> frame;
    FrameView view;
    if (send_request(conn, buf, /*may_retry=*/false) && read_frame(conn, frame, view)) {
      if (view.type == FrameType::kSubmitReject) {
        ++conn.rejected_seen;  // Alive and pushing back — not a failure.
        return std::nullopt;
      }
      std::uint64_t local = 0;
      if (view.type == FrameType::kSubmitAck && decode_submit_ack(view.payload, local)) {
        ++conn.acked_submits;
        patients_.insert(window.patient_id);
        if (cfg_.payload_pool) cfg_.payload_pool->recycle(std::move(window));
        return host::ReconstructionFabric::compose_ticket(epoch_, shard, local);
      }
    }
    conn.fd.reset();
    // No ACK arrived, so this window never entered the shard's mirror:
    // re-routing it to the survivor that now owns the patient cannot
    // double-count, and the dead shard can never answer for it again.
    if (!cfg_.auto_failover || !fail_shard(shard)) return std::nullopt;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> RoutingClient::submit(host::CompressedWindow window) {
  for (std::size_t hop = 0; hop <= conns_.size(); ++hop) {
    const std::size_t shard = owner(window.patient_id);
    Conn& conn = *conns_[shard];
    (void)sync_pipeline(conn);  // Responses are per-connection ordered.
    window.route_tag = epoch_;
    std::vector<std::uint8_t> buf;
    encode_submit_window(buf, window, kSubmitFlagBlocking, cfg_.wire);
    std::vector<std::uint8_t> frame;
    FrameView view;
    std::uint64_t local = 0;
    if (send_request(conn, buf, /*may_retry=*/false) && read_frame(conn, frame, view) &&
        view.type == FrameType::kSubmitAck && decode_submit_ack(view.payload, local)) {
      ++conn.acked_submits;
      patients_.insert(window.patient_id);
      if (cfg_.payload_pool) cfg_.payload_pool->recycle(std::move(window));
      return host::ReconstructionFabric::compose_ticket(epoch_, shard, local);
    }
    conn.fd.reset();
    // See try_submit: an unacked window is unmirrored, so the re-route
    // after failover is double-count-free by construction.
    if (!cfg_.auto_failover || !fail_shard(shard)) return std::nullopt;
  }
  return std::nullopt;
}

std::uint64_t RoutingClient::compose_result_ticket(const host::WindowResult& result) {
  // route_tag carries the submission epoch; that epoch's ring names the
  // shard index the window was actually submitted to, even if the shard's
  // index (or existence) changed since.
  const std::uint32_t e = result.route_tag;
  const std::size_t shard =
      e < ring_history_.size() ? ring_history_[e].owner(result.patient_id) : 0;
  return host::ReconstructionFabric::compose_ticket(e, shard, result.ticket);
}

bool RoutingClient::read_poll_results(Conn& conn, std::size_t* retrieved) {
  for (;;) {
    std::vector<std::uint8_t> frame;
    FrameView view;
    if (!read_frame(conn, frame, view)) return false;
    if (view.type == FrameType::kPollEnd) {
      std::uint32_t count = 0;
      return decode_poll_end(view.payload, count);
    }
    if (view.type != FrameType::kResult) {
      conn.fd.reset();
      return false;
    }
    host::WindowResult result;
    if (!decode_result(view.payload, result, cfg_.payload_pool.get())) {
      conn.fd.reset();
      return false;
    }
    result.ticket = compose_result_ticket(result);
    pending_.push_back(std::move(result));
    ++conn.retrieved;
    if (retrieved) ++*retrieved;
  }
}

bool RoutingClient::sweep_shard(Conn& conn, std::size_t* retrieved) {
  (void)sync_pipeline(conn);
  std::vector<std::uint8_t> buf;
  if (conn.version >= 2) {
    // One POLL_MANY, one RESULT_BATCH — K results per round trip.
    encode_poll_many(buf, cfg_.poll_batch);
    if (!send_request(conn, buf, /*may_retry=*/true)) return false;
    std::vector<std::uint8_t> frame;
    FrameView view;
    std::vector<host::WindowResult> results;
    if (!read_frame(conn, frame, view) || view.type != FrameType::kResultBatch ||
        !decode_result_batch(view.payload, results, cfg_.payload_pool.get())) {
      conn.fd.reset();
      return false;
    }
    for (auto& result : results) {
      result.ticket = compose_result_ticket(result);
      pending_.push_back(std::move(result));
      ++conn.retrieved;
      if (retrieved) ++*retrieved;
    }
    return true;
  }
  encode_poll(buf, cfg_.poll_batch);
  if (!send_request(conn, buf, /*may_retry=*/true)) return false;
  return read_poll_results(conn, retrieved);
}

std::optional<host::WindowResult> RoutingClient::poll() {
  if (pending_.empty()) {
    for (std::size_t shard = 0; shard < conns_.size(); ++shard) {
      Conn& conn = *conns_[shard];
      if (conn.failed) continue;
      if (!sweep_shard(conn, nullptr) && cfg_.auto_failover) (void)fail_shard(shard);
    }
  }
  if (pending_.empty()) return std::nullopt;
  auto result = std::move(pending_.front());
  pending_.pop_front();
  return result;
}

std::vector<host::WindowResult> RoutingClient::drain() {
  std::vector<host::WindowResult> all;
  for (;;) {
    // Sweep every live shard, then check fleet-wide quiescence.
    for (std::size_t shard = 0; shard < conns_.size(); ++shard) {
      Conn& conn = *conns_[shard];
      if (conn.failed) continue;
      if (!sweep_shard(conn, nullptr) && cfg_.auto_failover) (void)fail_shard(shard);
    }
    while (!pending_.empty()) {
      all.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    bool quiesced = true;
    for (std::size_t shard = 0; shard < conns_.size(); ++shard) {
      Conn& conn = *conns_[shard];
      if (conn.failed) continue;
      SnapshotPayload snap;
      if (!fetch_snapshot(conn, snap)) {
        if (cfg_.auto_failover) (void)fail_shard(shard);
        continue;  // Unreachable: nothing left to wait on there.
      }
      if (snap.unsolved > 0 || snap.ready > 0) {
        quiesced = false;
        break;
      }
    }
    if (quiesced) return all;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool RoutingClient::fetch_snapshot(Conn& conn, SnapshotPayload& out) {
  (void)sync_pipeline(conn);
  std::vector<std::uint8_t> buf;
  encode_snapshot_request(buf);
  if (!send_request(conn, buf, /*may_retry=*/true)) return false;
  std::vector<std::uint8_t> frame;
  FrameView view;
  return read_frame(conn, frame, view) && view.type == FrameType::kSnapshot &&
         decode_snapshot(view.payload, out);
}

SnapshotPayload RoutingClient::aggregate_snapshot() {
  // retired_ carries both orderly retirements (their exact final
  // snapshots) and crash failovers (the client-side mirrors, with the
  // unpollable remainder under .lost).
  SnapshotPayload sum = retired_;
  for (auto& conn : conns_) {
    if (conn->failed) continue;
    SnapshotPayload snap;
    if (fetch_snapshot(*conn, snap)) accumulate(sum, snap);
  }
  return sum;
}

bool RoutingClient::refresh_cr_hints(std::uint32_t max_entries_per_shard) {
  cr_hints_.clear();
  shard_advisory_.assign(conns_.size(), 0.0);
  hints_epoch_ = epoch_;
  bool ok = true;
  for (std::size_t shard = 0; shard < conns_.size(); ++shard) {
    Conn& conn = *conns_[shard];
    if (conn.failed) continue;
    // v1 shards don't speak the verb; no hint just means full fidelity.
    if (conn.version < 2) continue;
    (void)sync_pipeline(conn);  // Responses are per-connection ordered.
    std::vector<std::uint8_t> buf;
    encode_cr_hint(buf, epoch_, max_entries_per_shard);
    if (!send_request(conn, buf, /*may_retry=*/true)) {
      ok = false;
      continue;
    }
    std::vector<std::uint8_t> frame;
    FrameView view;
    CrHintAckPayload ack;
    if (!read_frame(conn, frame, view) || view.type != FrameType::kCrHintAck ||
        !decode_cr_hint_ack(view.payload, ack)) {
      conn.fd.reset();
      ok = false;
      continue;
    }
    if (ack.epoch != epoch_) {
      // Answered for an epoch we no longer route by: drop it rather than
      // risk steering a node through the wrong owner.
      ok = false;
      continue;
    }
    shard_advisory_[shard] = ack.advisory_cr_centi / 100.0;
    for (const auto& entry : ack.entries) {
      cr_hints_[entry.patient_id] = entry.cr_centi / 100.0;
    }
  }
  return ok;
}

std::optional<double> RoutingClient::cr_hint(std::uint32_t patient_id) const {
  if (conns_.empty() || hints_epoch_ != epoch_) return std::nullopt;
  if (auto it = cr_hints_.find(patient_id);
      it != cr_hints_.end() && it->second > 0.0) {
    return it->second;
  }
  const double advisory = shard_advisory_[owner(patient_id)];
  if (advisory > 0.0) return advisory;
  return std::nullopt;
}

std::optional<host::SloTrackerState> RoutingClient::patient_slo_state(
    std::uint32_t patient_id) {
  Conn& conn = *conns_[owner(patient_id)];
  (void)sync_pipeline(conn);
  std::vector<std::uint8_t> buf;
  encode_patient_frame(buf, FrameType::kExtractSlo, patient_id);
  if (!send_request(conn, buf, /*may_retry=*/false)) return std::nullopt;
  std::vector<std::uint8_t> frame;
  FrameView view;
  SloStatePayload slo;
  if (!read_frame(conn, frame, view) || view.type != FrameType::kSloState ||
      !decode_slo_state(view.payload, slo)) {
    return std::nullopt;
  }
  // Hand the history straight back so the shard's breakdown keeps it; the
  // caller gets a copy.
  buf.clear();
  encode_slo_state(buf, FrameType::kAdoptSlo, slo);
  if (send_request(conn, buf, /*may_retry=*/false)) {
    bool adopted = false;
    if (read_frame(conn, frame, view) && view.type == FrameType::kAdoptAck) {
      (void)decode_adopt_ack(view.payload, adopted);
    }
  }
  return slo.present ? std::optional(slo.state) : std::nullopt;
}

bool RoutingClient::drain_and_move_patient(std::uint32_t patient_id, Conn& from, Conn& to) {
  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> frame;
  FrameView view;

  // 1. Quiesce the patient on the old owner (the epoch already flipped, so
  //    no new windows can race in behind the drain).
  encode_patient_frame(buf, FrameType::kDrainPatient, patient_id);
  if (!send_request(from, buf, /*may_retry=*/false)) return false;
  std::uint32_t echoed = 0;
  if (!read_frame(from, frame, view) || view.type != FrameType::kDrainDone ||
      !decode_patient_frame(view.payload, echoed) || echoed != patient_id) {
    return false;
  }

  // 2. Move the SLO history: extract (exchange(0) server-side) and adopt.
  buf.clear();
  encode_patient_frame(buf, FrameType::kExtractSlo, patient_id);
  if (!send_request(from, buf, /*may_retry=*/false)) return false;
  SloStatePayload slo;
  if (!read_frame(from, frame, view) || view.type != FrameType::kSloState ||
      !decode_slo_state(view.payload, slo)) {
    return false;
  }
  if (!slo.present) return true;  // Never tracked: nothing to carry over.
  buf.clear();
  encode_slo_state(buf, FrameType::kAdoptSlo, slo);
  if (!send_request(to, buf, /*may_retry=*/false)) return false;
  bool adopted = false;
  return read_frame(to, frame, view) && view.type == FrameType::kAdoptAck &&
         decode_adopt_ack(view.payload, adopted);
}

bool RoutingClient::retire(Conn& conn) {
  // Pull out every result still parked on the shard (all its patients were
  // just drained, so only the completion list can be non-empty), fold its
  // final counters into the retired accumulator, and dismiss it.
  std::vector<std::uint8_t> buf;
  for (;;) {
    SnapshotPayload snap;
    if (!fetch_snapshot(conn, snap)) return false;
    if (snap.unsolved == 0 && snap.ready == 0) {
      accumulate(retired_, snap);
      break;
    }
    buf.clear();
    encode_poll(buf, cfg_.poll_batch);
    if (!send_request(conn, buf, /*may_retry=*/false)) return false;
    if (!read_poll_results(conn, nullptr)) return false;
  }
  buf.clear();
  encode_bye(buf);
  if (send_request(conn, buf, /*may_retry=*/false)) {
    std::vector<std::uint8_t> frame;
    FrameView view;
    (void)read_frame(conn, frame, view);  // BYE_ACK (best effort).
  }
  conn.fd.reset();
  return true;
}

bool RoutingClient::set_topology(std::vector<ShardEndpoint> shards) {
  // Outstanding pipelined submits belong to the closing epoch: settle
  // every ACK before the flip so their tickets compose against it.
  for (auto& conn : conns_) {
    if (conn) (void)sync_pipeline(*conn);
  }
  const host::HashRing old_ring = ring_history_[epoch_];
  // The previous epoch's index -> connection table, captured before the
  // container shuffle below (the Conn objects themselves don't move, so
  // raw pointers stay valid while unique_ptrs change vectors).
  std::vector<Conn*> old_table;
  old_table.reserve(conns_.size());
  for (auto& c : conns_) old_table.push_back(c.get());

  // Build the next epoch's connection table, reusing live connections for
  // endpoints that survive (matched by host:port) so their engines keep
  // their backlogs and completion lists.  A *failed* slot never matches:
  // if a crashed shard's endpoint reappears (daemon restarted), it is a
  // brand-new shard with a fresh connection and clean mirrors — its
  // predecessor's losses are already folded into retired_.
  std::vector<std::unique_ptr<Conn>> next;
  next.reserve(shards.size());
  for (auto& ep : shards) {
    auto it = std::find_if(conns_.begin(), conns_.end(), [&](const auto& c) {
      return c && !c->failed && c->endpoint == ep;
    });
    if (it != conns_.end()) {
      next.push_back(std::move(*it));
    } else {
      auto conn = std::make_unique<Conn>();
      conn->endpoint = std::move(ep);
      if (!ensure_connected(*conn)) return false;
      next.push_back(std::move(conn));
    }
  }
  // Failed slots are dropped silently (already fully accounted); only
  // live leavers go through the synchronous retirement protocol.
  std::vector<std::unique_ptr<Conn>> leaving;
  for (auto& c : conns_) {
    if (c && !c->failed) leaving.push_back(std::move(c));
  }

  // Flip the routing epoch first — same ordering as the in-process
  // fabric's resize(): from here on nothing routes to a leaving shard and
  // every new submission is tagged with the new epoch, so each window's
  // route is decided by exactly one epoch.
  conns_ = std::move(next);
  for (std::size_t i = 0; i < conns_.size(); ++i) conns_[i]->index = i;
  ring_history_.emplace_back(conns_.size(), cfg_.vnodes_per_shard);
  ++epoch_;

  // Migrate every patient whose owning *endpoint* changed: quiesce it on
  // the old owner, then move its SLO history.  An index shift that keeps
  // the endpoint needs no migration — the connection is the identity.
  bool ok = true;
  for (std::uint32_t patient : patients_) {
    Conn* from = old_table[old_ring.owner(patient)];
    Conn* to = conns_[owner(patient)].get();
    if (from == to) continue;
    if (!drain_and_move_patient(patient, *from, *to)) ok = false;
  }
  // Leaving shards are now empty of routed patients: pull their parked
  // results, fold their counters, dismiss them.
  for (auto& conn : leaving) {
    if (!retire(*conn)) ok = false;
  }
  return ok;
}

void RoutingClient::shutdown(bool send_bye) {
  for (auto& conn : conns_) {
    if (conn && conn->fd.valid()) (void)sync_pipeline(*conn);
  }
  if (send_bye) {
    std::vector<std::uint8_t> buf;
    encode_bye(buf);
    for (auto& conn : conns_) {
      if (!conn || !conn->fd.valid()) continue;
      if (send_all(conn->fd.get(), buf.data(), buf.size())) {
        std::vector<std::uint8_t> frame;
        FrameView view;
        (void)read_frame(*conn, frame, view);
      }
    }
  }
  for (auto& conn : conns_) {
    if (conn) conn->fd.reset();
  }
}

}  // namespace wbsn::net
