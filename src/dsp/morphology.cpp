#include "dsp/morphology.hpp"

#include "dsp/sliding_minmax.hpp"

namespace wbsn::dsp {

std::vector<std::int32_t> erode(std::span<const std::int32_t> x, std::size_t width,
                                OpCount* ops) {
  return sliding_min(x, width, ops);
}

std::vector<std::int32_t> dilate(std::span<const std::int32_t> x, std::size_t width,
                                 OpCount* ops) {
  return sliding_max(x, width, ops);
}

std::vector<std::int32_t> morph_open(std::span<const std::int32_t> x, std::size_t width,
                                     OpCount* ops) {
  return dilate(erode(x, width, ops), width, ops);
}

std::vector<std::int32_t> morph_close(std::span<const std::int32_t> x, std::size_t width,
                                      OpCount* ops) {
  return erode(dilate(x, width, ops), width, ops);
}

MorphFilterResult morphological_filter(std::span<const std::int32_t> x,
                                       const MorphFilterConfig& cfg) {
  MorphFilterResult result;

  // Stage 1 — baseline estimation and removal: opening flattens the QRS
  // (narrow positive structure), the subsequent closing fills the negative
  // wave remnants; what survives is the slow drift.
  std::vector<std::int32_t> corrected;
  if (cfg.remove_baseline) {
    result.baseline = morph_close(morph_open(x, cfg.baseline_open_width, &result.ops),
                                  cfg.baseline_close_width, &result.ops);
    corrected.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      corrected[i] = x[i] - result.baseline[i];
    }
    result.ops.add += x.size();
    result.ops.load += 2 * x.size();
    result.ops.store += x.size();
  } else {
    result.baseline.assign(x.size(), 0);
    corrected.assign(x.begin(), x.end());
  }

  if (!cfg.suppress_noise) {
    result.filtered = std::move(corrected);
    return result;
  }

  // Stage 2 — noise suppression: average of an opening-closing and a
  // closing-opening with a short SE pair.  The two branches bias the
  // estimate in opposite directions, so their mean is close to unbiased
  // while spike noise narrower than the SE disappears entirely.
  const auto branch_a = morph_close(morph_open(corrected, cfg.noise_width_1, &result.ops),
                                    cfg.noise_width_2, &result.ops);
  const auto branch_b = morph_open(morph_close(corrected, cfg.noise_width_1, &result.ops),
                                   cfg.noise_width_2, &result.ops);
  result.filtered.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Round-to-nearest halving keeps the output unbiased; on the MCU this
    // is an add plus an arithmetic shift.
    result.filtered[i] =
        static_cast<std::int32_t>((static_cast<std::int64_t>(branch_a[i]) + branch_b[i] + 1) >> 1);
  }
  result.ops.add += 2 * x.size();
  result.ops.shift += x.size();
  result.ops.load += 2 * x.size();
  result.ops.store += x.size();
  return result;
}

std::vector<std::int32_t> morph_transform(std::span<const std::int32_t> x, std::size_t width,
                                          OpCount* ops) {
  OpCount local;
  const auto opened = morph_open(x, width, &local);
  const auto closed = morph_close(x, width, &local);
  std::vector<std::int32_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::int64_t avg = (static_cast<std::int64_t>(opened[i]) + closed[i]) >> 1;
    out[i] = static_cast<std::int32_t>(x[i] - avg);
  }
  local.add += 2 * x.size();
  local.shift += x.size();
  local.load += 3 * x.size();
  local.store += x.size();
  if (ops != nullptr) *ops += local;
  return out;
}

}  // namespace wbsn::dsp
