// Wavelet transforms: the two flavors the paper's pipeline needs.
//
// 1. An undecimated (à trous) quadratic-spline transform — the filter bank
//    behind wavelet ECG delineation (Rincón et al., BSN 2009; Martínez et
//    al.).  Its low-pass [1 3 3 1]/8 and derivative high-pass 2[1 -1] have
//    power-of-two coefficients, so on the node every tap is shifts and adds
//    — the exact "proper choice of filter bank coefficients" optimization
//    Section IV-A credits for the 7 % duty-cycle implementation.
//    The wavelet approximates the derivative of a smoothing kernel: wave
//    peaks appear as zero crossings between modulus-maxima pairs, and wave
//    boundaries as isolated modulus maxima.
//
// 2. An orthonormal Daubechies-4 DWT (periodized, host-side, double) used
//    as the sparsifying basis for compressed-sensing reconstruction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::dsp {

/// Undecimated quadratic-spline transform of `x` over scales 2^1..2^levels.
struct SwtResult {
  /// detail[j][i]: wavelet coefficient at scale 2^(j+1), time-aligned with
  /// the input (group delay compensated).
  std::vector<std::vector<std::int32_t>> detail;
  /// Final smooth approximation.
  std::vector<std::int32_t> approx;
  OpCount ops;
};

SwtResult swt_spline(std::span<const std::int32_t> x, int levels);

/// Orthonormal Daubechies-4 analysis: returns `levels`-deep coefficients
/// arranged [approx | detail_L | detail_{L-1} | ... | detail_1].
/// The length of `x` must be divisible by 2^levels.
std::vector<double> dwt_forward(std::span<const double> x, int levels);

/// Inverse of dwt_forward (exact reconstruction up to rounding).
std::vector<double> dwt_inverse(std::span<const double> coeffs, int levels);

/// Allocation-free variants for arena callers (cs::FistaWorkspace): the
/// result lands in `out` and `scratch` provides the inter-level buffer,
/// both x.size() long and owned by the caller.  `out`/`scratch` must not
/// alias `x` or each other.  Bit-identical to the allocating versions.
void dwt_forward_into(std::span<const double> x, int levels, std::span<double> out,
                      std::span<double> scratch);
void dwt_inverse_into(std::span<const double> coeffs, int levels, std::span<double> out,
                      std::span<double> scratch);

/// Batched analysis over `batch` windows interleaved element-major:
/// x[i * batch + b] is sample i of window b, x.size() == n * batch.
/// Per-window results are bit-identical to dwt_forward on that window
/// alone (the kern layer's batch-width contract).
std::vector<double> dwt_forward_batch(std::span<const double> x, std::size_t batch,
                                      int levels);

/// Inverse of dwt_forward_batch (same interleaved layout).
std::vector<double> dwt_inverse_batch(std::span<const double> coeffs, std::size_t batch,
                                      int levels);

/// Arena variants of the batched transforms; `out` and `scratch` are each
/// x.size() long, owned by the caller, and must not alias `x` or each other.
void dwt_forward_batch_into(std::span<const double> x, std::size_t batch, int levels,
                            std::span<double> out, std::span<double> scratch);
void dwt_inverse_batch_into(std::span<const double> coeffs, std::size_t batch, int levels,
                            std::span<double> out, std::span<double> scratch);

/// Maximum level count usable for length n (keeps every stage even-length).
int dwt_max_levels(std::size_t n);

}  // namespace wbsn::dsp
