#include "dsp/sliding_minmax.hpp"

#include <algorithm>
#include <cassert>

namespace wbsn::dsp {

SlidingExtrema::SlidingExtrema(std::size_t window) : window_(window) {
  assert(window >= 1);
  min_wedge_.reserve(window);
  max_wedge_.reserve(window);
}

void SlidingExtrema::evict(std::vector<Entry>& wedge, std::int64_t oldest_allowed) {
  // Compact storage once the dead prefix grows; keeps memory O(window).
  std::size_t& head = (&wedge == &min_wedge_) ? min_head_ : max_head_;
  while (head < wedge.size() && wedge[head].index < oldest_allowed) {
    ++head;
    ops_.cmp += 1;
    ops_.branch += 1;
  }
  if (head > window_) {
    wedge.erase(wedge.begin(), wedge.begin() + static_cast<long>(head));
    head = 0;
  }
}

void SlidingExtrema::push(std::int32_t value) {
  const std::int64_t idx = count_++;
  const std::int64_t oldest_allowed = idx - static_cast<std::int64_t>(window_) + 1;

  // Maintain the min wedge: strictly increasing values from head to tail.
  while (min_wedge_.size() > min_head_ && min_wedge_.back().value >= value) {
    min_wedge_.pop_back();
    ops_.cmp += 1;
    ops_.branch += 1;
  }
  min_wedge_.push_back({idx, value});
  ops_.store += 1;
  evict(min_wedge_, oldest_allowed);

  // Max wedge: strictly decreasing values.
  while (max_wedge_.size() > max_head_ && max_wedge_.back().value <= value) {
    max_wedge_.pop_back();
    ops_.cmp += 1;
    ops_.branch += 1;
  }
  max_wedge_.push_back({idx, value});
  ops_.store += 1;
  evict(max_wedge_, oldest_allowed);
}

std::int32_t SlidingExtrema::min() const {
  assert(min_head_ < min_wedge_.size());
  return min_wedge_[min_head_].value;
}

std::int32_t SlidingExtrema::max() const {
  assert(max_head_ < max_wedge_.size());
  return max_wedge_[max_head_].value;
}

namespace {

enum class Mode { kMin, kMax };

std::vector<std::int32_t> sliding_extreme(std::span<const std::int32_t> x, std::size_t window,
                                          Mode mode, OpCount* ops) {
  std::vector<std::int32_t> out(x.size());
  if (x.empty()) return out;
  window = std::max<std::size_t>(1, window);
  const std::size_t half = window / 2;

  SlidingExtrema tracker(window);
  OpCount local;
  // Centered window: output sample i needs inputs up to i + half; push with
  // a lead of `half` samples, clamping at the right edge by re-pushing the
  // final sample (equivalent to edge replication, which keeps the filter
  // from hallucinating steps at record boundaries).
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < x.size() + half; ++i) {
    const std::int32_t v = x[std::min(i, x.size() - 1)];
    tracker.push(v);
    local.load += 1;
    if (i >= half) {
      out[emitted++] = mode == Mode::kMin ? tracker.min() : tracker.max();
      local.store += 1;
    }
  }
  local += tracker.ops();
  if (ops != nullptr) *ops += local;
  return out;
}

}  // namespace

std::vector<std::int32_t> sliding_min(std::span<const std::int32_t> x, std::size_t window,
                                      OpCount* ops) {
  return sliding_extreme(x, window, Mode::kMin, ops);
}

std::vector<std::int32_t> sliding_max(std::span<const std::int32_t> x, std::size_t window,
                                      OpCount* ops) {
  return sliding_extreme(x, window, Mode::kMax, ops);
}

}  // namespace wbsn::dsp
