// Stimulus-locked noise reduction: ensemble averaging (EA) and the adaptive
// impulse-correlated filter (AICF).
//
// Section IV-C of the paper: most cardiac bio-signals are time-locked to
// the bioelectric stimulus visible in the ECG, so averaging signal windows
// aligned on R peaks cancels noise that is uncorrelated with the stimulus.
// Plain EA converges to the mean waveform but erases beat-to-beat dynamics;
// the AICF (Laguna et al., IEEE TBME 1992) replaces the uniform average
// with an exponentially-weighted LMS update per intra-beat sample, which
// tracks slow morphological change while still averaging noise down.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::dsp {

/// Common windowing: samples [trigger - pre, trigger + post).
struct EnsembleWindow {
  std::size_t pre = 50;    ///< Samples before the trigger (200 ms @ 250 Hz).
  std::size_t post = 100;  ///< Samples after the trigger (400 ms @ 250 Hz).

  std::size_t length() const { return pre + post; }
};

/// Uniform ensemble average over all triggers.
class EnsembleAverager {
 public:
  explicit EnsembleAverager(EnsembleWindow window);

  /// Accumulates one beat window centered on `trigger`; windows that spill
  /// past the signal edges are skipped.
  void accumulate(std::span<const double> signal, std::int64_t trigger);

  /// Average waveform so far (empty if no complete window was seen).
  std::vector<double> average() const;

  std::size_t count() const { return count_; }
  const EnsembleWindow& window() const { return window_; }

 private:
  EnsembleWindow window_;
  std::vector<double> sum_;
  std::size_t count_ = 0;
};

/// AICF: per-offset exponential estimator a_k <- a_k + mu (x_k - a_k).
class AdaptiveImpulseCorrelatedFilter {
 public:
  AdaptiveImpulseCorrelatedFilter(EnsembleWindow window, double mu);

  /// Processes one beat window; returns the *updated* estimate (the
  /// filtered beat).  Returns an empty vector for windows off the edges.
  std::vector<double> process_beat(std::span<const double> signal, std::int64_t trigger);

  /// Current waveform estimate.
  const std::vector<double>& estimate() const { return estimate_; }

  double mu() const { return mu_; }

 private:
  EnsembleWindow window_;
  double mu_;
  std::vector<double> estimate_;
  bool primed_ = false;
};

/// Convenience: runs EA over a whole record and reports the residual noise
/// power of each beat against the final template (used in tests/benches).
double ensemble_residual_power(std::span<const double> signal,
                               std::span<const std::int64_t> triggers,
                               const EnsembleWindow& window);

}  // namespace wbsn::dsp
