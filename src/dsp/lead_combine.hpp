// Multi-lead source combination (Section III-B of the paper).
//
// Braojos et al. (BIBE 2012) show that combining the filtered leads with a
// simple root-mean-square before delineation is a light-weight yet
// effective way to exploit lead redundancy against noise: uncorrelated
// noise averages down while the common cardiac component survives.  The
// node-side variant is integer-only, using an integer square root.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::dsp {

/// Integer square root: floor(sqrt(v)) for v >= 0 (bit-by-bit method, no
/// division — suitable for MCUs without a hardware divider).
std::uint32_t isqrt64(std::uint64_t v, OpCount* ops = nullptr);

/// RMS combination of equal-length integer leads:
/// out[i] = floor(sqrt(sum_l x_l[i]^2 / L)).
std::vector<std::int32_t> rms_combine(std::span<const std::vector<std::int32_t>> leads,
                                      OpCount* ops = nullptr);

/// Floating-point reference implementation (host-side baseline).
std::vector<double> rms_combine_ref(std::span<const std::vector<double>> leads);

}  // namespace wbsn::dsp
