// Cubic-spline baseline-wander estimation (Meyer & Keiser, 1977).
//
// Section III-B of the paper cites this classic alternative to
// morphological baseline removal: pick one "knot" per beat inside the
// electrically silent PR segment (between P offset and QRS onset, where the
// true signal is isoelectric so any level measured there *is* baseline),
// then interpolate the knots with cubic polynomials and subtract.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::dsp {

struct SplineBaselineConfig {
  double fs = 250.0;
  /// Center of the knot-sampling window, relative to the R peak (seconds,
  /// negative = before R).  The PR segment sits ~60-100 ms before R.
  double knot_offset_s = -0.075;
  /// Knot value = mean over this many samples (robustness to noise).
  std::size_t knot_halfwidth = 2;
};

struct SplineBaselineResult {
  std::vector<double> baseline;        ///< Per-sample baseline estimate.
  std::vector<std::int64_t> knots;     ///< Knot sample indices used.
  OpCount ops;
};

/// Estimates the baseline of `x` given the R-peak locations of its beats.
/// Outside the first/last knot the estimate is extended as a constant.
SplineBaselineResult estimate_spline_baseline(std::span<const double> x,
                                              std::span<const std::int64_t> r_peaks,
                                              const SplineBaselineConfig& cfg = {});

/// Convenience: estimate and subtract in one step.
std::vector<double> spline_baseline_correct(std::span<const double> x,
                                            std::span<const std::int64_t> r_peaks,
                                            const SplineBaselineConfig& cfg = {});

/// Natural cubic spline through (xs, ys); exposed for testing.  Evaluates
/// at integer positions [0, n) into `out` (clamped outside the knot range).
void natural_cubic_spline_eval(std::span<const double> xs, std::span<const double> ys,
                               std::span<double> out);

}  // namespace wbsn::dsp
