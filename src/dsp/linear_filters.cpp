#include "dsp/linear_filters.hpp"

#include <cmath>
#include <numbers>

namespace wbsn::dsp {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : coeff_{b0, b1, b2, a1, a2} {}

double Biquad::process(double x) {
  const double y = coeff_[0] * x + s1_;
  s1_ = coeff_[1] * x - coeff_[3] * y + s2_;
  s2_ = coeff_[2] * x - coeff_[4] * y;
  return y;
}

void Biquad::reset() {
  s1_ = 0.0;
  s2_ = 0.0;
}

std::vector<double> Biquad::filter(std::span<const double> x) {
  std::vector<double> out;
  out.reserve(x.size());
  for (double v : x) out.push_back(process(v));
  return out;
}

namespace {

struct RbjParams {
  double w0;
  double cw;
  double sw;
  double alpha;
};

RbjParams rbj(double f0, double q, double fs) {
  const double w0 = 2.0 * std::numbers::pi * f0 / fs;
  return {w0, std::cos(w0), std::sin(w0), std::sin(w0) / (2.0 * q)};
}

}  // namespace

Biquad Biquad::notch(double f0_hz, double q, double fs) {
  const auto p = rbj(f0_hz, q, fs);
  const double a0 = 1.0 + p.alpha;
  return {(1.0) / a0, (-2.0 * p.cw) / a0, (1.0) / a0, (-2.0 * p.cw) / a0,
          (1.0 - p.alpha) / a0};
}

Biquad Biquad::lowpass(double fc_hz, double q, double fs) {
  const auto p = rbj(fc_hz, q, fs);
  const double a0 = 1.0 + p.alpha;
  const double b1 = 1.0 - p.cw;
  return {(b1 / 2.0) / a0, b1 / a0, (b1 / 2.0) / a0, (-2.0 * p.cw) / a0,
          (1.0 - p.alpha) / a0};
}

Biquad Biquad::highpass(double fc_hz, double q, double fs) {
  const auto p = rbj(fc_hz, q, fs);
  const double a0 = 1.0 + p.alpha;
  const double b1 = 1.0 + p.cw;
  return {(b1 / 2.0) / a0, -b1 / a0, (b1 / 2.0) / a0, (-2.0 * p.cw) / a0,
          (1.0 - p.alpha) / a0};
}

BandpassFilter::BandpassFilter(double lo_hz, double hi_hz, double fs)
    : hp_(Biquad::highpass(lo_hz, std::numbers::sqrt2 / 2.0, fs)),
      lp_(Biquad::lowpass(hi_hz, std::numbers::sqrt2 / 2.0, fs)) {}

double BandpassFilter::process(double x) { return lp_.process(hp_.process(x)); }

std::vector<double> BandpassFilter::filter(std::span<const double> x) {
  std::vector<double> out;
  out.reserve(x.size());
  for (double v : x) out.push_back(process(v));
  return out;
}

std::vector<std::int32_t> moving_average_pow2(std::span<const std::int32_t> x,
                                              unsigned log2_len, OpCount* ops) {
  const std::size_t len = std::size_t{1} << log2_len;
  std::vector<std::int32_t> out(x.size());
  std::int64_t acc = 0;
  OpCount local;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    local.add += 1;
    local.load += 1;
    if (i >= len) {
      acc -= x[i - len];
      local.add += 1;
      local.load += 1;
    }
    out[i] = static_cast<std::int32_t>(acc >> log2_len);
    local.shift += 1;
    local.store += 1;
  }
  if (ops != nullptr) *ops += local;
  return out;
}

}  // namespace wbsn::dsp
