// Flat-structuring-element mathematical morphology for ECG conditioning.
//
// Implements the signal-conditioning chain of Sun, Chan & Krishnan
// (Computers in Biology and Medicine, 2002), referenced in Section III-B of
// the paper: baseline drift is estimated by an opening followed by a
// closing with structuring elements sized around the characteristic wave
// durations, and wideband noise is suppressed by averaging an
// opening-closing and a closing-opening pair with short elements.  All
// operators use flat (constant) structuring elements, so erosion/dilation
// reduce to the O(1)/sample sliding min/max of sliding_minmax.hpp — the
// exact software optimization Section IV-A highlights.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::dsp {

/// Erosion with a flat SE of `width` samples (centered).
std::vector<std::int32_t> erode(std::span<const std::int32_t> x, std::size_t width,
                                OpCount* ops = nullptr);

/// Dilation with a flat SE of `width` samples (centered).
std::vector<std::int32_t> dilate(std::span<const std::int32_t> x, std::size_t width,
                                 OpCount* ops = nullptr);

/// Opening: erosion then dilation — removes positive peaks narrower than SE.
std::vector<std::int32_t> morph_open(std::span<const std::int32_t> x, std::size_t width,
                                     OpCount* ops = nullptr);

/// Closing: dilation then erosion — removes negative pits narrower than SE.
std::vector<std::int32_t> morph_close(std::span<const std::int32_t> x, std::size_t width,
                                      OpCount* ops = nullptr);

/// Configuration of the two-stage conditioning filter.
struct MorphFilterConfig {
  // Baseline estimation SE widths, in samples.  The opening element must
  // exceed the QRS duration (so the QRS is flattened out of the baseline
  // estimate) and the closing element must exceed the T-wave duration.
  // The opening element must exceed the *widest* wave (the T wave, up to
  // ~0.3 s) or the baseline estimate absorbs wave tails and truncates them.
  std::size_t baseline_open_width = 87;    // ~0.35 s at 250 Hz.
  std::size_t baseline_close_width = 113;  // ~0.45 s at 250 Hz.
  // Noise-suppression SE widths (a short pair, per Sun et al.).
  std::size_t noise_width_1 = 3;
  std::size_t noise_width_2 = 5;
  bool remove_baseline = true;
  bool suppress_noise = true;
};

/// Result of the conditioning chain.
struct MorphFilterResult {
  std::vector<std::int32_t> filtered;   ///< Conditioned signal.
  std::vector<std::int32_t> baseline;   ///< Estimated baseline (for tests/plots).
  OpCount ops;                          ///< Total node-side work performed.
};

/// Full morphological conditioning: baseline removal + noise suppression.
/// This is the "MF" kernel of the paper's Figure 7 (3L-MF = three leads).
MorphFilterResult morphological_filter(std::span<const std::int32_t> x,
                                       const MorphFilterConfig& cfg = {});

/// Peak-enhancing multiscale morphological transform used by the
/// delineator (Sun et al., BMC Cardiovascular Disorders 2005): the signal
/// minus the average of its opening and closing.  Peaks of the input map to
/// extrema of the transform; wave boundaries map to slope changes.
std::vector<std::int32_t> morph_transform(std::span<const std::int32_t> x, std::size_t width,
                                          OpCount* ops = nullptr);

}  // namespace wbsn::dsp
