#include "dsp/wavelet.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kern/backend.hpp"

namespace wbsn::dsp {
namespace {

/// Mirror (reflect) indexing for edge handling.
std::size_t mirror(std::int64_t i, std::int64_t n) {
  if (n == 1) return 0;
  const std::int64_t period = 2 * (n - 1);
  std::int64_t m = i % period;
  if (m < 0) m += period;
  if (m >= n) m = period - m;
  return static_cast<std::size_t>(m);
}

}  // namespace

SwtResult swt_spline(std::span<const std::int32_t> x, int levels) {
  SwtResult result;
  const auto n = static_cast<std::int64_t>(x.size());
  std::vector<std::int32_t> smooth(x.begin(), x.end());
  result.detail.reserve(static_cast<std::size_t>(levels));

  for (int j = 0; j < levels; ++j) {
    const std::int64_t hole = std::int64_t{1} << j;  // Tap spacing 2^j.
    std::vector<std::int32_t> next_smooth(x.size());
    std::vector<std::int32_t> detail(x.size());
    // Group delays: low-pass [1 3 3 1]/8 spans taps at {0,1,2,3}*hole ->
    // center 1.5*hole; high-pass 2[1 -1] spans {0,1}*hole -> center
    // 0.5*hole.  Outputs are shifted back so features stay time-aligned.
    const std::int64_t lp_shift = (3 * hole) / 2;
    const std::int64_t hp_shift = hole / 2;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto s0 = static_cast<std::int64_t>(smooth[mirror(i + lp_shift - 0 * hole, n)]);
      const auto s1 = static_cast<std::int64_t>(smooth[mirror(i + lp_shift - 1 * hole, n)]);
      const auto s2 = static_cast<std::int64_t>(smooth[mirror(i + lp_shift - 2 * hole, n)]);
      const auto s3 = static_cast<std::int64_t>(smooth[mirror(i + lp_shift - 3 * hole, n)]);
      // (s0 + 3 s1 + 3 s2 + s3) / 8 with rounding; 3x = x + (x << 1).
      next_smooth[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>((s0 + 3 * s1 + 3 * s2 + s3 + 4) >> 3);

      const auto d0 = static_cast<std::int64_t>(smooth[mirror(i + hp_shift, n)]);
      const auto d1 = static_cast<std::int64_t>(smooth[mirror(i + hp_shift - hole, n)]);
      detail[static_cast<std::size_t>(i)] = static_cast<std::int32_t>((d0 - d1) * 2);
    }
    // Per output sample: LP = 4 loads, 2 shifts (x2 "times 3"), 5 adds,
    // 1 rounding shift, 1 store; HP = 2 loads, 1 add, 1 shift, 1 store.
    result.ops.load += 6 * x.size();
    result.ops.add += 6 * x.size();
    result.ops.shift += 4 * x.size();
    result.ops.store += 2 * x.size();
    result.detail.push_back(std::move(detail));
    smooth = std::move(next_smooth);
  }
  result.approx = std::move(smooth);
  return result;
}

int dwt_max_levels(std::size_t n) {
  int levels = 0;
  while (n >= 4 && n % 2 == 0) {
    n /= 2;
    ++levels;
  }
  return levels;
}

// The Db4 lifting steps live in the kern layer (kern/backend.hpp): the
// loops below only orchestrate the level cascade, so the per-output
// arithmetic — and thus the bits — comes from the runtime-dispatched
// backend, identical across scalar/AVX2 and batch widths.

void dwt_forward_into(std::span<const double> x, int levels, std::span<double> out,
                      std::span<double> scratch) {
  assert(levels >= 0 && levels <= dwt_max_levels(x.size()));
  assert(out.size() >= x.size() && scratch.size() >= x.size());
  const auto& k = kern::ops();
  std::copy(x.begin(), x.end(), out.begin());
  std::size_t len = x.size();
  for (int level = 0; level < levels; ++level) {
    const std::size_t half = len / 2;
    k.dwt_step(out.data(), len, scratch.data(), scratch.data() + half);
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(len), out.begin());
    len = half;
  }
}

void dwt_inverse_into(std::span<const double> coeffs, int levels, std::span<double> out,
                      std::span<double> scratch) {
  assert(levels >= 0 && levels <= dwt_max_levels(coeffs.size()));
  assert(out.size() >= coeffs.size() && scratch.size() >= coeffs.size());
  const auto& k = kern::ops();
  std::copy(coeffs.begin(), coeffs.end(), out.begin());
  std::size_t len = coeffs.size() >> levels;
  for (int level = 0; level < levels; ++level) {
    const std::size_t full = 2 * len;
    k.idwt_step(out.data(), out.data() + len, len, scratch.data());
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(full), out.begin());
    len = full;
  }
}

std::vector<double> dwt_forward(std::span<const double> x, int levels) {
  std::vector<double> coeffs(x.size());
  std::vector<double> buf(x.size());
  dwt_forward_into(x, levels, coeffs, buf);
  return coeffs;
}

std::vector<double> dwt_inverse(std::span<const double> coeffs, int levels) {
  std::vector<double> x(coeffs.size());
  std::vector<double> buf(coeffs.size());
  dwt_inverse_into(coeffs, levels, x, buf);
  return x;
}

void dwt_forward_batch_into(std::span<const double> x, std::size_t batch, int levels,
                            std::span<double> out, std::span<double> scratch) {
  assert(batch > 0 && x.size() % batch == 0);
  const std::size_t n = x.size() / batch;
  assert(levels >= 0 && levels <= dwt_max_levels(n));
  assert(out.size() >= x.size() && scratch.size() >= x.size());
  const auto& k = kern::ops();
  std::copy(x.begin(), x.end(), out.begin());
  std::size_t len = n;
  for (int level = 0; level < levels; ++level) {
    const std::size_t half = len / 2;
    k.dwt_step_batch(out.data(), len, batch, scratch.data(), scratch.data() + half * batch);
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(len * batch), out.begin());
    len = half;
  }
}

void dwt_inverse_batch_into(std::span<const double> coeffs, std::size_t batch, int levels,
                            std::span<double> out, std::span<double> scratch) {
  assert(batch > 0 && coeffs.size() % batch == 0);
  const std::size_t n = coeffs.size() / batch;
  assert(levels >= 0 && levels <= dwt_max_levels(n));
  assert(out.size() >= coeffs.size() && scratch.size() >= coeffs.size());
  const auto& k = kern::ops();
  std::copy(coeffs.begin(), coeffs.end(), out.begin());
  std::size_t len = n >> levels;
  for (int level = 0; level < levels; ++level) {
    const std::size_t full = 2 * len;
    k.idwt_step_batch(out.data(), out.data() + len * batch, len, batch, scratch.data());
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(full * batch), out.begin());
    len = full;
  }
}

std::vector<double> dwt_forward_batch(std::span<const double> x, std::size_t batch,
                                      int levels) {
  std::vector<double> coeffs(x.size());
  std::vector<double> buf(x.size());
  dwt_forward_batch_into(x, batch, levels, coeffs, buf);
  return coeffs;
}

std::vector<double> dwt_inverse_batch(std::span<const double> coeffs, std::size_t batch,
                                      int levels) {
  std::vector<double> x(coeffs.size());
  std::vector<double> buf(coeffs.size());
  dwt_inverse_batch_into(coeffs, batch, levels, x, buf);
  return x;
}

}  // namespace wbsn::dsp
