#include "dsp/lead_combine.hpp"

#include <cassert>
#include <cmath>

namespace wbsn::dsp {

std::uint32_t isqrt64(std::uint64_t v, OpCount* ops) {
  // Classic bit-by-bit integer square root: ~32 iterations of shift,
  // compare, subtract.
  std::uint64_t rem = 0;
  std::uint64_t root = 0;
  OpCount local;
  for (int i = 0; i < 32; ++i) {
    root <<= 1;
    rem = (rem << 2) | (v >> 62);
    v <<= 2;
    local.shift += 4;
    if (root < rem) {
      rem -= root + 1;
      root += 2;
      local.add += 2;
    }
    local.cmp += 1;
    local.branch += 1;
  }
  if (ops != nullptr) *ops += local;
  return static_cast<std::uint32_t>(root >> 1);
}

std::vector<std::int32_t> rms_combine(std::span<const std::vector<std::int32_t>> leads,
                                      OpCount* ops) {
  if (leads.empty()) return {};
  const std::size_t n = leads[0].size();
  for ([[maybe_unused]] const auto& lead : leads) assert(lead.size() == n);

  OpCount local;
  std::vector<std::int32_t> out(n);
  const auto num_leads = static_cast<std::uint64_t>(leads.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t acc = 0;
    for (const auto& lead : leads) {
      const auto v = static_cast<std::int64_t>(lead[i]);
      acc += static_cast<std::uint64_t>(v * v);
      local.mul += 1;
      local.add += 1;
      local.load += 1;
    }
    out[i] = static_cast<std::int32_t>(isqrt64(acc / num_leads, &local));
    local.div += 1;
    local.store += 1;
  }
  if (ops != nullptr) *ops += local;
  return out;
}

std::vector<double> rms_combine_ref(std::span<const std::vector<double>> leads) {
  if (leads.empty()) return {};
  const std::size_t n = leads[0].size();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (const auto& lead : leads) acc += lead[i] * lead[i];
    out[i] = std::sqrt(acc / static_cast<double>(leads.size()));
  }
  return out;
}

}  // namespace wbsn::dsp
