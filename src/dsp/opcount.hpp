// Operation-count instrumentation for node-side kernels.
//
// The paper's energy claims rest on pricing each processing stage on a
// MHz-class 16-bit MCU.  Rather than hand-estimating workloads, every
// node-side kernel in this library accumulates an OpCount of the abstract
// operations it performs; the energy model (energy/mcu.hpp) then converts
// counts into cycles and joules for a given core.  Counting is explicit (no
// hidden globals) so callers can attribute work per stage.
#pragma once

#include <cstdint>

namespace wbsn::dsp {

/// Abstract operation mix of a kernel execution.
struct OpCount {
  std::uint64_t add = 0;      ///< Additions/subtractions (also abs, neg).
  std::uint64_t mul = 0;      ///< Multiplications.
  std::uint64_t div = 0;      ///< Divisions / modulo.
  std::uint64_t cmp = 0;      ///< Comparisons / min / max selections.
  std::uint64_t shift = 0;    ///< Bit shifts (cheap scaling on MCUs).
  std::uint64_t load = 0;     ///< Data-memory reads.
  std::uint64_t store = 0;    ///< Data-memory writes.
  std::uint64_t branch = 0;   ///< Conditional branches taken or not.

  OpCount& operator+=(const OpCount& other) {
    add += other.add;
    mul += other.mul;
    div += other.div;
    cmp += other.cmp;
    shift += other.shift;
    load += other.load;
    store += other.store;
    branch += other.branch;
    return *this;
  }

  friend OpCount operator+(OpCount a, const OpCount& b) { return a += b; }

  std::uint64_t total() const {
    return add + mul + div + cmp + shift + load + store + branch;
  }

  bool operator==(const OpCount&) const = default;
};

}  // namespace wbsn::dsp
