// Piecewise-linear approximation of the Gaussian membership function.
//
// Heartbeat classification evaluates many Gaussian memberships per beat
// (Section III-D).  Section IV-A reports that a four-segment linearization
// achieves close-to-optimal classification while removing every exp() from
// the node.  This module builds K-segment approximations of
// g(z) = exp(-z^2 / 2) on z in [0, zmax] (symmetric in z) and exposes both
// a double-precision evaluator (for accuracy studies) and a Q15 evaluator
// whose breakpoints/slopes are precomputed integers (the node's version).
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::dsp {

/// K-segment chord approximation of exp(-z^2/2) for |z| <= zmax; zero beyond.
class PiecewiseGauss {
 public:
  /// Breakpoints are spaced uniformly in z; each segment is the chord of
  /// the true curve, so the approximation is exact at breakpoints.
  explicit PiecewiseGauss(int segments, double zmax = 4.0);

  /// Approximate exp(-z^2/2).
  double value(double z) const;

  /// Exact counterpart (for error studies).
  static double exact(double z);

  /// Maximum absolute error over a dense sweep of [0, zmax].
  double max_abs_error(int sweep_points = 4096) const;

  int segments() const { return static_cast<int>(slopes_.size()); }
  double zmax() const { return zmax_; }

 private:
  double zmax_;
  double step_;
  std::vector<double> values_;  ///< g at breakpoints (segments + 1 entries).
  std::vector<double> slopes_;  ///< Chord slope per segment.
};

/// Node-side Q15 version: z is supplied in Q12 (4096 = z of 1.0) so the
/// usable range |z| <= 8 fits in int16; the result is Q15 in [0, 32767].
class PiecewiseGaussQ15 {
 public:
  explicit PiecewiseGaussQ15(int segments, double zmax = 4.0);

  /// Approximate exp(-z^2/2) for z given in Q12; result in Q15.
  std::int16_t value(std::int16_t z_q12, OpCount* ops = nullptr) const;

  int segments() const { return static_cast<int>(slopes_q15_.size()); }

 private:
  std::int16_t zmax_q12_;
  std::int16_t step_q12_;
  std::vector<std::int16_t> values_q15_;
  std::vector<std::int16_t> slopes_q15_;  ///< Per-Q12-unit slope, Q15 scaled.
};

}  // namespace wbsn::dsp
