#include "dsp/gauss_approx.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::dsp {

PiecewiseGauss::PiecewiseGauss(int segments, double zmax)
    : zmax_(zmax), step_(zmax / segments) {
  values_.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    values_.push_back(exact(static_cast<double>(i) * step_));
  }
  slopes_.reserve(static_cast<std::size_t>(segments));
  for (int i = 0; i < segments; ++i) {
    slopes_.push_back(
        (values_[static_cast<std::size_t>(i) + 1] - values_[static_cast<std::size_t>(i)]) / step_);
  }
}

double PiecewiseGauss::value(double z) const {
  z = std::abs(z);
  if (z >= zmax_) return 0.0;
  const auto seg = static_cast<std::size_t>(z / step_);
  const double z0 = static_cast<double>(seg) * step_;
  return values_[seg] + slopes_[seg] * (z - z0);
}

double PiecewiseGauss::exact(double z) { return std::exp(-0.5 * z * z); }

double PiecewiseGauss::max_abs_error(int sweep_points) const {
  double worst = 0.0;
  for (int i = 0; i < sweep_points; ++i) {
    const double z = zmax_ * static_cast<double>(i) / (sweep_points - 1);
    worst = std::max(worst, std::abs(value(z) - exact(z)));
  }
  return worst;
}

PiecewiseGaussQ15::PiecewiseGaussQ15(int segments, double zmax) {
  const double step = zmax / segments;
  zmax_q12_ = static_cast<std::int16_t>(std::lround(zmax * 4096.0));
  step_q12_ = static_cast<std::int16_t>(std::lround(step * 4096.0));
  values_q15_.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    const double g = PiecewiseGauss::exact(static_cast<double>(i) * step);
    values_q15_.push_back(static_cast<std::int16_t>(std::lround(g * 32767.0)));
  }
  slopes_q15_.reserve(static_cast<std::size_t>(segments));
  for (int i = 0; i < segments; ++i) {
    // Slope in Q15-result units per Q12-z unit, stored in Q8 so the worst
    // case (~5 result-LSBs per z-LSB near z = 1) stays inside int16; the
    // runtime multiply is then a single shift-by-8.
    const double slope =
        static_cast<double>(values_q15_[static_cast<std::size_t>(i) + 1] -
                            values_q15_[static_cast<std::size_t>(i)]) /
        static_cast<double>(step_q12_);
    slopes_q15_.push_back(static_cast<std::int16_t>(std::lround(slope * 256.0)));
  }
}

std::int16_t PiecewiseGaussQ15::value(std::int16_t z_q12, OpCount* ops) const {
  OpCount local;
  std::int32_t z = z_q12 < 0 ? -static_cast<std::int32_t>(z_q12) : z_q12;
  local.cmp += 1;
  local.add += 1;
  if (z >= zmax_q12_) {
    local.cmp += 1;
    if (ops != nullptr) *ops += local;
    return 0;
  }
  // Rounded step sizing can push z at the very top of the range one past
  // the last segment; clamp rather than read out of bounds.
  const auto seg = std::min(static_cast<std::size_t>(z / step_q12_), slopes_q15_.size() - 1);
  const std::int32_t z0 = static_cast<std::int32_t>(seg) * step_q12_;
  const std::int32_t dz = z - z0;
  // value + slope * dz with the slope in Q8: one multiply, one shift.
  const std::int32_t out =
      values_q15_[seg] + ((static_cast<std::int32_t>(slopes_q15_[seg]) * dz) >> 8);
  local.div += 1;
  local.mul += 2;
  local.add += 2;
  local.shift += 1;
  local.load += 2;
  if (ops != nullptr) *ops += local;
  return static_cast<std::int16_t>(std::clamp(out, 0, 32767));
}

}  // namespace wbsn::dsp
