#include "dsp/ensemble.hpp"

#include <algorithm>

namespace wbsn::dsp {
namespace {

/// Copies the window around `trigger` if fully inside the signal.
bool extract_window(std::span<const double> signal, std::int64_t trigger,
                    const EnsembleWindow& w, std::vector<double>& out) {
  const std::int64_t begin = trigger - static_cast<std::int64_t>(w.pre);
  const std::int64_t end = trigger + static_cast<std::int64_t>(w.post);
  if (begin < 0 || end > static_cast<std::int64_t>(signal.size())) return false;
  out.assign(signal.begin() + begin, signal.begin() + end);
  return true;
}

}  // namespace

EnsembleAverager::EnsembleAverager(EnsembleWindow window)
    : window_(window), sum_(window.length(), 0.0) {}

void EnsembleAverager::accumulate(std::span<const double> signal, std::int64_t trigger) {
  std::vector<double> win;
  if (!extract_window(signal, trigger, window_, win)) return;
  for (std::size_t i = 0; i < win.size(); ++i) sum_[i] += win[i];
  ++count_;
}

std::vector<double> EnsembleAverager::average() const {
  if (count_ == 0) return {};
  std::vector<double> avg(sum_.size());
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    avg[i] = sum_[i] / static_cast<double>(count_);
  }
  return avg;
}

AdaptiveImpulseCorrelatedFilter::AdaptiveImpulseCorrelatedFilter(EnsembleWindow window,
                                                                 double mu)
    : window_(window), mu_(mu), estimate_(window.length(), 0.0) {}

std::vector<double> AdaptiveImpulseCorrelatedFilter::process_beat(
    std::span<const double> signal, std::int64_t trigger) {
  std::vector<double> win;
  if (!extract_window(signal, trigger, window_, win)) return {};
  if (!primed_) {
    // First beat initializes the estimate directly; otherwise convergence
    // from zero would distort the first 1/mu beats.
    estimate_ = win;
    primed_ = true;
    return estimate_;
  }
  for (std::size_t i = 0; i < win.size(); ++i) {
    estimate_[i] += mu_ * (win[i] - estimate_[i]);
  }
  return estimate_;
}

double ensemble_residual_power(std::span<const double> signal,
                               std::span<const std::int64_t> triggers,
                               const EnsembleWindow& window) {
  EnsembleAverager averager(window);
  for (std::int64_t t : triggers) averager.accumulate(signal, t);
  const auto tmpl = averager.average();
  if (tmpl.empty()) return 0.0;

  double acc = 0.0;
  std::size_t n = 0;
  std::vector<double> win;
  for (std::int64_t t : triggers) {
    if (!extract_window(signal, t, window, win)) continue;
    for (std::size_t i = 0; i < win.size(); ++i) {
      const double e = win[i] - tmpl[i];
      acc += e * e;
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

}  // namespace wbsn::dsp
