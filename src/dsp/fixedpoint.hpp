// Q15 fixed-point helpers for node-side arithmetic.
//
// The target MCU class (16-bit, integer-only — Section IV-A) represents
// fractional quantities in Q15: value = raw / 2^15.  These helpers provide
// saturating conversion and rounded multiply, the two places where naive
// integer code silently loses correctness.
#pragma once

#include <algorithm>
#include <cstdint>

namespace wbsn::dsp {

inline constexpr std::int32_t kQ15One = 1 << 15;

/// Converts a double in [-1, 1) to Q15 with saturation.
constexpr std::int16_t to_q15(double v) {
  const double scaled = v * kQ15One;
  if (scaled >= 32767.0) return 32767;
  if (scaled <= -32768.0) return -32768;
  // Round half away from zero, branch-free enough for constexpr use.
  return static_cast<std::int16_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
}

/// Q15 value back to double.
constexpr double from_q15(std::int16_t v) {
  return static_cast<double>(v) / kQ15One;
}

/// Rounded Q15 multiply: (a * b + 2^14) >> 15, saturated to int16 range.
constexpr std::int16_t q15_mul(std::int16_t a, std::int16_t b) {
  const std::int32_t p = (static_cast<std::int32_t>(a) * b + (1 << 14)) >> 15;
  return static_cast<std::int16_t>(std::clamp(p, -32768, 32767));
}

/// Saturating 16-bit addition.
constexpr std::int16_t sat_add16(std::int16_t a, std::int16_t b) {
  const std::int32_t s = static_cast<std::int32_t>(a) + b;
  return static_cast<std::int16_t>(std::clamp(s, -32768, 32767));
}

/// Saturating 16-bit subtraction.
constexpr std::int16_t sat_sub16(std::int16_t a, std::int16_t b) {
  const std::int32_t s = static_cast<std::int32_t>(a) - b;
  return static_cast<std::int16_t>(std::clamp(s, -32768, 32767));
}

}  // namespace wbsn::dsp
