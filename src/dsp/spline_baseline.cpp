#include "dsp/spline_baseline.hpp"

#include <algorithm>
#include <cmath>

namespace wbsn::dsp {

void natural_cubic_spline_eval(std::span<const double> xs, std::span<const double> ys,
                               std::span<double> out) {
  const std::size_t n = xs.size();
  if (n == 0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  if (n == 1) {
    std::fill(out.begin(), out.end(), ys[0]);
    return;
  }

  // Solve the tridiagonal system for second derivatives (natural BCs).
  std::vector<double> h(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) h[i] = xs[i + 1] - xs[i];
  std::vector<double> m(n, 0.0);  // Second derivatives.
  if (n > 2) {
    std::vector<double> diag(n - 2);
    std::vector<double> rhs(n - 2);
    for (std::size_t i = 1; i + 1 < n; ++i) {
      diag[i - 1] = 2.0 * (h[i - 1] + h[i]);
      rhs[i - 1] = 6.0 * ((ys[i + 1] - ys[i]) / h[i] - (ys[i] - ys[i - 1]) / h[i - 1]);
    }
    // Thomas algorithm; off-diagonals are h[i].
    for (std::size_t i = 1; i < diag.size(); ++i) {
      const double w = h[i] / diag[i - 1];
      diag[i] -= w * h[i];
      rhs[i] -= w * rhs[i - 1];
    }
    for (std::size_t i = diag.size(); i-- > 0;) {
      const double upper = (i + 1 < diag.size()) ? h[i + 1] * m[i + 2] : 0.0;
      m[i + 1] = (rhs[i] - upper) / diag[i];
    }
  }

  // Evaluate segment-wise; clamp to endpoint values outside the knots.
  std::size_t seg = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double t = static_cast<double>(i);
    if (t <= xs[0]) {
      out[i] = ys[0];
      continue;
    }
    if (t >= xs[n - 1]) {
      out[i] = ys[n - 1];
      continue;
    }
    while (seg + 2 < n && xs[seg + 1] < t) ++seg;
    const double dx = t - xs[seg];
    const double hh = h[seg];
    const double a = (xs[seg + 1] - t) / hh;
    const double b = dx / hh;
    out[i] = a * ys[seg] + b * ys[seg + 1] +
             ((a * a * a - a) * m[seg] + (b * b * b - b) * m[seg + 1]) * hh * hh / 6.0;
  }
}

SplineBaselineResult estimate_spline_baseline(std::span<const double> x,
                                              std::span<const std::int64_t> r_peaks,
                                              const SplineBaselineConfig& cfg) {
  SplineBaselineResult result;
  result.baseline.assign(x.size(), 0.0);
  if (x.empty() || r_peaks.empty()) return result;

  const auto offset = static_cast<std::int64_t>(std::llround(cfg.knot_offset_s * cfg.fs));
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::int64_t r : r_peaks) {
    const std::int64_t center = r + offset;
    const std::int64_t lo = center - static_cast<std::int64_t>(cfg.knot_halfwidth);
    const std::int64_t hi = center + static_cast<std::int64_t>(cfg.knot_halfwidth);
    if (lo < 0 || hi >= static_cast<std::int64_t>(x.size())) continue;
    double acc = 0.0;
    for (std::int64_t s = lo; s <= hi; ++s) acc += x[static_cast<std::size_t>(s)];
    const auto count = static_cast<double>(hi - lo + 1);
    xs.push_back(static_cast<double>(center));
    ys.push_back(acc / count);
    result.knots.push_back(center);
    result.ops.add += static_cast<std::uint64_t>(count);
    result.ops.load += static_cast<std::uint64_t>(count);
    result.ops.div += 1;
  }

  natural_cubic_spline_eval(xs, ys, result.baseline);
  // Spline solve + evaluation costs, attributed coarsely: the tridiagonal
  // solve is O(knots), evaluation O(n) with ~6 multiplies per sample.
  result.ops.mul += 6 * x.size() + 10 * xs.size();
  result.ops.add += 6 * x.size() + 10 * xs.size();
  result.ops.div += xs.size() * 3;
  result.ops.store += x.size();
  return result;
}

std::vector<double> spline_baseline_correct(std::span<const double> x,
                                            std::span<const std::int64_t> r_peaks,
                                            const SplineBaselineConfig& cfg) {
  const auto est = estimate_spline_baseline(x, r_peaks, cfg);
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - est.baseline[i];
  return out;
}

}  // namespace wbsn::dsp
