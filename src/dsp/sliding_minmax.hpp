// O(1)-amortized sliding-window minimum / maximum.
//
// This is the algorithmic trick Section IV-A of the paper calls out for
// morphological filtering on resource-constrained monitors: with a flat
// structuring element, erosion and dilation reduce to windowed min/max,
// and the monotonic-wedge algorithm (Lemire) computes them with fewer than
// three comparisons per sample and a tiny ring buffer — integer-only and
// constant-memory, ideal for MHz-class MCUs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::dsp {

/// Streaming sliding-window extrema over the last `window` pushed samples.
class SlidingExtrema {
 public:
  explicit SlidingExtrema(std::size_t window);

  /// Pushes the next sample; O(1) amortized.
  void push(std::int32_t value);

  /// Current window minimum / maximum (over min(pushed, window) samples).
  std::int32_t min() const;
  std::int32_t max() const;

  std::size_t window() const { return window_; }
  std::uint64_t samples_pushed() const { return count_; }

  /// Operations performed so far (for energy accounting).
  const OpCount& ops() const { return ops_; }

 private:
  struct Entry {
    std::int64_t index;
    std::int32_t value;
  };
  void evict(std::vector<Entry>& wedge, std::int64_t oldest_allowed);

  std::size_t window_;
  std::int64_t count_ = 0;
  // Monotonic wedges stored as index/value pairs; head_* are pop positions
  // so eviction is O(1) without deque allocation churn.
  std::vector<Entry> min_wedge_;
  std::vector<Entry> max_wedge_;
  std::size_t min_head_ = 0;
  std::size_t max_head_ = 0;
  OpCount ops_;
};

/// Batch centered sliding minimum: out[i] = min(x[i-half .. i+half]),
/// window = 2*half+1, edges clamped to the valid range.
std::vector<std::int32_t> sliding_min(std::span<const std::int32_t> x, std::size_t window,
                                      OpCount* ops = nullptr);

/// Batch centered sliding maximum (same conventions as sliding_min).
std::vector<std::int32_t> sliding_max(std::span<const std::int32_t> x, std::size_t window,
                                      OpCount* ops = nullptr);

}  // namespace wbsn::dsp
