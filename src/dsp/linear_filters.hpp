// Classical linear filters used as comparison baselines.
//
// The paper's node relies on morphological and wavelet processing, but the
// evaluation (and several ablations in this repository) compares against
// conventional linear conditioning: an IIR notch for mains pickup, biquad
// high/low-pass sections for band limiting, and an integer moving average.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"

namespace wbsn::dsp {

/// Second-order IIR section, direct form II transposed.
class Biquad {
 public:
  /// Coefficients normalized so a0 = 1.
  Biquad(double b0, double b1, double b2, double a1, double a2);

  double process(double x);
  void reset();
  std::vector<double> filter(std::span<const double> x);

  /// Notch at `f0` with quality factor `q` (RBJ cookbook).
  static Biquad notch(double f0_hz, double q, double fs);
  /// Butterworth-style low-pass at `fc`.
  static Biquad lowpass(double fc_hz, double q, double fs);
  /// Butterworth-style high-pass at `fc`.
  static Biquad highpass(double fc_hz, double q, double fs);

 private:
  std::array<double, 5> coeff_;  // b0 b1 b2 a1 a2.
  double s1_ = 0.0;
  double s2_ = 0.0;
};

/// Band-pass by cascading a high-pass and a low-pass biquad.
class BandpassFilter {
 public:
  BandpassFilter(double lo_hz, double hi_hz, double fs);
  double process(double x);
  std::vector<double> filter(std::span<const double> x);

 private:
  Biquad hp_;
  Biquad lp_;
};

/// Integer boxcar average with power-of-two length (shift instead of
/// divide) — the cheapest smoother an MCU can run.
std::vector<std::int32_t> moving_average_pow2(std::span<const std::int32_t> x,
                                              unsigned log2_len, OpCount* ops = nullptr);

}  // namespace wbsn::dsp
