// Gaussian-membership fuzzy classifier with an MCU-friendly linearized
// variant.
//
// The classification back-end of Sections III-D and IV-A: each class is
// described by one Gaussian membership function per feature
// (g(z) = exp(-z^2/2), z = (x - mu)/sigma); a beat's membership in a class
// combines the per-feature memberships with a t-norm, and the class with
// the highest membership wins.  Training is simple per-class moment
// estimation, which is what makes the scheme portable to the node: the
// model is just a (mu, sigma) table.  The linearized evaluator replaces
// exp() with the four-segment chord approximation of dsp/gauss_approx.hpp
// and runs entirely in integer arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/gauss_approx.hpp"
#include "dsp/opcount.hpp"

namespace wbsn::cls {

/// Feature-combination rule.
enum class TNorm {
  kProduct,  ///< Product of memberships (probabilistic AND).
  kMinimum,  ///< Minimum membership (Goedel AND; underflow-free).
};

/// One labeled training/evaluation sample.
struct Sample {
  std::vector<double> features;
  int label = 0;
};

struct FuzzyConfig {
  TNorm tnorm = TNorm::kProduct;
  double sigma_floor = 1e-3;   ///< Lower bound on learned sigmas.
  int linear_segments = 4;     ///< Segments for the linearized evaluator.
};

class FuzzyClassifier {
 public:
  explicit FuzzyClassifier(FuzzyConfig cfg = {});

  /// Estimates per-class (mu, sigma) tables from labeled samples.
  void train(std::span<const Sample> samples, int num_classes);

  /// Exact evaluation (double, exp()).
  int classify(std::span<const double> features) const;

  /// Per-class membership scores, exact.
  std::vector<double> memberships(std::span<const double> features) const;

  /// Linearized evaluation: Gaussian replaced by the K-segment chord
  /// (Section IV-A's "close-to-optimal" node implementation).  Reports the
  /// abstract operation mix when `ops` is given.
  int classify_linearized(std::span<const double> features,
                          dsp::OpCount* ops = nullptr) const;

  int num_classes() const { return static_cast<int>(mu_.size()); }
  int num_features() const {
    return mu_.empty() ? 0 : static_cast<int>(mu_[0].size());
  }

  /// Learned model access (for inspection / serialization).
  double mu(int cls, int feature) const { return mu_[cls][feature]; }
  double sigma(int cls, int feature) const { return sigma_[cls][feature]; }

 private:
  double membership_of(std::span<const double> features, int cls, bool linearized,
                       dsp::OpCount* ops) const;

  FuzzyConfig cfg_;
  dsp::PiecewiseGauss approx_;
  std::vector<std::vector<double>> mu_;     ///< [class][feature].
  std::vector<std::vector<double>> sigma_;  ///< [class][feature].
};

}  // namespace wbsn::cls
