#include "cls/random_projection.hpp"

#include <bit>
#include <cassert>

namespace wbsn::cls {

PackedTernaryMatrix::PackedTernaryMatrix(std::size_t k, std::size_t d)
    : rows_(k), cols_(d), words_per_row_((d + 31) / 32), words_(rows_ * words_per_row_, 0) {}

void PackedTernaryMatrix::set_entry(std::size_t r, std::size_t c, int value) {
  // Encoding: 00 -> 0, 01 -> +1, 11 -> -1 (bit0 = non-zero, bit1 = sign).
  const std::size_t word = r * words_per_row_ + c / 32;
  const unsigned shift = 2 * (c % 32);
  std::uint64_t bits = 0;
  if (value > 0) bits = 0b01;
  if (value < 0) bits = 0b11;
  words_[word] &= ~(std::uint64_t{0b11} << shift);
  words_[word] |= bits << shift;
}

int PackedTernaryMatrix::entry(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  const std::size_t word = r * words_per_row_ + c / 32;
  const unsigned shift = 2 * (c % 32);
  const auto bits = (words_[word] >> shift) & 0b11;
  if (bits == 0b01) return 1;
  if (bits == 0b11) return -1;
  return 0;
}

PackedTernaryMatrix PackedTernaryMatrix::make_achlioptas(std::size_t k, std::size_t d,
                                                         double s, sig::Rng& rng) {
  assert(s >= 1.0);
  PackedTernaryMatrix m(k, d);
  const double p_nonzero = 1.0 / s;
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      if (!rng.bernoulli(p_nonzero)) continue;
      m.set_entry(r, c, rng.bernoulli(0.5) ? 1 : -1);
    }
  }
  return m;
}

PackedTernaryMatrix PackedTernaryMatrix::make_bernoulli(std::size_t k, std::size_t d,
                                                        sig::Rng& rng) {
  return make_achlioptas(k, d, 1.0, rng);
}

std::vector<std::int32_t> PackedTernaryMatrix::project(std::span<const std::int32_t> x,
                                                       dsp::OpCount* ops) const {
  assert(x.size() == cols_);
  dsp::OpCount local;
  std::vector<std::int32_t> y(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::int64_t acc = 0;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = words_[r * words_per_row_ + w];
      local.load += 1;
      if (bits == 0) continue;  // Whole word of zeros skipped (sparsity win).
      const std::size_t base = w * 32;
      while (bits != 0) {
        const auto lane = static_cast<unsigned>(std::countr_zero(bits) / 2);
        const auto entry_bits = (bits >> (2 * lane)) & 0b11;
        const std::size_t c = base + lane;
        if (c < cols_) {
          if (entry_bits == 0b01) {
            acc += x[c];
          } else {
            acc -= x[c];
          }
          local.add += 1;
          local.load += 1;
        }
        bits &= ~(std::uint64_t{0b11} << (2 * lane));
      }
    }
    y[r] = static_cast<std::int32_t>(acc);
    local.store += 1;
  }
  if (ops != nullptr) *ops += local;
  return y;
}

double PackedTernaryMatrix::density() const {
  std::size_t non_zero = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) non_zero += entry(r, c) != 0;
  }
  return static_cast<double>(non_zero) / static_cast<double>(rows_ * cols_);
}

}  // namespace wbsn::cls
