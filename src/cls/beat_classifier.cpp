#include "cls/beat_classifier.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wbsn::cls {

BeatLabel to_beat_label(sig::BeatClass c) {
  switch (c) {
    case sig::BeatClass::kPvc: return BeatLabel::kVentricular;
    case sig::BeatClass::kApc: return BeatLabel::kSupraventricular;
    case sig::BeatClass::kNormal:
    case sig::BeatClass::kAfib: break;
  }
  return BeatLabel::kNormal;
}

namespace {

sig::Rng make_projection_rng(std::uint64_t seed) { return sig::Rng(seed); }

}  // namespace

BeatClassifier::BeatClassifier(BeatClassifierConfig cfg)
    : cfg_(cfg),
      projection_([&] {
        sig::Rng rng = make_projection_rng(cfg.projection_seed);
        return PackedTernaryMatrix::make_achlioptas(cfg.projected_dims, cfg.window_samples(),
                                                    cfg.achlioptas_s, rng);
      }()),
      fuzzy_(cfg.fuzzy) {}

std::vector<double> BeatClassifier::extract_features(std::span<const std::int32_t> x,
                                                     std::int64_t r_peak, double rr_prev_s,
                                                     double rr_next_s, double rr_mean_s,
                                                     dsp::OpCount* ops) const {
  const auto pre = static_cast<std::int64_t>(cfg_.window_pre_s * cfg_.fs);
  const auto len = static_cast<std::int64_t>(cfg_.window_samples());
  const std::int64_t begin = r_peak - pre;
  if (begin < 0 || begin + len > static_cast<std::int64_t>(x.size())) return {};

  const auto projected = projection_.project(
      x.subspan(static_cast<std::size_t>(begin), static_cast<std::size_t>(len)), ops);

  std::vector<double> features;
  features.reserve(projected.size() + 2);
  for (std::int32_t v : projected) {
    features.push_back(static_cast<double>(v) * feature_scale_);
  }
  // Rhythm features: prematurity and compensation, dimensionless.  On the
  // node these are Q12 ratios computed with one divide each.
  const double mean = std::max(rr_mean_s, 0.3);
  features.push_back(rr_prev_s / mean);
  features.push_back(rr_next_s / mean);
  if (ops != nullptr) {
    ops->div += 2;
    ops->mul += static_cast<std::uint64_t>(projected.size());
    ops->store += static_cast<std::uint64_t>(features.size());
  }
  return features;
}

void BeatClassifier::train(std::span<const TrainingRecord> records) {
  // First pass: scale estimation so projected features land in O(1) range
  // (keeps the fuzzy sigmas and the Q12 z-values well conditioned).
  double max_abs = 1.0;
  feature_scale_ = 1.0;
  std::vector<Sample> samples;
  for (const auto& record : records) {
    const auto rr_of = [&](std::size_t i, std::size_t j) {
      return static_cast<double>(record.beats[j].r_peak - record.beats[i].r_peak) / cfg_.fs;
    };
    double rr_mean = 0.8;
    for (std::size_t b = 1; b + 1 < record.beats.size(); ++b) {
      const double rr_prev = rr_of(b - 1, b);
      const double rr_next = rr_of(b, b + 1);
      rr_mean += 0.125 * (rr_prev - rr_mean);
      auto features = extract_features(record.signal, record.beats[b].r_peak, rr_prev,
                                       rr_next, rr_mean);
      if (features.empty()) continue;
      for (std::size_t f = 0; f + 2 < features.size(); ++f) {
        max_abs = std::max(max_abs, std::abs(features[f]));
      }
      samples.push_back(
          {std::move(features), static_cast<int>(to_beat_label(record.beats[b].label))});
    }
  }
  // Rescale the morphology features in the collected samples.
  feature_scale_ = 1.0 / max_abs;
  for (auto& s : samples) {
    for (std::size_t f = 0; f + 2 < s.features.size(); ++f) s.features[f] *= feature_scale_;
  }
  fuzzy_.train(samples, 3);
}

BeatLabel BeatClassifier::classify(std::span<const std::int32_t> x, std::int64_t r_peak,
                                   double rr_prev_s, double rr_next_s,
                                   double rr_mean_s) const {
  const auto features = extract_features(x, r_peak, rr_prev_s, rr_next_s, rr_mean_s);
  if (features.empty()) return BeatLabel::kNormal;
  return static_cast<BeatLabel>(fuzzy_.classify(features));
}

BeatLabel BeatClassifier::classify_linearized(std::span<const std::int32_t> x,
                                              std::int64_t r_peak, double rr_prev_s,
                                              double rr_next_s, double rr_mean_s,
                                              dsp::OpCount* ops) const {
  const auto features = extract_features(x, r_peak, rr_prev_s, rr_next_s, rr_mean_s, ops);
  if (features.empty()) return BeatLabel::kNormal;
  return static_cast<BeatLabel>(fuzzy_.classify_linearized(features, ops));
}

double ClassificationReport::accuracy() const {
  int correct = 0;
  int total = 0;
  for (std::size_t t = 0; t < confusion.size(); ++t) {
    for (std::size_t p = 0; p < confusion[t].size(); ++p) {
      total += confusion[t][p];
      if (t == p) correct += confusion[t][p];
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

double ClassificationReport::sensitivity(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  int tp = confusion[c][c];
  int total = 0;
  for (int v : confusion[c]) total += v;
  return total > 0 ? static_cast<double>(tp) / total : 1.0;
}

double ClassificationReport::specificity(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  int tn = 0;
  int negatives = 0;
  for (std::size_t t = 0; t < confusion.size(); ++t) {
    if (t == c) continue;
    for (std::size_t p = 0; p < confusion[t].size(); ++p) {
      negatives += confusion[t][p];
      if (p != c) tn += confusion[t][p];
    }
  }
  return negatives > 0 ? static_cast<double>(tn) / negatives : 1.0;
}

}  // namespace wbsn::cls
