// Database-friendly random projections (Achlioptas, JCSS 2003).
//
// The feature-extraction front of the paper's embedded heartbeat classifier
// (Braojos et al., DATE 2013): a k x d matrix with i.i.d. entries
// {+1 w.p. 1/2s, 0 w.p. 1-1/s, -1 w.p. 1/2s} preserves pairwise distances
// (Johnson-Lindenstrauss) while every matrix-vector product needs only
// additions and subtractions — no multiplier.  Section IV-A's memory
// optimization is implemented literally: entries are packed two bits each,
// so a 16x180 matrix occupies 720 bytes of ROM instead of 11.5 kB of
// doubles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/opcount.hpp"
#include "sig/rng.hpp"

namespace wbsn::cls {

/// Ternary matrix with 2-bit packed storage.
class PackedTernaryMatrix {
 public:
  /// Builds a k x d Achlioptas matrix with sparsity parameter `s`
  /// (expected non-zero fraction = 1/s; s = 3 is the classic choice,
  /// larger s gives sparser matrices and fewer operations).
  static PackedTernaryMatrix make_achlioptas(std::size_t k, std::size_t d, double s,
                                             sig::Rng& rng);

  /// Dense Bernoulli +/-1 matrix (s = 1).
  static PackedTernaryMatrix make_bernoulli(std::size_t k, std::size_t d, sig::Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Entry in {-1, 0, +1}.
  int entry(std::size_t r, std::size_t c) const;

  /// y = M x using integer adds/subs only.
  std::vector<std::int32_t> project(std::span<const std::int32_t> x,
                                    dsp::OpCount* ops = nullptr) const;

  /// Storage footprint in bytes (the Section IV-A claim: 2 bits/entry).
  std::size_t storage_bytes() const { return words_.size() * sizeof(std::uint64_t); }

  /// Fraction of non-zero entries.
  double density() const;

 private:
  PackedTernaryMatrix(std::size_t k, std::size_t d);
  void set_entry(std::size_t r, std::size_t c, int value);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wbsn::cls
