#include "cls/af_detect.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wbsn::cls {

AfFeatures compute_af_features(std::span<const sig::BeatAnnotation> beats, double fs,
                               int entropy_bins, dsp::OpCount* ops) {
  AfFeatures features;
  if (beats.size() < 3) return features;

  // RR series and successive differences.
  std::vector<double> rr;
  rr.reserve(beats.size() - 1);
  for (std::size_t i = 1; i < beats.size(); ++i) {
    rr.push_back(static_cast<double>(beats[i].r_peak - beats[i - 1].r_peak) / fs);
  }
  double mean_rr = 0.0;
  for (double v : rr) mean_rr += v;
  mean_rr /= static_cast<double>(rr.size());

  double sum_sq = 0.0;
  std::vector<double> rel_diff;
  rel_diff.reserve(rr.size() - 1);
  for (std::size_t i = 1; i < rr.size(); ++i) {
    const double d = rr[i] - rr[i - 1];
    sum_sq += d * d;
    rel_diff.push_back(std::abs(d) / mean_rr);
  }
  features.normalized_rmssd =
      std::sqrt(sum_sq / static_cast<double>(rr.size() - 1)) / mean_rr;

  // Shannon entropy of the relative |dRR| histogram over [0, 0.5].
  std::vector<int> hist(static_cast<std::size_t>(entropy_bins), 0);
  for (double d : rel_diff) {
    const auto bin = std::min<std::size_t>(
        static_cast<std::size_t>(entropy_bins) - 1,
        static_cast<std::size_t>(d / 0.5 * entropy_bins));
    ++hist[bin];
  }
  double entropy = 0.0;
  for (int count : hist) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(rel_diff.size());
    entropy -= p * std::log2(p);
  }
  features.rr_entropy = entropy;

  int with_p = 0;
  for (const auto& beat : beats) with_p += beat.p.valid();
  features.p_wave_rate = static_cast<double>(with_p) / static_cast<double>(beats.size());

  if (ops != nullptr) {
    // Node-side arithmetic: the RR statistics are adds/multiplies over the
    // window; the entropy uses a small log2 lookup table per non-empty bin.
    const auto n = static_cast<std::uint64_t>(beats.size());
    ops->add += 6 * n;
    ops->mul += 2 * n;
    ops->div += 4;
    ops->load += 4 * n;
    ops->store += n / 4 + 4;
    ops->cmp += n;
  }
  return features;
}

AfDetector::AfDetector(AfDetectorConfig cfg) : cfg_(cfg), fuzzy_(cfg.fuzzy) {}

namespace {

bool majority_af(std::span<const sig::BeatAnnotation> beats) {
  std::size_t af = 0;
  for (const auto& b : beats) af += b.label == sig::BeatClass::kAfib;
  return 2 * af > beats.size();
}

}  // namespace

void AfDetector::train(std::span<const std::vector<sig::BeatAnnotation>> records,
                       double fs) {
  std::vector<Sample> samples;
  for (const auto& beats : records) {
    for (std::size_t start = 0;
         start + static_cast<std::size_t>(cfg_.window_beats) <= beats.size();
         start += static_cast<std::size_t>(cfg_.window_stride)) {
      const auto window = std::span<const sig::BeatAnnotation>(
          beats.data() + start, static_cast<std::size_t>(cfg_.window_beats));
      const auto features = compute_af_features(window, fs, cfg_.entropy_bins);
      samples.push_back({features.as_vector(), majority_af(window) ? 1 : 0});
    }
  }
  assert(!samples.empty());
  fuzzy_.train(samples, 2);
}

std::vector<AfWindow> AfDetector::detect(std::span<const sig::BeatAnnotation> beats,
                                         double fs, dsp::OpCount* ops) const {
  std::vector<AfWindow> windows;
  for (std::size_t start = 0;
       start + static_cast<std::size_t>(cfg_.window_beats) <= beats.size();
       start += static_cast<std::size_t>(cfg_.window_stride)) {
    AfWindow w;
    w.first_beat = start;
    w.last_beat = start + static_cast<std::size_t>(cfg_.window_beats);
    const auto window = beats.subspan(start, static_cast<std::size_t>(cfg_.window_beats));
    w.features = compute_af_features(window, fs, cfg_.entropy_bins, ops);
    const auto vec = w.features.as_vector();
    w.decided_af = (ops != nullptr ? fuzzy_.classify_linearized(vec, ops)
                                   : fuzzy_.classify(vec)) == 1;
    w.truth_af = majority_af(window);
    windows.push_back(w);
  }
  return windows;
}

std::vector<sig::SampleSpan> af_urgent_spans(std::span<const AfWindow> windows,
                                             std::span<const sig::BeatAnnotation> beats) {
  std::vector<sig::SampleSpan> spans;
  for (const auto& w : windows) {
    if (!w.decided_af) continue;
    if (w.first_beat >= w.last_beat || w.last_beat > beats.size()) continue;
    sig::SampleSpan span;
    span.begin = beats[w.first_beat].r_peak;
    span.end = beats[w.last_beat - 1].r_peak + 1;
    if (span.empty()) continue;
    // Decision windows overlap (stride < window_beats), so spans from
    // consecutive AF-positive windows usually chain into one episode.
    if (!spans.empty() && span.begin <= spans.back().end) {
      spans.back().end = std::max(spans.back().end, span.end);
    } else {
      spans.push_back(span);
    }
  }
  return spans;
}

}  // namespace wbsn::cls
