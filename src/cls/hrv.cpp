#include "cls/hrv.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace wbsn::cls {

HrvTimeDomain compute_time_domain(std::span<const double> rr_s) {
  HrvTimeDomain out;
  if (rr_s.size() < 2) return out;
  double mean = 0.0;
  for (double v : rr_s) mean += v;
  mean /= static_cast<double>(rr_s.size());
  out.mean_rr_s = mean;
  out.mean_hr_bpm = 60.0 / mean;

  double var = 0.0;
  for (double v : rr_s) var += (v - mean) * (v - mean);
  out.sdnn_ms = std::sqrt(var / static_cast<double>(rr_s.size() - 1)) * 1000.0;

  double sum_sq_diff = 0.0;
  int over50 = 0;
  for (std::size_t i = 1; i < rr_s.size(); ++i) {
    const double d = rr_s[i] - rr_s[i - 1];
    sum_sq_diff += d * d;
    over50 += std::abs(d) > 0.050;
  }
  out.rmssd_ms = std::sqrt(sum_sq_diff / static_cast<double>(rr_s.size() - 1)) * 1000.0;
  out.pnn50 = static_cast<double>(over50) / static_cast<double>(rr_s.size() - 1);
  return out;
}

std::vector<double> resample_tachogram(std::span<const double> rr_s, double out_fs_hz) {
  std::vector<double> out;
  if (rr_s.size() < 2) return out;
  // Beat times: t_i = sum of RR up to i; tachogram value at t_i is rr_i.
  std::vector<double> t(rr_s.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < rr_s.size(); ++i) {
    acc += rr_s[i];
    t[i] = acc;
  }
  const double dt = 1.0 / out_fs_hz;
  std::size_t seg = 0;
  for (double time = t.front(); time <= t.back(); time += dt) {
    while (seg + 1 < t.size() && t[seg + 1] < time) ++seg;
    const double t0 = t[seg];
    const double t1 = t[seg + 1];
    const double frac = t1 > t0 ? (time - t0) / (t1 - t0) : 0.0;
    out.push_back(rr_s[seg] + frac * (rr_s[seg + 1] - rr_s[seg]));
  }
  return out;
}

namespace {

/// Goertzel power of `x` at normalized frequency f (Hz) given fs.
double tone_power(std::span<const double> x, double f_hz, double fs) {
  double re = 0.0;
  double im = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double w = 2.0 * std::numbers::pi * f_hz * static_cast<double>(i) / fs;
    re += x[i] * std::cos(w);
    im += x[i] * std::sin(w);
  }
  const auto n = static_cast<double>(x.size());
  return (re * re + im * im) / (n * n);
}

}  // namespace

HrvFrequencyDomain compute_frequency_domain(std::span<const double> rr_s) {
  HrvFrequencyDomain out;
  constexpr double kFs = 4.0;
  auto tachogram = resample_tachogram(rr_s, kFs);
  if (tachogram.size() < 64) return out;
  // Remove the mean (the DC term would swamp both bands).
  double mean = 0.0;
  for (double v : tachogram) mean += v;
  mean /= static_cast<double>(tachogram.size());
  for (double& v : tachogram) v -= mean;

  // Integrate band power on a fixed frequency grid.
  const double df = 0.01;
  for (double f = 0.04; f < 0.15; f += df) out.lf_power += tone_power(tachogram, f, kFs);
  for (double f = 0.15; f < 0.40; f += df) out.hf_power += tone_power(tachogram, f, kFs);
  out.lf_hf_ratio = out.hf_power > 1e-12 ? out.lf_power / out.hf_power : 0.0;
  return out;
}

}  // namespace wbsn::cls
