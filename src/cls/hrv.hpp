// Heart-rate-variability metrics for the behavioural / sleep monitoring
// applications of Section II (beat-to-beat interval processing).
#pragma once

#include <span>
#include <vector>

namespace wbsn::cls {

/// Time-domain HRV summary over an RR series (seconds).
struct HrvTimeDomain {
  double mean_rr_s = 0.0;
  double sdnn_ms = 0.0;    ///< Standard deviation of RR.
  double rmssd_ms = 0.0;   ///< RMS of successive differences.
  double pnn50 = 0.0;      ///< Fraction of successive diffs > 50 ms.
  double mean_hr_bpm = 0.0;
};

HrvTimeDomain compute_time_domain(std::span<const double> rr_s);

/// Frequency-domain summary: band powers of the RR tachogram resampled at
/// 4 Hz (LF 0.04-0.15 Hz, HF 0.15-0.4 Hz) and their ratio — the autonomic
/// balance index sleep/stress applications key on.
struct HrvFrequencyDomain {
  double lf_power = 0.0;
  double hf_power = 0.0;
  double lf_hf_ratio = 0.0;
};

HrvFrequencyDomain compute_frequency_domain(std::span<const double> rr_s);

/// Resamples an RR series to a uniform tachogram (linear interpolation).
std::vector<double> resample_tachogram(std::span<const double> rr_s, double out_fs_hz);

}  // namespace wbsn::cls
