// Embedded heartbeat classification: random projections + fuzzy network
// (Braojos et al., DATE 2013 — the RP-CLASS kernel of Figure 7).
//
// Each detected beat is represented by the random projection of a fixed
// window around its R peak (morphology) concatenated with two rhythm
// features (the preceding and following RR intervals, normalized by the
// running mean RR).  A fuzzy classifier trained per class (normal / PVC /
// APC) labels the beat.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cls/fuzzy.hpp"
#include "cls/random_projection.hpp"
#include "dsp/opcount.hpp"
#include "sig/types.hpp"

namespace wbsn::cls {

struct BeatClassifierConfig {
  double fs = 250.0;
  double window_pre_s = 0.25;   ///< Morphology window before R.
  double window_post_s = 0.45;  ///< ... and after.
  std::size_t projected_dims = 16;
  double achlioptas_s = 3.0;    ///< Projection sparsity parameter.
  std::uint64_t projection_seed = 0xC1A55;
  FuzzyConfig fuzzy{};

  std::size_t window_samples() const {
    return static_cast<std::size_t>((window_pre_s + window_post_s) * fs);
  }
};

/// The three beat classes the classifier distinguishes, mapping
/// sig::BeatClass down to AAMI-style N / V / S (AF beats conduct normally,
/// so they classify as N; AF detection is rhythm-level, not beat-level).
enum class BeatLabel : int { kNormal = 0, kVentricular = 1, kSupraventricular = 2 };

BeatLabel to_beat_label(sig::BeatClass c);

class BeatClassifier {
 public:
  explicit BeatClassifier(BeatClassifierConfig cfg = {});

  /// Extracts the feature vector of the beat at `r_peak` (projection of
  /// the window plus rhythm features).  Returns empty if the window falls
  /// off the record edges.
  std::vector<double> extract_features(std::span<const std::int32_t> x, std::int64_t r_peak,
                                       double rr_prev_s, double rr_next_s, double rr_mean_s,
                                       dsp::OpCount* ops = nullptr) const;

  /// Trains on annotated integer records (one signal + truth beats each).
  struct TrainingRecord {
    std::span<const std::int32_t> signal;
    std::span<const sig::BeatAnnotation> beats;
  };
  void train(std::span<const TrainingRecord> records);

  /// Classifies one beat (exact evaluator).
  BeatLabel classify(std::span<const std::int32_t> x, std::int64_t r_peak, double rr_prev_s,
                     double rr_next_s, double rr_mean_s) const;

  /// Classifies with the node-side linearized evaluator, tallying ops.
  BeatLabel classify_linearized(std::span<const std::int32_t> x, std::int64_t r_peak,
                                double rr_prev_s, double rr_next_s, double rr_mean_s,
                                dsp::OpCount* ops = nullptr) const;

  const FuzzyClassifier& fuzzy() const { return fuzzy_; }
  const PackedTernaryMatrix& projection() const { return projection_; }
  const BeatClassifierConfig& config() const { return cfg_; }

 private:
  BeatClassifierConfig cfg_;
  PackedTernaryMatrix projection_;
  FuzzyClassifier fuzzy_;
  double feature_scale_ = 1.0;  ///< Normalizer for projected features.
};

/// Per-class and aggregate accuracy of a classifier on labeled beats.
struct ClassificationReport {
  std::vector<std::vector<int>> confusion;  ///< [truth][predicted].
  double accuracy() const;
  double sensitivity(int cls) const;   ///< Recall of class `cls`.
  double specificity(int cls) const;   ///< True-negative rate of `cls`.
};

}  // namespace wbsn::cls
