#include "cls/fuzzy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wbsn::cls {

FuzzyClassifier::FuzzyClassifier(FuzzyConfig cfg)
    : cfg_(cfg), approx_(cfg.linear_segments) {}

void FuzzyClassifier::train(std::span<const Sample> samples, int num_classes) {
  assert(!samples.empty());
  const auto num_features = samples[0].features.size();
  mu_.assign(static_cast<std::size_t>(num_classes), std::vector<double>(num_features, 0.0));
  sigma_.assign(static_cast<std::size_t>(num_classes),
                std::vector<double>(num_features, cfg_.sigma_floor));
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes), 0);

  for (const auto& s : samples) {
    assert(s.features.size() == num_features);
    assert(s.label >= 0 && s.label < num_classes);
    const auto cls = static_cast<std::size_t>(s.label);
    ++counts[cls];
    for (std::size_t f = 0; f < num_features; ++f) mu_[cls][f] += s.features[f];
  }
  for (std::size_t c = 0; c < mu_.size(); ++c) {
    if (counts[c] == 0) continue;
    for (auto& m : mu_[c]) m /= static_cast<double>(counts[c]);
  }
  // Second pass: variances.
  std::vector<std::vector<double>> var(mu_.size(), std::vector<double>(num_features, 0.0));
  for (const auto& s : samples) {
    const auto cls = static_cast<std::size_t>(s.label);
    for (std::size_t f = 0; f < num_features; ++f) {
      const double d = s.features[f] - mu_[cls][f];
      var[cls][f] += d * d;
    }
  }
  for (std::size_t c = 0; c < mu_.size(); ++c) {
    if (counts[c] < 2) continue;
    for (std::size_t f = 0; f < num_features; ++f) {
      sigma_[c][f] =
          std::max(cfg_.sigma_floor, std::sqrt(var[c][f] / static_cast<double>(counts[c] - 1)));
    }
  }
}

double FuzzyClassifier::membership_of(std::span<const double> features, int cls,
                                      bool linearized, dsp::OpCount* ops) const {
  const auto& mu = mu_[static_cast<std::size_t>(cls)];
  const auto& sigma = sigma_[static_cast<std::size_t>(cls)];
  double acc = cfg_.tnorm == TNorm::kProduct ? 1.0 : 2.0;
  for (std::size_t f = 0; f < features.size(); ++f) {
    const double z = (features[f] - mu[f]) / sigma[f];
    const double g = linearized ? approx_.value(z) : dsp::PiecewiseGauss::exact(z);
    if (ops != nullptr) {
      // Node cost per feature: subtract, divide (or reciprocal-multiply),
      // table lookup with one multiply-add, one compare for the t-norm.
      ops->add += 2;
      ops->div += 1;
      ops->mul += 1;
      ops->cmp += 1;
      ops->load += 3;
    }
    if (cfg_.tnorm == TNorm::kProduct) {
      acc *= g;
    } else {
      acc = std::min(acc, g);
    }
  }
  return acc;
}

std::vector<double> FuzzyClassifier::memberships(std::span<const double> features) const {
  std::vector<double> out(static_cast<std::size_t>(num_classes()), 0.0);
  for (int c = 0; c < num_classes(); ++c) {
    out[static_cast<std::size_t>(c)] = membership_of(features, c, false, nullptr);
  }
  return out;
}

int FuzzyClassifier::classify(std::span<const double> features) const {
  const auto scores = memberships(features);
  return static_cast<int>(
      std::distance(scores.begin(), std::max_element(scores.begin(), scores.end())));
}

int FuzzyClassifier::classify_linearized(std::span<const double> features,
                                         dsp::OpCount* ops) const {
  int best = 0;
  double best_score = -1.0;
  for (int c = 0; c < num_classes(); ++c) {
    const double score = membership_of(features, c, true, ops);
    if (ops != nullptr) ops->cmp += 1;
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

}  // namespace wbsn::cls
