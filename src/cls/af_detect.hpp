// Automated real-time atrial-fibrillation detection (Rincón et al., EMBC
// 2012 — the application whose 96 % sensitivity / 93 % specificity the
// paper's Section V reports).
//
// AF shows two signatures the node can compute cheaply from delineation
// output: (1) an "irregularly irregular" ventricular response — high
// normalized beat-to-beat RR variability with no serial structure — and
// (2) absent P waves (replaced by fibrillatory activity).  The detector
// slides a window of beats, derives three features (normalized RMSSD,
// Shannon entropy of the RR-difference distribution, P-wave presence
// rate), and fuses them with a small fuzzy inference stage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cls/fuzzy.hpp"
#include "dsp/opcount.hpp"
#include "sig/types.hpp"

namespace wbsn::cls {

struct AfDetectorConfig {
  int window_beats = 24;        ///< Beats per decision window.
  int window_stride = 8;        ///< Beats between successive decisions.
  int entropy_bins = 8;
  FuzzyConfig fuzzy{};
};

/// Window-level features.
struct AfFeatures {
  double normalized_rmssd = 0.0;  ///< RMSSD of RR / mean RR.
  double rr_entropy = 0.0;        ///< Shannon entropy of |dRR| histogram, bits.
  double p_wave_rate = 0.0;       ///< Fraction of beats with a detected P.

  std::vector<double> as_vector() const {
    return {normalized_rmssd, rr_entropy, p_wave_rate};
  }
};

/// One decision window.
struct AfWindow {
  std::size_t first_beat = 0;  ///< Index of the window's first beat.
  std::size_t last_beat = 0;   ///< One past the window's last beat.
  AfFeatures features;
  bool decided_af = false;
  bool truth_af = false;       ///< Majority truth label (for evaluation).
};

/// Computes the window features from delineated beats (fs for RR seconds).
AfFeatures compute_af_features(std::span<const sig::BeatAnnotation> beats, double fs,
                               int entropy_bins, dsp::OpCount* ops = nullptr);

class AfDetector {
 public:
  explicit AfDetector(AfDetectorConfig cfg = {});

  /// Trains the fuzzy fusion stage on annotated records: each record is a
  /// delineated beat sequence whose truth labels mark AF beats.
  void train(std::span<const std::vector<sig::BeatAnnotation>> records, double fs);

  /// Runs windowed detection over one delineated record.
  std::vector<AfWindow> detect(std::span<const sig::BeatAnnotation> beats, double fs,
                               dsp::OpCount* ops = nullptr) const;

  const FuzzyClassifier& fuzzy() const { return fuzzy_; }
  const AfDetectorConfig& config() const { return cfg_; }

 private:
  AfDetectorConfig cfg_;
  FuzzyClassifier fuzzy_;
};

/// Priority tagging hook for the host reconstruction fabric: the merged
/// sample spans covered by AF-positive decision windows.  A node that runs
/// the detector locally tags every compressed-sensing window overlapping
/// one of these spans as urgent (cs::WindowPriority::kUrgent), so the host
/// reconstructs the suspected-AF stretch ahead of routine telemetry.  Each
/// span runs from the R peak of the decision window's first beat to one
/// past the R peak of its last; overlapping/adjacent spans are merged.
std::vector<sig::SampleSpan> af_urgent_spans(std::span<const AfWindow> windows,
                                             std::span<const sig::BeatAnnotation> beats);

/// Sensitivity / specificity over a set of evaluated windows.
struct AfReport {
  int tp = 0;
  int fn = 0;
  int tn = 0;
  int fp = 0;

  double sensitivity() const { return tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 1.0; }
  double specificity() const { return tn + fp > 0 ? static_cast<double>(tn) / (tn + fp) : 1.0; }

  void add(const AfWindow& w) {
    if (w.truth_af) {
      w.decided_af ? ++tp : ++fn;
    } else {
      w.decided_af ? ++fp : ++tn;
    }
  }
};

}  // namespace wbsn::cls
