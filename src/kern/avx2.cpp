// AVX2 backend.  Every kernel reproduces the canonical semantics of
// scalar_ref.hpp bit for bit:
//
//   * reductions keep 4 lane accumulators (lane l ← elements i ≡ l mod 4)
//     and fold them as (s0 + s2) + (s1 + s3), which is exactly what the
//     extract-128/add/fold epilogue below computes;
//   * spmv walks each block's taps in plan order, one 4-lane gather per
//     tap group;
//   * DWT outputs evaluate the same pairwise mul/add trees;
//   * no FMA instructions are used anywhere (this TU is compiled with
//     -mavx2 only, plus -ffp-contract=off), so every rounding matches the
//     scalar backend's separate mul and add.
//
// Loop tails and small sizes fall back to the shared reference code —
// identical math, so the cutover point is invisible in the bits.
#include "kern/backend.hpp"

#if defined(WBSN_KERN_HAVE_AVX2)

#include <immintrin.h>

#include "kern/scalar_ref.hpp"

namespace wbsn::kern {
namespace {

/// Runs the canonical scalar loop over the tail [i0, n) with the 4 lane
/// accumulators carried over from the vector body; the final fold in
/// ref::reduce_lanes — (s0 + s2) + (s1 + s3) — matches the order an
/// extract-128/add epilogue would compute.
double finish_reduction(__m256d acc, const double* x, const double* y, std::size_t i0,
                        std::size_t n, bool square) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (std::size_t i = i0; i < n; ++i) {
    lanes[i & 3] += square ? x[i] * x[i] : x[i] * y[i];
  }
  return ref::reduce_lanes(lanes);
}

double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  return finish_reduction(acc, x, y, i, n, /*square=*/false);
}

double nrm2_sq_avx2(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  return finish_reduction(acc, x, x, i, n, /*square=*/true);
}

void axpy_avx2(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d a = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_mul_pd(a, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), t));
  }
  ref::axpy(alpha, x + i, y + i, n - i);
}

void xpby_avx2(const double* x, double beta, double* y, std::size_t n) {
  const __m256d b = _mm256_set1_pd(beta);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_mul_pd(b, _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(x + i), t));
  }
  ref::xpby(x + i, beta, y + i, n - i);
}

void grad_step_avx2(const double* z, const double* grad, double lip, double* a,
                    std::size_t n) {
  const __m256d l = _mm256_set1_pd(lip);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d g = _mm256_div_pd(_mm256_loadu_pd(grad + i), l);
    _mm256_storeu_pd(a + i, _mm256_sub_pd(_mm256_loadu_pd(z + i), g));
  }
  ref::grad_step(z + i, grad + i, lip, a + i, n - i);
}

/// copysign(max(|v| - tau, 0), v), vector form (see ref::soft_threshold_one).
/// The sign mask is built inline: a namespace-scope __m256d would run AVX
/// instructions during static init, before the CPUID check can protect a
/// non-AVX host.
__m256d soft_threshold_vec(__m256d v, __m256d tau) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d mag = _mm256_sub_pd(_mm256_andnot_pd(sign_mask, v), tau);
  const __m256d thr = _mm256_max_pd(_mm256_setzero_pd(), mag);
  return _mm256_or_pd(thr, _mm256_and_pd(sign_mask, v));
}

void soft_threshold_avx2(double* a, std::size_t n, double tau) {
  const __m256d t = _mm256_set1_pd(tau);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(a + i, soft_threshold_vec(_mm256_loadu_pd(a + i), t));
  }
  ref::soft_threshold(a + i, n - i, tau);
}

void soft_threshold_batch_avx2(double* a, std::size_t n, std::size_t batch,
                               const double* tau) {
  if (batch == 1) {
    soft_threshold_avx2(a, n, tau[0]);
    return;
  }
  // Elementwise and exact, so any partition is bit-safe: vectorize along
  // the batch dimension with a per-window tau register.
  for (std::size_t i = 0; i < n; ++i) {
    double* row = a + i * batch;
    std::size_t b = 0;
    for (; b + 4 <= batch; b += 4) {
      _mm256_storeu_pd(row + b,
                       soft_threshold_vec(_mm256_loadu_pd(row + b), _mm256_loadu_pd(tau + b)));
    }
    for (; b < batch; ++b) row[b] = ref::soft_threshold_one(row[b], tau[b]);
  }
}

void momentum_avx2(const double* a, const double* a_prev, double* z, double beta,
                   std::size_t n, double* delta_sq, double* scale_sq) {
  const __m256d bvec = _mm256_set1_pd(beta);
  __m256d acc_d = _mm256_setzero_pd();
  __m256d acc_s = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_loadu_pd(a + i);
    const __m256d d = _mm256_sub_pd(av, _mm256_loadu_pd(a_prev + i));
    acc_d = _mm256_add_pd(acc_d, _mm256_mul_pd(d, d));
    acc_s = _mm256_add_pd(acc_s, _mm256_mul_pd(av, av));
    _mm256_storeu_pd(z + i, _mm256_add_pd(av, _mm256_mul_pd(bvec, d)));
  }
  alignas(32) double lanes_d[4];
  alignas(32) double lanes_s[4];
  _mm256_store_pd(lanes_d, acc_d);
  _mm256_store_pd(lanes_s, acc_s);
  for (; i < n; ++i) {
    const double d = a[i] - a_prev[i];
    lanes_d[i & 3] += d * d;
    lanes_s[i & 3] += a[i] * a[i];
    z[i] = a[i] + beta * d;
  }
  *delta_sq = ref::reduce_lanes(lanes_d);
  *scale_sq = ref::reduce_lanes(lanes_s);
}

void momentum_batch_avx2(const double* a, const double* a_prev, double* z, double beta,
                         std::size_t n, std::size_t batch, double* delta_sq,
                         double* scale_sq) {
  if (batch == 1) {
    momentum_avx2(a, a_prev, z, beta, n, delta_sq, scale_sq);
    return;
  }
  const __m256d bvec = _mm256_set1_pd(beta);
  std::size_t b = 0;
  // 4 windows at a time; the i (mod 4) lane partition lives in 4 rotating
  // register accumulators per sum, exactly mirroring the single-window
  // kernel's per-window order.
  for (; b + 4 <= batch; b += 4) {
    __m256d acc_d[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(), _mm256_setzero_pd(),
                        _mm256_setzero_pd()};
    __m256d acc_s[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(), _mm256_setzero_pd(),
                        _mm256_setzero_pd()};
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = i * batch + b;
      const __m256d av = _mm256_loadu_pd(a + j);
      const __m256d d = _mm256_sub_pd(av, _mm256_loadu_pd(a_prev + j));
      acc_d[i & 3] = _mm256_add_pd(acc_d[i & 3], _mm256_mul_pd(d, d));
      acc_s[i & 3] = _mm256_add_pd(acc_s[i & 3], _mm256_mul_pd(av, av));
      _mm256_storeu_pd(z + j, _mm256_add_pd(av, _mm256_mul_pd(bvec, d)));
    }
    // Per-window fold (s0 + s2) + (s1 + s3), elementwise across the 4 windows.
    const __m256d dsum = _mm256_add_pd(_mm256_add_pd(acc_d[0], acc_d[2]),
                                       _mm256_add_pd(acc_d[1], acc_d[3]));
    const __m256d ssum = _mm256_add_pd(_mm256_add_pd(acc_s[0], acc_s[2]),
                                       _mm256_add_pd(acc_s[1], acc_s[3]));
    _mm256_storeu_pd(delta_sq + b, dsum);
    _mm256_storeu_pd(scale_sq + b, ssum);
  }
  for (; b < batch; ++b) {
    ref::momentum_batch_window(a, a_prev, z, beta, n, batch, b, delta_sq, scale_sq);
  }
}

/// One tap group: gather the 4 lane inputs and weight by the signs.
/// Masked gather with an explicit all-ones mask: same semantics as
/// _mm256_i32gather_pd, but GCC's expansion of the unmasked form trips
/// -Wmaybe-uninitialized on the undefined pass-through source.
/// kSigned = false skips the sign multiply for uniform_positive plans
/// (1.0 * v == v bit-exactly, so the result is unchanged).
template <bool kSigned>
__m256d spmv_term(const SpmvPlan& plan, const double* x, std::size_t tap_group) {
  const std::size_t t = tap_group * SpmvPlan::kLanes;
  const std::int32_t* idx = plan.idx.data() + t;
  // Manual load+insert rather than vgatherdpd: the gather instruction's
  // throughput is no better than four port-bound scalar loads, and on
  // parts carrying the Downfall (GDS) mitigation it is far worse.
  const __m128d lo =
      _mm_loadh_pd(_mm_load_sd(x + idx[0]), x + idx[1]);
  const __m128d hi =
      _mm_loadh_pd(_mm_load_sd(x + idx[2]), x + idx[3]);
  const __m256d gathered = _mm256_insertf128_pd(_mm256_castpd128_pd256(lo), hi, 1);
  if constexpr (kSigned) {
    return _mm256_mul_pd(_mm256_loadu_pd(plan.sgn.data() + t), gathered);
  } else {
    return gathered;
  }
}

template <bool kSigned>
void spmv_avx2_impl(const SpmvPlan& plan, const double* x, double* y) {
  const std::size_t full_blocks = plan.num_outputs / SpmvPlan::kLanes;
  std::size_t blk = 0;
  // Four blocks in flight: each block's accumulation is a serial FP add
  // chain gated by gather latency, so interleaving independent chains
  // keeps the gather ports busy.  Per-block tap order is untouched.
  for (; blk + 4 <= full_blocks; blk += 4) {
    const std::uint32_t s0 = plan.block_tap_start[blk];
    const std::uint32_t s1 = plan.block_tap_start[blk + 1];
    const std::uint32_t s2 = plan.block_tap_start[blk + 2];
    const std::uint32_t s3 = plan.block_tap_start[blk + 3];
    const std::uint32_t s4 = plan.block_tap_start[blk + 4];
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    const std::uint32_t joint =
        std::min(std::min(s1 - s0, s2 - s1), std::min(s3 - s2, s4 - s3));
    for (std::uint32_t s = 0; s < joint; ++s) {
      acc0 = _mm256_add_pd(acc0, spmv_term<kSigned>(plan, x, s0 + s));
      acc1 = _mm256_add_pd(acc1, spmv_term<kSigned>(plan, x, s1 + s));
      acc2 = _mm256_add_pd(acc2, spmv_term<kSigned>(plan, x, s2 + s));
      acc3 = _mm256_add_pd(acc3, spmv_term<kSigned>(plan, x, s3 + s));
    }
    for (std::uint32_t g = s0 + joint; g < s1; ++g) {
      acc0 = _mm256_add_pd(acc0, spmv_term<kSigned>(plan, x, g));
    }
    for (std::uint32_t g = s1 + joint; g < s2; ++g) {
      acc1 = _mm256_add_pd(acc1, spmv_term<kSigned>(plan, x, g));
    }
    for (std::uint32_t g = s2 + joint; g < s3; ++g) {
      acc2 = _mm256_add_pd(acc2, spmv_term<kSigned>(plan, x, g));
    }
    for (std::uint32_t g = s3 + joint; g < s4; ++g) {
      acc3 = _mm256_add_pd(acc3, spmv_term<kSigned>(plan, x, g));
    }
    _mm256_storeu_pd(y + blk * SpmvPlan::kLanes, acc0);
    _mm256_storeu_pd(y + (blk + 1) * SpmvPlan::kLanes, acc1);
    _mm256_storeu_pd(y + (blk + 2) * SpmvPlan::kLanes, acc2);
    _mm256_storeu_pd(y + (blk + 3) * SpmvPlan::kLanes, acc3);
  }
  for (; blk < full_blocks; ++blk) {
    __m256d acc = _mm256_setzero_pd();
    for (std::uint32_t g = plan.block_tap_start[blk]; g < plan.block_tap_start[blk + 1]; ++g) {
      acc = _mm256_add_pd(acc, spmv_term<kSigned>(plan, x, g));
    }
    _mm256_storeu_pd(y + blk * SpmvPlan::kLanes, acc);
  }
  for (std::size_t o = full_blocks * SpmvPlan::kLanes; o < plan.num_outputs; ++o) {
    y[o] = ref::spmv_output(plan, x, o / SpmvPlan::kLanes, o % SpmvPlan::kLanes);
  }
}

void spmv_avx2(const SpmvPlan& plan, const double* x, double* y) {
  if (plan.uniform_positive) {
    spmv_avx2_impl<false>(plan, x, y);
  } else {
    spmv_avx2_impl<true>(plan, x, y);
  }
}

void spmv_batch_avx2(const SpmvPlan& plan, const double* x, std::size_t batch, double* y) {
  if (batch == 1) {
    spmv_avx2(plan, x, y);
    return;
  }
  // Vectorize along the batch dimension: the taps of one output become
  // broadcast-multiplied contiguous loads, no gathers needed.
  for (std::size_t o = 0; o < plan.num_outputs; ++o) {
    const std::size_t block = o / SpmvPlan::kLanes;
    const std::size_t lane = o % SpmvPlan::kLanes;
    double* dst = y + o * batch;
    std::size_t b = 0;
    for (; b + 4 <= batch; b += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::uint32_t g = plan.block_tap_start[block]; g < plan.block_tap_start[block + 1];
           ++g) {
        const std::size_t t = static_cast<std::size_t>(g) * SpmvPlan::kLanes + lane;
        const __m256d s = _mm256_set1_pd(plan.sgn[t]);
        const double* src = x + static_cast<std::size_t>(plan.idx[t]) * batch + b;
        acc = _mm256_add_pd(acc, _mm256_mul_pd(s, _mm256_loadu_pd(src)));
      }
      _mm256_storeu_pd(dst + b, acc);
    }
    for (; b < batch; ++b) {
      double acc = 0.0;
      for (std::uint32_t g = plan.block_tap_start[block]; g < plan.block_tap_start[block + 1];
           ++g) {
        const std::size_t t = static_cast<std::size_t>(g) * SpmvPlan::kLanes + lane;
        acc += plan.sgn[t] * x[static_cast<std::size_t>(plan.idx[t]) * batch + b];
      }
      dst[b] = acc;
    }
  }
}

/// Deinterleaves 8 consecutive doubles starting at p into even/odd lanes:
/// even = (p0, p2, p4, p6), odd = (p1, p3, p5, p7).
void load_deinterleave(const double* p, __m256d* even, __m256d* odd) {
  const __m256d v0 = _mm256_loadu_pd(p);      // p0 p1 p2 p3
  const __m256d v1 = _mm256_loadu_pd(p + 4);  // p4 p5 p6 p7
  const __m256d t0 = _mm256_permute2f128_pd(v0, v1, 0x20);  // p0 p1 p4 p5
  const __m256d t1 = _mm256_permute2f128_pd(v0, v1, 0x31);  // p2 p3 p6 p7
  *even = _mm256_unpacklo_pd(t0, t1);
  *odd = _mm256_unpackhi_pd(t0, t1);
}

/// Interleaves even/odd output lanes back into 8 consecutive doubles at p.
void store_interleave(double* p, __m256d even, __m256d odd) {
  const __m256d lo = _mm256_unpacklo_pd(even, odd);  // e0 o0 e2 o2
  const __m256d hi = _mm256_unpackhi_pd(even, odd);  // e1 o1 e3 o3
  _mm256_storeu_pd(p, _mm256_permute2f128_pd(lo, hi, 0x20));
  _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
}

void dwt_step_avx2(const double* x, std::size_t n, double* approx, double* detail) {
  const std::size_t half = n / 2;
  if (half < 8) {
    ref::dwt_step(x, n, approx, detail);
    return;
  }
  const __m256d lo0 = _mm256_set1_pd(ref::kDb4Lo[0]);
  const __m256d lo1 = _mm256_set1_pd(ref::kDb4Lo[1]);
  const __m256d lo2 = _mm256_set1_pd(ref::kDb4Lo[2]);
  const __m256d lo3 = _mm256_set1_pd(ref::kDb4Lo[3]);
  const __m256d hi0 = _mm256_set1_pd(ref::kDb4Hi[0]);
  const __m256d hi1 = _mm256_set1_pd(ref::kDb4Hi[1]);
  const __m256d hi2 = _mm256_set1_pd(ref::kDb4Hi[2]);
  const __m256d hi3 = _mm256_set1_pd(ref::kDb4Hi[3]);
  // Outputs k..k+3 read x[2k .. 2k+9]; stay in bounds while 2k+9 <= n-1.
  std::size_t k = 0;
  for (; k + 5 <= half; k += 4) {
    __m256d x0;
    __m256d x1;
    __m256d x2;
    __m256d x3;
    load_deinterleave(x + 2 * k, &x0, &x1);
    load_deinterleave(x + 2 * k + 2, &x2, &x3);
    const __m256d a = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(lo0, x0), _mm256_mul_pd(lo1, x1)),
        _mm256_add_pd(_mm256_mul_pd(lo2, x2), _mm256_mul_pd(lo3, x3)));
    const __m256d d = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(hi0, x0), _mm256_mul_pd(hi1, x1)),
        _mm256_add_pd(_mm256_mul_pd(hi2, x2), _mm256_mul_pd(hi3, x3)));
    _mm256_storeu_pd(approx + k, a);
    _mm256_storeu_pd(detail + k, d);
  }
  for (; k < half; ++k) {
    ref::dwt_output(x[(2 * k) % n], x[(2 * k + 1) % n], x[(2 * k + 2) % n],
                    x[(2 * k + 3) % n], &approx[k], &detail[k]);
  }
}

void idwt_step_avx2(const double* approx, const double* detail, std::size_t half,
                    double* x) {
  if (half < 8) {
    ref::idwt_step(approx, detail, half, x);
    return;
  }
  const __m256d lo0 = _mm256_set1_pd(ref::kDb4Lo[0]);
  const __m256d lo1 = _mm256_set1_pd(ref::kDb4Lo[1]);
  const __m256d lo2 = _mm256_set1_pd(ref::kDb4Lo[2]);
  const __m256d lo3 = _mm256_set1_pd(ref::kDb4Lo[3]);
  const __m256d hi0 = _mm256_set1_pd(ref::kDb4Hi[0]);
  const __m256d hi1 = _mm256_set1_pd(ref::kDb4Hi[1]);
  const __m256d hi2 = _mm256_set1_pd(ref::kDb4Hi[2]);
  const __m256d hi3 = _mm256_set1_pd(ref::kDb4Hi[3]);
  // k = 0 wraps to k⁻ = half-1: scalar.  Vector body needs k-1 >= 0 and
  // k+3 <= half-1.
  const std::size_t km0 = half - 1;
  ref::idwt_outputs(approx[0], detail[0], approx[km0], detail[km0], &x[0], &x[1]);
  std::size_t k = 1;
  for (; k + 4 <= half; k += 4) {
    const __m256d ak = _mm256_loadu_pd(approx + k);
    const __m256d dk = _mm256_loadu_pd(detail + k);
    const __m256d am = _mm256_loadu_pd(approx + k - 1);
    const __m256d dm = _mm256_loadu_pd(detail + k - 1);
    const __m256d even = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(lo0, ak), _mm256_mul_pd(hi0, dk)),
        _mm256_add_pd(_mm256_mul_pd(lo2, am), _mm256_mul_pd(hi2, dm)));
    const __m256d odd = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(lo1, ak), _mm256_mul_pd(hi1, dk)),
        _mm256_add_pd(_mm256_mul_pd(lo3, am), _mm256_mul_pd(hi3, dm)));
    store_interleave(x + 2 * k, even, odd);
  }
  for (; k < half; ++k) {
    ref::idwt_outputs(approx[k], detail[k], approx[k - 1], detail[k - 1], &x[2 * k],
                      &x[2 * k + 1]);
  }
}

void dwt_step_batch_avx2(const double* x, std::size_t n, std::size_t batch,
                         double* approx, double* detail) {
  if (batch == 1) {
    dwt_step_avx2(x, n, approx, detail);
    return;
  }
  const std::size_t half = n / 2;
  const __m256d lo0 = _mm256_set1_pd(ref::kDb4Lo[0]);
  const __m256d lo1 = _mm256_set1_pd(ref::kDb4Lo[1]);
  const __m256d lo2 = _mm256_set1_pd(ref::kDb4Lo[2]);
  const __m256d lo3 = _mm256_set1_pd(ref::kDb4Lo[3]);
  const __m256d hi0 = _mm256_set1_pd(ref::kDb4Hi[0]);
  const __m256d hi1 = _mm256_set1_pd(ref::kDb4Hi[1]);
  const __m256d hi2 = _mm256_set1_pd(ref::kDb4Hi[2]);
  const __m256d hi3 = _mm256_set1_pd(ref::kDb4Hi[3]);
  for (std::size_t k = 0; k < half; ++k) {
    const double* x0 = x + ((2 * k) % n) * batch;
    const double* x1 = x + ((2 * k + 1) % n) * batch;
    const double* x2 = x + ((2 * k + 2) % n) * batch;
    const double* x3 = x + ((2 * k + 3) % n) * batch;
    double* a = approx + k * batch;
    double* d = detail + k * batch;
    std::size_t b = 0;
    for (; b + 4 <= batch; b += 4) {
      const __m256d v0 = _mm256_loadu_pd(x0 + b);
      const __m256d v1 = _mm256_loadu_pd(x1 + b);
      const __m256d v2 = _mm256_loadu_pd(x2 + b);
      const __m256d v3 = _mm256_loadu_pd(x3 + b);
      _mm256_storeu_pd(
          a + b, _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(lo0, v0), _mm256_mul_pd(lo1, v1)),
                               _mm256_add_pd(_mm256_mul_pd(lo2, v2), _mm256_mul_pd(lo3, v3))));
      _mm256_storeu_pd(
          d + b, _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(hi0, v0), _mm256_mul_pd(hi1, v1)),
                               _mm256_add_pd(_mm256_mul_pd(hi2, v2), _mm256_mul_pd(hi3, v3))));
    }
    for (; b < batch; ++b) ref::dwt_output(x0[b], x1[b], x2[b], x3[b], &a[b], &d[b]);
  }
}

void idwt_step_batch_avx2(const double* approx, const double* detail, std::size_t half,
                          std::size_t batch, double* x) {
  if (batch == 1) {
    idwt_step_avx2(approx, detail, half, x);
    return;
  }
  const __m256d lo0 = _mm256_set1_pd(ref::kDb4Lo[0]);
  const __m256d lo1 = _mm256_set1_pd(ref::kDb4Lo[1]);
  const __m256d lo2 = _mm256_set1_pd(ref::kDb4Lo[2]);
  const __m256d lo3 = _mm256_set1_pd(ref::kDb4Lo[3]);
  const __m256d hi0 = _mm256_set1_pd(ref::kDb4Hi[0]);
  const __m256d hi1 = _mm256_set1_pd(ref::kDb4Hi[1]);
  const __m256d hi2 = _mm256_set1_pd(ref::kDb4Hi[2]);
  const __m256d hi3 = _mm256_set1_pd(ref::kDb4Hi[3]);
  for (std::size_t k = 0; k < half; ++k) {
    const std::size_t km = (k + half - 1) % half;
    const double* ak = approx + k * batch;
    const double* dk = detail + k * batch;
    const double* am = approx + km * batch;
    const double* dm = detail + km * batch;
    double* even = x + (2 * k) * batch;
    double* odd = x + (2 * k + 1) * batch;
    std::size_t b = 0;
    for (; b + 4 <= batch; b += 4) {
      const __m256d vak = _mm256_loadu_pd(ak + b);
      const __m256d vdk = _mm256_loadu_pd(dk + b);
      const __m256d vam = _mm256_loadu_pd(am + b);
      const __m256d vdm = _mm256_loadu_pd(dm + b);
      _mm256_storeu_pd(even + b, _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(lo0, vak),
                                                             _mm256_mul_pd(hi0, vdk)),
                                               _mm256_add_pd(_mm256_mul_pd(lo2, vam),
                                                             _mm256_mul_pd(hi2, vdm))));
      _mm256_storeu_pd(odd + b, _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(lo1, vak),
                                                            _mm256_mul_pd(hi1, vdk)),
                                              _mm256_add_pd(_mm256_mul_pd(lo3, vam),
                                                            _mm256_mul_pd(hi3, vdm))));
    }
    for (; b < batch; ++b) {
      ref::idwt_outputs(ak[b], dk[b], am[b], dm[b], &even[b], &odd[b]);
    }
  }
}

constexpr Ops kAvx2Ops = {
    "avx2",
    dot_avx2,
    nrm2_sq_avx2,
    axpy_avx2,
    xpby_avx2,
    grad_step_avx2,
    soft_threshold_avx2,
    soft_threshold_batch_avx2,
    momentum_avx2,
    momentum_batch_avx2,
    spmv_avx2,
    spmv_batch_avx2,
    dwt_step_avx2,
    idwt_step_avx2,
    dwt_step_batch_avx2,
    idwt_step_batch_avx2,
};

}  // namespace

const Ops* avx2_ops() { return &kAvx2Ops; }

}  // namespace wbsn::kern

#else  // !WBSN_KERN_HAVE_AVX2

namespace wbsn::kern {

const Ops* avx2_ops() { return nullptr; }

}  // namespace wbsn::kern

#endif
