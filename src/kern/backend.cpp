#include "kern/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace wbsn::kern {
namespace {

bool cpu_has_avx2() {
#if defined(WBSN_KERN_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const Ops* select_initial() {
  const Ops* avx2 = avx2_supported() ? avx2_ops() : nullptr;
  if (const char* env = std::getenv("WBSN_KERN_BACKEND")) {
    if (std::strcmp(env, "scalar") == 0) return scalar_ops();
    if (std::strcmp(env, "avx2") == 0 && avx2 != nullptr) return avx2;
    // "auto", unknown values, or avx2 requested but unavailable: fall through.
  }
  return avx2 != nullptr ? avx2 : scalar_ops();
}

std::atomic<const Ops*>& active_slot() {
  static std::atomic<const Ops*> active{select_initial()};
  return active;
}

}  // namespace

bool avx2_supported() { return avx2_ops() != nullptr && cpu_has_avx2(); }

const Ops& ops() { return *active_slot().load(std::memory_order_acquire); }

Backend active_backend() {
  return &ops() == scalar_ops() ? Backend::kScalar : Backend::kAvx2;
}

const char* backend_name() { return ops().name; }

bool set_backend(Backend backend) {
  const Ops* table = nullptr;
  switch (backend) {
    case Backend::kScalar:
      table = scalar_ops();
      break;
    case Backend::kAvx2:
      table = avx2_supported() ? avx2_ops() : nullptr;
      break;
  }
  if (table == nullptr) return false;
  active_slot().store(table, std::memory_order_release);
  return true;
}

}  // namespace wbsn::kern
