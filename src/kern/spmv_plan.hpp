// Packed execution plan for the host-side sparse sensing operators.
//
// The sensing matrices are ±1-sparse (a handful of entries per column), so
// the hot apply/adjoint kernels are gather-accumulate loops, not dense
// GEMV.  A plan groups the outputs (rows for apply, columns for the
// adjoint) into lanes-wide blocks and pads every block to its longest
// output, storing indices and signs lane-interleaved:
//
//   idx[g * kLanes + l] / sgn[g * kLanes + l]
//     = the (g - block_tap_start[b])-th term of output (b * kLanes + l).
//
// Padding terms carry sgn == 0.0 and idx == 0, so they contribute exactly
// +0.0 and every lane of a block walks the same number of taps — that is
// what lets the AVX2 backend process one block per vector register with
// one gather per tap group.
//
// Determinism contract: the value of output o is *defined* as the
// sequential sum over its taps in plan order (real entries first, then the
// pads).  Both backends and both layouts (single vector and interleaved
// batch) accumulate in exactly that order, which is what makes scalar,
// AVX2, and any batch width bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wbsn::kern {

struct SpmvPlan {
  /// Lane width of the blocked layout (fixed: one AVX2 register of doubles).
  static constexpr std::size_t kLanes = 4;

  std::size_t num_outputs = 0;  ///< Length of y.
  std::size_t num_inputs = 0;   ///< Length of x (gather domain).

  /// Per block, the first tap-group index; size num_blocks() + 1.
  std::vector<std::uint32_t> block_tap_start;
  /// Lane-interleaved input indices, kLanes per tap group.
  std::vector<std::int32_t> idx;
  /// Lane-interleaved signs (±1.0; 0.0 marks a padding term).
  std::vector<double> sgn;
  /// True when every sign is exactly +1.0 (uniform output length, no
  /// pads, no negatives — e.g. the adjoint of a sparse-binary matrix).
  /// Backends may then skip the sign multiply: 1.0 * v == v bit-exactly,
  /// so the fast path stays on the canonical result.
  bool uniform_positive = false;

  std::size_t num_blocks() const {
    return block_tap_start.empty() ? 0 : block_tap_start.size() - 1;
  }

  bool empty() const { return num_outputs == 0; }
};

/// One output's terms: (input index, ±1.0 sign) in accumulation order.
using SpmvTerms = std::vector<std::pair<std::int32_t, double>>;

/// Builds the blocked/padded plan from per-output term lists.  The order
/// of `terms[o]` is preserved — it becomes the canonical accumulation
/// order of output o.
SpmvPlan build_spmv_plan(std::size_t num_inputs, const std::vector<SpmvTerms>& terms);

}  // namespace wbsn::kern
