// Runtime-dispatched numeric kernels for the FISTA hot path.
//
// The reconstruction inner loop is dominated by four kernel families —
// sensing-matrix apply/adjoint (spmv over the packed ±1 plans), the Db4
// DWT lifting steps, the soft-threshold/momentum vector ops, and the
// BLAS-1 reductions.  This layer owns them behind an Ops table with two
// backends:
//
//   * scalar — portable reference, runs anywhere;
//   * avx2   — x86 AVX2 intrinsics, selected at startup via CPUID.
//
// Determinism contract (inherited by host::ReconstructionEngine): both
// backends produce bit-identical doubles for every kernel.  The mechanism
// is a *canonical accumulation order* baked into the kernel definitions
// rather than left to the implementation:
//
//   * Reductions (dot, nrm2_sq, the momentum delta/scale sums) accumulate
//     into kLanes = 4 partial sums, lane l taking elements i ≡ l (mod 4),
//     and reduce as (s0 + s2) + (s1 + s3) — exactly the AVX2 register
//     layout and its extract-fold, which the scalar backend emulates.
//   * Spmv outputs sum their plan taps sequentially (see spmv_plan.hpp).
//   * DWT outputs use the fixed pairwise tree (c0·x0 + c1·x1) + (c2·x2 +
//     c3·x3).
//   * Elementwise kernels are single-rounded expressions (no FMA; the
//     kern TUs are compiled with -ffp-contract=off).
//
// Batched layout: the *_batch kernels operate on windows interleaved
// element-major (X[i * batch + b] is element i of window b).  Per-window
// math follows the same canonical orders, so results are bit-identical
// across batch widths — batch = 1 reproduces the single-window kernels
// exactly.
#pragma once

#include <cstddef>

#include "kern/spmv_plan.hpp"

namespace wbsn::kern {

/// Lane width of the canonical accumulation order (doubles per AVX2
/// register).  Independent of the backend actually running.
inline constexpr std::size_t kLanes = 4;

struct Ops {
  const char* name;

  // --- Reductions (canonical 4-lane strided order) -------------------------
  double (*dot)(const double* x, const double* y, std::size_t n);
  double (*nrm2_sq)(const double* x, std::size_t n);

  // --- Elementwise ---------------------------------------------------------
  /// y[i] += alpha * x[i].
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  /// y[i] = x[i] + beta * y[i].
  void (*xpby)(const double* x, double beta, double* y, std::size_t n);
  /// a[i] = z[i] - grad[i] / lip (the FISTA gradient step).
  void (*grad_step)(const double* z, const double* grad, double lip, double* a,
                    std::size_t n);
  /// a[i] = copysign(max(|a[i]| - tau, 0), a[i]).
  void (*soft_threshold)(double* a, std::size_t n, double tau);
  /// Interleaved batch: element j belongs to window j % batch and uses
  /// tau[j % batch].
  void (*soft_threshold_batch)(double* a, std::size_t n, std::size_t batch,
                               const double* tau);

  // --- Fused FISTA momentum ------------------------------------------------
  /// z[i] = a[i] + beta * (a[i] - a_prev[i]); *delta_sq = Σ (a - a_prev)²,
  /// *scale_sq = Σ a², both in canonical lane order (no epsilon added).
  void (*momentum)(const double* a, const double* a_prev, double* z, double beta,
                   std::size_t n, double* delta_sq, double* scale_sq);
  /// Batched: per-window sums land in delta_sq[b] / scale_sq[b].
  void (*momentum_batch)(const double* a, const double* a_prev, double* z, double beta,
                         std::size_t n, std::size_t batch, double* delta_sq,
                         double* scale_sq);

  // --- Sparse sensing operator ---------------------------------------------
  /// y[o] = Σ_taps sgn · x[idx] over the plan (y fully overwritten).
  void (*spmv)(const SpmvPlan& plan, const double* x, double* y);
  /// Interleaved batch of the same plan.
  void (*spmv_batch)(const SpmvPlan& plan, const double* x, std::size_t batch,
                     double* y);

  // --- Daubechies-4 DWT steps (periodized) ---------------------------------
  /// approx[k] / detail[k] from x[2k..2k+3 mod n]; n even, half = n / 2.
  void (*dwt_step)(const double* x, std::size_t n, double* approx, double* detail);
  /// Inverse step: x (length 2 * half) from approx/detail (length half).
  void (*idwt_step)(const double* approx, const double* detail, std::size_t half,
                    double* x);
  void (*dwt_step_batch)(const double* x, std::size_t n, std::size_t batch,
                         double* approx, double* detail);
  void (*idwt_step_batch)(const double* approx, const double* detail, std::size_t half,
                          std::size_t batch, double* x);
};

enum class Backend {
  kScalar,
  kAvx2,
};

/// The active backend's kernel table.  Selection happens once, at first
/// use: the WBSN_KERN_BACKEND environment variable ("scalar" / "avx2" /
/// "auto") when set, otherwise AVX2 iff the build and the CPU support it.
const Ops& ops();

Backend active_backend();
const char* backend_name();

/// True when the binary carries the AVX2 backend *and* CPUID reports AVX2.
bool avx2_supported();

/// Forces a backend (tests and benchmarks).  Returns false — and leaves
/// the selection unchanged — when the requested backend is unavailable.
/// Not meant to race in-flight solves: switch while quiesced.
bool set_backend(Backend backend);

/// Backend tables (for parity tests); avx2_ops() is null when the binary
/// was built without AVX2 support.
const Ops* scalar_ops();
const Ops* avx2_ops();

}  // namespace wbsn::kern
