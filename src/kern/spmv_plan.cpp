#include "kern/spmv_plan.hpp"

#include <algorithm>

namespace wbsn::kern {

SpmvPlan build_spmv_plan(std::size_t num_inputs, const std::vector<SpmvTerms>& terms) {
  SpmvPlan plan;
  plan.num_outputs = terms.size();
  plan.num_inputs = num_inputs;
  if (terms.empty()) {
    plan.block_tap_start.push_back(0);
    return plan;
  }

  const std::size_t blocks = (terms.size() + SpmvPlan::kLanes - 1) / SpmvPlan::kLanes;
  plan.block_tap_start.reserve(blocks + 1);
  plan.block_tap_start.push_back(0);

  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t taps = 0;
    for (std::size_t l = 0; l < SpmvPlan::kLanes; ++l) {
      const std::size_t o = b * SpmvPlan::kLanes + l;
      if (o < terms.size()) taps = std::max(taps, terms[o].size());
    }
    for (std::size_t t = 0; t < taps; ++t) {
      for (std::size_t l = 0; l < SpmvPlan::kLanes; ++l) {
        const std::size_t o = b * SpmvPlan::kLanes + l;
        if (o < terms.size() && t < terms[o].size()) {
          plan.idx.push_back(terms[o][t].first);
          plan.sgn.push_back(terms[o][t].second);
        } else {
          plan.idx.push_back(0);  // Padding: gathers x[0], weighted 0.0.
          plan.sgn.push_back(0.0);
        }
      }
    }
    plan.block_tap_start.push_back(
        static_cast<std::uint32_t>(plan.idx.size() / SpmvPlan::kLanes));
  }
  plan.uniform_positive = true;
  for (const double s : plan.sgn) {
    if (s != 1.0) {
      plan.uniform_positive = false;
      break;
    }
  }
  return plan;
}

}  // namespace wbsn::kern
