// Canonical scalar reference implementations, shared by the scalar
// backend (wholesale) and the AVX2 backend (loop tails and small-n
// fallbacks).  Every function here *defines* the kernel's bit-exact
// semantics — see backend.hpp for the accumulation-order contract.
//
// Internal to src/kern; compiled only in TUs built with -ffp-contract=off
// so no platform fuses the mul/add pairs into FMAs.
#pragma once

#include <cmath>
#include <cstddef>

#include "kern/spmv_plan.hpp"

namespace wbsn::kern::ref {

/// Canonical fold of the 4 lane accumulators: matches the AVX2
/// extract-low/high + fold sequence.
inline double reduce_lanes(const double acc[4]) {
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

inline double dot(const double* x, const double* y, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) acc[i & 3] += x[i] * y[i];
  return reduce_lanes(acc);
}

inline double nrm2_sq(const double* x, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) acc[i & 3] += x[i] * x[i];
  return reduce_lanes(acc);
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] + alpha * x[i];
}

inline void xpby(const double* x, double beta, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + beta * y[i];
}

inline void grad_step(const double* z, const double* grad, double lip, double* a,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] = z[i] - grad[i] / lip;
}

/// copysign(max(|v| - tau, 0), v): the branchless form both backends use;
/// |v| <= tau yields ±0.0 carrying v's sign bit.
inline double soft_threshold_one(double v, double tau) {
  const double mag = std::fabs(v) - tau;
  return std::copysign(mag > 0.0 ? mag : 0.0, v);
}

inline void soft_threshold(double* a, std::size_t n, double tau) {
  for (std::size_t i = 0; i < n; ++i) a[i] = soft_threshold_one(a[i], tau);
}

inline void soft_threshold_batch(double* a, std::size_t n, std::size_t batch,
                                 const double* tau) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < batch; ++b) {
      a[i * batch + b] = soft_threshold_one(a[i * batch + b], tau[b]);
    }
  }
}

inline void momentum(const double* a, const double* a_prev, double* z, double beta,
                     std::size_t n, double* delta_sq, double* scale_sq) {
  double acc_d[4] = {0.0, 0.0, 0.0, 0.0};
  double acc_s[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - a_prev[i];
    acc_d[i & 3] += d * d;
    acc_s[i & 3] += a[i] * a[i];
    z[i] = a[i] + beta * d;
  }
  *delta_sq = reduce_lanes(acc_d);
  *scale_sq = reduce_lanes(acc_s);
}

/// Per-window momentum over the interleaved layout.  Window b's lane-l
/// accumulator takes its elements i ≡ l (mod 4) — the same partition the
/// single-window kernel uses, which is what makes batch widths agree.
inline void momentum_batch_window(const double* a, const double* a_prev, double* z,
                                  double beta, std::size_t n, std::size_t batch,
                                  std::size_t b, double* delta_sq, double* scale_sq) {
  double acc_d[4] = {0.0, 0.0, 0.0, 0.0};
  double acc_s[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i * batch + b;
    const double d = a[j] - a_prev[j];
    acc_d[i & 3] += d * d;
    acc_s[i & 3] += a[j] * a[j];
    z[j] = a[j] + beta * d;
  }
  delta_sq[b] = reduce_lanes(acc_d);
  scale_sq[b] = reduce_lanes(acc_s);
}

inline void momentum_batch(const double* a, const double* a_prev, double* z, double beta,
                           std::size_t n, std::size_t batch, double* delta_sq,
                           double* scale_sq) {
  for (std::size_t b = 0; b < batch; ++b) {
    momentum_batch_window(a, a_prev, z, beta, n, batch, b, delta_sq, scale_sq);
  }
}

/// One plan output, summed sequentially over its taps (including pads).
inline double spmv_output(const SpmvPlan& plan, const double* x, std::size_t block,
                          std::size_t lane) {
  double acc = 0.0;
  for (std::uint32_t g = plan.block_tap_start[block]; g < plan.block_tap_start[block + 1];
       ++g) {
    const std::size_t t = static_cast<std::size_t>(g) * SpmvPlan::kLanes + lane;
    acc += plan.sgn[t] * x[plan.idx[t]];
  }
  return acc;
}

inline void spmv(const SpmvPlan& plan, const double* x, double* y) {
  for (std::size_t o = 0; o < plan.num_outputs; ++o) {
    y[o] = spmv_output(plan, x, o / SpmvPlan::kLanes, o % SpmvPlan::kLanes);
  }
}

/// One plan output across an interleaved batch slab, same tap order.
inline void spmv_output_batch(const SpmvPlan& plan, const double* x, std::size_t batch,
                              std::size_t o, double* y) {
  const std::size_t block = o / SpmvPlan::kLanes;
  const std::size_t lane = o % SpmvPlan::kLanes;
  for (std::size_t b = 0; b < batch; ++b) y[o * batch + b] = 0.0;
  for (std::uint32_t g = plan.block_tap_start[block]; g < plan.block_tap_start[block + 1];
       ++g) {
    const std::size_t t = static_cast<std::size_t>(g) * SpmvPlan::kLanes + lane;
    const double s = plan.sgn[t];
    const double* src = x + static_cast<std::size_t>(plan.idx[t]) * batch;
    double* dst = y + o * batch;
    for (std::size_t b = 0; b < batch; ++b) dst[b] = dst[b] + s * src[b];
  }
}

inline void spmv_batch(const SpmvPlan& plan, const double* x, std::size_t batch,
                       double* y) {
  for (std::size_t o = 0; o < plan.num_outputs; ++o) {
    spmv_output_batch(plan, x, batch, o, y);
  }
}

// Daubechies-4 orthonormal filter pair (two vanishing moments).
inline constexpr double kDb4Lo[4] = {0.48296291314453416, 0.83651630373780794,
                                     0.22414386804201339, -0.12940952255126037};
inline constexpr double kDb4Hi[4] = {-0.12940952255126037, -0.22414386804201339,
                                     0.83651630373780794, -0.48296291314453416};

/// Canonical pairwise tree for one forward output pair.
inline void dwt_output(double x0, double x1, double x2, double x3, double* a, double* d) {
  *a = (kDb4Lo[0] * x0 + kDb4Lo[1] * x1) + (kDb4Lo[2] * x2 + kDb4Lo[3] * x3);
  *d = (kDb4Hi[0] * x0 + kDb4Hi[1] * x1) + (kDb4Hi[2] * x2 + kDb4Hi[3] * x3);
}

inline void dwt_step(const double* x, std::size_t n, double* approx, double* detail) {
  const std::size_t half = n / 2;
  if (half == 0) return;
  // Only the last output wraps (taps 2k..2k+3 with k = half-1 reach n+1):
  // the main loop runs modulo-free.
  for (std::size_t k = 0; k + 1 < half; ++k) {
    dwt_output(x[2 * k], x[2 * k + 1], x[2 * k + 2], x[2 * k + 3], &approx[k], &detail[k]);
  }
  const std::size_t k = half - 1;
  dwt_output(x[(2 * k) % n], x[(2 * k + 1) % n], x[(2 * k + 2) % n], x[(2 * k + 3) % n],
             &approx[k], &detail[k]);
}

/// Canonical pairwise tree for one inverse output pair: output 2k uses
/// filter taps (0, 2), output 2k+1 taps (1, 3), both drawing on
/// coefficients k and k⁻ = (k - 1) mod half.
inline void idwt_outputs(double ak, double dk, double akm, double dkm, double* even,
                         double* odd) {
  *even = (kDb4Lo[0] * ak + kDb4Hi[0] * dk) + (kDb4Lo[2] * akm + kDb4Hi[2] * dkm);
  *odd = (kDb4Lo[1] * ak + kDb4Hi[1] * dk) + (kDb4Lo[3] * akm + kDb4Hi[3] * dkm);
}

inline void idwt_step(const double* approx, const double* detail, std::size_t half,
                      double* x) {
  if (half == 0) return;
  // Only k = 0 wraps (k⁻ = half-1); the main loop uses k⁻ = k - 1 directly.
  idwt_outputs(approx[0], detail[0], approx[half - 1], detail[half - 1], &x[0], &x[1]);
  for (std::size_t k = 1; k < half; ++k) {
    idwt_outputs(approx[k], detail[k], approx[k - 1], detail[k - 1], &x[2 * k],
                 &x[2 * k + 1]);
  }
}

inline void dwt_step_batch(const double* x, std::size_t n, std::size_t batch,
                           double* approx, double* detail) {
  const std::size_t half = n / 2;
  for (std::size_t k = 0; k < half; ++k) {
    const double* x0 = x + ((2 * k) % n) * batch;
    const double* x1 = x + ((2 * k + 1) % n) * batch;
    const double* x2 = x + ((2 * k + 2) % n) * batch;
    const double* x3 = x + ((2 * k + 3) % n) * batch;
    for (std::size_t b = 0; b < batch; ++b) {
      dwt_output(x0[b], x1[b], x2[b], x3[b], &approx[k * batch + b],
                 &detail[k * batch + b]);
    }
  }
}

inline void idwt_step_batch(const double* approx, const double* detail, std::size_t half,
                            std::size_t batch, double* x) {
  for (std::size_t k = 0; k < half; ++k) {
    const std::size_t km = (k + half - 1) % half;
    for (std::size_t b = 0; b < batch; ++b) {
      idwt_outputs(approx[k * batch + b], detail[k * batch + b], approx[km * batch + b],
                   detail[km * batch + b], &x[(2 * k) * batch + b],
                   &x[(2 * k + 1) * batch + b]);
    }
  }
}

}  // namespace wbsn::kern::ref
