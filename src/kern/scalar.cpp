// Portable scalar backend: thin wrappers over the canonical reference
// implementations (scalar_ref.hpp), which define the bit-exact semantics
// every backend must reproduce.
#include "kern/backend.hpp"
#include "kern/scalar_ref.hpp"

namespace wbsn::kern {
namespace {

constexpr Ops kScalarOps = {
    "scalar",
    ref::dot,
    ref::nrm2_sq,
    ref::axpy,
    ref::xpby,
    ref::grad_step,
    ref::soft_threshold,
    ref::soft_threshold_batch,
    ref::momentum,
    ref::momentum_batch,
    ref::spmv,
    ref::spmv_batch,
    ref::dwt_step,
    ref::idwt_step,
    ref::dwt_step_batch,
    ref::idwt_step_batch,
};

}  // namespace

const Ops* scalar_ops() { return &kScalarOps; }

}  // namespace wbsn::kern
