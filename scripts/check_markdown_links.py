#!/usr/bin/env python3
"""Markdown link checker for the docs tree — the docs-gate CI check.

Scans the given markdown files (default: README.md and docs/*.md) for
inline links and images, and fails if any *repo-relative* target is
broken:

  * relative file links must point at an existing file or directory
    (resolved against the linking file's directory);
  * fragment links (``file.md#anchor`` or ``#anchor``) must match a
    heading in the target file, using GitHub's slug rules (lowercase,
    spaces to dashes, punctuation stripped, de-duplicated with -1/-2…);
  * bare ``#anchor`` links resolve against the linking file itself.

External links (http/https/mailto) are NOT fetched — CI must not flake
on the network — they are only syntax-checked.  Code spans and fenced
code blocks are ignored, so CLI examples like ``--flag [a](b)`` can't
false-positive.

Only the standard library is used.  Exit status: 0 clean, 1 broken
links (each printed as file:line), 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:…


def github_slug(text: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation,
    spaces to dashes."""
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_anchors(path: pathlib.Path) -> set[str]:
    """All anchor slugs a markdown file exposes, with GitHub's -N
    de-duplication for repeated headings."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path: pathlib.Path):
    """Yield (line_number, target) for every inline link outside code."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = re.sub(r"`[^`]*`", "", line)  # drop inline code spans
        for m in INLINE_LINK.finditer(stripped):
            yield lineno, m.group(1)


def check_file(path: pathlib.Path, repo_root: pathlib.Path,
               anchor_cache: dict[pathlib.Path, set[str]]) -> list[str]:
    errors: list[str] = []
    for lineno, target in iter_links(path):
        if EXTERNAL.match(target):
            continue  # external — syntax-checked by the regex match itself
        fragment = ""
        if "#" in target:
            target, fragment = target.split("#", 1)
        dest = path if not target else (path.parent / target).resolve()
        if not dest.exists():
            errors.append(f"{path}:{lineno}: broken link -> {target}")
            continue
        if fragment and dest.is_file() and dest.suffix.lower() == ".md":
            if dest not in anchor_cache:
                anchor_cache[dest] = heading_anchors(dest)
            if fragment.lower() not in anchor_cache[dest]:
                rel = dest.relative_to(repo_root) if dest.is_relative_to(repo_root) else dest
                errors.append(
                    f"{path}:{lineno}: missing anchor #{fragment} in {rel}"
                )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", type=pathlib.Path,
        help="markdown files to check (default: README.md docs/*.md)")
    parser.add_argument(
        "--root", type=pathlib.Path, default=pathlib.Path.cwd(),
        help="repository root (default: cwd)")
    args = parser.parse_args()

    root = args.root.resolve()
    files = args.files or sorted(
        [root / "README.md", *(root / "docs").glob("*.md")]
    )
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"no such file: {f}", file=sys.stderr)
        return 2

    anchor_cache: dict[pathlib.Path, set[str]] = {}
    errors: list[str] = []
    checked = 0
    for f in files:
        errors.extend(check_file(f.resolve(), root, anchor_cache))
        checked += 1
    for e in errors:
        print(e)
    print(f"checked {checked} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
