#!/usr/bin/env python3
"""Benchmark-trajectory gate: run the perf suite, record it, compare it.

Runs the four steady benchmarks —

  * micro_kernels (google-benchmark, JSON output, median of N repetitions)
  * host_throughput --poisson (streaming fabric; its --json metrics file)
  * host_throughput --adaptive (closed-loop degrade drill: shedding-only
    baseline vs degrade-don't-drop under calibrated 2x overload)
  * net_loopback --pipeline (wire v2 batched submits vs the v1 per-window
    path over real loopback TCP; its --json metrics file)

— merges them into one BENCH_results.json (the CI artifact, one point of
the performance trajectory), and compares throughput metrics against the
committed baseline (bench/BENCH_baseline.json).  The streaming
throughput (windows/second over a multi-second Poisson run) gates at
--tolerance; the micro-kernel rates gate at the looser --micro-tolerance
because nanosecond-scale benches jitter 10-20% run-to-run on shared
runners even as medians of repetitions.  Latency and allocation metrics
ride along informationally (CI runners are too noisy to gate on absolute
times, so only relative throughput is enforced).

The net_loopback comparison carries a hard floor: pipelined v2 submit
throughput must beat the v1 per-window path by NET_LOOPBACK_SPEEDUP_FLOOR.
Because the two phases race the host scheduler on a shared-core runner,
the invocation is retried (up to NET_LOOPBACK_ATTEMPTS) and the best
attempt is what gates — but bit-exactness is never retried: one corrupt
attempt fails the whole run.

The adaptive drill gates the same way: goodput under overload must beat
the shedding-only baseline by ADAPTIVE_SPEEDUP_FLOOR (retried, best
attempt), the degraded mean SNR must sit within ADAPTIVE_SNR_MARGIN_DB
of the full-iteration Figure-5 point at the degraded CR, and the
correctness bits — off-policy bit-exactness, the per-tier re-solve
audit, and zero urgent degradations — fail immediately on any attempt,
never retried.

Only the standard library is used.  Typical invocations:

  python3 scripts/bench_trajectory.py --build-dir build          # gate
  python3 scripts/bench_trajectory.py --build-dir build \
      --write-baseline                                           # refresh

The tolerance can also be set via WBSN_BENCH_TOLERANCE (fraction, e.g.
0.10).  Baseline refreshes should come from the same class of machine
that gates — in CI, rerun the job with --write-baseline and commit the
result.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

HOST_THROUGHPUT_ARGS = [
    "8", "12", "50", "--poisson", "400", "--threads", "2", "--shards", "2",
    "--batch", "0", "--pool",
]
NET_LOOPBACK_ARGS = [
    "16", "24", "75", "--shards", "1", "--threads", "1",
    "--pipeline", "8", "--batch-frames", "16", "--repeat", "5",
]
NET_LOOPBACK_ATTEMPTS = 3
NET_LOOPBACK_SPEEDUP_FLOOR = 3.0
HOST_ADAPTIVE_ARGS = ["16", "24", "50", "--adaptive", "--threads", "2"]
HOST_ADAPTIVE_ATTEMPTS = 3
ADAPTIVE_SPEEDUP_FLOOR = 1.3
# The capped degraded tier gives up some convergence relative to the
# full-iteration Figure-5 point at the same CR (measured ~2.1-2.3 dB on
# this shape); the margin absorbs that plus window-subset variance
# (which windows demote depends on arrival timing).
ADAPTIVE_SNR_MARGIN_DB = 3.5
MICRO_REPETITIONS = 3

# Gated metrics: higher is better, relative to baseline.
GATED_HOST_METRICS = ["throughput_win_per_s"]


def run_micro(build_dir, repetitions):
    """micro_kernels -> {benchmark_name: items_per_second (median)}."""
    binary = os.path.join(build_dir, "bench", "micro_kernels")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        subprocess.run(
            [
                binary,
                f"--benchmark_repetitions={repetitions}",
                "--benchmark_report_aggregates_only=true",
                f"--benchmark_out={out_path}",
                "--benchmark_out_format=json",
            ],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(out_path) as f:
            raw = json.load(f)
    finally:
        os.unlink(out_path)

    micro = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("aggregate_name") != "median":
            continue
        name = bench["run_name"]
        entry = {"real_time_ns": bench.get("real_time")}
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        if "allocs_per_window" in bench:
            entry["allocs_per_window"] = bench["allocs_per_window"]
        micro[name] = entry
    if not micro:
        raise SystemExit("micro_kernels produced no median aggregates")
    return micro


def run_host_throughput(build_dir):
    """host_throughput --poisson --json -> its flat metrics object."""
    binary = os.path.join(build_dir, "bench", "host_throughput")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        proc = subprocess.run(
            [binary, *HOST_THROUGHPUT_ARGS, "--json", out_path],
            stdout=subprocess.DEVNULL,
        )
        if proc.returncode != 0:
            raise SystemExit(
                f"host_throughput exited {proc.returncode} "
                "(bit-exactness or argument failure)")
        with open(out_path) as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def run_host_adaptive(build_dir):
    """host_throughput --adaptive --json -> best attempt's metrics object.

    Goodput speedup races the scheduler, so whole invocations are
    retried and the best attempt gates.  The correctness bits (off-policy
    bit-exactness, the tier re-solve audit, urgent-lane cleanliness) are
    not timing — any failed attempt fails the run, never retried.
    """
    binary = os.path.join(build_dir, "bench", "host_throughput")
    best = None
    for attempt in range(1, HOST_ADAPTIVE_ATTEMPTS + 1):
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            out_path = tmp.name
        try:
            subprocess.run([binary, *HOST_ADAPTIVE_ARGS, "--json", out_path],
                           stdout=subprocess.DEVNULL)
            try:
                with open(out_path) as f:
                    metrics = json.load(f)
            except (OSError, json.JSONDecodeError):
                raise SystemExit(
                    "host_throughput --adaptive produced no metrics JSON")
        finally:
            os.unlink(out_path)
        for bit in ("off_policy_bit_exact", "tier_audit_bit_exact",
                    "urgent_lane_clean"):
            if metrics.get(bit) != 1:
                raise SystemExit(
                    f"host_throughput --adaptive: {bit} failed "
                    "(not retryable)")
        if metrics.get("adaptive_urgent_degraded", 0) != 0:
            raise SystemExit(
                "host_throughput --adaptive: an urgent window was degraded "
                "(not retryable)")
        if best is None or (metrics.get("adaptive_speedup", 0)
                            > best.get("adaptive_speedup", 0)):
            best = metrics
        print(f"#   attempt {attempt}: adaptive speedup "
              f"{metrics.get('adaptive_speedup', 0):.2f}x, degraded SNR "
              f"{metrics.get('degraded_mean_snr_db', 0):.2f} dB")
        if best.get("adaptive_speedup", 0) >= ADAPTIVE_SPEEDUP_FLOOR:
            break
    best["attempts"] = attempt
    return best


def run_net_loopback(build_dir):
    """net_loopback --pipeline --json -> best attempt's metrics object.

    The binary itself is best-of-N on the submit clock; this retries whole
    invocations because a shared-core runner can steal the CPU for an
    entire phase.  Every attempt must be bit-exact — correctness failures
    are not retried.
    """
    binary = os.path.join(build_dir, "bench", "net_loopback")
    best = None
    for attempt in range(1, NET_LOOPBACK_ATTEMPTS + 1):
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            out_path = tmp.name
        try:
            subprocess.run([binary, *NET_LOOPBACK_ARGS, "--json", out_path],
                           stdout=subprocess.DEVNULL)
            try:
                with open(out_path) as f:
                    metrics = json.load(f)
            except (OSError, json.JSONDecodeError):
                raise SystemExit("net_loopback produced no metrics JSON")
        finally:
            os.unlink(out_path)
        if metrics.get("bit_exact") != 1:
            raise SystemExit(
                "net_loopback: pipelined phase was not bit-exact against the "
                "serial reference (not retryable)")
        if best is None or metrics.get("speedup", 0) > best.get("speedup", 0):
            best = metrics
        print(f"#   attempt {attempt}: speedup {metrics.get('speedup', 0):.2f}x")
        if best.get("speedup", 0) >= NET_LOOPBACK_SPEEDUP_FLOOR:
            break
    best["attempts"] = attempt
    return best


def compare(results, baseline, tolerance, micro_tolerance):
    """Returns a list of failure strings (empty = gate passes)."""
    failures = []

    def check(label, new, old, floor_tolerance):
        if old is None or old <= 0 or new is None:
            return
        ratio = new / old
        line = f"{label}: {new:.1f} vs baseline {old:.1f} ({ratio:.2%})"
        if ratio < 1.0 - floor_tolerance:
            failures.append(line + f"  < {1.0 - floor_tolerance:.2%} floor")
        else:
            print(f"  ok    {line}")

    for name, base_entry in sorted(baseline.get("micro", {}).items()):
        new_entry = results["micro"].get(name)
        if new_entry is None:
            failures.append(f"{name}: present in baseline, missing from run")
            continue
        check(f"{name}/items_per_second",
              new_entry.get("items_per_second"),
              base_entry.get("items_per_second"),
              micro_tolerance)

    base_host = baseline.get("host_throughput_poisson", {})
    new_host = results.get("host_throughput_poisson", {})
    for metric in GATED_HOST_METRICS:
        check(f"host_throughput/{metric}", new_host.get(metric),
              base_host.get(metric), tolerance)

    if new_host.get("bit_exact") == 0:
        failures.append("host_throughput: bit-exactness check failed")

    base_adaptive = baseline.get("host_adaptive", {})
    new_adaptive = results.get("host_adaptive", {})
    check("host_adaptive/goodput_win_per_s",
          new_adaptive.get("adaptive_goodput_win_per_s"),
          base_adaptive.get("adaptive_goodput_win_per_s"),
          micro_tolerance)
    adaptive_speedup = new_adaptive.get("adaptive_speedup")
    if (adaptive_speedup is not None
            and adaptive_speedup < ADAPTIVE_SPEEDUP_FLOOR):
        failures.append(
            f"host_adaptive: goodput speedup {adaptive_speedup:.2f}x "
            f"< {ADAPTIVE_SPEEDUP_FLOOR:.1f}x floor")
    degraded_snr = new_adaptive.get("degraded_mean_snr_db")
    fig5_floor = new_adaptive.get("fig5_floor_snr_db")
    if degraded_snr is not None and fig5_floor is not None:
        floor = fig5_floor - ADAPTIVE_SNR_MARGIN_DB
        line = (f"host_adaptive: degraded SNR {degraded_snr:.2f} dB vs "
                f"Fig-5 floor {fig5_floor:.2f} - {ADAPTIVE_SNR_MARGIN_DB} dB")
        if degraded_snr < floor:
            failures.append(line)
        else:
            print(f"  ok    {line}")
    if new_adaptive.get("adaptive_urgent_degraded", 0) != 0:
        failures.append("host_adaptive: an urgent window was degraded")
    for bit in ("off_policy_bit_exact", "tier_audit_bit_exact",
                "urgent_lane_clean"):
        if new_adaptive.get(bit) == 0:
            failures.append(f"host_adaptive: {bit} failed")

    base_net = baseline.get("net_loopback_pipeline", {})
    new_net = results.get("net_loopback_pipeline", {})
    check("net_loopback/v2_win_per_s", new_net.get("v2_win_per_s"),
          base_net.get("v2_win_per_s"), micro_tolerance)
    speedup = new_net.get("speedup")
    if speedup is not None and speedup < NET_LOOPBACK_SPEEDUP_FLOOR:
        failures.append(
            f"net_loopback: pipelined speedup {speedup:.2f}x "
            f"< {NET_LOOPBACK_SPEEDUP_FLOOR:.1f}x floor")
    if new_net.get("bit_exact") == 0:
        failures.append("net_loopback: bit-exactness check failed")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--output", default="BENCH_results.json")
    parser.add_argument("--baseline",
                        default=os.path.join("bench", "BENCH_baseline.json"))
    parser.add_argument("--write-baseline", action="store_true",
                        help="record this run as the committed baseline "
                             "instead of gating against it")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("WBSN_BENCH_TOLERANCE",
                                                     "0.10")),
                        help="allowed fractional streaming-throughput drop "
                             "(default 0.10, env WBSN_BENCH_TOLERANCE)")
    parser.add_argument("--micro-tolerance", type=float,
                        default=float(os.environ.get(
                            "WBSN_BENCH_MICRO_TOLERANCE", "0.30")),
                        help="allowed fractional micro-kernel rate drop "
                             "(default 0.30 — ns-scale benches jitter "
                             "hard on shared runners; env "
                             "WBSN_BENCH_MICRO_TOLERANCE)")
    parser.add_argument("--repetitions", type=int, default=MICRO_REPETITIONS)
    args = parser.parse_args()

    print(f"# micro_kernels ({args.repetitions} repetitions, median)")
    micro = run_micro(args.build_dir, args.repetitions)
    print(f"#   {len(micro)} benchmarks")
    print("# host_throughput " + " ".join(HOST_THROUGHPUT_ARGS))
    host = run_host_throughput(args.build_dir)
    print("# host_throughput " + " ".join(HOST_ADAPTIVE_ARGS))
    adaptive = run_host_adaptive(args.build_dir)
    print("# net_loopback " + " ".join(NET_LOOPBACK_ARGS))
    net = run_net_loopback(args.build_dir)

    results = {
        "schema": 1,
        "micro": micro,
        "host_throughput_poisson": host,
        "host_adaptive": adaptive,
        "net_loopback_pipeline": net,
    }
    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"# results -> {args.output}")

    if args.write_baseline:
        with open(args.baseline, "w") as f:
            json.dump(results, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"# baseline -> {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        raise SystemExit(f"no baseline at {args.baseline}; run with "
                         "--write-baseline once and commit it")
    with open(args.baseline) as f:
        baseline = json.load(f)

    print(f"# gate: streaming floor {1.0 - args.tolerance:.2%}, "
          f"micro floor {1.0 - args.micro_tolerance:.2%} of baseline")
    failures = compare(results, baseline, args.tolerance,
                       args.micro_tolerance)
    if failures:
        print("\nbench-trajectory REGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL  {failure}", file=sys.stderr)
        return 1
    print("bench-trajectory: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
