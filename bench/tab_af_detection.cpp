// Section V text reproduction: embedded atrial-fibrillation detection.
//
// Paper's result: the low-complexity fuzzy AF detector reaches 96 %
// sensitivity and 93 % specificity in real time on the node.  This bench
// trains the detector on one synthetic cohort and evaluates on a held-out
// one, with realistic (delineator-produced) P-wave detections.
#include <cstdio>

#include "cls/af_detect.hpp"
#include "delin/pipeline.hpp"
#include "energy/mcu.hpp"
#include "sig/adc.hpp"
#include "sig/dataset.hpp"

namespace {

std::vector<wbsn::sig::BeatAnnotation> delineate_with_truth(const wbsn::sig::Record& rec) {
  using namespace wbsn;
  const auto leads = sig::quantize_leads(rec.leads, sig::AdcConfig{});
  delin::PipelineConfig cfg;
  cfg.fs = rec.fs;
  auto result = delin::run_delineation_pipeline(leads, cfg);
  for (auto& det : result.beats) {
    const sig::BeatAnnotation* nearest = nullptr;
    std::int64_t best = 1 << 30;
    for (const auto& truth : rec.beats) {
      const std::int64_t d = std::abs(truth.r_peak - det.r_peak);
      if (d < best) {
        best = d;
        nearest = &truth;
      }
    }
    if (nearest != nullptr && best < static_cast<std::int64_t>(0.15 * rec.fs)) {
      det.label = nearest->label;
    }
  }
  return result.beats;
}

}  // namespace

int main() {
  using namespace wbsn;

  // Training cohort.
  sig::DatasetSpec train_spec;
  train_spec.num_records = 10;
  train_spec.beats_per_record = 160;
  train_spec.noise = sig::NoiseLevel::kLow;
  train_spec.seed = 11;
  const auto train_records = sig::make_af_dataset(train_spec);
  std::vector<std::vector<sig::BeatAnnotation>> training;
  for (const auto& rec : train_records) training.push_back(delineate_with_truth(rec));

  cls::AfDetector detector;
  detector.train(training, 250.0);

  // Held-out evaluation cohort.
  sig::DatasetSpec eval_spec = train_spec;
  eval_spec.num_records = 14;
  eval_spec.seed = 22;
  const auto eval_records = sig::make_af_dataset(eval_spec);

  cls::AfReport report;
  dsp::OpCount ops;
  double seconds = 0.0;
  for (const auto& rec : eval_records) {
    const auto beats = delineate_with_truth(rec);
    for (const auto& w : detector.detect(beats, rec.fs, &ops)) report.add(w);
    seconds += rec.duration_s();
  }

  std::printf("== AF detection (paper: 96 %% sensitivity, 93 %% specificity) ==\n");
  std::printf("windows: %d AF / %d non-AF\n", report.tp + report.fn,
              report.tn + report.fp);
  std::printf("sensitivity : %.1f %%\n", 100.0 * report.sensitivity());
  std::printf("specificity : %.1f %%\n", 100.0 * report.specificity());

  const energy::McuModel mcu;
  std::printf("detector duty cycle at %.0f MHz: %.4f %% (real-time with huge margin)\n",
              mcu.f_hz / 1e6, 100.0 * mcu.duty_cycle(ops, seconds));
  return (report.sensitivity() > 0.9 && report.specificity() > 0.9) ? 0 : 1;
}
