// Figure 7 reproduction: average power decomposition of the synchronized
// multi-core (MC) system vs an equivalent single-core (SC) one for the
// three application kernels — 3L-MF (morphological filtering of 3 leads),
// 3L-MMD (morphological delineation) and RP-CLASS (random-projection
// classification).
//
// Paper's result: the MC configuration reduces total power by up to ~40 %,
// with the instruction-memory share collapsing thanks to broadcast fetch
// merging and the core share shrinking through voltage scaling.
//
// The kernel workloads are not hand-estimated: each profile is derived
// from the *measured* OpCount of the corresponding kernel in this library
// running over one acquisition window of a synthetic 3-lead record.
#include <cstdio>

#include "cls/beat_classifier.hpp"
#include "delin/mmd.hpp"
#include "delin/qrs_detect.hpp"
#include "dsp/morphology.hpp"
#include "mcsim/power.hpp"
#include "sig/adc.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  // One 2 s window of a 3-lead record, per-lead integer streams.
  sig::SynthConfig scfg;
  scfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 10}};
  scfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(7);
  const auto rec = synthesize_ecg(scfg, rng);
  const auto counts = sig::quantize_leads(rec.leads, sig::AdcConfig{});
  const std::size_t window = 512;
  const std::vector<std::int32_t> lead0(counts[0].begin(),
                                        counts[0].begin() + window);

  // --- Measure per-lead op counts of the three kernels. ---
  // 3L-MF: morphological conditioning of one lead.
  const auto mf = dsp::morphological_filter(lead0);

  // 3L-MMD: delineation of the filtered lead (QRS detect + MMD).
  auto qrs = delin::detect_qrs(mf.filtered);
  const auto mmd = delin::delineate_mmd(mf.filtered, qrs.r_peaks);
  const dsp::OpCount mmd_ops = qrs.ops + mmd.ops;

  // RP-CLASS: classify each beat of the window.
  cls::BeatClassifier classifier;  // Untrained weights suffice for op counts.
  std::vector<cls::Sample> dummy;
  for (int c = 0; c < 3; ++c) {
    cls::Sample s;
    s.features.assign(classifier.config().projected_dims + 2, static_cast<double>(c));
    s.label = c;
    dummy.push_back(s);
    dummy.push_back(s);
  }
  // A minimal training pass initializes the fuzzy tables.
  cls::FuzzyClassifier* fz = nullptr;
  (void)fz;
  dsp::OpCount class_ops;
  {
    std::vector<cls::BeatClassifier::TrainingRecord> training = {
        {counts[0], rec.beats}};
    classifier.train(training);
    double rr_mean = 0.8;
    for (const auto& beat : mmd.beats) {
      classifier.classify_linearized(lead0, beat.r_peak, rr_mean, rr_mean, rr_mean,
                                     &class_ops);
    }
  }

  struct KernelRow {
    const char* name;
    dsp::OpCount ops;
    double divergence;  // How branchy/data-dependent the kernel is.
  };
  const KernelRow kernels[] = {
      {"3L-MF", mf.ops, 0.25},      // Wedge maintenance branches on data.
      {"3L-MMD", mmd_ops, 0.15},    // Threshold scans diverge at boundaries.
      {"RP-CLASS", class_ops, 0.04},  // Near straight-line adds.
  };

  mcsim::PowerConfig pcfg;
  mcsim::MachineConfig machine;

  std::printf("== Figure 7: SC vs MC average power decomposition [uW] ==\n");
  std::printf("%-10s %-4s %8s %8s %8s %8s %8s   f [MHz] Vdd\n", "Kernel", "Cfg", "Cores",
              "I-mem", "D-mem", "Leak", "Total");
  bool all_mc_better = true;
  for (const auto& k : kernels) {
    const auto profile = mcsim::profile_from_ops(k.name, k.ops, k.divergence);
    const auto cmp = mcsim::compare_sc_mc(profile, 3, machine, pcfg, 42);
    for (const auto* p : {&cmp.sc, &cmp.mc}) {
      std::printf("%-10s %-4s %8.1f %8.1f %8.1f %8.1f %8.1f   %5.2f  %.1f\n", k.name,
                  p->config.c_str(), 1e6 * p->cores_w, 1e6 * p->imem_w, 1e6 * p->dmem_w,
                  1e6 * p->leakage_w, 1e6 * p->total_w(), p->f_hz / 1e6, p->vdd);
    }
    std::printf("%-10s reduction: %.1f %% (paper: up to ~40 %%)\n", k.name,
                cmp.reduction_percent());
    all_mc_better = all_mc_better && cmp.mc.total_w() < cmp.sc.total_w();
  }
  return all_mc_better ? 0 : 1;
}
