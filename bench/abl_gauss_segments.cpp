// Ablation 2 (DESIGN.md): Gaussian-linearization segment count.
//
// Section IV-A: "a four-segments linearization is shown to achieve
// close-to-optimal results" for the heartbeat classifier.  Sweep the
// segment count of the chord approximation and compare classifier accuracy
// against the exact-exp() evaluator.
#include <cstdio>

#include "cls/beat_classifier.hpp"
#include "dsp/gauss_approx.hpp"
#include "sig/adc.hpp"
#include "sig/dataset.hpp"

namespace {

struct Prepared {
  std::vector<std::vector<std::int32_t>> signals;
  std::vector<wbsn::sig::Record> records;
};

Prepared prepare(int num_records, std::uint64_t seed) {
  using namespace wbsn;
  sig::DatasetSpec spec;
  spec.num_records = num_records;
  spec.beats_per_record = 150;
  spec.noise = sig::NoiseLevel::kLow;
  spec.pvc_probability = 0.10;
  spec.apc_probability = 0.08;
  spec.seed = seed;
  Prepared p;
  p.records = make_arrhythmia_dataset(spec);
  for (const auto& rec : p.records) {
    p.signals.push_back(sig::quantize(rec.leads[0], sig::AdcConfig{}));
  }
  return p;
}

double accuracy(const wbsn::cls::BeatClassifier& clf, const Prepared& p, bool linearized) {
  using namespace wbsn;
  int correct = 0;
  int total = 0;
  for (std::size_t i = 0; i < p.records.size(); ++i) {
    const auto& beats = p.records[i].beats;
    double rr_mean = 0.8;
    for (std::size_t b = 1; b + 1 < beats.size(); ++b) {
      const double rr_prev =
          static_cast<double>(beats[b].r_peak - beats[b - 1].r_peak) / p.records[i].fs;
      const double rr_next =
          static_cast<double>(beats[b + 1].r_peak - beats[b].r_peak) / p.records[i].fs;
      rr_mean += 0.125 * (rr_prev - rr_mean);
      const auto got = linearized
                           ? clf.classify_linearized(p.signals[i], beats[b].r_peak,
                                                     rr_prev, rr_next, rr_mean)
                           : clf.classify(p.signals[i], beats[b].r_peak, rr_prev, rr_next,
                                          rr_mean);
      correct += got == cls::to_beat_label(beats[b].label);
      ++total;
    }
  }
  return static_cast<double>(correct) / total;
}

}  // namespace

int main() {
  using namespace wbsn;
  const auto train_data = prepare(6, 100);
  const auto test_data = prepare(4, 200);

  std::printf("== Ablation: Gaussian linearization segments ==\n");
  std::printf("%-10s %14s %16s\n", "segments", "accuracy [%]", "max |g err|");

  double exact_acc = 0.0;
  double acc4 = 0.0;
  for (int segments : {2, 4, 8, 16, 0}) {  // 0 = exact exp().
    cls::BeatClassifierConfig cfg;
    if (segments > 0) cfg.fuzzy.linear_segments = segments;
    cls::BeatClassifier clf(cfg);
    std::vector<cls::BeatClassifier::TrainingRecord> training;
    for (std::size_t i = 0; i < train_data.records.size(); ++i) {
      training.push_back({train_data.signals[i], train_data.records[i].beats});
    }
    clf.train(training);
    const double acc = accuracy(clf, test_data, segments > 0);
    if (segments == 0) {
      exact_acc = acc;
      std::printf("%-10s %14.2f %16s\n", "exact", 100.0 * acc, "-");
    } else {
      const dsp::PiecewiseGauss g(segments);
      std::printf("%-10d %14.2f %16.4f\n", segments, 100.0 * acc, g.max_abs_error());
      if (segments == 4) acc4 = acc;
    }
  }
  std::printf("\n4 segments within %.2f %% of the exact evaluator "
              "(paper: close-to-optimal).\n",
              100.0 * (exact_acc - acc4));
  return (exact_acc - acc4) < 0.02 ? 0 : 1;
}
