// google-benchmark micro-benchmarks of the node-side kernels: host-side
// throughput sanity checks (the energy claims use the OpCount model, not
// host timings, but regressions here catch algorithmic blow-ups).
#include <benchmark/benchmark.h>

#include "cls/random_projection.hpp"
#include "cs/sensing_matrix.hpp"
#include "dsp/morphology.hpp"
#include "dsp/sliding_minmax.hpp"
#include "dsp/wavelet.hpp"
#include "sig/adc.hpp"
#include "sig/ecg_synth.hpp"

namespace {

using namespace wbsn;

std::vector<std::int32_t> test_signal(std::size_t n) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 1 + static_cast<int>(n / 200)}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kModerate);
  sig::Rng rng(1);
  const auto rec = synthesize_ecg(cfg, rng);
  auto counts = sig::quantize(rec.leads[0], sig::AdcConfig{});
  counts.resize(n, 0);
  return counts;
}

void BM_SlidingMinMax(benchmark::State& state) {
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::sliding_min(x, 51));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SlidingMinMax)->Arg(512)->Arg(4096);

void BM_MorphologicalFilter(benchmark::State& state) {
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::morphological_filter(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MorphologicalFilter)->Arg(512)->Arg(4096);

void BM_SwtSpline(benchmark::State& state) {
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::swt_spline(x, 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwtSpline)->Arg(512)->Arg(4096);

void BM_DwtForward(benchmark::State& state) {
  const auto counts = test_signal(static_cast<std::size_t>(state.range(0)));
  std::vector<double> x(counts.begin(), counts.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::dwt_forward(x, 5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DwtForward)->Arg(512)->Arg(4096);

void BM_CsEncode(benchmark::State& state) {
  const auto x = test_signal(512);
  sig::Rng rng(2);
  const auto phi = cs::SensingMatrix::make_sparse_binary(
      static_cast<std::size_t>(state.range(0)), 512, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi.encode(x));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_CsEncode)->Arg(128)->Arg(256);

void BM_RandomProjection(benchmark::State& state) {
  const auto x = test_signal(180);
  sig::Rng rng(3);
  const auto m = cls::PackedTernaryMatrix::make_achlioptas(
      16, 180, static_cast<double>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.project(x));
  }
  state.SetItemsProcessed(state.iterations() * 180);
}
BENCHMARK(BM_RandomProjection)->Arg(1)->Arg(3)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
