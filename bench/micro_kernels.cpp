// google-benchmark micro-benchmarks, two families:
//
//  * node-side kernels: host-side throughput sanity checks (the energy
//    claims use the OpCount model, not host timings, but regressions here
//    catch algorithmic blow-ups);
//  * host-side reconstruction hot path: the kern-layer kernels
//    (apply/adjoint/DWT/FISTA) benchmarked per backend — benchmarks named
//    .../scalar and .../avx2 pin the dispatch, so the pair measures the
//    SIMD speedup directly — plus the streaming engine's submit/poll
//    round trip.  AVX2 variants report "AVX2 unavailable" on hosts
//    without it.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cls/random_projection.hpp"
#include "cs/fista.hpp"
#include "cs/sensing_matrix.hpp"
#include "dsp/morphology.hpp"
#include "dsp/sliding_minmax.hpp"
#include "dsp/wavelet.hpp"
#include "host/alloc_meter.hpp"
#include "host/payload_pool.hpp"
#include "host/reconstruction_engine.hpp"
#include "kern/backend.hpp"
#include "sig/adc.hpp"
#include "sig/ecg_synth.hpp"

namespace {

using namespace wbsn;

std::vector<std::int32_t> test_signal(std::size_t n) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 1 + static_cast<int>(n / 200)}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kModerate);
  sig::Rng rng(1);
  const auto rec = synthesize_ecg(cfg, rng);
  auto counts = sig::quantize(rec.leads[0], sig::AdcConfig{});
  counts.resize(n, 0);
  return counts;
}

void BM_SlidingMinMax(benchmark::State& state) {
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::sliding_min(x, 51));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SlidingMinMax)->Arg(512)->Arg(4096);

void BM_MorphologicalFilter(benchmark::State& state) {
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::morphological_filter(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MorphologicalFilter)->Arg(512)->Arg(4096);

void BM_SwtSpline(benchmark::State& state) {
  const auto x = test_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::swt_spline(x, 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwtSpline)->Arg(512)->Arg(4096);

void BM_DwtForward(benchmark::State& state) {
  const auto counts = test_signal(static_cast<std::size_t>(state.range(0)));
  std::vector<double> x(counts.begin(), counts.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::dwt_forward(x, 5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DwtForward)->Arg(512)->Arg(4096);

void BM_CsEncode(benchmark::State& state) {
  const auto x = test_signal(512);
  sig::Rng rng(2);
  const auto phi = cs::SensingMatrix::make_sparse_binary(
      static_cast<std::size_t>(state.range(0)), 512, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi.encode(x));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_CsEncode)->Arg(128)->Arg(256);

void BM_RandomProjection(benchmark::State& state) {
  const auto x = test_signal(180);
  sig::Rng rng(3);
  const auto m = cls::PackedTernaryMatrix::make_achlioptas(
      16, 180, static_cast<double>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.project(x));
  }
  state.SetItemsProcessed(state.iterations() * 180);
}
BENCHMARK(BM_RandomProjection)->Arg(1)->Arg(3)->Arg(8);

// --- kern-layer backends: scalar vs AVX2 -----------------------------------

/// Pins the requested backend for one benchmark run; restores the default
/// dispatch afterwards so unrelated benchmarks measure the production
/// configuration.
class BackendPin {
 public:
  BackendPin(benchmark::State& state, kern::Backend backend)
      : previous_(kern::active_backend()) {
    restore_ = kern::set_backend(backend);
    if (!restore_) state.SkipWithError("AVX2 unavailable on this host/build");
  }
  ~BackendPin() {
    if (restore_) kern::set_backend(previous_);
  }
  BackendPin(const BackendPin&) = delete;
  BackendPin& operator=(const BackendPin&) = delete;

 private:
  kern::Backend previous_;
  bool restore_ = false;
};

kern::Backend backend_of(const benchmark::State& state) {
  return state.range(0) == 0 ? kern::Backend::kScalar : kern::Backend::kAvx2;
}

constexpr std::size_t kWindow = 512;  ///< Paper window: ~2 s at 250 Hz.
const std::size_t kRowsCr50 = cs::rows_for_cr(50.0, kWindow);

cs::SensingMatrix bench_matrix() {
  sig::Rng rng(7);
  return cs::SensingMatrix::make_sparse_binary(kRowsCr50, kWindow, 4, rng);
}

std::vector<double> bench_window(std::uint64_t seed) {
  sig::Rng rng(seed);
  std::vector<double> x(kWindow);
  for (auto& v : x) v = rng.normal();
  return x;
}

void BM_KernApply(benchmark::State& state) {
  BackendPin pin(state, backend_of(state));
  const auto phi = bench_matrix();
  const auto x = bench_window(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi.apply(x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(phi.nonzeros()));
}
BENCHMARK(BM_KernApply)->ArgName("avx2")->Arg(0)->Arg(1);

void BM_KernApplyAdjoint(benchmark::State& state) {
  BackendPin pin(state, backend_of(state));
  const auto phi = bench_matrix();
  const auto y = bench_window(12);
  const std::vector<double> ym(y.begin(), y.begin() + kRowsCr50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi.apply_adjoint(ym));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(phi.nonzeros()));
}
BENCHMARK(BM_KernApplyAdjoint)->ArgName("avx2")->Arg(0)->Arg(1);

void BM_KernApplyBatch8(benchmark::State& state) {
  BackendPin pin(state, backend_of(state));
  const auto phi = bench_matrix();
  constexpr std::size_t kBatch = 8;
  std::vector<double> x(kWindow * kBatch);
  sig::Rng rng(13);
  for (auto& v : x) v = rng.normal();
  std::vector<double> y(kRowsCr50 * kBatch);
  for (auto _ : state) {
    phi.apply_batch(x, kBatch, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(phi.nonzeros() * kBatch));
}
BENCHMARK(BM_KernApplyBatch8)->ArgName("avx2")->Arg(0)->Arg(1);

void BM_KernDwtForward(benchmark::State& state) {
  BackendPin pin(state, backend_of(state));
  const auto x = bench_window(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::dwt_forward(x, 5));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kWindow));
}
BENCHMARK(BM_KernDwtForward)->ArgName("avx2")->Arg(0)->Arg(1);

void BM_KernDwtInverse(benchmark::State& state) {
  BackendPin pin(state, backend_of(state));
  const auto coeffs = dsp::dwt_forward(bench_window(15), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::dwt_inverse(coeffs, 5));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kWindow));
}
BENCHMARK(BM_KernDwtInverse)->ArgName("avx2")->Arg(0)->Arg(1);

/// Whole-solve view: one 512-sample window at CR 50 %, truncated solver
/// (enough iterations to exercise every kernel family in proportion).
void BM_KernFistaWindow(benchmark::State& state) {
  BackendPin pin(state, backend_of(state));
  const auto phi = bench_matrix();
  const auto y = phi.apply(bench_window(16));
  cs::FistaConfig cfg;
  cfg.max_iterations = 50;
  cfg.debias_iterations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs::fista_reconstruct(phi, y, cfg));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kWindow));
}
BENCHMARK(BM_KernFistaWindow)->ArgName("avx2")->Arg(0)->Arg(1);

// --- SLO tracker hot path ---------------------------------------------------

/// One full record cycle (submit -> complete -> retrieve): the per-window
/// accounting cost workers pay on top of every solve.  Latencies walk the
/// histogram's octaves so the bucket-index path is not branch-predicted
/// into irrelevance.
void BM_SloTrackerRecord(benchmark::State& state) {
  host::SloTracker tracker(host::SloConfig{.deadline_ms = 2048.0});
  double latency_ms = 0.25;
  for (auto _ : state) {
    tracker.on_submit();
    tracker.on_complete(latency_ms);
    tracker.on_retrieve();
    latency_ms = latency_ms < 4000.0 ? latency_ms * 1.618 : 0.25;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SloTrackerRecord);

/// Folding the full 320-bucket histogram into quantiles — the cost of one
/// monitoring read (fabric aggregation runs one merge+snapshot per shard).
void BM_SloTrackerSnapshot(benchmark::State& state) {
  host::SloTracker tracker(host::SloConfig{.deadline_ms = 2048.0});
  sig::Rng rng(21);
  for (int i = 0; i < 100000; ++i) {
    tracker.on_submit();
    // Log-uniform latencies from ~30 us to ~20 s populate every octave.
    tracker.on_complete(0.03 * std::pow(10.0, rng.uniform() * 5.8));
    tracker.on_retrieve();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SloTrackerSnapshot);

// --- streaming engine hot path ----------------------------------------------

/// submit -> poll round trip with a near-zero-cost solve: measures the
/// engine's per-window overhead (ticketing, matrix-cache hit, queue push,
/// SLO recording, completion publish) rather than FISTA itself.
void BM_EngineSubmitPoll(benchmark::State& state) {
  host::EngineConfig cfg;
  cfg.threads = 0;  // Solve inline: no cross-thread wakeup noise.
  cfg.fista.max_iterations = 1;
  cfg.fista.debias = false;
  host::ReconstructionEngine engine(cfg);

  host::CompressedWindow window;
  window.patient_id = 1;
  window.matrix_seed = 42;
  window.window_samples = 128;
  window.ones_per_column = 4;
  window.measurements = bench_window(17);
  window.measurements.resize(cs::rows_for_cr(50.0, window.window_samples));

  for (auto _ : state) {
    host::CompressedWindow copy = window;
    benchmark::DoNotOptimize(engine.try_submit(std::move(copy)));
    benchmark::DoNotOptimize(engine.poll());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineSubmitPoll);

/// Same round trip through the pooled hot path: window shells come from a
/// PayloadPool, the engine recycles their buffers after the solve, and the
/// poller recycles the result signal.  With -DWBSN_ALLOC_COUNTER=ON the
/// allocs_per_window counter reports the measured steady-state heap rate
/// (the alloc-gate asserts it is exactly zero in alloc_smoke).
void BM_EngineSubmitPollPooled(benchmark::State& state) {
  auto pool = std::make_shared<host::PayloadPool>();
  host::EngineConfig cfg;
  cfg.threads = 0;  // Solve inline: no cross-thread wakeup noise.
  cfg.fista.max_iterations = 1;
  cfg.fista.debias = false;
  cfg.payload_pool = pool;
  host::ReconstructionEngine engine(cfg);

  const std::vector<double> measurements = [] {
    auto m = bench_window(17);
    m.resize(cs::rows_for_cr(50.0, 128));
    return m;
  }();

  // One warm lap primes the pool, the matrix cache, and the solver arena
  // so the measured loop sees the steady state.
  const auto lap = [&] {
    host::CompressedWindow window = pool->acquire_window();
    window.patient_id = 1;
    window.matrix_seed = 42;
    window.window_samples = 128;
    window.ones_per_column = 4;
    window.measurements.assign(measurements.begin(), measurements.end());
    benchmark::DoNotOptimize(engine.try_submit(std::move(window)));
    auto result = engine.poll();
    benchmark::DoNotOptimize(result);
    if (result) pool->recycle(std::move(*result));
  };
  lap();

  const std::uint64_t allocs_before = host::alloc_count();
  for (auto _ : state) lap();
  const std::uint64_t allocs_after = host::alloc_count();

  state.SetItemsProcessed(state.iterations());
  if (host::alloc_counter_enabled() && state.iterations() > 0) {
    state.counters["allocs_per_window"] = benchmark::Counter(
        static_cast<double>(allocs_after - allocs_before) /
        static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_EngineSubmitPollPooled);

}  // namespace

BENCHMARK_MAIN();
