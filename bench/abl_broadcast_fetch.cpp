// Ablation 3 (DESIGN.md): broadcast instruction-fetch merging.
//
// Section IV-B credits the interconnect's merging of identical lockstep
// fetches for the instruction-memory energy reduction of the multi-core
// platform.  Compare MC power with and without merging (and against SC)
// across divergence levels.
#include <cstdio>

#include "mcsim/power.hpp"

int main() {
  using namespace wbsn::mcsim;

  KernelProfile profile;
  profile.name = "synthetic";
  profile.instructions = 300000;
  profile.load_fraction = 0.25;
  profile.store_fraction = 0.10;
  profile.branch_fraction = 0.08;

  PowerConfig pcfg;
  std::printf("== Ablation: broadcast fetch merging (3-core MC vs SC) ==\n");
  std::printf("%-12s %18s %18s %16s\n", "divergence", "reduction w/ [%]",
              "reduction w/o [%]", "imem w/ / w/o");
  bool broadcast_wins = true;
  for (double divergence : {0.0, 0.1, 0.3, 0.6}) {
    profile.divergence_prob = divergence;
    MachineConfig with;
    with.broadcast_fetch = true;
    MachineConfig without;
    without.broadcast_fetch = false;
    const auto cmp_with = compare_sc_mc(profile, 3, with, pcfg, 1);
    const auto cmp_without = compare_sc_mc(profile, 3, without, pcfg, 1);
    std::printf("%-12.2f %18.1f %18.1f %10.1f %%\n", divergence,
                cmp_with.reduction_percent(), cmp_without.reduction_percent(),
                100.0 * cmp_with.mc.imem_w / cmp_without.mc.imem_w);
    broadcast_wins =
        broadcast_wins && cmp_with.reduction_percent() > cmp_without.reduction_percent();
  }
  std::printf("\nMerging is load-bearing: without it the MC instruction memory\n"
              "pays one access per core per cycle and most of the advantage over\n"
              "the single-core system evaporates.  Higher divergence erodes the\n"
              "benefit (lockstep is broken more often), as Section IV-B implies.\n");
  return broadcast_wins ? 0 : 1;
}
