// Host-side reconstruction throughput: records/second versus worker-thread
// count for a multi-patient batch of compressed ECG windows, plus a
// bit-exactness check of every threaded run against the serial reference.
//
// Usage: host_throughput [patients] [beats_per_patient] [cr_percent]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace {

using namespace wbsn;

std::vector<host::CompressedWindow> make_fleet_batch(int patients,
                                                     int beats_per_patient,
                                                     double cr_percent) {
  std::vector<host::CompressedWindow> batch;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{p % 4 == 3 ? sig::RhythmEpisode::Kind::kAfib
                                  : sig::RhythmEpisode::Kind::kSinus,
                       beats_per_patient}};
    synth.noise = sig::NoiseParams::preset(sig::NoiseLevel::kModerate);
    synth.record_name = "patient-" + std::to_string(p);
    sig::Rng rng(0x5EED0000ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);

    host::RecordCompressionConfig compression;
    compression.cr_percent = cr_percent;
    auto windows = host::compress_record(record, static_cast<std::uint32_t>(p),
                                         compression);
    batch.insert(batch.end(), std::make_move_iterator(windows.begin()),
                 std::make_move_iterator(windows.end()));
  }
  return batch;
}

bool identical_signals(const host::BatchResult& a, const host::BatchResult& b) {
  if (a.windows.size() != b.windows.size()) return false;
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    const auto& x = a.windows[i].signal;
    const auto& y = b.windows[i].signal;
    if (x.size() != y.size()) return false;
    if (!x.empty() &&
        std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int patients = argc > 1 ? std::atoi(argv[1]) : 16;
  const int beats = argc > 2 ? std::atoi(argv[2]) : 24;
  const double cr = argc > 3 ? std::atof(argv[3]) : 50.0;

  std::printf("# host_throughput: %d patients x %d beats, CR %.0f%%\n",
              patients, beats, cr);
  const auto batch = make_fleet_batch(patients, beats, cr);
  std::printf("# batch: %zu windows\n\n", batch.size());

  // threads = worker-thread count; the submitting thread also helps drain,
  // so threads=0 is the fully serial reference execution.
  const int thread_sweep[] = {0, 1, 2, 4, 8};

  host::BatchResult serial;
  double serial_rps = 0.0;
  bool all_identical = true;

  std::printf("%-8s %-12s %-12s %-10s %-10s\n", "threads", "records/s",
              "wall_s", "speedup", "mean_snr");
  for (const int threads : thread_sweep) {
    host::EngineConfig cfg;
    cfg.threads = threads;
    host::ReconstructionEngine engine(cfg);
    auto result = engine.reconstruct(batch);

    double snr_acc = 0.0;
    for (const auto& p : result.patients) snr_acc += p.mean_snr_db;
    const double mean_snr =
        result.patients.empty()
            ? 0.0
            : snr_acc / static_cast<double>(result.patients.size());

    if (threads == 0) {
      serial_rps = result.records_per_second;
      serial = std::move(result);
      std::printf("%-8s %-12.1f %-12.3f %-10s %-10.2f\n", "serial",
                  serial_rps, serial.wall_seconds, "1.00x", mean_snr);
    } else {
      const bool same = identical_signals(serial, result);
      all_identical = all_identical && same;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    result.records_per_second / serial_rps);
      std::printf("%-8d %-12.1f %-12.3f %-10s %-10.2f%s\n", threads,
                  result.records_per_second, result.wall_seconds, speedup,
                  mean_snr, same ? "" : "  [MISMATCH vs serial]");
    }
  }

  std::printf("\nbit-exactness vs serial: %s\n",
              all_identical ? "PASS" : "FAIL");
  return all_identical ? 0 : 1;
}
