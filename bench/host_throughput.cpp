// Host-side reconstruction throughput, two modes:
//
//  * Batch sweep (default): records/second versus worker-thread count for
//    a multi-patient batch, plus a bit-exactness check of every threaded
//    run against the serial reference.
//  * Streaming (--poisson RATE_HZ): drives the sharded fabric's
//    submit/poll interface with Poisson arrivals at RATE_HZ
//    windows/second — the live-fleet shape — and reports the aggregate
//    SLO statistics (p50/p95/p99 enqueue->complete latency, throughput,
//    in-flight depth, deadline violations, shed/rejected windows), a
//    per-lane (urgent vs routine) split, per-shard and per-patient
//    breakdowns, plus the same bit-exactness check.
//
//  * Adaptive drill (--adaptive): shedding-only baseline versus
//    degrade-don't-drop under calibrated 2x overload; see the block
//    comment above run_adaptive().
//
// Usage: host_throughput [patients] [beats_per_patient] [cr_percent]
//                        [--poisson RATE_HZ] [--threads N] [--deadline-ms D]
//                        [--batch W] [--shards S] [--priority-frac F]
//                        [--shed] [--adaptive] [--reshard-at K:S ...]
//                        [--pool] [--json FILE]
//
// --batch W sets EngineConfig::batch_windows: workers pack up to W queued
// windows that share a sensing matrix into one batched FISTA solve
// (bit-identical to solo solves, so the exactness check still applies);
// W = 0 lets each worker auto-size its batch from the backlog depth.
// --shards S partitions the fleet across S engine shards by patient_id
// (threads is the per-shard worker count).  --priority-frac F tags that
// fraction of windows urgent: they jump the backlog through the priority
// lane.  --shed enables deadline-aware shedding (at capacity, drop the
// queued window predicted to miss its deadline instead of bouncing the
// arrival).  --reshard-at K:S (repeatable) live-resizes the fabric to S
// shards after the K-th submission attempt — the elasticity drill: the
// stream keeps flowing while the consistent-hash ring re-routes only the
// moved patients, and the bit-exactness gate still applies to every
// window solved before, during, and after each resize.
//
// --pool routes every window payload through a shared PayloadPool
// (payload_pool.hpp): the producer checks buffer shells out of the pool,
// the engine recycles them after each solve, and the poll loop returns
// result-signal buffers — the zero-allocation steady-state configuration
// (alloc_smoke is the strict gate; here the process-wide heap counter is
// reported per window when the build has -DWBSN_ALLOC_COUNTER=ON).
// --json FILE additionally writes the streaming metrics as a flat JSON
// object for the bench-trajectory trend gate.
//
// In streaming mode the per-window deadline defaults to the real-time
// window period (cs::window_period_ms): the decoder keeps up with live
// traffic iff every window finishes before the patient's next one lands.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cs/pipeline.hpp"
#include "host/alloc_meter.hpp"
#include "host/payload_pool.hpp"
#include "host/reconstruction_fabric.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace {

using namespace wbsn;
using Clock = std::chrono::steady_clock;

std::vector<host::CompressedWindow> make_fleet_batch(int patients,
                                                     int beats_per_patient,
                                                     double cr_percent) {
  std::vector<host::CompressedWindow> batch;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{p % 4 == 3 ? sig::RhythmEpisode::Kind::kAfib
                                  : sig::RhythmEpisode::Kind::kSinus,
                       beats_per_patient}};
    synth.noise = sig::NoiseParams::preset(sig::NoiseLevel::kModerate);
    synth.record_name = "patient-" + std::to_string(p);
    sig::Rng rng(0x5EED0000ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);

    host::RecordCompressionConfig compression;
    compression.cr_percent = cr_percent;
    auto windows = host::compress_record(record, static_cast<std::uint32_t>(p),
                                         compression);
    batch.insert(batch.end(), std::make_move_iterator(windows.begin()),
                 std::make_move_iterator(windows.end()));
  }
  return batch;
}

bool identical_signals(const host::BatchResult& a, const host::BatchResult& b) {
  if (a.windows.size() != b.windows.size()) return false;
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    const auto& x = a.windows[i].signal;
    const auto& y = b.windows[i].signal;
    if (x.size() != y.size()) return false;
    if (!x.empty() &&
        std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

int run_batch_sweep(const std::vector<host::CompressedWindow>& batch) {
  // threads = worker-thread count; the submitting thread also helps drain,
  // so threads=0 is the fully serial reference execution.
  const int thread_sweep[] = {0, 1, 2, 4, 8};

  host::BatchResult serial;
  double serial_rps = 0.0;
  bool all_identical = true;

  std::printf("%-8s %-12s %-12s %-10s %-10s\n", "threads", "records/s",
              "wall_s", "speedup", "mean_snr");
  for (const int threads : thread_sweep) {
    host::EngineConfig cfg;
    cfg.threads = threads;
    host::ReconstructionEngine engine(cfg);
    auto result = engine.reconstruct(batch);

    double snr_acc = 0.0;
    for (const auto& p : result.patients) snr_acc += p.mean_snr_db;
    const double mean_snr =
        result.patients.empty()
            ? 0.0
            : snr_acc / static_cast<double>(result.patients.size());

    if (threads == 0) {
      serial_rps = result.records_per_second;
      serial = std::move(result);
      std::printf("%-8s %-12.1f %-12.3f %-10s %-10.2f\n", "serial",
                  serial_rps, serial.wall_seconds, "1.00x", mean_snr);
    } else {
      const bool same = identical_signals(serial, result);
      all_identical = all_identical && same;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    result.records_per_second / serial_rps);
      std::printf("%-8d %-12.1f %-12.3f %-10s %-10.2f%s\n", threads,
                  result.records_per_second, result.wall_seconds, speedup,
                  mean_snr, same ? "" : "  [MISMATCH vs serial]");
    }
  }

  std::printf("\nbit-exactness vs serial: %s\n",
              all_identical ? "PASS" : "FAIL");
  return all_identical ? 0 : 1;
}

int run_streaming(std::vector<host::CompressedWindow> batch, double rate_hz,
                  int threads, double deadline_ms, int batch_windows,
                  int shards, double priority_frac, bool shed_enabled,
                  std::vector<std::pair<std::size_t, int>> reshards,
                  bool pooled, const std::string& json_path) {
  // Serial batch reference for the bit-exactness check.
  host::EngineConfig serial_cfg;
  host::ReconstructionEngine serial(serial_cfg);
  const auto reference = serial.reconstruct(batch);

  // Tag a deterministic fraction of the traffic urgent: the AF-alarm
  // pathway's share of the fleet.
  sig::Rng rng(0xA551A55ULL);
  std::size_t urgent_count = 0;
  for (auto& window : batch) {
    if (rng.uniform() < priority_frac) {
      window.priority = cs::WindowPriority::kUrgent;
      ++urgent_count;
    }
  }

  // Deterministically shuffled arrival order: patients interleave.
  std::vector<std::size_t> order(batch.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<std::size_t>(rng.uniform_int(
                                0, static_cast<std::int64_t>(i) - 1))]);
  }

  host::FabricConfig cfg;
  cfg.shards = shards;
  cfg.engine.threads = threads;
  cfg.engine.slo.deadline_ms = deadline_ms;
  cfg.engine.batch_windows = batch_windows;
  cfg.engine.deadline_shedding = shed_enabled;
  std::shared_ptr<host::PayloadPool> pool;
  if (pooled) {
    pool = std::make_shared<host::PayloadPool>();
    cfg.engine.payload_pool = pool;
  }
  host::ReconstructionFabric fabric(cfg);

  std::printf("streaming: %zu windows (%zu urgent), Poisson %.1f/s, %d shard%s x "
              "%d worker thread%s, deadline %.1f ms, batch_windows %d%s%s\n",
              batch.size(), urgent_count, rate_hz, shards, shards == 1 ? "" : "s",
              threads, threads == 1 ? "" : "s", deadline_ms, batch_windows,
              shed_enabled ? ", deadline shedding" : "",
              pooled ? ", pooled payloads" : "");

  std::sort(reshards.begin(), reshards.end());

  // Producer-side copy of one template window; with --pool the shell and
  // both payload buffers come from (and eventually return to) the pool.
  const auto make_copy = [&](const host::CompressedWindow& src) {
    if (!pool) return src;
    host::CompressedWindow window = pool->acquire_window();
    window.patient_id = src.patient_id;
    window.window_index = src.window_index;
    window.matrix_seed = src.matrix_seed;
    window.window_samples = src.window_samples;
    window.ones_per_column = src.ones_per_column;
    window.priority = src.priority;
    window.measurements.assign(src.measurements.begin(), src.measurements.end());
    window.reference.assign(src.reference.begin(), src.reference.end());
    return window;
  };

  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<double>> streamed;
  const auto record_result = [&](host::WindowResult&& result) {
    // The harness keeps a copy for the bit-exactness audit; the pooled
    // buffer itself goes straight back into circulation.
    streamed.emplace(std::make_pair(result.patient_id, result.window_index),
                     pool ? std::vector<double>(result.signal)
                          : std::move(result.signal));
    if (pool) pool->recycle(std::move(result));
  };

  const std::uint64_t allocs_at_start = host::alloc_count();
  const auto t0 = Clock::now();
  double next_arrival_s = 0.0;
  std::size_t submitted = 0;
  std::size_t next_reshard = 0;
  for (const std::size_t i : order) {
    while (next_reshard < reshards.size() && submitted >= reshards[next_reshard].first) {
      const auto resize_t0 = Clock::now();
      const auto report = fabric.resize(reshards[next_reshard].second);
      const double resize_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - resize_t0).count();
      std::printf("reshard @%zu: epoch %u, %zu -> %zu shards, moved %zu/%zu patients "
                  "(%zu SLO handoffs), retired %zu, reaped %zu, %.2f ms\n",
                  submitted, report.epoch, report.shards_before, report.shards_after,
                  report.moved_patients, report.known_patients, report.slo_handoffs,
                  report.retired_shards, report.reaped_shards, resize_ms);
      ++next_reshard;
    }
    ++submitted;
    // Exponential inter-arrival times make the submissions Poisson.
    next_arrival_s += -std::log(1.0 - rng.uniform()) / rate_hz;
    const auto arrival = t0 + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(next_arrival_s));
    while (Clock::now() < arrival) {
      if (auto result = fabric.poll()) {
        record_result(std::move(*result));
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    host::CompressedWindow copy = make_copy(batch[i]);
    // Overload drops the window; the engine counts it in snap.rejected.
    (void)fabric.try_submit(std::move(copy));
  }
  for (auto&& result : fabric.drain()) {
    record_result(std::move(result));
  }
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t allocs_streaming = host::alloc_count() - allocs_at_start;

  const auto snap = fabric.slo_snapshot();
  const auto shed_total = static_cast<std::size_t>(snap.shed_routine + snap.shed_urgent);
  std::printf("\n%-24s %12s\n", "metric", "value");
  std::printf("%-24s %12zu\n", "windows submitted", static_cast<std::size_t>(snap.submitted));
  std::printf("%-24s %12zu\n", "windows completed", static_cast<std::size_t>(snap.completed));
  std::printf("%-24s %12zu\n", "windows rejected", static_cast<std::size_t>(snap.rejected));
  std::printf("%-24s %12zu\n", "windows shed (routine)",
              static_cast<std::size_t>(snap.shed_routine));
  std::printf("%-24s %12zu\n", "windows shed (urgent)",
              static_cast<std::size_t>(snap.shed_urgent));
  std::printf("%-24s %12.1f\n", "throughput (win/s)", snap.throughput_per_s);
  std::printf("%-24s %12.2f\n", "latency p50 (ms)", snap.p50_ms);
  std::printf("%-24s %12.2f\n", "latency p95 (ms)", snap.p95_ms);
  std::printf("%-24s %12.2f\n", "latency p99 (ms)", snap.p99_ms);
  std::printf("%-24s %12.2f\n", "latency max (ms)", snap.max_ms);
  std::printf("%-24s %12.2f\n", "latency mean (ms)", snap.mean_ms);
  std::printf("%-24s %12zu\n", "deadline violations",
              static_cast<std::size_t>(snap.deadline_violations));
  std::printf("%-24s %12zu\n", "max in-flight", static_cast<std::size_t>(snap.max_in_flight));
  std::printf("%-24s %12.2f\n", "wall time (s)", wall_s);
  if (host::alloc_counter_enabled() && snap.completed > 0) {
    // Includes warmup (first-touch pool misses, arena growth), so the
    // pooled steady-state rate is strictly below this; alloc_smoke holds
    // the exact-zero line.
    std::printf("%-24s %12.3f\n", "allocs/window (incl warmup)",
                static_cast<double>(allocs_streaming) /
                    static_cast<double>(snap.completed));
  }
  if (pool) {
    const auto pstats = pool->stats();
    std::printf("%-24s %12zu\n", "pool hits", static_cast<std::size_t>(pstats.hits));
    std::printf("%-24s %12zu\n", "pool misses", static_cast<std::size_t>(pstats.misses));
    std::printf("%-24s %12zu\n", "pool recycled", static_cast<std::size_t>(pstats.recycled));
    std::printf("%-24s %12zu\n", "pool dropped", static_cast<std::size_t>(pstats.dropped));
  }

  // Lane split: is the alarm path actually faster than routine telemetry?
  std::printf("\n%-10s %8s %10s %10s %10s %10s %10s %6s\n", "lane", "windows",
              "p50_ms", "p95_ms", "p99_ms", "mean_ms", "violations", "shed");
  for (const auto priority : {cs::WindowPriority::kUrgent, cs::WindowPriority::kRoutine}) {
    const auto lane = fabric.lane_slo_snapshot(priority);
    std::printf("%-10s %8zu %10.2f %10.2f %10.2f %10.2f %10zu %6zu\n",
                cs::to_string(priority), static_cast<std::size_t>(lane.completed),
                lane.p50_ms, lane.p95_ms, lane.p99_ms, lane.mean_ms,
                static_cast<std::size_t>(lane.deadline_violations),
                static_cast<std::size_t>(lane.shed_routine + lane.shed_urgent));
  }

  // Per-shard balance.
  if (fabric.shard_count() > 1) {
    std::printf("\n%-10s %8s %10s %10s %10s %10s\n", "shard", "windows", "p50_ms",
                "p95_ms", "violations", "in-flt max");
    for (const auto& s : fabric.shard_slo_snapshots()) {
      std::printf("%-10zu %8zu %10.2f %10.2f %10zu %10zu\n", s.shard,
                  static_cast<std::size_t>(s.slo.completed), s.slo.p50_ms, s.slo.p95_ms,
                  static_cast<std::size_t>(s.slo.deadline_violations),
                  static_cast<std::size_t>(s.slo.max_in_flight));
    }
  }

  // Per-patient SLO breakdown: which patients are (not) making deadline.
  const auto per_patient = fabric.patient_slo_snapshots();
  if (!per_patient.empty()) {
    std::printf("\n%-10s %8s %10s %10s %10s %10s %10s\n", "patient", "windows",
                "p50_ms", "p95_ms", "p99_ms", "mean_ms", "violations");
    for (const auto& p : per_patient) {
      std::printf("%-10u %8zu %10.2f %10.2f %10.2f %10.2f %10zu\n", p.patient_id,
                  static_cast<std::size_t>(p.slo.completed), p.slo.p50_ms, p.slo.p95_ms,
                  p.slo.p99_ms, p.slo.mean_ms,
                  static_cast<std::size_t>(p.slo.deadline_violations));
    }
  }

  // Every completed window must match the serial batch reference bit for
  // bit; rejected and shed windows are the only ones allowed to be absent.
  bool all_identical =
      streamed.size() + static_cast<std::size_t>(snap.rejected) + shed_total == batch.size();
  std::size_t compared = 0;
  for (const auto& expected : reference.windows) {
    const auto found =
        streamed.find(std::make_pair(expected.patient_id, expected.window_index));
    if (found == streamed.end()) continue;  // Rejected or shed under overload.
    ++compared;
    if (found->second.size() != expected.signal.size() ||
        (!expected.signal.empty() &&
         std::memcmp(found->second.data(), expected.signal.data(),
                     expected.signal.size() * sizeof(double)) != 0)) {
      all_identical = false;
    }
  }
  // A vacuous pass (everything shed/rejected, nothing compared) must fail:
  // this bench doubles as the CI smoke gate for the streaming path.
  all_identical = all_identical && compared == streamed.size() && compared > 0;

  std::printf("\nbit-exactness vs serial (%zu windows): %s\n", compared,
              all_identical ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    // Flat key->number object consumed by scripts/bench_trajectory.py.
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"windows_submitted\": %zu,\n"
                 "  \"windows_completed\": %zu,\n"
                 "  \"windows_rejected\": %zu,\n"
                 "  \"windows_shed\": %zu,\n"
                 "  \"throughput_win_per_s\": %.6f,\n"
                 "  \"latency_p50_ms\": %.6f,\n"
                 "  \"latency_p95_ms\": %.6f,\n"
                 "  \"latency_p99_ms\": %.6f,\n"
                 "  \"latency_mean_ms\": %.6f,\n"
                 "  \"deadline_violations\": %zu,\n"
                 "  \"allocs_per_window_incl_warmup\": %.6f,\n"
                 "  \"alloc_counter_enabled\": %d,\n"
                 "  \"pooled\": %d,\n"
                 "  \"bit_exact\": %d\n"
                 "}\n",
                 static_cast<std::size_t>(snap.submitted),
                 static_cast<std::size_t>(snap.completed),
                 static_cast<std::size_t>(snap.rejected), shed_total,
                 snap.throughput_per_s, snap.p50_ms, snap.p95_ms, snap.p99_ms,
                 snap.mean_ms, static_cast<std::size_t>(snap.deadline_violations),
                 snap.completed > 0 ? static_cast<double>(allocs_streaming) /
                                          static_cast<double>(snap.completed)
                                    : 0.0,
                 host::alloc_counter_enabled() ? 1 : 0, pool ? 1 : 0,
                 all_identical ? 1 : 0);
    std::fclose(out);
    std::printf("json metrics -> %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Adaptive-degradation overload drill (--adaptive).
//
// Two phases over the same deterministic arrival schedule at ~2x the
// measured sustainable rate: a shedding-only baseline (DegradePolicy off —
// the PR-8 behavior) and an adaptive run where queued routine windows
// demote one rung down the degrade ladder (lower effective CR + capped
// FISTA iterations) instead of being dropped whole.  Reported: the
// completed-goodput speedup, the degraded/shed/rejected split, per-tier
// SNR, and three hard correctness gates:
//
//   * tier audit — every completed adaptive window re-solved serially AT
//     its recorded tier must match bit for bit (the determinism contract
//     is per (payload, tier));
//   * off-policy audit — every baseline window must match the serial
//     full-fidelity reference bit for bit (policy off changes nothing);
//   * urgent fidelity — zero urgent-lane windows degraded (demotion is
//     structurally routine-only; this proves it end to end).
//
// The SNR reference is this system's own Fig-5 point for the degraded CR:
// calibration windows solved with the *truncated* operator at full
// iterations.  The speedup and SNR-floor gates are enforced numerically by
// scripts/bench_trajectory.py; the process exit code carries only the
// correctness gates (plus non-vacuousness: the adaptive run must actually
// demote something).

struct OverloadPhase {
  double wall_s = 0.0;
  host::SloSnapshot snap{};
  host::SloSnapshot routine_lane{};
  host::SloSnapshot urgent_lane{};
  std::vector<host::WindowResult> results;
};

OverloadPhase run_overload_phase(const std::vector<host::CompressedWindow>& batch,
                                 const host::EngineConfig& cfg, double rate_hz) {
  host::ReconstructionEngine engine(cfg);
  OverloadPhase out;
  out.results.reserve(batch.size());
  const auto t0 = Clock::now();
  double next_arrival_s = 0.0;
  for (const auto& window : batch) {
    // Fixed inter-arrival times: the overload factor is exact and the
    // schedule is identical across both phases (and across reruns).
    next_arrival_s += 1.0 / rate_hz;
    const auto arrival = t0 + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(next_arrival_s));
    while (Clock::now() < arrival) {
      if (auto result = engine.poll()) {
        out.results.push_back(std::move(*result));
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    host::CompressedWindow copy = window;
    (void)engine.try_submit(std::move(copy));  // Overload sheds or rejects.
  }
  while (engine.in_flight() > 0 || engine.ready_results() > 0) {
    if (auto result = engine.poll()) {
      out.results.push_back(std::move(*result));
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  out.snap = engine.slo().snapshot();
  out.routine_lane = engine.lane_slo(cs::WindowPriority::kRoutine).snapshot();
  out.urgent_lane = engine.lane_slo(cs::WindowPriority::kUrgent).snapshot();
  return out;
}

/// Serial per-window solve cost at `tier` (default tier = full fidelity),
/// in ms, over the first `count` windows.
double measure_solve_ms(const std::vector<host::CompressedWindow>& batch,
                        std::size_t count, const cs::SolveTier& tier) {
  host::EngineConfig cfg;
  host::ReconstructionEngine engine(cfg);
  const std::size_t k = std::min(count, batch.size());
  // Warm the matrix cache outside the timed region (one-time build cost).
  {
    host::CompressedWindow copy = batch.front();
    copy.solve_tier = tier;
    (void)engine.submit(std::move(copy));
    while (!engine.poll()) {
    }
  }
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < k; ++i) {
    host::CompressedWindow copy = batch[i];
    copy.solve_tier = tier;
    (void)engine.submit(std::move(copy));
  }
  std::size_t done = 0;
  while (done < k) {
    if (engine.poll()) ++done;
  }
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
         static_cast<double>(k);
}

/// Mean SNR of the first `count` windows solved serially at `tier` — with
/// effective_m set and iteration_cap 0 this is the system's own Fig-5
/// point for the degraded CR (truncated operator, full iterations).
double tiered_mean_snr(const std::vector<host::CompressedWindow>& batch,
                       std::size_t count, const cs::SolveTier& tier) {
  host::EngineConfig cfg;
  host::ReconstructionEngine engine(cfg);
  const std::size_t k = std::min(count, batch.size());
  for (std::size_t i = 0; i < k; ++i) {
    host::CompressedWindow copy = batch[i];
    copy.solve_tier = tier;
    (void)engine.submit(std::move(copy));
  }
  double acc = 0.0;
  std::size_t done = 0;
  std::size_t scored = 0;
  while (done < k) {
    auto result = engine.poll();
    if (!result) continue;
    ++done;
    if (!std::isnan(result->snr_db)) {
      acc += result->snr_db;
      ++scored;
    }
  }
  return scored > 0 ? acc / static_cast<double>(scored) : 0.0;
}

int run_adaptive(std::vector<host::CompressedWindow> batch, int threads,
                 double priority_frac, const std::string& json_path) {
  // Serial full-fidelity reference for the off-policy audit.
  host::EngineConfig serial_cfg;
  host::ReconstructionEngine serial(serial_cfg);
  const auto reference = serial.reconstruct(batch);
  std::map<std::pair<std::uint32_t, std::uint32_t>, const std::vector<double>*> ref_by_key;
  for (const auto& w : reference.windows) {
    ref_by_key[{w.patient_id, w.window_index}] = &w.signal;
  }

  // Deterministic urgent tagging + shuffled arrivals, as in run_streaming.
  sig::Rng rng(0xADA9717EULL);
  std::size_t urgent_count = 0;
  for (auto& window : batch) {
    if (rng.uniform() < priority_frac) {
      window.priority = cs::WindowPriority::kUrgent;
      ++urgent_count;
    }
  }
  for (std::size_t i = batch.size(); i > 1; --i) {
    std::swap(batch[i - 1], batch[static_cast<std::size_t>(rng.uniform_int(
                                0, static_cast<std::int64_t>(i) - 1))]);
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> index_by_key;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    index_by_key[{batch[i].patient_id, batch[i].window_index}] = i;
  }

  // The degrade ladder: one rung, 20 CR points cheaper with a capped
  // iteration budget — a point still on the paper's usable Fig-5 range.
  const std::uint32_t n = batch.front().window_samples;
  const double base_cr =
      cs::compression_ratio_percent(batch.front().measurements.size(), n);
  const double tier_cr = std::min(90.0, base_cr + 20.0);
  const std::uint32_t tier_cap = 80;
  cs::SolveTier degraded_tier;
  degraded_tier.tier = 1;
  degraded_tier.effective_m =
      static_cast<std::uint32_t>(cs::rows_for_cr(tier_cr, n));
  degraded_tier.iteration_cap = tier_cap;
  cs::SolveTier fig5_tier = degraded_tier;  // Same operator, full iterations.
  fig5_tier.iteration_cap = 0;

  // Calibrate the overload from measured cost, so "2x" means 2x on this
  // machine: arrivals at overload_factor x the pool's sustainable rate.
  const double solve_ms = measure_solve_ms(batch, 12, cs::SolveTier{});
  const double tier_solve_ms = measure_solve_ms(batch, 12, degraded_tier);
  const double overload_factor = 2.0;
  const double rate_hz =
      overload_factor * static_cast<double>(threads) * 1000.0 / solve_ms;

  host::EngineConfig cfg;
  cfg.threads = threads;
  cfg.queue_capacity = 32;
  cfg.deadline_shedding = true;
  // Half-capacity backlog of full-fidelity solves blows the deadline:
  // deep enough to absorb bursts, tight enough that sustained 2x overload
  // forces a policy decision (shed vs degrade) on most of the stream.
  cfg.slo.deadline_ms = 0.5 * static_cast<double>(cfg.queue_capacity) *
                        solve_ms / static_cast<double>(threads);

  std::printf("adaptive drill: %zu windows (%zu urgent), %d threads, "
              "solve %.2f ms full / %.2f ms tier-1 (CR %.0f%% -> %.0f%%, "
              "cap %u), %.0fx overload (%.1f win/s), deadline %.1f ms\n\n",
              batch.size(), urgent_count, threads, solve_ms, tier_solve_ms,
              base_cr, tier_cr, tier_cap, overload_factor, rate_hz,
              cfg.slo.deadline_ms);

  host::EngineConfig baseline_cfg = cfg;
  baseline_cfg.degrade_policy = host::DegradePolicy::kOff;
  const auto baseline = run_overload_phase(batch, baseline_cfg, rate_hz);

  host::EngineConfig adaptive_cfg = cfg;
  adaptive_cfg.degrade_policy = host::DegradePolicy::kCrIter;
  adaptive_cfg.degrade_tiers = {{tier_cr, tier_cap}};
  adaptive_cfg.degrade_backlog_deadlines = 1.0;
  const auto adaptive = run_overload_phase(batch, adaptive_cfg, rate_hz);

  // Per-tier SNR split of the adaptive run.
  std::map<unsigned, std::pair<std::size_t, double>> tier_snr;  // count, sum.
  std::size_t urgent_degraded = 0;
  for (const auto& result : adaptive.results) {
    if (result.degraded && result.priority == cs::WindowPriority::kUrgent) {
      ++urgent_degraded;
    }
    if (!std::isnan(result.snr_db)) {
      auto& slot = tier_snr[result.solve_tier.tier];
      ++slot.first;
      slot.second += result.snr_db;
    }
  }
  // Two calibration points on this system's own degraded-CR curve: the
  // Fig-5 point proper (truncated operator, full iterations) and the
  // actual operating point (same operator, capped iterations).  The
  // degraded-lane mean is gated against the former minus a fixed margin —
  // the cap costs a couple of dB, which is the price of the cheap tier.
  const double fig5_floor = tiered_mean_snr(batch, 16, fig5_tier);
  const double tier_point = tiered_mean_snr(batch, 16, degraded_tier);

  const auto phase_goodput = [](const OverloadPhase& phase) {
    return phase.wall_s > 0.0
               ? static_cast<double>(phase.snap.completed) / phase.wall_s
               : 0.0;
  };
  const double baseline_goodput = phase_goodput(baseline);
  const double adaptive_goodput = phase_goodput(adaptive);
  const double speedup =
      baseline_goodput > 0.0 ? adaptive_goodput / baseline_goodput : 0.0;

  const auto print_phase = [](const char* name, const OverloadPhase& phase,
                              double goodput) {
    std::printf("%-10s %9zu completed %6zu shed %6zu rejected %6zu degraded "
                "%8.1f win/s %7.2f s\n",
                name, static_cast<std::size_t>(phase.snap.completed),
                static_cast<std::size_t>(phase.snap.shed_routine +
                                         phase.snap.shed_urgent),
                static_cast<std::size_t>(phase.snap.rejected),
                static_cast<std::size_t>(phase.snap.degraded_windows), goodput,
                phase.wall_s);
  };
  print_phase("baseline", baseline, baseline_goodput);
  print_phase("adaptive", adaptive, adaptive_goodput);
  std::printf("\ncompleted-goodput speedup: %.2fx\n", speedup);

  std::printf("\n%-8s %10s %12s\n", "tier", "windows", "mean_snr_db");
  double degraded_mean_snr = 0.0;
  double full_mean_snr = 0.0;
  for (const auto& [tier, stat] : tier_snr) {
    const double mean = stat.second / static_cast<double>(stat.first);
    if (tier == 0) {
      full_mean_snr = mean;
    } else {
      degraded_mean_snr = mean;
    }
    std::printf("%-8u %10zu %12.2f\n", tier, stat.first, mean);
  }
  std::printf("fig-5 floor at CR %.0f%% (truncated op, full iters): %.2f dB; "
              "capped operating point: %.2f dB\n",
              tier_cr, fig5_floor, tier_point);
  std::printf("urgent windows degraded: %zu (lane counter %zu)\n",
              urgent_degraded,
              static_cast<std::size_t>(adaptive.urgent_lane.degraded_windows));

  // Gate 1: off-policy bit-identity — the baseline phase must reproduce
  // the serial full-fidelity reference exactly.
  bool off_policy_exact = true;
  std::size_t compared = 0;
  for (const auto& result : baseline.results) {
    const auto found = ref_by_key.find({result.patient_id, result.window_index});
    if (found == ref_by_key.end()) {
      off_policy_exact = false;
      break;
    }
    ++compared;
    if (result.signal.size() != found->second->size() ||
        (!result.signal.empty() &&
         std::memcmp(result.signal.data(), found->second->data(),
                     result.signal.size() * sizeof(double)) != 0)) {
      off_policy_exact = false;
    }
  }
  off_policy_exact = off_policy_exact && compared > 0;
  std::printf("\noff-policy bit-exactness vs serial (%zu windows): %s\n",
              compared, off_policy_exact ? "PASS" : "FAIL");

  // Gate 2: tier audit — every completed adaptive window, re-solved
  // serially AT its recorded tier, must match bit for bit.
  bool tier_audit_exact = !adaptive.results.empty();
  {
    host::EngineConfig audit_cfg;
    host::ReconstructionEngine audit(audit_cfg);
    for (const auto& result : adaptive.results) {
      const auto found = index_by_key.find({result.patient_id, result.window_index});
      if (found == index_by_key.end()) {
        tier_audit_exact = false;
        break;
      }
      host::CompressedWindow copy = batch[found->second];
      copy.solve_tier = result.solve_tier;
      (void)audit.submit(std::move(copy));
      std::optional<host::WindowResult> expect;
      while (!(expect = audit.poll())) {
      }
      if (expect->signal.size() != result.signal.size() ||
          (!result.signal.empty() &&
           std::memcmp(expect->signal.data(), result.signal.data(),
                       result.signal.size() * sizeof(double)) != 0)) {
        tier_audit_exact = false;
      }
    }
  }
  std::printf("tier audit (%zu windows re-solved at recorded tier): %s\n",
              adaptive.results.size(), tier_audit_exact ? "PASS" : "FAIL");

  // Gate 3: the urgent lane keeps full fidelity, and the adaptive run
  // must actually have demoted something (a vacuous pass is a broken
  // scenario, not a healthy one).
  const bool urgent_clean =
      urgent_degraded == 0 && adaptive.urgent_lane.degraded_windows == 0;
  const bool non_vacuous = adaptive.snap.degraded_windows > 0;
  std::printf("urgent lane clean: %s; degradation exercised: %s\n",
              urgent_clean ? "PASS" : "FAIL", non_vacuous ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"windows_total\": %zu,\n"
                 "  \"baseline_completed\": %zu,\n"
                 "  \"baseline_shed\": %zu,\n"
                 "  \"baseline_rejected\": %zu,\n"
                 "  \"baseline_goodput_win_per_s\": %.6f,\n"
                 "  \"adaptive_completed\": %zu,\n"
                 "  \"adaptive_shed\": %zu,\n"
                 "  \"adaptive_rejected\": %zu,\n"
                 "  \"adaptive_degraded\": %zu,\n"
                 "  \"adaptive_urgent_degraded\": %zu,\n"
                 "  \"adaptive_goodput_win_per_s\": %.6f,\n"
                 "  \"adaptive_speedup\": %.6f,\n"
                 "  \"degraded_mean_snr_db\": %.6f,\n"
                 "  \"full_mean_snr_db\": %.6f,\n"
                 "  \"fig5_floor_snr_db\": %.6f,\n"
                 "  \"tier_point_snr_db\": %.6f,\n"
                 "  \"tier_cr_percent\": %.6f,\n"
                 "  \"tier_iteration_cap\": %u,\n"
                 "  \"tier_audit_bit_exact\": %d,\n"
                 "  \"off_policy_bit_exact\": %d,\n"
                 "  \"urgent_lane_clean\": %d\n"
                 "}\n",
                 batch.size(), static_cast<std::size_t>(baseline.snap.completed),
                 static_cast<std::size_t>(baseline.snap.shed_routine +
                                          baseline.snap.shed_urgent),
                 static_cast<std::size_t>(baseline.snap.rejected),
                 baseline_goodput,
                 static_cast<std::size_t>(adaptive.snap.completed),
                 static_cast<std::size_t>(adaptive.snap.shed_routine +
                                          adaptive.snap.shed_urgent),
                 static_cast<std::size_t>(adaptive.snap.rejected),
                 static_cast<std::size_t>(adaptive.snap.degraded_windows),
                 urgent_degraded, adaptive_goodput, speedup, degraded_mean_snr,
                 full_mean_snr, fig5_floor, tier_point, tier_cr, tier_cap,
                 tier_audit_exact ? 1 : 0, off_policy_exact ? 1 : 0,
                 urgent_clean ? 1 : 0);
    std::fclose(out);
    std::printf("json metrics -> %s\n", json_path.c_str());
  }

  const bool pass =
      off_policy_exact && tier_audit_exact && urgent_clean && non_vacuous;
  std::printf("\nadaptive drill: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* positional[3] = {"16", "24", "50"};
  int n_positional = 0;
  double poisson_hz = 0.0;
  int threads = 4;
  double deadline_ms = -1.0;
  int batch_windows = 1;
  int shards = 1;
  double priority_frac = 0.0;
  bool shed_enabled = false;
  bool pooled = false;
  bool adaptive = false;
  std::string json_path;
  std::vector<std::pair<std::size_t, int>> reshards;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool is_flag = arg == "--poisson" || arg == "--threads" ||
                         arg == "--deadline-ms" || arg == "--batch" ||
                         arg == "--shards" || arg == "--priority-frac" ||
                         arg == "--reshard-at" || arg == "--json";
    if (is_flag && i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", arg.c_str());
      return 2;
    }
    if (arg == "--poisson") {
      poisson_hz = std::atof(argv[++i]);
    } else if (arg == "--threads") {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--batch") {
      batch_windows = std::max(0, std::atoi(argv[++i]));  // 0 = auto-size.
    } else if (arg == "--shards") {
      shards = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--priority-frac") {
      priority_frac = std::atof(argv[++i]);
    } else if (arg == "--shed") {
      shed_enabled = true;
    } else if (arg == "--adaptive") {
      adaptive = true;
    } else if (arg == "--pool") {
      pooled = true;
    } else if (arg == "--json") {
      json_path = argv[++i];
    } else if (arg == "--reshard-at") {
      // K:S — resize to S shards after the K-th submission attempt.
      const std::string value = argv[++i];
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--reshard-at expects K:S, got %s\n", value.c_str());
        return 2;
      }
      reshards.emplace_back(static_cast<std::size_t>(std::atoll(value.c_str())),
                            std::max(1, std::atoi(value.c_str() + colon + 1)));
    } else if (n_positional < 3) {
      positional[n_positional++] = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  const int patients = std::atoi(positional[0]);
  const int beats = std::atoi(positional[1]);
  const double cr = std::atof(positional[2]);

  std::printf("# host_throughput: %d patients x %d beats, CR %.0f%%\n",
              patients, beats, cr);
  auto batch = make_fleet_batch(patients, beats, cr);  // Moved into run_streaming.
  std::printf("# batch: %zu windows\n\n", batch.size());
  if (batch.empty()) return 0;

  if (adaptive) {
    // Degrade-vs-shed drill under calibrated overload; the urgent share
    // defaults to the AF-alarm fraction when the flag is not given.
    return run_adaptive(std::move(batch), std::max(1, threads),
                        priority_frac > 0.0 ? priority_frac : 0.1, json_path);
  }
  if (poisson_hz > 0.0) {
    if (deadline_ms < 0.0) {
      deadline_ms = cs::window_period_ms(batch.front().window_samples);
    }
    return run_streaming(std::move(batch), poisson_hz, std::max(0, threads),
                         deadline_ms, batch_windows, shards, priority_frac,
                         shed_enabled, std::move(reshards), pooled, json_path);
  }
  return run_batch_sweep(batch);
}
