// Ablations 4 and 5 (DESIGN.md): baseline-removal method and
// stimulus-locked filtering.
//
// (a) Morphological baseline estimation (Sun 2002) vs cubic-spline knots
//     (Meyer-Keiser 1977) — Section III-B presents both; compare residual
//     baseline error and node-side cost.
// (b) Ensemble averaging vs the adaptive impulse-correlated filter —
//     Section IV-C notes EA loses beat-to-beat dynamics while AICF tracks
//     them; quantify the tracking error under amplitude drift.
#include <cmath>
#include <cstdio>

#include "dsp/ensemble.hpp"
#include "dsp/morphology.hpp"
#include "dsp/spline_baseline.hpp"
#include "energy/mcu.hpp"
#include "sig/adc.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  // --- (a) Baseline removal ---
  sig::SynthConfig scfg;
  scfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 60}};
  scfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  scfg.noise.baseline_wander_mv = 0.4;
  sig::Rng rng(9);
  const auto dirty = synthesize_ecg(scfg, rng);
  sig::SynthConfig clean_cfg = scfg;
  clean_cfg.noise.baseline_wander_mv = 0.0;
  sig::Rng rng2(9);
  const auto clean = synthesize_ecg(clean_cfg, rng2);

  const sig::AdcConfig adc;
  const auto counts = sig::quantize(dirty.leads[0], adc);

  // Morphological.
  const auto morph = dsp::morphological_filter(counts);
  // Spline (uses annotated R peaks, as the paper's chain would after QRS
  // detection).
  const auto r_peaks = dirty.r_peaks();
  dsp::SplineBaselineConfig sp_cfg;
  const auto spline = dsp::estimate_spline_baseline(dirty.leads[0], r_peaks, sp_cfg);

  const auto rms_vs_clean = [&](auto&& corrected_at) {
    double acc = 0.0;
    std::size_t n = 0;
    // Score the interior (both methods have edge transients).
    for (std::size_t i = 500; i + 500 < clean.num_samples(); ++i) {
      const double e = corrected_at(i) - clean.leads[0][i];
      acc += e * e;
      ++n;
    }
    return std::sqrt(acc / static_cast<double>(n));
  };
  const double lsb = adc.lsb_mv();
  const double err_morph = rms_vs_clean([&](std::size_t i) {
    return static_cast<double>(morph.filtered[i]) * lsb;
  });
  const double err_spline = rms_vs_clean(
      [&](std::size_t i) { return dirty.leads[0][i] - spline.baseline[i]; });

  const energy::McuModel mcu;
  std::printf("== Ablation: baseline-removal method (0.4 mV wander) ==\n");
  std::printf("%-16s %16s %16s\n", "method", "residual RMS", "kcycles/record");
  std::printf("%-16s %13.4f mV %16.0f\n", "morphological", err_morph,
              static_cast<double>(mcu.cycles(morph.ops)) / 1e3);
  std::printf("%-16s %13.4f mV %16.0f\n", "cubic spline", err_spline,
              static_cast<double>(mcu.cycles(spline.ops)) / 1e3);
  std::printf("(morphology needs no beat positions; the spline needs QRS "
              "detection first)\n\n");

  // --- (b) EA vs AICF under drift ---
  const dsp::EnsembleWindow window{40, 40};
  const std::size_t period = 200;
  const int beats = 200;
  const double drift = 0.004;
  std::vector<double> signal(period * (beats + 1), 0.0);
  std::vector<std::int64_t> triggers;
  sig::Rng nrng(4);
  for (int b = 0; b < beats; ++b) {
    const std::size_t start = period / 2 + static_cast<std::size_t>(b) * period;
    const double gain = 1.0 + drift * b;
    for (std::size_t i = 0; i < 60; ++i) {
      const double z = (static_cast<double>(i) - 30.0) / 8.0;
      signal[start + i] += gain * std::exp(-0.5 * z * z);
    }
    triggers.push_back(static_cast<std::int64_t>(start + 30));
  }
  for (auto& v : signal) v += nrng.normal(0.0, 0.05);

  dsp::EnsembleAverager ea(window);
  dsp::AdaptiveImpulseCorrelatedFilter aicf(window, 0.15);
  double ea_err = 0.0;
  double aicf_err = 0.0;
  int scored = 0;
  for (int b = 0; b < beats; ++b) {
    ea.accumulate(signal, triggers[static_cast<std::size_t>(b)]);
    const auto est = aicf.process_beat(signal, triggers[static_cast<std::size_t>(b)]);
    if (b < beats / 2) continue;  // Score the second half (converged).
    const double truth_peak = 1.0 + drift * b;
    const auto ea_est = ea.average();
    ea_err += std::abs(ea_est[window.pre] - truth_peak);
    aicf_err += std::abs(est[window.pre] - truth_peak);
    ++scored;
  }
  ea_err /= scored;
  aicf_err /= scored;
  std::printf("== Ablation: EA vs AICF under 0.4 %%/beat amplitude drift ==\n");
  std::printf("mean |peak error|: EA %.3f vs AICF %.3f (truth gain ends at %.2f)\n",
              ea_err, aicf_err, 1.0 + drift * (beats - 1));
  std::printf("AICF tracks the drifting beat; EA reports the historical mean "
              "(Section IV-C).\n");
  return aicf_err < ea_err ? 0 : 1;
}
