// Ablation 1 (DESIGN.md): sensing-matrix sparsity.
//
// Section IV-A: "few non-zero elements in the sensing matrix suffice to
// achieve close-to-optimal results ... while minimizing the run-time
// workload."  Sweep the column weight d of the sparse-binary matrix and
// report reconstruction SNR (at a fixed CR) against node-side encoding
// cost and matrix storage.
#include <cstdio>

#include "cs/pipeline.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  sig::SynthConfig scfg;
  scfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 60}};
  scfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(3);
  const auto rec = synthesize_ecg(scfg, rng);

  std::printf("== Ablation: sparse-binary column weight d at CR = 55 %% ==\n");
  std::printf("%-6s %12s %16s %14s\n", "d", "SNR [dB]", "encode ops/win", "storage [B]");
  double dense_snr = 0.0;
  double d4_snr = 0.0;
  for (std::size_t d : {1u, 2u, 4u, 8u, 16u, 32u}) {
    cs::CsPipelineConfig cfg;
    cfg.ones_per_column = d;
    cfg.fista.lambda_rel = 0.003;
    const auto result = run_single_lead_cs(rec.leads[0], 55.0, cfg);
    sig::Rng mrng(cfg.matrix_seed);
    const auto phi = cs::SensingMatrix::make_sparse_binary(
        cs::rows_for_cr(55.0, cfg.window_samples), cfg.window_samples, d, mrng);
    std::printf("%-6zu %12.2f %16llu %14zu\n", d, result.mean_snr_db,
                static_cast<unsigned long long>(result.encode_ops / result.windows),
                phi.storage_bytes());
    if (d == 4) d4_snr = result.mean_snr_db;
    if (d == 32) dense_snr = result.mean_snr_db;
  }
  std::printf("\nd = 4 is within %.1f dB of d = 32 at 1/8 the encoding work\n"
              "(the paper's 'few non-zeros suffice' claim).\n",
              dense_snr - d4_snr);
  return (dense_snr - d4_snr) < 3.0 ? 0 : 1;
}
