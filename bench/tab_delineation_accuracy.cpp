// Section V text reproduction: embedded delineation accuracy and cost.
//
// Paper's result: "sensitivity and specificity of retrieved fiducial
// points are above 90 % in all cases ... 7 % of the duty cycle and 7.2 kB
// of memory".  This bench evaluates both delineators over a dataset of
// clean and noisy records, then prices the wavelet delineator's measured
// op counts on the MCU model to report the duty cycle, and tallies its
// working-set memory.
#include <cstdio>

#include "delin/eval.hpp"
#include "delin/pipeline.hpp"
#include "energy/mcu.hpp"
#include "sig/adc.hpp"
#include "sig/dataset.hpp"

int main() {
  using namespace wbsn;

  sig::DatasetSpec spec;
  spec.num_records = 10;
  spec.beats_per_record = 80;
  spec.noise = sig::NoiseLevel::kLow;
  // Rate range of the QT-database-style cohorts the original delineators
  // were scored on; above ~85 bpm the P wave fuses with the preceding T
  // and every delineator's P accuracy drops.
  spec.max_hr_bpm = 80.0;
  const auto records = sig::make_sinus_dataset(spec);

  bool all_above_90 = true;
  for (auto which : {delin::Delineator::kMorphological, delin::Delineator::kWavelet}) {
    delin::DelineationScore total;
    dsp::OpCount total_ops;
    double total_seconds = 0.0;
    for (const auto& rec : records) {
      const auto leads = sig::quantize_leads(rec.leads, sig::AdcConfig{});
      delin::PipelineConfig cfg;
      cfg.fs = rec.fs;
      cfg.delineator = which;
      const auto result = delin::run_delineation_pipeline(leads, cfg);
      total += delin::evaluate_delineation(rec.beats, result.beats,
                                           delin::EvalConfig{.fs = rec.fs});
      total_ops += result.total_ops();
      total_seconds += rec.duration_s();
    }

    std::printf("== Delineator: %s ==\n",
                which == delin::Delineator::kMorphological ? "morphological (MMD)"
                                                           : "wavelet (SWT)");
    std::printf("%-12s %6s %6s %6s %8s %8s %10s\n", "Point", "TP", "FN", "FP", "Se[%]",
                "P+[%]", "RMS err");
    for (std::size_t k = 0; k < delin::kNumFiducialKinds; ++k) {
      const auto kind = static_cast<delin::FiducialKind>(k);
      const auto& p = total.at(kind);
      std::printf("%-12s %6d %6d %6d %8.1f %8.1f %7.1f ms\n", to_string(kind).c_str(),
                  p.tp, p.fn, p.fp, 100.0 * p.sensitivity(),
                  100.0 * p.positive_predictivity(), p.rms_error_ms());
      all_above_90 = all_above_90 && p.sensitivity() > 0.9 &&
                     p.positive_predictivity() > 0.9;
    }

    // Duty cycle on the MCU model (paper: 7 %).
    const energy::McuModel mcu;  // 8 MHz nominal.
    const double duty = mcu.duty_cycle(total_ops, total_seconds);
    std::printf("worst-case Se %.1f %%, P+ %.1f %% | duty cycle at %.0f MHz: %.1f %%\n\n",
                100.0 * total.worst_sensitivity(),
                100.0 * total.worst_positive_predictivity(), mcu.f_hz / 1e6,
                100.0 * duty);
  }

  // Working-set memory of the embedded (streaming) wavelet delineator:
  // 4 detail scales + approximation over a 512-sample window, int16 on the
  // node, plus detector state (paper: 7.2 kB).
  const std::size_t window = 512;
  const std::size_t bytes = (4 + 1) * window * 2 + 512;
  std::printf("estimated working-set memory (streaming wavelet delineator): %.1f kB "
              "(paper: 7.2 kB)\n",
              static_cast<double>(bytes) / 1024.0);
  return all_above_90 ? 0 : 1;
}
