// Figure 5 reproduction: averaged reconstruction SNR over all records vs
// compression ratio, single-lead CS vs joint multi-lead CS.
//
// Paper's result: SNR decreases with CR; the 20 dB "good reconstruction"
// level is crossed at CR = 65.9 % (single-lead) and CR = 72.7 %
// (multi-lead) — joint decoding tolerates ~7 points more compression.
// Absolute dB values depend on the data (ours is synthetic; see DESIGN.md)
// but the ordering and the size of the gap are the reproduced claims.
#include <cstdio>
#include <vector>

#include "cs/pipeline.hpp"
#include "sig/dataset.hpp"

int main() {
  using namespace wbsn;

  // Clean records: Figure 5 measures *compression* loss, and broadband
  // noise (which is not wavelet-sparse) would put a hard ceiling on the
  // reconstruction SNR regardless of CR, masking the crossings.  Noise
  // robustness of the processing chain is evaluated separately
  // (tab_delineation_accuracy, abl_baseline_methods).
  sig::DatasetSpec spec;
  spec.num_records = 6;
  spec.beats_per_record = 80;   // ~60-90 s per record.
  spec.noise = sig::NoiseLevel::kNone;
  const auto records = sig::make_sinus_dataset(spec);

  cs::CsPipelineConfig cfg;
  cfg.fista.lambda_rel = 0.003;
  cfg.fista.max_iterations = 250;

  const std::vector<double> crs = {30, 40, 50, 55, 60, 65, 70, 75, 80, 85, 90};
  std::vector<double> snr_single;
  std::vector<double> snr_multi;

  std::printf("== Figure 5: averaged SNR over all records vs compression ratio ==\n");
  std::printf("%-8s %-16s %-16s\n", "CR [%]", "Single-lead [dB]", "Multi-lead [dB]");
  for (double cr : crs) {
    double acc_single = 0.0;
    double acc_multi = 0.0;
    for (const auto& rec : records) {
      acc_single += run_single_lead_cs(rec.leads[0], cr, cfg).mean_snr_db;
      acc_multi += run_multi_lead_cs(rec, cr, cfg).mean_snr_db;
    }
    snr_single.push_back(acc_single / static_cast<double>(records.size()));
    snr_multi.push_back(acc_multi / static_cast<double>(records.size()));
    std::printf("%-8.1f %-16.2f %-16.2f\n", cr, snr_single.back(), snr_multi.back());
  }

  const double cr_single = cs::cr_at_snr(crs, snr_single, 20.0);
  const double cr_multi = cs::cr_at_snr(crs, snr_multi, 20.0);
  std::printf("\n20 dB operating points (paper: 65.9 %% single / 72.7 %% multi):\n");
  std::printf("  single-lead CS : CR = %.1f %%\n", cr_single);
  std::printf("  multi-lead  CS : CR = %.1f %%\n", cr_multi);
  std::printf("  joint-decoding gain: +%.1f CR points\n", cr_multi - cr_single);
  return cr_multi > cr_single ? 0 : 1;
}
