// Figure 1 (conceptual) quantified: bandwidth and energy at each on-node
// abstraction level, plus projected battery life.
//
// The paper's Figure 1 claims that raising the abstraction level of the
// transmitted data (raw -> compressed -> delineated -> classified ->
// alarms) lowers the bandwidth and therefore the node energy.  This bench
// walks a 3-lead record through every operating mode of the integrated
// node and prints bytes-on-air, the energy split and the battery life a
// 150 mAh cell would deliver.
#include <cstdio>
#include <memory>

#include "cls/af_detect.hpp"
#include "cls/beat_classifier.hpp"
#include "core/node.hpp"
#include "sig/adc.hpp"
#include "sig/dataset.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  sig::SynthConfig scfg;
  scfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 240}};  // ~3.5 minutes.
  scfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(5);
  const auto rec = synthesize_ecg(scfg, rng);

  // Train the classifier and AF detector the node will host.
  auto classifier = std::make_shared<cls::BeatClassifier>();
  {
    sig::DatasetSpec spec;
    spec.num_records = 4;
    spec.beats_per_record = 120;
    spec.noise = sig::NoiseLevel::kLow;
    const auto train = sig::make_arrhythmia_dataset(spec);
    std::vector<std::vector<std::int32_t>> signals;
    std::vector<cls::BeatClassifier::TrainingRecord> training;
    for (const auto& r : train) signals.push_back(sig::quantize(r.leads[0], sig::AdcConfig{}));
    for (std::size_t i = 0; i < train.size(); ++i) {
      training.push_back({signals[i], train[i].beats});
    }
    classifier->train(training);
  }
  auto af_detector = std::make_shared<cls::AfDetector>();
  {
    sig::DatasetSpec spec;
    spec.num_records = 4;
    spec.beats_per_record = 160;
    const auto train = sig::make_af_dataset(spec);
    std::vector<std::vector<sig::BeatAnnotation>> training;
    for (const auto& r : train) training.push_back(r.beats);
    af_detector->train(training, 250.0);
  }

  std::printf("== Abstraction ladder: bandwidth and energy per mode ==\n");
  std::printf("%-16s %12s %12s %14s %12s\n", "Mode", "bytes/s", "uJ/window",
              "avg power [uW]", "battery [d]");

  const energy::BatteryModel battery;
  double prev_bytes = 1e18;
  bool monotone = true;
  for (core::OperatingMode mode :
       {core::OperatingMode::kRawStreaming, core::OperatingMode::kCompressedSingle,
        core::OperatingMode::kCompressedMulti, core::OperatingMode::kDelineation,
        core::OperatingMode::kClassification, core::OperatingMode::kAfAlarm}) {
    core::NodeConfig cfg;
    cfg.mode = mode;
    cfg.cs_cr_percent = mode == core::OperatingMode::kCompressedMulti ? 66.0 : 57.0;
    core::WbsnNode node(cfg);
    node.set_classifier(classifier);
    node.set_af_detector(af_detector);

    const std::size_t window = cfg.window_samples;
    const std::size_t count = rec.num_samples() / window;
    std::uint64_t bytes = 0;
    double energy_j = 0.0;
    for (std::size_t w = 0; w < count; ++w) {
      std::vector<std::vector<double>> leads;
      for (const auto& lead : rec.leads) {
        leads.emplace_back(lead.begin() + static_cast<long>(w * window),
                           lead.begin() + static_cast<long>((w + 1) * window));
      }
      const auto out = node.process_window(leads);
      bytes += out.tx_payload_bytes;
      energy_j += out.energy.total_j();
    }
    const double seconds = static_cast<double>(count * window) / cfg.fs;
    const double avg_power = energy_j / seconds;
    std::printf("%-16s %12.1f %12.1f %14.1f %12.1f\n", to_string(mode).c_str(),
                static_cast<double>(bytes) / seconds,
                1e6 * energy_j / static_cast<double>(count), 1e6 * avg_power,
                battery.lifetime_hours(avg_power) / 24.0);
    monotone = monotone && static_cast<double>(bytes) <= prev_bytes;
    prev_bytes = static_cast<double>(bytes);
  }
  std::printf("\nEach row transmits at a higher abstraction level than the last;\n"
              "bandwidth and energy fall while battery life grows (Figure 1).\n");
  return monotone ? 0 : 1;
}
