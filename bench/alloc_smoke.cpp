// Zero-allocation gate for the streaming hot path.
//
// Drives the pooled submit -> solve -> poll cycle in lockstep passes and
// reads the process-wide heap counter (host/alloc_meter.hpp) around the
// measured passes.  After the warmup passes have primed every pool, arena,
// matrix cache, and thread_local scratch, the steady-state claim is exact:
// ZERO operator-new calls per window, across three engine shapes —
//
//   serial    threads = 0, the poller solves inline;
//   threaded  threads = 1, a worker thread solves (its thread_local arena
//             and the cross-thread completion handoff are on the hook);
//   fabric    2 shards x 1 worker behind the consistent-hash router (the
//             shared-lock routing sweep and composite ticketing included).
//
// The gate is strict (`> 0` fails, not a budget), which is why the
// harness pre-sizes all of its own bookkeeping before the measured pass.
// Alongside the counter, every pass's reconstructions are compared
// bitwise against a plain unpooled serial reference: pooling must change
// allocation behavior and nothing else.
//
// Exit codes: 0 pass; 1 allocation or determinism failure; 3 the build
// has no counter (compile with -DWBSN_ALLOC_COUNTER=ON, or pass
// --allow-disabled to run the determinism checks alone).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "host/alloc_meter.hpp"
#include "host/payload_pool.hpp"
#include "host/reconstruction_engine.hpp"
#include "host/reconstruction_fabric.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace {

using namespace wbsn;

constexpr int kWarmupPasses = 3;
constexpr int kMeasuredPasses = 2;

struct Traffic {
  std::vector<host::CompressedWindow> templates;  ///< Payload source of truth.
  std::size_t window_samples = 0;
};

Traffic make_traffic(int patients, int beats) {
  Traffic traffic;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
    synth.noise = sig::NoiseParams::preset(sig::NoiseLevel::kModerate);
    synth.record_name = "alloc-smoke-" + std::to_string(p);
    sig::Rng rng(0xA110C0DEULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);
    auto windows = host::compress_record(record, static_cast<std::uint32_t>(p), {});
    traffic.templates.insert(traffic.templates.end(),
                             std::make_move_iterator(windows.begin()),
                             std::make_move_iterator(windows.end()));
  }
  if (!traffic.templates.empty()) {
    traffic.window_samples = traffic.templates.front().window_samples;
  }
  return traffic;
}

/// Pre-sized result capture: slots are resolved through a map built before
/// the measured pass, and signals copy into buffers that already hold
/// window_samples doubles — the harness itself allocates nothing while the
/// counter is armed.
struct Capture {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> slot_of;
  std::vector<std::vector<double>> signals;

  explicit Capture(const Traffic& traffic) {
    signals.assign(traffic.templates.size(),
                   std::vector<double>(traffic.window_samples, 0.0));
    for (std::size_t i = 0; i < traffic.templates.size(); ++i) {
      slot_of.emplace(std::make_pair(traffic.templates[i].patient_id,
                                     traffic.templates[i].window_index),
                      i);
    }
  }

  void store(const host::WindowResult& result) {
    const auto found =
        slot_of.find(std::make_pair(result.patient_id, result.window_index));
    if (found == slot_of.end() || result.signal.size() != signals[found->second].size()) {
      std::fprintf(stderr, "capture: unexpected result %u/%u (%zu samples)\n",
                   result.patient_id, result.window_index, result.signal.size());
      std::abort();
    }
    std::memcpy(signals[found->second].data(), result.signal.data(),
                result.signal.size() * sizeof(double));
  }

  bool identical(const Capture& other) const {
    if (signals.size() != other.signals.size()) return false;
    for (std::size_t i = 0; i < signals.size(); ++i) {
      if (std::memcmp(signals[i].data(), other.signals[i].data(),
                      signals[i].size() * sizeof(double)) != 0) {
        return false;
      }
    }
    return true;
  }
};

/// One lockstep pass: acquire a pooled shell per template, refill it,
/// submit, then poll everything back, recycling each signal.  Submit and
/// poll both run on this thread; workers (if any) solve in between.
template <typename SubmitFn, typename PollFn>
void run_pass(const Traffic& traffic, host::PayloadPool& pool, Capture& capture,
              SubmitFn&& submit, PollFn&& poll) {
  for (const auto& tmpl : traffic.templates) {
    host::CompressedWindow window = pool.acquire_window();
    window.patient_id = tmpl.patient_id;
    window.window_index = tmpl.window_index;
    window.matrix_seed = tmpl.matrix_seed;
    window.window_samples = tmpl.window_samples;
    window.ones_per_column = tmpl.ones_per_column;
    window.priority = tmpl.priority;
    window.measurements.assign(tmpl.measurements.begin(), tmpl.measurements.end());
    window.reference.assign(tmpl.reference.begin(), tmpl.reference.end());
    submit(std::move(window));
  }
  std::size_t polled = 0;
  while (polled < traffic.templates.size()) {
    if (auto result = poll()) {
      capture.store(*result);
      pool.recycle(std::move(*result));
      ++polled;
    } else {
      std::this_thread::yield();
    }
  }
}

struct PhaseReport {
  const char* name;
  std::uint64_t allocs = 0;
  std::uint64_t deallocs = 0;
  bool deterministic = false;
  std::size_t windows = 0;
};

/// Warmup passes, then measured passes with the counter armed.  The
/// measured capture must match the warmup capture bitwise (pass-to-pass
/// determinism) and the unpooled serial reference (pooling changes
/// nothing but allocation).
template <typename SubmitFn, typename PollFn>
PhaseReport run_phase(const char* name, const Traffic& traffic,
                      host::PayloadPool& pool, const Capture& reference,
                      SubmitFn&& submit, PollFn&& poll) {
  Capture warm(traffic);
  for (int pass = 0; pass < kWarmupPasses; ++pass) {
    run_pass(traffic, pool, warm, submit, poll);
  }

  Capture measured(traffic);
  const std::uint64_t allocs_before = host::alloc_count();
  const std::uint64_t deallocs_before = host::dealloc_count();
  for (int pass = 0; pass < kMeasuredPasses; ++pass) {
    run_pass(traffic, pool, measured, submit, poll);
  }
  PhaseReport report;
  report.name = name;
  report.allocs = host::alloc_count() - allocs_before;
  report.deallocs = host::dealloc_count() - deallocs_before;
  report.deterministic = measured.identical(warm) && measured.identical(reference);
  report.windows = traffic.templates.size() * kMeasuredPasses;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bool allow_disabled = false;
  int patients = 4;
  int beats = 6;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow-disabled") {
      allow_disabled = true;
    } else if (arg == "--patients" && i + 1 < argc) {
      patients = std::atoi(argv[++i]);
    } else if (arg == "--beats" && i + 1 < argc) {
      beats = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: alloc_smoke [--patients N] [--beats B] [--allow-disabled]\n");
      return 2;
    }
  }

  if (!host::alloc_counter_enabled()) {
    std::fprintf(stderr,
                 "alloc_smoke: built without WBSN_ALLOC_COUNTER — the heap "
                 "counter reads 0 unconditionally.\n");
    if (!allow_disabled) return 3;
  }

  const Traffic traffic = make_traffic(patients, beats);
  if (traffic.templates.empty()) {
    std::fprintf(stderr, "alloc_smoke: no traffic generated\n");
    return 2;
  }
  std::printf("# alloc_smoke: %zu windows/pass, %d warmup + %d measured passes\n",
              traffic.templates.size(), kWarmupPasses, kMeasuredPasses);

  // Unpooled serial reference: the determinism yardstick for every phase.
  Capture reference(traffic);
  {
    host::ReconstructionEngine engine(host::EngineConfig{});
    for (const auto& tmpl : traffic.templates) engine.submit(tmpl);
    for (auto& result : engine.drain()) reference.store(result);
  }

  std::vector<PhaseReport> reports;

  {
    auto pool = std::make_shared<host::PayloadPool>();
    host::EngineConfig cfg;
    cfg.threads = 0;
    cfg.batch_windows = 0;  // Auto-sizing exercises the batched arena path.
    cfg.payload_pool = pool;
    host::ReconstructionEngine engine(cfg);
    reports.push_back(run_phase(
        "serial(threads=0)", traffic, *pool, reference,
        [&](host::CompressedWindow&& w) { engine.submit(std::move(w)); },
        [&] { return engine.poll(); }));
  }
  {
    auto pool = std::make_shared<host::PayloadPool>();
    host::EngineConfig cfg;
    cfg.threads = 1;
    cfg.batch_windows = 0;
    cfg.payload_pool = pool;
    host::ReconstructionEngine engine(cfg);
    reports.push_back(run_phase(
        "threaded(threads=1)", traffic, *pool, reference,
        [&](host::CompressedWindow&& w) { engine.submit(std::move(w)); },
        [&] { return engine.poll(); }));
  }
  {
    auto pool = std::make_shared<host::PayloadPool>();
    host::FabricConfig cfg;
    cfg.shards = 2;
    cfg.engine.threads = 1;
    cfg.engine.batch_windows = 0;
    cfg.engine.payload_pool = pool;
    host::ReconstructionFabric fabric(cfg);
    reports.push_back(run_phase(
        "fabric(2x1)", traffic, *pool, reference,
        [&](host::CompressedWindow&& w) { fabric.submit(std::move(w)); },
        [&] { return fabric.poll(); }));
  }

  bool pass = true;
  std::printf("\n%-20s %10s %10s %14s %14s %8s\n", "phase", "windows", "allocs",
              "allocs/window", "deallocs", "bits");
  for (const auto& report : reports) {
    const double per_window =
        static_cast<double>(report.allocs) / static_cast<double>(report.windows);
    const bool phase_ok =
        report.deterministic &&
        (!host::alloc_counter_enabled() || report.allocs == 0);
    pass = pass && phase_ok;
    std::printf("%-20s %10zu %10" PRIu64 " %14.3f %14" PRIu64 " %8s%s\n",
                report.name, report.windows, report.allocs, per_window,
                report.deallocs, report.deterministic ? "exact" : "DIFF",
                phase_ok ? "" : "  [FAIL]");
  }
  std::printf("\nzero-allocation steady state: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
