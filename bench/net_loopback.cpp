// Cross-machine fabric loopback throughput: RoutingClient -> N in-process
// ShardServers over real TCP sockets on 127.0.0.1.  Measures the wire
// path end to end — wbsn-wire encode, kernel socket round trip, decode
// into pooled buffers, solve, result frame back — and reports windows/s,
// per-window wire bytes in each direction, and the same bit-exactness
// check against the serial in-process reference that every fabric bench
// carries.  The delta between this and host_throughput at equal thread
// counts is the price of the process boundary.
//
// Usage: net_loopback [patients] [beats_per_patient] [cr_percent]
//                     [--shards N] [--threads N] [--no-fixed]
//
// --threads is each shard's worker count.  --no-fixed disables the
// fixed-point measurement coding (fixed_scale = 0) to measure how much
// the compact coding buys on the submit path.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cs/pipeline.hpp"
#include "host/payload_pool.hpp"
#include "net/routing_client.hpp"
#include "net/shard_server.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace {

using namespace wbsn;
using Clock = std::chrono::steady_clock;

std::vector<host::CompressedWindow> make_fleet_batch(int patients,
                                                     int beats_per_patient,
                                                     double cr_percent) {
  std::vector<host::CompressedWindow> batch;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats_per_patient}};
    synth.record_name = "patient-" + std::to_string(p);
    sig::Rng rng(0x10013AD0ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);

    host::RecordCompressionConfig compression;
    compression.cr_percent = cr_percent;
    auto windows = host::compress_record(record, static_cast<std::uint32_t>(p),
                                         compression);
    batch.insert(batch.end(), std::make_move_iterator(windows.begin()),
                 std::make_move_iterator(windows.end()));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const char* positional[3] = {"8", "12", "50"};
  int n_positional = 0;
  int shards = 2;
  int threads = 2;
  bool fixed_coding = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--shards" || arg == "--threads") && i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", arg.c_str());
      return 2;
    }
    if (arg == "--shards") {
      shards = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--threads") {
      threads = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--no-fixed") {
      fixed_coding = false;
    } else if (n_positional < 3) {
      positional[n_positional++] = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  const int patients = std::atoi(positional[0]);
  const int beats = std::atoi(positional[1]);
  const double cr = std::atof(positional[2]);

  auto batch = make_fleet_batch(patients, beats, cr);
  std::printf("# net_loopback: %d patients x %d beats, CR %.0f%% -> %zu windows, "
              "%d shard%s x %d worker%s, %s measurement coding\n",
              patients, beats, cr, batch.size(), shards, shards == 1 ? "" : "s",
              threads, threads == 1 ? "" : "s",
              fixed_coding ? "fixed-point" : "float64");
  if (batch.empty()) return 0;

  // Serial in-process reference for the bit-exactness gate.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<double>> reference;
  {
    host::EngineConfig serial_cfg;
    serial_cfg.threads = 0;
    host::ReconstructionEngine serial(serial_cfg);
    for (const auto& window : batch) {
      host::CompressedWindow copy = window;
      serial.submit(std::move(copy));
    }
    for (auto& result : serial.drain()) {
      reference.emplace(std::make_pair(result.patient_id, result.window_index),
                        std::move(result.signal));
    }
  }

  const double scale =
      fixed_coding ? cs::measurement_scale_mv(sig::AdcConfig{}) : 0.0;

  // One in-process ShardServer per shard, each on its own event-loop
  // thread — identical protocol path to a real daemon, minus fork/exec.
  struct Shard {
    std::unique_ptr<net::ShardServer> server;
    std::thread loop;
  };
  std::vector<Shard> fleet(static_cast<std::size_t>(shards));
  std::vector<net::ShardEndpoint> endpoints;
  for (auto& shard : fleet) {
    net::ShardServerConfig cfg;
    cfg.engine.threads = threads;
    cfg.engine.payload_pool = std::make_shared<host::PayloadPool>();
    cfg.wire.fixed_scale = scale;
    shard.server = std::make_unique<net::ShardServer>(cfg);
    if (!shard.server->start()) {
      std::fprintf(stderr, "shard failed to start\n");
      return 1;
    }
    shard.loop = std::thread([s = shard.server.get()] { s->run(); });
    endpoints.push_back({"127.0.0.1", shard.server->port()});
  }

  net::RoutingClientConfig client_cfg;
  client_cfg.wire.fixed_scale = scale;
  client_cfg.payload_pool = std::make_shared<host::PayloadPool>();
  net::RoutingClient client(client_cfg);
  if (!client.connect(endpoints)) {
    std::fprintf(stderr, "client failed to connect\n");
    return 1;
  }

  // Wire accounting: re-encode one sample of each direction's frames to
  // size them (the client does not expose socket byte counters).
  std::size_t submit_bytes = 0;
  std::size_t result_bytes_estimate = 0;
  {
    std::vector<std::uint8_t> buf;
    net::WireEncodeOptions wire;
    wire.fixed_scale = scale;
    for (const auto& window : batch) {
      buf.clear();
      net::encode_submit_window(buf, window, /*blocking=*/true, wire);
      submit_bytes += buf.size();
    }
    // A result frame carries the full float64 signal (determinism
    // contract) plus ~40 bytes of metadata and framing.
    for (const auto& window : batch) {
      result_bytes_estimate += 8u * window.window_samples + 40u;
    }
  }

  const auto t0 = Clock::now();
  std::size_t submitted = 0;
  for (auto& window : batch) {
    host::CompressedWindow copy = window;
    if (client.submit(std::move(copy)).has_value()) ++submitted;
  }
  auto results = client.drain();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  bool all_identical = results.size() == reference.size();
  for (const auto& result : results) {
    const auto expected =
        reference.find(std::make_pair(result.patient_id, result.window_index));
    if (expected == reference.end() ||
        result.signal.size() != expected->second.size() ||
        (!result.signal.empty() &&
         std::memcmp(result.signal.data(), expected->second.data(),
                     result.signal.size() * sizeof(double)) != 0)) {
      all_identical = false;
    }
  }

  std::printf("\n%-28s %12s\n", "metric", "value");
  std::printf("%-28s %12zu\n", "windows submitted", submitted);
  std::printf("%-28s %12zu\n", "windows completed", results.size());
  std::printf("%-28s %12.1f\n", "throughput (win/s)",
              static_cast<double>(results.size()) / wall_s);
  std::printf("%-28s %12.2f\n", "wall time (s)", wall_s);
  std::printf("%-28s %12.1f\n", "submit wire bytes/window",
              static_cast<double>(submit_bytes) / static_cast<double>(batch.size()));
  std::printf("%-28s %12.1f\n", "result wire bytes/window (est)",
              static_cast<double>(result_bytes_estimate) /
                  static_cast<double>(batch.size()));

  std::printf("\nbit-exactness vs serial (%zu windows): %s\n", results.size(),
              all_identical ? "PASS" : "FAIL");

  client.shutdown(/*send_bye=*/false);
  for (auto& shard : fleet) {
    shard.server->stop();
    shard.loop.join();
  }
  return all_identical ? 0 : 1;
}
