// Cross-machine fabric loopback throughput: RoutingClient -> N in-process
// ShardServers over real TCP sockets on 127.0.0.1.  Measures the wire
// path end to end — wbsn-wire encode, kernel socket round trip, decode
// into pooled buffers, solve, result frame back — and reports windows/s,
// per-window wire bytes in each direction, and the same bit-exactness
// check against the serial in-process reference that every fabric bench
// carries.  The delta between this and host_throughput at equal thread
// counts is the price of the process boundary.
//
// Usage: net_loopback [patients] [beats_per_patient] [cr_percent]
//                     [--shards N] [--threads N] [--no-fixed] [--hints]
//                     [--pipeline N] [--batch-frames K] [--repeat R]
//                     [--min-speedup X] [--json PATH]
//
// --hints runs the closed-loop CR-hint drill instead; see the block
// comment above run_hint_loop().
//
// --threads is each shard's worker count.  --no-fixed disables the
// fixed-point measurement coding (fixed_scale = 0) to measure how much
// the compact coding buys on the submit path.
//
// --pipeline N switches to the wire-v2 comparison mode: the same traffic
// runs twice against fresh fleets — once per-window over a v1-negotiated
// connection (one blocking SUBMIT round trip per window), once pipelined
// over v2 (SUBMIT_BATCH frames of --batch-frames windows, up to N
// unacknowledged frames per shard).  The headline metric is submit-path
// throughput — first submit to last durable ACK — because that is the
// path pipelining changes; the speedup gate (>= 3x) is on that metric.
// Solve and result retrieval are identical in both phases and stay
// outside the timed submit window: comparison-mode shards run the serial
// engine (solves happen during the drain, after the submit clock stops),
// and the drain feeds the bit-exactness gate against a serial in-process
// reference with the identical config, so the determinism contract is
// still enforced end to end.  End-to-end wall time is reported alongside
// for transparency.  --min-speedup X sets the exit-code gate on the
// speedup (default 3.0; 0 makes the run a correctness smoke — sanitizer
// and matrix lanes use that, the trajectory gate keeps the full floor).
// --json writes the pipeline-mode metrics as a flat JSON object (the
// bench_trajectory.py input).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <span>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cs/pipeline.hpp"
#include "host/payload_pool.hpp"
#include "net/routing_client.hpp"
#include "net/shard_server.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace {

using namespace wbsn;
using Clock = std::chrono::steady_clock;
using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

std::vector<host::CompressedWindow> make_fleet_batch(int patients,
                                                     int beats_per_patient,
                                                     double cr_percent,
                                                     std::size_t window_samples) {
  std::vector<host::CompressedWindow> batch;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats_per_patient}};
    synth.record_name = "patient-" + std::to_string(p);
    sig::Rng rng(0x10013AD0ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);

    host::RecordCompressionConfig compression;
    compression.cr_percent = cr_percent;
    if (window_samples != 0) compression.window_samples = window_samples;
    auto windows = host::compress_record(record, static_cast<std::uint32_t>(p),
                                         compression);
    batch.insert(batch.end(), std::make_move_iterator(windows.begin()),
                 std::make_move_iterator(windows.end()));
  }
  return batch;
}

std::map<WindowKey, std::vector<double>> serial_reference(
    const std::vector<host::CompressedWindow>& batch, const host::EngineConfig& cfg) {
  std::map<WindowKey, std::vector<double>> reference;
  host::EngineConfig serial_cfg = cfg;
  serial_cfg.threads = 0;
  serial_cfg.payload_pool.reset();
  host::ReconstructionEngine serial(serial_cfg);
  for (const auto& window : batch) {
    host::CompressedWindow copy = window;
    serial.submit(std::move(copy));
  }
  for (auto& result : serial.drain()) {
    reference.emplace(WindowKey{result.patient_id, result.window_index},
                      std::move(result.signal));
  }
  return reference;
}

bool matches_reference(const std::vector<host::WindowResult>& results,
                       const std::map<WindowKey, std::vector<double>>& reference) {
  if (results.size() != reference.size()) return false;
  for (const auto& result : results) {
    const auto expected = reference.find({result.patient_id, result.window_index});
    if (expected == reference.end() ||
        result.signal.size() != expected->second.size() ||
        (!result.signal.empty() &&
         std::memcmp(result.signal.data(), expected->second.data(),
                     result.signal.size() * sizeof(double)) != 0)) {
      return false;
    }
  }
  return true;
}

/// One fleet of in-process ShardServers, each on its own event-loop
/// thread — identical protocol path to a real daemon, minus fork/exec.
struct Fleet {
  struct Shard {
    std::unique_ptr<net::ShardServer> server;
    std::thread loop;
  };
  std::vector<Shard> shards;
  std::vector<net::ShardEndpoint> endpoints;

  bool start(int count, const host::EngineConfig& engine, double fixed_scale,
             double hint_cr = 0.0) {
    shards.resize(static_cast<std::size_t>(count));
    for (auto& shard : shards) {
      net::ShardServerConfig cfg;
      cfg.engine = engine;
      cfg.engine.payload_pool = std::make_shared<host::PayloadPool>();
      cfg.wire.fixed_scale = fixed_scale;
      cfg.hint_cr_percent = hint_cr;
      // Unconditional advisory (no backlog gate): the hint-loop drill
      // proves the propagation path deterministically; the pressure gate
      // itself is engine/server unit-test territory.
      cfg.hint_backlog_deadlines = 0.0;
      shard.server = std::make_unique<net::ShardServer>(cfg);
      if (!shard.server->start()) return false;
      shard.loop = std::thread([s = shard.server.get()] { s->run(); });
      endpoints.push_back({"127.0.0.1", shard.server->port()});
    }
    return true;
  }

  ~Fleet() {
    for (auto& shard : shards) {
      if (shard.server) shard.server->stop();
      if (shard.loop.joinable()) shard.loop.join();
    }
  }
};

struct PhaseResult {
  std::size_t completed = 0;
  double submit_s = 0.0;  // First submit -> last durable ACK.
  double wall_s = 0.0;    // Submit + drain, end to end.
  bool bit_exact = false;
  bool submits_ok = false;
};

/// Runs the whole batch through a fresh client: per-window blocking
/// SUBMITs when `pipeline` is 0, the pipelined v2 path otherwise.
PhaseResult run_phase(const std::vector<host::CompressedWindow>& batch,
                      const std::map<WindowKey, std::vector<double>>& reference,
                      const net::RoutingClientConfig& client_cfg,
                      const std::vector<net::ShardEndpoint>& endpoints,
                      std::size_t pipeline) {
  PhaseResult out;
  net::RoutingClient client(client_cfg);
  if (!client.connect(endpoints)) {
    std::fprintf(stderr, "client failed to connect\n");
    return out;
  }

  // Traffic generation (the per-window copies) happens before the clock
  // starts: the timed region is the submit wire path, nothing else.
  std::vector<host::CompressedWindow> traffic;
  traffic.reserve(batch.size());
  for (const auto& window : batch) traffic.push_back(window);

  const auto t0 = Clock::now();
  std::size_t submitted = 0;
  if (pipeline == 0) {
    for (auto& window : traffic) {
      if (client.submit(std::move(window)).has_value()) ++submitted;
    }
  } else {
    for (auto& window : traffic) {
      if (client.submit_pipelined(std::move(window))) ++submitted;
    }
    if (std::getenv("WBSN_BENCH_SEGMENTS") != nullptr) {
      std::fprintf(stderr, "stage+seal: %.3f ms\n",
                   std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    }
    for (const auto& ticket : client.flush_submits()) {
      if (!ticket.has_value()) --submitted;
    }
  }
  out.submit_s = std::chrono::duration<double>(Clock::now() - t0).count();
  auto results = client.drain();
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  out.completed = results.size();
  out.submits_ok = submitted == batch.size();
  out.bit_exact = matches_reference(results, reference);
  client.shutdown(/*send_bye=*/false);
  return out;
}

/// Submit-path wire bytes for the whole batch: per-window v1 frames, or
/// v2 SUBMIT_BATCH frames of `batch_frames` windows.
std::size_t submit_wire_bytes(const std::vector<host::CompressedWindow>& batch,
                              double fixed_scale, std::size_t batch_frames) {
  std::vector<std::uint8_t> buf;
  net::WireEncodeOptions wire;
  wire.fixed_scale = fixed_scale;
  std::size_t total = 0;
  if (batch_frames == 0) {
    for (const auto& window : batch) {
      buf.clear();
      net::encode_submit_window(buf, window, net::kSubmitFlagBlocking, wire);
      total += buf.size();
    }
    return total;
  }
  for (std::size_t i = 0; i < batch.size(); i += batch_frames) {
    const std::size_t count = std::min(batch_frames, batch.size() - i);
    buf.clear();
    net::encode_submit_batch(buf, {batch.data() + i, count}, net::kSubmitFlagBlocking,
                             wire);
    total += buf.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Closed-loop CR-hint drill (--hints): the full adaptive-compression loop
// over real sockets.  Every shard is configured with an unconditional CR
// advisory (hint_cr_percent = base CR + 20); node-side AdaptiveEncoders
// encode the first half of each patient's windows at the base CR, the
// client pulls CR_HINT_ACKs from the fleet, and the second half is
// re-encoded at the hinted CR — fewer measurements on the wire, solved
// host-side against the same seeded operator rebuilt at the hinted m.
// Gates: every patient receives the hint, hinted windows carry exactly
// rows_for_cr(hint_cr, n) measurements, everything completed is
// bit-exact against a serial reference of the identical submitted
// windows, and a v1-pinned control client receives no hints (the verb is
// v2-only; absence of a hint means full fidelity, never an error).

int run_hint_loop(int patients, int beats, double cr, int shards, int threads,
                  double scale, const char* json_path) {
  const double hint_cr = std::min(90.0, cr + 20.0);

  // Node side: one raw single-lead record and one AdaptiveEncoder per
  // patient, seeded exactly like host::compress_record's lead 0 so a
  // hinted window reconstructs like a natively-encoded one.
  cs::CsPipelineConfig node_cfg;
  node_cfg.matrix_seed = cs::lead_matrix_seed(0xC0FFEE, 0);
  struct Node {
    std::vector<double> lead;
    std::unique_ptr<cs::AdaptiveEncoder> encoder;
  };
  std::vector<Node> nodes;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
    synth.record_name = "patient-" + std::to_string(p);
    sig::Rng rng(0x10013AD0ULL + static_cast<std::uint64_t>(p));
    auto record = synthesize_ecg(synth, rng);
    Node node;
    node.lead = std::move(record.leads[0]);
    node.encoder = std::make_unique<cs::AdaptiveEncoder>(node_cfg);
    nodes.push_back(std::move(node));
  }
  const auto n = static_cast<std::uint32_t>(node_cfg.window_samples);
  std::size_t windows_per_patient = nodes.front().lead.size() / n;
  for (const auto& node : nodes) {
    windows_per_patient = std::min(windows_per_patient, node.lead.size() / n);
  }
  if (windows_per_patient < 2) {
    std::fprintf(stderr, "record too short for the two-phase drill\n");
    return 2;
  }
  const std::size_t half = windows_per_patient / 2;

  const auto encode_window_at = [&](std::size_t p, std::size_t w,
                                    double cr_percent) {
    Node& node = nodes[p];
    const auto window_mv =
        std::span<const double>(node.lead).subspan(w * n, n);
    auto encoded = node.encoder->encode_at(cr_percent, window_mv);
    host::CompressedWindow cw;
    cw.patient_id = static_cast<std::uint32_t>(p);
    cw.window_index = static_cast<std::uint32_t>(w);
    cw.matrix_seed = node_cfg.matrix_seed;
    cw.window_samples = n;
    cw.ones_per_column = static_cast<std::uint32_t>(node_cfg.ones_per_column);
    cw.measurements = std::move(encoded.measurements);
    cw.reference = std::move(encoded.reference);
    return cw;
  };

  host::EngineConfig engine_cfg;
  engine_cfg.threads = threads;
  Fleet fleet;
  if (!fleet.start(shards, engine_cfg, scale, hint_cr)) {
    std::fprintf(stderr, "shard failed to start\n");
    return 1;
  }
  net::RoutingClientConfig client_cfg;
  client_cfg.wire.fixed_scale = scale;
  net::RoutingClient client(client_cfg);
  if (!client.connect(fleet.endpoints)) {
    std::fprintf(stderr, "client failed to connect\n");
    return 1;
  }

  std::printf("hint loop: %d patients x %zu windows (n=%u), CR %.0f%% base, "
              "shard advisory CR %.0f%%, %d shard%s x %d worker%s\n",
              patients, windows_per_patient, n, cr, hint_cr, shards,
              shards == 1 ? "" : "s", threads, threads == 1 ? "" : "s");

  // Phase 1: base-CR traffic.  `submitted` keeps a copy of every window
  // exactly as it went on the wire — the serial-reference input.
  std::vector<host::CompressedWindow> submitted;
  std::size_t accepted = 0;
  for (std::size_t p = 0; p < nodes.size(); ++p) {
    for (std::size_t w = 0; w < half; ++w) {
      auto cw = encode_window_at(p, w, cr);
      submitted.push_back(cw);
      if (client.submit(std::move(cw)).has_value()) ++accepted;
    }
  }

  // The closed loop: pull the fleet's advisory back to the node side.
  const bool refresh_ok = client.refresh_cr_hints();
  std::size_t hinted_patients = 0;
  for (std::size_t p = 0; p < nodes.size(); ++p) {
    const auto hint = client.cr_hint(static_cast<std::uint32_t>(p));
    if (hint && std::abs(*hint - hint_cr) < 0.01) ++hinted_patients;
  }

  // Phase 2: re-encode at whatever the fleet asked for.
  const std::size_t m_hint = cs::rows_for_cr(hint_cr, n);
  bool hinted_m_ok = true;
  for (std::size_t p = 0; p < nodes.size(); ++p) {
    for (std::size_t w = half; w < windows_per_patient; ++w) {
      const auto hint = client.cr_hint(static_cast<std::uint32_t>(p));
      auto cw = encode_window_at(p, w, hint.value_or(cr));
      hinted_m_ok = hinted_m_ok && (!hint || cw.measurements.size() == m_hint);
      submitted.push_back(cw);
      if (client.submit(std::move(cw)).has_value()) ++accepted;
    }
  }

  const auto results = client.drain();
  const auto reference = serial_reference(submitted, engine_cfg);
  const bool bit_exact = matches_reference(results, reference);

  // SNR split: the price of the hinted half, measured end to end.
  double base_snr = 0.0, hinted_snr = 0.0;
  std::size_t base_count = 0, hinted_count = 0;
  for (const auto& result : results) {
    if (std::isnan(result.snr_db)) continue;
    if (result.window_index < half) {
      base_snr += result.snr_db;
      ++base_count;
    } else {
      hinted_snr += result.snr_db;
      ++hinted_count;
    }
  }
  base_snr = base_count > 0 ? base_snr / static_cast<double>(base_count) : 0.0;
  hinted_snr =
      hinted_count > 0 ? hinted_snr / static_cast<double>(hinted_count) : 0.0;

  client.shutdown(/*send_bye=*/false);

  // Control: a v1-pinned client must see no hints — the verb is v2-only
  // and its absence degrades to full fidelity, never to an error.
  bool v1_no_hint = true;
  {
    net::RoutingClientConfig v1_cfg = client_cfg;
    v1_cfg.max_wire_version = 1;
    net::RoutingClient v1(v1_cfg);
    if (v1.connect(fleet.endpoints)) {
      v1_no_hint = v1.refresh_cr_hints();
      for (std::size_t p = 0; p < nodes.size(); ++p) {
        v1_no_hint =
            v1_no_hint && !v1.cr_hint(static_cast<std::uint32_t>(p)).has_value();
      }
      v1.shutdown(false);
    } else {
      v1_no_hint = false;
    }
  }

  std::printf("\n%-28s %12s\n", "metric", "value");
  std::printf("%-28s %12zu\n", "windows submitted", submitted.size());
  std::printf("%-28s %12zu\n", "windows completed", results.size());
  std::printf("%-28s %12zu / %d\n", "patients hinted", hinted_patients, patients);
  std::printf("%-28s %12zu\n", "base measurements/window",
              cs::rows_for_cr(cr, n));
  std::printf("%-28s %12zu\n", "hinted measurements/window", m_hint);
  std::printf("%-28s %12.2f\n", "base-CR mean SNR (dB)", base_snr);
  std::printf("%-28s %12.2f\n", "hinted-CR mean SNR (dB)", hinted_snr);
  std::printf("%-28s %12s\n", "hinted m on the wire", hinted_m_ok ? "PASS" : "FAIL");
  std::printf("%-28s %12s\n", "v1 control sees no hints", v1_no_hint ? "PASS" : "FAIL");
  std::printf("\nbit-exactness vs serial (%zu windows): %s\n", results.size(),
              bit_exact ? "PASS" : "FAIL");

  const bool ok = refresh_ok && hinted_patients == static_cast<std::size_t>(patients) &&
                  hinted_m_ok && bit_exact && v1_no_hint &&
                  accepted == submitted.size() && results.size() == submitted.size();
  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror("fopen --json");
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bit_exact\": %d,\n"
                 "  \"hinted_patients\": %zu,\n"
                 "  \"patients\": %d,\n"
                 "  \"hint_cr_percent\": %.6f,\n"
                 "  \"base_mean_snr_db\": %.6f,\n"
                 "  \"hinted_mean_snr_db\": %.6f,\n"
                 "  \"hinted_m_ok\": %d,\n"
                 "  \"v1_no_hint\": %d,\n"
                 "  \"windows\": %zu\n"
                 "}\n",
                 bit_exact ? 1 : 0, hinted_patients, patients, hint_cr, base_snr,
                 hinted_snr, hinted_m_ok ? 1 : 0, v1_no_hint ? 1 : 0,
                 submitted.size());
    std::fclose(f);
  }
  std::printf("\nhint loop: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* positional[3] = {"8", "12", "50"};
  int n_positional = 0;
  int shards = 2;
  int threads = 2;
  bool fixed_coding = true;
  bool hints = false;
  std::size_t pipeline = 0;
  std::size_t batch_frames = 16;
  const char* json_path = nullptr;
  std::size_t repeat = 3;
  double min_speedup = 3.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--shards" || arg == "--threads" || arg == "--pipeline" ||
         arg == "--batch-frames" || arg == "--repeat" || arg == "--min-speedup" ||
         arg == "--json") &&
        i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", arg.c_str());
      return 2;
    }
    if (arg == "--shards") {
      shards = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--threads") {
      threads = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--no-fixed") {
      fixed_coding = false;
    } else if (arg == "--hints") {
      hints = true;
    } else if (arg == "--pipeline") {
      pipeline = static_cast<std::size_t>(std::max(0, std::atoi(argv[++i])));
    } else if (arg == "--batch-frames") {
      batch_frames = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else if (arg == "--repeat") {
      repeat = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else if (arg == "--min-speedup") {
      min_speedup = std::atof(argv[++i]);
    } else if (arg == "--json") {
      json_path = argv[++i];
    } else if (n_positional < 3) {
      positional[n_positional++] = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  const int patients = std::atoi(positional[0]);
  const int beats = std::atoi(positional[1]);
  const double cr = std::atof(positional[2]);

  if (hints) {
    return run_hint_loop(
        patients, beats, cr, shards, threads,
        fixed_coding ? cs::measurement_scale_mv(sig::AdcConfig{}) : 0.0,
        json_path);
  }

  // Comparison mode uses the node-native 128-sample window (what a sensor
  // radio actually emits) so per-window wire cost — not solve cost —
  // dominates; single-phase mode keeps the host-side default.
  auto batch = make_fleet_batch(patients, beats, cr, pipeline > 0 ? 128u : 0u);
  std::printf("# net_loopback: %d patients x %d beats, CR %.0f%% -> %zu windows, "
              "%d shard%s x %d worker%s, %s measurement coding\n",
              patients, beats, cr, batch.size(), shards, shards == 1 ? "" : "s",
              threads, threads == 1 ? "" : "s",
              fixed_coding ? "fixed-point" : "float64");
  if (batch.empty()) return 0;

  const double scale =
      fixed_coding ? cs::measurement_scale_mv(sig::AdcConfig{}) : 0.0;

  host::EngineConfig engine_cfg;
  engine_cfg.threads = threads;
  if (pipeline > 0) {
    // Comparison mode measures the submit wire path, not the solver: the
    // shards run the serial engine (solves happen during the drain, after
    // the submit clock stops) with a light FISTA config so solver work
    // cannot leak into either phase's timed submit window.  The serial
    // reference uses the identical config, so the bit-exactness gate is
    // unaffected.
    engine_cfg.threads = 0;
    engine_cfg.fista.max_iterations = 1;
    engine_cfg.fista.debias_iterations = 0;
  }
  const auto reference = serial_reference(batch, engine_cfg);

  if (pipeline == 0) {
    // Single-phase mode: today's fleet-wide default (the client negotiates
    // the highest mutual version; submits are per-window round trips).
    Fleet fleet;
    if (!fleet.start(shards, engine_cfg, scale)) {
      std::fprintf(stderr, "shard failed to start\n");
      return 1;
    }
    net::RoutingClientConfig client_cfg;
    client_cfg.wire.fixed_scale = scale;
    client_cfg.payload_pool = std::make_shared<host::PayloadPool>();
    const auto phase = run_phase(batch, reference, client_cfg, fleet.endpoints, 0);

    const std::size_t submit_bytes = submit_wire_bytes(batch, scale, 0);
    // A result frame carries the full float64 signal (determinism
    // contract) plus ~40 bytes of metadata and framing.
    std::size_t result_bytes_estimate = 0;
    for (const auto& window : batch) {
      result_bytes_estimate += 8u * window.window_samples + 40u;
    }

    std::printf("\n%-28s %12s\n", "metric", "value");
    std::printf("%-28s %12zu\n", "windows submitted", batch.size());
    std::printf("%-28s %12zu\n", "windows completed", phase.completed);
    std::printf("%-28s %12.1f\n", "throughput (win/s)",
                static_cast<double>(phase.completed) / phase.wall_s);
    std::printf("%-28s %12.2f\n", "wall time (s)", phase.wall_s);
    std::printf("%-28s %12.1f\n", "submit wire bytes/window",
                static_cast<double>(submit_bytes) / static_cast<double>(batch.size()));
    std::printf("%-28s %12.1f\n", "result wire bytes/window (est)",
                static_cast<double>(result_bytes_estimate) /
                    static_cast<double>(batch.size()));

    std::printf("\nbit-exactness vs serial (%zu windows): %s\n", phase.completed,
                phase.bit_exact ? "PASS" : "FAIL");
    return phase.bit_exact ? 0 : 1;
  }

  // Pipeline comparison mode: identical traffic, fresh fleet per phase.
  net::RoutingClientConfig v1_cfg;
  v1_cfg.wire.fixed_scale = scale;
  v1_cfg.payload_pool = std::make_shared<host::PayloadPool>();
  v1_cfg.max_wire_version = 1;  // Per-window blocking SUBMIT, v1 POLL.
  net::RoutingClientConfig v2_cfg = v1_cfg;
  v2_cfg.max_wire_version = net::kWireVersionMax;
  v2_cfg.pipeline_depth = pipeline;
  v2_cfg.submit_batch_windows = batch_frames;

  // Best-of-N on the submit clock: a shared-core container's scheduler
  // can land anywhere in a single run, so each repeat re-runs both phases
  // against fresh fleets and the fastest submit window per phase is what
  // gets compared.  Correctness is not best-of-N: every repeat must be
  // bit-exact with all submits accepted.
  PhaseResult v1, v2;
  bool every_run_ok = true;
  for (std::size_t r = 0; r < repeat; ++r) {
    PhaseResult a, b;
    {
      Fleet fleet;
      if (!fleet.start(shards, engine_cfg, scale)) {
        std::fprintf(stderr, "shard failed to start\n");
        return 1;
      }
      a = run_phase(batch, reference, v1_cfg, fleet.endpoints, 0);
    }
    {
      Fleet fleet;
      if (!fleet.start(shards, engine_cfg, scale)) {
        std::fprintf(stderr, "shard failed to start\n");
        return 1;
      }
      b = run_phase(batch, reference, v2_cfg, fleet.endpoints, pipeline);
    }
    every_run_ok = every_run_ok && a.bit_exact && b.bit_exact && a.submits_ok &&
                   b.submits_ok;
    if (r == 0 || a.submit_s < v1.submit_s) v1 = a;
    if (r == 0 || b.submit_s < v2.submit_s) v2 = b;
  }
  v1.bit_exact = v1.bit_exact && every_run_ok;
  v2.bit_exact = v2.bit_exact && every_run_ok;

  // The headline rate is the submit path — first submit to last durable
  // ACK — over the full batch; that is the path pipelining changes.
  const double v1_rate = static_cast<double>(batch.size()) / v1.submit_s;
  const double v2_rate = static_cast<double>(batch.size()) / v2.submit_s;
  const double speedup = v1_rate > 0.0 ? v2_rate / v1_rate : 0.0;
  const double v1_bytes = static_cast<double>(submit_wire_bytes(batch, scale, 0)) /
                          static_cast<double>(batch.size());
  const double v2_bytes =
      static_cast<double>(submit_wire_bytes(batch, scale, batch_frames)) /
      static_cast<double>(batch.size());

  std::printf("\n%-28s %12s %12s\n", "metric", "v1 per-window", "v2 pipelined");
  std::printf("%-28s %12zu %12zu\n", "windows completed", v1.completed, v2.completed);
  std::printf("%-28s %12.1f %12.1f\n", "submit throughput (win/s)", v1_rate, v2_rate);
  std::printf("%-28s %12.2f %12.2f\n", "submit time (ms)", v1.submit_s * 1e3,
              v2.submit_s * 1e3);
  std::printf("%-28s %12.2f %12.2f\n", "end-to-end wall (s)", v1.wall_s, v2.wall_s);
  std::printf("%-28s %12.1f %12.1f\n", "submit wire bytes/window", v1_bytes, v2_bytes);
  std::printf("%-28s %12s %12s\n", "bit-exact vs serial",
              v1.bit_exact ? "PASS" : "FAIL", v2.bit_exact ? "PASS" : "FAIL");
  const bool speedup_ok = speedup >= min_speedup;
  std::printf("\npipelined speedup (depth %zu, %zu windows/frame): %.2fx "
              "(gate >= %.1fx): %s\n",
              pipeline, batch_frames, speedup, min_speedup,
              speedup_ok ? "PASS" : "FAIL");

  const bool ok =
      v1.bit_exact && v2.bit_exact && v1.submits_ok && v2.submits_ok && speedup_ok;
  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror("fopen --json");
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bit_exact\": %d,\n"
                 "  \"pipeline_depth\": %zu,\n"
                 "  \"batch_frames\": %zu,\n"
                 "  \"speedup\": %.6f,\n"
                 "  \"submit_bytes_per_window_v1\": %.1f,\n"
                 "  \"submit_bytes_per_window_v2\": %.1f,\n"
                 "  \"v1_win_per_s\": %.6f,\n"
                 "  \"v2_win_per_s\": %.6f,\n"
                 "  \"v1_wall_s\": %.6f,\n"
                 "  \"v2_wall_s\": %.6f,\n"
                 "  \"windows\": %zu\n"
                 "}\n",
                 (v1.bit_exact && v2.bit_exact) ? 1 : 0, pipeline, batch_frames,
                 speedup, v1_bytes, v2_bytes, v1_rate, v2_rate, v1.wall_s,
                 v2.wall_s, batch.size());
    std::fclose(f);
  }
  return ok ? 0 : 1;
}
