// Figure 6 reproduction: node energy breakdown (radio / sampling / OS /
// compression) per acquisition window for raw streaming vs single-lead CS
// vs multi-lead CS at their respective 20 dB operating points.
//
// Paper's result: average power reductions of 44.7 % (single-lead CS) and
// 56.1 % (multi-lead CS) versus raw streaming, with the radio share
// shrinking and a negligible compression share appearing.
#include <cstdio>

#include "core/node.hpp"
#include "energy/node.hpp"
#include "sig/ecg_synth.hpp"

int main() {
  using namespace wbsn;

  sig::SynthConfig scfg;
  scfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 120}};
  scfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(2024);
  const auto rec = synthesize_ecg(scfg, rng);

  struct Row {
    const char* name;
    core::OperatingMode mode;
    double cr;
  };
  // Operating points: the CRs at which each mode delivers ~20 dB on this
  // data (measured by fig5_snr_vs_cr; the paper's MIT-BIH equivalents are
  // 65.9 % and 72.7 %).
  const Row rows[] = {
      {"No Comp.", core::OperatingMode::kRawStreaming, 0.0},
      {"Single-Lead CS", core::OperatingMode::kCompressedSingle, 52.7},
      {"Multi-Lead CS", core::OperatingMode::kCompressedMulti, 61.8},
  };

  std::printf("== Figure 6: per-window energy breakdown [uJ] ==\n");
  std::printf("%-16s %10s %10s %10s %10s %10s\n", "Config", "Radio", "Sampling", "OS",
              "Comp.", "Total");

  double baseline_total = 0.0;
  double reductions[3] = {0, 0, 0};
  int idx = 0;
  for (const auto& row : rows) {
    core::NodeConfig cfg;
    cfg.mode = row.mode;
    cfg.cs_cr_percent = row.cr;
    core::WbsnNode node(cfg);

    const std::size_t window = cfg.window_samples;
    const std::size_t count = rec.num_samples() / window;
    energy::EnergyBreakdown acc;
    for (std::size_t w = 0; w < count; ++w) {
      std::vector<std::vector<double>> leads;
      for (const auto& lead : rec.leads) {
        leads.emplace_back(lead.begin() + static_cast<long>(w * window),
                           lead.begin() + static_cast<long>((w + 1) * window));
      }
      const auto out = node.process_window(leads);
      acc.radio_j += out.energy.radio_j;
      acc.sampling_j += out.energy.sampling_j;
      acc.os_j += out.energy.os_j;
      acc.computation_j += out.energy.computation_j;
    }
    const double n = static_cast<double>(count);
    std::printf("%-16s %10.1f %10.1f %10.1f %10.1f %10.1f\n", row.name,
                1e6 * acc.radio_j / n, 1e6 * acc.sampling_j / n, 1e6 * acc.os_j / n,
                1e6 * acc.computation_j / n, 1e6 * acc.total_j() / n);
    if (idx == 0) baseline_total = acc.total_j();
    reductions[idx] = 100.0 * (1.0 - acc.total_j() / baseline_total);
    ++idx;
  }

  std::printf("\nAverage power reduction vs raw streaming");
  std::printf(" (paper: 44.7 %% single / 56.1 %% multi):\n");
  std::printf("  single-lead CS : %.1f %%\n", reductions[1]);
  std::printf("  multi-lead  CS : %.1f %%\n", reductions[2]);
  return (reductions[1] > 20.0 && reductions[2] > reductions[1]) ? 0 : 1;
}
