#include "sig/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace wbsn::sig {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // All values of a tiny range get hit.
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParamsScalesAndShifts) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(29);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // Child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(37);
  Rng b(37);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace wbsn::sig
