#include "sig/ppg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sig/ecg_synth.hpp"

namespace wbsn::sig {
namespace {

Record make_ecg(int beats = 40, std::uint64_t seed = 1) {
  SynthConfig cfg;
  cfg.episodes = {{RhythmEpisode::Kind::kSinus, beats}};
  cfg.noise = NoiseParams::preset(NoiseLevel::kNone);
  Rng rng(seed);
  return synthesize_ecg(cfg, rng);
}

TEST(BpTrajectory, FlatWithoutExcursion) {
  BpTrajectory bp;
  bp.baseline_mmhg = 92.0;
  EXPECT_DOUBLE_EQ(bp.map_at(0.0), 92.0);
  EXPECT_DOUBLE_EQ(bp.map_at(500.0), 92.0);
}

TEST(BpTrajectory, ExcursionPeaksMidWindow) {
  BpTrajectory bp;
  bp.baseline_mmhg = 90.0;
  bp.excursion_mmhg = 20.0;
  bp.excursion_t0_s = 100.0;
  bp.excursion_len_s = 60.0;
  EXPECT_DOUBLE_EQ(bp.map_at(99.0), 90.0);
  EXPECT_NEAR(bp.map_at(130.0), 110.0, 1e-9);
  EXPECT_DOUBLE_EQ(bp.map_at(161.0), 90.0);
}

TEST(BpTrajectory, PwvIncreasesWithPressure) {
  BpTrajectory bp;
  EXPECT_GT(bp.pwv_for_map(120.0), bp.pwv_for_map(80.0));
}

TEST(PpgSynth, OnePulsePerBeat) {
  const Record ecg = make_ecg(40);
  Rng rng(2);
  const PpgRecord ppg = synthesize_ppg(ecg, PpgConfig{}, BpTrajectory{}, rng);
  // All beats except possibly the last (whose pulse may fall past the end)
  // produce a pulse.
  EXPECT_GE(ppg.truth.foot_samples.size(), ecg.beats.size() - 1);
  EXPECT_EQ(ppg.samples.size(), ecg.num_samples());
}

TEST(PpgSynth, FootTrailsRPeakByPat) {
  const Record ecg = make_ecg(30);
  Rng rng(3);
  PpgConfig cfg;
  cfg.pre_ejection_s = 0.06;
  BpTrajectory bp;  // Constant 90 mmHg -> constant PTT.
  const PpgRecord ppg = synthesize_ppg(ecg, cfg, bp, rng);
  const double expected_ptt = cfg.artery_length_m / bp.pwv_for_map(90.0);
  for (std::size_t i = 0; i < ppg.truth.foot_samples.size(); ++i) {
    const double pat =
        static_cast<double>(ppg.truth.foot_samples[i] - ecg.beats[i].r_peak) / ppg.fs;
    EXPECT_NEAR(pat, cfg.pre_ejection_s + expected_ptt, 0.01);
  }
}

TEST(PpgSynth, TruthVectorsConsistent) {
  const Record ecg = make_ecg(25);
  Rng rng(4);
  const PpgRecord ppg = synthesize_ppg(ecg, PpgConfig{}, BpTrajectory{}, rng);
  const auto n = ppg.truth.foot_samples.size();
  EXPECT_EQ(ppg.truth.ptt_s.size(), n);
  EXPECT_EQ(ppg.truth.pwv_m_per_s.size(), n);
  EXPECT_EQ(ppg.truth.map_mmhg.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ppg.truth.ptt_s[i] * ppg.truth.pwv_m_per_s[i], 0.65, 1e-9);
  }
}

TEST(PpgSynth, HigherPressureShortensPtt) {
  const Record ecg = make_ecg(60);
  Rng rng_a(5);
  Rng rng_b(5);
  BpTrajectory low;
  low.baseline_mmhg = 80.0;
  BpTrajectory high;
  high.baseline_mmhg = 120.0;
  const PpgRecord ppg_low = synthesize_ppg(ecg, PpgConfig{}, low, rng_a);
  const PpgRecord ppg_high = synthesize_ppg(ecg, PpgConfig{}, high, rng_b);
  EXPECT_GT(ppg_low.truth.ptt_s[5], ppg_high.truth.ptt_s[5]);
}

TEST(PpgSynth, PulseRisesAfterFoot) {
  const Record ecg = make_ecg(20);
  Rng rng(6);
  PpgConfig cfg;
  cfg.noise_rms = 0.0;
  const PpgRecord ppg = synthesize_ppg(ecg, cfg, BpTrajectory{}, rng);
  for (std::size_t i = 0; i + 1 < ppg.truth.foot_samples.size(); ++i) {
    const auto foot = static_cast<std::size_t>(ppg.truth.foot_samples[i]);
    const auto peak_region_end = std::min(ppg.samples.size() - 1, foot + 40);
    const double at_foot = ppg.samples[foot];
    const double peak = *std::max_element(ppg.samples.begin() + static_cast<long>(foot),
                                          ppg.samples.begin() + static_cast<long>(peak_region_end));
    EXPECT_GT(peak, at_foot + 0.3);
  }
}

}  // namespace
}  // namespace wbsn::sig
