#include "sig/ecg_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wbsn::sig {
namespace {

TEST(GaussWave, PeaksAtCenter) {
  const GaussWave w{1.0, 0.1, 0.02};
  EXPECT_DOUBLE_EQ(w.value(0.1), 1.0);
  EXPECT_LT(w.value(0.1 + 0.02), 1.0);
  EXPECT_NEAR(w.value(0.1 + 0.02), std::exp(-0.5), 1e-12);
}

TEST(GaussWave, SymmetricAroundCenter) {
  const GaussWave w{-0.5, 0.0, 0.01};
  for (double dt : {0.005, 0.01, 0.02}) {
    EXPECT_DOUBLE_EQ(w.value(dt), w.value(-dt));
  }
}

TEST(NormalBeat, RWaveDominates) {
  const BeatTemplate beat = make_normal_beat(0.85);
  const double at_r = beat.value(0.0);
  EXPECT_GT(at_r, 0.9);
  EXPECT_GT(at_r, std::abs(beat.value(-0.2)));  // > P region.
  EXPECT_GT(at_r, std::abs(beat.value(0.3)));   // > T region.
}

TEST(NormalBeat, HasAllFiducials) {
  const BeatTemplate beat = make_normal_beat(0.85);
  const BeatAnnotation ann = beat.annotate(1000, 250.0);
  EXPECT_EQ(ann.r_peak, 1000);
  EXPECT_TRUE(ann.p.valid());
  EXPECT_TRUE(ann.qrs.valid());
  EXPECT_TRUE(ann.t.valid());
  // Physiological ordering.
  EXPECT_LT(ann.p.onset, ann.p.peak);
  EXPECT_LT(ann.p.peak, ann.p.offset);
  EXPECT_LT(ann.p.offset, ann.qrs.onset);
  EXPECT_LT(ann.qrs.onset, ann.qrs.peak);
  EXPECT_EQ(ann.qrs.peak, 1000);
  EXPECT_LT(ann.qrs.peak, ann.qrs.offset);
  EXPECT_LT(ann.qrs.offset, ann.t.onset);
  EXPECT_LT(ann.t.onset, ann.t.peak);
  EXPECT_LT(ann.t.peak, ann.t.offset);
}

TEST(PvcBeat, NoPWaveAndWideQrs) {
  const BeatTemplate pvc = make_pvc_beat(0.85);
  const BeatTemplate normal = make_normal_beat(0.85);
  EXPECT_FALSE(pvc.has_p_wave);
  const BeatAnnotation ann = pvc.annotate(500, 250.0);
  EXPECT_FALSE(ann.p.valid());
  const auto qrs_width = [](const BeatAnnotation& a) { return a.qrs.offset - a.qrs.onset; };
  const BeatAnnotation nann = normal.annotate(500, 250.0);
  EXPECT_GT(qrs_width(ann), 3 * qrs_width(nann) / 2);
}

TEST(PvcBeat, TWaveDiscordant) {
  const BeatTemplate pvc = make_pvc_beat(0.85);
  // Dominant QRS deflection positive, T wave negative (discordant).
  EXPECT_GT(pvc.wave(WaveIdx::kR).amplitude_mv, 0.0);
  EXPECT_LT(pvc.wave(WaveIdx::kT).amplitude_mv, 0.0);
}

TEST(ApcBeat, SmallerDisplacedPWave) {
  const BeatTemplate apc = make_apc_beat(0.85);
  const BeatTemplate normal = make_normal_beat(0.85);
  EXPECT_TRUE(apc.has_p_wave);
  EXPECT_LT(apc.wave(WaveIdx::kP).amplitude_mv, normal.wave(WaveIdx::kP).amplitude_mv);
}

TEST(AfBeat, NoPWave) {
  const BeatTemplate af = make_af_beat(0.7);
  EXPECT_FALSE(af.has_p_wave);
  EXPECT_EQ(af.wave(WaveIdx::kP).amplitude_mv, 0.0);
  EXPECT_FALSE(af.annotate(100, 250.0).p.valid());
}

TEST(TWave, AdaptsToRate) {
  // Faster rate (shorter RR) -> earlier T wave (QT shortening).
  const BeatTemplate fast = make_normal_beat(0.5);
  const BeatTemplate slow = make_normal_beat(1.2);
  EXPECT_LT(fast.wave(WaveIdx::kT).center_s, slow.wave(WaveIdx::kT).center_s);
}

TEST(Support, CoversPToT) {
  const BeatTemplate beat = make_normal_beat(0.85);
  EXPECT_LT(beat.support_begin_s(), -0.2);
  EXPECT_GT(beat.support_end_s(), 0.3);
  EXPECT_LT(beat.support_end_s(), 0.8);  // Within one cardiac cycle.
}

TEST(Jitter, PreservesSignsAndRoughMagnitude) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    BeatTemplate beat = make_normal_beat(0.85);
    jitter_template(beat, 0.05, rng);
    EXPECT_GT(beat.wave(WaveIdx::kR).amplitude_mv, 0.7);
    EXPECT_LT(beat.wave(WaveIdx::kQ).amplitude_mv, 0.0);
    EXPECT_GT(beat.wave(WaveIdx::kR).sigma_s, 0.005);
  }
}

TEST(Jitter, ZeroAmplitudeWavesStayAbsent) {
  Rng rng(43);
  BeatTemplate beat = make_af_beat(0.8);
  jitter_template(beat, 0.1, rng);
  EXPECT_EQ(beat.wave(WaveIdx::kP).amplitude_mv, 0.0);
}

TEST(LeadProjection, ThreeLeadsDiffer) {
  const auto proj = LeadProjection::standard3();
  ASSERT_EQ(proj.num_leads(), 3u);
  const BeatTemplate beat = make_normal_beat(0.85);
  const double r0 = proj.project(beat, 0, 0.0);
  const double r1 = proj.project(beat, 1, 0.0);
  const double r2 = proj.project(beat, 2, 0.0);
  EXPECT_NE(r0, r1);
  EXPECT_NE(r1, r2);
  // All leads still show a dominant positive R in this model.
  EXPECT_GT(r0, 0.3);
  EXPECT_GT(r1, 0.3);
  EXPECT_GT(r2, 0.3);
}

TEST(LeadProjection, LeadZeroIsIdentity) {
  const auto proj = LeadProjection::standard3();
  const BeatTemplate beat = make_normal_beat(0.85);
  for (double t : {-0.2, -0.03, 0.0, 0.04, 0.3}) {
    EXPECT_NEAR(proj.project(beat, 0, t), beat.value(t), 1e-12);
  }
}

}  // namespace
}  // namespace wbsn::sig
