#include "sig/ecg_synth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wbsn::sig {
namespace {

SynthConfig clean_config(int beats = 30) {
  SynthConfig cfg;
  cfg.episodes = {{RhythmEpisode::Kind::kSinus, beats}};
  cfg.noise = NoiseParams::preset(NoiseLevel::kNone);
  return cfg;
}

TEST(EcgSynth, ProducesRequestedBeatsAndLeads) {
  Rng rng(1);
  const Record rec = synthesize_ecg(clean_config(30), rng);
  EXPECT_EQ(rec.num_leads(), 3u);
  EXPECT_EQ(rec.beats.size(), 30u);
  EXPECT_GT(rec.num_samples(), 0u);
  for (const auto& lead : rec.leads) EXPECT_EQ(lead.size(), rec.num_samples());
}

TEST(EcgSynth, RPeaksAreLocalMaximaOfLeadOne) {
  Rng rng(2);
  const Record rec = synthesize_ecg(clean_config(25), rng);
  const auto& lead = rec.leads[0];
  for (const auto& beat : rec.beats) {
    const auto r = static_cast<std::size_t>(beat.r_peak);
    ASSERT_LT(r, lead.size());
    // The sample at the annotated R peak should be within one sample of the
    // local maximum of a +/-40 ms neighbourhood.
    const std::size_t lo = r >= 10 ? r - 10 : 0;
    const std::size_t hi = std::min(lead.size() - 1, r + 10);
    const auto max_it = std::max_element(lead.begin() + static_cast<long>(lo),
                                         lead.begin() + static_cast<long>(hi) + 1);
    const auto max_idx = static_cast<std::size_t>(std::distance(lead.begin(), max_it));
    EXPECT_LE(max_idx > r ? max_idx - r : r - max_idx, 1u) << "beat at " << r;
  }
}

TEST(EcgSynth, AnnotationsSortedAndInRange) {
  Rng rng(3);
  const Record rec = synthesize_ecg(clean_config(40), rng);
  for (std::size_t i = 1; i < rec.beats.size(); ++i) {
    EXPECT_GT(rec.beats[i].r_peak, rec.beats[i - 1].r_peak);
  }
  for (const auto& beat : rec.beats) {
    EXPECT_GE(beat.qrs.onset, 0);
    EXPECT_LT(beat.t.offset, static_cast<std::int64_t>(rec.num_samples()));
  }
}

TEST(EcgSynth, RrIntervalsMatchConfiguredRate) {
  Rng rng(4);
  SynthConfig cfg = clean_config(100);
  cfg.sinus.mean_hr_bpm = 60.0;
  const Record rec = synthesize_ecg(cfg, rng);
  const auto rr = rec.rr_intervals_s();
  const double mean_rr =
      std::accumulate(rr.begin(), rr.end(), 0.0) / static_cast<double>(rr.size());
  EXPECT_NEAR(mean_rr, 1.0, 0.05);
}

TEST(EcgSynth, PvcInjectionProducesLabelsAndPauses) {
  Rng rng(5);
  SynthConfig cfg = clean_config(300);
  cfg.pvc_probability = 0.15;
  const Record rec = synthesize_ecg(cfg, rng);
  int pvc_count = 0;
  for (std::size_t i = 0; i < rec.beats.size(); ++i) {
    if (rec.beats[i].label != BeatClass::kPvc) continue;
    ++pvc_count;
    EXPECT_FALSE(rec.beats[i].p.valid());  // PVCs carry no P wave.
    if (i > 0 && i + 1 < rec.beats.size()) {
      const auto rr_before = rec.beats[i].r_peak - rec.beats[i - 1].r_peak;
      const auto rr_after = rec.beats[i + 1].r_peak - rec.beats[i].r_peak;
      EXPECT_GT(rr_after, rr_before);  // Compensatory pause.
    }
  }
  EXPECT_GT(pvc_count, 10);
}

TEST(EcgSynth, ApcInjectionProducesEarlyBeats) {
  Rng rng(6);
  SynthConfig cfg = clean_config(300);
  cfg.apc_probability = 0.12;
  const Record rec = synthesize_ecg(cfg, rng);
  int apc_count = 0;
  for (std::size_t i = 1; i < rec.beats.size(); ++i) {
    if (rec.beats[i].label != BeatClass::kApc) continue;
    ++apc_count;
    EXPECT_TRUE(rec.beats[i].p.valid());  // APCs keep a (displaced) P wave.
  }
  EXPECT_GT(apc_count, 8);
}

TEST(EcgSynth, AfEpisodeFlagsRecordAndRemovesPWaves) {
  Rng rng(7);
  SynthConfig cfg = clean_config();
  cfg.episodes = {{RhythmEpisode::Kind::kSinus, 20}, {RhythmEpisode::Kind::kAfib, 40}};
  const Record rec = synthesize_ecg(cfg, rng);
  EXPECT_TRUE(rec.af_episode_present);
  int af_beats = 0;
  for (const auto& beat : rec.beats) {
    if (beat.label == BeatClass::kAfib) {
      ++af_beats;
      EXPECT_FALSE(beat.p.valid());
    }
  }
  EXPECT_EQ(af_beats, 40);
}

TEST(EcgSynth, NoiseRaisesOutOfBandPower) {
  Rng rng_a(8);
  Rng rng_b(8);
  SynthConfig clean = clean_config(20);
  SynthConfig noisy = clean;
  noisy.noise = NoiseParams::preset(NoiseLevel::kSevere);
  const Record rc = synthesize_ecg(clean, rng_a);
  const Record rn = synthesize_ecg(noisy, rng_b);
  const auto power = [](const std::vector<double>& x) {
    double acc = 0.0;
    for (double v : x) acc += v * v;
    return acc / static_cast<double>(x.size());
  };
  EXPECT_GT(power(rn.leads[0]), 1.5 * power(rc.leads[0]));
}

TEST(EcgSynth, DeterministicGivenSeed) {
  Rng a(9);
  Rng b(9);
  const Record ra = synthesize_ecg(clean_config(15), a);
  const Record rb = synthesize_ecg(clean_config(15), b);
  ASSERT_EQ(ra.num_samples(), rb.num_samples());
  EXPECT_EQ(ra.leads[0], rb.leads[0]);
  EXPECT_EQ(ra.beats.size(), rb.beats.size());
}

TEST(EcgSynth, LeadsAreCorrelatedButNotIdentical) {
  Rng rng(10);
  const Record rec = synthesize_ecg(clean_config(30), rng);
  const auto& a = rec.leads[0];
  const auto& b = rec.leads[1];
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const double corr = dot / std::sqrt(na * nb);
  EXPECT_GT(corr, 0.6);   // Same cardiac source.
  EXPECT_LT(corr, 0.999); // Different projection.
  EXPECT_NE(a, b);
}

TEST(EcgSynth, RrSeriesMatchesAnnotationSpacing) {
  Rng rng(11);
  const Record rec = synthesize_ecg(clean_config(50), rng);
  const auto rr = rec.rr_intervals_s();
  ASSERT_EQ(rr.size(), rec.beats.size() - 1);
  for (double v : rr) {
    EXPECT_GT(v, 0.3);
    EXPECT_LT(v, 2.1);
  }
}

}  // namespace
}  // namespace wbsn::sig
