#include "sig/noise.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace wbsn::sig {
namespace {

constexpr double kFs = 250.0;

double rms(const std::vector<double>& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc / static_cast<double>(x.size()));
}

/// Single-bin Goertzel power at frequency f (relative units).
double tone_power(const std::vector<double>& x, double f, double fs) {
  double re = 0.0;
  double im = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double w = 2.0 * std::numbers::pi * f * static_cast<double>(i) / fs;
    re += x[i] * std::cos(w);
    im += x[i] * std::sin(w);
  }
  return (re * re + im * im) / static_cast<double>(x.size() * x.size());
}

TEST(NoisePresets, NoneIsSilent) {
  Rng rng(1);
  const auto p = NoiseParams::preset(NoiseLevel::kNone);
  const auto noise = gen_composite(p, 5000, kFs, rng);
  EXPECT_EQ(rms(noise), 0.0);
}

TEST(NoisePresets, SeverityOrdering) {
  const std::vector<NoiseLevel> levels = {NoiseLevel::kLow, NoiseLevel::kModerate,
                                          NoiseLevel::kSevere};
  double prev = 0.0;
  for (NoiseLevel level : levels) {
    Rng rng(2);
    const auto noise = gen_composite(NoiseParams::preset(level), 20000, kFs, rng);
    const double r = rms(noise);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(BaselineWander, EnergyConcentratedAtLowFrequency) {
  Rng rng(3);
  NoiseParams p;
  p.baseline_wander_mv = 0.3;
  const auto w = gen_baseline_wander(p, 50000, kFs, rng);
  // Power near the breathing frequency dwarfs power at 10 Hz.
  EXPECT_GT(tone_power(w, p.baseline_freq_hz, kFs), 100.0 * tone_power(w, 10.0, kFs));
}

TEST(BaselineWander, AmplitudeScalesWithParam) {
  Rng rng_a(4);
  Rng rng_b(4);
  NoiseParams small;
  small.baseline_wander_mv = 0.1;
  NoiseParams big;
  big.baseline_wander_mv = 0.4;
  const auto ws = gen_baseline_wander(small, 20000, kFs, rng_a);
  const auto wb = gen_baseline_wander(big, 20000, kFs, rng_b);
  EXPECT_NEAR(rms(wb) / rms(ws), 4.0, 0.8);
}

TEST(Powerline, PeaksAtMainsFrequency) {
  Rng rng(5);
  NoiseParams p;
  p.powerline_mv = 0.1;
  const auto x = gen_powerline(p, 25000, kFs, rng);
  const double at_mains = tone_power(x, 50.0, kFs);
  EXPECT_GT(at_mains, 30.0 * tone_power(x, 30.0, kFs));
  EXPECT_GT(at_mains, 30.0 * tone_power(x, 70.0, kFs));
}

TEST(Powerline, ContainsThirdHarmonic) {
  Rng rng(6);
  NoiseParams p;
  p.powerline_mv = 0.1;
  // 3rd harmonic of 50 Hz = 150 Hz aliases at 250 Hz sampling to 100 Hz.
  const auto x = gen_powerline(p, 25000, kFs, rng);
  EXPECT_GT(tone_power(x, 100.0, kFs), 5.0 * tone_power(x, 80.0, kFs));
}

TEST(Emg, MatchesRequestedRms) {
  Rng rng(7);
  NoiseParams p;
  p.emg_rms_mv = 0.05;
  const auto x = gen_emg(p, 30000, kFs, rng);
  EXPECT_NEAR(rms(x), 0.05, 0.005);
}

TEST(Emg, IsHighPassShaped) {
  Rng rng(8);
  NoiseParams p;
  p.emg_rms_mv = 0.05;
  const auto x = gen_emg(p, 50000, kFs, rng);
  // Average power in a high band exceeds a low band.
  double low = 0.0;
  double high = 0.0;
  for (double f = 1.0; f <= 5.0; f += 1.0) low += tone_power(x, f, kFs);
  for (double f = 60.0; f <= 64.0; f += 1.0) high += tone_power(x, f, kFs);
  EXPECT_GT(high, 2.0 * low);
}

TEST(Motion, ZeroRateMeansNoArtifacts) {
  Rng rng(9);
  NoiseParams p;
  p.motion_rate_hz = 0.0;
  const auto x = gen_motion_artifacts(p, 10000, kFs, rng);
  EXPECT_EQ(rms(x), 0.0);
}

TEST(Motion, ArtifactsAreSparseTransients) {
  Rng rng(10);
  NoiseParams p;
  p.motion_rate_hz = 0.05;
  p.motion_peak_mv = 1.0;
  const auto x = gen_motion_artifacts(p, 250 * 600, kFs, rng);  // 10 minutes.
  // Most samples are near zero (sparse), but peaks exist.
  std::size_t quiet = 0;
  double peak = 0.0;
  for (double v : x) {
    if (std::abs(v) < 0.01) ++quiet;
    peak = std::max(peak, std::abs(v));
  }
  EXPECT_GT(static_cast<double>(quiet) / static_cast<double>(x.size()), 0.5);
  EXPECT_GT(peak, 0.3);
}

TEST(White, MatchesRequestedRms) {
  Rng rng(11);
  NoiseParams p;
  p.white_rms_mv = 0.02;
  const auto x = gen_white(p, 50000, rng);
  EXPECT_NEAR(rms(x), 0.02, 0.002);
}

TEST(Fibrillatory, EnergyInAtrialBand) {
  Rng rng(12);
  const auto x = gen_fibrillatory_waves(0.08, 50000, kFs, rng);
  double atrial = 0.0;
  double outside = 0.0;
  for (double f = 4.0; f <= 9.0; f += 0.5) atrial += tone_power(x, f, kFs);
  for (double f = 25.0; f <= 30.0; f += 0.5) outside += tone_power(x, f, kFs);
  EXPECT_GT(atrial, 20.0 * outside);
  EXPECT_NEAR(rms(x), 0.08 / std::sqrt(2.0), 0.04);
}

TEST(Composite, SumsAllComponents) {
  Rng rng_a(13);
  Rng rng_b(13);
  NoiseParams p = NoiseParams::preset(NoiseLevel::kModerate);
  const auto all = gen_composite(p, 20000, kFs, rng_a);
  // Composite must carry at least the baseline wander energy generated from
  // the same stream prefix.
  const auto wander_only = gen_baseline_wander(p, 20000, kFs, rng_b);
  EXPECT_GT(rms(all), 0.8 * rms(wander_only));
}

}  // namespace
}  // namespace wbsn::sig
