#include "sig/dataset.hpp"

#include <gtest/gtest.h>

namespace wbsn::sig {
namespace {

TEST(Datasets, SinusDatasetShape) {
  DatasetSpec spec;
  spec.num_records = 6;
  spec.beats_per_record = 50;
  const auto records = make_sinus_dataset(spec);
  ASSERT_EQ(records.size(), 6u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.num_leads(), 3u);
    EXPECT_EQ(rec.beats.size(), 50u);
    EXPECT_FALSE(rec.af_episode_present);
  }
}

TEST(Datasets, HeartRatesSpanRange) {
  DatasetSpec spec;
  spec.num_records = 5;
  spec.beats_per_record = 80;
  const auto records = make_sinus_dataset(spec);
  const auto mean_rr = [](const Record& r) {
    const auto rr = r.rr_intervals_s();
    double acc = 0.0;
    for (double v : rr) acc += v;
    return acc / static_cast<double>(rr.size());
  };
  // First record targets 55 bpm, last 95 bpm.
  EXPECT_GT(mean_rr(records.front()), mean_rr(records.back()));
  EXPECT_NEAR(mean_rr(records.front()), 60.0 / 55.0, 0.08);
  EXPECT_NEAR(mean_rr(records.back()), 60.0 / 95.0, 0.06);
}

TEST(Datasets, ArrhythmiaDatasetContainsEctopics) {
  DatasetSpec spec;
  spec.num_records = 4;
  spec.beats_per_record = 200;
  const auto records = make_arrhythmia_dataset(spec);
  int pvc = 0;
  int apc = 0;
  for (const auto& rec : records) {
    for (const auto& beat : rec.beats) {
      pvc += beat.label == BeatClass::kPvc;
      apc += beat.label == BeatClass::kApc;
    }
  }
  EXPECT_GT(pvc, 20);
  EXPECT_GT(apc, 10);
}

int rec_beats_quarter(const Record& rec) {
  return static_cast<int>(rec.beats.size() / 4);
}

TEST(Datasets, AfDatasetAlternatesRhythms) {
  DatasetSpec spec;
  spec.num_records = 3;
  spec.beats_per_record = 120;
  const auto records = make_af_dataset(spec);
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.af_episode_present);
    int af = 0;
    int sinus = 0;
    for (const auto& beat : rec.beats) {
      af += beat.label == BeatClass::kAfib;
      sinus += beat.label == BeatClass::kNormal;
    }
    // Roughly half the beats belong to AF episodes.
    EXPECT_GT(af, rec_beats_quarter(rec));
    EXPECT_GT(sinus, rec_beats_quarter(rec));
  }
}

TEST(Datasets, ReproducibleAcrossCalls) {
  DatasetSpec spec;
  spec.num_records = 2;
  spec.beats_per_record = 30;
  const auto a = make_sinus_dataset(spec);
  const auto b = make_sinus_dataset(spec);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].leads[0], b[0].leads[0]);
  EXPECT_EQ(a[1].leads[2], b[1].leads[2]);
}

TEST(Datasets, SeedChangesData) {
  DatasetSpec spec;
  spec.num_records = 1;
  spec.beats_per_record = 30;
  const auto a = make_sinus_dataset(spec);
  spec.seed = 43;
  const auto b = make_sinus_dataset(spec);
  EXPECT_NE(a[0].leads[0], b[0].leads[0]);
}

}  // namespace
}  // namespace wbsn::sig
