#include "sig/adc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wbsn::sig {
namespace {

TEST(Adc, ZeroMapsToZero) {
  const AdcConfig cfg;
  const std::vector<double> mv = {0.0};
  EXPECT_EQ(quantize(mv, cfg)[0], 0);
}

TEST(Adc, LsbResolution) {
  AdcConfig cfg;
  cfg.bits = 12;
  cfg.full_scale_mv = 5.0;
  EXPECT_NEAR(cfg.lsb_mv(), 5.0 / 4096.0, 1e-12);
  const std::vector<double> mv = {cfg.lsb_mv(), 2.0 * cfg.lsb_mv()};
  const auto q = quantize(mv, cfg);
  EXPECT_EQ(q[0], 1);
  EXPECT_EQ(q[1], 2);
}

TEST(Adc, SaturatesAtRails) {
  AdcConfig cfg;
  cfg.bits = 12;
  cfg.full_scale_mv = 5.0;
  const std::vector<double> mv = {100.0, -100.0};
  const auto q = quantize(mv, cfg);
  EXPECT_EQ(q[0], cfg.max_count());
  EXPECT_EQ(q[1], cfg.min_count());
  EXPECT_EQ(cfg.max_count(), 2047);
  EXPECT_EQ(cfg.min_count(), -2048);
}

TEST(Adc, GainAmplifiesBeforeQuantization) {
  AdcConfig unity;
  AdcConfig gained;
  gained.gain = 2.0;
  // Use an exact multiple of the LSB so doubling introduces no rounding.
  const std::vector<double> mv = {100.0 * unity.lsb_mv()};
  EXPECT_EQ(quantize(mv, unity)[0], 100);
  EXPECT_EQ(quantize(mv, gained)[0], 200);
}

TEST(Adc, RoundTripErrorBoundedByHalfLsb) {
  AdcConfig cfg;
  std::vector<double> mv;
  for (int i = -100; i <= 100; ++i) mv.push_back(0.013 * i);
  const auto q = quantize(mv, cfg);
  const auto back = dequantize(q, cfg);
  for (std::size_t i = 0; i < mv.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - mv[i]), 0.5 * cfg.lsb_mv() + 1e-12);
  }
}

TEST(Adc, BitDepthControlsError) {
  AdcConfig low;
  low.bits = 8;
  AdcConfig high;
  high.bits = 14;
  std::vector<double> mv;
  for (int i = 0; i < 1000; ++i) mv.push_back(2.0 * std::sin(0.01 * i));
  const auto err = [&](const AdcConfig& cfg) {
    const auto back = dequantize(quantize(mv, cfg), cfg);
    double acc = 0.0;
    for (std::size_t i = 0; i < mv.size(); ++i) acc += std::abs(back[i] - mv[i]);
    return acc / static_cast<double>(mv.size());
  };
  EXPECT_GT(err(low), 10.0 * err(high));
}

TEST(Adc, QuantizeLeadsHandlesAllLeads) {
  AdcConfig cfg;
  const std::vector<std::vector<double>> leads = {{0.1, 0.2}, {-0.1, -0.2}, {0.0, 1.0}};
  const auto q = quantize_leads(leads, cfg);
  ASSERT_EQ(q.size(), 3u);
  for (std::size_t lead = 0; lead < q.size(); ++lead) {
    ASSERT_EQ(q[lead].size(), 2u);
    EXPECT_EQ(q[lead][0], quantize(leads[lead], cfg)[0]);
  }
}

}  // namespace
}  // namespace wbsn::sig
