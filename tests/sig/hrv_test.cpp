#include "sig/hrv.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wbsn::sig {
namespace {

double mean(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

/// Lag-1 autocorrelation of successive differences; sinus rhythm has highly
/// structured (oscillatory) RR, AF is near-white.
double rmssd(const std::vector<double>& rr) {
  double acc = 0.0;
  for (std::size_t i = 1; i < rr.size(); ++i) {
    const double d = rr[i] - rr[i - 1];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(rr.size() - 1));
}

TEST(SinusRr, MeanMatchesRequestedRate) {
  Rng rng(1);
  SinusRhythmParams p;
  p.mean_hr_bpm = 70.0;
  const auto rr = generate_sinus_rr(p, 500, rng);
  EXPECT_NEAR(mean(rr), 60.0 / 70.0, 0.03);
}

TEST(SinusRr, RateSweepTracksRequested) {
  for (double hr : {55.0, 65.0, 80.0, 95.0}) {
    Rng rng(static_cast<std::uint64_t>(hr));
    SinusRhythmParams p;
    p.mean_hr_bpm = hr;
    const auto rr = generate_sinus_rr(p, 400, rng);
    EXPECT_NEAR(mean(rr), 60.0 / hr, 0.04) << "hr=" << hr;
  }
}

TEST(SinusRr, VariabilityIsPhysiological) {
  Rng rng(2);
  const auto rr = generate_sinus_rr(SinusRhythmParams{}, 1000, rng);
  const double sd = stddev(rr);
  // SDNN for healthy adults over short records: roughly 20-100 ms.
  EXPECT_GT(sd, 0.015);
  EXPECT_LT(sd, 0.12);
}

TEST(SinusRr, AllIntervalsWithinClamp) {
  Rng rng(3);
  const auto rr = generate_sinus_rr(SinusRhythmParams{}, 2000, rng);
  for (double v : rr) {
    EXPECT_GE(v, 0.35);
    EXPECT_LE(v, 2.0);
  }
}

TEST(AfRr, MeanMatchesRequestedRate) {
  Rng rng(4);
  AfRhythmParams p;
  p.mean_hr_bpm = 95.0;
  const auto rr = generate_af_rr(p, 2000, rng);
  // Log-normal mean exceeds the median slightly; allow for that bias.
  EXPECT_NEAR(mean(rr), 60.0 / 95.0, 0.05);
}

TEST(AfRr, RespectsRefractoryFloor) {
  Rng rng(5);
  AfRhythmParams p;
  p.min_rr_s = 0.3;
  const auto rr = generate_af_rr(p, 5000, rng);
  EXPECT_GE(*std::min_element(rr.begin(), rr.end()), 0.3);
}

TEST(AfRr, MoreIrregularThanSinus) {
  Rng rng_a(6);
  Rng rng_b(6);
  const auto sinus = generate_sinus_rr(SinusRhythmParams{}, 600, rng_a);
  const auto af = generate_af_rr(AfRhythmParams{}, 600, rng_b);
  // Beat-to-beat irregularity (RMSSD normalized by the mean) is the core AF
  // signature the paper's detector uses; it must separate the two rhythms.
  EXPECT_GT(rmssd(af) / mean(af), 3.0 * rmssd(sinus) / mean(sinus));
}

TEST(AfRr, SuccessiveDifferencesUncorrelated) {
  Rng rng(7);
  const auto rr = generate_af_rr(AfRhythmParams{}, 4000, rng);
  std::vector<double> diff(rr.size() - 1);
  for (std::size_t i = 1; i < rr.size(); ++i) diff[i - 1] = rr[i] - rr[i - 1];
  const double m = mean(diff);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 1; i < diff.size(); ++i) {
    num += (diff[i] - m) * (diff[i - 1] - m);
  }
  for (double d : diff) den += (d - m) * (d - m);
  // Differencing white-ish draws yields lag-1 correlation near -0.5; the
  // point is absence of the strong positive structure sinus rhythm shows.
  EXPECT_LT(num / den, 0.0);
}

TEST(SinusRr, DeterministicGivenSeed) {
  Rng a(8);
  Rng b(8);
  const auto ra = generate_sinus_rr(SinusRhythmParams{}, 100, a);
  const auto rb = generate_sinus_rr(SinusRhythmParams{}, 100, b);
  EXPECT_EQ(ra, rb);
}

}  // namespace
}  // namespace wbsn::sig
