#include <gtest/gtest.h>

#include "mcsim/kernel.hpp"
#include "mcsim/machine.hpp"
#include "mcsim/power.hpp"

namespace wbsn::mcsim {
namespace {

KernelProfile straight_line(std::uint64_t instructions) {
  KernelProfile profile;
  profile.name = "straight";
  profile.instructions = instructions;
  profile.load_fraction = 0.25;
  profile.store_fraction = 0.10;
  profile.branch_fraction = 0.05;
  profile.divergence_prob = 0.0;
  return profile;
}

TEST(Profile, DerivedFromOpCounts) {
  dsp::OpCount ops;
  ops.add = 500;
  ops.load = 300;
  ops.store = 100;
  ops.cmp = 50;
  ops.branch = 50;
  const auto profile = profile_from_ops("mf", ops, 0.3);
  EXPECT_EQ(profile.instructions, 1000u);
  EXPECT_NEAR(profile.load_fraction, 0.3, 1e-12);
  EXPECT_NEAR(profile.store_fraction, 0.1, 1e-12);
  EXPECT_NEAR(profile.branch_fraction, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(profile.divergence_prob, 0.3);
}

TEST(Simulate, SingleCoreBaseline) {
  const auto profile = straight_line(100000);
  MachineConfig machine;
  machine.num_cores = 1;
  const auto stats = simulate_kernel(profile, machine, 1);
  EXPECT_EQ(stats.wall_cycles, 100000u);
  EXPECT_EQ(stats.imem_accesses, 100000u);  // One fetch per instruction.
  EXPECT_EQ(stats.active_core_cycles, 100000u);
  EXPECT_EQ(stats.idle_core_cycles, 0u);
  EXPECT_EQ(stats.divergence_events, 0u);
  // ~35 % of instructions touch data memory.
  EXPECT_NEAR(static_cast<double>(stats.dmem_accesses), 35000.0, 2000.0);
}

TEST(Simulate, BroadcastMergesLockstepFetches) {
  const auto profile = straight_line(50000);
  MachineConfig with;
  with.num_cores = 3;
  with.broadcast_fetch = true;
  MachineConfig without = with;
  without.broadcast_fetch = false;
  const auto merged = simulate_kernel(profile, with, 2);
  const auto unmerged = simulate_kernel(profile, without, 2);
  // Divergence-free: merged = 1 access/cycle, unmerged = 3.
  EXPECT_EQ(merged.imem_accesses, 50000u);
  EXPECT_EQ(unmerged.imem_accesses, 150000u);
  EXPECT_EQ(merged.wall_cycles, unmerged.wall_cycles);
}

TEST(Simulate, DivergenceCostsCyclesAndFetches) {
  KernelProfile profile = straight_line(100000);
  profile.divergence_prob = 0.2;
  MachineConfig machine;
  machine.num_cores = 3;
  const auto diverging = simulate_kernel(profile, machine, 3);
  profile.divergence_prob = 0.0;
  const auto clean = simulate_kernel(profile, machine, 3);
  EXPECT_GT(diverging.divergence_events, 100u);
  EXPECT_GT(diverging.imem_accesses, clean.imem_accesses);
  EXPECT_GT(diverging.idle_core_cycles, 0u);
  // Fetch merging still pays off overall: far fewer than 3x fetches.
  EXPECT_LT(diverging.imem_accesses, 2u * diverging.wall_cycles);
}

TEST(Simulate, UnpartitionedDmemStalls) {
  KernelProfile profile = straight_line(100000);
  MachineConfig partitioned;
  partitioned.num_cores = 3;
  partitioned.partitioned_dmem = true;
  MachineConfig shared = partitioned;
  shared.partitioned_dmem = false;
  shared.dmem_banks = 2;
  const auto clean = simulate_kernel(profile, partitioned, 4);
  const auto conflicted = simulate_kernel(profile, shared, 4);
  EXPECT_EQ(clean.dmem_stall_cycles, 0u);
  EXPECT_GT(conflicted.dmem_stall_cycles, 1000u);
  EXPECT_GT(conflicted.wall_cycles, clean.wall_cycles);
}

TEST(Simulate, DeterministicForSeed) {
  KernelProfile profile = straight_line(20000);
  profile.divergence_prob = 0.1;
  MachineConfig machine;
  machine.num_cores = 3;
  const auto a = simulate_kernel(profile, machine, 99);
  const auto b = simulate_kernel(profile, machine, 99);
  EXPECT_EQ(a.wall_cycles, b.wall_cycles);
  EXPECT_EQ(a.imem_accesses, b.imem_accesses);
  EXPECT_EQ(a.divergence_events, b.divergence_events);
}

TEST(Power, BreakdownComponentsPositive) {
  const auto profile = straight_line(200000);
  MachineConfig machine;
  machine.num_cores = 3;
  const auto stats = simulate_kernel(profile, machine, 5);
  const auto power = price_execution(stats, 3, PowerConfig{});
  EXPECT_GT(power.cores_w, 0.0);
  EXPECT_GT(power.imem_w, 0.0);
  EXPECT_GT(power.dmem_w, 0.0);
  EXPECT_NEAR(power.total_w(),
              power.cores_w + power.imem_w + power.dmem_w + power.leakage_w, 1e-15);
}

TEST(Power, HigherLoadNeedsHigherVoltage) {
  MachineConfig machine;
  machine.num_cores = 1;
  PowerConfig cfg;
  const auto light = simulate_kernel(straight_line(50000), machine, 6);
  const auto heavy = simulate_kernel(straight_line(900000), machine, 6);
  const auto p_light = price_execution(light, 1, cfg);
  const auto p_heavy = price_execution(heavy, 1, cfg);
  EXPECT_GE(p_heavy.vdd, p_light.vdd);
  EXPECT_GT(p_heavy.f_hz, p_light.f_hz);
}

TEST(Power, McBeatsScOnParallelWorkload) {
  // The Figure 7 headline: the synchronized multi-core cuts total power —
  // "up to 40 %" — via voltage scaling plus instruction-fetch merging.
  KernelProfile profile = straight_line(300000);
  profile.divergence_prob = 0.1;
  MachineConfig machine;
  const auto cmp = compare_sc_mc(profile, 3, machine, PowerConfig{}, 7);
  EXPECT_LT(cmp.mc.total_w(), cmp.sc.total_w());
  EXPECT_GT(cmp.reduction_percent(), 15.0);
  EXPECT_LT(cmp.reduction_percent(), 70.0);
  // Instruction memory is where the broadcast earns most.
  EXPECT_LT(cmp.mc.imem_w, cmp.sc.imem_w);
  // MC runs each core slower at a lower voltage.
  EXPECT_LE(cmp.mc.vdd, cmp.sc.vdd);
  EXPECT_LT(cmp.mc.f_hz, cmp.sc.f_hz);
}

TEST(Power, BroadcastIsLoadBearing) {
  // Ablation (DESIGN.md #3): disabling fetch merging erases most of the
  // instruction-memory advantage.
  KernelProfile profile = straight_line(300000);
  MachineConfig with;
  with.broadcast_fetch = true;
  MachineConfig without;
  without.broadcast_fetch = false;
  const auto cmp_with = compare_sc_mc(profile, 3, with, PowerConfig{}, 8);
  const auto cmp_without = compare_sc_mc(profile, 3, without, PowerConfig{}, 8);
  EXPECT_GT(cmp_with.reduction_percent(), cmp_without.reduction_percent() + 5.0);
}

}  // namespace
}  // namespace wbsn::mcsim
