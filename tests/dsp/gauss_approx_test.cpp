#include "dsp/gauss_approx.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wbsn::dsp {
namespace {

TEST(PiecewiseGauss, ExactAtBreakpoints) {
  const PiecewiseGauss g(4, 4.0);
  for (int i = 0; i < 4; ++i) {
    const double z = static_cast<double>(i);
    EXPECT_NEAR(g.value(z), PiecewiseGauss::exact(z), 1e-12) << z;
  }
  // At z = zmax the approximation truncates to zero; the true value there
  // is exp(-8) ~ 3.4e-4, an accepted (tiny) truncation error.
  EXPECT_NEAR(g.value(4.0), 0.0, 1e-12);
  EXPECT_LT(PiecewiseGauss::exact(4.0), 5e-4);
}

TEST(PiecewiseGauss, SymmetricInZ) {
  const PiecewiseGauss g(4);
  for (double z : {0.3, 1.1, 2.7, 3.9}) {
    EXPECT_DOUBLE_EQ(g.value(z), g.value(-z));
  }
}

TEST(PiecewiseGauss, ZeroBeyondSupport) {
  const PiecewiseGauss g(4, 4.0);
  EXPECT_DOUBLE_EQ(g.value(4.0), 0.0);
  EXPECT_DOUBLE_EQ(g.value(10.0), 0.0);
  EXPECT_DOUBLE_EQ(g.value(-5.0), 0.0);
}

TEST(PiecewiseGauss, FourSegmentsAreCloseToOptimal) {
  // The paper's claim (Section IV-A): 4 segments suffice.  The chord
  // approximation's worst error with 4 segments over [0,4] stays below 0.09
  // — small relative to typical membership separations.
  const PiecewiseGauss g(4);
  EXPECT_LT(g.max_abs_error(), 0.09);
}

TEST(PiecewiseGauss, ErrorShrinksWithSegments) {
  double prev = 1.0;
  for (int segments : {2, 4, 8, 16, 32}) {
    const PiecewiseGauss g(segments);
    const double err = g.max_abs_error();
    EXPECT_LT(err, prev) << segments;
    prev = err;
  }
  EXPECT_LT(PiecewiseGauss(32).max_abs_error(), 2e-3);
}

TEST(PiecewiseGauss, ChordLiesAboveCurveOnConvexParts) {
  // exp(-z^2/2) is convex for |z| > 1, so every chord lies on or above the
  // curve there: approx >= exact on [1.5, ~3.9] (the final truncation to
  // zero at zmax is excluded).
  const PiecewiseGauss g(8);
  for (double z = 1.6; z < 3.5; z += 0.05) {
    EXPECT_GE(g.value(z), PiecewiseGauss::exact(z) - 1e-12) << z;
  }
}

TEST(PiecewiseGaussQ15, MatchesDoubleVersion) {
  const PiecewiseGauss ref(4);
  const PiecewiseGaussQ15 q(4);
  for (double z = 0.0; z < 4.5; z += 0.01) {
    const auto z_q12 = static_cast<std::int16_t>(std::lround(z * 4096.0));
    const double got = static_cast<double>(q.value(z_q12)) / 32767.0;
    EXPECT_NEAR(got, ref.value(z), 0.01) << z;
  }
}

TEST(PiecewiseGaussQ15, HandlesNegativeZ) {
  const PiecewiseGaussQ15 q(4);
  for (double z : {0.5, 1.5, 3.0}) {
    const auto pos = static_cast<std::int16_t>(std::lround(z * 4096.0));
    const auto neg = static_cast<std::int16_t>(-pos);
    EXPECT_EQ(q.value(pos), q.value(neg));
  }
}

TEST(PiecewiseGaussQ15, MonotoneNonIncreasing) {
  const PiecewiseGaussQ15 q(4);
  std::int16_t prev = 32767;
  for (std::int16_t z = 0; z < 17000; z = static_cast<std::int16_t>(z + 128)) {
    const std::int16_t v = q.value(z);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(PiecewiseGaussQ15, ReportsOps) {
  const PiecewiseGaussQ15 q(4);
  OpCount ops;
  q.value(2048, &ops);
  EXPECT_GT(ops.total(), 0u);
  EXPECT_LE(ops.mul, 2u);  // The whole point: almost no multiplies.
}

}  // namespace
}  // namespace wbsn::dsp
