#include "dsp/ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sig/rng.hpp"

namespace wbsn::dsp {
namespace {

/// Builds a signal of `beats` repetitions of a template every `period`
/// samples, with additive white noise and optional linear amplitude drift.
struct Repeated {
  std::vector<double> signal;
  std::vector<std::int64_t> triggers;
  std::vector<double> tmpl;
};

Repeated make_repeated(int beats, std::size_t period, double noise_rms, double drift,
                       std::uint64_t seed) {
  Repeated r;
  const std::size_t wave_len = 60;
  r.tmpl.resize(wave_len);
  for (std::size_t i = 0; i < wave_len; ++i) {
    const double z = (static_cast<double>(i) - 30.0) / 8.0;
    r.tmpl[i] = std::exp(-0.5 * z * z);
  }
  const std::size_t n = period * static_cast<std::size_t>(beats + 1);
  r.signal.assign(n, 0.0);
  sig::Rng rng(seed);
  for (int b = 0; b < beats; ++b) {
    const std::size_t start = period / 2 + static_cast<std::size_t>(b) * period;
    const double gain = 1.0 + drift * b;
    for (std::size_t i = 0; i < wave_len; ++i) r.signal[start + i] += gain * r.tmpl[i];
    r.triggers.push_back(static_cast<std::int64_t>(start + 30));
  }
  for (auto& v : r.signal) v += rng.normal(0.0, noise_rms);
  return r;
}

constexpr EnsembleWindow kWin{40, 40};

TEST(EnsembleAverager, RecoversTemplateFromNoise) {
  const auto r = make_repeated(200, 200, 0.3, 0.0, 1);
  EnsembleAverager ea(kWin);
  for (auto t : r.triggers) ea.accumulate(r.signal, t);
  const auto avg = ea.average();
  ASSERT_EQ(avg.size(), kWin.length());
  // Noise of 0.3 RMS averaged over 200 beats -> ~0.021 residual RMS.
  double err = 0.0;
  for (std::size_t i = 0; i < avg.size(); ++i) {
    const std::size_t tmpl_idx = i + 30 - kWin.pre;  // Trigger at template 30.
    const double truth = tmpl_idx < r.tmpl.size() ? r.tmpl[tmpl_idx] : 0.0;
    err = std::max(err, std::abs(avg[i] - truth));
  }
  EXPECT_LT(err, 0.08);
}

TEST(EnsembleAverager, SkipsEdgeWindows) {
  EnsembleAverager ea(kWin);
  std::vector<double> x(100, 1.0);
  ea.accumulate(x, 10);   // Window [-30, 50) is out of range.
  ea.accumulate(x, 95);   // Window [55, 135) is out of range.
  EXPECT_EQ(ea.count(), 0u);
  EXPECT_TRUE(ea.average().empty());
  ea.accumulate(x, 50);
  EXPECT_EQ(ea.count(), 1u);
}

TEST(EnsembleAverager, AverageOfIdenticalBeatsIsExact) {
  const auto r = make_repeated(10, 200, 0.0, 0.0, 2);
  EnsembleAverager ea(kWin);
  for (auto t : r.triggers) ea.accumulate(r.signal, t);
  const auto avg = ea.average();
  for (std::size_t i = 0; i < avg.size(); ++i) {
    const std::size_t tmpl_idx = i + 30 - kWin.pre;
    const double truth = tmpl_idx < r.tmpl.size() ? r.tmpl[tmpl_idx] : 0.0;
    EXPECT_NEAR(avg[i], truth, 1e-12);
  }
}

TEST(Aicf, ConvergesOnStationarySignal) {
  const auto r = make_repeated(300, 200, 0.3, 0.0, 3);
  AdaptiveImpulseCorrelatedFilter aicf(kWin, 0.1);
  std::vector<double> last;
  for (auto t : r.triggers) last = aicf.process_beat(r.signal, t);
  ASSERT_FALSE(last.empty());
  double err = 0.0;
  for (std::size_t i = 0; i < last.size(); ++i) {
    const std::size_t tmpl_idx = i + 30 - kWin.pre;
    const double truth = tmpl_idx < r.tmpl.size() ? r.tmpl[tmpl_idx] : 0.0;
    err = std::max(err, std::abs(last[i] - truth));
  }
  // Steady-state noise gain of the exponential average with mu=0.1 is
  // sqrt(mu / (2 - mu)) ~ 0.23, so 0.3 RMS noise -> ~0.07 residual.
  EXPECT_LT(err, 0.25);
}

TEST(Aicf, TracksDriftingAmplitudeBetterThanEa) {
  // The paper's point (Section IV-C): EA loses beat-to-beat dynamics; AICF
  // tracks them.  With a 0.5 %/beat amplitude drift, the final AICF
  // estimate should be close to the *latest* beat, while EA sits near the
  // average of all beats.
  const double drift = 0.005;
  const int beats = 200;
  const auto r = make_repeated(beats, 200, 0.05, drift, 4);
  AdaptiveImpulseCorrelatedFilter aicf(kWin, 0.15);
  EnsembleAverager ea(kWin);
  std::vector<double> aicf_est;
  for (auto t : r.triggers) {
    aicf_est = aicf.process_beat(r.signal, t);
    ea.accumulate(r.signal, t);
  }
  const auto ea_est = ea.average();
  const double final_gain = 1.0 + drift * (beats - 1);
  // Compare peak amplitudes (template peak = 1.0 at trigger).
  const std::size_t peak_idx = kWin.pre;
  EXPECT_NEAR(aicf_est[peak_idx], final_gain, 0.12);
  EXPECT_NEAR(ea_est[peak_idx], 1.0 + drift * (beats - 1) / 2.0, 0.12);
  EXPECT_GT(aicf_est[peak_idx], ea_est[peak_idx] + 0.2);
}

TEST(Aicf, FirstBeatPrimesEstimate) {
  std::vector<double> x(200, 0.0);
  for (std::size_t i = 90; i < 110; ++i) x[i] = 2.0;
  AdaptiveImpulseCorrelatedFilter aicf(kWin, 0.1);
  const auto est = aicf.process_beat(x, 100);
  // With priming, the first output equals the first window exactly.
  EXPECT_DOUBLE_EQ(est[kWin.pre], 2.0);
  EXPECT_DOUBLE_EQ(est[0], 0.0);
}

TEST(Aicf, RejectsEdgeWindows) {
  AdaptiveImpulseCorrelatedFilter aicf(kWin, 0.1);
  std::vector<double> x(50, 1.0);
  EXPECT_TRUE(aicf.process_beat(x, 5).empty());
}

TEST(EnsembleResidual, LowerForCleanSignal) {
  const auto noisy = make_repeated(50, 200, 0.3, 0.0, 5);
  const auto clean = make_repeated(50, 200, 0.02, 0.0, 6);
  const double p_noisy = ensemble_residual_power(noisy.signal, noisy.triggers, kWin);
  const double p_clean = ensemble_residual_power(clean.signal, clean.triggers, kWin);
  EXPECT_GT(p_noisy, 20.0 * p_clean);
  EXPECT_NEAR(p_noisy, 0.09, 0.03);  // 0.3^2.
}

}  // namespace
}  // namespace wbsn::dsp
