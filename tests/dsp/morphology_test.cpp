#include "dsp/morphology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sig/adc.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::dsp {
namespace {

std::vector<std::int32_t> spike_train(std::size_t n, std::size_t period,
                                      std::int32_t amplitude) {
  std::vector<std::int32_t> x(n, 0);
  for (std::size_t i = period / 2; i < n; i += period) x[i] = amplitude;
  return x;
}

TEST(Morphology, OpeningRemovesNarrowPositivePeaks) {
  const auto x = spike_train(200, 20, 100);
  const auto opened = morph_open(x, 5);
  for (std::int32_t v : opened) EXPECT_EQ(v, 0);
}

TEST(Morphology, ClosingRemovesNarrowPits) {
  auto x = spike_train(200, 20, 100);
  for (auto& v : x) v = -v;  // Negative spikes.
  const auto closed = morph_close(x, 5);
  for (std::int32_t v : closed) EXPECT_EQ(v, 0);
}

TEST(Morphology, OpeningPreservesWidePlateaus) {
  std::vector<std::int32_t> x(100, 0);
  for (std::size_t i = 30; i < 70; ++i) x[i] = 50;  // 40-sample plateau.
  const auto opened = morph_open(x, 11);
  // The plateau interior survives opening with a narrower SE.
  for (std::size_t i = 40; i < 60; ++i) EXPECT_EQ(opened[i], 50) << i;
}

TEST(Morphology, AntiExtensivity) {
  // Opening never exceeds the signal; closing never goes below it.
  sig::Rng rng(3);
  std::vector<std::int32_t> x(400);
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(-500, 500));
  const auto opened = morph_open(x, 9);
  const auto closed = morph_close(x, 9);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(opened[i], x[i]);
    EXPECT_GE(closed[i], x[i]);
  }
}

TEST(Morphology, Idempotence) {
  // Opening and closing are idempotent: applying twice changes nothing.
  sig::Rng rng(4);
  std::vector<std::int32_t> x(300);
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(-200, 200));
  const auto once = morph_open(x, 7);
  EXPECT_EQ(morph_open(once, 7), once);
  const auto conce = morph_close(x, 7);
  EXPECT_EQ(morph_close(conce, 7), conce);
}

TEST(Morphology, ErodeDilateDuality) {
  // erode(x) == -dilate(-x): the complement duality of flat morphology.
  sig::Rng rng(5);
  std::vector<std::int32_t> x(256);
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(-100, 100));
  std::vector<std::int32_t> neg(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) neg[i] = -x[i];
  const auto eroded = erode(x, 13);
  auto dilated_neg = dilate(neg, 13);
  for (auto& v : dilated_neg) v = -v;
  EXPECT_EQ(eroded, dilated_neg);
}

class MorphFilterOnEcg : public ::testing::Test {
 protected:
  void SetUp() override {
    sig::SynthConfig cfg;
    cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 20}};
    cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
    cfg.noise.baseline_wander_mv = 0.5;  // Only wander, nothing else.
    sig::Rng rng(17);
    record_ = synthesize_ecg(cfg, rng);
    counts_ = sig::quantize(record_.leads[0], adc_);
  }

  sig::AdcConfig adc_;
  sig::Record record_;
  std::vector<std::int32_t> counts_;
};

TEST_F(MorphFilterOnEcg, RemovesBaselineWander) {
  const auto result = morphological_filter(counts_);
  // Wander dominates the low-frequency mean; after filtering, windowed
  // means should be near zero everywhere.
  const std::size_t window = 250;  // 1 s.
  double worst_before = 0.0;
  double worst_after = 0.0;
  for (std::size_t start = 0; start + window <= counts_.size(); start += window) {
    double mean_before = 0.0;
    double mean_after = 0.0;
    for (std::size_t i = start; i < start + window; ++i) {
      mean_before += counts_[i];
      mean_after += result.filtered[i];
    }
    worst_before = std::max(worst_before, std::abs(mean_before / window));
    worst_after = std::max(worst_after, std::abs(mean_after / window));
  }
  EXPECT_LT(worst_after, 0.25 * worst_before);
}

TEST_F(MorphFilterOnEcg, PreservesRPeakAmplitude) {
  const auto result = morphological_filter(counts_);
  // The R peak must survive conditioning: check the filtered signal still
  // has > 70 % of the clean R amplitude at annotated peaks.
  const double r_mv = 1.1;  // Model R amplitude in lead I.
  const double r_counts = r_mv / adc_.lsb_mv();
  for (const auto& beat : record_.beats) {
    const auto r = static_cast<std::size_t>(beat.r_peak);
    std::int32_t peak = 0;
    for (std::size_t i = r >= 3 ? r - 3 : 0; i <= std::min(counts_.size() - 1, r + 3); ++i) {
      peak = std::max(peak, result.filtered[i]);
    }
    EXPECT_GT(peak, 0.6 * r_counts) << "beat at " << r;
  }
}

TEST_F(MorphFilterOnEcg, ReportsWork) {
  const auto result = morphological_filter(counts_);
  EXPECT_GT(result.ops.total(), counts_.size());  // At least O(n).
  EXPECT_EQ(result.ops.mul, 0u);  // Morphology is multiplier-free.
  EXPECT_EQ(result.ops.div, 0u);
}

TEST(MorphFilter, NoiseSuppressionRemovesImpulses) {
  // Clean slow sine + impulse noise; the two-branch open/close average
  // must strip the impulses.
  std::vector<std::int32_t> clean(500);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    clean[i] = static_cast<std::int32_t>(200.0 * std::sin(0.02 * static_cast<double>(i)));
  }
  auto noisy = clean;
  sig::Rng rng(6);
  for (int k = 0; k < 30; ++k) {
    const auto pos = static_cast<std::size_t>(rng.uniform_int(0, 499));
    noisy[pos] += (k % 2 == 0) ? 150 : -150;
  }
  MorphFilterConfig cfg;
  cfg.remove_baseline = false;  // Isolate the noise-suppression stage.
  const auto result = morphological_filter(noisy, cfg);
  const auto result_clean = morphological_filter(clean, cfg);
  double max_err = 0.0;
  double mean_err = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 20; i + 20 < clean.size(); ++i) {
    const double e = std::abs(static_cast<double>(result.filtered[i]) -
                              static_cast<double>(result_clean.filtered[i]));
    max_err = std::max(max_err, e);
    mean_err += e;
    ++count;
  }
  mean_err /= static_cast<double>(count);
  // Isolated impulses vanish entirely; occasional clustered ones survive
  // attenuated.  Bound both tails: nothing at full impulse amplitude, and
  // tiny residual on average.
  EXPECT_LT(max_err, 150.0);
  EXPECT_LT(mean_err, 10.0);
}

TEST(MorphTransform, PeaksBecomeExtrema) {
  // A triangular peak maps to a positive extremum of the transform at the
  // same location.
  std::vector<std::int32_t> x(101, 0);
  for (int i = 0; i <= 10; ++i) {
    x[static_cast<std::size_t>(45 + i)] = 100 - 10 * i;
    x[static_cast<std::size_t>(45 - i)] = 100 - 10 * i;
  }
  // SE of 25 samples exceeds the full 21-sample triangle, so the opening
  // flattens the peak completely: transform peak = (x - (0 + x)/2) = x/2.
  const auto t = morph_transform(x, 25);
  const auto max_it = std::max_element(t.begin(), t.end());
  const auto peak_pos = static_cast<std::size_t>(std::distance(t.begin(), max_it));
  EXPECT_NEAR(static_cast<double>(peak_pos), 45.0, 2.0);
  EXPECT_GT(*max_it, 40);
}

TEST(MorphTransform, FlatSignalMapsToZero) {
  const std::vector<std::int32_t> x(64, 7);
  for (std::int32_t v : morph_transform(x, 9)) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace wbsn::dsp
