#include "dsp/lead_combine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sig/rng.hpp"

namespace wbsn::dsp {
namespace {

TEST(Isqrt, ExactSquares) {
  for (std::uint64_t r : {0ull, 1ull, 2ull, 15ull, 255ull, 65535ull, 1000000ull}) {
    EXPECT_EQ(isqrt64(r * r), r);
  }
}

TEST(Isqrt, FloorBehaviour) {
  EXPECT_EQ(isqrt64(2), 1u);
  EXPECT_EQ(isqrt64(3), 1u);
  EXPECT_EQ(isqrt64(8), 2u);
  EXPECT_EQ(isqrt64(99), 9u);
  EXPECT_EQ(isqrt64(10000 - 1), 99u);
}

TEST(Isqrt, MatchesDoubleSqrtOnRandoms) {
  sig::Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_u64() >> 16;  // Keep sqrt exact in double.
    EXPECT_EQ(isqrt64(v), static_cast<std::uint32_t>(std::sqrt(static_cast<double>(v))));
  }
}

TEST(RmsCombine, SingleLeadIsAbsoluteValue) {
  const std::vector<std::vector<std::int32_t>> leads = {{3, -4, 0, 12, -1}};
  const auto out = rms_combine(leads);
  const std::vector<std::int32_t> want = {3, 4, 0, 12, 1};
  EXPECT_EQ(out, want);
}

TEST(RmsCombine, EqualLeadsGiveSameMagnitude) {
  const std::vector<std::int32_t> lead = {10, -20, 30, -40};
  const std::vector<std::vector<std::int32_t>> leads = {lead, lead, lead};
  const auto out = rms_combine(leads);
  for (std::size_t i = 0; i < lead.size(); ++i) {
    EXPECT_EQ(out[i], std::abs(lead[i]));
  }
}

TEST(RmsCombine, MatchesReferenceWithinOneLsb) {
  sig::Rng rng(31);
  std::vector<std::vector<std::int32_t>> leads(3, std::vector<std::int32_t>(200));
  std::vector<std::vector<double>> dleads(3, std::vector<double>(200));
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t i = 0; i < 200; ++i) {
      leads[l][i] = static_cast<std::int32_t>(rng.uniform_int(-2000, 2000));
      dleads[l][i] = static_cast<double>(leads[l][i]);
    }
  }
  const auto fixed = rms_combine(leads);
  const auto ref = rms_combine_ref(dleads);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_NEAR(static_cast<double>(fixed[i]), ref[i], 1.0) << i;
  }
}

TEST(RmsCombine, SuppressesUncorrelatedNoise) {
  // Common signal + independent noise in each lead: the RMS combination's
  // correlation with the clean signal must beat any single lead's.
  sig::Rng rng(41);
  const std::size_t n = 4000;
  std::vector<double> clean(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Positive bumps (RMS is a magnitude combiner, so use unipolar truth).
    const double phase = 0.05 * static_cast<double>(i);
    const double s = std::sin(phase);
    clean[i] = s > 0.6 ? 100.0 * (s - 0.6) : 0.0;
  }
  std::vector<std::vector<std::int32_t>> leads(3, std::vector<std::int32_t>(n));
  for (auto& lead : leads) {
    for (std::size_t i = 0; i < n; ++i) {
      lead[i] = static_cast<std::int32_t>(std::lround(clean[i] + rng.normal(0.0, 10.0)));
    }
  }
  const auto combined = rms_combine(leads);
  const auto rms_err = [&](const std::vector<std::int32_t>& x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = std::abs(static_cast<double>(x[i])) - clean[i];
      acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(n));
  };
  EXPECT_LT(rms_err(combined), rms_err(leads[0]));
}

TEST(RmsCombine, EmptyInput) { EXPECT_TRUE(rms_combine({}).empty()); }

TEST(RmsCombine, OpsScaleWithWork) {
  std::vector<std::vector<std::int32_t>> leads(3, std::vector<std::int32_t>(100, 5));
  OpCount ops;
  rms_combine(leads, &ops);
  EXPECT_EQ(ops.mul, 300u);           // One square per lead-sample.
  EXPECT_GE(ops.cmp, 100u * 32u);     // isqrt iterations dominate.
}

}  // namespace
}  // namespace wbsn::dsp
