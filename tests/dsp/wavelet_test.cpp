#include "dsp/wavelet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sig/adc.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::dsp {
namespace {

TEST(DwtMaxLevels, CountsEvenHalvings) {
  // A step is allowed while the current length is even and >= 4 (the
  // periodized 4-tap filters stay well-posed down to length 2).
  EXPECT_EQ(dwt_max_levels(512), 8);  // 512 -> 2.
  EXPECT_EQ(dwt_max_levels(256), 7);
  EXPECT_EQ(dwt_max_levels(4), 1);
  EXPECT_EQ(dwt_max_levels(3), 0);
  EXPECT_EQ(dwt_max_levels(6), 1);  // 6 -> 3 (odd) stops further splits.
  EXPECT_EQ(dwt_max_levels(0), 0);
}

TEST(Dwt, PerfectReconstructionRandom) {
  sig::Rng rng(1);
  std::vector<double> x(256);
  for (auto& v : x) v = rng.normal();
  for (int levels : {1, 3, 5}) {
    const auto coeffs = dwt_forward(x, levels);
    const auto back = dwt_inverse(coeffs, levels);
    ASSERT_EQ(back.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(back[i], x[i], 1e-10) << "levels=" << levels << " i=" << i;
    }
  }
}

TEST(Dwt, ZeroLevelsIsIdentity) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(dwt_forward(x, 0), x);
  EXPECT_EQ(dwt_inverse(x, 0), x);
}

TEST(Dwt, ParsevalEnergyPreserved) {
  sig::Rng rng(2);
  std::vector<double> x(512);
  for (auto& v : x) v = rng.normal();
  const auto coeffs = dwt_forward(x, 5);
  const auto energy = [](const std::vector<double>& v) {
    return std::inner_product(v.begin(), v.end(), v.begin(), 0.0);
  };
  EXPECT_NEAR(energy(coeffs), energy(x), 1e-8);
}

TEST(Dwt, ConstantSignalConcentratesInApprox) {
  std::vector<double> x(128, 1.0);
  const int levels = 3;
  const auto coeffs = dwt_forward(x, levels);
  const std::size_t approx_len = x.size() >> levels;
  double detail_energy = 0.0;
  for (std::size_t i = approx_len; i < coeffs.size(); ++i) {
    detail_energy += coeffs[i] * coeffs[i];
  }
  EXPECT_LT(detail_energy, 1e-16);
}

TEST(Dwt, LinearRampHasNoDetail) {
  // Db4 has two vanishing moments: linear signals map to zero detail
  // (up to the periodic wrap-around samples).
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const auto coeffs = dwt_forward(x, 1);
  // Interior detail coefficients vanish; wrap-around ones don't.
  for (std::size_t k = 2; k + 2 < 32; ++k) {
    EXPECT_NEAR(coeffs[32 + k], 0.0, 1e-10) << k;
  }
}

TEST(Dwt, EcgIsCompressibleInBasis) {
  // The premise of CS recovery (Fig. 5): ECG is sparse in the wavelet
  // domain.  Check that 10 % of coefficients carry > 95 % of the energy.
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 10}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(3);
  const auto rec = synthesize_ecg(cfg, rng);
  std::vector<double> x(rec.leads[0].begin(), rec.leads[0].begin() + 2048);
  const auto coeffs = dwt_forward(x, 5);
  std::vector<double> mags;
  mags.reserve(coeffs.size());
  double total = 0.0;
  for (double c : coeffs) {
    mags.push_back(c * c);
    total += c * c;
  }
  std::sort(mags.rbegin(), mags.rend());
  double top = 0.0;
  for (std::size_t i = 0; i < mags.size() / 10; ++i) top += mags[i];
  EXPECT_GT(top / total, 0.95);
}

TEST(SwtSpline, FlatSignalZeroDetail) {
  const std::vector<std::int32_t> x(128, 100);
  const auto result = swt_spline(x, 4);
  ASSERT_EQ(result.detail.size(), 4u);
  for (const auto& scale : result.detail) {
    for (std::int32_t v : scale) EXPECT_EQ(v, 0);
  }
  for (std::int32_t v : result.approx) EXPECT_EQ(v, 100);
}

TEST(SwtSpline, StepProducesAlignedExtremum) {
  // A rising step at position p produces a positive wavelet response whose
  // maximum sits at the step across all scales (time alignment).
  std::vector<std::int32_t> x(256, 0);
  for (std::size_t i = 128; i < 256; ++i) x[i] = 1000;
  const auto result = swt_spline(x, 4);
  for (std::size_t j = 0; j < result.detail.size(); ++j) {
    const auto& d = result.detail[j];
    const auto max_it = std::max_element(d.begin(), d.end());
    const auto pos = static_cast<double>(std::distance(d.begin(), max_it));
    EXPECT_NEAR(pos, 128.0, 2.0 + static_cast<double>(1 << j)) << "scale " << j;
    EXPECT_GT(*max_it, 0);
  }
}

TEST(SwtSpline, RWaveGivesModulusMaximaPair) {
  // A peak (R wave) must produce a +/- modulus-maxima pair around the peak
  // with a zero crossing at it — the delineator's core assumption.
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 5}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(4);
  const auto rec = synthesize_ecg(cfg, rng);
  const auto counts = sig::quantize(rec.leads[0], sig::AdcConfig{});
  const auto result = swt_spline(counts, 3);
  const auto& d2 = result.detail[1];  // Scale 2^2.
  for (const auto& beat : rec.beats) {
    const auto r = static_cast<std::size_t>(beat.r_peak);
    // Max positive response before R, max negative after (rising then
    // falling edge of the peak) within +/- 15 samples.
    std::int32_t best_pos = 0;
    std::int32_t best_neg = 0;
    for (std::size_t i = r - 15; i <= r + 15 && i < d2.size(); ++i) {
      if (i < r) best_pos = std::max(best_pos, d2[i]);
      if (i > r) best_neg = std::min(best_neg, d2[i]);
    }
    EXPECT_GT(best_pos, 100) << "beat " << r;
    EXPECT_LT(best_neg, -100) << "beat " << r;
  }
}

TEST(SwtSpline, CoefficientsScaleLinearly) {
  // Linearity: doubling the input doubles every coefficient (exact in
  // integer arithmetic up to rounding of the /8 stages).
  std::vector<std::int32_t> x(128);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<std::int32_t>(500.0 * std::sin(0.2 * static_cast<double>(i)));
  }
  std::vector<std::int32_t> x2(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) x2[i] = 2 * x[i];
  const auto r1 = swt_spline(x, 3);
  const auto r2 = swt_spline(x2, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(static_cast<double>(r2.detail[j][i]),
                  2.0 * static_cast<double>(r1.detail[j][i]), 16.0);
    }
  }
}

TEST(SwtSpline, IsMultiplierFree) {
  // The quadratic-spline filter bank runs on shifts and adds only — the
  // integer "times 3" is add+shift on the node.  Verify the op accounting
  // claims no multiplies or divides.
  const std::vector<std::int32_t> x(256, 10);
  const auto result = swt_spline(x, 4);
  EXPECT_EQ(result.ops.mul, 0u);
  EXPECT_EQ(result.ops.div, 0u);
  EXPECT_GT(result.ops.shift, 0u);
}

}  // namespace
}  // namespace wbsn::dsp
