#include "dsp/sliding_minmax.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sig/rng.hpp"

namespace wbsn::dsp {
namespace {

/// Brute-force reference for the centered batch variants.
std::vector<std::int32_t> brute_centered(const std::vector<std::int32_t>& x,
                                         std::size_t window, bool want_min) {
  const std::size_t half = window / 2;
  std::vector<std::int32_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = i >= (window - 1 - half) ? i - (window - 1 - half) : 0;
    const std::size_t hi = std::min(x.size() - 1, i + half);
    std::int32_t best = x[lo];
    for (std::size_t j = lo; j <= hi; ++j) {
      best = want_min ? std::min(best, x[j]) : std::max(best, x[j]);
    }
    out[i] = best;
  }
  return out;
}

TEST(SlidingExtrema, SingleElementWindowIsIdentity) {
  SlidingExtrema tracker(1);
  for (std::int32_t v : {5, -3, 10, 0}) {
    tracker.push(v);
    EXPECT_EQ(tracker.min(), v);
    EXPECT_EQ(tracker.max(), v);
  }
}

TEST(SlidingExtrema, TracksWindowOfThree) {
  SlidingExtrema tracker(3);
  const std::vector<std::int32_t> x = {4, 2, 7, 1, 9, 9, 3};
  const std::vector<std::int32_t> want_min = {4, 2, 2, 1, 1, 1, 3};
  const std::vector<std::int32_t> want_max = {4, 4, 7, 7, 9, 9, 9};
  for (std::size_t i = 0; i < x.size(); ++i) {
    tracker.push(x[i]);
    EXPECT_EQ(tracker.min(), want_min[i]) << i;
    EXPECT_EQ(tracker.max(), want_max[i]) << i;
  }
}

TEST(SlidingExtrema, HandlesDuplicates) {
  SlidingExtrema tracker(2);
  tracker.push(5);
  tracker.push(5);
  EXPECT_EQ(tracker.min(), 5);
  EXPECT_EQ(tracker.max(), 5);
  tracker.push(1);
  EXPECT_EQ(tracker.min(), 1);
  EXPECT_EQ(tracker.max(), 5);
  tracker.push(1);
  EXPECT_EQ(tracker.max(), 1);
}

TEST(SlidingExtrema, MatchesBruteForceOnRandomStream) {
  sig::Rng rng(99);
  for (std::size_t window : {2u, 5u, 16u, 63u}) {
    SlidingExtrema tracker(window);
    std::vector<std::int32_t> history;
    for (int i = 0; i < 2000; ++i) {
      const auto v = static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
      history.push_back(v);
      tracker.push(v);
      const std::size_t lo = history.size() > window ? history.size() - window : 0;
      std::int32_t lo_v = history[lo];
      std::int32_t hi_v = history[lo];
      for (std::size_t j = lo; j < history.size(); ++j) {
        lo_v = std::min(lo_v, history[j]);
        hi_v = std::max(hi_v, history[j]);
      }
      ASSERT_EQ(tracker.min(), lo_v) << "window=" << window << " i=" << i;
      ASSERT_EQ(tracker.max(), hi_v) << "window=" << window << " i=" << i;
    }
  }
}

TEST(SlidingExtrema, AmortizedConstantComparisons) {
  // The monotonic wedge does < 4 comparisons per sample on average; this is
  // the property that makes flat-SE morphology feasible on the MCU.
  sig::Rng rng(7);
  SlidingExtrema tracker(64);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    tracker.push(static_cast<std::int32_t>(rng.uniform_int(-10000, 10000)));
  }
  EXPECT_LT(tracker.ops().cmp, static_cast<std::uint64_t>(8 * n));
}

using BatchParam = std::tuple<std::size_t, int>;  // window, seed.

class SlidingBatchTest : public ::testing::TestWithParam<BatchParam> {};

TEST_P(SlidingBatchTest, MatchesBruteForce) {
  const auto [window, seed] = GetParam();
  sig::Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<std::int32_t> x(500);
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(-2048, 2047));
  EXPECT_EQ(sliding_min(x, window), brute_centered(x, window, true));
  EXPECT_EQ(sliding_max(x, window), brute_centered(x, window, false));
}

INSTANTIATE_TEST_SUITE_P(Windows, SlidingBatchTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 21, 51, 77),
                                            ::testing::Values(1, 2, 3)));

TEST(SlidingBatch, EmptyInput) {
  const std::vector<std::int32_t> empty;
  EXPECT_TRUE(sliding_min(empty, 5).empty());
  EXPECT_TRUE(sliding_max(empty, 5).empty());
}

TEST(SlidingBatch, ConstantSignalInvariant) {
  const std::vector<std::int32_t> x(100, 42);
  EXPECT_EQ(sliding_min(x, 9), x);
  EXPECT_EQ(sliding_max(x, 9), x);
}

TEST(SlidingBatch, MinLeqMaxEverywhere) {
  sig::Rng rng(5);
  std::vector<std::int32_t> x(300);
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(-100, 100));
  const auto mn = sliding_min(x, 15);
  const auto mx = sliding_max(x, 15);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(mn[i], x[i]);
    EXPECT_GE(mx[i], x[i]);
    EXPECT_LE(mn[i], mx[i]);
  }
}

TEST(SlidingBatch, OpsAreReported) {
  std::vector<std::int32_t> x(256, 0);
  OpCount ops;
  sliding_min(x, 31, &ops);
  EXPECT_GT(ops.total(), 0u);
  EXPECT_GE(ops.store, x.size());
}

}  // namespace
}  // namespace wbsn::dsp
