#include "dsp/linear_filters.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace wbsn::dsp {
namespace {

constexpr double kFs = 250.0;

/// Steady-state amplitude of the filter response to a unit sine at f.
double tone_gain(Biquad filter, double f) {
  filter.reset();
  const int n = 5000;
  double peak = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = std::sin(2.0 * std::numbers::pi * f * i / kFs);
    const double y = filter.process(x);
    if (i > n / 2) peak = std::max(peak, std::abs(y));
  }
  return peak;
}

TEST(Biquad, NotchKillsTargetFrequency) {
  const auto notch = Biquad::notch(50.0, 30.0, kFs);
  EXPECT_LT(tone_gain(notch, 50.0), 0.05);
  EXPECT_GT(tone_gain(notch, 10.0), 0.9);
  EXPECT_GT(tone_gain(notch, 90.0), 0.9);
}

TEST(Biquad, LowpassAttenuatesHighFrequencies) {
  const auto lp = Biquad::lowpass(40.0, std::numbers::sqrt2 / 2.0, kFs);
  EXPECT_GT(tone_gain(lp, 5.0), 0.95);
  EXPECT_NEAR(tone_gain(lp, 40.0), std::numbers::sqrt2 / 2.0, 0.08);
  EXPECT_LT(tone_gain(lp, 110.0), 0.2);
}

TEST(Biquad, HighpassAttenuatesLowFrequencies) {
  const auto hp = Biquad::highpass(0.5, std::numbers::sqrt2 / 2.0, kFs);
  EXPECT_LT(tone_gain(hp, 0.05), 0.15);
  EXPECT_GT(tone_gain(hp, 5.0), 0.95);
}

TEST(Biquad, ResetClearsState) {
  auto lp = Biquad::lowpass(10.0, 0.7, kFs);
  for (int i = 0; i < 100; ++i) lp.process(1.0);
  lp.reset();
  // After reset the impulse response must match a fresh filter.
  auto fresh = Biquad::lowpass(10.0, 0.7, kFs);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(lp.process(i == 0 ? 1.0 : 0.0), fresh.process(i == 0 ? 1.0 : 0.0));
  }
}

TEST(Biquad, FilterMatchesProcessLoop) {
  auto a = Biquad::lowpass(30.0, 0.7, kFs);
  auto b = Biquad::lowpass(30.0, 0.7, kFs);
  std::vector<double> x(200);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(0.1 * static_cast<double>(i));
  const auto batch = a.filter(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], b.process(x[i]));
  }
}

TEST(Bandpass, PassesEcgBandRejectsEdges) {
  BandpassFilter bp(0.5, 40.0, kFs);
  const auto gain = [&](double f) {
    BandpassFilter fresh(0.5, 40.0, kFs);
    double peak = 0.0;
    for (int i = 0; i < 6000; ++i) {
      const double y = fresh.process(std::sin(2.0 * std::numbers::pi * f * i / kFs));
      if (i > 3000) peak = std::max(peak, std::abs(y));
    }
    return peak;
  };
  EXPECT_GT(gain(10.0), 0.9);
  EXPECT_LT(gain(0.05), 0.15);
  EXPECT_LT(gain(115.0), 0.15);
}

TEST(MovingAverage, ConstantSignalConverges) {
  const std::vector<std::int32_t> x(100, 64);
  const auto y = moving_average_pow2(x, 3);  // Length 8.
  for (std::size_t i = 8; i < x.size(); ++i) EXPECT_EQ(y[i], 64);
}

TEST(MovingAverage, SmoothsStep) {
  std::vector<std::int32_t> x(64, 0);
  for (std::size_t i = 32; i < 64; ++i) x[i] = 80;
  const auto y = moving_average_pow2(x, 4);  // Length 16.
  // Ramp across the step, monotone non-decreasing.
  for (std::size_t i = 33; i < 64; ++i) EXPECT_GE(y[i], y[i - 1]);
  EXPECT_EQ(y[63], 80);
  EXPECT_EQ(y[20], 0);
}

TEST(MovingAverage, UsesOnlyCheapOps) {
  const std::vector<std::int32_t> x(256, 1);
  OpCount ops;
  moving_average_pow2(x, 5, &ops);
  EXPECT_EQ(ops.mul, 0u);
  EXPECT_EQ(ops.div, 0u);
  EXPECT_GE(ops.shift, x.size());
}

}  // namespace
}  // namespace wbsn::dsp
