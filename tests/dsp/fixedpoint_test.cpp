#include "dsp/fixedpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sig/rng.hpp"

namespace wbsn::dsp {
namespace {

TEST(Q15, RoundTripAccuracy) {
  for (double v = -0.999; v < 1.0; v += 0.0137) {
    EXPECT_NEAR(from_q15(to_q15(v)), v, 1.0 / kQ15One);
  }
}

TEST(Q15, SaturatesAtBounds) {
  EXPECT_EQ(to_q15(1.5), 32767);
  EXPECT_EQ(to_q15(1.0), 32767);  // +1.0 is not representable.
  EXPECT_EQ(to_q15(-1.0), -32768);
  EXPECT_EQ(to_q15(-2.0), -32768);
}

TEST(Q15, ZeroAndSmallValues) {
  EXPECT_EQ(to_q15(0.0), 0);
  EXPECT_EQ(to_q15(0.5), 16384);
  EXPECT_EQ(to_q15(-0.5), -16384);
}

TEST(Q15Mul, MatchesDoubleWithinOneLsb) {
  sig::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double a = rng.uniform(-0.999, 0.999);
    const double b = rng.uniform(-0.999, 0.999);
    const auto qa = to_q15(a);
    const auto qb = to_q15(b);
    const double got = from_q15(q15_mul(qa, qb));
    EXPECT_NEAR(got, from_q15(qa) * from_q15(qb), 1.5 / kQ15One);
  }
}

TEST(Q15Mul, Identities) {
  const std::int16_t half = to_q15(0.5);
  EXPECT_EQ(q15_mul(half, to_q15(0.5)), to_q15(0.25));
  EXPECT_EQ(q15_mul(0, 12345), 0);
  EXPECT_EQ(q15_mul(12345, 0), 0);
}

TEST(Q15Mul, Commutative) {
  sig::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
    const auto b = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
    EXPECT_EQ(q15_mul(a, b), q15_mul(b, a));
  }
}

TEST(SatAdd, SaturatesBothDirections) {
  EXPECT_EQ(sat_add16(32000, 1000), 32767);
  EXPECT_EQ(sat_add16(-32000, -1000), -32768);
  EXPECT_EQ(sat_add16(100, 200), 300);
}

TEST(SatSub, SaturatesBothDirections) {
  EXPECT_EQ(sat_sub16(32000, -1000), 32767);
  EXPECT_EQ(sat_sub16(-32000, 1000), -32768);
  EXPECT_EQ(sat_sub16(100, 200), -100);
}

TEST(Q15, ConstexprUsable) {
  // Compile-time evaluation is part of the contract (tables in ROM).
  constexpr std::int16_t kHalf = to_q15(0.5);
  constexpr std::int16_t kQuarter = q15_mul(kHalf, kHalf);
  static_assert(kHalf == 16384);
  static_assert(kQuarter == 8192);
  EXPECT_EQ(kQuarter, 8192);
}

}  // namespace
}  // namespace wbsn::dsp
