#include "dsp/spline_baseline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "sig/ecg_synth.hpp"

namespace wbsn::dsp {
namespace {

TEST(CubicSpline, InterpolatesKnotsExactly) {
  const std::vector<double> xs = {10.0, 50.0, 90.0, 130.0};
  const std::vector<double> ys = {1.0, -2.0, 3.0, 0.5};
  std::vector<double> out(150);
  natural_cubic_spline_eval(xs, ys, out);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    EXPECT_NEAR(out[static_cast<std::size_t>(xs[k])], ys[k], 1e-9);
  }
}

TEST(CubicSpline, ClampsOutsideKnotRange) {
  const std::vector<double> xs = {20.0, 40.0};
  const std::vector<double> ys = {5.0, -5.0};
  std::vector<double> out(60);
  natural_cubic_spline_eval(xs, ys, out);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[10], 5.0);
  EXPECT_DOUBLE_EQ(out[50], -5.0);
  EXPECT_DOUBLE_EQ(out[59], -5.0);
}

TEST(CubicSpline, LinearDataReproducedExactly) {
  // A natural spline through collinear points is that line.
  const std::vector<double> xs = {0.0, 30.0, 60.0, 90.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(0.5 * x + 2.0);
  std::vector<double> out(91);
  natural_cubic_spline_eval(xs, ys, out);
  for (std::size_t i = 0; i <= 90; ++i) {
    EXPECT_NEAR(out[i], 0.5 * static_cast<double>(i) + 2.0, 1e-9);
  }
}

TEST(CubicSpline, SingleKnotGivesConstant) {
  const std::vector<double> xs = {25.0};
  const std::vector<double> ys = {3.3};
  std::vector<double> out(50);
  natural_cubic_spline_eval(xs, ys, out);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 3.3);
}

TEST(CubicSpline, EmptyKnotsGiveZero) {
  std::vector<double> out(10, 99.0);
  natural_cubic_spline_eval({}, {}, out);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
}

class SplineOnEcg : public ::testing::Test {
 protected:
  void SetUp() override {
    sig::SynthConfig cfg;
    cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 30}};
    cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
    cfg.noise.baseline_wander_mv = 0.4;
    cfg.noise.baseline_freq_hz = 0.3;
    sig::Rng rng(11);
    record_ = synthesize_ecg(cfg, rng);
  }

  sig::Record record_;
};

TEST_F(SplineOnEcg, BaselineEstimateTracksWander) {
  const auto r_peaks = record_.r_peaks();
  const auto result = estimate_spline_baseline(record_.leads[0], r_peaks);
  ASSERT_GT(result.knots.size(), 10u);
  // Between the first and last knot, the corrected low-frequency content
  // should collapse: compare 1-second means before/after.
  const auto corrected = spline_baseline_correct(record_.leads[0], r_peaks);
  const std::size_t begin = static_cast<std::size_t>(result.knots.front());
  const std::size_t end = static_cast<std::size_t>(result.knots.back());
  double worst_before = 0.0;
  double worst_after = 0.0;
  for (std::size_t s = begin; s + 250 < end; s += 250) {
    double mb = 0.0;
    double ma = 0.0;
    for (std::size_t i = s; i < s + 250; ++i) {
      mb += record_.leads[0][i];
      ma += corrected[i];
    }
    worst_before = std::max(worst_before, std::abs(mb / 250.0));
    worst_after = std::max(worst_after, std::abs(ma / 250.0));
  }
  EXPECT_LT(worst_after, 0.4 * worst_before);
}

TEST_F(SplineOnEcg, KnotsSitInPrSegment) {
  const auto r_peaks = record_.r_peaks();
  const auto result = estimate_spline_baseline(record_.leads[0], r_peaks);
  // Each knot must precede its R peak by the configured PR offset (in
  // rounded samples, matching the implementation's arithmetic).
  SplineBaselineConfig cfg;
  const auto offset = static_cast<std::int64_t>(std::llround(cfg.knot_offset_s * record_.fs));
  for (std::size_t i = 0; i < result.knots.size(); ++i) {
    bool found = false;
    for (std::int64_t r : r_peaks) {
      if (result.knots[i] == r + offset) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "knot " << i;
  }
}

TEST(SplineBaseline, NoBeatsGivesZeroBaseline) {
  std::vector<double> x(100, 1.5);
  const auto result = estimate_spline_baseline(x, {});
  for (double v : result.baseline) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SplineBaseline, RecoversSlowSineOnSyntheticKnots) {
  // Pure wander + flat "PR segments": recovery should be near-perfect.
  const double fs = 250.0;
  const std::size_t n = 5000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.3 * std::sin(2.0 * std::numbers::pi * 0.2 * static_cast<double>(i) / fs);
  }
  std::vector<std::int64_t> fake_r;
  for (std::int64_t r = 200; r < static_cast<std::int64_t>(n) - 200; r += 200) {
    fake_r.push_back(r);
  }
  SplineBaselineConfig cfg;
  cfg.fs = fs;
  const auto est = estimate_spline_baseline(x, fake_r, cfg);
  const std::size_t begin = static_cast<std::size_t>(est.knots.front());
  const std::size_t end = static_cast<std::size_t>(est.knots.back());
  double worst = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    worst = std::max(worst, std::abs(est.baseline[i] - x[i]));
  }
  EXPECT_LT(worst, 0.05);  // 1/6 of the wander amplitude.
}

}  // namespace
}  // namespace wbsn::dsp
